// Table III: performance with varying top-N cutoffs (HR@5/NDCG@5 and
// HR@20/NDCG@20) for every model on every dataset. Shape to check: DGNN
// leads at both cutoffs; accuracy grows with N for all models.
//
//   ./bench_table3_topn [--datasets=ciao,epinions,yelp] [--models=...]

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 3;
  options.cutoffs = {5, 20};

  std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "ciao,epinions,yelp"), ',');
  std::vector<std::string> model_names;
  if (flags.Has("models")) {
    model_names = util::Split(flags.GetString("models", ""), ',');
  } else {
    model_names = core::TableIIModelNames();
  }

  util::Table table({"Dataset", "Model", "HR@5", "NDCG@5", "HR@20",
                     "NDCG@20"});
  for (const auto& dataset_name : datasets) {
    data::Dataset dataset = data::GenerateSynthetic(
        data::SyntheticConfig::Preset(dataset_name));
    graph::HeteroGraph graph(dataset);
    for (const auto& model_name : model_names) {
      std::fprintf(stderr, "[table3] %s / %s ...\n", dataset_name.c_str(),
                   model_name.c_str());
      auto result = bench::RunModel(model_name, dataset, graph, options);
      table.AddRow({dataset_name, model_name,
                    bench::Fmt4(result.final_metrics.hr[5]),
                    bench::Fmt4(result.final_metrics.ndcg[5]),
                    bench::Fmt4(result.final_metrics.hr[20]),
                    bench::Fmt4(result.final_metrics.ndcg[20])});
    }
  }
  std::printf("Table III (varying top-N):\n");
  table.Print();
  return 0;
}
