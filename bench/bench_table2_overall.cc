// Table II: overall performance comparison of all models on the three
// datasets in terms of HR@10 and NDCG@10, with DGNN's improvement over
// each baseline. Shape to check against the paper: DGNN wins on every
// dataset/metric; GNN-based social recommenders beat the purely
// attentional ones.
//
//   ./bench_table2_overall [--datasets=ciao,epinions,yelp]
//                          [--models=...] [--epochs=25]

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 3;
  options.cutoffs = {10};

  std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "ciao,epinions,yelp"), ',');
  std::vector<std::string> model_names;
  if (flags.Has("models")) {
    model_names = util::Split(flags.GetString("models", ""), ',');
  } else {
    model_names = core::TableIIModelNames();
  }

  util::Table table({"Dataset", "Model", "HR@10", "Imp", "NDCG@10", "Imp"});
  for (const auto& dataset_name : datasets) {
    data::Dataset dataset = data::GenerateSynthetic(
        data::SyntheticConfig::Preset(dataset_name));
    graph::HeteroGraph graph(dataset);

    struct Row {
      std::string model;
      double hr, ndcg;
    };
    std::vector<Row> rows;
    double dgnn_hr = 0.0;
    double dgnn_ndcg = 0.0;
    for (const auto& model_name : model_names) {
      std::fprintf(stderr, "[table2] %s / %s ...\n", dataset_name.c_str(),
                   model_name.c_str());
      auto result = bench::RunModel(model_name, dataset, graph, options);
      Row row{model_name, result.final_metrics.hr[10],
              result.final_metrics.ndcg[10]};
      if (model_name == "DGNN") {
        dgnn_hr = row.hr;
        dgnn_ndcg = row.ndcg;
      }
      rows.push_back(row);
    }
    for (const auto& row : rows) {
      const bool is_dgnn = row.model == "DGNN";
      table.AddRow({dataset_name, row.model, bench::Fmt4(row.hr),
                    is_dgnn ? "-" : bench::ImprovementPct(dgnn_hr, row.hr),
                    bench::Fmt4(row.ndcg),
                    is_dgnn ? "-"
                            : bench::ImprovementPct(dgnn_ndcg, row.ndcg)});
    }
  }
  std::printf("Table II (overall performance, HR@10 / NDCG@10; Imp = DGNN's "
              "relative gain):\n");
  table.Print();
  return 0;
}
