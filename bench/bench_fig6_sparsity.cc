// Figure 6: performance under data scarcity. Users are ranked by training
// interaction count (and separately by social degree) and split into four
// equal-size groups; HR@10 is reported per group for DGNN and baselines.
// Shape to check: DGNN leads in every group, with visible gains on the
// sparsest groups (where the heterogeneous side information matters most).
//
//   ./bench_fig6_sparsity [--dataset=yelp] [--models=DiffNet,NGCF,...]

#include <algorithm>
#include <numeric>

#include "bench_common.h"
#include "train/evaluator.h"

namespace {

// Equal-size quartile assignment by ascending key; returns group id per
// user and the mean key per group.
std::pair<std::vector<int>, std::vector<double>> Quartiles(
    const std::vector<int64_t>& key) {
  const size_t n = key.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return key[a] < key[b]; });
  std::vector<int> group(n, 0);
  std::vector<double> mean(4, 0.0);
  std::vector<int64_t> count(4, 0);
  for (size_t rank = 0; rank < n; ++rank) {
    const int g = static_cast<int>(rank * 4 / n);
    group[static_cast<size_t>(order[rank])] = g;
    mean[static_cast<size_t>(g)] += static_cast<double>(
        key[static_cast<size_t>(order[rank])]);
    ++count[static_cast<size_t>(g)];
  }
  for (int g = 0; g < 4; ++g) {
    if (count[g] > 0) mean[g] /= static_cast<double>(count[g]);
  }
  return {group, mean};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  options.cutoffs = {10};
  const std::string dataset_name = flags.GetString("dataset", "yelp");
  std::vector<std::string> model_names = util::Split(
      flags.GetString("models", "DiffNet,NGCF,DGCF,HGT,DGNN"), ',');

  data::Dataset dataset = data::GenerateSynthetic(
      data::SyntheticConfig::Preset(dataset_name));
  graph::HeteroGraph graph(dataset);
  train::Evaluator evaluator(dataset);

  // Group keys.
  std::vector<int64_t> interaction_count(dataset.num_users, 0);
  for (const auto& it : dataset.train) ++interaction_count[it.user];
  std::vector<int64_t> social_degree(dataset.num_users, 0);
  for (const auto& [u, v] : dataset.social) {
    ++social_degree[u];
    ++social_degree[v];
  }
  auto [inter_group, inter_mean] = Quartiles(interaction_count);
  auto [social_group, social_mean] = Quartiles(social_degree);

  util::Table table({"Model", "Grouping", "0-25%", "25-50%", "50-75%",
                     "75-100%"});
  std::vector<std::string> header_rows;
  auto mean_row = [&](const char* label, const std::vector<double>& mean) {
    table.AddRow({"(avg/group)", label, util::StrFormat("%.1f", mean[0]),
                  util::StrFormat("%.1f", mean[1]),
                  util::StrFormat("%.1f", mean[2]),
                  util::StrFormat("%.1f", mean[3])});
  };
  mean_row("interactions", inter_mean);
  mean_row("social degree", social_mean);

  for (const auto& model_name : model_names) {
    std::fprintf(stderr, "[fig6] %s ...\n", model_name.c_str());
    auto model = core::CreateModelByName(model_name, dataset, graph,
                                         options.zoo);
    train::Trainer trainer(model.get(), dataset, options.ToTrainConfig());
    trainer.Fit();
    ag::Tape tape;
    auto fwd = model->Forward(tape, /*training=*/false);
    for (const auto& [label, group] :
         {std::pair<const char*, const std::vector<int>*>{
              "interactions", &inter_group},
          {"social degree", &social_group}}) {
      auto per_group = evaluator.EvaluateGroups(
          tape.val(fwd.users), tape.val(fwd.items), *group, 4, {10});
      table.AddRow({model_name, label, bench::Fmt4(per_group[0].hr[10]),
                    bench::Fmt4(per_group[1].hr[10]),
                    bench::Fmt4(per_group[2].hr[10]),
                    bench::Fmt4(per_group[3].hr[10])});
    }
  }
  std::printf("Figure 6 (HR@10 by user sparsity group, dataset '%s'):\n",
              dataset_name.c_str());
  table.Print();
  return 0;
}
