// Figure 7: hyper-parameter study — hidden dimensionality d in
// {4, 8, 16, 32}, graph depth L in {0..3}, and memory units |M| in
// {2, 4, 8, 16}. Reported as performance degradation ratio versus the
// best setting per sweep (the paper's y-axis). Shape to check: d=16 is
// near-optimal with larger d degrading; L=2 beats L=0/1 with L=3
// over-smoothing; |M|=8 is the sweet spot.
//
//   ./bench_fig7_hyperparams [--datasets=ciao,epinions,yelp]

#include <map>

#include "bench_common.h"

namespace {

struct SweepPoint {
  std::string setting;
  double hr = 0.0;
  double ndcg = 0.0;
};

void PrintSweep(const std::string& title, const std::string& dataset,
                const std::vector<SweepPoint>& points,
                dgnn::util::Table& table) {
  double best_hr = 0.0;
  double best_ndcg = 0.0;
  for (const auto& p : points) {
    best_hr = std::max(best_hr, p.hr);
    best_ndcg = std::max(best_ndcg, p.ndcg);
  }
  for (const auto& p : points) {
    table.AddRow({dataset, title, p.setting, dgnn::bench::Fmt4(p.hr),
                  dgnn::util::StrFormat(
                      "%.2f%%", best_hr > 0
                                    ? (best_hr - p.hr) / best_hr * 100.0
                                    : 0.0),
                  dgnn::bench::Fmt4(p.ndcg),
                  dgnn::util::StrFormat(
                      "%.2f%%",
                      best_ndcg > 0
                          ? (best_ndcg - p.ndcg) / best_ndcg * 100.0
                          : 0.0)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions base = bench::BenchOptions::FromFlags(flags);
  base.cutoffs = {10};

  std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "ciao,epinions,yelp"), ',');

  util::Table table({"Dataset", "Sweep", "Setting", "HR@10", "HR degr.",
                     "NDCG@10", "NDCG degr."});
  for (const auto& dataset_name : datasets) {
    data::Dataset dataset = data::GenerateSynthetic(
        data::SyntheticConfig::Preset(dataset_name));
    graph::HeteroGraph graph(dataset);

    auto run = [&](const bench::BenchOptions& o) {
      auto result = bench::RunModel("DGNN", dataset, graph, o);
      return std::pair<double, double>(result.final_metrics.hr[10],
                                       result.final_metrics.ndcg[10]);
    };

    // Hidden state size d.
    std::vector<SweepPoint> d_points;
    for (int64_t d : {4, 8, 16, 32}) {
      std::fprintf(stderr, "[fig7] %s d=%lld ...\n", dataset_name.c_str(),
                   static_cast<long long>(d));
      bench::BenchOptions o = base;
      o.zoo.embedding_dim = d;
      auto [hr, ndcg] = run(o);
      d_points.push_back({"d=" + std::to_string(d), hr, ndcg});
    }
    PrintSweep("hidden dim d", dataset_name, d_points, table);

    // Graph layers L.
    std::vector<SweepPoint> l_points;
    for (int layers : {0, 1, 2, 3}) {
      std::fprintf(stderr, "[fig7] %s L=%d ...\n", dataset_name.c_str(),
                   layers);
      bench::BenchOptions o = base;
      o.zoo.num_layers = layers;
      auto [hr, ndcg] = run(o);
      l_points.push_back({"L=" + std::to_string(layers), hr, ndcg});
    }
    PrintSweep("graph layers L", dataset_name, l_points, table);

    // Memory units |M|.
    std::vector<SweepPoint> m_points;
    for (int memory : {2, 4, 8, 16}) {
      std::fprintf(stderr, "[fig7] %s M=%d ...\n", dataset_name.c_str(),
                   memory);
      bench::BenchOptions o = base;
      o.zoo.num_memory_units = memory;
      auto [hr, ndcg] = run(o);
      m_points.push_back({"M=" + std::to_string(memory), hr, ndcg});
    }
    PrintSweep("memory units M", dataset_name, m_points, table);
  }
  std::printf("Figure 7 (hyper-parameter study; degr. = degradation vs the "
              "sweep's best):\n");
  table.Print();
  return 0;
}
