// Figure 9: t-SNE visualization of user embeddings and their interacted
// items, for KGAT, HAN and DGNN. The paper's claim is visual ("DGNN
// separates users better"); this harness makes it quantitative — it
// samples a handful of active users plus their interacted items, runs
// t-SNE, writes the 2-D coordinates to CSV (fig9_<model>.csv, for
// plotting), and reports cluster-separation scores. Shape to check:
// DGNN's intra/inter distance ratio is the lowest and its neighbor
// purity the highest, with HAN ahead of KGAT.
//
//   ./bench_fig9_embedding_viz [--dataset=ciao] [--users=8]
//                              [--items_per_user=10] [--out_dir=.]

#include <algorithm>
#include <fstream>
#include <numeric>

#include "bench_common.h"
#include "viz/cluster_metrics.h"
#include "viz/tsne.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  options.cutoffs = {10};
  const std::string dataset_name = flags.GetString("dataset", "ciao");
  const int num_sample_users = static_cast<int>(flags.GetInt("users", 8));
  const int items_per_user =
      static_cast<int>(flags.GetInt("items_per_user", 10));
  const std::string out_dir = flags.GetString("out_dir", ".");

  data::Dataset dataset = data::GenerateSynthetic(
      data::SyntheticConfig::Preset(dataset_name));
  graph::HeteroGraph graph(dataset);

  // Pick the most active users and up to `items_per_user` of their items.
  auto items_by_user = dataset.TrainItemsByUser();
  std::vector<int32_t> user_order(dataset.num_users);
  std::iota(user_order.begin(), user_order.end(), 0);
  std::stable_sort(user_order.begin(), user_order.end(),
                   [&](int32_t a, int32_t b) {
                     return items_by_user[a].size() > items_by_user[b].size();
                   });
  struct SamplePoint {
    bool is_user;
    int32_t id;
    int32_t label;  // index of the owning user
  };
  std::vector<SamplePoint> sample;
  for (int s = 0; s < num_sample_users &&
                  s < static_cast<int>(user_order.size());
       ++s) {
    const int32_t u = user_order[static_cast<size_t>(s)];
    sample.push_back({true, u, s});
    const auto& items = items_by_user[u];
    for (int i = 0; i < items_per_user &&
                    i < static_cast<int>(items.size());
         ++i) {
      sample.push_back({false, items[static_cast<size_t>(i)], s});
    }
  }

  util::Table table({"Model", "intra/inter dist ratio (lower=better)",
                     "neighbor purity@5 (higher=better)"});
  for (const std::string model_name : {"KGAT", "HAN", "DGNN"}) {
    std::fprintf(stderr, "[fig9] training %s ...\n", model_name.c_str());
    auto model = core::CreateModelByName(model_name, dataset, graph,
                                         options.zoo);
    train::Trainer trainer(model.get(), dataset, options.ToTrainConfig());
    trainer.Fit();
    ag::Tape tape;
    auto fwd = model->Forward(tape, /*training=*/false);
    const ag::Tensor& users = tape.val(fwd.users);
    const ag::Tensor& items = tape.val(fwd.items);

    ag::Tensor points(static_cast<int64_t>(sample.size()), users.cols());
    std::vector<int32_t> labels;
    labels.reserve(sample.size());
    for (size_t i = 0; i < sample.size(); ++i) {
      const auto& p = sample[i];
      const float* row = p.is_user ? users.row(p.id) : items.row(p.id);
      std::copy(row, row + users.cols(),
                points.row(static_cast<int64_t>(i)));
      labels.push_back(p.label);
    }

    viz::TsneConfig tc;
    tc.seed = options.zoo.seed;
    ag::Tensor projected = viz::Tsne(points, tc);

    const double ratio = viz::IntraInterDistanceRatio(projected, labels);
    const double purity = viz::NeighborPurity(projected, labels, 5);
    table.AddRow({model_name, util::StrFormat("%.4f", ratio),
                  util::StrFormat("%.4f", purity)});

    std::ofstream csv(out_dir + "/fig9_" + model_name + ".csv");
    csv << "x,y,label,kind\n";
    for (size_t i = 0; i < sample.size(); ++i) {
      csv << projected.at(static_cast<int64_t>(i), 0) << ','
          << projected.at(static_cast<int64_t>(i), 1) << ','
          << sample[i].label << ','
          << (sample[i].is_user ? "user" : "item") << '\n';
    }
  }
  std::printf("Figure 9 (embedding visualization quality; CSVs written for "
              "plotting):\n");
  table.Print();
  return 0;
}
