// Microbenchmarks of the telemetry primitives on the serving hot path:
// what one Histogram::Record costs (the per-request, per-stage price of
// the observability plane), what the disabled path costs (a relaxed
// atomic load and a null check — the guarantee that un-observed serving
// is unaffected), and what a SnapshotCounts/SnapshotDelta reader costs
// while writers keep recording (the sampler thread never locks the
// request path). Numbers are quoted in EXPERIMENTS.md next to the
// open-loop overhead measurement.

#include <benchmark/benchmark.h>

#include "util/telemetry.h"

namespace {

using dgnn::telemetry::GetHistogram;
using dgnn::telemetry::Histogram;
using dgnn::telemetry::ScopedLatency;
using dgnn::telemetry::SetEnabled;

// Raw Record: bucket index (bit scan), three relaxed fetch_adds, two
// min/max CAS loops. This is what each of the six per-request histogram
// updates costs once a request is being observed.
void BM_HistogramRecord(benchmark::State& state) {
  Histogram hist;
  double v = 1e-6;
  for (auto _ : state) {
    hist.Record(v);
    v = v < 1e-2 ? v * 1.7 : 1e-6;  // walk the buckets, not one cell
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// Record with all threads hammering ONE histogram — the engine's shared
// e2e histogram under a saturated worker pool. Lock-free, so this should
// degrade to cacheline ping-pong, never to a convoy.
void BM_HistogramRecordContended(benchmark::State& state) {
  static Histogram shared;
  double v = 1e-6 * (1 + state.thread_index());
  for (auto _ : state) {
    shared.Record(v);
    v = v < 1e-2 ? v * 1.7 : 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecordContended)->Threads(2)->Threads(8);

// The instrumentation wrapper when telemetry is DISABLED: ScopedLatency
// resolves to a null histogram at construction — no clock read, no
// record. This is the cost every request pays when nothing observes.
void BM_ScopedLatencyDisabled(benchmark::State& state) {
  SetEnabled(false);
  Histogram* hist = GetHistogram("bench.micro.disabled_seconds");
  for (auto _ : state) {
    ScopedLatency latency(hist);
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedLatencyDisabled);

// The same wrapper enabled: two steady_clock reads plus one Record.
void BM_ScopedLatencyEnabled(benchmark::State& state) {
  SetEnabled(true);
  Histogram* hist = GetHistogram("bench.micro.enabled_seconds");
  for (auto _ : state) {
    ScopedLatency latency(hist);
    benchmark::DoNotOptimize(hist);
  }
  SetEnabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedLatencyEnabled);

// Reader side: one windowed-stats sampler tick takes a SnapshotDelta of
// the e2e histogram. 32 relaxed loads + the cursor subtraction; writers
// are never blocked, so this can run at any frequency without touching
// request latency.
void BM_HistogramSnapshotDelta(benchmark::State& state) {
  Histogram hist;
  for (int i = 0; i < 4096; ++i) hist.Record(1e-6 * (1 + i % 1000));
  Histogram::Counts cursor;
  for (auto _ : state) {
    Histogram::Counts delta = hist.SnapshotDelta(&cursor);
    benchmark::DoNotOptimize(delta.count);
    hist.Record(1e-4);  // keep each delta non-trivial
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramSnapshotDelta);

// Quantile extraction from a detached Counts — the per-window p50/p95/
// p99 cost of one stats snapshot (runs on the sampler/exposition thread).
void BM_QuantileFromCounts(benchmark::State& state) {
  Histogram hist;
  for (int i = 0; i < 4096; ++i) hist.Record(1e-6 * (1 + i % 1000));
  const Histogram::Counts counts = hist.SnapshotCounts();
  for (auto _ : state) {
    double p99 = Histogram::QuantileFromCounts(counts, 0.99);
    benchmark::DoNotOptimize(p99);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileFromCounts);

}  // namespace
