// Table IV: running time (seconds) of one training epoch and one test
// pass for DGCF, HGT and DGNN on the three datasets. Shape to check
// against the paper: HGT is the slowest to train (edge-level multi-head
// attention); DGNN trains faster than both comparisons thanks to the
// factorized memory encoder.
//
// Each (model, dataset) cell is measured once per worker-pool width so the
// table also reports the parallel speedup over the single-thread run.
// Results are bit-identical across widths, so the speedup column is pure
// wall-clock, not a numerics trade.
//
//   ./bench_table4_runtime [--datasets=ciao,epinions,yelp] [--epochs=3]
//                          [--threads=1,4] [--deterministic=0|1]
//
// --deterministic=1 (default) keeps the bit-identical serial accumulation
// order; --deterministic=0 measures the relaxed fast kernels (FMA,
// cache-blocked transposed GEMM). The active SIMD level is printed with
// the table; force one with DGNN_SIMD=off|avx2|neon.

#include <algorithm>
#include <cstdlib>
#include <map>

#include "bench_common.h"
#include "train/evaluator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  // Timing only needs a few epochs.
  if (!flags.Has("epochs")) options.epochs = 3;

  std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "ciao,epinions,yelp"), ',');
  std::vector<std::string> model_names =
      util::Split(flags.GetString("models", "DGCF,HGT,DGNN"), ',');

  // Thread widths to sweep; the first entry is the speedup baseline.
  std::vector<int> thread_counts;
  for (const auto& tok :
       util::Split(flags.GetString("threads", ""), ',')) {
    if (tok.empty()) continue;
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v < 1) {
      std::fprintf(stderr, "--threads: bad width '%s' (want integers >= 1)\n",
                   tok.c_str());
      return 2;
    }
    thread_counts.push_back(static_cast<int>(v));
  }
  if (thread_counts.empty()) {
    thread_counts.push_back(1);
    if (util::NumThreads() > 1) thread_counts.push_back(util::NumThreads());
  }
  const int saved_threads = util::NumThreads();

  util::Table table({"Model", "Dataset", "Threads", "Train s/epoch",
                     "Speedup", "Test s"});
  // Baseline train-seconds at thread_counts[0], keyed by model/dataset.
  std::map<std::pair<std::string, std::string>, double> baseline;
  for (const auto& model_name : model_names) {
    for (const auto& dataset_name : datasets) {
      data::Dataset dataset = data::GenerateSynthetic(
          data::SyntheticConfig::Preset(dataset_name));
      graph::HeteroGraph graph(dataset);
      for (int threads : thread_counts) {
        std::fprintf(stderr, "[table4] %s / %s / %d thread(s) ...\n",
                     dataset_name.c_str(), model_name.c_str(), threads);
        util::SetNumThreads(threads);
        auto model = core::CreateModelByName(model_name, dataset, graph,
                                             options.zoo);
        train::TrainConfig tc = options.ToTrainConfig();
        train::Trainer trainer(model.get(), dataset, tc);
        // Warm-up epoch (first-touch allocation), then timed epochs.
        trainer.TrainEpoch();
        util::Stopwatch sw;
        for (int e = 0; e < options.epochs; ++e) trainer.TrainEpoch();
        const double train_per_epoch =
            sw.ElapsedSeconds() / options.epochs;

        train::Evaluator evaluator(dataset);
        util::Stopwatch esw;
        evaluator.EvaluateModel(*model, {10});
        const double test_seconds = esw.ElapsedSeconds();

        const auto key = std::make_pair(model_name, dataset_name);
        if (threads == thread_counts.front()) {
          baseline[key] = train_per_epoch;
        }
        const double speedup =
            train_per_epoch > 0.0 ? baseline[key] / train_per_epoch : 0.0;
        table.AddRow({model_name, dataset_name,
                      util::StrFormat("%d", threads),
                      util::StrFormat("%.3f", train_per_epoch),
                      util::StrFormat("%.2fx", speedup),
                      util::StrFormat("%.3f", test_seconds)});
      }
    }
  }
  util::SetNumThreads(saved_threads);
  std::printf("Table IV (running time per epoch, seconds):\n");
  std::printf("kernels: isa=%s mode=%s\n",
              kernels::IsaName(kernels::ActiveIsa()),
              kernels::Deterministic() ? "deterministic" : "fast");
  table.Print();
  return 0;
}
