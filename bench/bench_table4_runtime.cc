// Table IV: running time (seconds) of one training epoch and one test
// pass for DGCF, HGT and DGNN on the three datasets. Shape to check
// against the paper: HGT is the slowest to train (edge-level multi-head
// attention); DGNN trains faster than both comparisons thanks to the
// factorized memory encoder.
//
//   ./bench_table4_runtime [--datasets=ciao,epinions,yelp] [--epochs=3]

#include "bench_common.h"
#include "train/evaluator.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  // Timing only needs a few epochs.
  if (!flags.Has("epochs")) options.epochs = 3;

  std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "ciao,epinions,yelp"), ',');
  std::vector<std::string> model_names =
      util::Split(flags.GetString("models", "DGCF,HGT,DGNN"), ',');

  util::Table table({"Model", "Dataset", "Train s/epoch", "Test s"});
  for (const auto& model_name : model_names) {
    for (const auto& dataset_name : datasets) {
      std::fprintf(stderr, "[table4] %s / %s ...\n", dataset_name.c_str(),
                   model_name.c_str());
      data::Dataset dataset = data::GenerateSynthetic(
          data::SyntheticConfig::Preset(dataset_name));
      graph::HeteroGraph graph(dataset);
      auto model = core::CreateModelByName(model_name, dataset, graph,
                                           options.zoo);
      train::TrainConfig tc = options.ToTrainConfig();
      train::Trainer trainer(model.get(), dataset, tc);
      // Warm-up epoch (first-touch allocation), then timed epochs.
      trainer.TrainEpoch();
      util::Stopwatch sw;
      for (int e = 0; e < options.epochs; ++e) trainer.TrainEpoch();
      const double train_per_epoch =
          sw.ElapsedSeconds() / options.epochs;

      train::Evaluator evaluator(dataset);
      util::Stopwatch esw;
      evaluator.EvaluateModel(*model, {10});
      const double test_seconds = esw.ElapsedSeconds();

      table.AddRow({model_name, dataset_name,
                    util::StrFormat("%.3f", train_per_epoch),
                    util::StrFormat("%.3f", test_seconds)});
    }
  }
  std::printf("Table IV (running time per epoch, seconds):\n");
  table.Print();
  return 0;
}
