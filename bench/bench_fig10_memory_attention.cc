// Figure 10: visualization of the learned memory attention vectors. The
// paper's qualitative claim: users connected by SOCIAL ties have similar
// user-user memory gates (but not necessarily similar user-item gates),
// while users with CO-INTERACTIONS have similar user-item gates (but not
// user-user gates). This harness trains DGNN, extracts both gate matrices
// (eta of Eq. 3 at the last layer), and reports mean cosine similarity of
// each gate type over (a) socially-tied pairs, (b) co-interacting pairs,
// (c) random pairs. Shape to check: sim(social pairs, social gates) and
// sim(co-interaction pairs, interaction gates) clearly exceed their
// random-pair baselines and their cross-relation counterparts' margins.
//
//   ./bench_fig10_memory_attention [--dataset=ciao] [--out_dir=.]

#include <fstream>
#include <set>

#include "bench_common.h"
#include "core/dgnn_model.h"
#include "viz/cluster_metrics.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  options.cutoffs = {10};
  const std::string dataset_name = flags.GetString("dataset", "ciao");
  const std::string out_dir = flags.GetString("out_dir", ".");

  data::Dataset dataset = data::GenerateSynthetic(
      data::SyntheticConfig::Preset(dataset_name));
  graph::HeteroGraph graph(dataset);

  std::fprintf(stderr, "[fig10] training DGNN ...\n");
  core::DgnnModel model(graph,
                        core::DgnnVariantConfig("DGNN", options.zoo));
  train::Trainer trainer(&model, dataset, options.ToTrainConfig());
  trainer.Fit();
  auto gates = model.ComputeUserGates();
  // Pearson-style centering: gates share a large bias component (they
  // start at 1); similarities of centered vectors compare gate patterns.
  gates.social_gates = viz::CenterColumns(gates.social_gates);
  gates.interaction_gates = viz::CenterColumns(gates.interaction_gates);

  // Pair sets: social ties, co-interaction pairs (users sharing an item,
  // not socially tied), random pairs as the baseline.
  std::vector<std::pair<int32_t, int32_t>> social_pairs = dataset.social;
  std::set<std::pair<int32_t, int32_t>> social_set(social_pairs.begin(),
                                                   social_pairs.end());
  std::vector<std::pair<int32_t, int32_t>> cointeract_pairs;
  {
    graph::CsrMatrix co = graph.user_item().Multiply(graph.item_user(), 8);
    co.RemoveDiagonal();
    for (int64_t u = 0; u < co.rows(); ++u) {
      for (int64_t i = co.indptr()[static_cast<size_t>(u)];
           i < co.indptr()[static_cast<size_t>(u) + 1]; ++i) {
        const int32_t v = co.indices()[static_cast<size_t>(i)];
        if (v <= u) continue;
        if (social_set.count({static_cast<int32_t>(u), v})) continue;
        cointeract_pairs.emplace_back(static_cast<int32_t>(u), v);
      }
    }
  }

  auto random_social = viz::MeanRandomPairCosine(gates.social_gates, 2000,
                                                 options.zoo.seed);
  auto random_interact = viz::MeanRandomPairCosine(gates.interaction_gates,
                                                   2000, options.zoo.seed);

  util::Table table({"Pair set", "user-user gate cos", "user-item gate cos"});
  table.AddRow({"social ties",
                bench::Fmt4(viz::MeanPairCosine(gates.social_gates,
                                                social_pairs)),
                bench::Fmt4(viz::MeanPairCosine(gates.interaction_gates,
                                                social_pairs))});
  table.AddRow({"co-interactions",
                bench::Fmt4(viz::MeanPairCosine(gates.social_gates,
                                                cointeract_pairs)),
                bench::Fmt4(viz::MeanPairCosine(gates.interaction_gates,
                                                cointeract_pairs))});
  table.AddRow({"random pairs", bench::Fmt4(random_social),
                bench::Fmt4(random_interact)});
  std::printf("Figure 10 (relation-specific memory attention similarity, "
              "dataset '%s'):\n",
              dataset_name.c_str());
  table.Print();

  // RGB projection of the gate vectors (the paper's color mapping,
  // simplified to the first three normalized gate dimensions) for external
  // plotting of the two subgraph case studies.
  std::ofstream csv(out_dir + "/fig10_gates.csv");
  csv << "user,r,g,b,kind\n";
  auto write_rgb = [&](const ag::Tensor& g, const char* kind) {
    for (int64_t u = 0; u < g.rows(); ++u) {
      float lo = g.at(u, 0);
      float hi = g.at(u, 0);
      for (int64_t c = 0; c < g.cols(); ++c) {
        lo = std::min(lo, g.at(u, c));
        hi = std::max(hi, g.at(u, c));
      }
      const float span = hi - lo > 1e-9f ? hi - lo : 1.0f;
      csv << u;
      for (int64_t c = 0; c < 3 && c < g.cols(); ++c) {
        csv << ',' << (g.at(u, c) - lo) / span;
      }
      csv << ',' << kind << '\n';
    }
  };
  write_rgb(gates.social_gates, "social");
  write_rgb(gates.interaction_gates, "interaction");
  return 0;
}
