// Microbenchmarks of the kernels behind Section IV-D's complexity claims:
// SpMM propagation (O(|E| d)), dense transforms (O(|V| d^2)), the memory
// encoder (O(|V| |M| d^2 + |M| |E| d)) and segment softmax (O(|E|)), plus
// direct GEMM/SpMM kernel sweeps over transpose combination and numeric
// mode (deterministic vs fast). All kernels dispatch to the active ISA
// variant (shown in each benchmark's label); force a level with the
// DGNN_SIMD env var to compare — e.g. DGNN_SIMD=off vs DGNN_SIMD=avx2 is
// the speedup quoted in EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <string>

#include "ag/tape.h"
#include "core/memory_encoder.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "kernels/kernels.h"

namespace {

using dgnn::ag::ParamStore;
using dgnn::ag::Tape;
using dgnn::ag::Tensor;

std::string ModeLabel(bool det) {
  return std::string(dgnn::kernels::IsaName(dgnn::kernels::ActiveIsa())) +
         (det ? "/det" : "/fast");
}

struct Fixture {
  Fixture() : dataset(dgnn::data::GenerateSynthetic(MakeConfig())),
              graph(dataset),
              adj(dgnn::graph::HeteroGraph::RowNormalized(graph.user_item())),
              adj_t(adj.Transposed()) {}

  static dgnn::data::SyntheticConfig MakeConfig() {
    auto c = dgnn::data::SyntheticConfig::CiaoSmall();
    return c;
  }

  dgnn::data::Dataset dataset;
  dgnn::graph::HeteroGraph graph;
  dgnn::graph::CsrMatrix adj, adj_t;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_SpMM(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int64_t d = state.range(0);
  dgnn::util::Rng rng(1);
  Tensor x = Tensor::GaussianInit(f.adj.cols(), d, 0.1f, rng);
  Tensor y(f.adj.rows(), d);
  for (auto _ : state) {
    f.adj.Multiply(x.data(), d, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.adj.nnz() * d);
}
BENCHMARK(BM_SpMM)->Arg(8)->Arg(16)->Arg(32);

void BM_DenseTransform(benchmark::State& state) {
  const int64_t d = state.range(0);
  dgnn::util::Rng rng(2);
  Fixture& f = GetFixture();
  const int64_t n = f.graph.num_items();
  ParamStore store;
  auto* w = store.CreateXavier("w", d, d, rng);
  Tensor h = Tensor::GaussianInit(n, d, 0.1f, rng);
  for (auto _ : state) {
    Tape tape;
    auto out = tape.MatMul(tape.Constant(h), tape.Param(w));
    benchmark::DoNotOptimize(tape.val(out).data());
  }
  state.SetItemsProcessed(state.iterations() * n * d * d);
}
BENCHMARK(BM_DenseTransform)->Arg(8)->Arg(16)->Arg(32);

// Full memory-encoder propagation (forward only), sweeping |M| to expose
// the O(|M|) scaling of Eq. 3.
void BM_MemoryEncoderPropagate(benchmark::State& state) {
  const int num_units = static_cast<int>(state.range(0));
  const int64_t d = 16;
  dgnn::util::Rng rng(3);
  Fixture& f = GetFixture();
  ParamStore store;
  dgnn::core::MemoryEncoder enc("enc", d, num_units,
                                dgnn::core::MemoryGateSide::kTarget, 0.2f,
                                &store, &rng);
  Tensor h_item = Tensor::GaussianInit(f.graph.num_items(), d, 0.1f, rng);
  Tensor h_user = Tensor::GaussianInit(f.graph.num_users(), d, 0.1f, rng);
  for (auto _ : state) {
    Tape tape;
    auto out = enc.Propagate(tape, tape.Constant(h_item),
                             tape.Constant(h_user), &f.adj, &f.adj_t);
    benchmark::DoNotOptimize(tape.val(out).data());
  }
}
BENCHMARK(BM_MemoryEncoderPropagate)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Memory-encoder forward+backward — the per-batch training cost driver.
void BM_MemoryEncoderTrainStep(benchmark::State& state) {
  const int num_units = static_cast<int>(state.range(0));
  const int64_t d = 16;
  dgnn::util::Rng rng(4);
  Fixture& f = GetFixture();
  ParamStore store;
  dgnn::core::MemoryEncoder enc("enc", d, num_units,
                                dgnn::core::MemoryGateSide::kTarget, 0.2f,
                                &store, &rng);
  auto* h_item =
      store.Create("h_item", Tensor::GaussianInit(f.graph.num_items(), d,
                                                  0.1f, rng));
  auto* h_user =
      store.Create("h_user", Tensor::GaussianInit(f.graph.num_users(), d,
                                                  0.1f, rng));
  for (auto _ : state) {
    Tape tape;
    auto out = enc.Propagate(tape, tape.Param(h_item), tape.Param(h_user),
                             &f.adj, &f.adj_t);
    tape.Backward(tape.MeanAll(out));
    store.ZeroGrad();
  }
}
BENCHMARK(BM_MemoryEncoderTrainStep)->Arg(2)->Arg(8);

// Raw dispatched GEMM, every transpose combination, deterministic and
// fast mode. Shapes mirror the library's real call sites: tall-skinny
// activations (nodes x d) against square d x d weights.
void BM_GemmKernel(benchmark::State& state) {
  const bool ta = state.range(0) != 0;
  const bool tb = state.range(1) != 0;
  const bool det = state.range(2) != 0;
  const int64_t rows = 8192;
  const int64_t d = 32;
  dgnn::util::Rng rng(6);
  // op(A): rows x d, op(B): d x d, out: rows x d.
  Tensor a = ta ? Tensor::GaussianInit(d, rows, 0.1f, rng)
                : Tensor::GaussianInit(rows, d, 0.1f, rng);
  Tensor b = Tensor::GaussianInit(d, d, 0.1f, rng);
  Tensor out(rows, d);
  dgnn::kernels::SetDeterministic(det);
  for (auto _ : state) {
    dgnn::kernels::GemmAcc(a.data(), a.rows(), a.cols(), ta, b.data(),
                           b.rows(), b.cols(), tb, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  dgnn::kernels::SetDeterministic(true);
  state.SetLabel(ModeLabel(det));
  state.SetItemsProcessed(state.iterations() * rows * d * d);
}
BENCHMARK(BM_GemmKernel)->ArgsProduct({{0, 1}, {0, 1}, {0, 1}});

// Raw dispatched SpMM at serving/training feature widths, both modes.
void BM_SpmmKernel(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int64_t d = state.range(0);
  const bool det = state.range(1) != 0;
  dgnn::util::Rng rng(7);
  Tensor x = Tensor::GaussianInit(f.adj.cols(), d, 0.1f, rng);
  Tensor y(f.adj.rows(), d);
  dgnn::kernels::SetDeterministic(det);
  for (auto _ : state) {
    f.adj.Multiply(x.data(), d, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  dgnn::kernels::SetDeterministic(true);
  state.SetLabel(ModeLabel(det));
  state.SetItemsProcessed(state.iterations() * f.adj.nnz() * d);
}
BENCHMARK(BM_SpmmKernel)->ArgsProduct({{8, 16, 32, 64}, {0, 1}});

void BM_SegmentSoftmax(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto edges = f.graph.ItemToUserEdges();
  dgnn::util::Rng rng(5);
  Tensor scores = Tensor::GaussianInit(edges.size(), 1, 1.0f, rng);
  for (auto _ : state) {
    Tape tape;
    auto out = tape.SegmentSoftmax(tape.Constant(scores), edges.dst,
                                   f.graph.num_users());
    benchmark::DoNotOptimize(tape.val(out).data());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_SegmentSoftmax);

}  // namespace
