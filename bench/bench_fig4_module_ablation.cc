// Figure 4: module ablation on all three datasets, HR@10 and NDCG@10.
// Variants: "-M" (no memory-augmented heterogeneity encoder), "-tau" (no
// social recalibration), "-LN" (no layer normalization). Shape to check:
// the full DGNN wins everywhere, and removing the memory encoder hurts
// the most. Also reports the "-srcgate" variant (the literal Eq. 4
// reading of the gate side) — an ablation DESIGN.md adds beyond the
// paper to quantify the Eq. 3 / Eq. 4 discrepancy.
//
//   ./bench_fig4_module_ablation [--datasets=ciao,epinions,yelp]

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 3;
  options.cutoffs = {10};

  std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "ciao,epinions,yelp"), ',');
  std::vector<std::string> variants = util::Split(
      flags.GetString("variants", "DGNN,DGNN-M,DGNN-tau,DGNN-LN,"
                                  "DGNN-srcgate"),
      ',');

  util::Table table({"Dataset", "Variant", "HR@10", "NDCG@10"});
  for (const auto& dataset_name : datasets) {
    data::Dataset dataset = data::GenerateSynthetic(
        data::SyntheticConfig::Preset(dataset_name));
    graph::HeteroGraph graph(dataset);
    for (const auto& variant : variants) {
      std::fprintf(stderr, "[fig4] %s / %s ...\n", dataset_name.c_str(),
                   variant.c_str());
      auto result = bench::RunModel(variant, dataset, graph, options);
      table.AddRow({dataset_name, variant,
                    bench::Fmt4(result.final_metrics.hr[10]),
                    bench::Fmt4(result.final_metrics.ndcg[10])});
    }
  }
  std::printf("Figure 4 (module ablation):\n");
  table.Print();
  return 0;
}
