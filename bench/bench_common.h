// Shared plumbing for the table/figure reproduction harnesses: flag
// parsing, dataset construction, and the train-and-evaluate loop every
// bench runs per model.

#ifndef DGNN_BENCH_BENCH_COMMON_H_
#define DGNN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "kernels/kernels.h"
#include "train/trainer.h"
#include "util/flags.h"
#include "util/run_log.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/telemetry.h"

namespace dgnn::bench {

// Shared --metrics-out=F / --trace-out=F / --run-log=F support: every
// bench that builds its options through BenchOptions::FromFlags gets
// telemetry-enabled runs whose metrics/trace JSON is flushed at process
// exit, plus a structured JSONL run log covering every Fit the bench
// performs — so any bench run can emit machine-readable payloads next to
// its printed table (inspect the run log with dgnn_inspect).
namespace internal {
inline std::string& MetricsOutPath() {
  static std::string path;
  return path;
}
inline std::string& TraceOutPath() {
  static std::string path;
  return path;
}
inline void FlushTelemetryOutputs() {
  const std::string& metrics = MetricsOutPath();
  if (!metrics.empty()) {
    util::Status s = telemetry::WriteMetricsJson(metrics);
    if (!s.ok()) {
      std::fprintf(stderr, "metrics-out: %s\n", s.ToString().c_str());
    } else {
      std::fprintf(stderr, "[bench] metrics written to %s\n",
                   metrics.c_str());
    }
  }
  const std::string& trace = TraceOutPath();
  if (!trace.empty()) {
    util::Status s = telemetry::WriteTraceJson(trace);
    if (!s.ok()) {
      std::fprintf(stderr, "trace-out: %s\n", s.ToString().c_str());
    } else {
      std::fprintf(stderr, "[bench] trace written to %s\n", trace.c_str());
    }
  }
  if (runlog::Active()) {
    std::fprintf(stderr, "[bench] run log written to %s (%lld events)\n",
                 runlog::CurrentPath().c_str(),
                 (long long)runlog::NumEvents());
    runlog::Close();
  }
}
}  // namespace internal

inline void SetupTelemetryFromFlags(const util::Flags& flags) {
  // Kernel numeric mode, honored by every bench: --deterministic=1
  // (default) keeps bit-identical serial accumulation; --deterministic=0
  // lets the dispatched SIMD kernels use FMA and relaxed accumulation
  // order. The ISA itself is picked at runtime (override: DGNN_SIMD env).
  kernels::SetDeterministic(flags.GetBool("deterministic", true));
  internal::MetricsOutPath() = flags.GetString("metrics-out", "");
  internal::TraceOutPath() = flags.GetString("trace-out", "");
  const std::string run_log = flags.GetString("run-log", "");
  if (!run_log.empty()) {
    util::Status s = runlog::Open(run_log);
    if (!s.ok()) {
      std::fprintf(stderr, "run-log: %s\n", s.ToString().c_str());
      std::exit(2);
    }
  }
  if (internal::MetricsOutPath().empty() &&
      internal::TraceOutPath().empty() && run_log.empty()) {
    return;
  }
  if (!internal::MetricsOutPath().empty() ||
      !internal::TraceOutPath().empty()) {
    telemetry::SetEnabled(true);
  }
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(internal::FlushTelemetryOutputs);
  }
}

struct BenchOptions {
  int epochs = 25;
  int batch_size = 1024;
  float learning_rate = 0.01f;
  float l2_reg = 1e-4f;
  float weight_decay = 0.01f;
  core::ZooConfig zoo;  // d=16, L=2, |M|=8, paper defaults
  std::vector<int> cutoffs = {5, 10, 20};
  // Final metrics are averaged over this many training runs with
  // different seeds; on the small presets, single-seed differences of
  // +-0.04 HR@10 are common, so comparison tables default to 3.
  int num_seeds = 1;
  // When > 0, evaluate every `eval_every` epochs and stop a run once the
  // metric plateaus for `early_stop_patience` evaluations (per-model
  // stopping, applied uniformly — the harness equivalent of the paper's
  // per-model tuning).
  int eval_every = 0;
  int early_stop_patience = 0;
  bool verbose = false;
  // Run-log diagnostics, forwarded into every TrainConfig the bench
  // builds (see train::TrainConfig).
  int grad_stats_every = 0;
  bool check_numerics = false;

  // Common flags: --epochs, --batch, --dim, --layers, --memory, --seed,
  // --verbose, plus --metrics-out / --trace-out / --run-log (telemetry
  // JSON and run log flushed at exit; see SetupTelemetryFromFlags) and
  // --grad-stats-every / --check-numerics (run-log diagnostics).
  static BenchOptions FromFlags(const util::Flags& flags) {
    SetupTelemetryFromFlags(flags);
    BenchOptions o;
    o.epochs = static_cast<int>(flags.GetInt("epochs", o.epochs));
    o.batch_size = static_cast<int>(flags.GetInt("batch", o.batch_size));
    o.zoo.embedding_dim = flags.GetInt("dim", o.zoo.embedding_dim);
    o.zoo.num_layers =
        static_cast<int>(flags.GetInt("layers", o.zoo.num_layers));
    o.zoo.num_memory_units =
        static_cast<int>(flags.GetInt("memory", o.zoo.num_memory_units));
    o.zoo.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    o.weight_decay =
        static_cast<float>(flags.GetDouble("wd", o.weight_decay));
    o.num_seeds = static_cast<int>(flags.GetInt("seeds", o.num_seeds));
    o.eval_every = static_cast<int>(flags.GetInt("eval_every", o.eval_every));
    o.early_stop_patience =
        static_cast<int>(flags.GetInt("patience", o.early_stop_patience));
    o.verbose = flags.GetBool("verbose", false);
    o.grad_stats_every =
        static_cast<int>(flags.GetInt("grad-stats-every", 0));
    o.check_numerics = flags.GetBool("check-numerics", false);
    return o;
  }

  train::TrainConfig ToTrainConfig() const {
    train::TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = batch_size;
    tc.learning_rate = learning_rate;
    tc.l2_reg = l2_reg;
    tc.weight_decay = weight_decay;
    tc.eval_cutoffs = cutoffs;
    tc.eval_every = eval_every;
    tc.early_stop_patience = early_stop_patience;
    tc.verbose = verbose;
    tc.seed = zoo.seed;
    tc.grad_stats_every = grad_stats_every;
    tc.check_numerics = check_numerics;
    return tc;
  }
};

// Trains `model_name` from scratch on the dataset and returns the full
// training result (final metrics under `options.cutoffs`). When
// options.num_seeds > 1, the model is trained once per seed and the final
// metrics are averaged; epoch traces and timings come from the first run.
inline train::TrainResult RunModel(const std::string& model_name,
                                   const data::Dataset& dataset,
                                   const graph::HeteroGraph& graph,
                                   const BenchOptions& options,
                                   int eval_every = 0) {
  train::TrainResult first;
  train::Metrics sum;
  const int runs = std::max(options.num_seeds, 1);
  for (int run = 0; run < runs; ++run) {
    BenchOptions o = options;
    o.zoo.seed = options.zoo.seed + static_cast<uint64_t>(run) * 1000003;
    auto model = core::CreateModelByName(model_name, dataset, graph, o.zoo);
    train::TrainConfig tc = o.ToTrainConfig();
    tc.seed = o.zoo.seed;
    if (eval_every > 0) tc.eval_every = eval_every;
    train::Trainer trainer(model.get(), dataset, tc);
    train::TrainResult result = trainer.Fit();
    if (run == 0) {
      first = std::move(result);
      sum = first.final_metrics;
    } else {
      for (auto& [n, v] : sum.hr) v += result.final_metrics.hr[n];
      for (auto& [n, v] : sum.ndcg) v += result.final_metrics.ndcg[n];
    }
  }
  for (auto& [n, v] : sum.hr) v /= runs;
  for (auto& [n, v] : sum.ndcg) v /= runs;
  first.final_metrics = sum;
  return first;
}

inline std::string Fmt4(double v) { return util::StrFormat("%.4f", v); }

// "+12.34%" improvement of `best` over `other`.
inline std::string ImprovementPct(double best, double other) {
  if (other <= 0.0) return "n/a";
  return util::StrFormat("%.2f%%", (best - other) / other * 100.0);
}

}  // namespace dgnn::bench

#endif  // DGNN_BENCH_BENCH_COMMON_H_
