// Design-choice ablation (beyond the paper): quantifies every
// interpretation decision DESIGN.md documents for the under-specified
// parts of Eqs. 3/4/7/8, by swapping one choice at a time against the
// repository's default DGNN configuration. Rows:
//   default        — the configuration used everywhere else
//   eq4-srcgate    — literal Eq. 4 gate side (source-gated)
//   eq8-concat     — literal Eq. 8 concatenation (vs sum pooling)
//   eq7-selfloop   — literal Eq. 7 self-propagation through the encoder
//   eq7-layernorm  — literal Eq. 7 per-node LayerNorm (vs RMS feature
//                    rescale)
//   dense-W1       — literal Eq. 3 dense d x d memory transforms
//   rowmean-adj    — the paper's joint row-mean normalizer (vs sym-norm)
//   no-anchor-lr   — disable the L2-SP anchors / lr scaling priors
//
//   ./bench_ablation_design [--dataset=ciao] [--epochs=25] [--seeds=3]

#include "bench_common.h"
#include "core/dgnn_model.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 3;
  options.cutoffs = {10};
  const std::string dataset_name = flags.GetString("dataset", "ciao");

  data::Dataset dataset = data::GenerateSynthetic(
      data::SyntheticConfig::Preset(dataset_name));
  graph::HeteroGraph graph(dataset);

  struct Variant {
    const char* name;
    void (*apply)(core::DgnnConfig&);
  };
  const Variant kVariants[] = {
      {"default", [](core::DgnnConfig&) {}},
      {"eq4-srcgate",
       [](core::DgnnConfig& c) {
         c.gate_side = core::MemoryGateSide::kSource;
       }},
      {"eq8-concat",
       [](core::DgnnConfig& c) {
         c.cross_layer = core::DgnnConfig::CrossLayer::kConcat;
       }},
      {"eq7-selfloop",
       [](core::DgnnConfig& c) {
         c.use_self_loop = true;
         c.use_self_encoder = true;
       }},
      {"eq7-layernorm",
       [](core::DgnnConfig& c) {
         c.norm_kind = core::DgnnConfig::NormKind::kLayer;
         c.layer_norm_gain_init = 1.0f;
       }},
      {"dense-W1",
       [](core::DgnnConfig& c) {
         c.transform_kind = core::DgnnConfig::TransformKind::kDense;
       }},
      {"rowmean-adj", [](core::DgnnConfig& c) { c.use_sym_norm = false; }},
      {"no-anchor-lr",
       [](core::DgnnConfig& c) {
         c.encoder_lr_scale = 1.0f;
         c.gate_lr_scale = 1.0f;
       }},
  };

  util::Table table({"Variant", "HR@10", "NDCG@10", "delta HR vs default"});
  double default_hr = 0.0;
  for (const Variant& variant : kVariants) {
    std::fprintf(stderr, "[ablation] %s ...\n", variant.name);
    train::Metrics sum;
    sum.hr[10] = 0.0;
    sum.ndcg[10] = 0.0;
    for (int run = 0; run < options.num_seeds; ++run) {
      core::DgnnConfig config;
      config.embedding_dim = options.zoo.embedding_dim;
      config.num_layers = options.zoo.num_layers;
      config.num_memory_units = options.zoo.num_memory_units;
      config.seed = options.zoo.seed + static_cast<uint64_t>(run) * 1000003;
      variant.apply(config);
      core::DgnnModel model(graph, config);
      train::TrainConfig tc = options.ToTrainConfig();
      tc.seed = config.seed;
      train::Trainer trainer(&model, dataset, tc);
      auto result = trainer.Fit();
      sum.hr[10] += result.final_metrics.hr[10];
      sum.ndcg[10] += result.final_metrics.ndcg[10];
    }
    const double hr = sum.hr[10] / options.num_seeds;
    const double ndcg = sum.ndcg[10] / options.num_seeds;
    if (std::string(variant.name) == "default") default_hr = hr;
    table.AddRow({variant.name, bench::Fmt4(hr), bench::Fmt4(ndcg),
                  util::StrFormat("%+.4f", hr - default_hr)});
  }
  std::printf("Design-choice ablation (dataset '%s'; see DESIGN.md for the "
              "rationale of each default):\n",
              dataset_name.c_str());
  table.Print();
  return 0;
}
