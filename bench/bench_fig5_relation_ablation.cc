// Figure 5: effect of the heterogeneous relation types — variants "-S"
// (no social matrix), "-T" (no item-relation matrix), "-ST" (neither) —
// on Ciao and Yelp with N in {5, 10, 20}. Shape to check: the full model
// wins in all cases and "-ST" is always worst.
//
//   ./bench_fig5_relation_ablation [--datasets=ciao,yelp]

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  if (!flags.Has("seeds")) options.num_seeds = 3;
  options.cutoffs = {5, 10, 20};

  std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "ciao,yelp"), ',');
  const std::vector<std::string> variants = {"DGNN", "DGNN-S", "DGNN-T",
                                             "DGNN-ST"};

  util::Table table({"Dataset", "Variant", "HR@5", "HR@10", "HR@20",
                     "NDCG@5", "NDCG@10", "NDCG@20"});
  for (const auto& dataset_name : datasets) {
    data::Dataset dataset = data::GenerateSynthetic(
        data::SyntheticConfig::Preset(dataset_name));
    graph::HeteroGraph graph(dataset);
    for (const auto& variant : variants) {
      std::fprintf(stderr, "[fig5] %s / %s ...\n", dataset_name.c_str(),
                   variant.c_str());
      auto result = bench::RunModel(variant, dataset, graph, options);
      const auto& m = result.final_metrics;
      table.AddRow({dataset_name, variant, bench::Fmt4(m.hr.at(5)),
                    bench::Fmt4(m.hr.at(10)), bench::Fmt4(m.hr.at(20)),
                    bench::Fmt4(m.ndcg.at(5)), bench::Fmt4(m.ndcg.at(10)),
                    bench::Fmt4(m.ndcg.at(20))});
    }
  }
  std::printf("Figure 5 (heterogeneous relation ablation):\n");
  table.Print();
  return 0;
}
