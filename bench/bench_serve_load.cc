// bench_serve_load — load generator for the online serving engine
// (src/serve/engine.h), with two measurement modes:
//
//  * CLOSED LOOP (default): N client threads issue back-to-back requests
//    and the harness reports QPS and p50/p95/p99 latency (telemetry
//    histogram serve.request_seconds) per client-thread count. Simple
//    and good for throughput ceilings, but its latency numbers suffer
//    coordinated omission: a stalled server pauses the clients, so the
//    stall is sampled once instead of once per request that would have
//    arrived. CI runs this mode via ci/check_serve.sh.
//
//  * OPEN LOOP (--arrival=poisson|burst|diurnal): requests arrive on a
//    schedule that does not care how fast the engine answers. A trace of
//    (scheduled arrival, request) records is generated (or replayed from
//    a file), dispatched by a fixed worker pool, and every latency is
//    measured from the SCHEDULED arrival — queueing delay counts. See
//    serve/trace.h and serve/replay.h. This is the mode whose numbers
//    are published to bench/trajectory/BENCH_serve.json and gated by
//    ci/check_bench.sh. Each point also reports engine-side stage
//    attribution (mean queue/recal/compute/rank/reply from the
//    serve.stage.* histograms) and the distinct trace-id count, which
//    must equal requests when per-request tracing is sound.
//
// Setup (both modes): a synthetic dataset + model is built in-process,
// exported through the real snapshot writer, and loaded back through the
// real reader — so the measured path is exactly what dgnn_serve runs.
// The mix is mostly TopK with some Score / SimilarUsers, plus a slice of
// unknown-user (degraded) traffic.
//
// Flags:
//   --preset=tiny|ciao|epinions|yelp   dataset scale (default tiny)
//   --dim=16 --k=10                    embedding dim / top-k size
//   --cache=4096                       engine LRU capacity (0 disables)
//   --social-alpha=0                   serve-time social recalibration
//   --hot-fraction=0.8                 share of traffic on 1/8 of users
//   --max-queue=0 --deadline-ms=0      engine overload / deadline config
//   quantization & retrieval (README "Quantization & retrieval index"):
//     --quant=none|int8|fp16           embedding storage in the snapshot
//     --index[=1] --clusters=N         attach an IVF index at export
//     --nprobe=N --rerank=R            engine probe/rerank config
//     --mix=default|topk               topk pins the trace to known-user
//                                      TopK only (retrieval-path p99)
//     --recall-users=256               sample size for recall@k vs the
//                                      fp32 exact ranking (0 disables)
//     --recall-floor=X                 exit nonzero if recall@k < X
//     --max-rss-mb=N                   fail fast if the loaded snapshot's
//                                      resident footprint exceeds N MB
//   closed loop:
//     --requests=200                   requests per client per run
//     --clients=1,2,4,8                client-thread sweep
//   open loop:
//     --arrival=poisson|burst|diurnal  arrival process (enables the mode)
//     --qps=500,1000                   target-rate sweep
//     --requests=200                   requests per sweep point
//     --workers=4                      dispatch threads
//     --trace-seed=1                   schedule seed
//     --record-trace=F                 write the trace (single-rate only)
//     --replay-trace=F                 replay a recorded trace instead
//   --bench-json=F                     machine-readable results (both
//                                      modes; schema_version 2, validated
//                                      by `dgnn_inspect bench`)
//   --metrics-out / --trace-out / --run-log   (see bench_common.h)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.h"
#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "serve/engine.h"
#include "serve/replay.h"
#include "serve/snapshot.h"
#include "serve/trace.h"
#include "train/recommender.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace dgnn;

// Unique per-process temp path: concurrent bench invocations (or a
// previous crashed run's leftover file) must not collide on a fixed
// name. mkstemp creates the file exclusively; we keep the name and let
// the snapshot writer atomically replace it. The path is unlinked at
// process exit (atexit) so early-error returns don't strand the file —
// main() still removes it eagerly once the engine has loaded.
std::string& TempSnapshotSlot() {
  static std::string path;
  return path;
}

void RemoveTempSnapshot() {
  const std::string& path = TempSnapshotSlot();
  if (!path.empty()) std::remove(path.c_str());
}

std::string TempSnapshotPath() {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  std::string tmpl = dir + "/dgnn_bench_serve_snapshot.XXXXXX";
  int fd = ::mkstemp(tmpl.data());
  if (fd < 0) {
    // mkstemp failing (exotic TMPDIR) falls back to pid+counter names,
    // still created exclusively so a concurrent process can never be
    // handed the same file.
    for (int attempt = 0; attempt < 64 && fd < 0; ++attempt) {
      tmpl = dir + "/dgnn_bench_serve_snapshot." +
             std::to_string(static_cast<long long>(::getpid())) + "." +
             std::to_string(attempt) + ".bin";
      fd = ::open(tmpl.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0600);
    }
    if (fd < 0) {
      std::fprintf(stderr, "cannot create temp snapshot under %s\n",
                   dir.c_str());
      std::exit(2);
    }
  }
  ::close(fd);
  TempSnapshotSlot() = tmpl;
  std::atexit(RemoveTempSnapshot);
  return tmpl;
}

struct SweepResult {
  int clients = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  int64_t batches = 0;
};

SweepResult RunSweepPoint(serve::ServingEngine& engine, int clients,
                          int requests_per_client, int32_t num_users,
                          int k, double hot_fraction) {
  telemetry::Reset();
  telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.request_seconds");
  const serve::EngineStats before = engine.stats();

  // Closed loop: every client issues its next request as soon as the
  // previous one returns. The request mix is deterministic per (client,
  // iteration) so sweep points are comparable.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(0x5eedbeef + static_cast<uint64_t>(c));
      const int32_t hot_users = std::max<int32_t>(1, num_users / 8);
      for (int i = 0; i < requests_per_client; ++i) {
        serve::Request req;
        const int mix = i % 10;
        // 7/10 TopK, 1/10 Score, 1/10 SimilarUsers, 1/10 unknown user
        // (degraded popularity path).
        if (mix < 7) {
          req.type = serve::Request::Type::kTopK;
          req.k = k;
        } else if (mix == 7) {
          req.type = serve::Request::Type::kScore;
        } else if (mix == 8) {
          req.type = serve::Request::Type::kSimilarUsers;
          req.k = 5;
        } else {
          req.type = serve::Request::Type::kTopK;
          req.k = k;
          req.user = num_users + static_cast<int32_t>(rng.UniformInt(100));
        }
        if (mix != 9) {
          const bool hot =
              rng.UniformInt(1000) < static_cast<int64_t>(hot_fraction * 1000);
          req.user = hot ? static_cast<int32_t>(rng.UniformInt(hot_users))
                         : static_cast<int32_t>(rng.UniformInt(num_users));
        }
        if (req.type == serve::Request::Type::kScore) {
          req.item = static_cast<int32_t>(
              rng.UniformInt(engine.snapshot()->meta.num_items));
        }
        const serve::Response resp = engine.Handle(req);
        if (!resp.ok) {
          std::fprintf(stderr, "request failed: %s\n", resp.error.c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const serve::EngineStats after = engine.stats();
  SweepResult r;
  r.clients = clients;
  r.requests = after.requests - before.requests;
  r.seconds = seconds;
  r.qps = seconds > 0 ? static_cast<double>(r.requests) / seconds : 0.0;
  const std::vector<double> q =
      latency->ApproxQuantilesSeconds({0.50, 0.95, 0.99});
  r.p50_ms = q[0] * 1e3;
  r.p95_ms = q[1] * 1e3;
  r.p99_ms = q[2] * 1e3;
  const int64_t lookups = (after.cache_hits - before.cache_hits) +
                          (after.cache_misses - before.cache_misses);
  r.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(after.cache_hits - before.cache_hits) /
                static_cast<double>(lookups)
          : 0.0;
  r.batches = after.batches - before.batches;
  return r;
}

// Per-stage mean latencies for one open-loop point, read from the
// serve.stage.* registry histograms (telemetry::Reset() runs before each
// point, so the totals are that point's alone).
struct StageMeans {
  double queue_ms = 0, recal_ms = 0, compute_ms = 0, rank_ms = 0,
         reply_ms = 0, e2e_ms = 0;
};

double HistMeanMs(const char* name) {
  const telemetry::Histogram::Counts c =
      telemetry::GetHistogram(name)->SnapshotCounts();
  return c.count > 0 ? static_cast<double>(c.sum_nanos) / 1e6 /
                           static_cast<double>(c.count)
                     : 0.0;
}

StageMeans ReadStageMeans() {
  StageMeans m;
  m.queue_ms = HistMeanMs("serve.stage.queue_seconds");
  m.recal_ms = HistMeanMs("serve.stage.recal_seconds");
  m.compute_ms = HistMeanMs("serve.stage.compute_seconds");
  m.rank_ms = HistMeanMs("serve.stage.rank_seconds");
  m.reply_ms = HistMeanMs("serve.stage.reply_seconds");
  m.e2e_ms = HistMeanMs("serve.e2e_seconds");
  return m;
}

// One open-loop point serialized for BENCH_serve.json (schema v2:
// snapshot_bytes always present, recall_at_k only when measured).
std::string OpenPointJson(double target_qps, const serve::ReplayResult& r,
                          const StageMeans& stages, int64_t snapshot_bytes,
                          double recall_at_k) {
  util::JsonObject o;
  o.Set("target_qps", target_qps)
      .Set("requests", r.requests)
      .Set("seconds", r.seconds)
      .Set("offered_qps", r.offered_qps)
      .Set("achieved_qps", r.achieved_qps)
      .Set("p50_ms", r.p50_ms)
      .Set("p95_ms", r.p95_ms)
      .Set("p99_ms", r.p99_ms)
      .Set("max_ms", r.max_ms)
      .Set("mean_ms", r.mean_ms)
      .Set("ok", r.ok)
      .Set("degraded", r.degraded)
      .Set("shed", r.shed)
      .Set("expired", r.expired)
      .Set("failed", r.failed)
      .Set("late_dispatches", r.late_dispatches)
      .Set("max_lateness_ms", r.max_lateness_ms)
      .Set("peak_rss_bytes", r.peak_rss_bytes)
      .Set("distinct_trace_ids", r.distinct_trace_ids)
      .Set("stage_queue_ms_mean", stages.queue_ms)
      .Set("stage_recal_ms_mean", stages.recal_ms)
      .Set("stage_compute_ms_mean", stages.compute_ms)
      .Set("stage_rank_ms_mean", stages.rank_ms)
      .Set("stage_reply_ms_mean", stages.reply_ms)
      .Set("e2e_ms_mean", stages.e2e_ms)
      .Set("snapshot_bytes", snapshot_bytes);
  if (recall_at_k >= 0.0) o.Set("recall_at_k", recall_at_k);
  return o.Build();
}

std::string ClosedPointJson(const SweepResult& r) {
  util::JsonObject o;
  o.Set("clients", r.clients)
      .Set("requests", r.requests)
      .Set("seconds", r.seconds)
      .Set("qps", r.qps)
      .Set("p50_ms", r.p50_ms)
      .Set("p95_ms", r.p95_ms)
      .Set("p99_ms", r.p99_ms)
      .Set("cache_hit_rate", r.cache_hit_rate)
      .Set("batches", r.batches);
  return o.Build();
}

// Snapshot storage / retrieval configuration stamped into the JSON
// header so committed trajectory points are self-describing (an IVF
// point and its brute-force baseline differ only here).
struct StorageInfo {
  std::string quant = "none";
  bool index = false;
  int nprobe = 0;
  int rerank = 0;
  std::string mix = "default";
};

int WriteBenchJson(const std::string& path, const std::string& mode,
                   const std::string& preset, int dim, int k,
                   const std::string& arrival, int workers,
                   const StorageInfo& storage,
                   const std::vector<std::string>& points) {
  std::string arr = "[";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) arr += ',';
    arr += points[i];
  }
  arr += ']';
  util::JsonObject o;
  o.Set("schema_version", 2)
      .Set("bench", "bench_serve_load")
      .Set("mode", mode)
      .Set("preset", preset)
      .Set("dim", dim)
      .Set("k", k)
      .Set("quant", storage.quant)
      .Set("index", storage.index)
      .Set("nprobe", storage.nprobe)
      .Set("rerank", storage.rerank);
  if (mode == "open") {
    o.Set("arrival", arrival).Set("workers", workers)
        .Set("mix", storage.mix);
  }
  o.SetRaw("points", arr);
  util::Status s = fs::AtomicWriteFile(path, o.Build() + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "bench-json: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench] results written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::SetupTelemetryFromFlags(flags);
  // The latency histogram drives the closed-loop report, so telemetry is
  // always on here (unlike the training benches, where it is opt-in).
  telemetry::SetEnabled(true);
  if (flags.Has("threads")) {
    util::SetNumThreads(
        static_cast<int>(flags.GetInt("threads", util::NumThreads())));
  }

  auto config =
      data::SyntheticConfig::Preset(flags.GetString("preset", "tiny"));
  data::Dataset dataset = data::GenerateSynthetic(config);
  graph::HeteroGraph graph(dataset);
  core::ZooConfig zoo;
  zoo.embedding_dim = flags.GetInt("dim", 16);
  auto model = core::CreateModelByName("BPR-MF", dataset, graph, zoo);
  train::Recommender recommender(*model, dataset);

  const int k = static_cast<int>(flags.GetInt("k", 10));
  const double hot_fraction = flags.GetDouble("hot-fraction", 0.8);
  const std::string bench_json = flags.GetString("bench-json", "");

  serve::EngineConfig engine_config;
  engine_config.cache_capacity =
      static_cast<int>(flags.GetInt("cache", 4096));
  engine_config.social_alpha =
      static_cast<float>(flags.GetDouble("social-alpha", 0.0));
  engine_config.max_queue = static_cast<int>(flags.GetInt("max-queue", 0));
  engine_config.default_deadline_ms = flags.GetInt("deadline-ms", 0);
  engine_config.nprobe = static_cast<int>(flags.GetInt("nprobe", 0));
  engine_config.rerank = static_cast<int>(flags.GetInt("rerank", 0));

  // Export through the real writer and load through the real reader so
  // the benched engine serves exactly what dgnn_serve would.
  const std::string snapshot_path = TempSnapshotPath();
  serve::Snapshot snapshot = serve::BuildSnapshot(
      recommender, dataset, "BPR-MF", "bench_serve_load");

  // recall@k ground truth: exact fp32 top-k for a stratified user sample,
  // computed from the snapshot BEFORE any quantization/indexing so it is
  // the full-precision exact ranking the approximate path is judged
  // against. Only meaningful when the serving path is approximate
  // (quantized storage or IVF probing) and social_alpha is 0 (the engine
  // then scores with exactly the raw user row used here).
  const std::string quant_name = flags.GetString("quant", "none");
  const bool build_index = flags.GetBool("index", false);
  const bool approx_path =
      quant_name != "none" || (build_index && engine_config.nprobe > 0);
  StorageInfo storage;
  storage.quant = quant_name;
  storage.index = build_index;
  storage.nprobe = engine_config.nprobe;
  storage.rerank = engine_config.rerank;
  const int recall_users =
      static_cast<int>(flags.GetInt("recall-users", 256));
  std::vector<int32_t> recall_user_ids;
  std::vector<std::vector<int32_t>> recall_baseline;
  if (approx_path && recall_users > 0 &&
      engine_config.social_alpha == 0.0f) {
    const int n = std::min<int>(recall_users, dataset.num_users);
    for (int i = 0; i < n; ++i) {
      const int32_t u = static_cast<int32_t>(
          static_cast<int64_t>(i) * dataset.num_users / n);
      if (!recall_user_ids.empty() && recall_user_ids.back() == u) continue;
      recall_user_ids.push_back(u);
    }
    recall_baseline.reserve(recall_user_ids.size());
    for (int32_t u : recall_user_ids) {
      std::vector<int32_t> ids;
      for (const serve::ScoredItem& s : serve::TopKUnseenItems(
               snapshot.users.row(u), snapshot.items,
               snapshot.seen[static_cast<size_t>(u)], k)) {
        ids.push_back(s.item);
      }
      std::sort(ids.begin(), ids.end());
      recall_baseline.push_back(std::move(ids));
    }
  }

  if (build_index) {
    index::IvfConfig ivf;
    ivf.nlist = static_cast<int32_t>(flags.GetInt("clusters", 0));
    util::Status built = serve::BuildSnapshotIndex(&snapshot, ivf);
    if (!built.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   built.ToString().c_str());
      return 1;
    }
  }
  if (quant_name != "none") {
    auto codec = quant::ParseCodec(quant_name);
    if (!codec.ok()) {
      std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
      return 2;
    }
    util::Status quantized =
        serve::QuantizeSnapshot(&snapshot, codec.value());
    if (!quantized.ok()) {
      std::fprintf(stderr, "quantize failed: %s\n",
                   quantized.ToString().c_str());
      return 1;
    }
  }

  util::Status written = serve::WriteSnapshot(snapshot, snapshot_path);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 written.ToString().c_str());
    std::remove(snapshot_path.c_str());
    return 1;
  }
  int64_t snapshot_bytes = 0;
  {
    struct stat st;
    if (::stat(snapshot_path.c_str(), &st) == 0) snapshot_bytes = st.st_size;
  }
  // Release the in-memory export copy before loading: the engine should
  // be measured against its own resident footprint, not the exporter's.
  snapshot = serve::Snapshot();

  serve::ServingEngine engine(engine_config);
  util::Status loaded = engine.Load(snapshot_path);
  std::remove(snapshot_path.c_str());
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }

  // --max-rss-mb: fail fast, BEFORE any load is offered, when the loaded
  // snapshot's resident footprint blows the stated memory budget — a
  // serving fleet admission check, not a soft warning.
  const int64_t resident_bytes =
      serve::SnapshotResidentBytes(*engine.snapshot());
  const double max_rss_mb = flags.GetDouble("max-rss-mb", 0.0);
  if (max_rss_mb > 0 &&
      static_cast<double>(resident_bytes) > max_rss_mb * 1024.0 * 1024.0) {
    std::fprintf(stderr,
                 "error: snapshot resident footprint %.1f MB exceeds "
                 "--max-rss-mb=%.1f MB budget (quantize the snapshot, "
                 "shrink the preset, or raise the budget)\n",
                 static_cast<double>(resident_bytes) / (1024.0 * 1024.0),
                 max_rss_mb);
    return 3;
  }
  std::fprintf(stderr,
               "[bench] snapshot: %.1f MB on disk, ~%.1f MB resident\n",
               static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0),
               static_cast<double>(resident_bytes) / (1024.0 * 1024.0));

  // Measured recall@k of the engine's (possibly approximate) TopK against
  // the fp32 exact baseline.
  double recall_at_k = -1.0;
  if (!recall_user_ids.empty()) {
    double total = 0.0;
    for (size_t i = 0; i < recall_user_ids.size(); ++i) {
      serve::Request req;
      req.type = serve::Request::Type::kTopK;
      req.user = recall_user_ids[i];
      req.k = k;
      const serve::Response resp = engine.Handle(req);
      if (!resp.ok) {
        std::fprintf(stderr, "recall probe failed: %s\n",
                     resp.error.c_str());
        return 1;
      }
      const std::vector<int32_t>& truth = recall_baseline[i];
      int hits = 0;
      for (const serve::ScoredItem& s : resp.items) {
        if (std::binary_search(truth.begin(), truth.end(), s.item)) ++hits;
      }
      total += truth.empty()
                   ? 1.0
                   : static_cast<double>(hits) /
                         static_cast<double>(truth.size());
    }
    recall_at_k = total / static_cast<double>(recall_user_ids.size());
    std::fprintf(stderr, "[bench] recall@%d vs fp32 exact: %.4f (%zu "
                 "users)\n",
                 k, recall_at_k, recall_user_ids.size());
    const double floor = flags.GetDouble("recall-floor", -1.0);
    if (floor >= 0.0 && recall_at_k < floor) {
      std::fprintf(stderr,
                   "error: recall@%d %.4f below --recall-floor=%.4f\n", k,
                   recall_at_k, floor);
      return 4;
    }
  }

  // ---------------------------------------------------------------------
  // Open loop: --arrival or --replay-trace selects it.
  // ---------------------------------------------------------------------
  if (flags.Has("arrival") || flags.Has("replay-trace")) {
    serve::ReplayConfig replay_config;
    replay_config.workers = static_cast<int>(flags.GetInt("workers", 4));
    const std::string replay_path = flags.GetString("replay-trace", "");
    const std::string record_path = flags.GetString("record-trace", "");

    serve::ScheduleConfig schedule;
    auto arrival =
        serve::ParseArrivalProcess(flags.GetString("arrival", "poisson"));
    if (!arrival.ok()) {
      std::fprintf(stderr, "%s\n", arrival.status().ToString().c_str());
      return 2;
    }
    schedule.arrival = arrival.value();
    schedule.num_requests = flags.GetInt("requests", 200);
    schedule.seed = static_cast<uint64_t>(flags.GetInt("trace-seed", 1));
    const std::string mix = flags.GetString("mix", "default");
    if (mix == "topk") {
      schedule.topk_only = true;
    } else if (mix != "default") {
      std::fprintf(stderr, "--mix must be default or topk\n");
      return 2;
    }
    storage.mix = mix;

    std::vector<double> qps_sweep;
    for (const std::string& tok :
         util::Split(flags.GetString("qps", "500"), ',')) {
      auto parsed = util::ParseInt(util::Trim(tok));
      if (!parsed.ok() || parsed.value() < 1) {
        std::fprintf(stderr, "bad --qps entry '%s'\n", tok.c_str());
        return 2;
      }
      qps_sweep.push_back(static_cast<double>(parsed.value()));
    }
    if (!record_path.empty() && qps_sweep.size() != 1) {
      std::fprintf(stderr,
                   "--record-trace requires a single --qps value\n");
      return 2;
    }

    std::printf(
        "serving load test (open loop): %s (%d users, %d items, dim "
        "%lld), k=%d, arrival=%s, %lld requests/point, workers=%d, "
        "max_queue=%d, deadline_ms=%lld\n\n",
        dataset.name.c_str(), dataset.num_users, dataset.num_items,
        (long long)zoo.embedding_dim, k,
        serve::ArrivalProcessName(schedule.arrival),
        (long long)schedule.num_requests, replay_config.workers,
        engine_config.max_queue,
        (long long)engine_config.default_deadline_ms);

    util::Table table({"target_qps", "requests", "achieved_qps", "p50_ms",
                       "p95_ms", "p99_ms", "shed", "expired", "late",
                       "rss_mb", "snap_mb", "recall"});
    std::vector<std::string> points;
    std::vector<std::string> stage_lines;
    for (double target : qps_sweep) {
      serve::Trace trace;
      if (!replay_path.empty()) {
        auto read = serve::ReadTrace(replay_path);
        if (!read.ok()) {
          std::fprintf(stderr, "replay-trace: %s\n",
                       read.status().ToString().c_str());
          return 2;
        }
        trace = std::move(read).value();
        // The trace fixes the schedule; report its own offered rate.
        target = 0.0;
      } else {
        schedule.target_qps = target;
        trace = serve::GenerateTrace(schedule, dataset.num_users,
                                     dataset.num_items, k, hot_fraction);
        if (!record_path.empty()) {
          util::Status rec = serve::WriteTrace(trace, record_path);
          if (!rec.ok()) {
            std::fprintf(stderr, "record-trace: %s\n",
                         rec.ToString().c_str());
            return 2;
          }
          std::fprintf(stderr, "[bench] trace recorded to %s\n",
                       record_path.c_str());
        }
      }
      // Fresh telemetry per point so the stage histograms attribute to
      // this point alone (the closed loop has always done this).
      telemetry::Reset();
      serve::ReplayResult r =
          serve::ReplayTrace(engine, trace.records, replay_config);
      const StageMeans stages = ReadStageMeans();
      if (target == 0.0) target = r.offered_qps;
      table.AddRow({util::StrFormat("%.0f", target),
                    std::to_string(r.requests),
                    util::StrFormat("%.0f", r.achieved_qps),
                    bench::Fmt4(r.p50_ms), bench::Fmt4(r.p95_ms),
                    bench::Fmt4(r.p99_ms), std::to_string(r.shed),
                    std::to_string(r.expired),
                    std::to_string(r.late_dispatches),
                    util::StrFormat("%.1f", r.peak_rss_bytes / 1e6),
                    util::StrFormat("%.1f", snapshot_bytes / 1e6),
                    recall_at_k >= 0.0
                        ? util::StrFormat("%.4f", recall_at_k)
                        : std::string("-")});
      stage_lines.push_back(util::StrFormat(
          "  qps %-6.0f stage means (ms): queue=%.4f recal=%.4f "
          "compute=%.4f rank=%.4f reply=%.4f | e2e=%.4f "
          "(distinct trace ids: %lld/%lld)",
          target, stages.queue_ms, stages.recal_ms, stages.compute_ms,
          stages.rank_ms, stages.reply_ms, stages.e2e_ms,
          (long long)r.distinct_trace_ids, (long long)r.requests));
      points.push_back(
          OpenPointJson(target, r, stages, snapshot_bytes, recall_at_k));
      if (!replay_path.empty()) break;  // a file trace is one point
    }
    table.Print();
    std::printf("\nstage attribution (engine-side; queue starts at "
                "admission, so worker dispatch lateness is excluded):\n");
    for (const std::string& line : stage_lines) {
      std::printf("%s\n", line.c_str());
    }
    if (!bench_json.empty()) {
      return WriteBenchJson(bench_json, "open", dataset.name,
                            (int)zoo.embedding_dim, k,
                            serve::ArrivalProcessName(schedule.arrival),
                            replay_config.workers, storage, points);
    }
    return 0;
  }

  // ---------------------------------------------------------------------
  // Closed loop (default; ci/check_serve.sh depends on this output).
  // ---------------------------------------------------------------------
  const int requests_per_client =
      static_cast<int>(flags.GetInt("requests", 200));
  std::vector<int> client_sweep;
  for (const std::string& tok :
       util::Split(flags.GetString("clients", "1,2,4,8"), ',')) {
    auto parsed = util::ParseInt(util::Trim(tok));
    if (!parsed.ok() || parsed.value() < 1) {
      std::fprintf(stderr, "bad --clients entry '%s'\n", tok.c_str());
      return 2;
    }
    client_sweep.push_back(static_cast<int>(parsed.value()));
  }

  std::printf("serving load test: %s (%d users, %d items, dim %lld), "
              "k=%d, %d requests/client, pool threads=%d, cache=%d\n\n",
              dataset.name.c_str(), dataset.num_users, dataset.num_items,
              (long long)zoo.embedding_dim, k, requests_per_client,
              util::NumThreads(), engine_config.cache_capacity);

  util::Table table({"clients", "requests", "seconds", "qps", "p50_ms",
                     "p95_ms", "p99_ms", "cache_hit", "batches"});
  std::vector<std::string> points;
  for (int clients : client_sweep) {
    // Warm-up pass so first-touch costs (page faults, cache fill) don't
    // skew the smallest sweep point.
    RunSweepPoint(engine, clients, std::min(requests_per_client, 32),
                  dataset.num_users, k, hot_fraction);
    SweepResult r = RunSweepPoint(engine, clients, requests_per_client,
                                  dataset.num_users, k, hot_fraction);
    table.AddRow({std::to_string(r.clients), std::to_string(r.requests),
                  bench::Fmt4(r.seconds), util::StrFormat("%.0f", r.qps),
                  bench::Fmt4(r.p50_ms), bench::Fmt4(r.p95_ms),
                  bench::Fmt4(r.p99_ms), bench::Fmt4(r.cache_hit_rate),
                  std::to_string(r.batches)});
    points.push_back(ClosedPointJson(r));
  }
  table.Print();
  if (!bench_json.empty()) {
    return WriteBenchJson(bench_json, "closed", dataset.name,
                          (int)zoo.embedding_dim, k, "", 0, storage,
                          points);
  }
  return 0;
}
