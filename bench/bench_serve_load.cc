// bench_serve_load — closed-loop load generator for the online serving
// engine (src/serve/engine.h): N client threads issue back-to-back
// requests against one ServingEngine and the harness reports QPS and
// p50/p95/p99 latency (telemetry histogram serve.request_seconds) per
// client-thread count, the standard closed-loop serving benchmark shape.
//
// Setup: a synthetic dataset + model is built in-process, exported
// through the real snapshot writer, and loaded back through the real
// reader — so the measured path is exactly what dgnn_serve runs. The mix
// is mostly TopK with some Score / SimilarUsers, plus a slice of
// unknown-user (degraded) traffic; concurrent clients exercise the
// engine's micro-batching.
//
// Flags:
//   --preset=tiny|ciao|epinions|yelp   dataset scale (default tiny)
//   --dim=16 --k=10                    embedding dim / top-k size
//   --requests=200                     requests per client per run
//   --clients=1,2,4,8                  client-thread sweep
//   --cache=4096                       engine LRU capacity (0 disables)
//   --social-alpha=0                   serve-time social recalibration
//   --hot-fraction=0.8                 share of traffic on 1/8 of users
//   --metrics-out / --trace-out / --run-log   (see bench_common.h)
//
// CI runs this at a small scale via ci/check_serve.sh.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "train/recommender.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace dgnn;

std::string TempSnapshotPath() {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  return dir + "/dgnn_bench_serve_snapshot.bin";
}

struct SweepResult {
  int clients = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  int64_t batches = 0;
};

SweepResult RunSweepPoint(serve::ServingEngine& engine, int clients,
                          int requests_per_client, int32_t num_users,
                          int k, double hot_fraction) {
  telemetry::Reset();
  telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.request_seconds");
  const serve::EngineStats before = engine.stats();

  // Closed loop: every client issues its next request as soon as the
  // previous one returns. The request mix is deterministic per (client,
  // iteration) so sweep points are comparable.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(0x5eedbeef + static_cast<uint64_t>(c));
      const int32_t hot_users = std::max<int32_t>(1, num_users / 8);
      for (int i = 0; i < requests_per_client; ++i) {
        serve::Request req;
        const int mix = i % 10;
        // 7/10 TopK, 1/10 Score, 1/10 SimilarUsers, 1/10 unknown user
        // (degraded popularity path).
        if (mix < 7) {
          req.type = serve::Request::Type::kTopK;
          req.k = k;
        } else if (mix == 7) {
          req.type = serve::Request::Type::kScore;
        } else if (mix == 8) {
          req.type = serve::Request::Type::kSimilarUsers;
          req.k = 5;
        } else {
          req.type = serve::Request::Type::kTopK;
          req.k = k;
          req.user = num_users + static_cast<int32_t>(rng.UniformInt(100));
        }
        if (mix != 9) {
          const bool hot =
              rng.UniformInt(1000) < static_cast<int64_t>(hot_fraction * 1000);
          req.user = hot ? static_cast<int32_t>(rng.UniformInt(hot_users))
                         : static_cast<int32_t>(rng.UniformInt(num_users));
        }
        if (req.type == serve::Request::Type::kScore) {
          req.item = static_cast<int32_t>(
              rng.UniformInt(engine.snapshot()->items.rows()));
        }
        const serve::Response resp = engine.Handle(req);
        if (!resp.ok) {
          std::fprintf(stderr, "request failed: %s\n", resp.error.c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const serve::EngineStats after = engine.stats();
  SweepResult r;
  r.clients = clients;
  r.requests = after.requests - before.requests;
  r.seconds = seconds;
  r.qps = seconds > 0 ? static_cast<double>(r.requests) / seconds : 0.0;
  r.p50_ms = latency->ApproxQuantileSeconds(0.50) * 1e3;
  r.p95_ms = latency->ApproxQuantileSeconds(0.95) * 1e3;
  r.p99_ms = latency->ApproxQuantileSeconds(0.99) * 1e3;
  const int64_t lookups = (after.cache_hits - before.cache_hits) +
                          (after.cache_misses - before.cache_misses);
  r.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(after.cache_hits - before.cache_hits) /
                static_cast<double>(lookups)
          : 0.0;
  r.batches = after.batches - before.batches;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::SetupTelemetryFromFlags(flags);
  // The latency histogram drives the report, so telemetry is always on
  // here (unlike the training benches, where it is opt-in).
  telemetry::SetEnabled(true);
  if (flags.Has("threads")) {
    util::SetNumThreads(
        static_cast<int>(flags.GetInt("threads", util::NumThreads())));
  }

  auto config =
      data::SyntheticConfig::Preset(flags.GetString("preset", "tiny"));
  data::Dataset dataset = data::GenerateSynthetic(config);
  graph::HeteroGraph graph(dataset);
  core::ZooConfig zoo;
  zoo.embedding_dim = flags.GetInt("dim", 16);
  auto model = core::CreateModelByName("BPR-MF", dataset, graph, zoo);
  train::Recommender recommender(*model, dataset);

  // Export through the real writer and load through the real reader so
  // the benched engine serves exactly what dgnn_serve would.
  const std::string snapshot_path = TempSnapshotPath();
  serve::Snapshot snapshot = serve::BuildSnapshot(
      recommender, dataset, "BPR-MF", "bench_serve_load");
  util::Status written = serve::WriteSnapshot(snapshot, snapshot_path);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  serve::EngineConfig engine_config;
  engine_config.cache_capacity =
      static_cast<int>(flags.GetInt("cache", 4096));
  engine_config.social_alpha =
      static_cast<float>(flags.GetDouble("social-alpha", 0.0));
  serve::ServingEngine engine(engine_config);
  util::Status loaded = engine.Load(snapshot_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }

  const int k = static_cast<int>(flags.GetInt("k", 10));
  const int requests_per_client =
      static_cast<int>(flags.GetInt("requests", 200));
  const double hot_fraction = flags.GetDouble("hot-fraction", 0.8);
  std::vector<int> client_sweep;
  for (const std::string& tok :
       util::Split(flags.GetString("clients", "1,2,4,8"), ',')) {
    auto parsed = util::ParseInt(util::Trim(tok));
    if (!parsed.ok() || parsed.value() < 1) {
      std::fprintf(stderr, "bad --clients entry '%s'\n", tok.c_str());
      return 2;
    }
    client_sweep.push_back(static_cast<int>(parsed.value()));
  }

  std::printf("serving load test: %s (%d users, %d items, dim %lld), "
              "k=%d, %d requests/client, pool threads=%d, cache=%d\n\n",
              dataset.name.c_str(), dataset.num_users, dataset.num_items,
              (long long)zoo.embedding_dim, k, requests_per_client,
              util::NumThreads(), engine_config.cache_capacity);

  util::Table table({"clients", "requests", "seconds", "qps", "p50_ms",
                     "p95_ms", "p99_ms", "cache_hit", "batches"});
  for (int clients : client_sweep) {
    // Warm-up pass so first-touch costs (page faults, cache fill) don't
    // skew the smallest sweep point.
    RunSweepPoint(engine, clients, std::min(requests_per_client, 32),
                  dataset.num_users, k, hot_fraction);
    SweepResult r = RunSweepPoint(engine, clients, requests_per_client,
                                  dataset.num_users, k, hot_fraction);
    table.AddRow({std::to_string(r.clients), std::to_string(r.requests),
                  bench::Fmt4(r.seconds), util::StrFormat("%.0f", r.qps),
                  bench::Fmt4(r.p50_ms), bench::Fmt4(r.p95_ms),
                  bench::Fmt4(r.p99_ms), bench::Fmt4(r.cache_hit_rate),
                  std::to_string(r.batches)});
  }
  table.Print();
  std::remove(snapshot_path.c_str());
  return 0;
}
