// Table I: statistics of the experimented datasets. Regenerates the
// paper's table over the scaled synthetic presets (the substitution for
// the non-redistributable Ciao / Epinions / Yelp crawls — see DESIGN.md).
// The shape to check: Ciao is the densest in both interactions and social
// ties; Yelp the sparsest.

#include <cstdio>

#include "data/synthetic.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  using dgnn::data::GenerateSynthetic;
  using dgnn::data::SyntheticConfig;

  dgnn::util::Table table({"Dataset", "# Users", "# Items",
                           "# Interactions", "Interaction Density",
                           "# Social Ties", "Social Density",
                           "# Relations", "# Item-Rel Links"});
  for (const char* preset : {"ciao", "epinions", "yelp"}) {
    auto ds = GenerateSynthetic(SyntheticConfig::Preset(preset));
    auto s = ds.ComputeStats();
    table.AddRow({ds.name, std::to_string(s.num_users),
                  std::to_string(s.num_items),
                  std::to_string(s.num_interactions),
                  dgnn::util::StrFormat("%.4f%%",
                                        s.interaction_density * 100.0),
                  std::to_string(s.num_social_ties),
                  dgnn::util::StrFormat("%.4f%%", s.social_density * 100.0),
                  std::to_string(s.num_relations),
                  std::to_string(s.num_item_relation_links)});
  }
  std::printf("Table I (scaled synthetic presets):\n");
  table.Print();
  return 0;
}
