// Figure 8: test performance (HR@10 / NDCG@10) after each training epoch
// for DGNN, HGT and DGCF. Shape to check: DGNN dominates at every epoch
// and HGT climbs faster than DGCF early on.
//
//   ./bench_fig8_convergence [--datasets=ciao,epinions,yelp] [--epochs=20]
//
// With --run-log=F the same per-epoch curve is captured as structured
// `epoch` events (one run_start/run_end pair per dataset x model x seed),
// so the printed table is derivable from the log afterwards:
// `dgnn_inspect summarize F` renders it, and EXPERIMENTS.md documents how
// to regenerate the Fig. 8 CSV from run logs alone.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  bench::BenchOptions options = bench::BenchOptions::FromFlags(flags);
  options.cutoffs = {10};
  if (!flags.Has("epochs")) options.epochs = 20;

  std::vector<std::string> datasets =
      util::Split(flags.GetString("datasets", "ciao,epinions,yelp"), ',');
  std::vector<std::string> model_names =
      util::Split(flags.GetString("models", "DGCF,HGT,DGNN"), ',');

  util::Table table({"Dataset", "Model", "Epoch", "HR@10", "NDCG@10"});
  for (const auto& dataset_name : datasets) {
    data::Dataset dataset = data::GenerateSynthetic(
        data::SyntheticConfig::Preset(dataset_name));
    graph::HeteroGraph graph(dataset);
    for (const auto& model_name : model_names) {
      std::fprintf(stderr, "[fig8] %s / %s ...\n", dataset_name.c_str(),
                   model_name.c_str());
      auto result = bench::RunModel(model_name, dataset, graph, options,
                                    /*eval_every=*/1);
      for (const auto& epoch : result.epochs) {
        if (!epoch.evaluated) continue;
        table.AddRow({dataset_name, model_name,
                      std::to_string(epoch.epoch),
                      bench::Fmt4(epoch.metrics.hr.at(10)),
                      bench::Fmt4(epoch.metrics.ndcg.at(10))});
      }
    }
  }
  std::printf("Figure 8 (test performance per training epoch):\n");
  table.Print();
  return 0;
}
