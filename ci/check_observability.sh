#!/usr/bin/env bash
# Observability gate: the serving observability plane must actually
# observe — stage timings that reconcile with end-to-end latency, trace
# ids that are unique and survive a hot swap, windowed stats that render
# as valid JSON and Prometheus text, and an offline inspector that
# rejects corruption.
#
#   1. bench_serve_load records an open-loop trace and replays it: the
#      point JSON must report distinct_trace_ids == requests, populated
#      stage means, and a stage-mean sum that reconciles with the
#      end-to-end mean (nothing unattributed beyond tolerance).
#   2. A live dgnn_serve session with --stats-out/--request-log at
#      sample rate 1: every response carries a unique trace_id across a
#      mid-stream hot swap; {"op":"stats"} returns the windowed payload;
#      {"op":"stats","format":"prom"} returns Prometheus text whose
#      counters match the JSON snapshot (round-trip by construction).
#   3. The per-request NDJSON log holds one record per request with
#      stage sums bounded by the end-to-end latency.
#   4. dgnn_inspect stats validates the stats JSONL (and renders it);
#      a corrupted line must fail the validation with exit 2.
#
# Usage: ci/check_observability.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/examples/dgnn_cli"
SERVE="$BUILD_DIR/examples/dgnn_serve"
INSPECT="$BUILD_DIR/examples/dgnn_inspect"
BENCH="$BUILD_DIR/bench/bench_serve_load"

if [[ ! -x "$CLI" || ! -x "$SERVE" || ! -x "$INSPECT" || ! -x "$BENCH" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target dgnn_cli dgnn_serve dgnn_inspect bench_serve_load
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$CLI" --mode=generate --data_dir="$WORK_DIR/data" --preset=tiny
"$CLI" --mode=train --data_dir="$WORK_DIR/data" --epochs=2 --batch=128 \
  --params="$WORK_DIR/model.bin" > /dev/null
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/snap_a.bin" --tag=a
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/snap_b.bin" --tag=b

# ---- 1. record + replay: stage attribution reconciles ---------------------
"$BENCH" --preset=tiny --arrival=poisson --qps=400 --requests=300 \
  --workers=2 --record-trace="$WORK_DIR/trace.bin" > /dev/null
"$BENCH" --preset=tiny --replay-trace="$WORK_DIR/trace.bin" --workers=2 \
  --bench-json="$WORK_DIR/BENCH_replay.json" > /dev/null

python3 - "$WORK_DIR/BENCH_replay.json" <<'EOF'
import json, sys

point = json.load(open(sys.argv[1]))["points"][0]
n = point["requests"]
assert n == 300, point
assert point["distinct_trace_ids"] == n, \
    f"trace ids not unique: {point['distinct_trace_ids']}/{n}"
stages = [point[k] for k in ("stage_queue_ms_mean", "stage_recal_ms_mean",
                             "stage_compute_ms_mean", "stage_rank_ms_mean",
                             "stage_reply_ms_mean")]
e2e = point["e2e_ms_mean"]
assert e2e > 0, point
assert any(s > 0 for s in stages), f"stage histograms empty: {point}"
total = sum(stages)
# Stages are stamped off the same monotonic clock as the end-to-end
# latency: their sum can never exceed it, and the unattributed residue
# (stamping overhead between stages) must stay small.
assert total <= e2e * 1.001, f"stage sum {total} exceeds e2e {e2e}"
assert total >= 0.5 * e2e, \
    f"stage sum {total} attributes <50% of e2e {e2e}"
print(f"check_observability: replay stage attribution OK "
      f"({total:.4f} of {e2e:.4f} ms mean attributed, "
      f"{point['distinct_trace_ids']} distinct trace ids)")
EOF

# ---- 2+3. live session: trace ids across hot swap, stats json + prom ------
python3 - "$SERVE" "$WORK_DIR" <<'EOF'
import json, re, subprocess, sys, time

serve, work = sys.argv[1], sys.argv[2]
proc = subprocess.Popen(
    [serve, f"--snapshot={work}/snap_a.bin",
     f"--stats-out={work}/stats.jsonl", "--stats-every-s=1",
     f"--request-log={work}/requests.jsonl", "--trace-sample-rate=1",
     "--slo-p99-ms=250", "--slo-availability=0.5"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

def ask(obj):
    proc.stdin.write(json.dumps(obj) + "\n")
    proc.stdin.flush()
    line = proc.stdout.readline()
    assert line, f"no response for {obj} (server died?)"
    return json.loads(line)

# Requests before and after a hot swap: every response must carry a
# trace id, and no id may repeat across the swap.
ids = []
for u in range(10):
    r = ask({"op": "topk", "user": u, "k": 5})
    assert r["ok"], r
    ids.append(r["trace_id"])
r = ask({"op": "swap", "snapshot": f"{work}/snap_b.bin"})
assert r["ok"], r
for u in range(10):
    r = ask({"op": "topk", "user": u, "k": 5})
    assert r["ok"], r
    ids.append(r["trace_id"])
assert len(set(ids)) == len(ids) == 20, f"trace ids not unique: {ids}"

# Let the 1 s sampler tick so the windows are populated.
time.sleep(1.3)

# Windowed stats payload: flat counters plus windows plus slo.
stats = ask({"op": "stats"})
assert stats["ok"] and stats["requests"] == 20, stats
for w in ("1s", "10s", "60s"):
    win = stats["windows"][w]
    for field in ("qps", "availability", "p50_ms", "p95_ms", "p99_ms",
                  "queue_depth"):
        assert isinstance(win[field], (int, float)), (w, field, win)
assert stats["windows"]["60s"]["requests"] == 20, stats["windows"]["60s"]
assert stats["slo"]["p99_ms"] == 250, stats["slo"]
assert stats["slo"]["ticks"] >= 1, stats["slo"]

# Prometheus exposition: every line is a comment or `name{labels} value`,
# and the counters round-trip the JSON snapshot they were rendered from.
prom = ask({"op": "stats", "format": "prom"})
assert prom["ok"], prom
sample_re = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"\})? -?[0-9.eE+-]+$')
samples = {}
for line in prom["text"].rstrip("\n").split("\n"):
    if line.startswith("#"):
        assert line.startswith("# TYPE "), line
        continue
    assert sample_re.match(line), f"bad prom sample line: {line!r}"
    name, value = line.rsplit(" ", 1)
    samples[name] = float(value)
assert samples["dgnn_serve_requests_total"] == stats["requests"]
assert samples["dgnn_serve_snapshot_swaps_total"] == stats["snapshot_swaps"]
assert samples['dgnn_serve_window_qps{window="60s"}'] == \
    stats["windows"]["60s"]["qps"]

r = ask({"op": "quit"})
assert r["ok"], r
assert proc.wait(timeout=30) == 0

# Per-request log: one record per request, unique ids, stage sums bounded
# by the end-to-end latency.
records = [json.loads(l) for l in open(f"{work}/requests.jsonl") if l.strip()]
assert len(records) == 20, f"want 20 trace records, got {len(records)}"
assert len({t["trace_id"] for t in records}) == 20
for t in records:
    stage_sum = (t["queue_s"] + t["recal_s"] + t["compute_s"] +
                 t["rank_s"] + t["reply_s"])
    assert stage_sum <= t["total_s"] * 1.001 + 1e-9, t
    assert t["outcome"] == "ok", t
print("check_observability: live session trace ids + stats + prom OK")
EOF

# ---- 4. offline validation and corrupted-file must-fail -------------------
[[ -s "$WORK_DIR/stats.jsonl" ]] || {
  echo "check_observability: --stats-out wrote nothing" >&2; exit 1; }

"$INSPECT" stats "$WORK_DIR/stats.jsonl" > /dev/null || {
  echo "check_observability: valid stats JSONL failed inspection" >&2
  exit 1
}
"$INSPECT" stats "$WORK_DIR/stats.jsonl" --prom | grep -q \
  "^dgnn_serve_requests_total " || {
  echo "check_observability: inspect --prom missing counters" >&2; exit 1; }
"$INSPECT" watch "$WORK_DIR/stats.jsonl" > /dev/null || {
  echo "check_observability: watch failed on valid stats JSONL" >&2
  exit 1
}

cp "$WORK_DIR/stats.jsonl" "$WORK_DIR/stats_bad.jsonl"
echo '{"requests": "corrupted"}' >> "$WORK_DIR/stats_bad.jsonl"
rc=0
"$INSPECT" stats "$WORK_DIR/stats_bad.jsonl" > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 2 ]]; then
  echo "check_observability: corrupted stats file: expected exit 2," \
       "got $rc" >&2
  exit 1
fi
echo "check_observability: offline validation accepts good, rejects bad"

echo "Observability check passed."
