#!/usr/bin/env bash
# Quantization + retrieval-index gate: every guarantee the snapshot
# quant/IVF subsystem makes is exercised end-to-end and must be able to
# FAIL, not just pass.
#
#   1. dgnn_cli trains on the tiny synthetic preset and exports three
#      snapshots: plain fp32 (seed-compatible, no index), int8 + IVF,
#      and fp16. `dgnn_inspect snapshot` must accept all three (exit 0),
#      the fp32 section table must contain NO quant/ivf sections, and
#      the indexed one must list quant_users / quant_items / ivf.
#   2. Quantize round-trip tolerance and IVF build determinism run as
#      unit suites: ctest -R 'quant_test|ivf_test'.
#   3. recall@20 floor: bench_serve_load serves the int8+IVF snapshot
#      open-loop on the TopK-only mix with --recall-floor=0.9; the bench
#      measures recall@k against the exact fp32 ranking and exits 4 if
#      the floor is violated. An unreachable floor must actually produce
#      exit 4 — a gate that cannot fail gates nothing.
#   4. Forcing an unavailable SIMD level (DGNN_SIMD=avx2/neon on a
#      machine without it) must abort, never silently fall back — the
#      quantized dot kernels are dispatched through the same table.
#   5. Corrupt-section must-fail: a bit-flipped snapshot makes
#      `dgnn_inspect snapshot` exit 1 (checksum MISMATCH, table still
#      printed) and dgnn_serve refuse to start; a truncated file exits 2.
#
# Usage: ci/check_index.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/examples/dgnn_cli"
SERVE="$BUILD_DIR/examples/dgnn_serve"
INSPECT="$BUILD_DIR/examples/dgnn_inspect"
BENCH="$BUILD_DIR/bench/bench_serve_load"

if [[ ! -x "$CLI" || ! -x "$SERVE" || ! -x "$INSPECT" || ! -x "$BENCH" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target dgnn_cli dgnn_serve dgnn_inspect bench_serve_load \
             quant_test ivf_test
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

# ---- 1. export with and without the index ---------------------------------
"$CLI" --mode=generate --data_dir="$WORK_DIR/data" --preset=tiny
"$CLI" --mode=train --data_dir="$WORK_DIR/data" --epochs=2 --batch=128 \
  --params="$WORK_DIR/model.bin" > /dev/null
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/fp32.snap"
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/q8_ivf.snap" \
  --quant=int8 --index --clusters=16
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/f16.snap" \
  --quant=fp16

for snap in fp32.snap q8_ivf.snap f16.snap; do
  "$INSPECT" snapshot "$WORK_DIR/$snap" > "$WORK_DIR/$snap.txt" || {
    echo "check_index: dgnn_inspect snapshot rejected valid $snap" >&2
    exit 1
  }
done
if grep -Eq 'quant_users|quant_items|ivf' "$WORK_DIR/fp32.snap.txt"; then
  echo "check_index: fp32 export leaked quant/ivf sections" >&2
  exit 1
fi
for section in quant_users quant_items ivf; do
  grep -q "$section" "$WORK_DIR/q8_ivf.snap.txt" || {
    echo "check_index: indexed export missing section $section" >&2
    exit 1
  }
done
echo "check_index: exports inspected (fp32 seed layout, int8+ivf, fp16)"

# ---- 2. quantize round-trip tolerance + ivf determinism suites ------------
ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'quant_test|ivf_test'
echo "check_index: quant_test + ivf_test green"

# ---- 3. recall@20 floor through the serving engine ------------------------
"$BENCH" --preset=tiny --dim=16 --k=20 --quant=int8 --index --clusters=16 \
  --nprobe=12 --mix=topk --arrival=poisson --qps=500 --requests=200 \
  --workers=2 --recall-users=64 --recall-floor=0.9 \
  --bench-json="$WORK_DIR/BENCH_index.json"
"$INSPECT" bench "$WORK_DIR/BENCH_index.json" || {
  echo "check_index: bench json failed validation" >&2
  exit 1
}
# The floor must be enforceable: an unreachable floor exits 4.
rc=0
"$BENCH" --preset=tiny --dim=16 --k=20 --quant=int8 --index --clusters=16 \
  --nprobe=1 --mix=topk --arrival=poisson --qps=500 --requests=50 \
  --workers=2 --recall-users=64 --recall-floor=1.01 \
  > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 4 ]]; then
  echo "check_index: unreachable recall floor: expected exit 4, got $rc" >&2
  exit 1
fi
echo "check_index: recall@20 floor enforced (pass at 0.9, fail at 1.01)"

# ---- 4. unavailable ISA must abort, not fall back -------------------------
AVAILABLE="$("$INSPECT" kernels | sed -n 's/^available: //p')"
for level in avx2 neon; do
  if [[ " $AVAILABLE " == *" $level "* ]]; then continue; fi
  rc=0
  DGNN_SIMD="$level" "$INSPECT" kernels > /dev/null 2>&1 || rc=$?
  if [[ "$rc" -eq 0 ]]; then
    echo "check_index: DGNN_SIMD=$level unavailable but did not fail" >&2
    exit 1
  fi
  echo "check_index: DGNN_SIMD=$level correctly rejected (unavailable)"
done

# ---- 5. corrupt sections must fail ----------------------------------------
cp "$WORK_DIR/q8_ivf.snap" "$WORK_DIR/flip.snap"
python3 - "$WORK_DIR/flip.snap" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x10  # lands inside the quant_items payload
open(path, "wb").write(data)
EOF
rc=0
"$INSPECT" snapshot "$WORK_DIR/flip.snap" > /dev/null || rc=$?
if [[ "$rc" -ne 1 ]]; then
  echo "check_index: bit-flipped snapshot: expected inspect exit 1, got $rc" >&2
  exit 1
fi
rc=0
"$SERVE" --snapshot="$WORK_DIR/flip.snap" < /dev/null > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 1 ]]; then
  echo "check_index: dgnn_serve accepted a bit-flipped snapshot (rc=$rc)" >&2
  exit 1
fi
# A mid-payload truncation keeps the magic readable: the table prints
# with a TRUNCATED marker and the checksum flags it (exit 1). Cutting
# below the minimum header makes the file structurally unreadable (2).
head -c 200 "$WORK_DIR/q8_ivf.snap" > "$WORK_DIR/trunc.snap"
rc=0
"$INSPECT" snapshot "$WORK_DIR/trunc.snap" > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 1 ]]; then
  echo "check_index: truncated snapshot: expected inspect exit 1, got $rc" >&2
  exit 1
fi
head -c 10 "$WORK_DIR/q8_ivf.snap" > "$WORK_DIR/stub.snap"
rc=0
"$INSPECT" snapshot "$WORK_DIR/stub.snap" > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 2 ]]; then
  echo "check_index: header-less snapshot: expected inspect exit 2, got $rc" >&2
  exit 1
fi
echo "check_index: corrupt sections rejected by inspect and serve"

echo "check_index: all gates passed"
