#!/usr/bin/env bash
# ThreadSanitizer job for the parallel hot paths.
#
# Configures a dedicated build tree with -DDGNN_SANITIZE=thread, builds the
# thread-pool and equivalence suites plus the serving suite (which has the
# concurrent-readers test), and runs them under CTest. Any data race makes
# TSan abort the test, so a green run certifies the pool and every
# ParallelFor call site race-free.
#
# Usage: ci/run_tsan.sh [build-dir]   (default: build-tsan)
#
# DGNN_SANITIZE=address works the same way for an ASan job:
#   cmake -B build-asan -S . -DDGNN_SANITIZE=address

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDGNN_SANITIZE=thread

cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target thread_pool_test parallel_equivalence_test serving_test \
           telemetry_test failure_test run_log_test diagnostics_test \
           serve_engine_test serve_snapshot_test failpoint_test \
           resume_test serve_trace_test kernel_parity_test \
           observability_test quant_test ivf_test shard_test \
           shard_router_test

# halt_on_error: fail fast on the first race instead of drowning in reports.
# telemetry_test has the concurrent-increment test (8 threads hammering one
# counter/histogram/timer plus the span buffer); failure_test exercises the
# sampler fallback and checkpoint staging paths; run_log_test hammers the
# run-log writer from 8 threads (every line must stay valid JSON);
# diagnostics_test covers the check-numerics flag read by every tape op;
# serve_engine_test runs hot snapshot swaps under 8 concurrent reader
# threads plus the micro-batching leader/follower handoff; failpoint_test
# hammers the injection registry from concurrent threads (the 1in<n>
# determinism contract is exactly a race-freedom claim); resume_test
# checks kill/resume bit-identity across thread counts; serve_trace_test
# replays the same trace at 1/2/4 workers and requires the re-recorded
# bytes bit-identical (open-loop replay race-freedom claim);
# kernel_parity_test runs every dispatched SIMD variant across thread
# counts 1/2/7 (row-blocked GEMM/SpMM chunks must write disjoint ranges
# on every ISA); observability_test hammers the per-request trace sink
# and windowed-stats sampler from concurrent client threads (trace-id
# uniqueness and stage-histogram recording are lock-free claims);
# quant_test exercises the quantized dot kernels across thread counts
# and forced ISAs; ivf_test runs k-means index builds at thread counts
# 1/7 and requires bit-identical serialized bytes (the disjoint-slot
# assignment-scan claim); shard_router_test runs a live 3-worker fleet
# with a multi-threaded router (scatter threads, detached hedges, probe
# loop, concurrent shedding clients) against SocketServer's
# per-connection threads — the widest cross-thread surface in the repo;
# shard_test covers the shard ring and slice partitioning used by it.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'thread_pool_test|parallel_equivalence_test|serving_test|telemetry_test|failure_test|run_log_test|diagnostics_test|serve_engine_test|serve_snapshot_test|failpoint_test|resume_test|serve_trace_test|kernel_parity_test|observability_test|quant_test|ivf_test|shard_test|shard_router_test'

echo "TSan job passed: no data races detected."
