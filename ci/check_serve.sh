#!/usr/bin/env bash
# Serving gate: exercise the offline-to-online pipeline end-to-end and
# fail on any snapshot-format or serving regression.
#
#   1. dgnn_cli trains on a synthetic dataset, saves parameters, and
#      exports two embedding snapshots (--mode=export, distinct tags).
#   2. dgnn_serve serves snapshot A over NDJSON: topk / score /
#      similar_users answers for a known user must be well-formed and
#      non-degraded; an unknown user must degrade to the popularity
#      ranking (degraded:true, k items); stats must account for every
#      request.
#   3. Corrupt snapshots (truncated, bit-flipped) must be REJECTED at
#      startup (exit 1, no crash) — the writer-side checksum is only
#      worth anything if the reader enforces it.
#   4. Hot swap mid-stream: requests, then {"op":"swap"} to snapshot B,
#      then more requests — every request gets a response (none
#      dropped) and snapshot_version bumps across the swap.
#   5. {"op":"reload"} re-reads --snapshot from disk and also bumps the
#      version.
#   6. bench_serve_load runs at a small scale and must report qps and
#      p50/p95/p99 columns.
#   7. Overload control, on a FRESH server instance so the exact-count
#      stats assertions above stay untouched: with --max-queue small and
#      a DGNN_FAILPOINTS="serve.execute=delay:..." slowdown, a burst of
#      concurrent requests must be partially SHED (fast "overloaded"
#      errors, never a hang); a burst with a tiny deadline_ms must
#      produce "deadline exceeded" expiries; and SIGTERM must drain
#      in-flight work, write serve_end reason=signal, and exit 0.
#
# Usage: ci/check_serve.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/examples/dgnn_cli"
SERVE="$BUILD_DIR/examples/dgnn_serve"
BENCH="$BUILD_DIR/bench/bench_serve_load"

if [[ ! -x "$CLI" || ! -x "$SERVE" || ! -x "$BENCH" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target dgnn_cli dgnn_serve bench_serve_load
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$CLI" --mode=generate --data_dir="$WORK_DIR/data" --preset=tiny
"$CLI" --mode=train --data_dir="$WORK_DIR/data" --epochs=2 --batch=128 \
  --params="$WORK_DIR/model.bin" > /dev/null
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/snap_a.bin" --tag=a
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/snap_b.bin" --tag=b

# ---- corrupt snapshots must fail fast at startup --------------------------
head -c 100 "$WORK_DIR/snap_a.bin" > "$WORK_DIR/snap_trunc.bin"
cp "$WORK_DIR/snap_a.bin" "$WORK_DIR/snap_flip.bin"
python3 - "$WORK_DIR/snap_flip.bin" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x40  # flip one bit in the middle of the body
open(path, "wb").write(data)
EOF

for bad in snap_trunc.bin snap_flip.bin; do
  rc=0
  "$SERVE" --snapshot="$WORK_DIR/$bad" < /dev/null > /dev/null 2>&1 || rc=$?
  if [[ "$rc" -ne 1 ]]; then
    echo "check_serve: corrupt snapshot $bad: expected exit 1, got $rc" >&2
    exit 1
  fi
done
echo "check_serve: corrupt snapshots rejected"

# ---- scripted NDJSON session: answers, degradation, hot swap, reload ------
# The driver speaks to a dgnn_serve subprocess over pipes so responses are
# validated as they stream back (not just after exit).
python3 - "$SERVE" "$WORK_DIR" <<'EOF'
import json, subprocess, sys

serve, work = sys.argv[1], sys.argv[2]
proc = subprocess.Popen(
    [serve, f"--snapshot={work}/snap_a.bin", f"--run-log={work}/serve.jsonl"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

def ask(obj):
    proc.stdin.write(json.dumps(obj) + "\n")
    proc.stdin.flush()
    line = proc.stdout.readline()
    assert line, f"no response for {obj} (server died?)"
    return json.loads(line)

# Well-formed, non-degraded answers for a known user.
r = ask({"op": "topk", "user": 3, "k": 5})
assert r["ok"] and not r["degraded"], r
assert len(r["items"]) == 5, r
scores = [it["score"] for it in r["items"]]
assert scores == sorted(scores, reverse=True), f"unsorted topk: {r}"
assert len({it["item"] for it in r["items"]}) == 5, f"dup items: {r}"
v1 = r["snapshot_version"]

r = ask({"op": "score", "user": 3, "item": 7})
assert r["ok"] and not r["degraded"] and isinstance(r["score"], (int, float)), r

r = ask({"op": "similar_users", "user": 3, "k": 3})
assert r["ok"] and len(r["items"]) == 3, r
assert all(it["item"] != 3 for it in r["items"]), f"self in neighbors: {r}"

# Unknown user degrades to popularity, still k items, flagged.
r = ask({"op": "topk", "user": 999999, "k": 5})
assert r["ok"] and r["degraded"] and len(r["items"]) == 5, r

# Malformed requests get error responses, not a dead server.
r = ask({"op": "topk", "user": 3, "k": 0})
assert not r["ok"] and "k must be positive" in r["error"], r
r = ask({"op": "frobnicate"})
assert not r["ok"], r

# Hot swap mid-stream: issue requests, swap, issue more. Every request
# must get a response and the version must bump.
pre = [ask({"op": "topk", "user": u, "k": 5}) for u in range(8)]
assert all(p["ok"] and p["snapshot_version"] == v1 for p in pre)
r = ask({"op": "swap", "snapshot": f"{work}/snap_b.bin"})
assert r["ok"] and r["snapshot_version"] == v1 + 1, r
post = [ask({"op": "topk", "user": u, "k": 5}) for u in range(8)]
assert all(p["ok"] and p["snapshot_version"] == v1 + 1 for p in post)
# Same parameters on both snapshots: rankings must agree across the swap.
for a, b in zip(pre, post):
    assert [i["item"] for i in a["items"]] == [i["item"] for i in b["items"]]

# A swap to a corrupt file fails but the server keeps serving.
r = ask({"op": "swap", "snapshot": f"{work}/snap_flip.bin"})
assert not r["ok"], r
r = ask({"op": "topk", "user": 3, "k": 5})
assert r["ok"] and r["snapshot_version"] == v1 + 1, r

# Reload re-reads --snapshot and bumps the version again.
r = ask({"op": "reload"})
assert r["ok"] and r["snapshot_version"] == v1 + 2, r

# Stats account for every ranking request sent above (errors included —
# the engine counts whatever it handled; 22 Handle() calls so far).
r = ask({"op": "stats"})
assert r["ok"] and r["requests"] == 22, r
assert r["snapshot_swaps"] == 3, r  # startup load + swap + reload
assert r["degraded_requests"] == 1, r

r = ask({"op": "quit"})
assert r["ok"], r
assert proc.wait(timeout=30) == 0

# The run log must record the lifecycle and both successful swaps.
events = [json.loads(l) for l in open(f"{work}/serve.jsonl") if l.strip()]
kinds = [e["event"] for e in events]
assert kinds[0] == "serve_start" and kinds[-1] == "serve_end", kinds
assert kinds.count("snapshot_swap") == 3, kinds  # incl. the failed one
assert any(e["event"] == "snapshot_swap" and not e["ok"] for e in events)
print("check_serve: NDJSON session valid")
EOF

# ---- overload control: shedding, deadlines, graceful SIGTERM drain --------
# Fresh server instance: a slow execute (injected via failpoint) plus a
# small admission queue forces load shedding under a concurrent burst.
python3 - "$SERVE" "$WORK_DIR" <<'EOF'
import json, os, signal, subprocess, sys

serve, work = sys.argv[1], sys.argv[2]
env = dict(os.environ, DGNN_FAILPOINTS="serve.execute=delay:60")
proc = subprocess.Popen(
    [serve, f"--snapshot={work}/snap_a.bin", "--max-queue=2",
     f"--run-log={work}/serve_overload.jsonl"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True, env=env)

def ask(obj):
    proc.stdin.write(json.dumps(obj) + "\n")
    proc.stdin.flush()
    line = proc.stdout.readline()
    assert line, f"no response for {obj} (server died?)"
    return json.loads(line)

# Burst of 32 concurrent requests against a 60ms execute and a 2-slot
# queue: one leader + at most a couple of followers get in, the rest must
# be shed immediately instead of queuing unboundedly.
r = ask({"op": "burst", "n": 32, "user": 3, "k": 5})
assert r["ok"], r
assert r["completed"] >= 1, f"no request completed: {r}"
assert r["shed"] >= 1, f"nothing shed under overload: {r}"
assert r["failed"] == 0, r
assert r["completed"] + r["shed"] + r["expired"] == 32, r
shed_so_far = r["shed"]

# Tiny per-request deadline: followers queued behind the slow leader
# batch expire ("deadline exceeded") instead of burning execute capacity.
r = ask({"op": "burst", "n": 32, "user": 3, "k": 5, "deadline_ms": 5})
assert r["ok"], r
assert r["expired"] >= 1, f"no deadline expiry under overload: {r}"
assert r["failed"] == 0, r

# The engine's own counters agree with what the bursts reported.
r = ask({"op": "stats"})
assert r["ok"] and r["shed_requests"] >= shed_so_far, r
assert r["expired_requests"] >= 1, r

# Graceful drain: SIGTERM interrupts the blocking stdin read, in-flight
# batches finish, serve_end is written with reason=signal, exit code 0.
proc.send_signal(signal.SIGTERM)
rc = proc.wait(timeout=30)
assert rc == 0, f"SIGTERM drain exited {rc}, want 0"

events = [json.loads(l)
          for l in open(f"{work}/serve_overload.jsonl") if l.strip()]
end = [e for e in events if e["event"] == "serve_end"]
assert len(end) == 1, events
assert end[0]["reason"] == "signal", end[0]
assert end[0]["shed_requests"] >= shed_so_far, end[0]
assert end[0]["expired_requests"] >= 1, end[0]
print("check_serve: overload shedding + SIGTERM drain OK")
EOF

# ---- load bench smoke: must report qps and tail latencies -----------------
BENCH_OUT="$("$BENCH" --preset=tiny --requests=64 --clients=1,4)"
echo "$BENCH_OUT" | grep -q "qps" || {
  echo "check_serve: bench output missing qps column" >&2; exit 1; }
echo "$BENCH_OUT" | grep -q "p99_ms" || {
  echo "check_serve: bench output missing p99 column" >&2; exit 1; }
echo "check_serve: load bench OK"

echo "Serving check passed."
