#!/usr/bin/env bash
# Bench gate: run one small open-loop serving point per PR, validate the
# machine-readable BENCH_serve.json it emits, and archive it.
#
#   1. bench_serve_load runs an open-loop (Poisson arrival) point at a
#      modest rate against the tiny preset and writes BENCH_serve.json.
#   2. dgnn_inspect bench validates the JSON: schema version, required
#      per-point fields, quantile ordering p50 <= p95 <= p99, and the
#      outcome-accounting identity ok + shed + expired + failed ==
#      requests. Exit 0 is the only acceptable answer.
#   3. A deliberately malformed file must be REJECTED (exit 2) — the
#      validator is only a gate if it can actually fail.
#   4. Every committed trajectory point under bench/trajectory/ must
#      still validate, so the published perf trajectory can never rot.
#   5. The fresh JSON is archived under <build-dir>/bench_archive/ with
#      a timestamped name (CI can export it as a run artifact).
#
# The point uses few requests on purpose: this gate checks the
# measurement pipeline, not the machine's absolute throughput. Published
# trajectory points are produced with bench/bench_serve_load directly at
# full scale and committed under bench/trajectory/.
#
# Usage: ci/check_bench.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_serve_load"
INSPECT="$BUILD_DIR/examples/dgnn_inspect"

if [[ ! -x "$BENCH" || ! -x "$INSPECT" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target bench_serve_load dgnn_inspect
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

# ---- one small open-loop point --------------------------------------------
"$BENCH" --preset=tiny --dim=16 --arrival=poisson --qps=500 \
  --requests=300 --workers=2 --bench-json="$WORK_DIR/BENCH_serve.json"

if [[ ! -s "$WORK_DIR/BENCH_serve.json" ]]; then
  echo "check_bench: bench did not write BENCH_serve.json" >&2
  exit 1
fi

# ---- validator accepts the real file, rejects a malformed one -------------
"$INSPECT" bench "$WORK_DIR/BENCH_serve.json" || {
  echo "check_bench: valid BENCH_serve.json failed validation" >&2
  exit 1
}

# Break the accounting identity (ok + shed + expired + failed == requests)
# rather than the JSON syntax, so the semantic checks are what is tested.
python3 - "$WORK_DIR/BENCH_serve.json" "$WORK_DIR/BENCH_bad.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["points"][0]["ok"] += 1
json.dump(doc, open(sys.argv[2], "w"))
EOF
rc=0
"$INSPECT" bench "$WORK_DIR/BENCH_bad.json" > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 2 ]]; then
  echo "check_bench: malformed bench JSON: expected exit 2, got $rc" >&2
  exit 1
fi

# Plain syntax corruption must also be rejected.
printf '{"schema_version": 1, "points": [' > "$WORK_DIR/BENCH_trunc.json"
rc=0
"$INSPECT" bench "$WORK_DIR/BENCH_trunc.json" > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 2 ]]; then
  echo "check_bench: truncated bench JSON: expected exit 2, got $rc" >&2
  exit 1
fi
echo "check_bench: validator accepts good JSON, rejects bad"

# ---- the published trajectory must keep validating ------------------------
shopt -s nullglob
for point in bench/trajectory/*.json; do
  "$INSPECT" bench "$point" || {
    echo "check_bench: committed trajectory point $point is invalid" >&2
    exit 1
  }
done
echo "check_bench: committed trajectory points valid"

# ---- archive the fresh point ----------------------------------------------
mkdir -p "$BUILD_DIR/bench_archive"
STAMP="$(date -u +%Y%m%dT%H%M%SZ)"
cp "$WORK_DIR/BENCH_serve.json" \
   "$BUILD_DIR/bench_archive/BENCH_serve_$STAMP.json"
echo "check_bench: archived $BUILD_DIR/bench_archive/BENCH_serve_$STAMP.json"

echo "Bench check passed."
