#!/usr/bin/env bash
# Run-log gate: exercise the structured-run-log pipeline end-to-end and
# fail on any schema or tooling regression.
#
#   1. dgnn_cli trains on a synthetic dataset with --run-log,
#      --grad-stats-every and a checkpoint save, then evaluates with the
#      saved parameters (standalone eval events + checkpoint load).
#   2. Every emitted line must parse as JSON with the v1 envelope; the
#      event stream must have the documented shape (run_start first,
#      run_end last, one epoch event per epoch, finite grad stats).
#   3. dgnn_inspect summarize must render the log (exit 0).
#   4. dgnn_inspect diff log log (self-diff) must pass; a copy with the
#      final HR@10 perturbed downward must FAIL the directional check
#      (exit 1), proving the gate can actually catch regressions.
#
# Usage: ci/check_runlog.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/examples/dgnn_cli"
INSPECT="$BUILD_DIR/examples/dgnn_inspect"

if [[ ! -x "$CLI" || ! -x "$INSPECT" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target dgnn_cli dgnn_inspect
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$CLI" --mode=generate --data_dir="$WORK_DIR/data" --preset=tiny
"$CLI" --mode=train --data_dir="$WORK_DIR/data" --epochs=3 --eval_every=1 \
  --batch=128 --grad-stats-every=2 --check-numerics \
  --run-log="$WORK_DIR/train.jsonl" --params="$WORK_DIR/model.bin"
"$CLI" --mode=evaluate --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --run-log="$WORK_DIR/eval.jsonl"

# Schema validation with a real JSON parser: envelope on every line,
# documented ordering and event counts, finite gradient statistics.
python3 - "$WORK_DIR" <<'EOF'
import json, math, sys
work = sys.argv[1]

def load(path):
    events = []
    for i, line in enumerate(open(path), 1):
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)  # raises on any malformed line
        assert obj.get("v") == 1, f"{path}:{i}: schema version {obj.get('v')}"
        assert "event" in obj, f"{path}:{i}: missing event"
        assert obj.get("elapsed_s", -1) >= 0, f"{path}:{i}: bad elapsed_s"
        events.append(obj)
    return events

train = load(f"{work}/train.jsonl")
kinds = [e["event"] for e in train]
assert kinds[0] == "run_start", f"first event is {kinds[0]}"
assert "run_end" in kinds, "no run_end"
assert kinds.count("epoch") == 3, f"expected 3 epoch events, got {kinds.count('epoch')}"
assert kinds.count("grad_stats") >= 1, "no grad_stats events"
assert kinds.count("checkpoint") == 1, "expected exactly one checkpoint (save)"
# 3 periodic evals + the final one.
assert kinds.count("eval") == 4, f"expected 4 eval events, got {kinds.count('eval')}"

start = train[0]
assert start["model"] and start["dataset"] == "tiny"
assert start["config"]["grad_stats_every"] == 2
assert start["config"]["check_numerics"] is True
assert start["dataset_stats"]["num_users"] > 0

for e in train:
    if e["event"] == "epoch":
        assert math.isfinite(e["loss"]), f"non-finite loss: {e}"
        if e["evaluated"]:
            assert "10" in e["metrics"]["hr"], f"no HR@10: {e}"
    if e["event"] == "grad_stats":
        assert e["params"], "empty grad_stats params"
        for p in e["params"]:
            assert p["finite"], f"non-finite grads for {p['name']}"
            assert math.isfinite(p["grad_l2"]), p["name"]

end = next(e for e in train if e["event"] == "run_end")
assert end["epochs_run"] == 3
assert 1 <= end["best_epoch"] <= 3, f"bad best_epoch {end['best_epoch']}"
assert "hr" in end["final_metrics"]

ckpt = next(e for e in train if e["event"] == "checkpoint")
assert ckpt["action"] == "save" and ckpt["ok"] is True

# The standalone evaluation run: checkpoint load + eval, no run_start.
ev = load(f"{work}/eval.jsonl")
ev_kinds = [e["event"] for e in ev]
assert "checkpoint" in ev_kinds and "eval" in ev_kinds, ev_kinds
load_ev = next(e for e in ev if e["event"] == "checkpoint")
assert load_ev["action"] == "load" and load_ev["ok"] is True

# Perturb the final HR@10 downward for the must-fail diff below.
bad = []
for e in train:
    if e["event"] == "run_end":
        e["final_metrics"]["hr"]["10"] -= 0.2
    bad.append(json.dumps(e))
open(f"{work}/train_bad.jsonl", "w").write("\n".join(bad) + "\n")
print("check_runlog: schema valid")
EOF

# The inspector must render both logs.
"$INSPECT" summarize "$WORK_DIR/train.jsonl" > /dev/null
"$INSPECT" summarize "$WORK_DIR/eval.jsonl" > /dev/null

# Self-diff passes at zero tolerance.
"$INSPECT" diff "$WORK_DIR/train.jsonl" "$WORK_DIR/train.jsonl" > /dev/null

# The perturbed log must fail the directional check (exit 1, not a crash).
if "$INSPECT" diff "$WORK_DIR/train.jsonl" "$WORK_DIR/train_bad.jsonl" \
    --hr-tol=0.05 > /dev/null; then
  echo "check_runlog: perturbed diff unexpectedly passed" >&2
  exit 1
fi
rc=0
"$INSPECT" diff "$WORK_DIR/train.jsonl" "$WORK_DIR/train_bad.jsonl" \
  --hr-tol=0.05 > /dev/null || rc=$?
if [[ "$rc" -ne 1 ]]; then
  echo "check_runlog: expected exit 1 from regressed diff, got $rc" >&2
  exit 1
fi
# A tolerance wider than the perturbation accepts it.
"$INSPECT" diff "$WORK_DIR/train.jsonl" "$WORK_DIR/train_bad.jsonl" \
  --hr-tol=0.5 > /dev/null

echo "Run-log check passed."
