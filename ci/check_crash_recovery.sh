#!/usr/bin/env bash
# Crash-recovery gate: a training run SIGKILLed mid-epoch must be
# resumable from its periodic checkpoint with BIT-IDENTICAL final
# parameters, and the dead run's log must be a valid prefix.
#
#   1. dgnn_cli trains a reference run to completion and saves params.
#   2. A second run with the same flags plus --checkpoint /
#      --checkpoint-every=1 is SIGKILLed (kill -9, no cleanup) as soon as
#      its first checkpoint hits disk — mid-epoch by construction.
#   3. The victim's run log is checked: every complete line parses as
#      JSON (a crash may truncate the final line, never corrupt earlier
#      ones) and there is no run_end — the run died, it didn't lie.
#   4. dgnn_cli --resume continues from the checkpoint; the resumed run's
#      saved parameters must be byte-identical (cmp) to the reference.
#   5. The resumed log records resumed_from + status=completed, and
#      dgnn_inspect summarize across both logs renders the resume
#      lineage.
#
# Usage: ci/check_crash_recovery.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/examples/dgnn_cli"
INSPECT="$BUILD_DIR/examples/dgnn_inspect"

if [[ ! -x "$CLI" || ! -x "$INSPECT" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target dgnn_cli dgnn_inspect
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

# Enough epochs that the run cannot finish before the kill lands; the
# resume still completes in seconds on the tiny preset.
TRAIN_FLAGS=(--mode=train --data_dir="$WORK_DIR/data" --epochs=40
             --batch=128 --seed=11)

"$CLI" --mode=generate --data_dir="$WORK_DIR/data" --preset=tiny

# ---- 1. reference: the uninterrupted run ----------------------------------
"$CLI" "${TRAIN_FLAGS[@]}" --params="$WORK_DIR/ref.bin" > /dev/null

# ---- 2. victim: checkpoint every batch, SIGKILL at the first checkpoint ---
"$CLI" "${TRAIN_FLAGS[@]}" --checkpoint="$WORK_DIR/train.ckpt" \
  --checkpoint-every=1 --params="$WORK_DIR/victim.bin" \
  --run-log="$WORK_DIR/victim.jsonl" > /dev/null &
VICTIM=$!
for _ in $(seq 1 2000); do
  [[ -f "$WORK_DIR/train.ckpt" ]] && break
  sleep 0.005
done
if [[ ! -f "$WORK_DIR/train.ckpt" ]]; then
  echo "check_crash_recovery: no checkpoint appeared within 10s" >&2
  kill -9 "$VICTIM" 2> /dev/null || true
  exit 1
fi
kill -9 "$VICTIM"
wait "$VICTIM" && rc=0 || rc=$?
if [[ "$rc" -eq 0 || -f "$WORK_DIR/victim.bin" ]]; then
  echo "check_crash_recovery: victim finished before the kill landed" >&2
  exit 1
fi
echo "check_crash_recovery: victim SIGKILLed mid-epoch (rc=$rc)"

# ---- 3. the dead run's log is a valid prefix ------------------------------
# SIGKILL may truncate the final line mid-append; every complete line
# must still parse, and a dead run must not carry a run_end. Rewrites the
# log to its complete lines so dgnn_inspect can read it below.
python3 - "$WORK_DIR/victim.jsonl" <<'EOF'
import json, sys

path = sys.argv[1]
raw = open(path, "rb").read().decode()
lines = raw.split("\n")
if lines and lines[-1] and not raw.endswith("\n"):
    lines = lines[:-1]  # torn final append: allowed
lines = [l for l in lines if l]
assert lines, "victim log is empty"
events = [json.loads(l) for l in lines]  # raises on a corrupt line
kinds = [e["event"] for e in events]
assert kinds[0] == "run_start", kinds
assert "run_end" not in kinds, "SIGKILLed run claims it ended cleanly"
assert any(e["event"] == "checkpoint" and
           e.get("action") == "save_checkpoint" and e.get("ok")
           for e in events), "no successful checkpoint save in victim log"
open(path, "w").write("".join(l + "\n" for l in lines))
print(f"check_crash_recovery: victim log valid prefix ({len(lines)} events)")
EOF

# ---- 4. resume: final parameters must be bit-identical --------------------
"$CLI" "${TRAIN_FLAGS[@]}" --resume="$WORK_DIR/train.ckpt" \
  --params="$WORK_DIR/resumed.bin" \
  --run-log="$WORK_DIR/resumed.jsonl" > /dev/null
cmp "$WORK_DIR/ref.bin" "$WORK_DIR/resumed.bin" || {
  echo "check_crash_recovery: resumed parameters differ from the" \
       "uninterrupted run" >&2
  exit 1
}
echo "check_crash_recovery: resumed parameters bit-identical"

# ---- 5. resumed log lineage ----------------------------------------------
python3 - "$WORK_DIR/resumed.jsonl" "$WORK_DIR/train.ckpt" <<'EOF'
import json, sys

path, ckpt = sys.argv[1], sys.argv[2]
events = [json.loads(l) for l in open(path) if l.strip()]
start = next(e for e in events if e["event"] == "run_start")
assert start.get("resumed_from") == ckpt, start
end = next(e for e in events if e["event"] == "run_end")
assert end.get("status") == "completed", end
assert end.get("resumed_from") == ckpt, end
print("check_crash_recovery: resumed log records lineage")
EOF

"$INSPECT" summarize "$WORK_DIR/victim.jsonl" "$WORK_DIR/resumed.jsonl" \
  | grep -q "resume lineage" || {
  echo "check_crash_recovery: dgnn_inspect did not render resume" \
       "lineage" >&2
  exit 1
}
echo "Crash-recovery check passed."
