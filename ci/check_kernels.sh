#!/usr/bin/env bash
# Kernel-dispatch gate: prove every compiled SIMD level of the kernel
# layer (src/kernels/) is safe to ship on this host.
#
#   1. `dgnn_inspect kernels` reports the dispatch state; its
#      "available:" line decides which DGNN_SIMD values to sweep (plus
#      "off", which must always work).
#   2. kernel_parity_test runs once per level with DGNN_SIMD forced.
#      The suite checks every dispatched kernel against the scalar
#      reference: bit-identical (memcmp) in deterministic mode, within
#      tolerance in fast mode, across transpose combos, ragged shapes
#      and thread counts 1/2/7 — so a green sweep means --deterministic
#      output cannot depend on the CPU the binary landed on.
#   3. Forcing an unavailable level must FAIL loudly (the dispatcher
#      aborts rather than silently falling back): a request for a
#      specific ISA that cannot be honored is a deployment error.
#   4. bench_micro_kernels smoke: the GEMM/SpMM kernel sweeps must run
#      to completion at the forced-off and auto levels (one iteration
#      each — this checks the measurement pipeline, not throughput).
#   5. Every committed trajectory point under bench/trajectory/ must
#      still validate via `dgnn_inspect bench`, so kernel changes can
#      never rot the published serving trajectory.
#
# Usage: ci/check_kernels.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
PARITY="$BUILD_DIR/tests/kernel_parity_test"
MICRO="$BUILD_DIR/bench/bench_micro_kernels"
INSPECT="$BUILD_DIR/examples/dgnn_inspect"

if [[ ! -x "$PARITY" || ! -x "$MICRO" || ! -x "$INSPECT" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target kernel_parity_test bench_micro_kernels dgnn_inspect
fi

# ---- dispatch state --------------------------------------------------------
"$INSPECT" kernels
AVAILABLE="$("$INSPECT" kernels | sed -n 's/^available: //p')"
if [[ -z "$AVAILABLE" ]]; then
  echo "check_kernels: dgnn_inspect kernels reported no available ISAs" >&2
  exit 1
fi

# ---- parity sweep: scalar reference vs every available level ---------------
for level in off $AVAILABLE; do
  echo "check_kernels: parity suite with DGNN_SIMD=$level"
  DGNN_SIMD="$level" "$PARITY" --gtest_brief=1 || {
    echo "check_kernels: parity suite failed at DGNN_SIMD=$level" >&2
    exit 1
  }
done
echo "check_kernels: parity green at: off $AVAILABLE"

# ---- forcing an unavailable level must abort, not fall back ----------------
for level in avx2 neon; do
  if [[ " $AVAILABLE " == *" $level "* ]]; then continue; fi
  rc=0
  DGNN_SIMD="$level" "$INSPECT" kernels > /dev/null 2>&1 || rc=$?
  if [[ "$rc" -eq 0 ]]; then
    echo "check_kernels: DGNN_SIMD=$level unavailable but did not fail" >&2
    exit 1
  fi
  echo "check_kernels: DGNN_SIMD=$level correctly rejected (unavailable)"
done

# ---- micro-kernel smoke ----------------------------------------------------
for level in off ""; do
  DGNN_SIMD="$level" "$MICRO" \
    --benchmark_filter='BM_(GemmKernel|SpmmKernel)' \
    --benchmark_min_time=0.01 > /dev/null || {
    echo "check_kernels: bench_micro_kernels smoke failed" \
         "(DGNN_SIMD='${level:-auto}')" >&2
    exit 1
  }
done
echo "check_kernels: bench_micro_kernels GEMM/SpMM smoke ok"

# ---- the published trajectory must keep validating -------------------------
shopt -s nullglob
for point in bench/trajectory/*.json; do
  "$INSPECT" bench "$point" || {
    echo "check_kernels: committed trajectory point $point is invalid" >&2
    exit 1
  }
done
echo "check_kernels: committed trajectory points valid"

echo "Kernel check passed."
