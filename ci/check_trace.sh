#!/usr/bin/env bash
# Telemetry smoke job: run dgnn_cli end-to-end with --metrics-out and
# --trace-out and verify both emitted files are valid JSON with the
# expected top-level structure (counters/timers/histograms for metrics,
# traceEvents for the chrome://tracing payload).
#
# Usage: ci/check_trace.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/examples/dgnn_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target dgnn_cli
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$CLI" --mode=generate --data_dir="$WORK_DIR/data" --preset=tiny
"$CLI" --mode=train --data_dir="$WORK_DIR/data" --epochs=2 --threads=2 \
  --params="$WORK_DIR/model.bin" \
  --metrics-out="$WORK_DIR/metrics.json" \
  --trace-out="$WORK_DIR/trace.json"
"$CLI" --mode=recommend --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --user=0 \
  --metrics-out="$WORK_DIR/serve_metrics.json"

# json.tool exits non-zero on any syntax error.
for f in metrics.json trace.json serve_metrics.json; do
  python3 -m json.tool "$WORK_DIR/$f" > /dev/null
done

# Structural spot-checks: the payloads must actually carry the per-epoch
# timers, kernel counters and recommender latency histograms.
python3 - "$WORK_DIR" <<'EOF'
import json, sys
work = sys.argv[1]

metrics = json.load(open(f"{work}/metrics.json"))
for section in ("counters", "gauges", "timers", "histograms"):
    assert section in metrics, f"metrics.json missing '{section}'"
assert metrics["timers"]["train.epoch"]["count"] == 2, "expected 2 epochs"
assert metrics["timers"]["ag.gemm"]["count"] > 0, "no GEMM calls recorded"
assert metrics["counters"]["train.batches"] > 0, "no batches recorded"

trace = json.load(open(f"{work}/trace.json"))
events = trace["traceEvents"]
assert events, "trace has no spans"
names = {e["name"] for e in events}
assert "epoch" in names, f"no epoch span in {sorted(names)}"
for e in events:
    for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
        assert key in e, f"span missing '{key}': {e}"

serve = json.load(open(f"{work}/serve_metrics.json"))
topk = serve["histograms"]["serve.topk_seconds"]
assert topk["count"] > 0, "no TopK latency recorded"
assert topk["buckets"], "TopK histogram has no buckets"
print("check_trace: metrics + trace JSON valid")
EOF

echo "Trace check passed."
