#!/usr/bin/env bash
# Sharded-serving gate: exercise the fault-tolerant router end-to-end
# against a real 3-shard dgnn_serve fleet and fail on any regression in
# partitioning, bit-identity, degradation, or recovery.
#
#   1. dgnn_cli trains on a synthetic dataset and exports one unsharded
#      snapshot plus a 3-shard manifest (--mode=export --shards=3).
#      --shards combined with --quant must be rejected (exit 2).
#   2. Corrupt shard slice must be REJECTED: a bit-flipped slice fails
#      dgnn_serve startup (exit 1) AND fails a coordinated swap prepare
#      fleet-wide (no worker changes snapshots).
#   3. Bit-identity: every user's topk through the router (scatter to 3
#      workers + merge) must equal the single-process answer on the
#      unsharded snapshot EXACTLY — item ids and %.17g score text.
#   4. Coordinated swap: {"op":"swap"} through the router two-phase
#      commits on all 3 workers and bumps every worker's version.
#   5. Kill matrix: SIGKILL one worker; the router must answer degraded
#      (ok=true, degraded=true, missing_shards naming the dead shard,
#      popularity failover for users the dead shard owned) and mark the
#      shard down; a restarted worker must be re-admitted and full-fleet
#      bit-identity must hold again, with the shard back to healthy
#      after a burst of successful requests.
#   6. Availability under mid-replay kill: replay a recorded trace
#      through the router, SIGKILL one of the three workers mid-replay;
#      >= 99% of requests must complete ok (degraded allowed, failed
#      not), the replay must not hang, and the emitted bench JSON must
#      validate with `dgnn_inspect bench`.
#
# Usage: ci/check_shard.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/examples/dgnn_cli"
SERVE="$BUILD_DIR/examples/dgnn_serve"
ROUTER="$BUILD_DIR/examples/dgnn_router"
INSPECT="$BUILD_DIR/examples/dgnn_inspect"
BENCH="$BUILD_DIR/bench/bench_serve_load"

if [[ ! -x "$CLI" || ! -x "$SERVE" || ! -x "$ROUTER" || \
      ! -x "$INSPECT" || ! -x "$BENCH" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target dgnn_cli dgnn_serve dgnn_router dgnn_inspect bench_serve_load
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$CLI" --mode=generate --data_dir="$WORK_DIR/data" --preset=tiny
"$CLI" --mode=train --data_dir="$WORK_DIR/data" --epochs=2 --batch=128 \
  --params="$WORK_DIR/model.bin" > /dev/null
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/snap.bin" \
  --tag=fleet --shards=3
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/snap_v2.bin" \
  --tag=fleet-v2 --shards=3

for s in 0 1 2; do
  if [[ ! -f "$WORK_DIR/snap.bin.shard${s}of3" ]]; then
    echo "check_shard: missing shard slice snap.bin.shard${s}of3" >&2
    exit 1
  fi
done
echo "check_shard: 3-shard export present"

# ---- sharding composes with nothing that breaks bit-identity --------------
rc=0
"$CLI" --mode=export --data_dir="$WORK_DIR/data" \
  --params="$WORK_DIR/model.bin" --snapshot="$WORK_DIR/snap_q.bin" \
  --tag=q --shards=3 --quant=int8 > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 2 ]]; then
  echo "check_shard: --shards --quant: expected exit 2, got $rc" >&2
  exit 1
fi
echo "check_shard: --shards rejects --quant"

# ---- corrupt shard slice must fail startup --------------------------------
cp "$WORK_DIR/snap.bin.shard1of3" "$WORK_DIR/bad_slice.bin"
python3 - "$WORK_DIR/bad_slice.bin" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x40
open(path, "wb").write(data)
EOF
rc=0
"$SERVE" --snapshot="$WORK_DIR/bad_slice.bin" < /dev/null \
  > /dev/null 2>&1 || rc=$?
if [[ "$rc" -ne 1 ]]; then
  echo "check_shard: corrupt slice: expected exit 1, got $rc" >&2
  exit 1
fi
echo "check_shard: corrupt shard slice rejected at startup"

# ---- fleet session: bit-identity, swap, kill matrix, recovery -------------
python3 - "$SERVE" "$ROUTER" "$WORK_DIR" <<'EOF'
import json, os, signal, subprocess, sys, time

serve, router_bin, work = sys.argv[1], sys.argv[2], sys.argv[3]

def start_worker(s, base="snap.bin"):
    # Workers keep stdin open (EOF would drain them) and serve the shard
    # protocol on a Unix socket, exactly as production would run them.
    return subprocess.Popen(
        [serve, f"--snapshot={work}/{base}.shard{s}of3",
         f"--listen={work}/s{s}.sock"],
        stdin=subprocess.PIPE, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL, text=True)

workers = {s: start_worker(s) for s in range(3)}
single = subprocess.Popen(
    [serve, f"--snapshot={work}/snap.bin"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE,
    stderr=subprocess.DEVNULL, text=True)
time.sleep(0.3)
router = subprocess.Popen(
    [router_bin, f"--shards={work}/s0.sock,{work}/s1.sock,{work}/s2.sock",
     "--deadline-ms=5000", "--shard-timeout-ms=500",
     "--probe-interval-ms=30", "--retries=2",
     f"--run-log={work}/router.jsonl"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE,
    stderr=subprocess.DEVNULL, text=True)

def ask(proc, obj):
    proc.stdin.write(json.dumps(obj) + "\n")
    proc.stdin.flush()
    line = proc.stdout.readline()
    assert line, f"no response for {obj} (process died?)"
    return json.loads(line)

def wait_state(shard, want, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        st = ask(router, {"op": "stats"})
        if st["shards"][shard]["state"] == want:
            return st
        time.sleep(0.05)
    raise AssertionError(f"shard {shard} never became {want}: {st}")

NUM_USERS = 60

# Bit-identity: full fleet vs single process, every user, ids AND score
# bits (both sides print %.17g so equal floats mean equal JSON).
for u in range(NUM_USERS):
    a = ask(single, {"op": "topk", "user": u, "k": 10})
    b = ask(router, {"op": "topk", "user": u, "k": 10})
    assert a["ok"] and b["ok"], (a, b)
    assert not b["degraded"] and "missing_shards" not in b, b
    assert a["items"] == b["items"], f"user {u}: {a['items']} != {b['items']}"
# Score + similar_users parity and the degraded cold-user contract too.
for u in (0, 7, 23):
    a = ask(single, {"op": "score", "user": u, "item": 11})
    b = ask(router, {"op": "score", "user": u, "item": 11})
    assert a["score"] == b["score"], (a, b)
    a = ask(single, {"op": "similar_users", "user": u, "k": 5})
    b = ask(router, {"op": "similar_users", "user": u, "k": 5})
    assert a["items"] == b["items"], (a, b)
a = ask(single, {"op": "topk", "user": 999999, "k": 10})
b = ask(router, {"op": "topk", "user": 999999, "k": 10})
assert a["degraded"] and b["degraded"], (a, b)
assert "missing_shards" not in b, b  # cold user is not a shard failure
assert a["items"] == b["items"], (a, b)
print("check_shard: full-fleet topk/score/similar bit-identical")

# Coordinated swap: two-phase commit across all 3 workers.
r = ask(router, {"op": "swap", "snapshot": f"{work}/snap_v2.bin"})
assert r["ok"] and r["snapshot_version"] == 2, r
b = ask(router, {"op": "topk", "user": 3, "k": 10})
assert b["ok"] and b["snapshot_version"] == 2 and not b["degraded"], b
# Same parameters in both exports: the ranking must not move.
a = ask(single, {"op": "topk", "user": 3, "k": 10})
assert a["items"] == b["items"], (a, b)
print("check_shard: coordinated swap committed fleet-wide")

# A swap whose prepare fails (corrupt slice for shard 1) must abort
# everywhere: error response, and the fleet keeps serving version 2.
os.makedirs(f"{work}/badswap", exist_ok=True)
for s in (0, 2):
    os.link(f"{work}/snap.bin.shard{s}of3",
            f"{work}/badswap/next.bin.shard{s}of3")
with open(f"{work}/badswap/next.bin.shard1of3", "wb") as f:
    f.write(b"DGNNSNP1 corrupt")
r = ask(router, {"op": "swap", "snapshot": f"{work}/badswap/next.bin"})
assert not r["ok"], r
b = ask(router, {"op": "topk", "user": 3, "k": 10})
assert b["ok"] and b["snapshot_version"] == 2, b
print("check_shard: failed prepare aborted fleet-wide")

# Kill matrix: SIGKILL worker 2, assert degraded-not-failed with correct
# attribution, down state, then restart and require full recovery.
workers[2].kill()
workers[2].wait()
wait_state(2, "down")

degraded = failover = 0
t0 = time.time()
for u in range(NUM_USERS):
    b = ask(router, {"op": "topk", "user": u, "k": 10})
    assert b["ok"], f"user {u} failed instead of degrading: {b}"
    assert b["degraded"], f"user {u} not flagged degraded: {b}"
    assert b.get("missing_shards") == [2], b
    degraded += 1
elapsed = time.time() - t0
assert elapsed < 30, f"kill-one-shard answers too slow: {elapsed:.1f}s"
st = ask(router, {"op": "stats"})
assert st["serve.shard.degraded_responses"] >= degraded, st
assert st["serve.shard.failovers"] >= 1, st  # some users lived on shard 2
print(f"check_shard: dead shard -> {degraded} degraded answers, "
      f"{st['serve.shard.failovers']} failovers, no failures")

# Restart on the same socket with the CURRENT (swapped) slice: probes
# re-admit the shard (degraded first, then healthy after enough clean
# outcomes) and bit-identity returns.
workers[2] = start_worker(2, base="snap_v2.bin")
wait_state(2, "degraded")
for u in range(NUM_USERS):
    b = ask(router, {"op": "topk", "user": u, "k": 10})
    assert b["ok"] and not b["degraded"] and "missing_shards" not in b, b
wait_state(2, "healthy")
for u in range(10):
    a = ask(single, {"op": "topk", "user": u, "k": 10})
    b = ask(router, {"op": "topk", "user": u, "k": 10})
    # The fleet is back on snap_v2 (same params as snap), single on snap.
    assert a["items"] == b["items"], (a, b)
print("check_shard: restarted shard re-admitted and healthy again")

# Drain the router (SIGTERM) and the fleet; serve_end must be written.
router.send_signal(signal.SIGTERM)
assert router.wait(timeout=30) == 0
events = [json.loads(l) for l in open(f"{work}/router.jsonl") if l.strip()]
kinds = [e["event"] for e in events]
assert "router_start" in kinds and "serve_end" in kinds, kinds
end = [e for e in events if e["event"] == "serve_end"][0]
assert end["reason"] == "signal", end
assert end["degraded_responses"] >= degraded, end
for w in workers.values():
    w.send_signal(signal.SIGTERM)
    assert w.wait(timeout=30) == 0
single.send_signal(signal.SIGTERM)
single.wait(timeout=30)
print("check_shard: router drain wrote serve_end reason=signal")
EOF

# ---- availability floor under a mid-replay SIGKILL ------------------------
"$BENCH" --preset=tiny --dim=8 --arrival=poisson --qps=800 \
  --requests=2400 --workers=4 --record-trace="$WORK_DIR/trace.bin" \
  > /dev/null
python3 - "$SERVE" "$ROUTER" "$INSPECT" "$WORK_DIR" <<'EOF'
import json, subprocess, sys, time

serve, router_bin, inspect, work = sys.argv[1:5]

workers = {}
for s in range(3):
    workers[s] = subprocess.Popen(
        [serve, f"--snapshot={work}/snap.bin.shard{s}of3",
         f"--listen={work}/r{s}.sock"],
        stdin=subprocess.PIPE, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL, text=True)
time.sleep(0.3)

# ~3s replay; the SIGKILL lands about a third of the way in.
router = subprocess.Popen(
    [router_bin, f"--shards={work}/r0.sock,{work}/r1.sock,{work}/r2.sock",
     "--deadline-ms=2000", "--shard-timeout-ms=250",
     "--probe-interval-ms=30", "--retries=2",
     f"--replay-trace={work}/trace.bin", "--workers=8",
     f"--bench-json={work}/BENCH_shard.json", "--preset=tiny"],
    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
time.sleep(1.0)
workers[1].kill()
workers[1].wait()

try:
    out, _ = router.communicate(timeout=120)
except subprocess.TimeoutExpired:
    router.kill()
    raise AssertionError("replay hung after mid-replay SIGKILL")
assert router.returncode == 0, f"router replay exited {router.returncode}"
r = json.loads(out.strip().splitlines()[-1])
assert r["requests"] == 2400, r
ok_rate = r["completed"] / r["requests"]
assert ok_rate >= 0.99, (
    f"availability {ok_rate:.4f} < 0.99 with one of three shards "
    f"SIGKILLed mid-replay: {r}")
assert r["degraded"] >= 1, f"kill left no degraded answers (too early?): {r}"
assert r["failed"] <= r["requests"] * 0.01, r
assert r["down_shards"] >= 1, r
print(f"check_shard: availability {ok_rate:.4f} with shard 1 killed "
      f"mid-replay ({r['degraded']} degraded, {r['failed']} failed, "
      f"{r['shard_failovers']} failovers)")

for s in (0, 2):
    workers[s].terminate()
    workers[s].wait(timeout=30)
EOF

"$INSPECT" bench "$WORK_DIR/BENCH_shard.json"
echo "check_shard: router bench JSON validates"

echo "check_shard: all sharded-serving checks passed"
