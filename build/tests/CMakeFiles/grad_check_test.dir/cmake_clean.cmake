file(REMOVE_RECURSE
  "CMakeFiles/grad_check_test.dir/grad_check_test.cc.o"
  "CMakeFiles/grad_check_test.dir/grad_check_test.cc.o.d"
  "grad_check_test"
  "grad_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grad_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
