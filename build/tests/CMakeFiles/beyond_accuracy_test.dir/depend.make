# Empty dependencies file for beyond_accuracy_test.
# This may be replaced when dependencies are built.
