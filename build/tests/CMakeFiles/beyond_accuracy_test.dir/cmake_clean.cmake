file(REMOVE_RECURSE
  "CMakeFiles/beyond_accuracy_test.dir/beyond_accuracy_test.cc.o"
  "CMakeFiles/beyond_accuracy_test.dir/beyond_accuracy_test.cc.o.d"
  "beyond_accuracy_test"
  "beyond_accuracy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
