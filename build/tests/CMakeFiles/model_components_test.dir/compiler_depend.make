# Empty compiler generated dependencies file for model_components_test.
# This may be replaced when dependencies are built.
