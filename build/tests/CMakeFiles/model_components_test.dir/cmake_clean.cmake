file(REMOVE_RECURSE
  "CMakeFiles/model_components_test.dir/model_components_test.cc.o"
  "CMakeFiles/model_components_test.dir/model_components_test.cc.o.d"
  "model_components_test"
  "model_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
