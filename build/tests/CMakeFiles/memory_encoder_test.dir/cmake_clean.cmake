file(REMOVE_RECURSE
  "CMakeFiles/memory_encoder_test.dir/memory_encoder_test.cc.o"
  "CMakeFiles/memory_encoder_test.dir/memory_encoder_test.cc.o.d"
  "memory_encoder_test"
  "memory_encoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
