file(REMOVE_RECURSE
  "CMakeFiles/dgnn_model_test.dir/dgnn_model_test.cc.o"
  "CMakeFiles/dgnn_model_test.dir/dgnn_model_test.cc.o.d"
  "dgnn_model_test"
  "dgnn_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
