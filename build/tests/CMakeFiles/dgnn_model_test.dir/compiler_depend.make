# Empty compiler generated dependencies file for dgnn_model_test.
# This may be replaced when dependencies are built.
