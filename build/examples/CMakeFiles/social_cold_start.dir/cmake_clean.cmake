file(REMOVE_RECURSE
  "CMakeFiles/social_cold_start.dir/social_cold_start.cpp.o"
  "CMakeFiles/social_cold_start.dir/social_cold_start.cpp.o.d"
  "social_cold_start"
  "social_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
