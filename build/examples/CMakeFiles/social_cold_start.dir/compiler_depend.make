# Empty compiler generated dependencies file for social_cold_start.
# This may be replaced when dependencies are built.
