file(REMOVE_RECURSE
  "CMakeFiles/knowledge_relations.dir/knowledge_relations.cpp.o"
  "CMakeFiles/knowledge_relations.dir/knowledge_relations.cpp.o.d"
  "knowledge_relations"
  "knowledge_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
