# Empty dependencies file for knowledge_relations.
# This may be replaced when dependencies are built.
