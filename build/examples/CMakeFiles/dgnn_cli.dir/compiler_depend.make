# Empty compiler generated dependencies file for dgnn_cli.
# This may be replaced when dependencies are built.
