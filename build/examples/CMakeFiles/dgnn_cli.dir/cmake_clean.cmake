file(REMOVE_RECURSE
  "CMakeFiles/dgnn_cli.dir/dgnn_cli.cpp.o"
  "CMakeFiles/dgnn_cli.dir/dgnn_cli.cpp.o.d"
  "dgnn_cli"
  "dgnn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
