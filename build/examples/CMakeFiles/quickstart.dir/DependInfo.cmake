
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dgnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/dgnn_models.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/dgnn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/dgnn_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/ag/CMakeFiles/dgnn_ag.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dgnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dgnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
