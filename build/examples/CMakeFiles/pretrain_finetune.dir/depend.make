# Empty dependencies file for pretrain_finetune.
# This may be replaced when dependencies are built.
