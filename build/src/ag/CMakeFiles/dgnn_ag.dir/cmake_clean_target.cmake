file(REMOVE_RECURSE
  "libdgnn_ag.a"
)
