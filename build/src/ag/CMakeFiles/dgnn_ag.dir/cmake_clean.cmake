file(REMOVE_RECURSE
  "CMakeFiles/dgnn_ag.dir/adam.cc.o"
  "CMakeFiles/dgnn_ag.dir/adam.cc.o.d"
  "CMakeFiles/dgnn_ag.dir/grad_check.cc.o"
  "CMakeFiles/dgnn_ag.dir/grad_check.cc.o.d"
  "CMakeFiles/dgnn_ag.dir/serialize.cc.o"
  "CMakeFiles/dgnn_ag.dir/serialize.cc.o.d"
  "CMakeFiles/dgnn_ag.dir/tape.cc.o"
  "CMakeFiles/dgnn_ag.dir/tape.cc.o.d"
  "CMakeFiles/dgnn_ag.dir/tensor.cc.o"
  "CMakeFiles/dgnn_ag.dir/tensor.cc.o.d"
  "libdgnn_ag.a"
  "libdgnn_ag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_ag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
