
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ag/adam.cc" "src/ag/CMakeFiles/dgnn_ag.dir/adam.cc.o" "gcc" "src/ag/CMakeFiles/dgnn_ag.dir/adam.cc.o.d"
  "/root/repo/src/ag/grad_check.cc" "src/ag/CMakeFiles/dgnn_ag.dir/grad_check.cc.o" "gcc" "src/ag/CMakeFiles/dgnn_ag.dir/grad_check.cc.o.d"
  "/root/repo/src/ag/serialize.cc" "src/ag/CMakeFiles/dgnn_ag.dir/serialize.cc.o" "gcc" "src/ag/CMakeFiles/dgnn_ag.dir/serialize.cc.o.d"
  "/root/repo/src/ag/tape.cc" "src/ag/CMakeFiles/dgnn_ag.dir/tape.cc.o" "gcc" "src/ag/CMakeFiles/dgnn_ag.dir/tape.cc.o.d"
  "/root/repo/src/ag/tensor.cc" "src/ag/CMakeFiles/dgnn_ag.dir/tensor.cc.o" "gcc" "src/ag/CMakeFiles/dgnn_ag.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dgnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dgnn_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
