# Empty dependencies file for dgnn_ag.
# This may be replaced when dependencies are built.
