file(REMOVE_RECURSE
  "libdgnn_core.a"
)
