file(REMOVE_RECURSE
  "CMakeFiles/dgnn_core.dir/dgnn_model.cc.o"
  "CMakeFiles/dgnn_core.dir/dgnn_model.cc.o.d"
  "CMakeFiles/dgnn_core.dir/memory_encoder.cc.o"
  "CMakeFiles/dgnn_core.dir/memory_encoder.cc.o.d"
  "CMakeFiles/dgnn_core.dir/model_zoo.cc.o"
  "CMakeFiles/dgnn_core.dir/model_zoo.cc.o.d"
  "CMakeFiles/dgnn_core.dir/pretrain.cc.o"
  "CMakeFiles/dgnn_core.dir/pretrain.cc.o.d"
  "libdgnn_core.a"
  "libdgnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
