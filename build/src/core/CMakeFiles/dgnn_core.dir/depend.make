# Empty dependencies file for dgnn_core.
# This may be replaced when dependencies are built.
