
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dgnn_model.cc" "src/core/CMakeFiles/dgnn_core.dir/dgnn_model.cc.o" "gcc" "src/core/CMakeFiles/dgnn_core.dir/dgnn_model.cc.o.d"
  "/root/repo/src/core/memory_encoder.cc" "src/core/CMakeFiles/dgnn_core.dir/memory_encoder.cc.o" "gcc" "src/core/CMakeFiles/dgnn_core.dir/memory_encoder.cc.o.d"
  "/root/repo/src/core/model_zoo.cc" "src/core/CMakeFiles/dgnn_core.dir/model_zoo.cc.o" "gcc" "src/core/CMakeFiles/dgnn_core.dir/model_zoo.cc.o.d"
  "/root/repo/src/core/pretrain.cc" "src/core/CMakeFiles/dgnn_core.dir/pretrain.cc.o" "gcc" "src/core/CMakeFiles/dgnn_core.dir/pretrain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ag/CMakeFiles/dgnn_ag.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/dgnn_models.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dgnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dgnn_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
