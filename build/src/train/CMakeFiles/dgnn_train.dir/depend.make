# Empty dependencies file for dgnn_train.
# This may be replaced when dependencies are built.
