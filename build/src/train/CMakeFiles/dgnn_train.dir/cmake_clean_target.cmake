file(REMOVE_RECURSE
  "libdgnn_train.a"
)
