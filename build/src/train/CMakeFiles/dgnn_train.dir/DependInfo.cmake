
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/beyond_accuracy.cc" "src/train/CMakeFiles/dgnn_train.dir/beyond_accuracy.cc.o" "gcc" "src/train/CMakeFiles/dgnn_train.dir/beyond_accuracy.cc.o.d"
  "/root/repo/src/train/evaluator.cc" "src/train/CMakeFiles/dgnn_train.dir/evaluator.cc.o" "gcc" "src/train/CMakeFiles/dgnn_train.dir/evaluator.cc.o.d"
  "/root/repo/src/train/metrics.cc" "src/train/CMakeFiles/dgnn_train.dir/metrics.cc.o" "gcc" "src/train/CMakeFiles/dgnn_train.dir/metrics.cc.o.d"
  "/root/repo/src/train/recommender.cc" "src/train/CMakeFiles/dgnn_train.dir/recommender.cc.o" "gcc" "src/train/CMakeFiles/dgnn_train.dir/recommender.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/train/CMakeFiles/dgnn_train.dir/trainer.cc.o" "gcc" "src/train/CMakeFiles/dgnn_train.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ag/CMakeFiles/dgnn_ag.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dgnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dgnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgnn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
