file(REMOVE_RECURSE
  "CMakeFiles/dgnn_train.dir/beyond_accuracy.cc.o"
  "CMakeFiles/dgnn_train.dir/beyond_accuracy.cc.o.d"
  "CMakeFiles/dgnn_train.dir/evaluator.cc.o"
  "CMakeFiles/dgnn_train.dir/evaluator.cc.o.d"
  "CMakeFiles/dgnn_train.dir/metrics.cc.o"
  "CMakeFiles/dgnn_train.dir/metrics.cc.o.d"
  "CMakeFiles/dgnn_train.dir/recommender.cc.o"
  "CMakeFiles/dgnn_train.dir/recommender.cc.o.d"
  "CMakeFiles/dgnn_train.dir/trainer.cc.o"
  "CMakeFiles/dgnn_train.dir/trainer.cc.o.d"
  "libdgnn_train.a"
  "libdgnn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
