file(REMOVE_RECURSE
  "libdgnn_models.a"
)
