
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bpr_mf.cc" "src/models/CMakeFiles/dgnn_models.dir/bpr_mf.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/bpr_mf.cc.o.d"
  "/root/repo/src/models/common.cc" "src/models/CMakeFiles/dgnn_models.dir/common.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/common.cc.o.d"
  "/root/repo/src/models/dgcf.cc" "src/models/CMakeFiles/dgnn_models.dir/dgcf.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/dgcf.cc.o.d"
  "/root/repo/src/models/dgrec.cc" "src/models/CMakeFiles/dgnn_models.dir/dgrec.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/dgrec.cc.o.d"
  "/root/repo/src/models/diffnet.cc" "src/models/CMakeFiles/dgnn_models.dir/diffnet.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/diffnet.cc.o.d"
  "/root/repo/src/models/disenhan.cc" "src/models/CMakeFiles/dgnn_models.dir/disenhan.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/disenhan.cc.o.d"
  "/root/repo/src/models/eatnn.cc" "src/models/CMakeFiles/dgnn_models.dir/eatnn.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/eatnn.cc.o.d"
  "/root/repo/src/models/gccf.cc" "src/models/CMakeFiles/dgnn_models.dir/gccf.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/gccf.cc.o.d"
  "/root/repo/src/models/graphrec.cc" "src/models/CMakeFiles/dgnn_models.dir/graphrec.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/graphrec.cc.o.d"
  "/root/repo/src/models/han.cc" "src/models/CMakeFiles/dgnn_models.dir/han.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/han.cc.o.d"
  "/root/repo/src/models/herec.cc" "src/models/CMakeFiles/dgnn_models.dir/herec.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/herec.cc.o.d"
  "/root/repo/src/models/hgt.cc" "src/models/CMakeFiles/dgnn_models.dir/hgt.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/hgt.cc.o.d"
  "/root/repo/src/models/kgat.cc" "src/models/CMakeFiles/dgnn_models.dir/kgat.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/kgat.cc.o.d"
  "/root/repo/src/models/lightgcn.cc" "src/models/CMakeFiles/dgnn_models.dir/lightgcn.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/lightgcn.cc.o.d"
  "/root/repo/src/models/mhcn.cc" "src/models/CMakeFiles/dgnn_models.dir/mhcn.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/mhcn.cc.o.d"
  "/root/repo/src/models/ngcf.cc" "src/models/CMakeFiles/dgnn_models.dir/ngcf.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/ngcf.cc.o.d"
  "/root/repo/src/models/samn.cc" "src/models/CMakeFiles/dgnn_models.dir/samn.cc.o" "gcc" "src/models/CMakeFiles/dgnn_models.dir/samn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ag/CMakeFiles/dgnn_ag.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dgnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dgnn_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
