# Empty compiler generated dependencies file for dgnn_models.
# This may be replaced when dependencies are built.
