file(REMOVE_RECURSE
  "CMakeFiles/dgnn_util.dir/check.cc.o"
  "CMakeFiles/dgnn_util.dir/check.cc.o.d"
  "CMakeFiles/dgnn_util.dir/flags.cc.o"
  "CMakeFiles/dgnn_util.dir/flags.cc.o.d"
  "CMakeFiles/dgnn_util.dir/rng.cc.o"
  "CMakeFiles/dgnn_util.dir/rng.cc.o.d"
  "CMakeFiles/dgnn_util.dir/status.cc.o"
  "CMakeFiles/dgnn_util.dir/status.cc.o.d"
  "CMakeFiles/dgnn_util.dir/strings.cc.o"
  "CMakeFiles/dgnn_util.dir/strings.cc.o.d"
  "CMakeFiles/dgnn_util.dir/table.cc.o"
  "CMakeFiles/dgnn_util.dir/table.cc.o.d"
  "libdgnn_util.a"
  "libdgnn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
