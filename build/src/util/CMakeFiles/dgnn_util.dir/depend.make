# Empty dependencies file for dgnn_util.
# This may be replaced when dependencies are built.
