file(REMOVE_RECURSE
  "libdgnn_util.a"
)
