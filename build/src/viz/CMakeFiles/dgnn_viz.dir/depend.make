# Empty dependencies file for dgnn_viz.
# This may be replaced when dependencies are built.
