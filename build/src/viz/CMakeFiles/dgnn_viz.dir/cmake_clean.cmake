file(REMOVE_RECURSE
  "CMakeFiles/dgnn_viz.dir/cluster_metrics.cc.o"
  "CMakeFiles/dgnn_viz.dir/cluster_metrics.cc.o.d"
  "CMakeFiles/dgnn_viz.dir/tsne.cc.o"
  "CMakeFiles/dgnn_viz.dir/tsne.cc.o.d"
  "libdgnn_viz.a"
  "libdgnn_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
