file(REMOVE_RECURSE
  "libdgnn_viz.a"
)
