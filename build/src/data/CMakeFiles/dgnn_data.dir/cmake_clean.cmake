file(REMOVE_RECURSE
  "CMakeFiles/dgnn_data.dir/dataset.cc.o"
  "CMakeFiles/dgnn_data.dir/dataset.cc.o.d"
  "CMakeFiles/dgnn_data.dir/io.cc.o"
  "CMakeFiles/dgnn_data.dir/io.cc.o.d"
  "CMakeFiles/dgnn_data.dir/sampler.cc.o"
  "CMakeFiles/dgnn_data.dir/sampler.cc.o.d"
  "CMakeFiles/dgnn_data.dir/synthetic.cc.o"
  "CMakeFiles/dgnn_data.dir/synthetic.cc.o.d"
  "libdgnn_data.a"
  "libdgnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
