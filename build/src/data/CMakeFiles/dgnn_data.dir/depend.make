# Empty dependencies file for dgnn_data.
# This may be replaced when dependencies are built.
