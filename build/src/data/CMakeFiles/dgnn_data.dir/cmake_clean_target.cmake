file(REMOVE_RECURSE
  "libdgnn_data.a"
)
