file(REMOVE_RECURSE
  "libdgnn_graph.a"
)
