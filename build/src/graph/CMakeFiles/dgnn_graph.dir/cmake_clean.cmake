file(REMOVE_RECURSE
  "CMakeFiles/dgnn_graph.dir/csr.cc.o"
  "CMakeFiles/dgnn_graph.dir/csr.cc.o.d"
  "CMakeFiles/dgnn_graph.dir/hetero_graph.cc.o"
  "CMakeFiles/dgnn_graph.dir/hetero_graph.cc.o.d"
  "libdgnn_graph.a"
  "libdgnn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
