# Empty dependencies file for dgnn_graph.
# This may be replaced when dependencies are built.
