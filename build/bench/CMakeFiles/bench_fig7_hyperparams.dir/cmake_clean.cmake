file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hyperparams.dir/bench_fig7_hyperparams.cc.o"
  "CMakeFiles/bench_fig7_hyperparams.dir/bench_fig7_hyperparams.cc.o.d"
  "bench_fig7_hyperparams"
  "bench_fig7_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
