# Empty compiler generated dependencies file for bench_fig9_embedding_viz.
# This may be replaced when dependencies are built.
