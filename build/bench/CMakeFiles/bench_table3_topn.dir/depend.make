# Empty dependencies file for bench_table3_topn.
# This may be replaced when dependencies are built.
