file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_topn.dir/bench_table3_topn.cc.o"
  "CMakeFiles/bench_table3_topn.dir/bench_table3_topn.cc.o.d"
  "bench_table3_topn"
  "bench_table3_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
