// Quickstart: generate a small social-recommendation dataset, train DGNN,
// evaluate under the paper's protocol, and print top-5 recommendations for
// a few users.
//
//   ./build/examples/quickstart [--epochs=15] [--dataset=tiny]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dgnn_model.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "train/trainer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  dgnn::util::Flags flags(argc, argv);

  // 1. Data: a synthetic world where social ties and item categories carry
  //    real preference signal (see DESIGN.md for why this substitutes for
  //    the paper's review-site crawls).
  auto config = dgnn::data::SyntheticConfig::Preset(
      flags.GetString("dataset", "tiny"));
  dgnn::data::Dataset dataset = dgnn::data::GenerateSynthetic(config);
  auto stats = dataset.ComputeStats();
  std::printf("dataset '%s': %lld users, %lld items, %lld interactions, "
              "%lld social ties, %lld relations\n",
              dataset.name.c_str(), (long long)stats.num_users,
              (long long)stats.num_items, (long long)stats.num_interactions,
              (long long)stats.num_social_ties,
              (long long)stats.num_relations);

  // 2. The collaborative heterogeneous graph (Eq. 1).
  dgnn::graph::HeteroGraph graph(dataset);

  // 3. The model: DGNN with the paper's defaults (d=16, L=2, |M|=8).
  dgnn::core::DgnnConfig model_config;
  model_config.embedding_dim = flags.GetInt("dim", 16);
  model_config.num_layers = static_cast<int>(flags.GetInt("layers", 2));
  model_config.num_memory_units =
      static_cast<int>(flags.GetInt("memory", 8));
  dgnn::core::DgnnModel model(graph, model_config);
  std::printf("model %s: %lld parameters\n", model.name().c_str(),
              (long long)model.params().TotalParameterCount());

  // 4. Train with BPR (Eq. 11) and evaluate HR/NDCG under the
  //    100-negative ranking protocol.
  dgnn::train::TrainConfig train_config;
  train_config.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  train_config.batch_size = 2048;
  train_config.eval_every = 5;
  train_config.eval_cutoffs = {5, 10};
  train_config.verbose = true;
  dgnn::train::Trainer trainer(&model, dataset, train_config);
  auto result = trainer.Fit();
  std::printf("final: %s (%.2fs train)\n",
              result.final_metrics.ToString().c_str(),
              result.total_train_seconds);

  // 5. Produce top-5 recommendations for the first few users, excluding
  //    already-interacted items.
  dgnn::ag::Tape tape;
  auto fwd = model.Forward(tape, /*training=*/false);
  const auto& users = tape.val(fwd.users);
  const auto& items = tape.val(fwd.items);
  auto seen = dataset.TrainItemsByUser();
  for (int32_t u = 0; u < std::min(dataset.num_users, 3); ++u) {
    std::vector<std::pair<float, int32_t>> scored;
    for (int32_t i = 0; i < dataset.num_items; ++i) {
      if (std::binary_search(seen[u].begin(), seen[u].end(), i)) continue;
      float s = 0.0f;
      for (int64_t c = 0; c < users.cols(); ++c) {
        s += users.at(u, c) * items.at(i, c);
      }
      scored.emplace_back(s, i);
    }
    std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                      std::greater<>());
    std::printf("user %d -> top-5 items:", u);
    for (int k = 0; k < 5; ++k) std::printf(" %d", scored[k].second);
    std::printf("\n");
  }
  return 0;
}
