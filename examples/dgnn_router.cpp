// dgnn_router — fault-tolerant scatter/gather frontend over a fleet of
// dgnn_serve shard workers (shard/router.h). Clients speak the exact
// dgnn_serve NDJSON protocol to the router; the router speaks the shard
// worker protocol (user_vector / topk_partial / similar_partial /
// score_item over Unix sockets) downward and merges per-shard answers
// through the shared ranking tie-break, so a full-fleet topk is
// bit-identical to a single-process scan of the unsharded snapshot.
//
// Start each worker on its slice, then the router over their sockets
// (socket order MUST be shard-index order; the router verifies):
//
//   dgnn_serve --snapshot=snap.shard0of3 --listen=/tmp/s0.sock &
//   dgnn_serve --snapshot=snap.shard1of3 --listen=/tmp/s1.sock &
//   dgnn_serve --snapshot=snap.shard2of3 --listen=/tmp/s2.sock &
//   dgnn_router --shards=/tmp/s0.sock,/tmp/s1.sock,/tmp/s2.sock
//
// Requests (stdin, one JSON per line — same shapes as dgnn_serve):
//   {"op":"topk","user":3,"k":10}
//   {"op":"score","user":3,"item":7}
//   {"op":"similar_users","user":3,"k":5}
//   {"op":"swap","snapshot":"other.snap"}   two-phase fleet-wide swap
//   {"op":"stats"}                          router + per-shard health
//   {"op":"quit"}
//
// Responses add "missing_shards":[i,...] when a partial answer had to
// drop (or substitute for) a shard's slice; such responses also carry
// degraded:true. A down user shard degrades topk to the popularity
// ranking rather than failing (counter serve.shard.failovers); only
// when EVERY shard is unreachable does an op return ok=false.
//
// Robustness knobs: --retries=N (transient transport errors, capped
// backoff), --hedge-ms=T (hedged second attempt for stragglers),
// --deadline-ms=T (admission deadline, propagated minus elapsed time to
// each shard), --shard-timeout-ms=T (per-attempt budget),
// --max-inflight=N (fleet-wide shedding, "overloaded" like dgnn_serve).
// Health probing: --probe-interval-ms / --probe-timeout-ms drive the
// per-shard healthy/degraded/down state machine shown by "stats".
//
// SIGTERM/SIGINT drain: installed without SA_RESTART so the blocking
// stdin read is interrupted; the router waits for every in-flight
// scatter/gather (hedged stragglers included) before emitting serve_end
// to --run-log and exiting 0.
//
// --replay-trace=F [--workers=N] [--bench-json=OUT] replays a recorded
// request trace (serve/trace.h) open-loop through the router instead of
// serving stdin — the sharded counterpart of `dgnn_serve
// --replay-trace`, and the harness ci/check_shard.sh and the
// BENCH_serve_shard.json trajectory point drive. Prints one JSON
// summary line; --bench-json additionally writes a schema_version-2
// bench file (bench:"dgnn_router") that `dgnn_inspect bench` validates.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/replay.h"
#include "serve/trace.h"
#include "shard/router.h"
#include "shard/wire.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/run_log.h"
#include "util/telemetry.h"

namespace {

using namespace dgnn;

volatile std::sig_atomic_t g_shutdown_requested = 0;
void OnShutdown(int) { g_shutdown_requested = 1; }

void PrintLine(const std::string& json) {
  std::fputs(json.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

void RespondError(const std::string& message) {
  util::JsonObject o;
  o.Set("ok", false).Set("error", message);
  PrintLine(o.Build());
}

std::string MissingJson(const std::vector<int32_t>& missing) {
  std::string out = "[";
  for (size_t i = 0; i < missing.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(missing[i]);
  }
  out += "]";
  return out;
}

// dgnn_serve-shaped response line for a router op. Keeps the field
// order of dgnn_serve's Dispatch so single-process and routed replies
// diff cleanly; missing_shards appears only on partial answers.
void PrintResponse(const std::string& op, int32_t user, int32_t item,
                   int k, const serve::Response& resp) {
  if (!resp.ok) {
    util::JsonObject o;
    o.Set("ok", false).Set("error", resp.error).Set("trace_id",
                                                    resp.trace_id);
    PrintLine(o.Build());
    return;
  }
  util::JsonObject o;
  o.Set("ok", true)
      .Set("op", op)
      .Set("user", static_cast<int64_t>(user))
      .Set("trace_id", resp.trace_id)
      .Set("degraded", resp.degraded)
      .Set("snapshot_version", resp.snapshot_version);
  if (op == "score") {
    o.Set("item", static_cast<int64_t>(item))
        .Set("score", static_cast<double>(resp.score));
  } else {
    o.Set("k", static_cast<int64_t>(k))
        .SetRaw("items", shard::ItemsJson(resp.items));
  }
  if (!resp.missing_shards.empty()) {
    o.SetRaw("missing_shards", MissingJson(resp.missing_shards));
  }
  PrintLine(o.Build());
}

// Serves one parsed request line; returns false once "quit" was handled.
bool Dispatch(shard::Router& router, const util::JsonValue& req) {
  const std::string op = req.StringOr("op", "");
  if (op == "quit") {
    util::JsonObject o;
    o.Set("ok", true).Set("op", op);
    PrintLine(o.Build());
    return false;
  }
  if (op == "stats") {
    PrintLine(router.StatsJson());
    return true;
  }
  if (op == "swap") {
    const std::string prefix = req.StringOr("snapshot", "");
    if (prefix.empty()) {
      RespondError("swap requires a \"snapshot\" path");
      return true;
    }
    auto version = router.CoordinatedSwap(prefix);
    if (runlog::Active()) {
      util::JsonObject o;
      o.Set("trigger", "swap")
          .Set("path", prefix)
          .Set("ok", version.ok());
      if (version.ok()) {
        o.Set("snapshot_version", version.value());
      } else {
        o.Set("error", version.status().ToString());
      }
      runlog::Emit("coordinated_swap", o);
    }
    if (!version.ok()) {
      RespondError(version.status().ToString());
      return true;
    }
    util::JsonObject o;
    o.Set("ok", true).Set("op", op).Set("snapshot_version",
                                        version.value());
    PrintLine(o.Build());
    return true;
  }

  const auto user = static_cast<int32_t>(req.NumberOr("user", -1));
  const auto item = static_cast<int32_t>(req.NumberOr("item", -1));
  const int k = static_cast<int>(req.NumberOr("k", 10));
  const auto deadline_ms =
      static_cast<int64_t>(req.NumberOr("deadline_ms", 0));
  if (op == "topk") {
    PrintResponse(op, user, item, k, router.TopK(user, k, deadline_ms));
  } else if (op == "score") {
    PrintResponse(op, user, item, k,
                  router.Score(user, item, deadline_ms));
  } else if (op == "similar_users") {
    PrintResponse(op, user, item, k,
                  router.SimilarUsers(user, k, deadline_ms));
  } else {
    RespondError("unknown op '" + op + "'");
  }
  return true;
}

// --bench-json: one open-mode schema_version-2 point in the exact shape
// `dgnn_inspect bench` validates (ValidateBenchPoint), so router runs
// slot into the same trajectory tooling as bench_serve_load results.
int WriteBenchJson(const std::string& path, const std::string& preset,
                   const std::string& arrival, int workers, int64_t dim,
                   int64_t snapshot_bytes, int num_shards,
                   int killed_shards, const serve::ReplayResult& r,
                   const shard::RouterCounters& c) {
  util::JsonObject point;
  point.Set("target_qps", r.offered_qps)
      .Set("offered_qps", r.offered_qps)
      .Set("achieved_qps", r.achieved_qps)
      .Set("requests", r.requests)
      .Set("seconds", r.seconds)
      .Set("p50_ms", r.p50_ms)
      .Set("p95_ms", r.p95_ms)
      .Set("p99_ms", r.p99_ms)
      .Set("max_ms", r.max_ms)
      .Set("mean_ms", r.mean_ms)
      .Set("ok", r.ok)
      .Set("degraded", r.degraded)
      .Set("shed", r.shed)
      .Set("expired", r.expired)
      .Set("failed", r.failed)
      .Set("late_dispatches", r.late_dispatches)
      .Set("max_lateness_ms", r.max_lateness_ms)
      .Set("distinct_trace_ids", r.distinct_trace_ids)
      .Set("peak_rss_bytes", r.peak_rss_bytes)
      .Set("snapshot_bytes", snapshot_bytes)
      .Set("num_shards", static_cast<int64_t>(num_shards))
      .Set("killed_shards", static_cast<int64_t>(killed_shards))
      .Set("shard_retries", c.retries)
      .Set("shard_hedges", c.hedges)
      .Set("shard_failovers", c.failovers)
      .Set("shard_degraded_responses", c.degraded_responses);
  util::JsonObject root;
  root.Set("schema_version", static_cast<int64_t>(2))
      .Set("bench", "dgnn_router")
      .Set("mode", "open")
      .Set("preset", preset)
      .Set("arrival", arrival)
      .Set("workers", static_cast<int64_t>(workers))
      .Set("dim", dim)
      .Set("k", static_cast<int64_t>(10))
      .Set("quant", "none")
      .Set("index", "none")
      .Set("nprobe", static_cast<int64_t>(0))
      .Set("rerank", static_cast<int64_t>(0))
      .SetRaw("points", "[" + point.Build() + "]");
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  out << root.Build() << "\n";
  out.close();
  return out.good() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string shards_flag = flags.GetString("shards", "");
  if (shards_flag.empty()) {
    std::fprintf(
        stderr,
        "usage: dgnn_router --shards=SOCK0,SOCK1,... (shard-index order)\n"
        "  [--deadline-ms=T] [--shard-timeout-ms=T] [--connect-timeout-ms=T]\n"
        "  [--retries=N] [--hedge-ms=T] [--max-inflight=N]\n"
        "  [--probe-interval-ms=T] [--probe-timeout-ms=T]\n"
        "  [--swap-timeout-ms=T] [--run-log=F]\n"
        "  [--replay-trace=F [--workers=N] [--bench-json=OUT]\n"
        "   [--preset=NAME] [--arrival=poisson|burst|diurnal]]\n"
        "reads NDJSON requests on stdin (dgnn_serve protocol); "
        "SIGTERM/SIGINT drain in-flight scatter/gathers and exit 0\n");
    return 2;
  }
  shard::RouterConfig config;
  std::string token;
  for (char ch : shards_flag) {
    if (ch == ',') {
      if (!token.empty()) config.shard_paths.push_back(token);
      token.clear();
    } else {
      token += ch;
    }
  }
  if (!token.empty()) config.shard_paths.push_back(token);
  if (config.shard_paths.empty()) {
    std::fprintf(stderr, "--shards lists no socket paths\n");
    return 2;
  }
  config.connect_timeout_ms =
      static_cast<int>(flags.GetInt("connect-timeout-ms", 500));
  config.shard_timeout_ms =
      static_cast<int>(flags.GetInt("shard-timeout-ms", 1000));
  config.probe_timeout_ms =
      static_cast<int>(flags.GetInt("probe-timeout-ms", 250));
  config.swap_timeout_ms =
      static_cast<int>(flags.GetInt("swap-timeout-ms", 10000));
  config.default_deadline_ms = flags.GetInt("deadline-ms", 0);
  config.retries = static_cast<int>(flags.GetInt("retries", 2));
  config.hedge_ms = static_cast<int>(flags.GetInt("hedge-ms", 0));
  config.probe_interval_ms =
      static_cast<int>(flags.GetInt("probe-interval-ms", 100));
  config.max_inflight = static_cast<int>(flags.GetInt("max-inflight", 0));

  const std::string run_log = flags.GetString("run-log", "");
  if (!run_log.empty()) {
    util::Status s = runlog::Open(run_log);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  shard::Router router(config);
  util::Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "dgnn_router: fleet of %d shard(s) — %lld users, %lld "
               "items, dim %lld (retries=%d hedge_ms=%d deadline_ms=%lld)\n",
               router.num_shards(), (long long)router.num_users(),
               (long long)router.num_items(), (long long)router.dim(),
               config.retries, config.hedge_ms,
               (long long)config.default_deadline_ms);
  if (runlog::Active()) {
    util::JsonObject o;
    o.Set("num_shards", static_cast<int64_t>(router.num_shards()))
        .Set("num_users", router.num_users())
        .Set("num_items", router.num_items())
        .Set("dim", router.dim())
        .Set("retries", static_cast<int64_t>(config.retries))
        .Set("hedge_ms", static_cast<int64_t>(config.hedge_ms))
        .Set("deadline_ms", config.default_deadline_ms)
        .Set("max_inflight", static_cast<int64_t>(config.max_inflight));
    runlog::Emit("router_start", o);
  }

  // SIGTERM/SIGINT without SA_RESTART: interrupt the blocking stdin read
  // so the loop falls through to the drain barrier below.
  struct sigaction shutdown_action;
  std::memset(&shutdown_action, 0, sizeof(shutdown_action));
  shutdown_action.sa_handler = OnShutdown;
  sigemptyset(&shutdown_action.sa_mask);
  shutdown_action.sa_flags = 0;
  sigaction(SIGTERM, &shutdown_action, nullptr);
  sigaction(SIGINT, &shutdown_action, nullptr);

  int exit_code = 0;
  const char* exit_reason = "eof";
  if (flags.Has("replay-trace")) {
    auto trace = serve::ReadTrace(flags.GetString("replay-trace", ""));
    if (!trace.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   trace.status().ToString().c_str());
      router.Stop();
      return 1;
    }
    serve::ReplayConfig replay_config;
    replay_config.workers = static_cast<int>(flags.GetInt("workers", 4));
    // Route each trace record through the fleet. The handler overload
    // classifies outcomes by the identical error contract, so "shed" /
    // "expired" / "degraded" mean the same thing they mean for the
    // single-process replay — except here "degraded" includes answers
    // that lost a shard's slice mid-replay.
    const serve::ReplayResult r = serve::ReplayTrace(
        [&router](const serve::Request& request) {
          switch (request.type) {
            case serve::Request::Type::kScore:
              return router.Score(request.user, request.item,
                                  request.timeout_ms);
            case serve::Request::Type::kSimilarUsers:
              return router.SimilarUsers(request.user, request.k,
                                         request.timeout_ms);
            default:
              return router.TopK(request.user, request.k,
                                 request.timeout_ms);
          }
        },
        trace.value().records, replay_config);
    const shard::RouterCounters c = router.counters();
    // Count shards the probe loop currently sees as down (a shard
    // SIGKILLed mid-replay shows up here — the bench point records how
    // many slices the fleet was missing).
    int down = 0;
    int64_t resident = 0;
    for (const auto& st : router.ShardStatuses()) {
      if (st.state == shard::HealthState::kDown) ++down;
    }
    util::JsonObject o;
    o.Set("ok", true)
        .Set("op", "replay")
        .Set("requests", r.requests)
        .Set("seconds", r.seconds)
        .Set("offered_qps", r.offered_qps)
        .Set("achieved_qps", r.achieved_qps)
        .Set("p50_ms", r.p50_ms)
        .Set("p95_ms", r.p95_ms)
        .Set("p99_ms", r.p99_ms)
        .Set("completed", r.ok)
        .Set("degraded", r.degraded)
        .Set("shed", r.shed)
        .Set("expired", r.expired)
        .Set("failed", r.failed)
        .Set("late_dispatches", r.late_dispatches)
        .Set("distinct_trace_ids", r.distinct_trace_ids)
        .Set("peak_rss_bytes", r.peak_rss_bytes)
        .Set("num_shards", static_cast<int64_t>(router.num_shards()))
        .Set("down_shards", static_cast<int64_t>(down))
        .Set("shard_retries", c.retries)
        .Set("shard_hedges", c.hedges)
        .Set("shard_failovers", c.failovers)
        .Set("shard_degraded_responses", c.degraded_responses);
    PrintLine(o.Build());
    const std::string bench_json = flags.GetString("bench-json", "");
    if (!bench_json.empty()) {
      // Fleet embedding footprint: dim fp32 floats per user and item row
      // plus norms — the same accounting SnapshotResidentBytes uses for
      // the dense sections, summed across the (disjoint) slices.
      resident = (router.num_users() + router.num_items()) *
                 (router.dim() + 1) * static_cast<int64_t>(sizeof(float));
      exit_code = WriteBenchJson(
          bench_json, flags.GetString("preset", "custom"),
          flags.GetString("arrival", "poisson"), replay_config.workers,
          router.dim(), resident, router.num_shards(), down, r, c);
    }
    exit_reason = "replay";
  } else {
    std::string line;
    bool running = true;
    while (running && !g_shutdown_requested &&
           std::getline(std::cin, line)) {
      if (g_shutdown_requested) break;
      if (line.empty()) continue;
      auto parsed = util::ParseJson(line);
      if (!parsed.ok()) {
        RespondError("request is not valid JSON: " +
                     parsed.status().message());
        continue;
      }
      running = Dispatch(router, parsed.value());
    }
    exit_reason =
        g_shutdown_requested ? "signal" : (running ? "eof" : "quit");
  }

  // Drain: wait out every in-flight scatter/gather and straggling hedge
  // before reporting totals — serve_end must describe a finished fleet.
  router.BeginDrain();
  const shard::RouterCounters c = router.counters();
  if (runlog::Active()) {
    util::JsonObject o;
    o.Set("reason", exit_reason)
        .Set("requests", c.requests)
        .Set("retries", c.retries)
        .Set("hedges", c.hedges)
        .Set("failovers", c.failovers)
        .Set("degraded_responses", c.degraded_responses)
        .Set("shed", c.shed);
    runlog::Emit("serve_end", o);
    runlog::Close();
  }
  std::fprintf(stderr,
               "dgnn_router: %lld requests, %lld retries, %lld hedges, "
               "%lld failovers, %lld degraded, %lld shed (%s)\n",
               (long long)c.requests, (long long)c.retries,
               (long long)c.hedges, (long long)c.failovers,
               (long long)c.degraded_responses, (long long)c.shed,
               exit_reason);
  router.Stop();
  return exit_code;
}
