// dgnn_serve — online serving frontend over serve::ServingEngine: loads an
// embedding snapshot (exported with `dgnn_cli --mode=export`) and answers
// newline-delimited JSON requests on stdin with one JSON response line on
// stdout each (NDJSON in, NDJSON out).
//
// Requests:
//   {"op":"topk","user":3,"k":10}
//   {"op":"score","user":3,"item":7}
//   {"op":"similar_users","user":3,"k":5}
//   {"op":"reload"}                        re-read --snapshot from disk
//   {"op":"swap","snapshot":"other.snap"}  hot-swap to another file
//   {"op":"stats"}                         counters + rolling windows
//   {"op":"stats","format":"prom"}         Prometheus text (in "text")
//   {"op":"burst","n":64,"user":3,"k":10}  fire n concurrent topk calls
//   {"op":"quit"}                          acknowledge and exit 0
//
// Scoring requests accept "deadline_ms" (admission deadline for that
// request; -1 = explicitly none), overriding --deadline-ms. "burst" runs
// n copies of a topk request from n threads at once — the way to exercise
// --max-queue load shedding from a scripted client — and reports
// {"completed":..,"shed":..,"expired":..,"failed":..}.
//
// Responses always carry "ok"; successful scoring responses carry
// "degraded" (true when an unknown/cold user fell back to the popularity
// ranking) and "snapshot_version" (bumps on every hot swap — in-flight
// requests finish on the snapshot they started with).
//
//   {"ok":true,"op":"topk","user":3,"degraded":false,
//    "snapshot_version":1,"items":[{"item":5,"score":1.25}, ...]}
//   {"ok":false,"error":"..."}
//
// SIGHUP requests a reload of --snapshot before the next request is
// served (the conventional "re-read your config" signal); the scripted
// equivalent is the "reload" op. A failed reload/swap keeps the engine on
// its current snapshot and reports the error in-band.
//
// SIGTERM/SIGINT drain gracefully: the handler is installed WITHOUT
// SA_RESTART so the blocking stdin read is interrupted, in-flight
// micro-batches finish (Handle calls are synchronous), serve_end is
// emitted with reason=signal, metrics/trace/run-log flush, and the
// process exits 0.
//
// Flags: --snapshot=F (required), --threads=N, --cache=N,
// --social-alpha=A, --max-queue=N, --deadline-ms=T, --metrics-out=F,
// --trace-out=F, --run-log=F.
//
// Quantized snapshots (int8/fp16 embedding sections) load transparently.
// When the snapshot carries an IVF index, --nprobe=N probes the top-N
// coarse lists per topk request (sublinear candidate generation) with an
// fp32 exact rerank of the top --rerank survivors (0 = max(4k, 64));
// --nprobe=0 (default) keeps the exact brute-force scan. See README
// "Quantization & retrieval index".
//
// Live observability (README "Live observability"): --stats-out=F
// appends a timestamped stats snapshot (counters + rolling 1s/10s/60s
// windows + SLO burn) as crash-safe JSONL every --stats-every-s seconds
// (default 10); SIGUSR1 forces a dump immediately.
// --metrics-flush-every-s=S periodically rewrites --metrics-out so a
// SIGKILL'd server still leaves recent metrics. --request-log=F streams
// sampled per-request stage traces (NDJSON; sampling controlled by
// --trace-sample-rate, default 0.01, deterministic by trace id).
// --slo-p99-ms / --slo-availability set the SLO thresholds behind the
// burn counters in the stats snapshot. Render any of these offline with
// `dgnn_inspect stats|watch`.
//
// --replay-trace=F [--workers=N] switches to batch mode: instead of
// serving stdin, replay a recorded request trace (serve/trace.h)
// open-loop against the loaded snapshot, print one JSON summary line
// (coordinated-omission-safe latency; see serve/replay.h), and exit.
//
// Sharded serving (README "Sharded serving"): --listen=SOCK additionally
// serves the shard worker protocol (shard/shard_service.h: probe,
// user_vector, topk_partial, similar_partial, score_item, two-phase
// swap_prepare/commit/abort) on a Unix socket for dgnn_router; the same
// ops also work on stdin. A sharded snapshot slice
// ("snap.shard<i>of<N>", from `dgnn_cli --mode=export --shards=N`) loads
// like any other snapshot. The SIGTERM drain aborts any
// prepared-but-uncommitted two-phase swap before serve_end.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kernels/kernels.h"
#include "serve/engine.h"
#include "serve/observe.h"
#include "serve/replay.h"
#include "serve/snapshot.h"
#include "serve/trace.h"
#include "shard/shard_service.h"
#include "shard/transport.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/run_log.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace {

using namespace dgnn;

volatile std::sig_atomic_t g_reload_requested = 0;
volatile std::sig_atomic_t g_shutdown_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void OnSighup(int) { g_reload_requested = 1; }
void OnShutdown(int) { g_shutdown_requested = 1; }
void OnSigusr1(int) { g_dump_requested = 1; }

// Background exposition: appends a timestamped stats snapshot to
// --stats-out every stats_every_s seconds (SIGUSR1 forces one now) and
// rewrites --metrics-out every metrics_flush_every_s seconds, so a
// SIGKILL'd server still leaves recent state on disk. The thread wakes
// every 200 ms to notice signals promptly without busy-waiting.
class ExpositionLoop {
 public:
  ExpositionLoop(serve::ServingEngine& engine,
                 serve::observe::JsonlAppender* stats_out,
                 double stats_every_s, const std::string& metrics_out,
                 double metrics_flush_every_s)
      : engine_(engine),
        stats_out_(stats_out),
        stats_every_s_(stats_every_s),
        metrics_out_(metrics_out),
        metrics_flush_every_s_(metrics_flush_every_s) {}

  void Start() {
    const bool want_stats = stats_out_ != nullptr && stats_out_->active();
    const bool want_metrics =
        !metrics_out_.empty() && metrics_flush_every_s_ > 0;
    if (!want_stats && !want_metrics) return;
    thread_ = std::thread([this] { Run(); });
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void AppendStatsNow() {
    if (stats_out_ == nullptr || !stats_out_->active()) return;
    util::JsonObject o;
    o.Set("ts_us", telemetry::TraceNowMicros());
    serve::observe::AppendStatsFields(engine_, &o);
    stats_out_->Append(o.Build());
  }

 private:
  void Run() {
    using Clock = std::chrono::steady_clock;
    auto last_stats = Clock::now();
    auto last_metrics = last_stats;
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(200),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      const auto now = Clock::now();
      const bool dump = g_dump_requested != 0;
      if (dump) g_dump_requested = 0;
      if (dump || (stats_every_s_ > 0 &&
                   std::chrono::duration<double>(now - last_stats).count() >=
                       stats_every_s_)) {
        AppendStatsNow();
        last_stats = now;
      }
      if (!metrics_out_.empty() && metrics_flush_every_s_ > 0 &&
          (dump ||
           std::chrono::duration<double>(now - last_metrics).count() >=
               metrics_flush_every_s_)) {
        util::Status st = telemetry::WriteMetricsJson(metrics_out_);
        if (!st.ok()) {
          std::fprintf(stderr, "metrics flush failed: %s\n",
                       st.ToString().c_str());
        }
        last_metrics = now;
      }
      lock.lock();
    }
  }

  serve::ServingEngine& engine_;
  serve::observe::JsonlAppender* stats_out_;
  const double stats_every_s_;
  const std::string metrics_out_;
  const double metrics_flush_every_s_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

void PrintLine(const std::string& json) {
  std::fputs(json.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

void RespondError(const std::string& message) {
  util::JsonObject o;
  o.Set("ok", false).Set("error", message);
  PrintLine(o.Build());
}

std::string ItemsJson(const std::vector<serve::ScoredItem>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    util::JsonObject o;
    o.Set("item", static_cast<int64_t>(items[i].item))
        .Set("score", static_cast<double>(items[i].score));
    out += o.Build();
  }
  out += "]";
  return out;
}

void LogSwapEvent(const char* trigger, const std::string& path,
                  int64_t version, const util::Status& status) {
  if (!runlog::Active()) return;
  util::JsonObject o;
  o.Set("trigger", trigger)
      .Set("path", path)
      .Set("snapshot_version", version)
      .Set("ok", status.ok());
  if (!status.ok()) o.Set("error", status.ToString());
  runlog::Emit("snapshot_swap", o);
}

// Serves one parsed request line; returns false once "quit" was handled.
bool Dispatch(serve::ServingEngine& engine, shard::ShardService& service,
              const util::JsonValue& req, const std::string& snapshot_path) {
  const std::string op = req.StringOr("op", "");
  // Shard-protocol ops (probe / user_vector / *_partial / score_item /
  // swap_prepare|commit|abort) work on stdin too — same handler the
  // --listen socket uses.
  std::string shard_out;
  if (service.HandleShardOp(req, op, &shard_out)) {
    PrintLine(shard_out);
    return true;
  }
  if (op == "quit") {
    util::JsonObject o;
    o.Set("ok", true).Set("op", op);
    PrintLine(o.Build());
    return false;
  }
  if (op == "reload" || op == "swap") {
    const std::string path =
        op == "swap" ? req.StringOr("snapshot", "") : snapshot_path;
    if (path.empty()) {
      RespondError("swap requires a \"snapshot\" path");
      return true;
    }
    util::Status loaded = engine.Load(path);
    LogSwapEvent(op.c_str(), path, engine.swap_count(), loaded);
    if (!loaded.ok()) {
      RespondError(loaded.ToString());
      return true;
    }
    util::JsonObject o;
    o.Set("ok", true).Set("op", op).Set("snapshot_version",
                                        engine.swap_count());
    PrintLine(o.Build());
    return true;
  }
  if (op == "stats") {
    // {"op":"stats"} returns the flat counters (wire-compatible with the
    // pre-observability op) plus the rolling windows and SLO burn
    // accounting; {"op":"stats","format":"prom"} wraps the Prometheus
    // text exposition of the same snapshot in a single-line response
    // (the NDJSON protocol cannot carry raw multi-line text).
    const std::string format = req.StringOr("format", "json");
    if (format == "prom") {
      auto prom = serve::observe::PromTextFromStatsJson(
          serve::observe::StatsJson(engine));
      if (!prom.ok()) {
        RespondError(prom.status().ToString());
        return true;
      }
      util::JsonObject o;
      o.Set("ok", true).Set("op", op).Set("format", format).Set(
          "text", prom.value());
      PrintLine(o.Build());
      return true;
    }
    if (format != "json") {
      RespondError("unknown stats format '" + format + "'");
      return true;
    }
    util::JsonObject o;
    o.Set("ok", true).Set("op", op);
    serve::observe::AppendStatsFields(engine, &o);
    PrintLine(o.Build());
    return true;
  }
  if (op == "burst") {
    const int n = static_cast<int>(req.NumberOr("n", 0));
    if (n <= 0 || n > 10000) {
      RespondError("burst requires \"n\" in [1, 10000]");
      return true;
    }
    serve::Request base;
    base.type = serve::Request::Type::kTopK;
    base.user = static_cast<int32_t>(req.NumberOr("user", 0));
    base.k = static_cast<int>(req.NumberOr("k", 10));
    base.timeout_ms = static_cast<int64_t>(req.NumberOr("deadline_ms", 0));
    std::vector<serve::Response> responses(static_cast<size_t>(n));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&engine, &responses, base, i] {
        responses[static_cast<size_t>(i)] = engine.Handle(base);
      });
    }
    for (auto& t : threads) t.join();
    int64_t completed = 0, shed = 0, expired = 0, failed = 0;
    for (const auto& r : responses) {
      if (r.ok) {
        ++completed;
      } else if (r.error == "overloaded") {
        ++shed;
      } else if (r.error == "deadline exceeded") {
        ++expired;
      } else {
        ++failed;
      }
    }
    util::JsonObject o;
    o.Set("ok", true)
        .Set("op", op)
        .Set("n", static_cast<int64_t>(n))
        .Set("completed", completed)
        .Set("shed", shed)
        .Set("expired", expired)
        .Set("failed", failed);
    PrintLine(o.Build());
    return true;
  }

  serve::Request request;
  if (op == "topk") {
    request.type = serve::Request::Type::kTopK;
  } else if (op == "score") {
    request.type = serve::Request::Type::kScore;
  } else if (op == "similar_users") {
    request.type = serve::Request::Type::kSimilarUsers;
  } else {
    RespondError("unknown op '" + op + "'");
    return true;
  }
  request.user = static_cast<int32_t>(req.NumberOr("user", -1));
  request.item = static_cast<int32_t>(req.NumberOr("item", -1));
  request.k = static_cast<int>(req.NumberOr("k", 10));
  request.timeout_ms = static_cast<int64_t>(req.NumberOr("deadline_ms", 0));

  const serve::Response resp = engine.Handle(request);
  if (!resp.ok) {
    util::JsonObject o;
    o.Set("ok", false).Set("error", resp.error).Set("trace_id",
                                                    resp.trace_id);
    PrintLine(o.Build());
    return true;
  }
  util::JsonObject o;
  o.Set("ok", true)
      .Set("op", op)
      .Set("user", static_cast<int64_t>(request.user))
      .Set("trace_id", resp.trace_id)
      .Set("degraded", resp.degraded)
      .Set("snapshot_version", resp.snapshot_version);
  if (request.type == serve::Request::Type::kScore) {
    o.Set("item", static_cast<int64_t>(request.item))
        .Set("score", static_cast<double>(resp.score));
  } else {
    o.Set("k", static_cast<int64_t>(request.k))
        .SetRaw("items", ItemsJson(resp.items));
  }
  PrintLine(o.Build());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string snapshot_path = flags.GetString("snapshot", "");
  if (snapshot_path.empty()) {
    std::fprintf(stderr,
                 "usage: dgnn_serve --snapshot=FILE [--threads=N] "
                 "[--cache=N] [--social-alpha=A] [--max-queue=N] "
                 "[--deadline-ms=T] [--metrics-out=F] "
                 "[--metrics-flush-every-s=S] [--trace-out=F] "
                 "[--run-log=F] [--stats-out=F] [--stats-every-s=S] "
                 "[--request-log=F] [--trace-sample-rate=R] "
                 "[--slo-p99-ms=T] [--slo-availability=A] [--listen=SOCK]\n"
                 "reads NDJSON requests on stdin; SIGHUP re-reads the "
                 "snapshot file; SIGUSR1 dumps stats/metrics now; "
                 "SIGTERM/SIGINT drain and exit 0\n");
    return 2;
  }
  if (flags.Has("threads")) {
    const int threads = static_cast<int>(flags.GetInt("threads", 0));
    if (threads < 1) {
      std::fprintf(stderr, "--threads must be >= 1\n");
      return 2;
    }
    util::SetNumThreads(threads);
  }
  // --deterministic=0 serves with the relaxed fast kernels; the default
  // keeps scoring bit-identical to offline training/evaluation.
  kernels::SetDeterministic(flags.GetBool("deterministic", true));
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  if (!metrics_out.empty() || !trace_out.empty()) {
    telemetry::SetEnabled(true);
  }
  const std::string run_log = flags.GetString("run-log", "");
  if (!run_log.empty()) {
    util::Status s = runlog::Open(run_log);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  serve::EngineConfig config;
  config.cache_capacity = static_cast<int>(flags.GetInt("cache", 4096));
  config.social_alpha =
      static_cast<float>(flags.GetDouble("social-alpha", 0.0));
  config.max_queue = static_cast<int>(flags.GetInt("max-queue", 0));
  config.default_deadline_ms = flags.GetInt("deadline-ms", 0);
  // The windowed sampler always runs in server mode: a long-lived server
  // is exactly what rolling windows are for, and a 1 Hz tick is
  // negligible next to any request.
  config.sampler_period_ms = 1000;
  config.trace_sample_rate = flags.GetDouble("trace-sample-rate", 0.01);
  config.slo_p99_ms = flags.GetDouble("slo-p99-ms", 0.0);
  config.slo_availability = flags.GetDouble("slo-availability", 0.0);
  // --nprobe=N probes the top-N IVF lists per TopK request when the
  // snapshot carries an index (0 = brute-force scan, the exact default);
  // --rerank=R sizes the fp32 exact-rerank shortlist (0 = max(4k, 64)).
  config.nprobe = static_cast<int>(flags.GetInt("nprobe", 0));
  config.rerank = static_cast<int>(flags.GetInt("rerank", 0));
  serve::ServingEngine engine(config);

  serve::observe::JsonlAppender request_log;
  const std::string request_log_path = flags.GetString("request-log", "");
  if (!request_log_path.empty()) {
    util::Status s = request_log.Open(request_log_path);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    engine.SetTraceSink([&request_log](const serve::RequestTrace& t) {
      request_log.Append(serve::observe::RequestTraceJson(t));
    });
  }
  serve::observe::JsonlAppender stats_out;
  const std::string stats_out_path = flags.GetString("stats-out", "");
  if (!stats_out_path.empty()) {
    util::Status s = stats_out.Open(stats_out_path);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  util::Status loaded = engine.Load(snapshot_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.ToString().c_str());
    return 1;
  }
  shard::ShardService service(engine, snapshot_path);
  const auto snap = engine.snapshot();
  if (!snap->shard.empty()) {
    std::fprintf(stderr,
                 "dgnn_serve: shard %d/%d — items [%lld, %lld), %lld owned "
                 "users\n",
                 snap->shard.shard_index, snap->shard.num_shards,
                 (long long)snap->shard.item_begin,
                 (long long)snap->shard.item_end,
                 (long long)snap->shard.num_owned_users);
  }
  const char* storage = snap->has_quant_items()
                            ? quant::CodecName(snap->quant_items.codec)
                            : "fp32";
  std::string retrieval =
      snap->ivf.empty()
          ? "brute-force"
          : (config.nprobe > 0
                 ? "ivf nlist=" + std::to_string(snap->ivf.nlist) +
                       " nprobe=" + std::to_string(config.nprobe)
                 : "brute-force (ivf present, --nprobe=0)");
  std::fprintf(stderr,
               "dgnn_serve: serving '%s' (%s) — %lld users, %lld items, "
               "dim %lld, %s embeddings, %s top-k, ~%.1f MB resident\n",
               snap->meta.model_name.c_str(), snapshot_path.c_str(),
               (long long)snap->meta.num_users,
               (long long)snap->meta.num_items,
               (long long)snap->meta.embedding_dim, storage,
               retrieval.c_str(),
               static_cast<double>(serve::SnapshotResidentBytes(*snap)) /
                   (1024.0 * 1024.0));
  if (runlog::Active()) {
    util::JsonObject o;
    o.Set("snapshot", snapshot_path)
        .Set("model", snap->meta.model_name)
        .Set("dataset", snap->meta.dataset_name)
        .Set("num_users", snap->meta.num_users)
        .Set("num_items", snap->meta.num_items)
        .Set("dim", snap->meta.embedding_dim)
        .Set("cache_capacity", static_cast<int64_t>(config.cache_capacity))
        .Set("social_alpha", static_cast<double>(config.social_alpha))
        .Set("max_queue", static_cast<int64_t>(config.max_queue))
        .Set("deadline_ms", config.default_deadline_ms)
        .Set("storage", storage)
        .Set("nprobe", static_cast<int64_t>(config.nprobe))
        .Set("rerank", static_cast<int64_t>(config.rerank));
    runlog::Emit("serve_start", o);
  }
  // --replay-trace: instead of serving stdin, replay a recorded request
  // trace (serve/trace.h) open-loop against the loaded snapshot and
  // print one JSON result line — the production-binary counterpart of
  // `bench_serve_load --replay-trace`, for replaying a captured schedule
  // against a real exported snapshot.
  if (flags.Has("replay-trace")) {
    auto trace = serve::ReadTrace(flags.GetString("replay-trace", ""));
    if (!trace.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   trace.status().ToString().c_str());
      return 1;
    }
    serve::ReplayConfig replay_config;
    replay_config.workers = static_cast<int>(flags.GetInt("workers", 4));
    const serve::ReplayResult r =
        serve::ReplayTrace(engine, trace.value().records, replay_config);
    util::JsonObject o;
    o.Set("ok", true)
        .Set("op", "replay")
        .Set("requests", r.requests)
        .Set("seconds", r.seconds)
        .Set("offered_qps", r.offered_qps)
        .Set("achieved_qps", r.achieved_qps)
        .Set("p50_ms", r.p50_ms)
        .Set("p95_ms", r.p95_ms)
        .Set("p99_ms", r.p99_ms)
        .Set("completed", r.ok)
        .Set("degraded", r.degraded)
        .Set("shed", r.shed)
        .Set("expired", r.expired)
        .Set("failed", r.failed)
        .Set("late_dispatches", r.late_dispatches)
        .Set("distinct_trace_ids", r.distinct_trace_ids)
        .Set("peak_rss_bytes", r.peak_rss_bytes);
    PrintLine(o.Build());
    return 0;
  }

  std::signal(SIGHUP, OnSighup);
  // SIGUSR1 asks the exposition loop for an immediate stats/metrics dump
  // (SA_RESTART so it does NOT interrupt the blocking stdin read — the
  // dump happens on the background thread, not the request loop).
  struct sigaction dump_action;
  std::memset(&dump_action, 0, sizeof(dump_action));
  dump_action.sa_handler = OnSigusr1;
  sigemptyset(&dump_action.sa_mask);
  dump_action.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &dump_action, nullptr);
  // SIGTERM/SIGINT: sigaction without SA_RESTART, so a pending blocking
  // getline fails with EINTR and the loop falls through to the drain path
  // below instead of waiting for the next request line.
  struct sigaction shutdown_action;
  std::memset(&shutdown_action, 0, sizeof(shutdown_action));
  shutdown_action.sa_handler = OnShutdown;
  sigemptyset(&shutdown_action.sa_mask);
  shutdown_action.sa_flags = 0;
  sigaction(SIGTERM, &shutdown_action, nullptr);
  sigaction(SIGINT, &shutdown_action, nullptr);

  ExpositionLoop exposition(
      engine, &stats_out, flags.GetDouble("stats-every-s", 10.0),
      metrics_out, flags.GetDouble("metrics-flush-every-s", 0.0));
  exposition.Start();

  // --listen=PATH: additionally serve the shard protocol on a Unix
  // socket (the dgnn_router transport). stdin stays live — the socket is
  // a second front door over the same engine and ShardService.
  shard::SocketServer socket_server;
  const std::string listen_path = flags.GetString("listen", "");
  if (!listen_path.empty()) {
    util::Status s = socket_server.Start(
        listen_path,
        [&service](const std::string& l) { return service.HandleLine(l); });
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "dgnn_serve: listening on %s\n",
                 listen_path.c_str());
  }

  std::string line;
  bool running = true;
  while (running && !g_shutdown_requested && std::getline(std::cin, line)) {
    if (g_shutdown_requested) break;
    if (g_reload_requested) {
      g_reload_requested = 0;
      util::Status s = engine.Load(snapshot_path);
      LogSwapEvent("SIGHUP", snapshot_path, engine.swap_count(), s);
      if (!s.ok()) {
        std::fprintf(stderr, "reload failed (still serving previous "
                             "snapshot): %s\n",
                     s.ToString().c_str());
      }
    }
    if (line.empty()) continue;
    auto parsed = util::ParseJson(line);
    if (!parsed.ok()) {
      RespondError("request is not valid JSON: " +
                   parsed.status().message());
      continue;
    }
    running = Dispatch(engine, service, parsed.value(), snapshot_path);
  }

  // Drain path: Handle calls are synchronous, so reaching this point means
  // every admitted micro-batch has completed. Flush every observability
  // output FIRST — metrics, chrome trace, the final stats snapshot and
  // the request log — and only then emit serve_end: if any flush here
  // crashes or is cut short, the run log's missing serve_end says so,
  // instead of a clean-looking serve_end followed by silently lost
  // metrics (the old atexit-ordering hazard).
  const char* exit_reason =
      g_shutdown_requested ? "signal" : (running ? "eof" : "quit");
  // Stop the socket front door first (in-flight socket requests finish
  // and get their responses), then abort any prepared-but-uncommitted
  // two-phase swap: a drain mid-swap must leave the fleet on the old
  // snapshot, not orphan a staged one.
  socket_server.Stop();
  if (service.AbortStagedSwap() && runlog::Active()) {
    util::JsonObject o;
    o.Set("trigger", "drain").Set("aborted", true);
    runlog::Emit("swap_abort", o);
  }
  exposition.Stop();
  exposition.AppendStatsNow();  // final snapshot with the closing totals
  stats_out.Close();
  request_log.Close();
  int exit_code = 0;
  if (!metrics_out.empty()) {
    util::Status st = telemetry::WriteMetricsJson(metrics_out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      exit_code = 1;
    }
  }
  if (!trace_out.empty()) {
    util::Status st = telemetry::WriteTraceJson(trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      exit_code = 1;
    }
  }
  const serve::EngineStats s = engine.stats();
  if (runlog::Active()) {
    util::JsonObject o;
    o.Set("reason", exit_reason)
        .Set("requests", s.requests)
        .Set("batches", s.batches)
        .Set("cache_hits", s.cache_hits)
        .Set("cache_misses", s.cache_misses)
        .Set("snapshot_swaps", s.snapshot_swaps)
        .Set("degraded_requests", s.degraded_requests)
        .Set("shed_requests", s.shed_requests)
        .Set("expired_requests", s.expired_requests)
        .Set("failed_requests", s.failed_requests);
    runlog::Emit("serve_end", o);
    runlog::Close();
  }
  std::fprintf(stderr,
               "dgnn_serve: %lld requests in %lld batches, %lld swaps, "
               "%lld degraded, %lld shed, %lld expired (%s)\n",
               (long long)s.requests, (long long)s.batches,
               (long long)s.snapshot_swaps, (long long)s.degraded_requests,
               (long long)s.shed_requests, (long long)s.expired_requests,
               exit_reason);
  return exit_code;
}
