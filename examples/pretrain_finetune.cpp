// Pre-train then fine-tune — the paper's future-work direction, runnable:
// warm-start DGNN's embedding tables with a heterogeneous link-prediction
// pre-text task (core/pretrain.h), fine-tune with BPR, and compare against
// training from scratch under an identical (short) budget. Pre-training
// shines when the fine-tuning budget is tight.
//
//   ./build/examples/pretrain_finetune [--dataset=ciao]
//                                      [--finetune_epochs=6]

#include <cstdio>

#include "core/dgnn_model.h"
#include "core/pretrain.h"
#include "data/synthetic.h"
#include "train/trainer.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  auto dataset = data::GenerateSynthetic(
      data::SyntheticConfig::Preset(flags.GetString("dataset", "ciao")));
  graph::HeteroGraph graph(dataset);
  const int finetune_epochs =
      static_cast<int>(flags.GetInt("finetune_epochs", 6));

  auto run = [&](bool pretrain) {
    core::DgnnConfig config;
    core::DgnnModel model(graph, config);
    if (pretrain) {
      core::PretrainConfig pc;
      auto pre = core::PretrainEmbeddings(
          model.params(), model.user_embedding(), model.item_embedding(),
          model.relation_embedding(), graph, pc);
      std::printf("pretraining: link-prediction loss %.4f -> %.4f over %d "
                  "epochs\n",
                  pre.first_epoch_loss, pre.last_epoch_loss, pc.epochs);
    }
    train::TrainConfig tc;
    tc.epochs = finetune_epochs;
    tc.weight_decay = 0.01f;
    train::Trainer trainer(&model, dataset, tc);
    return trainer.Fit().final_metrics;
  };

  auto scratch = run(false);
  auto warmed = run(true);

  util::Table table({"Setup", "HR@10", "NDCG@10"});
  table.AddRow({"from scratch",
                util::StrFormat("%.4f", scratch.hr[10]),
                util::StrFormat("%.4f", scratch.ndcg[10])});
  table.AddRow({"pretrain + finetune",
                util::StrFormat("%.4f", warmed.hr[10]),
                util::StrFormat("%.4f", warmed.ndcg[10])});
  std::printf("\nDGNN after only %d fine-tuning epochs:\n", finetune_epochs);
  table.Print();
  return 0;
}
