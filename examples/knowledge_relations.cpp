// Knowledge-aware item relations: demonstrates the item-relation matrix T
// (Section III) end to end. Compares DGNN against its "-T" ablation on
// *item*-side sparsity: items with few interactions can only be placed
// through their relation (category) nodes, so the gap concentrates on
// rarely-interacted items.
//
//   ./build/examples/knowledge_relations [--dataset=yelp] [--epochs=20]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "train/trainer.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  auto dataset = data::GenerateSynthetic(
      data::SyntheticConfig::Preset(flags.GetString("dataset", "yelp")));
  graph::HeteroGraph graph(dataset);
  train::Evaluator evaluator(dataset);

  // Item interaction counts (training only).
  std::vector<int64_t> item_count(dataset.num_items, 0);
  for (const auto& it : dataset.train) ++item_count[it.item];
  // A test case is "cold-item" when its positive has <= 2 training
  // interactions.
  auto split_ranks = [&](const std::vector<int>& ranks) {
    std::vector<int> cold, warm;
    for (size_t t = 0; t < dataset.test.size(); ++t) {
      (item_count[dataset.test[t].item] <= 2 ? cold : warm)
          .push_back(ranks[t]);
    }
    return std::pair<train::Metrics, train::Metrics>(
        train::MetricsFromRanks(cold, {10}),
        train::MetricsFromRanks(warm, {10}));
  };

  util::Table table({"Model", "cold items HR@10", "warm items HR@10",
                     "overall HR@10"});
  for (const char* name : {"DGNN-T", "DGNN"}) {
    core::ZooConfig zoo;
    auto model = core::CreateModelByName(name, dataset, graph, zoo);
    train::TrainConfig tc;
    tc.epochs = static_cast<int>(flags.GetInt("epochs", 20));
    tc.weight_decay = 0.01f;
    train::Trainer trainer(model.get(), dataset, tc);
    auto result = trainer.Fit();
    ag::Tape tape;
    auto fwd = model->Forward(tape, false);
    auto ranks = evaluator.Ranks(tape.val(fwd.users), tape.val(fwd.items));
    auto [cold, warm] = split_ranks(ranks);
    table.AddRow({name, util::StrFormat("%.4f", cold.hr[10]),
                  util::StrFormat("%.4f", warm.hr[10]),
                  util::StrFormat("%.4f", result.final_metrics.hr[10])});
    std::printf("%s: %lld cold-item test cases, %lld warm\n", name,
                (long long)cold.num_users, (long long)warm.num_users);
  }
  std::printf("\nItem relations and the items they connect (first 3 "
              "relation nodes):\n");
  for (int32_t r = 0; r < std::min(dataset.num_relations, 3); ++r) {
    std::printf("  relation %d <- items:", r);
    int shown = 0;
    for (const auto& [item, rel] : dataset.item_relations) {
      if (rel == r && shown < 8) {
        std::printf(" %d", item);
        ++shown;
      }
    }
    std::printf("\n");
  }
  table.Print();
  return 0;
}
