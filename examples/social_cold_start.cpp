// Social cold-start: shows how DGNN's social relations rescue users with
// very few interactions. Trains the full model and its "-S" ablation (no
// social matrix) on the same data, then compares HR@10 across user groups
// bucketed by interaction count — the Fig. 6 effect, packaged as an
// API walkthrough.
//
//   ./build/examples/social_cold_start [--dataset=ciao] [--epochs=20]

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/dgnn_model.h"
#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "train/trainer.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  auto dataset = data::GenerateSynthetic(
      data::SyntheticConfig::Preset(flags.GetString("dataset", "ciao")));
  graph::HeteroGraph graph(dataset);
  train::Evaluator evaluator(dataset);

  // Quartiles of users by training interaction count.
  std::vector<int64_t> count(dataset.num_users, 0);
  for (const auto& it : dataset.train) ++count[it.user];
  std::vector<int32_t> order(dataset.num_users);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return count[a] < count[b];
  });
  std::vector<int> group(dataset.num_users);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    group[order[rank]] = static_cast<int>(rank * 4 / order.size());
  }

  util::Table table({"Model", "coldest 25%", "25-50%", "50-75%",
                     "most active 25%", "overall HR@10"});
  for (const char* name : {"DGNN-S", "DGNN"}) {
    core::ZooConfig zoo;
    auto model = core::CreateModelByName(name, dataset, graph, zoo);
    train::TrainConfig tc;
    tc.epochs = static_cast<int>(flags.GetInt("epochs", 20));
    tc.weight_decay = 0.01f;
    train::Trainer trainer(model.get(), dataset, tc);
    auto result = trainer.Fit();
    ag::Tape tape;
    auto fwd = model->Forward(tape, false);
    auto per_group = evaluator.EvaluateGroups(
        tape.val(fwd.users), tape.val(fwd.items), group, 4, {10});
    table.AddRow({name,
                  util::StrFormat("%.4f", per_group[0].hr[10]),
                  util::StrFormat("%.4f", per_group[1].hr[10]),
                  util::StrFormat("%.4f", per_group[2].hr[10]),
                  util::StrFormat("%.4f", per_group[3].hr[10]),
                  util::StrFormat("%.4f", result.final_metrics.hr[10])});
  }
  std::printf("Effect of the social graph on sparse users (HR@10 per "
              "activity quartile):\n");
  table.Print();
  std::printf("\nThe gap between rows is largest for the coldest users: "
              "when a user has few\ninteractions of their own, the "
              "socially-recalibrated embedding (Eqs. 9-10)\nand social "
              "message passing (Eq. 4) substitute for the missing "
              "history.\n");
  return 0;
}
