// dgnn_inspect — offline reader for the structured JSONL run logs that
// dgnn_cli / the bench harnesses write via --run-log (schema: see
// src/util/run_log.h, version 1).
//
// Subcommands:
//   dgnn_inspect summarize LOG [LOG...]
//       Render every run in each log: config header, per-epoch loss and
//       metric curves, the latest gradient-statistics table, anomalies,
//       checkpoints, and the run_end summary (status completed vs
//       interrupted). A log whose final run has no run_end is reported as
//       "run died" — a crashed run leaves a valid prefix, not corruption.
//       With several logs (e.g. a killed run's log plus its resumed
//       continuation's), a "resume lineage" section chains runs through
//       the checkpoint files they saved and resumed from.
//   dgnn_inspect diff BASELINE CANDIDATE [--hr-tol=X] [--ndcg-tol=X]
//                     [--loss-tol=X]
//       Compare runs pairwise (run i vs run i). Directional check:
//       metrics regress when candidate < baseline - tol; loss regresses
//       when candidate > baseline + tol. Improvements never fail.
//       Tolerances default to 0 (bit-exact runs diff clean).
//   dgnn_inspect bench BENCH_serve.json
//       Validate a bench_serve_load --bench-json result file (schema
//       version 1): required fields per mode, quantile ordering,
//       outcome-count consistency. ci/check_bench.sh gates on this.
//   dgnn_inspect stats STATS.jsonl [--prom]
//       Validate a dgnn_serve --stats-out JSONL file (every line must be
//       a complete stats snapshot; corruption is exit 2) and render the
//       newest snapshot — counters, rolling windows, SLO burn — or, with
//       --prom, emit it as Prometheus text exposition (identical to the
//       live server's {"op":"stats","format":"prom"}).
//   dgnn_inspect watch STATS.jsonl [--max-seconds=S]
//       Tail the stats JSONL, one rendered line per snapshot; with S > 0
//       keeps polling for new lines that long before exiting.
//   dgnn_inspect kernels
//       Report the kernel dispatch state of this build/host: the active
//       SIMD level (after the DGNN_SIMD env override, if set), every
//       level compiled in and supported by the CPU, and the numeric
//       mode default. One "key: value" line each — ci/check_kernels.sh
//       parses the "available:" line to decide which DGNN_SIMD values
//       to sweep.
//
// Exit codes: 0 = ok, 1 = diff found a regression, 2 = usage error,
// unreadable file, unparseable line, invalid bench result, or
// structurally incomparable logs. ci/check_runlog.sh and
// ci/check_bench.sh gate on exactly these.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "kernels/kernels.h"
#include "serve/observe.h"
#include "serve/snapshot.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using dgnn::util::JsonValue;
using dgnn::util::ParseJson;
using dgnn::util::StrFormat;

// One training/evaluation run reconstructed from the event stream: the
// slice from a run_start up to (and including) its run_end. Events seen
// before any run_start (e.g. `eval`/`checkpoint` from dgnn_cli
// --mode=evaluate, which never calls Trainer::Fit) form an implicit
// headerless run.
struct Run {
  JsonValue run_start;  // kNull when the run is headerless
  JsonValue run_end;    // kNull when the run died before run_end
  bool has_start = false;
  bool has_end = false;
  std::vector<JsonValue> epochs;
  std::vector<JsonValue> evals;
  std::vector<JsonValue> grad_stats;
  std::vector<JsonValue> anomalies;
  std::vector<JsonValue> checkpoints;
};

struct RunLogFile {
  std::string path;
  int64_t num_lines = 0;
  std::vector<Run> runs;
};

// Parses the JSONL file into runs. Returns false (with a message on
// stderr) when the file is unreadable or any line fails to parse — a
// complete line that does not parse is corruption, unlike a missing
// run_end.
bool LoadRunLog(const std::string& path, RunLogFile* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "dgnn_inspect: cannot open %s\n", path.c_str());
    return false;
  }
  out->path = path;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = ParseJson(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "dgnn_inspect: %s:%lld: %s\n", path.c_str(),
                   (long long)line_no,
                   parsed.status().ToString().c_str());
      return false;
    }
    JsonValue v = std::move(parsed).value();
    const std::string event = v.StringOr("event", "");
    if (event.empty()) {
      std::fprintf(stderr, "dgnn_inspect: %s:%lld: missing \"event\"\n",
                   path.c_str(), (long long)line_no);
      return false;
    }
    ++out->num_lines;
    // A run begins at each run_start; events before the first run_start
    // form an implicit headerless run. Events after a run_end (e.g. the
    // checkpoint dgnn_cli saves after Fit) attach to the closed run.
    if (event == "run_start" || out->runs.empty()) {
      out->runs.push_back(Run{});
    }
    Run& run = out->runs.back();
    if (event == "run_start") {
      run.run_start = std::move(v);
      run.has_start = true;
    } else if (event == "run_end") {
      run.run_end = std::move(v);
      run.has_end = true;
    } else if (event == "epoch") {
      run.epochs.push_back(std::move(v));
    } else if (event == "eval") {
      run.evals.push_back(std::move(v));
    } else if (event == "grad_stats") {
      run.grad_stats.push_back(std::move(v));
    } else if (event == "anomaly") {
      run.anomalies.push_back(std::move(v));
    } else if (event == "checkpoint") {
      run.checkpoints.push_back(std::move(v));
    }
    // Unknown events are skipped by design (forward compatibility).
  }
  return true;
}

// Cutoffs present in a metrics object's "hr" member, as sorted ints.
std::vector<int> MetricCutoffs(const JsonValue* metrics) {
  std::vector<int> out;
  if (metrics == nullptr) return out;
  const JsonValue* hr = metrics->Find("hr");
  if (hr == nullptr || !hr->is_object()) return out;
  for (const auto& [key, unused] : hr->object) {
    out.push_back(std::atoi(key.c_str()));
  }
  return out;
}

double MetricAt(const JsonValue* metrics, const char* family, int cutoff,
                double def) {
  if (metrics == nullptr) return def;
  const JsonValue* fam = metrics->Find(family);
  if (fam == nullptr) return def;
  return fam->NumberOr(std::to_string(cutoff), def);
}

void PrintRunHeader(const Run& run, size_t index) {
  if (!run.has_start) {
    std::printf("== run %zu (headerless: evaluation-only or pre-run "
                "events) ==\n",
                index + 1);
    return;
  }
  const JsonValue& s = run.run_start;
  std::printf("== run %zu: %s on %s (seed %lld, %lld threads) ==\n",
              index + 1, s.StringOr("model", "?").c_str(),
              s.StringOr("dataset", "?").c_str(),
              (long long)s.NumberOr("seed", 0),
              (long long)s.NumberOr("num_threads", 0));
  const std::string resumed_from = s.StringOr("resumed_from", "");
  if (!resumed_from.empty()) {
    std::printf("   resumed from %s (continuing at epoch %lld)\n",
                resumed_from.c_str(),
                (long long)s.NumberOr("start_epoch", 0));
  }
  const JsonValue* ds = s.Find("dataset_stats");
  if (ds != nullptr) {
    std::printf("   dataset: %lld users, %lld items, %lld interactions, "
                "%lld social ties\n",
                (long long)ds->NumberOr("num_users", 0),
                (long long)ds->NumberOr("num_items", 0),
                (long long)ds->NumberOr("num_interactions", 0),
                (long long)ds->NumberOr("num_social_ties", 0));
  }
}

void PrintEpochTable(const Run& run) {
  if (run.epochs.empty()) return;
  // Metric columns come from the first evaluated epoch's cutoffs.
  std::vector<int> cutoffs;
  for (const auto& e : run.epochs) {
    if (e.BoolOr("evaluated", false)) {
      cutoffs = MetricCutoffs(e.Find("metrics"));
      break;
    }
  }
  std::vector<std::string> header = {"Epoch", "Loss", "Train s"};
  for (int n : cutoffs) header.push_back(StrFormat("HR@%d", n));
  for (int n : cutoffs) header.push_back(StrFormat("NDCG@%d", n));
  header.push_back("Eval s");
  dgnn::util::Table table(header);
  for (const auto& e : run.epochs) {
    std::vector<std::string> row = {
        StrFormat("%lld", (long long)e.NumberOr("epoch", 0)),
        StrFormat("%.4f", e.NumberOr("loss", 0.0)),
        StrFormat("%.2f", e.NumberOr("train_seconds", 0.0))};
    const bool evaluated = e.BoolOr("evaluated", false);
    const JsonValue* m = evaluated ? e.Find("metrics") : nullptr;
    for (int n : cutoffs) {
      row.push_back(m != nullptr
                        ? StrFormat("%.4f", MetricAt(m, "hr", n, 0.0))
                        : "-");
    }
    for (int n : cutoffs) {
      row.push_back(m != nullptr
                        ? StrFormat("%.4f", MetricAt(m, "ndcg", n, 0.0))
                        : "-");
    }
    row.push_back(evaluated
                      ? StrFormat("%.2f", e.NumberOr("eval_seconds", 0.0))
                      : "-");
    table.AddRow(std::move(row));
  }
  table.Print();
}

void PrintGradStats(const Run& run) {
  if (run.grad_stats.empty()) return;
  const JsonValue& last = run.grad_stats.back();
  std::printf("gradient stats (batch %lld, %zu samples in log):\n",
              (long long)last.NumberOr("batch", 0),
              run.grad_stats.size());
  const JsonValue* params = last.Find("params");
  if (params == nullptr || !params->is_array()) return;
  dgnn::util::Table table({"Parameter", "Size", "||g||", "max|g|",
                           "zero frac", "upd/param", "Finite"});
  for (const auto& p : params->array) {
    table.AddRow({p.StringOr("name", "?"),
                  StrFormat("%lld", (long long)p.NumberOr("size", 0)),
                  StrFormat("%.3e", p.NumberOr("grad_l2", 0.0)),
                  StrFormat("%.3e", p.NumberOr("grad_max_abs", 0.0)),
                  StrFormat("%.3f", p.NumberOr("grad_zero_frac", 0.0)),
                  StrFormat("%.3e", p.NumberOr("update_ratio", 0.0)),
                  p.BoolOr("finite", true) ? "yes" : "NO"});
  }
  table.Print();
}

void PrintRunFooter(const Run& run) {
  for (const auto& a : run.anomalies) {
    std::printf("ANOMALY: %s in op %s%s\n",
                a.StringOr("kind", "?").c_str(),
                a.StringOr("op", "?").c_str(),
                a.Find("param") != nullptr
                    ? StrFormat(" (parameter '%s')",
                                a.StringOr("param", "").c_str())
                        .c_str()
                    : "");
  }
  for (const auto& c : run.checkpoints) {
    std::printf("checkpoint: %s %s (%s)\n",
                c.StringOr("action", "?").c_str(),
                c.StringOr("path", "?").c_str(),
                c.BoolOr("ok", false)
                    ? "ok"
                    : ("FAILED: " + c.StringOr("error", "?")).c_str());
  }
  for (const auto& e : run.evals) {
    if (!run.epochs.empty()) break;  // epoch table already shows these
    const JsonValue* m = e.Find("metrics");
    std::string metrics_str;
    for (int n : MetricCutoffs(m)) {
      metrics_str += StrFormat("HR@%d=%.4f NDCG@%d=%.4f ", n,
                               MetricAt(m, "hr", n, 0.0), n,
                               MetricAt(m, "ndcg", n, 0.0));
    }
    std::printf("eval: %s(%.2fs)\n", metrics_str.c_str(),
                e.NumberOr("seconds", 0.0));
  }
  if (run.has_end) {
    const JsonValue& r = run.run_end;
    // Logs written before the status field read as completed runs.
    const std::string status = r.StringOr("status", "completed");
    const std::string resumed_from = r.StringOr("resumed_from", "");
    std::printf("run_end: %s, %lld epochs%s%s, best epoch %lld "
                "(metric %.4f), total train %.2fs\n",
                status.c_str(), (long long)r.NumberOr("epochs_run", 0),
                r.BoolOr("stopped_early", false) ? " (stopped early)" : "",
                resumed_from.empty()
                    ? ""
                    : (" (resumed from " + resumed_from + ")").c_str(),
                (long long)r.NumberOr("best_epoch", 0),
                r.NumberOr("best_metric", 0.0),
                r.NumberOr("total_train_seconds", 0.0));
  } else if (run.has_start) {
    std::printf("run died before run_end (crashed or still running)\n");
  }
}

// Short status tag for lineage lines: completed / interrupted / died.
std::string RunStatus(const Run& run) {
  if (run.has_end) return run.run_end.StringOr("status", "completed");
  return "died";
}

// Chains runs (possibly across log files) through the checkpoint files
// they saved and later resumed from: a run whose run_start carries
// resumed_from=P links back to the most recent earlier run that logged a
// successful save/save_checkpoint to P. Printed only when at least one
// run resumed — single-shot logs stay unchanged.
void PrintResumeLineage(const std::vector<RunLogFile>& logs) {
  struct Labeled {
    std::string label;
    const Run* run;
  };
  std::vector<Labeled> all;
  const bool multi = logs.size() > 1;
  for (const auto& log : logs) {
    for (size_t i = 0; i < log.runs.size(); ++i) {
      std::string label = multi ? log.path + " run " : "run ";
      label += StrFormat("%zu", i + 1);
      all.push_back({std::move(label), &log.runs[i]});
    }
  }
  // Checkpoint path -> label of the latest earlier run that saved it.
  std::map<std::string, std::string> saver;
  std::vector<std::string> lines;
  for (const auto& entry : all) {
    const Run& run = *entry.run;
    if (run.has_start) {
      const std::string from = run.run_start.StringOr("resumed_from", "");
      if (!from.empty()) {
        auto it = saver.find(from);
        lines.push_back(StrFormat(
            "  %s --(%s)--> %s [%s]",
            it != saver.end() ? it->second.c_str() : "<unknown run>",
            from.c_str(), entry.label.c_str(), RunStatus(run).c_str()));
      }
    }
    for (const auto& c : run.checkpoints) {
      const std::string action = c.StringOr("action", "");
      if ((action == "save_checkpoint" || action == "save") &&
          c.BoolOr("ok", false)) {
        saver[c.StringOr("path", "")] =
            entry.label + " [" + RunStatus(run) + "]";
      }
    }
  }
  if (lines.empty()) return;
  std::printf("resume lineage:\n");
  for (const auto& line : lines) std::printf("%s\n", line.c_str());
}

int Summarize(const std::vector<std::string>& paths) {
  std::vector<RunLogFile> logs(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!LoadRunLog(paths[i], &logs[i])) return 2;
  }
  for (const auto& log : logs) {
    std::printf("run log %s: %lld events, %zu run(s)\n", log.path.c_str(),
                (long long)log.num_lines, log.runs.size());
    for (size_t i = 0; i < log.runs.size(); ++i) {
      const Run& run = log.runs[i];
      PrintRunHeader(run, i);
      PrintEpochTable(run);
      PrintGradStats(run);
      PrintRunFooter(run);
    }
  }
  PrintResumeLineage(logs);
  return 0;
}

struct DiffTolerances {
  double hr = 0.0;
  double ndcg = 0.0;
  double loss = 0.0;
};

// Final metrics of a run: run_end.final_metrics.
const JsonValue* FinalMetrics(const Run& run) {
  return run.has_end ? run.run_end.Find("final_metrics") : nullptr;
}

int Diff(const std::string& base_path, const std::string& cand_path,
         const DiffTolerances& tol) {
  RunLogFile base, cand;
  if (!LoadRunLog(base_path, &base) || !LoadRunLog(cand_path, &cand)) {
    return 2;
  }
  if (base.runs.size() != cand.runs.size()) {
    std::fprintf(stderr,
                 "dgnn_inspect: run count mismatch: %zu vs %zu — logs are "
                 "not comparable\n",
                 base.runs.size(), cand.runs.size());
    return 2;
  }
  dgnn::util::Table table(
      {"Run", "Quantity", "Baseline", "Candidate", "Delta", "Status"});
  int regressions = 0;
  for (size_t i = 0; i < base.runs.size(); ++i) {
    const Run& b = base.runs[i];
    const Run& c = cand.runs[i];
    if (b.has_start && c.has_start) {
      const std::string bm = b.run_start.StringOr("model", "?");
      const std::string cm = c.run_start.StringOr("model", "?");
      if (bm != cm) {
        std::fprintf(stderr,
                     "dgnn_inspect: run %zu trains different models "
                     "(%s vs %s) — logs are not comparable\n",
                     i + 1, bm.c_str(), cm.c_str());
        return 2;
      }
    }
    if (!b.has_end || !c.has_end) {
      std::fprintf(stderr,
                   "dgnn_inspect: run %zu has no run_end in %s — cannot "
                   "diff a dead run\n",
                   i + 1, b.has_end ? cand_path.c_str() : base_path.c_str());
      return 2;
    }
    const std::string run_label = StrFormat("%zu", i + 1);
    const JsonValue* bmet = FinalMetrics(b);
    const JsonValue* cmet = FinalMetrics(c);
    // Metrics: higher is better; regression when candidate drops by more
    // than the tolerance.
    for (const char* family : {"hr", "ndcg"}) {
      const double family_tol =
          std::strcmp(family, "hr") == 0 ? tol.hr : tol.ndcg;
      for (int n : MetricCutoffs(bmet)) {
        const double bv = MetricAt(bmet, family, n, 0.0);
        const double cv = MetricAt(cmet, family, n, bv);
        const bool regressed = cv < bv - family_tol;
        regressions += regressed ? 1 : 0;
        table.AddRow({run_label,
                      StrFormat("%s@%d", family[0] == 'h' ? "HR" : "NDCG",
                                n),
                      StrFormat("%.4f", bv), StrFormat("%.4f", cv),
                      StrFormat("%+.4f", cv - bv),
                      regressed ? "REGRESSION" : "ok"});
      }
    }
    // Loss: lower is better; compare the last epoch's loss.
    if (!b.epochs.empty() && !c.epochs.empty()) {
      const double bl = b.epochs.back().NumberOr("loss", 0.0);
      const double cl = c.epochs.back().NumberOr("loss", 0.0);
      const bool regressed = cl > bl + tol.loss;
      regressions += regressed ? 1 : 0;
      table.AddRow({run_label, "final loss", StrFormat("%.4f", bl),
                    StrFormat("%.4f", cl), StrFormat("%+.4f", cl - bl),
                    regressed ? "REGRESSION" : "ok"});
    }
  }
  table.Print();
  if (regressions > 0) {
    std::printf("%d regression(s) beyond tolerance (hr %.4g, ndcg %.4g, "
                "loss %.4g)\n",
                regressions, tol.hr, tol.ndcg, tol.loss);
    return 1;
  }
  std::printf("no regressions\n");
  return 0;
}

// ---------------------------------------------------------------------
// bench: validate a BENCH_serve.json emitted by bench_serve_load
// --bench-json (schema_version 1). Parsed with the real JSON parser —
// no substring checks — and verified structurally: required fields per
// mode, quantile ordering p50 <= p95 <= p99, and outcome-count
// consistency (ok + shed + expired + failed == requests, degraded a
// subset of ok). ci/check_bench.sh gates on exit code 0 vs 2.
// ---------------------------------------------------------------------

bool BenchFail(const std::string& path, const std::string& what) {
  std::fprintf(stderr, "dgnn_inspect: %s: %s\n", path.c_str(),
               what.c_str());
  return false;
}

// Fetches a required finite, nonnegative numeric member.
bool BenchNumber(const std::string& path, const JsonValue& point,
                 const char* key, double* out) {
  const JsonValue* v = point.Find(key);
  if (v == nullptr || !v->is_number()) {
    return BenchFail(path, StrFormat("point missing numeric \"%s\"", key));
  }
  if (!(v->number >= 0.0)) {
    return BenchFail(path, StrFormat("\"%s\" is negative or NaN", key));
  }
  *out = v->number;
  return true;
}

bool ValidateBenchPoint(const std::string& path, const JsonValue& point,
                        const std::string& mode, int schema_version) {
  if (!point.is_object()) return BenchFail(path, "point is not an object");
  double p50 = 0, p95 = 0, p99 = 0, requests = 0;
  for (const char* key : {"requests", "seconds", "p50_ms", "p95_ms",
                          "p99_ms"}) {
    double v = 0;
    if (!BenchNumber(path, point, key, &v)) return false;
  }
  BenchNumber(path, point, "requests", &requests);
  BenchNumber(path, point, "p50_ms", &p50);
  BenchNumber(path, point, "p95_ms", &p95);
  BenchNumber(path, point, "p99_ms", &p99);
  if (p50 > p95 || p95 > p99) {
    return BenchFail(path,
                     StrFormat("quantiles out of order: p50 %.4f p95 %.4f "
                               "p99 %.4f",
                               p50, p95, p99));
  }
  if (mode == "open") {
    double ok = 0, shed = 0, expired = 0, failed = 0, degraded = 0;
    for (auto [key, out] : {std::pair<const char*, double*>{"ok", &ok},
                            {"shed", &shed},
                            {"expired", &expired},
                            {"failed", &failed},
                            {"degraded", &degraded}}) {
      if (!BenchNumber(path, point, key, out)) return false;
    }
    double target = 0, rss = 0, late = 0;
    if (!BenchNumber(path, point, "target_qps", &target)) return false;
    if (!BenchNumber(path, point, "peak_rss_bytes", &rss)) return false;
    if (!BenchNumber(path, point, "late_dispatches", &late)) return false;
    if (ok + shed + expired + failed != requests) {
      return BenchFail(
          path, StrFormat("outcome counts do not sum to requests: "
                          "%g + %g + %g + %g != %g",
                          ok, shed, expired, failed, requests));
    }
    if (degraded > ok) {
      return BenchFail(path, "degraded exceeds ok");
    }
    if (schema_version >= 2) {
      // v2 open points carry the snapshot footprint; recall_at_k is
      // present when the run measured it and must then be a fraction.
      double snapshot_bytes = 0;
      if (!BenchNumber(path, point, "snapshot_bytes", &snapshot_bytes)) {
        return false;
      }
      const JsonValue* recall = point.Find("recall_at_k");
      if (recall != nullptr) {
        if (!recall->is_number() || !(recall->number >= 0.0) ||
            recall->number > 1.0) {
          return BenchFail(path, "recall_at_k must be in [0, 1]");
        }
      }
    }
  } else {
    double clients = 0, qps = 0;
    if (!BenchNumber(path, point, "clients", &clients)) return false;
    if (!BenchNumber(path, point, "qps", &qps)) return false;
    if (clients < 1) return BenchFail(path, "clients < 1");
  }
  return true;
}

int BenchValidate(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "dgnn_inspect: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  auto parsed = ParseJson(content);
  if (!parsed.ok()) {
    std::fprintf(stderr, "dgnn_inspect: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  const JsonValue root = std::move(parsed).value();
  if (!root.is_object()) return BenchFail(path, "root is not an object"), 2;
  // v1 = seed schema; v2 adds snapshot_bytes / recall_at_k to open-loop
  // points. Both remain valid so committed v1 trajectory files keep
  // validating.
  const int schema_version =
      static_cast<int>(root.NumberOr("schema_version", 0));
  if (schema_version != 1 && schema_version != 2) {
    return BenchFail(path, "schema_version must be 1 or 2"), 2;
  }
  // "bench_serve_load" = single-process engine bench; "dgnn_router" =
  // the sharded router replaying the same trace format through a fleet
  // (bench/trajectory/BENCH_serve_shard.json). Identical point schema.
  const std::string bench = root.StringOr("bench", "");
  if (bench != "bench_serve_load" && bench != "dgnn_router") {
    return BenchFail(
               path,
               "\"bench\" must be \"bench_serve_load\" or \"dgnn_router\""),
           2;
  }
  const std::string mode = root.StringOr("mode", "");
  if (mode != "open" && mode != "closed") {
    return BenchFail(path, "\"mode\" must be \"open\" or \"closed\""), 2;
  }
  if (mode == "open") {
    const JsonValue* arrival = root.Find("arrival");
    if (arrival == nullptr || !arrival->is_string() ||
        (arrival->string_value != "poisson" &&
         arrival->string_value != "burst" &&
         arrival->string_value != "diurnal")) {
      return BenchFail(path, "open mode requires a valid \"arrival\""), 2;
    }
  }
  const JsonValue* points = root.Find("points");
  if (points == nullptr || !points->is_array() || points->array.empty()) {
    return BenchFail(path, "\"points\" must be a non-empty array"), 2;
  }
  for (const JsonValue& point : points->array) {
    if (!ValidateBenchPoint(path, point, mode, schema_version)) return 2;
  }
  std::printf("%s: valid %s-loop bench result (%zu point(s), preset %s)\n",
              path.c_str(), mode.c_str(), points->array.size(),
              root.StringOr("preset", "?").c_str());
  return 0;
}

// `dgnn_inspect stats FILE [--prom]`: validate every line of a
// dgnn_serve --stats-out JSONL file (each line must be a full stats
// snapshot — corruption anywhere is exit 2, the crash-valid-prefix
// contract only tolerates a missing tail, not a mangled one) and render
// the newest snapshot, as a human summary or (--prom) as Prometheus
// text exposition — byte-identical to what the live server's
// {"op":"stats","format":"prom"} returns for the same snapshot.

void PrintStatsWindow(const char* name, const JsonValue& w) {
  std::printf(
      "  %-4s qps=%-9.1f p50=%-8.3fms p95=%-8.3fms p99=%-8.3fms "
      "avail=%-7.4f cache=%-6.3f queue=%lld viol(p99=%lld avail=%lld)\n",
      name, w.NumberOr("qps", 0), w.NumberOr("p50_ms", 0),
      w.NumberOr("p95_ms", 0), w.NumberOr("p99_ms", 0),
      w.NumberOr("availability", 0), w.NumberOr("cache_hit_rate", 0),
      (long long)w.NumberOr("queue_depth", 0),
      (long long)w.NumberOr("p99_violations", 0),
      (long long)w.NumberOr("availability_violations", 0));
}

int StatsRender(const std::string& path, bool prom) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "dgnn_inspect: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string line, last;
  int64_t line_no = 0, lines = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    dgnn::util::Status valid =
        dgnn::serve::observe::ValidateStatsJson(line);
    if (!valid.ok()) {
      std::fprintf(stderr, "dgnn_inspect: %s:%lld: %s\n", path.c_str(),
                   (long long)line_no, valid.ToString().c_str());
      return 2;
    }
    last = line;
    ++lines;
  }
  if (last.empty()) {
    std::fprintf(stderr, "dgnn_inspect: %s: no stats snapshots\n",
                 path.c_str());
    return 2;
  }
  if (prom) {
    auto text = dgnn::serve::observe::PromTextFromStatsJson(last);
    if (!text.ok()) {
      std::fprintf(stderr, "dgnn_inspect: %s: %s\n", path.c_str(),
                   text.status().ToString().c_str());
      return 2;
    }
    std::fputs(text.value().c_str(), stdout);
    return 0;
  }
  auto parsed = ParseJson(last);  // validated above; cannot fail
  const JsonValue& v = parsed.value();
  std::printf("%s: %lld snapshot(s); newest:\n", path.c_str(),
              (long long)lines);
  std::printf(
      "  totals: requests=%lld batches=%lld shed=%lld expired=%lld "
      "failed=%lld degraded=%lld swaps=%lld cache(hit=%lld miss=%lld)\n",
      (long long)v.NumberOr("requests", 0),
      (long long)v.NumberOr("batches", 0),
      (long long)v.NumberOr("shed_requests", 0),
      (long long)v.NumberOr("expired_requests", 0),
      (long long)v.NumberOr("failed_requests", 0),
      (long long)v.NumberOr("degraded_requests", 0),
      (long long)v.NumberOr("snapshot_swaps", 0),
      (long long)v.NumberOr("cache_hits", 0),
      (long long)v.NumberOr("cache_misses", 0));
  const JsonValue* windows = v.Find("windows");
  for (const char* name : {"1s", "10s", "60s"}) {
    const JsonValue* w = windows->Find(name);
    if (w != nullptr) PrintStatsWindow(name, *w);
  }
  const JsonValue* slo = v.Find("slo");
  if (slo != nullptr) {
    std::printf(
        "  slo: p99<%gms avail>%g — ticks=%lld p99_viol=%lld "
        "avail_viol=%lld\n",
        slo->NumberOr("p99_ms", 0), slo->NumberOr("availability", 0),
        (long long)slo->NumberOr("ticks", 0),
        (long long)slo->NumberOr("p99_violation_ticks", 0),
        (long long)slo->NumberOr("availability_violation_ticks", 0));
  }
  return 0;
}

// `dgnn_inspect watch FILE [--max-seconds=S]`: tail a --stats-out JSONL
// file, rendering one line per snapshot as it lands. S <= 0 (default)
// renders what is there and exits; S > 0 keeps polling for growth that
// long — the CI-friendly substitute for an interactive `watch`.
int WatchStats(const std::string& path, double max_seconds) {
  using Clock = std::chrono::steady_clock;
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "dgnn_inspect: cannot open %s\n", path.c_str());
    return 2;
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             max_seconds > 0 ? max_seconds : 0));
  std::string line;
  int64_t line_no = 0, shown = 0;
  for (;;) {
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      dgnn::util::Status valid =
          dgnn::serve::observe::ValidateStatsJson(line);
      if (!valid.ok()) {
        std::fprintf(stderr, "dgnn_inspect: %s:%lld: %s\n", path.c_str(),
                     (long long)line_no, valid.ToString().c_str());
        return 2;
      }
      auto parsed = ParseJson(line);
      const JsonValue& v = parsed.value();
      const JsonValue* windows = v.Find("windows");
      const JsonValue* w1 = windows->Find("1s");
      const JsonValue* w10 = windows->Find("10s");
      std::printf(
          "ts=%-12lld req=%-8lld 1s[qps=%-8.1f p99=%-8.3fms] "
          "10s[qps=%-8.1f p99=%-8.3fms avail=%-7.4f] shed=%lld "
          "swaps=%lld\n",
          (long long)v.NumberOr("ts_us", 0),
          (long long)v.NumberOr("requests", 0), w1->NumberOr("qps", 0),
          w1->NumberOr("p99_ms", 0), w10->NumberOr("qps", 0),
          w10->NumberOr("p99_ms", 0), w10->NumberOr("availability", 0),
          (long long)v.NumberOr("shed_requests", 0),
          (long long)v.NumberOr("snapshot_swaps", 0));
      std::fflush(stdout);
      ++shown;
    }
    // getline hit EOF; clear the state so appended lines are seen on the
    // next pass.
    in.clear();
    if (max_seconds <= 0 || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::fprintf(stderr, "dgnn_inspect: watched %lld snapshot(s)\n",
               (long long)shown);
  return 0;
}

// `dgnn_inspect snapshot FILE`: dump the snapshot's section table
// (ids, names, payload sizes, per-section shape/codec/index metadata)
// and verify the trailing checksum. Exit codes: 0 = checksum OK,
// 1 = checksum mismatch (the section table still prints — it shows
// WHICH section looks damaged), 2 = not a snapshot at all (unreadable,
// too small, bad magic). ci/check_index.sh gates corrupt-snapshot
// must-fail on the nonzero exits.
int SnapshotReport(const std::string& path) {
  auto inspected = dgnn::serve::InspectSnapshotFile(path);
  if (!inspected.ok()) {
    std::fprintf(stderr, "dgnn_inspect: %s\n",
                 inspected.status().ToString().c_str());
    return 2;
  }
  const dgnn::serve::SnapshotFileInfo& info = inspected.value();
  std::printf("file: %s (%llu bytes)\n", path.c_str(),
              (unsigned long long)info.file_bytes);
  std::printf("checksum: stored=%016llx computed=%016llx %s\n",
              (unsigned long long)info.stored_checksum,
              (unsigned long long)info.computed_checksum,
              info.checksum_ok ? "OK" : "MISMATCH");
  std::printf("sections: %zu\n", info.sections.size());
  for (const dgnn::serve::SnapshotSectionInfo& sec : info.sections) {
    std::printf("  [%u] %-12s %14llu bytes%s%s\n", sec.id,
                sec.name.c_str(), (unsigned long long)sec.bytes,
                sec.detail.empty() ? "" : "  ", sec.detail.c_str());
  }
  if (!info.meta_json.empty()) {
    std::printf("meta: %s\n", info.meta_json.c_str());
  }
  return info.checksum_ok ? 0 : 1;
}

// `dgnn_inspect kernels`: one "key: value" line per fact so shell gates
// can grep without a JSON parser.
int KernelsReport() {
  std::printf("active: %s\n",
              dgnn::kernels::IsaName(dgnn::kernels::ActiveIsa()));
  std::printf("mode-default: %s\n",
              dgnn::kernels::Deterministic() ? "deterministic" : "fast");
  std::string available;
  for (dgnn::kernels::Isa isa : dgnn::kernels::AvailableIsas()) {
    if (!available.empty()) available += ' ';
    available += dgnn::kernels::IsaName(isa);
  }
  std::printf("available: %s\n", available.c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dgnn_inspect summarize LOG [LOG...]\n"
      "  dgnn_inspect diff BASELINE CANDIDATE [--hr-tol=X] [--ndcg-tol=X]"
      " [--loss-tol=X]\n"
      "  dgnn_inspect bench BENCH_serve.json\n"
      "  dgnn_inspect snapshot SNAPSHOT\n"
      "  dgnn_inspect stats STATS.jsonl [--prom]\n"
      "  dgnn_inspect watch STATS.jsonl [--max-seconds=S]\n"
      "  dgnn_inspect kernels\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Hand-rolled argv handling: this tool takes positional paths, which
  // util::Flags rejects by design.
  std::vector<std::string> positional;
  DiffTolerances tol;
  bool prom = false;
  double max_seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--hr-tol=", 0) == 0) {
      tol.hr = std::atof(arg.c_str() + 9);
    } else if (arg.rfind("--ndcg-tol=", 0) == 0) {
      tol.ndcg = std::atof(arg.c_str() + 11);
    } else if (arg.rfind("--loss-tol=", 0) == 0) {
      tol.loss = std::atof(arg.c_str() + 11);
    } else if (arg == "--prom") {
      prom = true;
    } else if (arg.rfind("--max-seconds=", 0) == 0) {
      max_seconds = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dgnn_inspect: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() >= 2 && positional[0] == "summarize") {
    return Summarize(std::vector<std::string>(positional.begin() + 1,
                                              positional.end()));
  }
  if (positional.size() == 3 && positional[0] == "diff") {
    return Diff(positional[1], positional[2], tol);
  }
  if (positional.size() == 2 && positional[0] == "bench") {
    return BenchValidate(positional[1]);
  }
  if (positional.size() == 2 && positional[0] == "snapshot") {
    return SnapshotReport(positional[1]);
  }
  if (positional.size() == 2 && positional[0] == "stats") {
    return StatsRender(positional[1], prom);
  }
  if (positional.size() == 2 && positional[0] == "watch") {
    return WatchStats(positional[1], max_seconds);
  }
  if (positional.size() == 1 && positional[0] == "kernels") {
    return KernelsReport();
  }
  return Usage();
}
