// Bringing your own data: writes a dataset to the library's TSV layout,
// loads it back through the Status-based I/O API, validates it, and trains
// a model — the full path a downstream user follows to run DGNN on their
// own interaction logs.
//
// TSV layout (one directory):
//   meta.tsv            name \t num_users \t num_items \t num_relations
//   train.tsv           user \t item \t time
//   test.tsv            user \t item \t time
//   social.tsv          u \t v              (undirected, u < v)
//   item_relations.tsv  item \t relation
//   eval_negatives.tsv  tab-separated negative item ids per test row
//
//   ./build/examples/custom_dataset [--dir=/tmp/dgnn_custom]

#include <cstdio>

#include "core/dgnn_model.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "train/trainer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dgnn;
  util::Flags flags(argc, argv);
  const std::string dir = flags.GetString("dir", "/tmp/dgnn_custom");

  // 1. Produce a dataset on disk. A real user would export their logs to
  //    the same TSV files instead.
  {
    auto ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
    util::Status saved = data::SaveDataset(ds, dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote dataset '%s' to %s\n", ds.name.c_str(), dir.c_str());
  }

  // 2. Load it back; errors come out as Status values, not exceptions.
  auto loaded = data::LoadDataset(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  data::Dataset dataset = std::move(loaded).value();
  dataset.Validate();  // CHECK-fails on malformed data
  auto stats = dataset.ComputeStats();
  std::printf("loaded: %lld users, %lld items, %lld interactions, "
              "%lld social ties\n",
              (long long)stats.num_users, (long long)stats.num_items,
              (long long)stats.num_interactions,
              (long long)stats.num_social_ties);

  // 3. Train DGNN on the loaded data.
  graph::HeteroGraph graph(dataset);
  core::DgnnConfig config;
  config.embedding_dim = 16;
  core::DgnnModel model(graph, config);
  train::TrainConfig tc;
  tc.epochs = static_cast<int>(flags.GetInt("epochs", 15));
  tc.weight_decay = 0.01f;
  tc.eval_cutoffs = {5, 10};
  train::Trainer trainer(&model, dataset, tc);
  auto result = trainer.Fit();
  std::printf("trained %s: %s\n", model.name().c_str(),
              result.final_metrics.ToString().c_str());
  return 0;
}
