// dgnn_cli — end-to-end command-line tool over the library: generate or
// load data, train any model from the zoo, persist parameters, evaluate
// (accuracy + beyond-accuracy), and serve top-K recommendations.
//
// Modes:
//   --mode=generate  --data_dir=D [--preset=ciao] [--stream=0|1]
//     (the *-large presets default to --stream=1: interactions are
//     written straight to disk with O(users) peak memory)
//       Write a synthetic dataset to D in the TSV layout.
//   --mode=train     --data_dir=D [--model=DGNN] [--epochs=25]
//                    [--params=P] [--pretrain]
//                    [--checkpoint=C --checkpoint-every=K] [--resume=C]
//       Train on the dataset in D; save parameters to P when given.
//       With --checkpoint + --checkpoint-every=K an atomic training
//       checkpoint (parameters, Adam moments, sampler state, cursor) is
//       written every K batches; SIGTERM/SIGINT checkpoint and exit
//       cleanly. --resume=C continues a killed run from its checkpoint
//       with bit-identical final parameters (same flags required).
//   --mode=evaluate  --data_dir=D [--model=DGNN] --params=P [--topk=10]
//       Load parameters and report HR/NDCG plus coverage/novelty/Gini.
//   --mode=recommend --data_dir=D [--model=DGNN] --params=P --user=U
//                    [--topk=10]
//       Print the top-K items (and most similar users) for one user.
//   --mode=export    --data_dir=D [--model=DGNN] --params=P --snapshot=S
//                    [--tag=T] [--quant=none|int8|fp16]
//                    [--index[=1] [--clusters=N]]
//                    [--shards=N [--shard-seed=S]]
//       Export a serving snapshot (final embeddings, seen lists, social
//       adjacency, popularity counts) for dgnn_serve. --quant stores the
//       embeddings as int8 (per-row scales) or fp16 instead of fp32;
//       --index attaches an IVF retrieval index over the items
//       (--clusters lists, default sqrt(num_items)) for sublinear top-K
//       in dgnn_serve. See README "Quantization & retrieval index".
//       --shards=N also writes N shard slices "<S>.shard<i>of<N>"
//       (consistent-hash user ownership, contiguous item ranges) for
//       the dgnn_router fleet; incompatible with --quant/--index. See
//       README "Sharded serving".
//
// All modes accept --threads=N to size the worker pool (default: the
// DGNN_NUM_THREADS environment variable, else hardware concurrency).
// Outputs are bit-identical for every thread count.
//
// Observability (see README "Run logs & inspection"):
//   --run-log=F           write a structured JSONL run log (run_start /
//                         epoch / eval / grad_stats / checkpoint /
//                         run_end events); inspect with dgnn_inspect.
//   --grad-stats-every=K  sample per-parameter gradient diagnostics
//                         every K training batches (train mode).
//   --check-numerics      fail fast on the first non-finite value or
//                         gradient, naming the producing tape op.
//
// Examples:
//   dgnn_cli --mode=generate --data_dir=/tmp/d
//   dgnn_cli --mode=train --data_dir=/tmp/d --params=/tmp/d/dgnn.bin
//   dgnn_cli --mode=recommend --data_dir=/tmp/d --params=/tmp/d/dgnn.bin
//            --user=3

#include <csignal>
#include <cstdio>

#include "ag/diagnostics.h"
#include "ag/serialize.h"
#include "core/dgnn_model.h"
#include "core/model_zoo.h"
#include "core/pretrain.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "kernels/kernels.h"
#include "serve/snapshot.h"
#include "shard/partition.h"
#include "train/beyond_accuracy.h"
#include "train/recommender.h"
#include "train/trainer.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/run_log.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace {

using namespace dgnn;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// SIGTERM/SIGINT during training request a cooperative interrupt: the
// trainer finishes the in-flight batch, writes a final checkpoint (when
// configured), emits run_end status=interrupted, and exits 0. The store
// inside RequestInterrupt is a lock-free atomic — async-signal-safe.
extern "C" void OnTrainSignal(int) { train::RequestInterrupt(); }

int Generate(const util::Flags& flags, const std::string& data_dir) {
  auto config = data::SyntheticConfig::Preset(
      flags.GetString("preset", "ciao"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", config.seed));
  // The million-user presets (and --stream=1 on any preset) go through
  // the streaming generator: interactions go straight to disk, peak
  // memory stays O(users + items + social ties).
  const bool large_preset = config.num_users >= 100000;
  if (flags.GetInt("stream", large_preset ? 1 : 0) != 0) {
    auto stats = data::GenerateSyntheticStream(config, data_dir);
    if (!stats.ok()) return Fail(stats.status());
    const auto& s = stats.value();
    std::printf(
        "streamed '%s' to %s: %d users, %d items, %lld train, %lld "
        "test, %lld social ties, %lld item links\n"
        "  %.1f MB on disk, %.1f MB peak resident, %.2f s\n",
        config.name.c_str(), data_dir.c_str(), config.num_users,
        config.num_items, (long long)s.num_train, (long long)s.num_test,
        (long long)s.num_social, (long long)s.num_item_relations,
        s.bytes_on_disk / 1e6, s.resident_bytes / 1e6, s.seconds);
    return 0;
  }
  data::Dataset ds = data::GenerateSynthetic(config);
  util::Status saved = data::SaveDataset(ds, data_dir);
  if (!saved.ok()) return Fail(saved);
  auto stats = ds.ComputeStats();
  std::printf("wrote '%s' to %s: %lld users, %lld items, %lld "
              "interactions, %lld social ties\n",
              ds.name.c_str(), data_dir.c_str(),
              (long long)stats.num_users, (long long)stats.num_items,
              (long long)stats.num_interactions,
              (long long)stats.num_social_ties);
  return 0;
}

struct Loaded {
  data::Dataset dataset;
  std::unique_ptr<graph::HeteroGraph> graph;
  std::unique_ptr<models::RecModel> model;
};

util::StatusOr<Loaded> LoadModel(const util::Flags& flags,
                                 const std::string& data_dir,
                                 bool load_params) {
  auto dataset = data::LoadDataset(data_dir);
  if (!dataset.ok()) return dataset.status();
  Loaded out{std::move(dataset).value(), nullptr, nullptr};
  out.dataset.Validate();
  out.graph = std::make_unique<graph::HeteroGraph>(out.dataset);
  core::ZooConfig zoo;
  zoo.embedding_dim = flags.GetInt("dim", 16);
  zoo.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  out.model = core::CreateModelByName(flags.GetString("model", "DGNN"),
                                      out.dataset, *out.graph, zoo);
  if (load_params) {
    const std::string params = flags.GetString("params", "");
    if (params.empty()) {
      return util::Status::InvalidArgument(
          "--params is required for this mode");
    }
    util::Status loaded = ag::LoadParameters(out.model->params(), params);
    if (!loaded.ok()) return loaded;
  }
  return out;
}

int Train(const util::Flags& flags, const std::string& data_dir) {
  auto loaded = LoadModel(flags, data_dir, /*load_params=*/false);
  if (!loaded.ok()) return Fail(loaded.status());
  Loaded l = std::move(loaded).value();

  if (flags.GetBool("pretrain", false)) {
    auto* dgnn = dynamic_cast<core::DgnnModel*>(l.model.get());
    if (dgnn == nullptr) {
      std::fprintf(stderr, "--pretrain currently supports --model=DGNN\n");
      return 1;
    }
    core::PretrainConfig pc;
    auto pre = core::PretrainEmbeddings(
        dgnn->params(), dgnn->user_embedding(), dgnn->item_embedding(),
        dgnn->relation_embedding(), *l.graph, pc);
    std::printf("pretrain: loss %.4f -> %.4f\n", pre.first_epoch_loss,
                pre.last_epoch_loss);
  }

  train::TrainConfig tc;
  tc.epochs = static_cast<int>(flags.GetInt("epochs", 25));
  tc.batch_size = static_cast<int>(flags.GetInt("batch", 1024));
  tc.weight_decay = static_cast<float>(flags.GetDouble("wd", 0.01));
  tc.eval_every = static_cast<int>(flags.GetInt("eval_every", 0));
  tc.eval_cutoffs = {5, 10, 20};
  tc.verbose = true;
  tc.grad_stats_every =
      static_cast<int>(flags.GetInt("grad-stats-every", 0));
  tc.check_numerics = flags.GetBool("check-numerics", false);
  tc.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  tc.checkpoint_path = flags.GetString("checkpoint", "");
  tc.checkpoint_every = flags.GetInt("checkpoint-every", 0);
  tc.max_batches = flags.GetInt("max-batches", 0);
  const std::string resume_from = flags.GetString("resume", "");
  if (!resume_from.empty() && tc.checkpoint_path.empty()) {
    // A resumed run keeps checkpointing to the file it came from unless
    // told otherwise, so a second crash is also recoverable.
    tc.checkpoint_path = resume_from;
  }
  train::Trainer trainer(l.model.get(), l.dataset, tc);
  if (!resume_from.empty()) {
    util::Status resumed = trainer.Resume(resume_from);
    if (!resumed.ok()) return Fail(resumed);
    std::printf("resumed from %s\n", resume_from.c_str());
  }
  train::ClearInterrupt();
  std::signal(SIGTERM, OnTrainSignal);
  std::signal(SIGINT, OnTrainSignal);
  auto result = trainer.Fit();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  if (result.interrupted) {
    std::printf("interrupted after %zu epoch(s)%s; resume with "
                "--resume=%s\n",
                result.epochs.size(),
                tc.checkpoint_path.empty() ? " (no checkpoint configured)"
                                           : "",
                tc.checkpoint_path.empty() ? "<checkpoint>"
                                           : tc.checkpoint_path.c_str());
  } else {
    std::printf("final: %s (%.2fs train%s)\n",
                result.final_metrics.ToString().c_str(),
                result.total_train_seconds,
                result.stopped_early ? ", stopped early" : "");
  }

  // Save whatever was trained even on an interrupted run: a --max-batches
  // cap or a cooperative SIGTERM still leaves the parameters in a
  // consistent post-batch state, and losing them forces a full redo when
  // no checkpoint was configured.
  const std::string params = flags.GetString("params", "");
  if (!params.empty()) {
    util::Status saved = ag::SaveParameters(l.model->params(), params);
    if (!saved.ok()) return Fail(saved);
    std::printf("parameters saved to %s\n", params.c_str());
  }
  return 0;
}

int Evaluate(const util::Flags& flags, const std::string& data_dir) {
  auto loaded = LoadModel(flags, data_dir, /*load_params=*/true);
  if (!loaded.ok()) return Fail(loaded.status());
  Loaded l = std::move(loaded).value();
  const int k = static_cast<int>(flags.GetInt("topk", 10));

  train::Evaluator evaluator(l.dataset);
  auto metrics = evaluator.EvaluateModel(*l.model, {5, 10, 20});
  std::printf("accuracy:  %s\n", metrics.ToString().c_str());

  train::Recommender recommender(*l.model, l.dataset);
  auto beyond = train::ComputeBeyondAccuracy(recommender, l.dataset, k);
  std::printf("beyond@%d: catalog coverage %.3f, mean popularity "
              "percentile %.3f, exposure gini %.3f\n",
              beyond.top_k, beyond.catalog_coverage,
              beyond.mean_popularity_percentile, beyond.exposure_gini);
  return 0;
}

int Recommend(const util::Flags& flags, const std::string& data_dir) {
  auto loaded = LoadModel(flags, data_dir, /*load_params=*/true);
  if (!loaded.ok()) return Fail(loaded.status());
  Loaded l = std::move(loaded).value();
  const int32_t user = static_cast<int32_t>(flags.GetInt("user", 0));
  const int k = static_cast<int>(flags.GetInt("topk", 10));
  if (user < 0 || user >= l.dataset.num_users) {
    std::fprintf(stderr, "--user out of range [0, %d)\n",
                 l.dataset.num_users);
    return 1;
  }
  train::Recommender recommender(*l.model, l.dataset);
  std::printf("top-%d items for user %d:\n", k, user);
  for (const auto& s : recommender.TopK(user, k)) {
    std::printf("  item %-6d score %.4f\n", s.item, s.score);
  }
  std::printf("most similar users:\n");
  for (const auto& s : recommender.SimilarUsers(user, 5)) {
    std::printf("  user %-6d cosine %.4f\n", s.item, s.score);
  }
  return 0;
}

int Export(const util::Flags& flags, const std::string& data_dir) {
  auto loaded = LoadModel(flags, data_dir, /*load_params=*/true);
  if (!loaded.ok()) return Fail(loaded.status());
  Loaded l = std::move(loaded).value();
  const std::string snapshot_path = flags.GetString("snapshot", "");
  if (snapshot_path.empty()) {
    std::fprintf(stderr, "--snapshot is required for --mode=export\n");
    return 2;
  }
  train::Recommender recommender(*l.model, l.dataset);
  serve::Snapshot snapshot = serve::BuildSnapshot(
      recommender, l.dataset, flags.GetString("model", "DGNN"),
      flags.GetString("tag", ""));
  // --index builds the IVF retrieval index over the fp32 items BEFORE any
  // quantization (k-means needs full precision); --clusters overrides the
  // sqrt(num_items) default list count.
  std::string extras;
  if (flags.GetBool("index", false)) {
    index::IvfConfig ivf;
    ivf.nlist = static_cast<int32_t>(flags.GetInt("clusters", 0));
    ivf.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    util::Status built = serve::BuildSnapshotIndex(&snapshot, ivf);
    if (!built.ok()) return Fail(built);
    extras += ", ivf nlist=" + std::to_string(snapshot.ivf.nlist);
  }
  // --quant=int8|fp16 replaces the fp32 embedding sections with quantized
  // ones (int8: per-row scales; fp16: RNE-converted halves). "none"
  // (default) keeps the seed-era byte-identical fp32 snapshot.
  const std::string quant = flags.GetString("quant", "none");
  if (quant != "none") {
    auto codec = quant::ParseCodec(quant);
    if (!codec.ok()) return Fail(codec.status());
    util::Status quantized =
        serve::QuantizeSnapshot(&snapshot, codec.value());
    if (!quantized.ok()) return Fail(quantized);
    extras += ", quant=" + quant;
  }
  // --shards=N additionally writes N shard slices
  // ("<snapshot>.shard<i>of<N>", shard manifest section 10) next to the
  // full snapshot for the dgnn_serve/dgnn_router fleet. Sharding is
  // fp32-dense only — the bit-identical scatter/gather merge depends on
  // exact full scans, so it refuses quantized/indexed exports.
  const int num_shards = static_cast<int>(flags.GetInt("shards", 0));
  util::Status written = serve::WriteSnapshot(snapshot, snapshot_path);
  if (!written.ok()) return Fail(written);
  if (num_shards > 0) {
    if (flags.GetBool("index", false) || quant != "none") {
      std::fprintf(stderr,
                   "--shards cannot combine with --quant/--index "
                   "(shard before quantizing)\n");
      return 2;
    }
    const uint64_t seed =
        static_cast<uint64_t>(flags.GetInt("shard-seed", 42));
    util::Status sharded = shard::WriteShardSnapshots(
        snapshot, snapshot_path, num_shards, seed);
    if (!sharded.ok()) return Fail(sharded);
    extras += ", " + std::to_string(num_shards) + " shard slices";
  }
  std::printf("snapshot written to %s (%lld users x %lld items, dim "
              "%lld%s)\n",
              snapshot_path.c_str(), (long long)snapshot.meta.num_users,
              (long long)snapshot.meta.num_items,
              (long long)snapshot.meta.embedding_dim, extras.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  // Worker-pool width for every mode; results are bit-identical across
  // settings (see README "Threads & determinism"). Falls back to
  // DGNN_NUM_THREADS, then hardware concurrency.
  if (flags.Has("threads")) {
    const int threads = static_cast<int>(flags.GetInt("threads", 0));
    if (threads < 1) {
      std::fprintf(stderr, "--threads must be >= 1\n");
      return 2;
    }
    util::SetNumThreads(threads);
  }
  // Kernel numeric mode: --deterministic=1 (default) keeps bit-identical
  // serial accumulation on every ISA; --deterministic=0 lets the SIMD
  // kernels relax accumulation order (FMA, cache-blocked GEMM) for
  // throughput. SIMD level itself comes from runtime CPU detection
  // (override: DGNN_SIMD env; see README "Kernels & CPU dispatch").
  kernels::SetDeterministic(flags.GetBool("deterministic", true));
  // --metrics-out=F / --trace-out=F turn telemetry on for the run and
  // write the JSON snapshots (metrics registry / chrome://tracing trace)
  // on exit. See README "Telemetry" for the schemas.
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  if (!metrics_out.empty() || !trace_out.empty()) {
    telemetry::SetEnabled(true);
  }
  // --run-log=F opens the structured JSONL run log for the whole process;
  // trainer / evaluator / checkpoint code emit into it. --check-numerics
  // applies to every mode (evaluate-only runs fail fast too).
  const std::string run_log = flags.GetString("run-log", "");
  if (!run_log.empty()) {
    util::Status s = runlog::Open(run_log);
    if (!s.ok()) return Fail(s);
  }
  if (flags.GetBool("check-numerics", false)) {
    ag::SetCheckNumerics(true);
  }
  // The run seed also seeds deterministic 1in<n> failpoints, so injected
  // failure schedules reproduce run-to-run (see util/failpoint.h).
  failpoint::SetSeed(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  const std::string mode = flags.GetString("mode", "");
  const std::string data_dir = flags.GetString("data_dir", "");
  if (data_dir.empty()) {
    std::fprintf(stderr,
                 "usage: dgnn_cli "
                 "--mode=generate|train|evaluate|recommend|export "
                 "--data_dir=DIR [--threads=N] [--metrics-out=F] "
                 "[--trace-out=F] [--run-log=F] [--grad-stats-every=K] "
                 "[--check-numerics] [options]\n");
    return 2;
  }
  int code;
  if (mode == "generate") {
    code = Generate(flags, data_dir);
  } else if (mode == "train") {
    code = Train(flags, data_dir);
  } else if (mode == "evaluate") {
    code = Evaluate(flags, data_dir);
  } else if (mode == "recommend") {
    code = Recommend(flags, data_dir);
  } else if (mode == "export") {
    code = Export(flags, data_dir);
  } else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 2;
  }
  if (!metrics_out.empty()) {
    util::Status s = telemetry::WriteMetricsJson(metrics_out);
    if (!s.ok()) return Fail(s);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    util::Status s = telemetry::WriteTraceJson(trace_out);
    if (!s.ok()) return Fail(s);
    std::printf("trace written to %s (%lld spans; open in "
                "chrome://tracing)\n",
                trace_out.c_str(), (long long)telemetry::NumTraceEvents());
  }
  if (!run_log.empty()) {
    std::printf("run log written to %s (%lld events)\n", run_log.c_str(),
                (long long)runlog::NumEvents());
    runlog::Close();
  }
  return code;
}
