// Tests for util/json (escape, builder, parser) and util/run_log (the
// structured JSONL event writer), including thread-safety of Emit and
// the end-to-end trainer/checkpoint integration: a real Fit must produce
// a parseable event stream with the documented vocabulary and ordering.

#include "util/run_log.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ag/serialize.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "train/trainer.h"
#include "util/json.h"

namespace dgnn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<util::JsonValue> ReadEvents(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<util::JsonValue> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = util::ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
    if (parsed.ok()) out.push_back(std::move(parsed).value());
  }
  return out;
}

// ----- JSON -----------------------------------------------------------------

TEST(JsonTest, EscapeAndBuilderRoundTrip) {
  util::JsonObject o;
  o.Set("s", "a\"b\\c\n\t")
      .Set("i", int64_t{-7})
      .Set("d", 0.25)
      .Set("b", true)
      .SetRaw("nested", "{\"x\":[1,2]}");
  auto parsed = util::ParseJson(o.Build());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue& v = parsed.value();
  EXPECT_EQ(v.StringOr("s", ""), "a\"b\\c\n\t");
  EXPECT_EQ(v.NumberOr("i", 0), -7);
  EXPECT_EQ(v.NumberOr("d", 0), 0.25);
  EXPECT_TRUE(v.BoolOr("b", false));
  const util::JsonValue* nested = v.Find("nested");
  ASSERT_NE(nested, nullptr);
  const util::JsonValue* x = nested->Find("x");
  ASSERT_NE(x, nullptr);
  ASSERT_TRUE(x->is_array());
  ASSERT_EQ(x->array.size(), 2u);
  EXPECT_EQ(x->array[1].number, 2);
}

TEST(JsonTest, DoubleRoundTripsAndNonFiniteIsZero) {
  EXPECT_EQ(util::JsonDouble(0.1), "0.10000000000000001");
  EXPECT_EQ(util::JsonDouble(std::nan("")), "0");
  EXPECT_EQ(util::JsonDouble(1.0 / 0.0), "0");
}

TEST(JsonTest, ParserHandlesEscapesNullsAndNesting) {
  auto v = util::ParseJson(
      "  {\"a\": [1, -2.5e2, \"\\u0041\\n\", null, {\"b\": false}]}  ");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const util::JsonValue* a = v.value().Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 5u);
  EXPECT_EQ(a->array[0].number, 1);
  EXPECT_EQ(a->array[1].number, -250);
  EXPECT_EQ(a->array[2].string_value, "A\n");
  EXPECT_EQ(a->array[3].kind, util::JsonValue::Kind::kNull);
  EXPECT_FALSE(a->array[4].BoolOr("b", true));
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(util::ParseJson("").ok());
  EXPECT_FALSE(util::ParseJson("{").ok());
  EXPECT_FALSE(util::ParseJson("{}extra").ok());
  EXPECT_FALSE(util::ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(util::ParseJson("\"unterminated").ok());
  EXPECT_FALSE(util::ParseJson("[1,]").ok());
  EXPECT_FALSE(util::ParseJson("nul").ok());
  // Nesting beyond the depth limit is rejected, not stack-overflowed.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(util::ParseJson(deep).ok());
}

// ----- Run log --------------------------------------------------------------

TEST(RunLogTest, InactiveByDefaultAndEmitIsNoOp) {
  runlog::Close();
  EXPECT_FALSE(runlog::Active());
  EXPECT_EQ(runlog::CurrentPath(), "");
  util::JsonObject o;
  o.Set("x", 1);
  runlog::Emit("epoch", o);  // must not crash
  EXPECT_EQ(runlog::NumEvents(), 0);
}

TEST(RunLogTest, EmitWritesEnvelopeAndFields) {
  const std::string path = TempPath("runlog_basic.jsonl");
  ASSERT_TRUE(runlog::Open(path).ok());
  EXPECT_TRUE(runlog::Active());
  EXPECT_EQ(runlog::CurrentPath(), path);
  util::JsonObject o;
  o.Set("epoch", 3).Set("loss", 0.5);
  runlog::Emit("epoch", o);
  runlog::Emit("run_end", util::JsonObject());  // empty payload is legal
  EXPECT_EQ(runlog::NumEvents(), 2);
  runlog::Close();
  EXPECT_FALSE(runlog::Active());

  auto events = ReadEvents(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].StringOr("event", ""), "epoch");
  EXPECT_EQ(events[0].NumberOr("v", 0), runlog::kSchemaVersion);
  EXPECT_GE(events[0].NumberOr("elapsed_s", -1.0), 0.0);
  EXPECT_EQ(events[0].NumberOr("epoch", 0), 3);
  EXPECT_EQ(events[0].NumberOr("loss", 0), 0.5);
  EXPECT_EQ(events[1].StringOr("event", ""), "run_end");
  std::remove(path.c_str());
}

TEST(RunLogTest, ReopenTruncatesAndReplaces) {
  const std::string path1 = TempPath("runlog_first.jsonl");
  const std::string path2 = TempPath("runlog_second.jsonl");
  ASSERT_TRUE(runlog::Open(path1).ok());
  runlog::Emit("eval", util::JsonObject());
  // Opening a second log closes the first and resets the counter.
  ASSERT_TRUE(runlog::Open(path2).ok());
  EXPECT_EQ(runlog::NumEvents(), 0);
  EXPECT_EQ(runlog::CurrentPath(), path2);
  runlog::Emit("eval", util::JsonObject());
  runlog::Close();
  EXPECT_EQ(ReadEvents(path1).size(), 1u);
  EXPECT_EQ(ReadEvents(path2).size(), 1u);
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(RunLogTest, ConcurrentEmitsProduceValidLines) {
  const std::string path = TempPath("runlog_concurrent.jsonl");
  ASSERT_TRUE(runlog::Open(path).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        util::JsonObject o;
        o.Set("thread", t).Set("i", i).Set("payload", "abc\"def\\ghi");
        runlog::Emit("eval", o);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(runlog::NumEvents(), kThreads * kPerThread);
  runlog::Close();
  // Every line must parse — torn/interleaved writes would corrupt JSON.
  auto events = ReadEvents(path);
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (const auto& e : events) {
    EXPECT_EQ(e.StringOr("event", ""), "eval");
    EXPECT_EQ(e.StringOr("payload", ""), "abc\"def\\ghi");
  }
  std::remove(path.c_str());
}

// ----- Trainer / checkpoint integration -------------------------------------

class RunLogIntegrationTest : public ::testing::Test {
 protected:
  RunLogIntegrationTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_) {}
  ~RunLogIntegrationTest() override { runlog::Close(); }
  data::Dataset dataset_;
  graph::HeteroGraph graph_;
};

TEST_F(RunLogIntegrationTest, FitEmitsDocumentedEventStream) {
  const std::string path = TempPath("runlog_fit.jsonl");
  ASSERT_TRUE(runlog::Open(path).ok());
  models::BprMf model(graph_, 8, 3);
  train::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 128;
  tc.eval_every = 2;
  tc.eval_cutoffs = {5, 10};
  tc.grad_stats_every = 3;
  train::Trainer trainer(&model, dataset_, tc);
  train::TrainResult result = trainer.Fit();
  runlog::Close();

  auto events = ReadEvents(path);
  ASSERT_GE(events.size(), 7u);
  EXPECT_EQ(events.front().StringOr("event", ""), "run_start");
  EXPECT_EQ(events.back().StringOr("event", ""), "run_end");

  const util::JsonValue& start = events.front();
  EXPECT_EQ(start.StringOr("model", ""), "BPR-MF");
  EXPECT_EQ(start.NumberOr("seed", 0), 42);
  const util::JsonValue* ds = start.Find("dataset_stats");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->NumberOr("num_users", 0), dataset_.num_users);
  const util::JsonValue* cfg = start.Find("config");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->NumberOr("epochs", 0), 4);
  EXPECT_EQ(cfg->NumberOr("grad_stats_every", 0), 3);

  int epochs = 0, evals = 0, grad_stats = 0;
  for (const auto& e : events) {
    const std::string kind = e.StringOr("event", "");
    EXPECT_EQ(e.NumberOr("v", 0), runlog::kSchemaVersion) << kind;
    if (kind == "epoch") {
      ++epochs;
      EXPECT_GT(e.NumberOr("epoch", 0), 0);
      EXPECT_GE(e.NumberOr("train_seconds", -1), 0.0);
      if (e.BoolOr("evaluated", false)) {
        const util::JsonValue* m = e.Find("metrics");
        ASSERT_NE(m, nullptr);
        const util::JsonValue* hr = m->Find("hr");
        ASSERT_NE(hr, nullptr);
        EXPECT_NE(hr->Find("10"), nullptr);
      }
    } else if (kind == "eval") {
      ++evals;
    } else if (kind == "grad_stats") {
      ++grad_stats;
      const util::JsonValue* params = e.Find("params");
      ASSERT_NE(params, nullptr);
      ASSERT_TRUE(params->is_array());
      EXPECT_FALSE(params->array.empty());
      for (const auto& p : params->array) {
        EXPECT_TRUE(p.BoolOr("finite", false))
            << p.StringOr("name", "?");
      }
    }
  }
  EXPECT_EQ(epochs, 4);
  // Two periodic evals (epochs 2 and 4) plus the final one.
  EXPECT_EQ(evals, 3);
  EXPECT_GT(grad_stats, 0);

  const util::JsonValue& end = events.back();
  EXPECT_EQ(end.NumberOr("epochs_run", 0), 4);
  EXPECT_EQ(end.NumberOr("best_epoch", 0), result.best_epoch);
  EXPECT_EQ(end.NumberOr("best_metric", -1), result.best_metric);
  EXPECT_NE(end.Find("final_metrics"), nullptr);
  std::remove(path.c_str());
}

TEST_F(RunLogIntegrationTest, CheckpointEventsRecordSaveAndFailedLoad) {
  const std::string path = TempPath("runlog_ckpt.jsonl");
  const std::string params = TempPath("runlog_ckpt_params.bin");
  ASSERT_TRUE(runlog::Open(path).ok());
  models::BprMf model(graph_, 8, 3);
  ASSERT_TRUE(ag::SaveParameters(model.params(), params).ok());
  ASSERT_TRUE(ag::LoadParameters(model.params(), params).ok());
  EXPECT_FALSE(
      ag::LoadParameters(model.params(), params + ".missing").ok());
  runlog::Close();

  auto events = ReadEvents(path);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].StringOr("event", ""), "checkpoint");
  EXPECT_EQ(events[0].StringOr("action", ""), "save");
  EXPECT_TRUE(events[0].BoolOr("ok", false));
  EXPECT_GT(events[0].NumberOr("num_params", 0), 0);
  EXPECT_EQ(events[1].StringOr("action", ""), "load");
  EXPECT_TRUE(events[1].BoolOr("ok", false));
  EXPECT_EQ(events[2].StringOr("action", ""), "load");
  EXPECT_FALSE(events[2].BoolOr("ok", true));
  EXPECT_NE(events[2].Find("error"), nullptr);
  std::remove(path.c_str());
  std::remove(params.c_str());
}

TEST_F(RunLogIntegrationTest, BestEpochTracksHighestEvaluatedHr) {
  // No run log needed: this is the early-stop bookkeeping fix. Fit must
  // record which evaluated epoch scored best, with the final evaluation
  // attributed to the last epoch.
  models::BprMf model(graph_, 8, 3);
  train::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 128;
  tc.eval_every = 2;
  tc.eval_cutoffs = {10};
  train::Trainer trainer(&model, dataset_, tc);
  train::TrainResult result = trainer.Fit();
  ASSERT_GT(result.best_epoch, 0);
  ASSERT_LE(result.best_epoch, 6);
  // best_metric is the max over every evaluation that happened,
  // including the final one.
  double max_seen = result.final_metrics.hr[10];
  for (const auto& e : result.epochs) {
    if (e.evaluated) {
      auto it = e.metrics.hr.find(10);
      ASSERT_NE(it, e.metrics.hr.end());
      if (it->second > max_seen) max_seen = it->second;
    }
  }
  EXPECT_EQ(result.best_metric, max_seen);
}

}  // namespace
}  // namespace dgnn
