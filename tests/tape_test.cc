// Forward-value correctness of the autograd ops (gradients are covered by
// grad_check_test.cc).

#include "ag/tape.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/coo.h"

namespace dgnn::ag {
namespace {

TEST(TapeTest, ConstantHoldsValue) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(1, 2, {1, 2}));
  EXPECT_FALSE(t.requires_grad(a));
  EXPECT_EQ(t.val(a).at(0, 1), 2.0f);
}

TEST(TapeTest, ParamCopiesValueAndRequiresGrad) {
  ParamStore store;
  Parameter* p = store.Create("p", Tensor::FromVector(1, 2, {3, 4}));
  Tape t;
  VarId a = t.Param(p);
  EXPECT_TRUE(t.requires_grad(a));
  EXPECT_EQ(t.val(a).at(0, 0), 3.0f);
}

TEST(TapeTest, MatMulPlain) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6}));
  VarId b = t.Constant(Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12}));
  VarId c = t.MatMul(a, b);
  EXPECT_EQ(t.val(c).rows(), 2);
  EXPECT_EQ(t.val(c).cols(), 2);
  EXPECT_FLOAT_EQ(t.val(c).at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(t.val(c).at(1, 1), 154.0f);
}

TEST(TapeTest, MatMulTransposeFlagsAgree) {
  Tape t;
  Tensor a = Tensor::FromVector(2, 3, {1, -2, 3, 0.5f, 5, -6});
  Tensor b = Tensor::FromVector(2, 3, {7, 8, -9, 1, -1, 2});
  // a @ b^T computed two ways: with the flag, and with manual transpose.
  VarId va = t.Constant(a);
  VarId vb = t.Constant(b);
  VarId c1 = t.MatMul(va, vb, false, true);
  Tensor bt(3, 2);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) bt.at(c, r) = b.at(r, c);
  }
  VarId c2 = t.MatMul(va, t.Constant(bt));
  EXPECT_LT(t.val(c1).MaxAbsDiff(t.val(c2)), 1e-6f);
  // a^T @ b likewise.
  VarId c3 = t.MatMul(va, vb, true, false);
  Tensor at(3, 2);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  VarId c4 = t.MatMul(t.Constant(at), vb);
  EXPECT_LT(t.val(c3).MaxAbsDiff(t.val(c4)), 1e-6f);
}

TEST(TapeTest, AddSubMul) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(1, 3, {1, 2, 3}));
  VarId b = t.Constant(Tensor::FromVector(1, 3, {4, 5, 6}));
  EXPECT_FLOAT_EQ(t.val(t.Add(a, b)).at(0, 2), 9.0f);
  EXPECT_FLOAT_EQ(t.val(t.Sub(a, b)).at(0, 0), -3.0f);
  EXPECT_FLOAT_EQ(t.val(t.Mul(a, b)).at(0, 1), 10.0f);
}

TEST(TapeTest, AddRowBroadcast) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  VarId b = t.Constant(Tensor::FromVector(1, 2, {10, 20}));
  const Tensor& out = t.val(t.AddRowBroadcast(a, b));
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 24.0f);
}

TEST(TapeTest, RowScale) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  VarId s = t.Constant(Tensor::FromVector(2, 1, {2, -1}));
  const Tensor& out = t.val(t.RowScale(a, s));
  EXPECT_FLOAT_EQ(out.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), -3.0f);
}

TEST(TapeTest, Activations) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(1, 2, {-1, 2}));
  EXPECT_FLOAT_EQ(t.val(t.LeakyRelu(a, 0.2f)).at(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(t.val(t.LeakyRelu(a, 0.2f)).at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(t.val(t.Relu(a)).at(0, 0), 0.0f);
  EXPECT_NEAR(t.val(t.Sigmoid(a)).at(0, 1), 1.0 / (1.0 + std::exp(-2.0)),
              1e-6);
  EXPECT_NEAR(t.val(t.Tanh(a)).at(0, 0), std::tanh(-1.0), 1e-6);
  EXPECT_NEAR(t.val(t.Exp(a)).at(0, 1), std::exp(2.0), 1e-4);
}

TEST(TapeTest, SpMMMatchesDense) {
  graph::CooMatrix coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.Add(0, 0, 1.0f);
  coo.Add(0, 2, 2.0f);
  coo.Add(1, 1, -1.0f);
  graph::CsrMatrix adj = graph::CsrMatrix::FromCoo(coo);
  Tape t;
  VarId b = t.Constant(Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}));
  const Tensor& out = t.val(t.SpMM(&adj, nullptr, b));
  // Row 0: 1*[1,2] + 2*[5,6] = [11,14]; row 1: -1*[3,4].
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 14.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), -3.0f);
}

TEST(TapeTest, GatherRows) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}));
  const Tensor& out = t.val(t.GatherRows(a, {2, 0, 2}));
  EXPECT_EQ(out.rows(), 3);
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);
}

TEST(TapeTest, SegmentSum) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}));
  const Tensor& out = t.val(t.SegmentSum(a, {1, 1, 0}, 2));
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 6.0f);
}

TEST(TapeTest, SegmentSoftmaxNormalizesWithinSegments) {
  Tape t;
  VarId s = t.Constant(Tensor::FromVector(4, 1, {1, 2, 3, 100}));
  const Tensor& out = t.val(t.SegmentSoftmax(s, {0, 0, 1, 1}, 2));
  EXPECT_NEAR(out.at(0, 0) + out.at(1, 0), 1.0, 1e-6);
  EXPECT_NEAR(out.at(2, 0) + out.at(3, 0), 1.0, 1e-6);
  EXPECT_GT(out.at(1, 0), out.at(0, 0));
  // Large score dominates without overflowing.
  EXPECT_NEAR(out.at(3, 0), 1.0, 1e-6);
}

TEST(TapeTest, ConcatColsAndRows) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(2, 1, {1, 2}));
  VarId b = t.Constant(Tensor::FromVector(2, 2, {3, 4, 5, 6}));
  const Tensor& cc = t.val(t.ConcatCols({a, b}));
  EXPECT_EQ(cc.cols(), 3);
  EXPECT_FLOAT_EQ(cc.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(cc.at(1, 2), 6.0f);
  VarId c = t.Constant(Tensor::FromVector(1, 1, {9}));
  const Tensor& cr = t.val(t.ConcatRows({a, c}));
  EXPECT_EQ(cr.rows(), 3);
  EXPECT_FLOAT_EQ(cr.at(2, 0), 9.0f);
}

TEST(TapeTest, ColExtracts) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6}));
  const Tensor& out = t.val(t.Col(a, 1));
  EXPECT_EQ(out.cols(), 1);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 5.0f);
}

TEST(TapeTest, LayerNormRowsAreStandardized) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(1, 4, {1, 2, 3, 4}));
  VarId gamma = t.Constant(Tensor::Full(1, 4, 1.0f));
  VarId beta = t.Constant(Tensor(1, 4));
  const Tensor& out = t.val(t.LayerNorm(a, gamma, beta));
  float mean = 0.0f;
  for (int c = 0; c < 4; ++c) mean += out.at(0, c);
  EXPECT_NEAR(mean, 0.0f, 1e-5);
  float var = 0.0f;
  for (int c = 0; c < 4; ++c) var += out.at(0, c) * out.at(0, c);
  EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3);
}

TEST(TapeTest, RowL2NormalizeUnitNorm) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(2, 2, {3, 4, 0.1f, 0}));
  const Tensor& out = t.val(t.RowL2Normalize(a));
  EXPECT_NEAR(out.at(0, 0), 0.6f, 1e-5);
  EXPECT_NEAR(out.at(0, 1), 0.8f, 1e-5);
}

TEST(TapeTest, RowDotAndReductions) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  VarId b = t.Constant(Tensor::FromVector(2, 2, {5, 6, 7, 8}));
  const Tensor& dot = t.val(t.RowDot(a, b));
  EXPECT_FLOAT_EQ(dot.at(0, 0), 17.0f);
  EXPECT_FLOAT_EQ(dot.at(1, 0), 53.0f);
  EXPECT_FLOAT_EQ(t.val(t.SumAll(a)).scalar(), 10.0f);
  EXPECT_FLOAT_EQ(t.val(t.MeanAll(a)).scalar(), 2.5f);
  EXPECT_FLOAT_EQ(t.val(t.L2(a)).scalar(), 30.0f);
  const Tensor& mr = t.val(t.MeanRows(a));
  EXPECT_FLOAT_EQ(mr.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(mr.at(0, 1), 3.0f);
}

TEST(TapeTest, RowSoftmaxSumsToOne) {
  Tape t;
  VarId a = t.Constant(Tensor::FromVector(2, 3, {1, 2, 3, -50, 0, 50}));
  const Tensor& out = t.val(t.RowSoftmax(a));
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += out.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_NEAR(out.at(1, 2), 1.0f, 1e-5);
}

TEST(TapeTest, BprLossValue) {
  Tape t;
  VarId pos = t.Constant(Tensor::FromVector(2, 1, {2, 1}));
  VarId neg = t.Constant(Tensor::FromVector(2, 1, {1, 1}));
  const float expected =
      0.5f * (std::log(1 + std::exp(-1.0f)) + std::log(2.0f));
  EXPECT_NEAR(t.val(t.BprLoss(pos, neg)).scalar(), expected, 1e-5);
}

TEST(TapeTest, BackwardAccumulatesIntoParams) {
  ParamStore store;
  Parameter* p = store.Create("p", Tensor::FromVector(1, 2, {1, 2}));
  Tape t;
  VarId a = t.Param(p);
  VarId loss = t.SumAll(t.Mul(a, a));  // d/dp sum(p^2) = 2p
  t.Backward(loss);
  EXPECT_FLOAT_EQ(p->grad.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(p->grad.at(0, 1), 4.0f);
  // Second pass accumulates.
  Tape t2;
  VarId a2 = t2.Param(p);
  t2.Backward(t2.SumAll(a2));
  EXPECT_FLOAT_EQ(p->grad.at(0, 0), 3.0f);
}

TEST(TapeTest, DropoutDisabledOutsideTraining) {
  util::Rng rng(3);
  Tape t;
  VarId a = t.Constant(Tensor::Full(10, 10, 1.0f));
  VarId out = t.Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(out, a);
}

TEST(TapeTest, DropoutMasksAndRescales) {
  util::Rng rng(3);
  Tape t;
  VarId a = t.Constant(Tensor::Full(50, 50, 1.0f));
  const Tensor& out = t.val(t.Dropout(a, 0.4f, rng, /*training=*/true));
  int zeros = 0;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(out.data()[i], 1.0f / 0.6f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.size(), 0.4, 0.05);
}

}  // namespace
}  // namespace dgnn::ag
