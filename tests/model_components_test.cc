// Behavioral tests for model-specific components that the zoo-wide smoke
// tests cannot see: auxiliary losses, walk embeddings, session handling,
// degenerate graphs.

#include <cmath>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "models/dgcf.h"
#include "models/dgrec.h"
#include "models/eatnn.h"
#include "models/herec.h"
#include "models/hgt.h"
#include "models/lightgcn.h"
#include "models/mhcn.h"

namespace dgnn::models {
namespace {

data::Dataset TinyData() {
  return data::GenerateSynthetic(data::SyntheticConfig::Tiny());
}

// A dataset with no item-relation links and no social ties: the degenerate
// graph every model must survive.
data::Dataset BareData() {
  data::Dataset ds = TinyData();
  ds.item_relations.clear();
  ds.num_relations = 0;
  ds.social.clear();
  ds.Validate();
  return ds;
}

TEST(MhcnTest, AuxLossOnlyDuringTraining) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  MhcnConfig c;
  c.embedding_dim = 8;
  Mhcn model(g, c);
  ag::Tape t1;
  auto train_fwd = model.Forward(t1, /*training=*/true);
  EXPECT_GE(train_fwd.aux_loss, 0);
  EXPECT_TRUE(std::isfinite(t1.val(train_fwd.aux_loss).scalar()));
  ag::Tape t2;
  auto eval_fwd = model.Forward(t2, /*training=*/false);
  EXPECT_EQ(eval_fwd.aux_loss, -1);
}

TEST(MhcnTest, SslWeightZeroDisablesAuxLoss) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  MhcnConfig c;
  c.embedding_dim = 8;
  c.ssl_weight = 0.0f;
  Mhcn model(g, c);
  ag::Tape t;
  EXPECT_EQ(model.Forward(t, true).aux_loss, -1);
}

TEST(EatnnTest, SocialTaskLossPresentWithTies) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  EatnnConfig c;
  c.embedding_dim = 8;
  Eatnn model(g, c);
  ag::Tape t;
  auto fwd = model.Forward(t, true);
  ASSERT_GE(fwd.aux_loss, 0);
  // BPR-style loss scaled by the task weight; starts near w * log 2.
  EXPECT_NEAR(t.val(fwd.aux_loss).scalar(),
              c.social_task_weight * std::log(2.0f), 0.1);
}

TEST(EatnnTest, NoSocialTiesMeansNoAuxLoss) {
  data::Dataset ds = BareData();
  graph::HeteroGraph g(ds);
  EatnnConfig c;
  c.embedding_dim = 8;
  Eatnn model(g, c);
  ag::Tape t;
  EXPECT_EQ(model.Forward(t, true).aux_loss, -1);
}

TEST(DgcfTest, RejectsIndivisibleIntentSplit) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  DgcfConfig c;
  c.embedding_dim = 10;  // not divisible by 4 intents
  EXPECT_DEATH(Dgcf(g, c), "divide evenly");
}

TEST(DgcfTest, IntentChunksConcatenateToFullDim) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  DgcfConfig c;
  c.embedding_dim = 16;
  c.num_intents = 4;
  Dgcf model(g, c);
  ag::Tape t;
  auto fwd = model.Forward(t, false);
  EXPECT_EQ(t.val(fwd.users).cols(), 16);
  EXPECT_EQ(t.val(fwd.items).cols(), 16);
}

TEST(DgRecTest, HandlesShortSessions) {
  // Users with fewer interactions than the session length must still get
  // well-defined states (masked GRU steps).
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  DgRecConfig c;
  c.embedding_dim = 8;
  c.session_length = 50;  // longer than any user's history
  DgRec model(ds, g, c);
  ag::Tape t;
  auto fwd = model.Forward(t, false);
  for (int64_t i = 0; i < t.val(fwd.users).size(); ++i) {
    ASSERT_TRUE(std::isfinite(t.val(fwd.users).data()[i]));
  }
}

TEST(HerecTest, WalkEmbeddingsReflectGraphStructure) {
  // Two disconnected cliques: walk embeddings of same-clique nodes must be
  // more similar than cross-clique ones.
  graph::CooMatrix coo;
  const int n = 12;
  coo.rows = coo.cols = n;
  for (int a = 0; a < n / 2; ++a) {
    for (int b = 0; b < n / 2; ++b) {
      if (a == b) continue;
      coo.Add(a, b);
      coo.Add(a + n / 2, b + n / 2);
    }
  }
  graph::CsrMatrix adj = graph::CsrMatrix::FromCoo(coo);
  HerecConfig c;
  c.embedding_dim = 8;
  c.sgns_epochs = 4;
  c.walks_per_node = 8;
  ag::Tensor emb = TrainWalkEmbeddings(adj, c, 7);
  auto cosine = [&](int a, int b) {
    double dot = 0, na = 0, nb = 0;
    for (int64_t k = 0; k < 8; ++k) {
      dot += emb.at(a, k) * emb.at(b, k);
      na += emb.at(a, k) * emb.at(a, k);
      nb += emb.at(b, k) * emb.at(b, k);
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
  };
  double same = 0, cross = 0;
  int same_n = 0, cross_n = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const bool same_clique = (a < n / 2) == (b < n / 2);
      (same_clique ? same : cross) += cosine(a, b);
      ++(same_clique ? same_n : cross_n);
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.2);
}

TEST(HgtTest, MultiHeadForwardShapesAndHeadCountMatters) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  HgtConfig one;
  one.embedding_dim = 8;
  one.num_heads = 1;
  HgtConfig four = one;
  four.num_heads = 4;
  Hgt m1(g, one);
  Hgt m4(g, four);
  ag::Tape t1, t4;
  auto f1 = m1.Forward(t1, false);
  auto f4 = m4.Forward(t4, false);
  EXPECT_EQ(t1.val(f1.users).cols(), 8);
  EXPECT_EQ(t4.val(f4.users).cols(), 8);
  // Q/K/V budgets match across head counts; the per-edge-type attention
  // and message matrices are (d/h)^2 per head, so more heads means fewer
  // edge parameters.
  EXPECT_GT(m1.params().TotalParameterCount(),
            m4.params().TotalParameterCount());
  // And a genuinely different function.
  EXPECT_GT(t1.val(f1.users).MaxAbsDiff(t4.val(f4.users)), 1e-6f);
}

TEST(HgtDeathTest, RejectsIndivisibleHeads) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  HgtConfig c;
  c.embedding_dim = 10;
  c.num_heads = 4;
  EXPECT_DEATH(Hgt(g, c), "divide evenly");
}

TEST(LightGcnTest, SideContextChangesEmbeddings) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  LightGcnConfig with;
  with.embedding_dim = 8;
  LightGcnConfig without = with;
  without.use_side_context = false;
  LightGcn m1(g, with);
  LightGcn m2(g, without);
  ag::Tape t1, t2;
  auto f1 = m1.Forward(t1, false);
  auto f2 = m2.Forward(t2, false);
  EXPECT_GT(t1.val(f1.users).MaxAbsDiff(t2.val(f2.users)), 1e-6f);
}

// Every model must survive the degenerate graph (no social, no relations)
// and keep finite outputs.
class BareGraphTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BareGraphTest, ForwardFiniteWithoutSideRelations) {
  static data::Dataset* ds = new data::Dataset(BareData());
  static graph::HeteroGraph* g = new graph::HeteroGraph(*ds);
  core::ZooConfig zc;
  zc.embedding_dim = 8;
  zc.num_memory_units = 4;
  auto model = core::CreateModelByName(GetParam(), *ds, *g, zc);
  ag::Tape t;
  auto fwd = model->Forward(t, true);
  for (int64_t i = 0; i < t.val(fwd.users).size(); ++i) {
    ASSERT_TRUE(std::isfinite(t.val(fwd.users).data()[i])) << GetParam();
  }
  for (int64_t i = 0; i < t.val(fwd.items).size(); ++i) {
    ASSERT_TRUE(std::isfinite(t.val(fwd.items).data()[i])) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BareGraphTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names = core::TableIIModelNames();
      names.push_back("BPR-MF");
      names.push_back("LightGCN");
      return names;
    }()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// Forward must not mutate parameters (pure function of the store).
TEST(ModelPurityTest, ForwardDoesNotMutateParameters) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  core::ZooConfig zc;
  zc.embedding_dim = 8;
  auto model = core::CreateModelByName("DGNN", ds, g, zc);
  std::vector<ag::Tensor> before;
  for (const auto& p : model->params().params()) before.push_back(p->value);
  ag::Tape t;
  model->Forward(t, true);
  size_t i = 0;
  for (const auto& p : model->params().params()) {
    EXPECT_EQ(p->value.MaxAbsDiff(before[i]), 0.0f) << p->name;
    ++i;
  }
}

}  // namespace
}  // namespace dgnn::models
