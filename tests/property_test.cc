// Property-style sweeps over randomized instances: invariants that must
// hold for any input, checked across a parameter grid (TEST_P).

#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "ag/tape.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "train/metrics.h"

namespace dgnn {
namespace {

// ----- SpMM vs dense reference across random sparse matrices ------------

struct SpmmCase {
  int64_t rows, cols, feature_dim;
  double density;
  uint64_t seed;
};

class SpmmPropertyTest : public ::testing::TestWithParam<SpmmCase> {};

TEST_P(SpmmPropertyTest, MatchesDenseReference) {
  const SpmmCase& pc = GetParam();
  util::Rng rng(pc.seed);
  graph::CooMatrix coo;
  coo.rows = pc.rows;
  coo.cols = pc.cols;
  ag::Tensor dense(pc.rows, pc.cols);
  for (int64_t r = 0; r < pc.rows; ++r) {
    for (int64_t c = 0; c < pc.cols; ++c) {
      if (rng.UniformDouble() < pc.density) {
        const float v = rng.UniformFloat(-2.0f, 2.0f);
        coo.Add(static_cast<int32_t>(r), static_cast<int32_t>(c), v);
        dense.at(r, c) = v;
      }
    }
  }
  graph::CsrMatrix adj = graph::CsrMatrix::FromCoo(coo);
  ag::Tensor x =
      ag::Tensor::GaussianInit(pc.cols, pc.feature_dim, 1.0f, rng);

  ag::Tensor sparse_out(pc.rows, pc.feature_dim);
  adj.Multiply(x.data(), pc.feature_dim, sparse_out.data());

  ag::Tensor dense_out(pc.rows, pc.feature_dim);
  for (int64_t r = 0; r < pc.rows; ++r) {
    for (int64_t k = 0; k < pc.cols; ++k) {
      const float v = dense.at(r, k);
      if (v == 0.0f) continue;
      for (int64_t c = 0; c < pc.feature_dim; ++c) {
        dense_out.at(r, c) += v * x.at(k, c);
      }
    }
  }
  EXPECT_LT(sparse_out.MaxAbsDiff(dense_out), 1e-4f);

  // Transpose consistency: (A^T)^T == A behaviorally.
  graph::CsrMatrix att = adj.Transposed().Transposed();
  ag::Tensor round_trip(pc.rows, pc.feature_dim);
  att.Multiply(x.data(), pc.feature_dim, round_trip.data());
  EXPECT_LT(round_trip.MaxAbsDiff(sparse_out), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpmmPropertyTest,
    ::testing::Values(SpmmCase{1, 1, 1, 1.0, 1}, SpmmCase{5, 9, 3, 0.3, 2},
                      SpmmCase{20, 10, 8, 0.1, 3},
                      SpmmCase{13, 13, 4, 0.5, 4},
                      SpmmCase{30, 7, 2, 0.05, 5},
                      SpmmCase{8, 40, 16, 0.2, 6}),
    [](const ::testing::TestParamInfo<SpmmCase>& info) {
      return "case" + std::to_string(info.index);
    });

// ----- Segment softmax invariants across random segmentations -----------

class SegmentSoftmaxPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SegmentSoftmaxPropertyTest, SumsToOnePerNonEmptySegment) {
  util::Rng rng(GetParam());
  const int64_t num_edges = 5 + rng.UniformInt(60);
  const int64_t num_segments = 1 + rng.UniformInt(10);
  std::vector<int32_t> seg;
  ag::Tensor scores(num_edges, 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    seg.push_back(static_cast<int32_t>(rng.UniformInt(num_segments)));
    scores.at(e, 0) = rng.UniformFloat(-30.0f, 30.0f);
  }
  ag::Tape tape;
  ag::VarId out =
      tape.SegmentSoftmax(tape.Constant(scores), seg, num_segments);
  std::vector<double> sums(static_cast<size_t>(num_segments), 0.0);
  for (int64_t e = 0; e < num_edges; ++e) {
    const float v = tape.val(out).at(e, 0);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    sums[static_cast<size_t>(seg[static_cast<size_t>(e)])] += v;
  }
  std::vector<bool> touched(static_cast<size_t>(num_segments), false);
  for (int32_t s : seg) touched[static_cast<size_t>(s)] = true;
  for (int64_t s = 0; s < num_segments; ++s) {
    if (touched[static_cast<size_t>(s)]) {
      EXPECT_NEAR(sums[static_cast<size_t>(s)], 1.0, 1e-5);
    } else {
      EXPECT_EQ(sums[static_cast<size_t>(s)], 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentSoftmaxPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// ----- Metrics invariants across random rank lists ----------------------

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, BoundsAndMonotonicity) {
  util::Rng rng(GetParam());
  std::vector<int> ranks;
  const int n = 1 + static_cast<int>(rng.UniformInt(200));
  for (int i = 0; i < n; ++i) {
    ranks.push_back(1 + static_cast<int>(rng.UniformInt(101)));
  }
  auto m = train::MetricsFromRanks(ranks, {1, 5, 10, 20, 101});
  double prev_hr = 0.0;
  double prev_ndcg = 0.0;
  for (int cutoff : {1, 5, 10, 20, 101}) {
    EXPECT_GE(m.hr[cutoff], 0.0);
    EXPECT_LE(m.hr[cutoff], 1.0);
    EXPECT_GE(m.ndcg[cutoff], 0.0);
    EXPECT_LE(m.ndcg[cutoff], 1.0);
    // Monotone in the cutoff.
    EXPECT_GE(m.hr[cutoff], prev_hr);
    EXPECT_GE(m.ndcg[cutoff], prev_ndcg);
    // NDCG never exceeds HR (per-user gain <= 1).
    EXPECT_LE(m.ndcg[cutoff], m.hr[cutoff] + 1e-12);
    prev_hr = m.hr[cutoff];
    prev_ndcg = m.ndcg[cutoff];
  }
  // Every rank is within [1, 101], so HR@101 is exactly 1.
  EXPECT_DOUBLE_EQ(m.hr[101], 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// ----- Generator invariants across presets and seeds --------------------

struct GenCase {
  const char* preset;
  uint64_t seed;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, StructuralInvariants) {
  auto config = data::SyntheticConfig::Preset(GetParam().preset);
  config.seed = GetParam().seed;
  // Shrink the big presets so the sweep stays fast.
  config.num_users = std::min(config.num_users, 150);
  config.num_items = std::min(config.num_items, 500);
  data::Dataset ds = data::GenerateSynthetic(config);
  ds.Validate();  // CHECK-based invariants

  // Every user kept at least min_train interactions in train.
  std::vector<int> count(static_cast<size_t>(ds.num_users), 0);
  for (const auto& it : ds.train) ++count[static_cast<size_t>(it.user)];
  for (const auto& t : ds.test) {
    EXPECT_GE(count[static_cast<size_t>(t.user)],
              config.min_train_interactions);
  }
  // No duplicate (user, item) pairs in train.
  std::set<std::pair<int32_t, int32_t>> seen;
  for (const auto& it : ds.train) {
    EXPECT_TRUE(seen.insert({it.user, it.item}).second)
        << "duplicate interaction";
  }
  // Latent factor annotations cover every user.
  EXPECT_EQ(ds.user_community.size(), static_cast<size_t>(ds.num_users));
  EXPECT_EQ(ds.user_social_group.size(), static_cast<size_t>(ds.num_users));
  EXPECT_EQ(ds.user_social_influence.size(),
            static_cast<size_t>(ds.num_users));
  for (float b : ds.user_social_influence) {
    EXPECT_GE(b, 0.0f);
    EXPECT_LE(b, static_cast<float>(config.max_social_influence));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorPropertyTest,
    ::testing::Values(GenCase{"tiny", 1}, GenCase{"tiny", 2},
                      GenCase{"ciao", 3}, GenCase{"epinions", 4},
                      GenCase{"yelp", 5}),
    [](const ::testing::TestParamInfo<GenCase>& info) {
      return std::string(info.param.preset) + "_" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dgnn
