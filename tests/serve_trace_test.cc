// Tests for the replayable request-trace format (serve/trace.h) and the
// open-loop replay harness (serve/replay.h): deterministic generation,
// bit-identical record -> replay -> re-record round trips at any worker
// count, a corruption matrix in the serve_snapshot_test style (every
// tampered file must be rejected by the fully-validating reader), and
// failpoint-driven I/O failures.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "serve/engine.h"
#include "serve/replay.h"
#include "serve/snapshot.h"
#include "serve/trace.h"
#include "train/recommender.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace dgnn {
namespace {

using serve::ReplayConfig;
using serve::ReplayResult;
using serve::ScheduleConfig;
using serve::Trace;
using serve::TraceRecord;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

ScheduleConfig FastSchedule(int64_t n) {
  ScheduleConfig s;
  s.arrival = serve::ArrivalProcess::kPoisson;
  // High rate so replay-based tests spend microseconds, not seconds, on
  // the schedule.
  s.target_qps = 200000.0;
  s.num_requests = n;
  s.seed = 99;
  return s;
}

// Re-checksums a tampered serialization so corruption tests can reach
// the structural validators behind the checksum gate.
void FixChecksum(std::string* bytes) {
  const uint64_t sum =
      serve::internal::Fnv1a64(bytes->data(), bytes->size() - 8);
  std::memcpy(bytes->data() + bytes->size() - 8, &sum, 8);
}

// ----- generation ----------------------------------------------------------

TEST(TraceGenerate, DeterministicAcrossCalls) {
  const ScheduleConfig s = FastSchedule(500);
  const Trace a = serve::GenerateTrace(s, 60, 150, 10, 0.8);
  const Trace b = serve::GenerateTrace(s, 60, 150, 10, 0.8);
  EXPECT_EQ(serve::SerializeTrace(a), serve::SerializeTrace(b));

  ScheduleConfig other = s;
  other.seed = 100;
  const Trace c = serve::GenerateTrace(other, 60, 150, 10, 0.8);
  EXPECT_NE(serve::SerializeTrace(a), serve::SerializeTrace(c));
}

TEST(TraceGenerate, ArrivalsMonotoneForEveryProcess) {
  for (auto arrival :
       {serve::ArrivalProcess::kPoisson, serve::ArrivalProcess::kBurst,
        serve::ArrivalProcess::kDiurnal}) {
    ScheduleConfig s = FastSchedule(400);
    s.arrival = arrival;
    const Trace t = serve::GenerateTrace(s, 60, 150, 10, 0.8);
    ASSERT_EQ(t.records.size(), 400u);
    int64_t prev = 0;
    for (const TraceRecord& r : t.records) {
      EXPECT_GE(r.arrival_ns, prev);
      prev = r.arrival_ns;
    }
  }
}

TEST(TraceGenerate, ScheduleAveragesTargetRate) {
  // The burst and diurnal schedules are normalized so their
  // time-average matches target_qps; with 4000 requests the realized
  // rate should be within ~15%. The average only holds over whole
  // periods, so shrink the periods to fit several cycles inside the
  // trace's ~20ms span (4000 requests at 200k qps).
  for (auto arrival :
       {serve::ArrivalProcess::kPoisson, serve::ArrivalProcess::kBurst,
        serve::ArrivalProcess::kDiurnal}) {
    ScheduleConfig s = FastSchedule(4000);
    s.arrival = arrival;
    s.burst_period_s = 0.004;
    s.diurnal_period_s = 0.004;
    const Trace t = serve::GenerateTrace(s, 60, 150, 10, 0.8);
    const double span_s =
        static_cast<double>(t.records.back().arrival_ns) / 1e9;
    ASSERT_GT(span_s, 0.0);
    const double realized = static_cast<double>(t.records.size()) / span_s;
    EXPECT_NEAR(realized / s.target_qps, 1.0, 0.15)
        << "arrival process " << serve::ArrivalProcessName(arrival);
  }
}

TEST(TraceGenerate, ParseArrivalProcessRejectsUnknown) {
  EXPECT_TRUE(serve::ParseArrivalProcess("poisson").ok());
  EXPECT_TRUE(serve::ParseArrivalProcess("burst").ok());
  EXPECT_TRUE(serve::ParseArrivalProcess("diurnal").ok());
  EXPECT_FALSE(serve::ParseArrivalProcess("uniform").ok());
  EXPECT_FALSE(serve::ParseArrivalProcess("").ok());
}

// ----- file round trip ------------------------------------------------------

TEST(TraceIo, RoundTripIsBitIdentical) {
  const Trace trace = serve::GenerateTrace(FastSchedule(300), 60, 150, 10,
                                           0.8);
  const std::string path = TestPath("trace_roundtrip.trc");
  ASSERT_TRUE(serve::WriteTrace(trace, path).ok());

  auto read = serve::ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().seed, trace.seed);
  ASSERT_EQ(read.value().records.size(), trace.records.size());
  EXPECT_TRUE(read.value().records == trace.records);
  // Re-serializing the read trace reproduces the file byte for byte.
  EXPECT_EQ(serve::SerializeTrace(read.value()),
            serve::SerializeTrace(trace));
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace trace;
  trace.seed = 7;
  const std::string path = TestPath("trace_empty.trc");
  ASSERT_TRUE(serve::WriteTrace(trace, path).ok());
  auto read = serve::ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().seed, 7u);
  EXPECT_TRUE(read.value().records.empty());
}

// ----- corruption matrix ----------------------------------------------------

class TraceCorruptionTest : public ::testing::Test {
 protected:
  TraceCorruptionTest()
      : trace_(serve::GenerateTrace(FastSchedule(50), 60, 150, 10, 0.8)),
        bytes_(serve::SerializeTrace(trace_)) {}

  // Writes raw bytes and expects ReadTrace to reject them.
  void ExpectRejected(const std::string& bytes, const char* what) {
    const std::string path = TestPath("trace_corrupt.trc");
    ASSERT_TRUE(fs::AtomicWriteFile(path, bytes).ok());
    EXPECT_FALSE(serve::ReadTrace(path).ok()) << what;
  }

  Trace trace_;
  std::string bytes_;
};

TEST_F(TraceCorruptionTest, ValidBaselinePasses) {
  const std::string path = TestPath("trace_corrupt.trc");
  ASSERT_TRUE(fs::AtomicWriteFile(path, bytes_).ok());
  EXPECT_TRUE(serve::ReadTrace(path).ok());
}

TEST_F(TraceCorruptionTest, WrongMagicRejected) {
  std::string bad = bytes_;
  bad[0] = 'X';
  ExpectRejected(bad, "wrong magic");
}

TEST_F(TraceCorruptionTest, TruncationRejectedAtEveryBoundary) {
  // Header cut, mid-record cut, checksum cut.
  for (size_t cut : {size_t{4}, size_t{16}, size_t{24 + 10},
                     bytes_.size() - 8, bytes_.size() - 1}) {
    ExpectRejected(bytes_.substr(0, cut), "truncated file");
  }
}

TEST_F(TraceCorruptionTest, BitFlipAnywhereRejected) {
  // Flip one bit in the header, one in a record payload, one in the
  // checksum itself.
  for (size_t pos : {size_t{9}, bytes_.size() / 2, bytes_.size() - 3}) {
    std::string bad = bytes_;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    ExpectRejected(bad, "bit flip");
  }
}

TEST_F(TraceCorruptionTest, TrailingGarbageRejected) {
  ExpectRejected(bytes_ + std::string(7, '\0'), "trailing garbage");
}

TEST_F(TraceCorruptionTest, CountMismatchRejected) {
  // Claim one more record than the file holds; checksum fixed so the
  // length validator (not the checksum) must catch it.
  std::string bad = bytes_;
  uint64_t count = 0;
  std::memcpy(&count, bad.data() + 16, 8);
  ++count;
  std::memcpy(bad.data() + 16, &count, 8);
  FixChecksum(&bad);
  ExpectRejected(bad, "count mismatch");
}

TEST_F(TraceCorruptionTest, NonMonotoneArrivalRejected) {
  // Swap the arrival times of records 0 and 1 (record 1's arrival goes
  // backwards); checksum fixed so the monotonicity validator must fire.
  ASSERT_GE(trace_.records.size(), 2u);
  ASSERT_NE(trace_.records[0].arrival_ns, trace_.records[1].arrival_ns);
  std::string bad = bytes_;
  char tmp[8];
  std::memcpy(tmp, bad.data() + 24, 8);
  std::memmove(bad.data() + 24, bad.data() + 24 + 21, 8);
  std::memcpy(bad.data() + 24 + 21, tmp, 8);
  FixChecksum(&bad);
  ExpectRejected(bad, "non-monotone arrivals");
}

TEST_F(TraceCorruptionTest, InvalidTypeRejected) {
  std::string bad = bytes_;
  bad[24 + 8] = 7;  // record 0's type byte
  FixChecksum(&bad);
  ExpectRejected(bad, "invalid request type");
}

TEST_F(TraceCorruptionTest, NegativeFieldRejected) {
  std::string bad = bytes_;
  const int32_t neg = -5;
  std::memcpy(bad.data() + 24 + 9, &neg, 4);  // record 0's user
  FixChecksum(&bad);
  ExpectRejected(bad, "negative user id");
}

// ----- failpoint-driven I/O failures ---------------------------------------

TEST(TraceIoFailpoints, WriteAndReadFailuresSurface) {
  const Trace trace =
      serve::GenerateTrace(FastSchedule(20), 60, 150, 10, 0.8);
  const std::string path = TestPath("trace_failpoint.trc");

  ASSERT_TRUE(failpoint::Configure("fs.open=error").ok());
  EXPECT_FALSE(serve::WriteTrace(trace, path).ok());
  failpoint::Clear();

  ASSERT_TRUE(serve::WriteTrace(trace, path).ok());
  ASSERT_TRUE(failpoint::Configure("fs.read=error").ok());
  EXPECT_FALSE(serve::ReadTrace(path).ok());
  failpoint::Clear();

  // A failed rewrite must leave the previous file intact (atomic
  // temp+rename contract).
  Trace other = trace;
  other.seed ^= 1;
  ASSERT_TRUE(failpoint::Configure("fs.rename=error").ok());
  EXPECT_FALSE(serve::WriteTrace(other, path).ok());
  failpoint::Clear();
  auto read = serve::ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().seed, trace.seed);
}

// ----- replay ---------------------------------------------------------------

class TraceReplayTest : public ::testing::Test {
 protected:
  TraceReplayTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_),
        model_(graph_, 8, 5),
        recommender_(model_, dataset_) {}

  std::unique_ptr<serve::ServingEngine> MakeEngine(
      serve::EngineConfig config = {}) {
    auto engine = std::make_unique<serve::ServingEngine>(config);
    engine->Swap(std::make_shared<const serve::Snapshot>(
        serve::BuildSnapshot(recommender_, dataset_, "BPR-MF", "trace")));
    return engine;
  }

  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  models::BprMf model_;
  train::Recommender recommender_;
};

TEST_F(TraceReplayTest, RecordReplayReRecordBitIdenticalAtAnyWorkerCount) {
  // The acceptance property: replaying a recorded trace — at ANY worker
  // count — consumes exactly the recorded request stream and never
  // perturbs the trace itself. Record, replay with 1/2/4 workers,
  // re-read and re-serialize after each replay: bytes never change, and
  // the engine saw exactly the traced requests each time.
  const Trace trace = serve::GenerateTrace(FastSchedule(200),
                                           dataset_.num_users,
                                           dataset_.num_items, 10, 0.8);
  const std::string path = TestPath("trace_replay.trc");
  ASSERT_TRUE(serve::WriteTrace(trace, path).ok());
  const std::string original_bytes = serve::SerializeTrace(trace);

  for (int workers : {1, 2, 4}) {
    auto read = serve::ReadTrace(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();

    auto engine = MakeEngine();
    ReplayConfig rc;
    rc.workers = workers;
    const ReplayResult result =
        serve::ReplayTrace(*engine, read.value().records, rc);

    EXPECT_EQ(result.requests, static_cast<int64_t>(trace.records.size()));
    EXPECT_EQ(result.ok + result.shed + result.expired + result.failed,
              result.requests);
    EXPECT_EQ(engine->stats().requests,
              static_cast<int64_t>(trace.records.size()));
    // Re-record: the trace that went through replay serializes to the
    // exact original bytes.
    EXPECT_EQ(serve::SerializeTrace(read.value()), original_bytes)
        << "workers=" << workers;
    auto reread = serve::ReadTrace(path);
    ASSERT_TRUE(reread.ok());
    EXPECT_EQ(serve::SerializeTrace(reread.value()), original_bytes);
  }
}

TEST_F(TraceReplayTest, LatencyMeasuredFromScheduledArrival) {
  // Two requests scheduled at t=0 dispatched by ONE worker: the second
  // cannot be sent before the first completes, and its latency must
  // include that wait (coordinated-omission safety). With an injected
  // 30 ms serve delay, the second request's latency is >= 60 ms from
  // its scheduled arrival; a send-time measurement would report ~30 ms.
  Trace trace;
  for (int i = 0; i < 2; ++i) {
    TraceRecord r;
    r.arrival_ns = 0;
    r.type = 0;
    r.user = 1;
    r.k = 5;
    trace.records.push_back(r);
  }
  auto engine = MakeEngine();
  ASSERT_TRUE(failpoint::Configure("serve.execute=delay:30").ok());
  ReplayConfig rc;
  rc.workers = 1;
  const ReplayResult result =
      serve::ReplayTrace(*engine, trace.records, rc);
  failpoint::Clear();
  EXPECT_EQ(result.requests, 2);
  // max latency covers both serialized delays; p50 (the faster request)
  // covers at least one.
  EXPECT_GE(result.max_ms, 55.0);
  EXPECT_GE(result.p50_ms, 25.0);
  EXPECT_GE(result.late_dispatches, 1);
}

TEST_F(TraceReplayTest, OutcomeClassificationFollowsEngineContract) {
  // A deadline too short to survive an injected delay expires requests;
  // the replay classifies them by the engine's exact error strings.
  serve::EngineConfig config;
  config.default_deadline_ms = 1;
  auto engine = MakeEngine(config);
  Trace trace;
  for (int i = 0; i < 4; ++i) {
    TraceRecord r;
    r.arrival_ns = 0;
    r.type = 0;
    r.user = 1;
    r.k = 5;
    trace.records.push_back(r);
  }
  ASSERT_TRUE(failpoint::Configure("serve.execute=delay:10").ok());
  ReplayConfig rc;
  rc.workers = 1;
  const ReplayResult result =
      serve::ReplayTrace(*engine, trace.records, rc);
  failpoint::Clear();
  EXPECT_EQ(result.requests, 4);
  EXPECT_EQ(result.ok + result.shed + result.expired + result.failed, 4);
  // With a 1 ms deadline and 10 ms serialized delays, at least the tail
  // requests expire at admission.
  EXPECT_GT(result.expired, 0);
}

TEST_F(TraceReplayTest, EmptyTraceYieldsZeroResult) {
  auto engine = MakeEngine();
  const ReplayResult result =
      serve::ReplayTrace(*engine, {}, ReplayConfig{});
  EXPECT_EQ(result.requests, 0);
  EXPECT_EQ(result.p99_ms, 0.0);
}

}  // namespace
}  // namespace dgnn
