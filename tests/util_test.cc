#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"

namespace dgnn::util {
namespace {

// ----- Rng ------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff = any_diff || (a.NextUint64() != b.NextUint64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  double sum = 0.0, sq = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.06);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 5000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 5000.0, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(6);
  for (int64_t k : {0L, 3L, 50L, 100L}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    std::set<int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int64_t>(unique.size()), k);
    for (int64_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(7);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 4000.0, 0.75, 0.04);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(9);
  Rng b = a.Fork();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

// ----- strings ---------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a\t\tb\t", '\t');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt("4x").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// ----- Status ------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing file");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> v = 42;
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e = Status::InvalidArgument("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fn = [](bool fail) -> Status {
    DGNN_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::Ok());
    return Status::Ok();
  };
  EXPECT_TRUE(fn(false).ok());
  EXPECT_EQ(fn(true).code(), StatusCode::kInternal);
}

// ----- Flags ---------------------------------------------------------------

TEST(FlagsTest, ParsesKeyValueAndBare) {
  const char* argv[] = {"prog", "--epochs=12", "--verbose",
                        "--name=foo bar"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("epochs", 0), 12);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("name", ""), "foo bar");
  EXPECT_EQ(flags.GetInt("absent", 5), 5);
  EXPECT_FALSE(flags.Has("absent"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("absent", 1.5), 1.5);
}

// ----- Table ---------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  Table t({"Model", "HR"});
  t.AddRow({"DGNN", "0.70"});
  t.AddRow({"LightGCN", "0.63"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("DGNN"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Every line has the same width.
  auto lines = Split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].size(), lines[1].size());
  EXPECT_EQ(lines[1].size(), lines[2].size());
}

}  // namespace
}  // namespace dgnn::util
