// Tests for the online ServingEngine: ranking tie-breaks, bit-identical
// parity with the direct train::Recommender across thread counts and
// batching, graceful degradation for unknown users, the LRU cache and its
// swap invalidation, telemetry counters, and zero-downtime hot swap under
// concurrent readers (the TSan job runs this suite too).

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "serve/engine.h"
#include "serve/ranking.h"
#include "serve/snapshot.h"
#include "train/recommender.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn {
namespace {

using serve::Request;
using serve::Response;
using serve::ScoredItem;
using serve::ServingEngine;
using serve::Snapshot;

// ----- ranking --------------------------------------------------------------

TEST(RankingTest, TieBreaksByLowerItemId) {
  // Equal scores must order by ascending id — the determinism contract
  // both the Recommender and the engine inherit from serve/ranking.h.
  std::vector<ScoredItem> scored = {
      {7, 1.0f}, {2, 1.0f}, {9, 2.0f}, {4, 1.0f}, {1, 0.5f}};
  serve::SelectTopK(scored, 4);
  ASSERT_EQ(scored.size(), 4u);
  EXPECT_EQ(scored[0].item, 9);
  EXPECT_EQ(scored[1].item, 2);  // ties at 1.0: 2 < 4 < 7
  EXPECT_EQ(scored[2].item, 4);
  EXPECT_EQ(scored[3].item, 7);
}

TEST(RankingTest, ScoreGreaterIsStrictWeakOrder) {
  const ScoredItem a{1, 1.0f};
  const ScoredItem b{2, 1.0f};
  EXPECT_TRUE(serve::ScoreGreater(a, b));
  EXPECT_FALSE(serve::ScoreGreater(b, a));
  EXPECT_FALSE(serve::ScoreGreater(a, a));
}

// ----- engine fixtures ------------------------------------------------------

class ServeEngineTest : public ::testing::Test {
 protected:
  ServeEngineTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_),
        model_(graph_, 8, 5),
        recommender_(model_, dataset_),
        snapshot_(std::make_shared<const Snapshot>(serve::BuildSnapshot(
            recommender_, dataset_, "BPR-MF", "engine-test"))) {}

  static Request TopKRequest(int32_t user, int k) {
    Request r;
    r.type = Request::Type::kTopK;
    r.user = user;
    r.k = k;
    return r;
  }

  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  models::BprMf model_;
  train::Recommender recommender_;
  std::shared_ptr<const Snapshot> snapshot_;
};

TEST_F(ServeEngineTest, NoSnapshotYieldsErrorNotCrash) {
  ServingEngine engine;
  const Response resp = engine.Handle(TopKRequest(0, 5));
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("no snapshot"), std::string::npos);
}

TEST_F(ServeEngineTest, MatchesRecommenderBitIdenticallyAcrossThreads) {
  const int saved_threads = util::NumThreads();
  const int k = 10;
  const int32_t probe_users = std::min<int32_t>(dataset_.num_users, 12);
  for (int threads : {1, 2, 7}) {
    util::SetNumThreads(threads);
    ServingEngine engine;
    engine.Swap(snapshot_);
    for (int32_t u = 0; u < probe_users; ++u) {
      const auto want = recommender_.TopK(u, k);
      const Response got = engine.Handle(TopKRequest(u, k));
      ASSERT_TRUE(got.ok);
      EXPECT_FALSE(got.degraded);
      ASSERT_EQ(got.items.size(), want.size()) << "threads " << threads;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.items[i].item, want[i].item);
        EXPECT_EQ(got.items[i].score, want[i].score);  // exact float
      }
      Request score_req;
      score_req.type = Request::Type::kScore;
      score_req.user = u;
      score_req.item = u % dataset_.num_items;
      const Response score = engine.Handle(score_req);
      ASSERT_TRUE(score.ok);
      EXPECT_EQ(score.score, recommender_.Score(u, score_req.item));
      Request sim_req;
      sim_req.type = Request::Type::kSimilarUsers;
      sim_req.user = u;
      sim_req.k = 5;
      const auto want_sim = recommender_.SimilarUsers(u, 5);
      const Response sim = engine.Handle(sim_req);
      ASSERT_TRUE(sim.ok);
      ASSERT_EQ(sim.items.size(), want_sim.size());
      for (size_t i = 0; i < want_sim.size(); ++i) {
        EXPECT_EQ(sim.items[i].item, want_sim[i].item);
        EXPECT_EQ(sim.items[i].score, want_sim[i].score);
      }
    }
  }
  util::SetNumThreads(saved_threads);
}

TEST_F(ServeEngineTest, HandleBatchMatchesSingleRequests) {
  ServingEngine engine;
  engine.Swap(snapshot_);
  std::vector<Request> batch;
  for (int32_t u = 0; u < std::min<int32_t>(dataset_.num_users, 16); ++u) {
    batch.push_back(TopKRequest(u, 8));
  }
  const auto responses = engine.HandleBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto want = recommender_.TopK(batch[i].user, 8);
    ASSERT_TRUE(responses[i].ok);
    ASSERT_EQ(responses[i].items.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(responses[i].items[j].item, want[j].item);
      EXPECT_EQ(responses[i].items[j].score, want[j].score);
    }
  }
}

TEST_F(ServeEngineTest, UnknownUserDegradesToPopularityRanking) {
  telemetry::SetEnabled(true);
  telemetry::Reset();
  ServingEngine engine;
  engine.Swap(snapshot_);

  const Response resp =
      engine.Handle(TopKRequest(dataset_.num_users + 100, 5));
  ASSERT_TRUE(resp.ok);
  EXPECT_TRUE(resp.degraded);
  ASSERT_EQ(resp.items.size(), 5u);
  // Popularity order: counts descending, ties by lower id; scores are the
  // raw train counts.
  for (size_t i = 1; i < resp.items.size(); ++i) {
    EXPECT_TRUE(serve::ScoreGreater(resp.items[i - 1], resp.items[i]) ||
                !serve::ScoreGreater(resp.items[i], resp.items[i - 1]));
  }
  for (const auto& s : resp.items) {
    EXPECT_EQ(s.score,
              static_cast<float>(
                  snapshot_->item_counts[static_cast<size_t>(s.item)]));
  }

  // Negative user ids degrade too; Score and SimilarUsers fall back.
  EXPECT_TRUE(engine.Handle(TopKRequest(-3, 5)).degraded);
  Request score_req;
  score_req.type = Request::Type::kScore;
  score_req.user = 0;
  score_req.item = dataset_.num_items + 7;
  const Response score = engine.Handle(score_req);
  ASSERT_TRUE(score.ok);
  EXPECT_TRUE(score.degraded);
  EXPECT_EQ(score.score, 0.0f);
  Request sim_req;
  sim_req.type = Request::Type::kSimilarUsers;
  sim_req.user = dataset_.num_users;
  sim_req.k = 3;
  const Response sim = engine.Handle(sim_req);
  ASSERT_TRUE(sim.ok);
  EXPECT_TRUE(sim.degraded);
  EXPECT_TRUE(sim.items.empty());

  EXPECT_EQ(engine.stats().degraded_requests, 4);
  EXPECT_EQ(telemetry::GetCounter("serve.degraded_requests")->value(), 4);
  telemetry::SetEnabled(false);
}

TEST_F(ServeEngineTest, InvalidKIsAnErrorResponse) {
  ServingEngine engine;
  engine.Swap(snapshot_);
  const Response resp = engine.Handle(TopKRequest(0, 0));
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("k must be positive"), std::string::npos);
}

TEST_F(ServeEngineTest, CacheHitsMissesAndSwapInvalidation) {
  telemetry::SetEnabled(true);
  telemetry::Reset();
  serve::EngineConfig config;
  config.cache_capacity = 8;
  ServingEngine engine(config);
  engine.Swap(snapshot_);

  engine.Handle(TopKRequest(1, 5));  // cold: miss
  engine.Handle(TopKRequest(1, 5));  // warm: hit
  engine.Handle(TopKRequest(2, 5));  // different user: miss
  EXPECT_EQ(engine.stats().cache_hits, 1);
  EXPECT_EQ(engine.stats().cache_misses, 2);

  // Hot swap invalidates every cached vector.
  engine.Swap(snapshot_);
  engine.Handle(TopKRequest(1, 5));  // miss again after swap
  EXPECT_EQ(engine.stats().cache_hits, 1);
  EXPECT_EQ(engine.stats().cache_misses, 3);
  EXPECT_EQ(engine.stats().snapshot_swaps, 2);

  EXPECT_EQ(telemetry::GetCounter("serve.cache_hits")->value(), 1);
  EXPECT_EQ(telemetry::GetCounter("serve.cache_misses")->value(), 3);
  EXPECT_EQ(telemetry::GetCounter("serve.snapshot_swaps")->value(), 2);

  // LRU eviction: touch more users than the capacity, then re-touch the
  // first — it must have been evicted (another miss). User 1 is still
  // cached from above, so the sweep of 9 users gets exactly one hit.
  telemetry::Reset();
  for (int32_t u = 0; u < 9; ++u) engine.Handle(TopKRequest(u, 3));
  engine.Handle(TopKRequest(0, 3));
  EXPECT_EQ(telemetry::GetCounter("serve.cache_hits")->value(), 1);
  EXPECT_EQ(telemetry::GetCounter("serve.cache_misses")->value(), 9);
  telemetry::SetEnabled(false);
}

TEST_F(ServeEngineTest, DisabledCacheCountsOnlyMisses) {
  serve::EngineConfig config;
  config.cache_capacity = 0;
  ServingEngine engine(config);
  engine.Swap(snapshot_);
  engine.Handle(TopKRequest(1, 5));
  engine.Handle(TopKRequest(1, 5));
  EXPECT_EQ(engine.stats().cache_hits, 0);
}

TEST_F(ServeEngineTest, RequestLatencyHistogramRecorded) {
  telemetry::SetEnabled(true);
  telemetry::Reset();
  ServingEngine engine;
  engine.Swap(snapshot_);
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    engine.Handle(TopKRequest(i % dataset_.num_users, 5));
  }
  telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.request_seconds");
  EXPECT_EQ(latency->count(), kRequests);
  EXPECT_GE(latency->ApproxQuantileSeconds(0.99),
            latency->ApproxQuantileSeconds(0.50));
  EXPECT_EQ(telemetry::GetCounter("serve.requests")->value(), kRequests);
  telemetry::SetEnabled(false);
}

TEST_F(ServeEngineTest, SocialRecalibrationChangesScoresOnlyWhenEnabled) {
  // alpha = 0 is the bit-identical parity path (covered above); a
  // non-zero alpha must blend neighbors in for users that have any.
  serve::EngineConfig config;
  config.social_alpha = 0.5f;
  ServingEngine engine(config);
  engine.Swap(snapshot_);
  int32_t social_user = -1;
  for (int32_t u = 0; u < dataset_.num_users; ++u) {
    if (!snapshot_->social[static_cast<size_t>(u)].empty()) {
      social_user = u;
      break;
    }
  }
  ASSERT_GE(social_user, 0) << "tiny dataset has no social ties";
  Request score_req;
  score_req.type = Request::Type::kScore;
  score_req.user = social_user;
  score_req.item = 0;
  const Response blended = engine.Handle(score_req);
  ASSERT_TRUE(blended.ok);
  EXPECT_NE(blended.score, recommender_.Score(social_user, 0));
}

TEST_F(ServeEngineTest, ConcurrentHandleCallsAreMicroBatched) {
  ServingEngine engine;
  engine.Swap(snapshot_);
  const int32_t probe_users = std::min<int32_t>(dataset_.num_users, 16);
  std::vector<std::vector<ScoredItem>> expected;
  for (int32_t u = 0; u < probe_users; ++u) {
    expected.push_back(recommender_.TopK(u, 10));
  }
  constexpr int kClients = 8;
  constexpr int kIters = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kIters; ++i) {
        const int32_t u = (c + i) % probe_users;
        const Response resp = engine.Handle(TopKRequest(u, 10));
        const auto& want = expected[static_cast<size_t>(u)];
        bool ok = resp.ok && resp.items.size() == want.size();
        for (size_t j = 0; ok && j < want.size(); ++j) {
          ok = resp.items[j].item == want[j].item &&
               resp.items[j].score == want[j].score;
        }
        if (!ok) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const serve::EngineStats s = engine.stats();
  EXPECT_EQ(s.requests, kClients * kIters);
  // Micro-batching must have coalesced at least some concurrent requests
  // (strictly fewer batches than requests would be flaky on a loaded
  // 1-core CI host, so only assert the accounting invariant).
  EXPECT_GE(s.requests, s.batches);
  EXPECT_GT(s.batches, 0);
}

TEST_F(ServeEngineTest, HotSwapUnderConcurrentReadersDropsNothing) {
  // 8 reader threads hammer TopK while the main thread flips between two
  // snapshots. Every response must be complete, non-degraded, and match
  // the expected result OF THE SNAPSHOT VERSION THAT SERVED IT — readers
  // in flight during a swap finish on the old snapshot.
  auto scaled = std::make_shared<Snapshot>(*snapshot_);
  {
    // Second snapshot with visibly different scores (scaled embeddings
    // keep the same ordering but different score values).
    ag::Tensor users = scaled->users;
    users.Scale(2.0f);
    scaled->users = users;
    scaled->meta.tag = "v2";
  }
  std::shared_ptr<const Snapshot> snap_v2 = scaled;

  const int32_t probe_users = std::min<int32_t>(dataset_.num_users, 8);
  std::vector<std::vector<ScoredItem>> expect_v1;
  std::vector<std::vector<ScoredItem>> expect_v2;
  {
    ServingEngine probe1;
    probe1.Swap(snapshot_);
    ServingEngine probe2;
    probe2.Swap(snap_v2);
    for (int32_t u = 0; u < probe_users; ++u) {
      expect_v1.push_back(probe1.Handle(TopKRequest(u, 10)).items);
      expect_v2.push_back(probe2.Handle(TopKRequest(u, 10)).items);
    }
  }

  ServingEngine engine;
  engine.Swap(snapshot_);
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int64_t> responses{0};
  constexpr int kReaders = 8;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int32_t u = (r + iter++) % probe_users;
        const Response resp = engine.Handle(TopKRequest(u, 10));
        if (!resp.ok || resp.degraded) {
          mismatches.fetch_add(1);
          continue;
        }
        // Odd versions served snapshot_ (v1, v3, ...), even versions the
        // scaled one — Swap below alternates.
        const auto& want = (resp.snapshot_version % 2 == 1)
                               ? expect_v1[static_cast<size_t>(u)]
                               : expect_v2[static_cast<size_t>(u)];
        bool ok = resp.items.size() == want.size();
        for (size_t j = 0; ok && j < want.size(); ++j) {
          ok = resp.items[j].item == want[j].item &&
               resp.items[j].score == want[j].score;
        }
        if (!ok) mismatches.fetch_add(1);
        responses.fetch_add(1);
      }
    });
  }
  constexpr int kSwaps = 20;
  for (int s = 0; s < kSwaps; ++s) {
    engine.Swap(s % 2 == 0 ? snap_v2 : snapshot_);
    std::this_thread::yield();
  }
  // Let readers observe the final snapshot before stopping.
  while (responses.load() < kReaders * 4) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(responses.load(), 0);
  EXPECT_EQ(engine.swap_count(), kSwaps + 1);
  EXPECT_EQ(engine.stats().snapshot_swaps, kSwaps + 1);
}

// ----- quantized snapshots and the IVF retrieval path -----------------------

class QuantServeTest : public ServeEngineTest {
 protected:
  // Copies the fixture snapshot, optionally builds an IVF index (from the
  // fp32 rows) and quantizes, and returns it ready to Swap in.
  std::shared_ptr<const Snapshot> MakeSnapshot(bool with_index,
                                               const char* codec) {
    auto snap = std::make_shared<Snapshot>(*snapshot_);
    if (with_index) {
      index::IvfConfig cfg;
      cfg.nlist = 8;
      EXPECT_TRUE(serve::BuildSnapshotIndex(snap.get(), cfg).ok());
    }
    if (codec != nullptr) {
      EXPECT_TRUE(serve::QuantizeSnapshot(
                      snap.get(), quant::ParseCodec(codec).value())
                      .ok());
    }
    return snap;
  }
};

TEST_F(QuantServeTest, QuantizedSnapshotServesAllRequestTypes) {
  ServingEngine dense;
  dense.Swap(snapshot_);
  ServingEngine quantized;
  quantized.Swap(MakeSnapshot(/*with_index=*/false, "fp16"));
  const int32_t probe_users = std::min<int32_t>(dataset_.num_users, 12);
  for (int32_t u = 0; u < probe_users; ++u) {
    const Response want = dense.Handle(TopKRequest(u, 10));
    const Response got = quantized.Handle(TopKRequest(u, 10));
    ASSERT_TRUE(got.ok) << got.error;
    EXPECT_FALSE(got.degraded);
    ASSERT_EQ(got.items.size(), want.items.size());
    // fp16 decode error (~5e-4 relative) is far below the score gaps of
    // this model, and the rerank is exact over decoded rows, so the ids
    // must agree; scores only approximately (the user vector itself went
    // through fp16).
    for (size_t i = 0; i < want.items.size(); ++i) {
      EXPECT_EQ(got.items[i].item, want.items[i].item) << "user " << u;
      EXPECT_NEAR(got.items[i].score, want.items[i].score, 5e-2f);
    }

    Request score_req;
    score_req.type = Request::Type::kScore;
    score_req.user = u;
    score_req.item = u % dataset_.num_items;
    const Response score = quantized.Handle(score_req);
    ASSERT_TRUE(score.ok);
    EXPECT_NEAR(score.score, dense.Handle(score_req).score, 5e-2f);

    Request sim_req;
    sim_req.type = Request::Type::kSimilarUsers;
    sim_req.user = u;
    sim_req.k = 5;
    const Response sim = quantized.Handle(sim_req);
    ASSERT_TRUE(sim.ok);
    EXPECT_EQ(sim.items.size(), 5u);
  }
}

TEST_F(QuantServeTest, FullProbeIvfMatchesBruteForceBitForBit) {
  // nprobe >= nlist probes every list, and every row is in exactly one
  // list, so the candidate set is the whole catalog; on a dense snapshot
  // the scores come from the same kernel — results must be identical to
  // the brute-force engine, not merely close.
  ServingEngine brute;
  brute.Swap(snapshot_);
  serve::EngineConfig config;
  config.nprobe = 1 << 20;  // clamped to nlist
  config.rerank = static_cast<int>(dataset_.num_items);
  ServingEngine ivf(config);
  ivf.Swap(MakeSnapshot(/*with_index=*/true, nullptr));
  const int32_t probe_users = std::min<int32_t>(dataset_.num_users, 16);
  for (int32_t u = 0; u < probe_users; ++u) {
    const Response want = brute.Handle(TopKRequest(u, 10));
    const Response got = ivf.Handle(TopKRequest(u, 10));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_EQ(got.items.size(), want.items.size());
    for (size_t i = 0; i < want.items.size(); ++i) {
      EXPECT_EQ(got.items[i].item, want.items[i].item) << "user " << u;
      EXPECT_EQ(got.items[i].score, want.items[i].score) << "user " << u;
    }
  }
}

TEST_F(QuantServeTest, NprobeZeroFallsBackToBruteForce) {
  // An index in the snapshot is inert until --nprobe opts in: the default
  // config must take the seed brute-force path and stay bit-identical.
  ServingEngine plain;
  plain.Swap(snapshot_);
  ServingEngine with_index;  // default config: nprobe = 0
  with_index.Swap(MakeSnapshot(/*with_index=*/true, nullptr));
  for (int32_t u = 0; u < std::min<int32_t>(dataset_.num_users, 8); ++u) {
    const Response want = plain.Handle(TopKRequest(u, 10));
    const Response got = with_index.Handle(TopKRequest(u, 10));
    ASSERT_TRUE(got.ok);
    ASSERT_EQ(got.items.size(), want.items.size());
    for (size_t i = 0; i < want.items.size(); ++i) {
      EXPECT_EQ(got.items[i].item, want.items[i].item);
      EXPECT_EQ(got.items[i].score, want.items[i].score);
    }
  }
}

TEST_F(QuantServeTest, PartialProbeServesValidResultsWithHighRecall) {
  serve::EngineConfig config;
  config.nprobe = 3;  // of 8 lists
  ServingEngine engine(config);
  engine.Swap(MakeSnapshot(/*with_index=*/true, "int8"));
  ServingEngine brute;
  brute.Swap(snapshot_);
  const int k = 10;
  int hits = 0, total = 0;
  for (int32_t u = 0; u < std::min<int32_t>(dataset_.num_users, 32); ++u) {
    const Response got = engine.Handle(TopKRequest(u, k));
    ASSERT_TRUE(got.ok) << got.error;
    EXPECT_FALSE(got.degraded);
    EXPECT_LE(got.items.size(), static_cast<size_t>(k));
    const auto& seen = snapshot_->seen[static_cast<size_t>(u)];
    for (const auto& it : got.items) {
      EXPECT_GE(it.item, 0);
      EXPECT_LT(it.item, dataset_.num_items);
      EXPECT_FALSE(std::binary_search(seen.begin(), seen.end(), it.item))
          << "served a seen item";
    }
    std::vector<int32_t> want_ids;
    for (const auto& it : brute.Handle(TopKRequest(u, k)).items) {
      want_ids.push_back(it.item);
    }
    std::sort(want_ids.begin(), want_ids.end());
    for (const auto& it : got.items) {
      hits += std::binary_search(want_ids.begin(), want_ids.end(), it.item);
    }
    total += static_cast<int>(want_ids.size());
  }
  // 3/8 lists on a tiny random-ish catalog still recovers well over half
  // of the exact top-k; this is a sanity floor, not a quality claim (the
  // quality claim lives in ivf_test's clustered-data recall test and the
  // measured bench sweep).
  EXPECT_GT(total, 0);
  EXPECT_GE(static_cast<double>(hits) / total, 0.5);
}

TEST_F(QuantServeTest, LoadServesQuantizedIndexedFileEndToEnd) {
  // Through the file path (Load, not Swap): export-shaped snapshot with
  // int8 + ivf, served with a partial probe.
  auto snap = MakeSnapshot(/*with_index=*/true, "int8");
  const std::string path =
      ::testing::TempDir() + "/engine_quant_ivf_snap.bin";
  ASSERT_TRUE(serve::WriteSnapshot(*snap, path).ok());
  serve::EngineConfig config;
  config.nprobe = 4;
  ServingEngine engine(config);
  ASSERT_TRUE(engine.Load(path).ok());
  ASSERT_NE(engine.snapshot(), nullptr);
  EXPECT_TRUE(engine.snapshot()->has_quant_items());
  EXPECT_FALSE(engine.snapshot()->ivf.empty());
  const Response resp = engine.Handle(TopKRequest(1, 10));
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.items.size(), 10u);
}

}  // namespace
}  // namespace dgnn
