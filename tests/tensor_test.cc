#include "ag/tensor.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dgnn::ag {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rows(), 0);
  EXPECT_EQ(t.cols(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ConstructionZeroFills) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(t.at(r, c), 0.0f);
  }
}

TEST(TensorTest, FromVectorRoundTrips) {
  Tensor t = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
}

TEST(TensorTest, ScalarAccessor) {
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_FLOAT_EQ(s.scalar(), 2.5f);
}

TEST(TensorTest, FillAndZero) {
  Tensor t(2, 2);
  t.Fill(3.0f);
  EXPECT_EQ(t.at(1, 1), 3.0f);
  t.Zero();
  EXPECT_EQ(t.at(1, 1), 0.0f);
}

TEST(TensorTest, AddAndAxpy) {
  Tensor a = Tensor::FromVector(1, 3, {1, 2, 3});
  Tensor b = Tensor::FromVector(1, 3, {10, 20, 30});
  a.Add(b);
  EXPECT_EQ(a.at(0, 1), 22.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.at(0, 2), 33.0f + 15.0f);
}

TEST(TensorTest, ScaleAndSquaredL2) {
  Tensor a = Tensor::FromVector(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(a.SquaredL2(), 25.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a.SquaredL2(), 100.0f);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a = Tensor::FromVector(1, 3, {1, 2, 3});
  Tensor b = Tensor::FromVector(1, 3, {1, 2.5f, 2});
  EXPECT_FLOAT_EQ(a.MaxAbsDiff(b), 1.0f);
}

TEST(TensorTest, XavierUniformBounds) {
  util::Rng rng(1);
  Tensor t = Tensor::XavierUniform(50, 30, rng);
  const float bound = std::sqrt(6.0f / (50 + 30));
  float min_v = 1e9f;
  float max_v = -1e9f;
  for (int64_t i = 0; i < t.size(); ++i) {
    min_v = std::min(min_v, t.data()[i]);
    max_v = std::max(max_v, t.data()[i]);
  }
  EXPECT_GE(min_v, -bound);
  EXPECT_LE(max_v, bound);
  // Should actually use the range, not collapse to a constant.
  EXPECT_GT(max_v - min_v, bound);
}

TEST(TensorTest, GaussianInitHasSpread) {
  util::Rng rng(2);
  Tensor t = Tensor::GaussianInit(100, 10, 0.1f, rng);
  double mean = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) mean += t.data()[i];
  mean /= static_cast<double>(t.size());
  EXPECT_NEAR(mean, 0.0, 0.02);
  double var = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    var += (t.data()[i] - mean) * (t.data()[i] - mean);
  }
  var /= static_cast<double>(t.size());
  EXPECT_NEAR(var, 0.01, 0.004);
}

TEST(TensorTest, RowAccessorMatchesAt) {
  Tensor t = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.row(1)[0], t.at(1, 0));
  EXPECT_EQ(t.row(1)[1], t.at(1, 1));
}

}  // namespace
}  // namespace dgnn::ag
