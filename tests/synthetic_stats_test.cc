// Statistical property tests for the streaming synthetic generator
// (data/synthetic.h, GenerateSyntheticStream): the large presets' claims
// — power-law degree tails, social homophily, Table I density ordering,
// and O(users) resident memory independent of the interaction count —
// verified on scaled-down worlds that keep every distributional
// parameter of the million-user presets.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "util/failpoint.h"

namespace dgnn {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  // Stale files from a previous run would fail the writer's rename-over
  // semantics silently; clear the known layout.
  for (const char* f :
       {"meta.tsv", "train.tsv", "test.tsv", "social.tsv",
        "item_relations.tsv", "eval_negatives.tsv"}) {
    std::remove((dir + "/" + f).c_str());
  }
  return dir;
}

// A large preset scaled down by `factor` in users/items so tests finish
// in seconds; every distributional parameter (degree exponents, means,
// homophily, eval fraction) is untouched.
data::SyntheticConfig ScaledDown(data::SyntheticConfig c, int factor) {
  c.num_users = std::max(1000, c.num_users / factor);
  c.num_items = std::max(1000, c.num_items / factor);
  return c;
}

// Tail exponent estimated from the empirical CCDF at two probe points
// well inside the Pareto tail and well below the generator's 12x-mean
// cap: for a Pareto tail, P(X > x) = (xm / x)^alpha, so
// alpha = ln(P(X > a) / P(X > b)) / ln(b / a).
double CcdfTailExponent(const std::vector<int64_t>& degrees, double a,
                        double b) {
  int64_t above_a = 0, above_b = 0;
  for (int64_t d : degrees) {
    if (static_cast<double>(d) > a) ++above_a;
    if (static_cast<double>(d) > b) ++above_b;
  }
  EXPECT_GT(above_b, 50) << "too few tail samples for a stable estimate";
  if (above_b <= 0 || above_a <= above_b) return 0.0;
  const double pa =
      static_cast<double>(above_a) / static_cast<double>(degrees.size());
  const double pb =
      static_cast<double>(above_b) / static_cast<double>(degrees.size());
  return std::log(pa / pb) / std::log(b / a);
}

TEST(SyntheticStreamStats, DegreeTailMatchesConfiguredExponent) {
  data::SyntheticConfig config =
      ScaledDown(data::SyntheticConfig::CiaoLarge(), 50);  // 20k users
  const std::string dir = TestDir("stream_tail");
  auto stats = data::GenerateSyntheticStream(config, dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto loaded = data::LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::vector<int64_t> degree(static_cast<size_t>(config.num_users), 0);
  for (const auto& it : loaded.value().train) {
    ++degree[static_cast<size_t>(it.user)];
  }
  for (const auto& it : loaded.value().test) {
    ++degree[static_cast<size_t>(it.user)];
  }

  // Probes at 1x and 4x the mean: inside the tail (the Pareto scale
  // parameter is mean * (alpha-1)/alpha = 0.375 * mean for alpha = 1.6),
  // far below the 12x cap.
  const double mean = config.mean_interactions_per_user;
  const double alpha = CcdfTailExponent(degree, mean, 4.0 * mean);
  EXPECT_NEAR(alpha, config.degree_power, 0.3)
      << "interaction degree tail drifted from the configured exponent";
}

TEST(SyntheticStreamStats, SocialHomophilyMatchesConfig) {
  data::SyntheticConfig config =
      ScaledDown(data::SyntheticConfig::CiaoLarge(), 50);
  const std::string dir = TestDir("stream_homophily");
  auto stats = data::GenerateSyntheticStream(config, dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // A homophilous pick (probability h) always lands in the picker's
  // group; a uniform pick lands there with probability ~1/k.
  const double expected =
      config.social_homophily +
      (1.0 - config.social_homophily) / config.num_communities;
  EXPECT_NEAR(stats.value().social_same_group_fraction, expected, 0.05);
}

TEST(SyntheticStreamStats, LargePresetsKeepTableIDensityOrdering) {
  // Ciao must stay densest in interactions AND social ties, Yelp
  // sparsest — the Table I property the presets encode.
  struct Point {
    std::string name;
    double interaction_density = 0.0;
    double social_degree = 0.0;
  };
  std::vector<Point> points;
  for (const auto* preset_name :
       {"ciao-large", "epinions-large", "yelp-large"}) {
    data::SyntheticConfig config =
        ScaledDown(data::SyntheticConfig::Preset(preset_name), 100);
    const std::string dir = TestDir(std::string("stream_density_") +
                                    config.name);
    auto stats = data::GenerateSyntheticStream(config, dir);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    Point p;
    p.name = config.name;
    const double interactions = static_cast<double>(
        stats.value().num_train + stats.value().num_test);
    p.interaction_density =
        interactions / (static_cast<double>(config.num_users) *
                        static_cast<double>(config.num_items));
    p.social_degree = 2.0 * static_cast<double>(stats.value().num_social) /
                      static_cast<double>(config.num_users);
    points.push_back(p);
  }
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].interaction_density, points[1].interaction_density)
      << "ciao must be denser than epinions";
  EXPECT_GT(points[1].interaction_density, points[2].interaction_density)
      << "epinions must be denser than yelp";
  EXPECT_GT(points[0].social_degree, points[1].social_degree);
  EXPECT_GT(points[1].social_degree, points[2].social_degree);
}

TEST(SyntheticStreamStats, ResidentMemoryIndependentOfInteractionCount) {
  // Same world, 4x the interactions: disk grows accordingly, resident
  // memory must not (it is O(users + items + ties)). This is the
  // scaled-down stand-in for the 1M-user acceptance claim.
  data::SyntheticConfig lean =
      ScaledDown(data::SyntheticConfig::CiaoLarge(), 100);
  lean.mean_interactions_per_user = 6.0;
  data::SyntheticConfig heavy = lean;
  heavy.mean_interactions_per_user = 24.0;

  auto lean_stats =
      data::GenerateSyntheticStream(lean, TestDir("stream_lean"));
  auto heavy_stats =
      data::GenerateSyntheticStream(heavy, TestDir("stream_heavy"));
  ASSERT_TRUE(lean_stats.ok()) << lean_stats.status().ToString();
  ASSERT_TRUE(heavy_stats.ok()) << heavy_stats.status().ToString();

  EXPECT_GT(heavy_stats.value().num_train,
            2 * lean_stats.value().num_train);
  EXPECT_GT(heavy_stats.value().bytes_on_disk,
            2 * lean_stats.value().bytes_on_disk);
  // Resident state is identical arrays either way; allow 2% slack for
  // allocator rounding differences.
  EXPECT_NEAR(static_cast<double>(heavy_stats.value().resident_bytes),
              static_cast<double>(lean_stats.value().resident_bytes),
              0.02 * static_cast<double>(lean_stats.value().resident_bytes));
  // Per-user scratch is bounded by the power-law cap (12x mean), so the
  // heavy run's scratch stays in the same order of magnitude, nowhere
  // near the total interaction footprint.
  EXPECT_LT(heavy_stats.value().peak_user_scratch_bytes,
            heavy_stats.value().resident_bytes);
}

TEST(SyntheticStreamStats, StreamedDatasetRoundTripsAndValidates) {
  data::SyntheticConfig config = data::SyntheticConfig::CiaoSmall();
  config.eval_fraction = 0.5;
  config.time_horizon = 86400;
  const std::string dir = TestDir("stream_roundtrip");
  auto stats = data::GenerateSyntheticStream(config, dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto loaded = data::LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  data::Dataset ds = std::move(loaded).value();
  ds.Validate();

  EXPECT_EQ(ds.name, config.name);
  EXPECT_EQ(static_cast<int64_t>(ds.train.size()),
            stats.value().num_train);
  EXPECT_EQ(static_cast<int64_t>(ds.test.size()), stats.value().num_test);
  EXPECT_EQ(static_cast<int64_t>(ds.social.size()),
            stats.value().num_social);
  EXPECT_EQ(static_cast<int64_t>(ds.item_relations.size()),
            stats.value().num_item_relations);
  EXPECT_EQ(ds.eval_negatives.size(), ds.test.size());
  // eval_fraction = 0.5 must hold out strictly fewer users than the
  // paper protocol would (every eligible user).
  EXPECT_LT(ds.test.size(), static_cast<size_t>(config.num_users));
  EXPECT_GT(ds.test.size(), 0u);
  // Event timestamps live in [0, horizon) and each user's test row is
  // their chronologically-last interaction.
  for (const auto& it : ds.train) {
    EXPECT_GE(it.time, 0);
    EXPECT_LT(it.time, config.time_horizon);
  }
}

TEST(SyntheticStreamStats, EvalFractionOneMatchesPaperProtocol) {
  data::SyntheticConfig config = data::SyntheticConfig::Tiny();
  const std::string dir = TestDir("stream_evalfrac1");
  auto stats = data::GenerateSyntheticStream(config, dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto loaded = data::LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // With eval_fraction = 1 every user with > min_train interactions is
  // held out; the tiny preset's minimum pick count guarantees that is
  // every user.
  EXPECT_EQ(loaded.value().test.size(),
            static_cast<size_t>(config.num_users));
}

TEST(SyntheticStreamStats, CrashMidStreamLeavesNoCommittedDataset) {
  // An injected write failure aborts the generation; meta.tsv (written
  // last, the commit marker) must not exist, so LoadDataset refuses the
  // directory rather than serving a half-written world.
  data::SyntheticConfig config = data::SyntheticConfig::Tiny();
  const std::string dir = TestDir("stream_crash");
  ASSERT_TRUE(failpoint::Configure("fs.rename=error").ok());
  auto stats = data::GenerateSyntheticStream(config, dir);
  failpoint::Clear();
  EXPECT_FALSE(stats.ok());
  EXPECT_FALSE(data::LoadDataset(dir).ok());

  // The same directory recovers on a clean retry.
  auto retry = data::GenerateSyntheticStream(config, dir);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(data::LoadDataset(dir).ok());
}

TEST(SyntheticStreamStats, StreamMatchesInMemoryStatisticalShape) {
  // The streaming path deviates from GenerateSynthetic only in the
  // documented socially-driven approximation; aggregate shape (counts
  // per user, social tie volume) must agree closely on the same config.
  data::SyntheticConfig config = data::SyntheticConfig::CiaoSmall();
  data::Dataset in_memory = data::GenerateSynthetic(config);
  const std::string dir = TestDir("stream_vs_memory");
  auto stats = data::GenerateSyntheticStream(config, dir);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const double mem_interactions = static_cast<double>(
      in_memory.train.size() + in_memory.test.size());
  const double stream_interactions = static_cast<double>(
      stats.value().num_train + stats.value().num_test);
  EXPECT_NEAR(stream_interactions / mem_interactions, 1.0, 0.15);
  EXPECT_NEAR(static_cast<double>(stats.value().num_social) /
                  static_cast<double>(in_memory.social.size()),
              1.0, 0.15);
}

}  // namespace
}  // namespace dgnn
