// Tests for the serving-side surface: parameter serialization, the
// Recommender top-K API, and trainer early stopping.

#include <algorithm>
#include <atomic>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ag/serialize.h"
#include "core/dgnn_model.h"
#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "train/recommender.h"
#include "train/trainer.h"
#include "util/thread_pool.h"

namespace dgnn {
namespace {

data::Dataset TinyData() {
  return data::GenerateSynthetic(data::SyntheticConfig::Tiny());
}

// ----- serialization ------------------------------------------------------

TEST(SerializeTest, RoundTripsAllParameters) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  core::DgnnConfig c;
  c.embedding_dim = 8;
  c.num_memory_units = 2;
  core::DgnnModel trained(g, c);
  // Perturb so values differ from a fresh model.
  for (auto& p : trained.params().params()) {
    p->value.Scale(1.5f);
  }
  const std::string path = ::testing::TempDir() + "/dgnn_params.bin";
  ASSERT_TRUE(ag::SaveParameters(trained.params(), path).ok());

  core::DgnnModel fresh(g, c);
  ag::Tensor before = fresh.params().params()[0]->value;
  auto loaded = ag::LoadParameters(fresh.params(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  for (size_t i = 0; i < fresh.params().params().size(); ++i) {
    EXPECT_EQ(fresh.params().params()[i]->value.MaxAbsDiff(
                  trained.params().params()[i]->value),
              0.0f)
        << fresh.params().params()[i]->name;
  }
  // And the values actually changed from the fresh init.
  EXPECT_GT(fresh.params().params()[0]->value.MaxAbsDiff(before), 0.0f);
}

TEST(SerializeTest, LoadRejectsShapeMismatch) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  models::BprMf small(g, 8, 1);
  const std::string path = ::testing::TempDir() + "/dgnn_params8.bin";
  ASSERT_TRUE(ag::SaveParameters(small.params(), path).ok());
  models::BprMf bigger(g, 16, 1);
  auto status = ag::LoadParameters(bigger.params(), path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(SerializeTest, LoadRejectsMissingFileAndGarbage) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  models::BprMf model(g, 8, 1);
  EXPECT_EQ(ag::LoadParameters(model.params(), "/nonexistent/params").code(),
            util::StatusCode::kNotFound);
  const std::string path = ::testing::TempDir() + "/dgnn_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a parameter file";
  }
  EXPECT_EQ(ag::LoadParameters(model.params(), path).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, InferenceIdenticalAfterReload) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  core::DgnnConfig c;
  c.embedding_dim = 8;
  c.num_memory_units = 2;
  core::DgnnModel model(g, c);
  train::TrainConfig tc;
  tc.epochs = 3;
  train::Trainer trainer(&model, ds, tc);
  trainer.Fit();
  const std::string path = ::testing::TempDir() + "/dgnn_trained.bin";
  ASSERT_TRUE(ag::SaveParameters(model.params(), path).ok());

  core::DgnnModel reloaded(g, c);
  ASSERT_TRUE(ag::LoadParameters(reloaded.params(), path).ok());
  ag::Tape t1, t2;
  auto f1 = model.Forward(t1, false);
  auto f2 = reloaded.Forward(t2, false);
  EXPECT_EQ(t1.val(f1.users).MaxAbsDiff(t2.val(f2.users)), 0.0f);
  EXPECT_EQ(t1.val(f1.items).MaxAbsDiff(t2.val(f2.items)), 0.0f);
}

// ----- Recommender ----------------------------------------------------------

class RecommenderTest : public ::testing::Test {
 protected:
  RecommenderTest()
      : dataset_(TinyData()), graph_(dataset_),
        model_(graph_, 8, 5),
        recommender_(model_, dataset_) {}
  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  models::BprMf model_;
  train::Recommender recommender_;
};

TEST_F(RecommenderTest, TopKExcludesSeenItems) {
  auto seen = dataset_.TrainItemsByUser();
  for (int32_t u = 0; u < std::min(dataset_.num_users, 10); ++u) {
    auto top = recommender_.TopK(u, 20);
    EXPECT_LE(top.size(), 20u);
    for (const auto& s : top) {
      EXPECT_FALSE(std::binary_search(seen[u].begin(), seen[u].end(),
                                      s.item))
          << "recommended an already-seen item";
    }
  }
}

TEST_F(RecommenderTest, TopKScoresDescending) {
  auto top = recommender_.TopK(0, 15);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST_F(RecommenderTest, TopKMatchesScore) {
  auto top = recommender_.TopK(2, 5);
  ASSERT_FALSE(top.empty());
  for (const auto& s : top) {
    EXPECT_FLOAT_EQ(s.score, recommender_.Score(2, s.item));
  }
}

TEST_F(RecommenderTest, KLargerThanCatalogClamped) {
  auto top = recommender_.TopK(0, dataset_.num_items * 2);
  auto seen = dataset_.TrainItemsByUser();
  EXPECT_EQ(top.size(), static_cast<size_t>(dataset_.num_items) -
                            seen[0].size());
}

TEST_F(RecommenderTest, SimilarUsersExcludesSelfAndIsBounded) {
  auto similar = recommender_.SimilarUsers(3, 5);
  EXPECT_EQ(similar.size(), 5u);
  for (const auto& s : similar) {
    EXPECT_NE(s.item, 3);
    EXPECT_GE(s.score, -1.0001f);
    EXPECT_LE(s.score, 1.0001f);
  }
}

TEST_F(RecommenderTest, ConcurrentReadersGetIdenticalResults) {
  // The Recommender's const API must be safe to call from many threads at
  // once — the serving scenario. Run with a multi-thread pool so reader
  // threads also contend for the shared ParallelFor pool (the busy-pool
  // serial fallback path) and verify every reader sees the serial answer.
  const int saved_threads = util::NumThreads();
  util::SetNumThreads(4);

  const int k = 10;
  const int32_t num_probe_users = std::min<int32_t>(dataset_.num_users, 16);
  std::vector<std::vector<train::ScoredItem>> expected_top;
  std::vector<float> expected_score;
  for (int32_t u = 0; u < num_probe_users; ++u) {
    expected_top.push_back(recommender_.TopK(u, k));
    expected_score.push_back(recommender_.Score(u, u % dataset_.num_items));
  }

  constexpr int kReaders = 8;
  constexpr int kItersPerReader = 20;
  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int iter = 0; iter < kItersPerReader; ++iter) {
        const int32_t u = (r + iter) % num_probe_users;
        const auto top = recommender_.TopK(u, k);
        const auto& want = expected_top[static_cast<size_t>(u)];
        bool ok = top.size() == want.size();
        for (size_t i = 0; ok && i < top.size(); ++i) {
          ok = top[i].item == want[i].item && top[i].score == want[i].score;
        }
        ok = ok && recommender_.Score(u, u % dataset_.num_items) ==
                       expected_score[static_cast<size_t>(u)];
        if (!ok) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  util::SetNumThreads(saved_threads);
}

// ----- early stopping ------------------------------------------------------

TEST(EarlyStopTest, StopsWhenMetricPlateaus) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  models::BprMf model(g, 8, 3);
  train::TrainConfig tc;
  tc.epochs = 200;  // far more than needed
  tc.batch_size = 128;
  tc.eval_every = 2;
  tc.early_stop_patience = 3;
  train::Trainer trainer(&model, ds, tc);
  auto result = trainer.Fit();
  EXPECT_TRUE(result.stopped_early);
  EXPECT_LT(result.epochs.size(), 200u);
}

TEST(EarlyStopTest, DisabledByDefault) {
  data::Dataset ds = TinyData();
  graph::HeteroGraph g(ds);
  models::BprMf model(g, 8, 3);
  train::TrainConfig tc;
  tc.epochs = 6;
  tc.eval_every = 1;
  train::Trainer trainer(&model, ds, tc);
  auto result = trainer.Fit();
  EXPECT_FALSE(result.stopped_early);
  EXPECT_EQ(result.epochs.size(), 6u);
}

}  // namespace
}  // namespace dgnn
