// Tests for ag/diagnostics: gradient statistics over every model in the
// zoo (one training batch each must produce finite, sensible stats) and
// the check-numerics fail-fast mode, including the injection test proving
// the detector names the offending tape op in both the CHECK message and
// the run log's anomaly event.

#include "ag/diagnostics.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "train/trainer.h"
#include "util/json.h"
#include "util/run_log.h"

namespace dgnn::ag {
namespace {

TEST(FirstNonFiniteTest, FindsFirstBadElement) {
  EXPECT_EQ(FirstNonFinite(Tensor()), -1);
  EXPECT_EQ(FirstNonFinite(Tensor::FromVector(1, 3, {1, 2, 3})), -1);
  Tensor t = Tensor::FromVector(1, 4, {1, 2, 3, 4});
  t.data()[2] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(FirstNonFinite(t), 2);
  t.data()[1] = std::numeric_limits<float>::infinity();
  EXPECT_EQ(FirstNonFinite(t), 1);
}

TEST(GradStatsTest, CollectsNormsAndZeroFraction) {
  ParamStore store;
  Parameter* a = store.Create("a", Tensor::FromVector(1, 4, {1, 1, 1, 1}));
  store.Create("b", Tensor::FromVector(1, 2, {1, 1}));
  a->grad = Tensor::FromVector(1, 4, {3, 0, -4, 0});
  std::vector<GradStats> stats = CollectGradStats(store);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[0].size, 4);
  EXPECT_NEAR(stats[0].grad_l2, 5.0, 1e-12);
  EXPECT_NEAR(stats[0].grad_max_abs, 4.0, 1e-12);
  EXPECT_NEAR(stats[0].grad_zero_frac, 0.5, 1e-12);
  EXPECT_TRUE(stats[0].finite);
  // "b" never accumulated a gradient this step.
  EXPECT_EQ(stats[1].name, "b");
  EXPECT_NEAR(stats[1].grad_zero_frac, 1.0, 1e-12);
}

TEST(GradStatsTest, FlagsNonFiniteGradient) {
  ParamStore store;
  Parameter* a = store.Create("a", Tensor::FromVector(1, 2, {1, 1}));
  a->grad = Tensor::FromVector(1, 2, {1, 1});
  a->grad.data()[1] = std::numeric_limits<float>::quiet_NaN();
  std::vector<GradStats> stats = CollectGradStats(store);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].finite);
}

TEST(GradStatsTest, UpdateRatiosAttachInStoreOrder) {
  std::vector<GradStats> stats(2);
  stats[0].name = "a";
  stats[1].name = "b";
  std::vector<ParamUpdateStats> updates = {{0.5, 10.0}, {0.0, 0.0}};
  AttachUpdateRatios(&stats, updates);
  EXPECT_NEAR(stats[0].update_ratio, 0.05, 1e-9);
  // Zero-norm parameter: ratio stays finite thanks to the epsilon.
  EXPECT_GE(stats[1].update_ratio, 0.0);
  EXPECT_TRUE(std::isfinite(stats[1].update_ratio));
}

TEST(GradStatsTest, JsonArrayParsesBack) {
  std::vector<GradStats> stats(1);
  stats[0].name = "emb";
  stats[0].size = 8;
  stats[0].grad_l2 = 0.25;
  stats[0].finite = true;
  auto parsed = util::ParseJson(GradStatsJsonArray(stats));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed.value().is_array());
  ASSERT_EQ(parsed.value().array.size(), 1u);
  const util::JsonValue& p = parsed.value().array[0];
  EXPECT_EQ(p.StringOr("name", ""), "emb");
  EXPECT_EQ(p.NumberOr("size", 0), 8);
  EXPECT_NEAR(p.NumberOr("grad_l2", 0), 0.25, 1e-12);
  EXPECT_TRUE(p.BoolOr("finite", false));
}

// ----- Model-zoo smoke test -------------------------------------------------

// Every model in Table II (plus the extra references) must survive one
// training epoch with grad-stats sampling on and produce finite
// statistics for every parameter, with at least one parameter actually
// receiving gradient. Catches models whose backward silently produces
// NaN or leaves all parameters untouched.
TEST(ModelZooGradStatsTest, OneBatchFiniteStatsForEveryModel) {
  data::Dataset dataset = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  graph::HeteroGraph graph(dataset);
  std::vector<std::string> names = core::TableIIModelNames();
  names.push_back("BPR-MF");
  names.push_back("LightGCN");
  core::ZooConfig zoo;
  zoo.embedding_dim = 8;
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    auto model = core::CreateModelByName(name, dataset, graph, zoo);
    train::TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 512;
    tc.grad_stats_every = 1;
    train::Trainer trainer(model.get(), dataset, tc);
    trainer.TrainEpoch();
    const std::vector<GradStats>& stats = trainer.last_grad_stats();
    ASSERT_FALSE(stats.empty());
    bool any_nonzero = false;
    for (const GradStats& s : stats) {
      EXPECT_TRUE(s.finite) << s.name;
      EXPECT_TRUE(std::isfinite(s.grad_l2)) << s.name;
      EXPECT_TRUE(std::isfinite(s.grad_max_abs)) << s.name;
      EXPECT_TRUE(std::isfinite(s.update_ratio)) << s.name;
      EXPECT_GE(s.grad_l2, 0.0) << s.name;
      EXPECT_GE(s.grad_zero_frac, 0.0) << s.name;
      EXPECT_LE(s.grad_zero_frac, 1.0) << s.name;
      EXPECT_GT(s.size, 0) << s.name;
      any_nonzero = any_nonzero || s.grad_l2 > 0.0;
    }
    EXPECT_TRUE(any_nonzero) << name << ": no parameter received gradient";
  }
}

// ----- Check-numerics fail-fast ---------------------------------------------

TEST(CheckNumericsDeathTest, NamesProducingOpOnNonFiniteValue) {
  // log(0) = -inf; the forward-value check must name the op that
  // produced it, not some op epochs later.
  EXPECT_DEATH(
      {
        SetCheckNumerics(true);
        Tape tape;
        VarId zero = tape.Constant(Tensor::FromVector(1, 1, {0.0f}));
        tape.Log(zero);
      },
      "check-numerics: non-finite value produced by tape op Log");
}

TEST(CheckNumericsDeathTest, NamesParameterOnNonFiniteGradient) {
  // Finite forward values, non-finite cotangent: d/dx log(x) at a
  // denormal x overflows float. Backward's per-node gradient check fires
  // at the parameter leaf and names it.
  EXPECT_DEATH(
      {
        SetCheckNumerics(true);
        ParamStore store;
        Parameter* p =
            store.Create("emb", Tensor::FromVector(1, 1, {1e-45f}));
        Tape tape;
        tape.Backward(tape.SumAll(tape.Log(tape.Param(p))));
      },
      "check-numerics: non-finite gradient produced by tape op "
      "Param \\('emb'\\)");
}

TEST(CheckNumericsDeathTest, NamesPoisonedParameterValue) {
  EXPECT_DEATH(
      {
        SetCheckNumerics(true);
        ParamStore store;
        Parameter* p = store.Create(
            "bad", Tensor::FromVector(
                       1, 1, {std::numeric_limits<float>::quiet_NaN()}));
        Tape tape;
        tape.Param(p);
      },
      "check-numerics: non-finite value in parameter 'bad'");
}

// The detector must also record the anomaly in the run log before dying:
// the death-test child opens a log, trips the check, and aborts; the
// parent then reads the child's flushed anomaly line back with the real
// parser and verifies it names op "Log".
TEST(CheckNumericsDeathTest, AnomalyEventNamesOpInRunLog) {
  const std::string log_path =
      testing::TempDir() + "/check_numerics_anomaly.jsonl";
  std::remove(log_path.c_str());
  EXPECT_DEATH(
      {
        ASSERT_TRUE(runlog::Open(log_path).ok());
        SetCheckNumerics(true);
        Tape tape;
        VarId zero = tape.Constant(Tensor::FromVector(1, 1, {0.0f}));
        tape.Log(zero);
      },
      "non-finite value produced by tape op Log");
  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open()) << "death-test child left no run log";
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = util::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const util::JsonValue& v = parsed.value();
    if (v.StringOr("event", "") != "anomaly") continue;
    found = true;
    EXPECT_EQ(v.StringOr("kind", ""), "nonfinite_value");
    EXPECT_EQ(v.StringOr("op", ""), "Log");
  }
  EXPECT_TRUE(found) << "no anomaly event in " << log_path;
  std::remove(log_path.c_str());
}

// Disabled is the default, and disabled runs tolerate non-finite values
// (the pre-existing behavior this feature must not change).
TEST(CheckNumericsTest, DisabledByDefaultAndTolerant) {
  ASSERT_FALSE(CheckNumericsEnabled());
  Tape tape;
  VarId zero = tape.Constant(Tensor::FromVector(1, 1, {0.0f}));
  VarId log0 = tape.Log(zero);
  EXPECT_TRUE(std::isinf(tape.val(log0).scalar()));
}

TEST(CheckNumericsTest, OpNamesAreRecorded) {
  Tape tape;
  VarId c = tape.Constant(Tensor::FromVector(1, 2, {1, 2}));
  EXPECT_STREQ(tape.op_name(c), "Constant");
  // Relu delegates to LeakyRelu, so the recorded op is the emitting one.
  EXPECT_STREQ(tape.op_name(tape.Relu(c)), "LeakyRelu");
  EXPECT_STREQ(tape.op_name(tape.Sigmoid(c)), "Sigmoid");
  EXPECT_STREQ(tape.op_name(tape.L2(c)), "L2");
}

}  // namespace
}  // namespace dgnn::ag
