// Parallel-vs-serial equivalence suite: every parallelized hot path must
// produce BIT-IDENTICAL results for any thread count, because chunk
// boundaries are a function of (range, grain) only and every output
// element keeps its serial accumulation order. Tolerance-based checks
// would hide scheduling-dependent numerics; these tests use exact memcmp
// on the raw float buffers.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/dgnn_model.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "train/evaluator.h"
#include "train/recommender.h"
#include "train/trainer.h"
#include "util/thread_pool.h"

namespace dgnn {
namespace {

// Thread counts under test: serial baseline, the smallest parallel pool,
// and an odd width that cannot divide the chunk counts evenly.
const int kThreadCounts[] = {1, 2, 7};

testing::AssertionResult BitIdentical(const ag::Tensor& a,
                                      const ag::Tensor& b) {
  if (!a.SameShape(b)) {
    return testing::AssertionFailure()
           << "shape mismatch: " << a.ShapeString() << " vs "
           << b.ShapeString();
  }
  if (std::memcmp(a.data(), b.data(),
                  sizeof(float) * static_cast<size_t>(a.size())) != 0) {
    return testing::AssertionFailure()
           << "tensors differ bitwise (max abs diff " << a.MaxAbsDiff(b)
           << ")";
  }
  return testing::AssertionSuccess();
}

data::Dataset MakeDataset() {
  return data::GenerateSynthetic(data::SyntheticConfig::Tiny());
}

core::DgnnConfig MakeConfig() {
  core::DgnnConfig c;
  c.embedding_dim = 16;
  c.num_memory_units = 4;
  return c;
}

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  ParallelEquivalenceTest() : saved_threads_(util::NumThreads()) {}
  ~ParallelEquivalenceTest() override { util::SetNumThreads(saved_threads_); }

  const int saved_threads_;
};

struct ForwardSnapshot {
  ag::Tensor users;
  ag::Tensor items;
};

ForwardSnapshot RunForward(const data::Dataset& ds, int threads) {
  util::SetNumThreads(threads);
  graph::HeteroGraph g(ds);
  core::DgnnModel model(g, MakeConfig());
  ag::Tape tape;
  models::ForwardResult fwd = model.Forward(tape, /*training=*/false);
  return {tape.val(fwd.users), tape.val(fwd.items)};
}

TEST_F(ParallelEquivalenceTest, DgnnForwardEmbeddingsBitIdentical) {
  data::Dataset ds = MakeDataset();
  const ForwardSnapshot serial = RunForward(ds, 1);
  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const ForwardSnapshot run = RunForward(ds, threads);
    EXPECT_TRUE(BitIdentical(run.users, serial.users));
    EXPECT_TRUE(BitIdentical(run.items, serial.items));
  }
}

struct EpochSnapshot {
  double loss = 0.0;
  std::vector<std::string> names;
  std::vector<ag::Tensor> values;
};

EpochSnapshot RunOneEpoch(const data::Dataset& ds, int threads) {
  util::SetNumThreads(threads);
  graph::HeteroGraph g(ds);
  core::DgnnModel model(g, MakeConfig());
  train::TrainConfig tc;
  tc.batch_size = 128;
  tc.seed = 123;
  train::Trainer trainer(&model, ds, tc);
  EpochSnapshot snap;
  snap.loss = trainer.TrainEpoch();
  for (const auto& p : model.params().params()) {
    snap.names.push_back(p->name);
    snap.values.push_back(p->value);
  }
  return snap;
}

TEST_F(ParallelEquivalenceTest, TrainerEpochParametersBitIdentical) {
  data::Dataset ds = MakeDataset();
  const EpochSnapshot serial = RunOneEpoch(ds, 1);
  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const EpochSnapshot run = RunOneEpoch(ds, threads);
    EXPECT_EQ(run.loss, serial.loss);
    ASSERT_EQ(run.names, serial.names);
    for (size_t i = 0; i < run.values.size(); ++i) {
      EXPECT_TRUE(BitIdentical(run.values[i], serial.values[i]))
          << "parameter " << run.names[i];
    }
  }
}

TEST_F(ParallelEquivalenceTest, EvaluatorRanksIdentical) {
  data::Dataset ds = MakeDataset();
  // Forward once serially; the ranking pass is what varies here.
  const ForwardSnapshot emb = RunForward(ds, 1);
  train::Evaluator evaluator(ds);
  util::SetNumThreads(1);
  const std::vector<int> serial = evaluator.Ranks(emb.users, emb.items);
  ASSERT_FALSE(serial.empty());
  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    util::SetNumThreads(threads);
    EXPECT_EQ(evaluator.Ranks(emb.users, emb.items), serial);
  }
}

TEST_F(ParallelEquivalenceTest, RecommenderTopKIdentical) {
  data::Dataset ds = MakeDataset();
  util::SetNumThreads(1);
  graph::HeteroGraph g(ds);
  core::DgnnModel model(g, MakeConfig());
  train::Recommender recommender(model, ds);
  const int k = 10;
  std::vector<std::vector<train::ScoredItem>> serial;
  for (int32_t u = 0; u < ds.num_users; ++u) {
    serial.push_back(recommender.TopK(u, k));
  }
  for (int threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    util::SetNumThreads(threads);
    for (int32_t u = 0; u < ds.num_users; ++u) {
      const auto top = recommender.TopK(u, k);
      ASSERT_EQ(top.size(), serial[static_cast<size_t>(u)].size());
      for (size_t i = 0; i < top.size(); ++i) {
        EXPECT_EQ(top[i].item, serial[static_cast<size_t>(u)][i].item)
            << "user " << u << " position " << i;
        // Bit-exact score, not just approximately equal.
        float a = top[i].score;
        float b = serial[static_cast<size_t>(u)][i].score;
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
            << "user " << u << " position " << i << ": " << a << " vs " << b;
      }
    }
    // SimilarUsers rides the same scan kernel; spot-check a few users.
    for (int32_t u : {0, 7, 31}) {
      util::SetNumThreads(1);
      const auto serial_sim = recommender.SimilarUsers(u, 5);
      util::SetNumThreads(threads);
      const auto sim = recommender.SimilarUsers(u, 5);
      ASSERT_EQ(sim.size(), serial_sim.size());
      for (size_t i = 0; i < sim.size(); ++i) {
        EXPECT_EQ(sim[i].item, serial_sim[i].item);
        EXPECT_EQ(sim[i].score, serial_sim[i].score);
      }
    }
  }
}

}  // namespace
}  // namespace dgnn
