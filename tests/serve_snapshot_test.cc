// Tests for the embedding snapshot format: build/write/read round-trips
// bit-identically, and every corruption mode — truncation at any point,
// bit flips (checksum), trailing garbage, duplicate sections — is
// rejected with an error instead of a half-built snapshot.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "serve/snapshot.h"
#include "train/recommender.h"
#include "util/failpoint.h"

namespace dgnn {
namespace {

using serve::ReadSnapshot;
using serve::Snapshot;
using serve::WriteSnapshot;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Re-stamps the trailing checksum so tampered files stay
// structurally-consistent and the deeper validation layer (not the
// checksum) must catch them.
std::string WithFixedChecksum(std::string bytes) {
  const size_t body = bytes.size() - sizeof(uint64_t);
  const uint64_t checksum =
      serve::internal::Fnv1a64(bytes.data(), body);
  std::memcpy(bytes.data() + body, &checksum, sizeof(uint64_t));
  return bytes;
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_),
        model_(graph_, 8, 5),
        recommender_(model_, dataset_),
        snapshot_(serve::BuildSnapshot(recommender_, dataset_, "BPR-MF",
                                       "unit-test")) {}

  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  models::BprMf model_;
  train::Recommender recommender_;
  Snapshot snapshot_;
};

TEST_F(SnapshotTest, BuildCapturesRecommenderAndDataset) {
  EXPECT_EQ(snapshot_.meta.num_users, dataset_.num_users);
  EXPECT_EQ(snapshot_.meta.num_items, dataset_.num_items);
  EXPECT_EQ(snapshot_.meta.model_name, "BPR-MF");
  EXPECT_EQ(snapshot_.meta.dataset_name, dataset_.name);
  EXPECT_EQ(snapshot_.meta.tag, "unit-test");
  EXPECT_EQ(snapshot_.users.MaxAbsDiff(recommender_.user_embeddings()),
            0.0f);
  EXPECT_EQ(snapshot_.items.MaxAbsDiff(recommender_.item_embeddings()),
            0.0f);
  // Popularity counts sum to the number of distinct train pairs.
  int64_t total = 0;
  for (int64_t c : snapshot_.item_counts) total += c;
  int64_t expected = 0;
  for (const auto& list : snapshot_.seen) {
    expected += static_cast<int64_t>(list.size());
  }
  EXPECT_EQ(total, expected);
  EXPECT_GT(total, 0);
}

TEST_F(SnapshotTest, RoundTripsBitIdentically) {
  const std::string path = TestPath("snap_roundtrip.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Snapshot& s = loaded.value();

  EXPECT_EQ(s.meta.model_name, snapshot_.meta.model_name);
  EXPECT_EQ(s.meta.dataset_name, snapshot_.meta.dataset_name);
  EXPECT_EQ(s.meta.tag, snapshot_.meta.tag);
  EXPECT_EQ(s.meta.num_users, snapshot_.meta.num_users);
  EXPECT_EQ(s.meta.num_items, snapshot_.meta.num_items);
  EXPECT_EQ(s.meta.embedding_dim, snapshot_.meta.embedding_dim);

  ASSERT_TRUE(s.users.SameShape(snapshot_.users));
  ASSERT_TRUE(s.items.SameShape(snapshot_.items));
  // Bit-identical embeddings, not merely close.
  EXPECT_EQ(std::memcmp(s.users.data(), snapshot_.users.data(),
                        static_cast<size_t>(s.users.size()) *
                            sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(s.items.data(), snapshot_.items.data(),
                        static_cast<size_t>(s.items.size()) *
                            sizeof(float)),
            0);
  EXPECT_EQ(s.seen, snapshot_.seen);
  EXPECT_EQ(s.social, snapshot_.social);
  EXPECT_EQ(s.item_counts, snapshot_.item_counts);
}

TEST_F(SnapshotTest, WriteLeavesNoTempFile) {
  const std::string path = TestPath("snap_notmp.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.is_open());
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshot(TestPath("does_not_exist.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(SnapshotTest, RejectsBadMagic) {
  const std::string path = TestPath("snap_badmagic.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto loaded = ReadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsTruncationAtEveryRegion) {
  const std::string path = TestPath("snap_full.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  const std::string bytes = ReadFileBytes(path);
  // Representative cut points: inside the magic, the section table, the
  // middle of the payload, and just shy of the checksum.
  const std::vector<size_t> cuts = {
      0, 4, sizeof(uint64_t) + 2, bytes.size() / 3, bytes.size() / 2,
      bytes.size() - sizeof(uint64_t), bytes.size() - 1};
  const std::string trunc_path = TestPath("snap_trunc.bin");
  for (size_t cut : cuts) {
    WriteFileBytes(trunc_path, bytes.substr(0, cut));
    auto loaded = ReadSnapshot(trunc_path);
    EXPECT_FALSE(loaded.ok()) << "accepted truncation to " << cut
                              << " bytes";
  }
}

TEST_F(SnapshotTest, RejectsBitFlipViaChecksum) {
  const std::string path = TestPath("snap_bitflip.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip one bit in the middle of the payload (embedding bytes).
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  WriteFileBytes(path, bytes);
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsTrailingGarbage) {
  const std::string path = TestPath("snap_trailing.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);
  // Plain appended garbage breaks the checksum...
  WriteFileBytes(path, bytes + "extra garbage");
  EXPECT_FALSE(ReadSnapshot(path).ok());
  // ...and garbage spliced in before a re-stamped checksum must still be
  // rejected by the structural trailing-bytes check.
  std::string spliced = bytes.substr(0, bytes.size() - sizeof(uint64_t)) +
                        std::string("XXXXXXXX") +
                        bytes.substr(bytes.size() - sizeof(uint64_t));
  WriteFileBytes(path, WithFixedChecksum(spliced));
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsDuplicateSection) {
  const std::string path = TestPath("snap_dup.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);

  // Locate the first section (the meta record, directly after magic +
  // section count) and append a byte-for-byte copy of it, bumping the
  // section count and re-stamping the checksum — a structurally valid
  // file whose only defect is the duplicate record.
  const size_t table_pos = 8;  // section count, after 8-byte magic
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + table_pos, sizeof(uint32_t));
  ASSERT_EQ(section_count, 6u);
  const size_t first_header = table_pos + sizeof(uint32_t);
  uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes,
              bytes.data() + first_header + sizeof(uint32_t),
              sizeof(uint64_t));
  const size_t first_section_size =
      sizeof(uint32_t) + sizeof(uint64_t) + payload_bytes;
  const std::string first_section =
      bytes.substr(first_header, first_section_size);

  std::string dup = bytes.substr(0, bytes.size() - sizeof(uint64_t)) +
                    first_section +
                    bytes.substr(bytes.size() - sizeof(uint64_t));
  const uint32_t new_count = section_count + 1;
  std::memcpy(dup.data() + table_pos, &new_count, sizeof(uint32_t));
  WriteFileBytes(path, WithFixedChecksum(dup));

  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsMetaPayloadDisagreement) {
  // Shrink the user count in the meta record: every payload stays
  // well-formed but the cross-section consistency check must fire.
  Snapshot tampered = snapshot_;
  tampered.meta.num_users -= 1;
  const std::string path = TestPath("snap_meta_mismatch.bin");
  ASSERT_TRUE(WriteSnapshot(tampered, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsOutOfRangeIds) {
  Snapshot tampered = snapshot_;
  tampered.seen[0] = {0, dataset_.num_items + 5};  // beyond the catalog
  const std::string path = TestPath("snap_bad_ids.bin");
  ASSERT_TRUE(WriteSnapshot(tampered, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("beyond catalog"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, AtomicWriteKeepsPreviousSnapshotOnOverwrite) {
  const std::string path = TestPath("snap_overwrite.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  Snapshot second = snapshot_;
  second.meta.tag = "v2";
  ASSERT_TRUE(WriteSnapshot(second, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().meta.tag, "v2");
}

// ----- failpoint-driven I/O faults -----------------------------------------
// The corruption tests above hand-craft bytes; these inject faults at the
// real I/O boundaries (util/failpoint.h) and check the atomic-write /
// retry machinery holds the same guarantees.

class SnapshotFailpointTest : public SnapshotTest {
 protected:
  void SetUp() override { failpoint::Clear(); }
  void TearDown() override { failpoint::Clear(); }
};

TEST_F(SnapshotFailpointTest, InjectedWriteFailureKeepsPreviousSnapshot) {
  const std::string path = TestPath("snap_fp_write.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  Snapshot second = snapshot_;
  second.meta.tag = "v2";
  ASSERT_TRUE(failpoint::Configure("snapshot.write=error").ok());
  util::Status s = WriteSnapshot(second, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  failpoint::Clear();
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().meta.tag, "unit-test") << "old snapshot lost";
}

TEST_F(SnapshotFailpointTest, TransientFsWriteFaultIsRetriedToSuccess) {
  const std::string path = TestPath("snap_fp_once.bin");
  ASSERT_TRUE(failpoint::Configure("fs.write=once").ok());
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok())
      << "one transient write fault must be absorbed by the retry";
  EXPECT_EQ(failpoint::TriggerCount("fs.write"), 1);
  failpoint::Clear();
  EXPECT_TRUE(ReadSnapshot(path).ok());
}

TEST_F(SnapshotFailpointTest, PersistentFsWriteFaultLeavesNoTempFile) {
  const std::string path = TestPath("snap_fp_persistent.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  ASSERT_TRUE(failpoint::Configure("fs.write=error").ok());
  Snapshot second = snapshot_;
  second.meta.tag = "v2";
  util::Status s = WriteSnapshot(second, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  failpoint::Clear();
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.is_open()) << "failed write left its temp file behind";
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().meta.tag, "unit-test");
}

TEST_F(SnapshotFailpointTest, InjectedRenameFaultKeepsPreviousSnapshot) {
  const std::string path = TestPath("snap_fp_rename.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  ASSERT_TRUE(failpoint::Configure("fs.rename=error").ok());
  Snapshot second = snapshot_;
  second.meta.tag = "v2";
  EXPECT_FALSE(WriteSnapshot(second, path).ok());
  failpoint::Clear();
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().meta.tag, "unit-test");
}

TEST_F(SnapshotFailpointTest, InjectedReadFailureSurfacesAsInternal) {
  const std::string path = TestPath("snap_fp_read.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  ASSERT_TRUE(failpoint::Configure("snapshot.read=error").ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInternal);
  failpoint::Clear();
  EXPECT_TRUE(ReadSnapshot(path).ok()) << "fault did not clear";
}

TEST_F(SnapshotFailpointTest, TransientFsReadFaultIsRetriedToSuccess) {
  const std::string path = TestPath("snap_fp_read_once.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  ASSERT_TRUE(failpoint::Configure("fs.read=once").ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(failpoint::TriggerCount("fs.read"), 1);
}

}  // namespace
}  // namespace dgnn
