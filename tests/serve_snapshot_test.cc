// Tests for the embedding snapshot format: build/write/read round-trips
// bit-identically, and every corruption mode — truncation at any point,
// bit flips (checksum), trailing garbage, duplicate sections — is
// rejected with an error instead of a half-built snapshot.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "serve/snapshot.h"
#include "train/recommender.h"
#include "util/failpoint.h"

namespace dgnn {
namespace {

using serve::ReadSnapshot;
using serve::Snapshot;
using serve::WriteSnapshot;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Re-stamps the trailing checksum so tampered files stay
// structurally-consistent and the deeper validation layer (not the
// checksum) must catch them.
std::string WithFixedChecksum(std::string bytes) {
  const size_t body = bytes.size() - sizeof(uint64_t);
  const uint64_t checksum =
      serve::internal::Fnv1a64(bytes.data(), body);
  std::memcpy(bytes.data() + body, &checksum, sizeof(uint64_t));
  return bytes;
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_),
        model_(graph_, 8, 5),
        recommender_(model_, dataset_),
        snapshot_(serve::BuildSnapshot(recommender_, dataset_, "BPR-MF",
                                       "unit-test")) {}

  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  models::BprMf model_;
  train::Recommender recommender_;
  Snapshot snapshot_;
};

TEST_F(SnapshotTest, BuildCapturesRecommenderAndDataset) {
  EXPECT_EQ(snapshot_.meta.num_users, dataset_.num_users);
  EXPECT_EQ(snapshot_.meta.num_items, dataset_.num_items);
  EXPECT_EQ(snapshot_.meta.model_name, "BPR-MF");
  EXPECT_EQ(snapshot_.meta.dataset_name, dataset_.name);
  EXPECT_EQ(snapshot_.meta.tag, "unit-test");
  EXPECT_EQ(snapshot_.users.MaxAbsDiff(recommender_.user_embeddings()),
            0.0f);
  EXPECT_EQ(snapshot_.items.MaxAbsDiff(recommender_.item_embeddings()),
            0.0f);
  // Popularity counts sum to the number of distinct train pairs.
  int64_t total = 0;
  for (int64_t c : snapshot_.item_counts) total += c;
  int64_t expected = 0;
  for (const auto& list : snapshot_.seen) {
    expected += static_cast<int64_t>(list.size());
  }
  EXPECT_EQ(total, expected);
  EXPECT_GT(total, 0);
}

TEST_F(SnapshotTest, RoundTripsBitIdentically) {
  const std::string path = TestPath("snap_roundtrip.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Snapshot& s = loaded.value();

  EXPECT_EQ(s.meta.model_name, snapshot_.meta.model_name);
  EXPECT_EQ(s.meta.dataset_name, snapshot_.meta.dataset_name);
  EXPECT_EQ(s.meta.tag, snapshot_.meta.tag);
  EXPECT_EQ(s.meta.num_users, snapshot_.meta.num_users);
  EXPECT_EQ(s.meta.num_items, snapshot_.meta.num_items);
  EXPECT_EQ(s.meta.embedding_dim, snapshot_.meta.embedding_dim);

  ASSERT_TRUE(s.users.SameShape(snapshot_.users));
  ASSERT_TRUE(s.items.SameShape(snapshot_.items));
  // Bit-identical embeddings, not merely close.
  EXPECT_EQ(std::memcmp(s.users.data(), snapshot_.users.data(),
                        static_cast<size_t>(s.users.size()) *
                            sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(s.items.data(), snapshot_.items.data(),
                        static_cast<size_t>(s.items.size()) *
                            sizeof(float)),
            0);
  EXPECT_EQ(s.seen, snapshot_.seen);
  EXPECT_EQ(s.social, snapshot_.social);
  EXPECT_EQ(s.item_counts, snapshot_.item_counts);
}

TEST_F(SnapshotTest, WriteLeavesNoTempFile) {
  const std::string path = TestPath("snap_notmp.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.is_open());
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshot(TestPath("does_not_exist.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(SnapshotTest, RejectsBadMagic) {
  const std::string path = TestPath("snap_badmagic.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto loaded = ReadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsTruncationAtEveryRegion) {
  const std::string path = TestPath("snap_full.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  const std::string bytes = ReadFileBytes(path);
  // Representative cut points: inside the magic, the section table, the
  // middle of the payload, and just shy of the checksum.
  const std::vector<size_t> cuts = {
      0, 4, sizeof(uint64_t) + 2, bytes.size() / 3, bytes.size() / 2,
      bytes.size() - sizeof(uint64_t), bytes.size() - 1};
  const std::string trunc_path = TestPath("snap_trunc.bin");
  for (size_t cut : cuts) {
    WriteFileBytes(trunc_path, bytes.substr(0, cut));
    auto loaded = ReadSnapshot(trunc_path);
    EXPECT_FALSE(loaded.ok()) << "accepted truncation to " << cut
                              << " bytes";
  }
}

TEST_F(SnapshotTest, RejectsBitFlipViaChecksum) {
  const std::string path = TestPath("snap_bitflip.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip one bit in the middle of the payload (embedding bytes).
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  WriteFileBytes(path, bytes);
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsTrailingGarbage) {
  const std::string path = TestPath("snap_trailing.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);
  // Plain appended garbage breaks the checksum...
  WriteFileBytes(path, bytes + "extra garbage");
  EXPECT_FALSE(ReadSnapshot(path).ok());
  // ...and garbage spliced in before a re-stamped checksum must still be
  // rejected by the structural trailing-bytes check.
  std::string spliced = bytes.substr(0, bytes.size() - sizeof(uint64_t)) +
                        std::string("XXXXXXXX") +
                        bytes.substr(bytes.size() - sizeof(uint64_t));
  WriteFileBytes(path, WithFixedChecksum(spliced));
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsDuplicateSection) {
  const std::string path = TestPath("snap_dup.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);

  // Locate the first section (the meta record, directly after magic +
  // section count) and append a byte-for-byte copy of it, bumping the
  // section count and re-stamping the checksum — a structurally valid
  // file whose only defect is the duplicate record.
  const size_t table_pos = 8;  // section count, after 8-byte magic
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + table_pos, sizeof(uint32_t));
  ASSERT_EQ(section_count, 6u);
  const size_t first_header = table_pos + sizeof(uint32_t);
  uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes,
              bytes.data() + first_header + sizeof(uint32_t),
              sizeof(uint64_t));
  const size_t first_section_size =
      sizeof(uint32_t) + sizeof(uint64_t) + payload_bytes;
  const std::string first_section =
      bytes.substr(first_header, first_section_size);

  std::string dup = bytes.substr(0, bytes.size() - sizeof(uint64_t)) +
                    first_section +
                    bytes.substr(bytes.size() - sizeof(uint64_t));
  const uint32_t new_count = section_count + 1;
  std::memcpy(dup.data() + table_pos, &new_count, sizeof(uint32_t));
  WriteFileBytes(path, WithFixedChecksum(dup));

  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, RejectsMetaPayloadDisagreement) {
  // Shrink the user count in the meta record: every payload stays
  // well-formed but the cross-section consistency check must fire.
  Snapshot tampered = snapshot_;
  tampered.meta.num_users -= 1;
  const std::string path = TestPath("snap_meta_mismatch.bin");
  ASSERT_TRUE(WriteSnapshot(tampered, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsOutOfRangeIds) {
  Snapshot tampered = snapshot_;
  tampered.seen[0] = {0, dataset_.num_items + 5};  // beyond the catalog
  const std::string path = TestPath("snap_bad_ids.bin");
  ASSERT_TRUE(WriteSnapshot(tampered, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("beyond catalog"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotTest, AtomicWriteKeepsPreviousSnapshotOnOverwrite) {
  const std::string path = TestPath("snap_overwrite.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  Snapshot second = snapshot_;
  second.meta.tag = "v2";
  ASSERT_TRUE(WriteSnapshot(second, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().meta.tag, "v2");
}

// ----- failpoint-driven I/O faults -----------------------------------------
// The corruption tests above hand-craft bytes; these inject faults at the
// real I/O boundaries (util/failpoint.h) and check the atomic-write /
// retry machinery holds the same guarantees.

class SnapshotFailpointTest : public SnapshotTest {
 protected:
  void SetUp() override { failpoint::Clear(); }
  void TearDown() override { failpoint::Clear(); }
};

TEST_F(SnapshotFailpointTest, InjectedWriteFailureKeepsPreviousSnapshot) {
  const std::string path = TestPath("snap_fp_write.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  Snapshot second = snapshot_;
  second.meta.tag = "v2";
  ASSERT_TRUE(failpoint::Configure("snapshot.write=error").ok());
  util::Status s = WriteSnapshot(second, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  failpoint::Clear();
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().meta.tag, "unit-test") << "old snapshot lost";
}

TEST_F(SnapshotFailpointTest, TransientFsWriteFaultIsRetriedToSuccess) {
  const std::string path = TestPath("snap_fp_once.bin");
  ASSERT_TRUE(failpoint::Configure("fs.write=once").ok());
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok())
      << "one transient write fault must be absorbed by the retry";
  EXPECT_EQ(failpoint::TriggerCount("fs.write"), 1);
  failpoint::Clear();
  EXPECT_TRUE(ReadSnapshot(path).ok());
}

TEST_F(SnapshotFailpointTest, PersistentFsWriteFaultLeavesNoTempFile) {
  const std::string path = TestPath("snap_fp_persistent.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  ASSERT_TRUE(failpoint::Configure("fs.write=error").ok());
  Snapshot second = snapshot_;
  second.meta.tag = "v2";
  util::Status s = WriteSnapshot(second, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  failpoint::Clear();
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.is_open()) << "failed write left its temp file behind";
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().meta.tag, "unit-test");
}

TEST_F(SnapshotFailpointTest, InjectedRenameFaultKeepsPreviousSnapshot) {
  const std::string path = TestPath("snap_fp_rename.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  ASSERT_TRUE(failpoint::Configure("fs.rename=error").ok());
  Snapshot second = snapshot_;
  second.meta.tag = "v2";
  EXPECT_FALSE(WriteSnapshot(second, path).ok());
  failpoint::Clear();
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().meta.tag, "unit-test");
}

TEST_F(SnapshotFailpointTest, InjectedReadFailureSurfacesAsInternal) {
  const std::string path = TestPath("snap_fp_read.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  ASSERT_TRUE(failpoint::Configure("snapshot.read=error").ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInternal);
  failpoint::Clear();
  EXPECT_TRUE(ReadSnapshot(path).ok()) << "fault did not clear";
}

TEST_F(SnapshotFailpointTest, TransientFsReadFaultIsRetriedToSuccess) {
  const std::string path = TestPath("snap_fp_read_once.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  ASSERT_TRUE(failpoint::Configure("fs.read=once").ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(failpoint::TriggerCount("fs.read"), 1);
}

// ----- quantized sections and the IVF index --------------------------------
// The fp32 writer must stay byte-compatible with seed-era snapshots;
// quantized / indexed snapshots round-trip, and every new section id is
// covered by the same corruption matrix as the originals.

struct SectionSpan {
  uint32_t id = 0;
  size_t payload_pos = 0;  // offset of the payload within the file
  uint64_t payload_bytes = 0;
};

// Walks the section table of a well-formed snapshot file.
std::vector<SectionSpan> SectionTable(const std::string& bytes) {
  std::vector<SectionSpan> table;
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 8, sizeof(uint32_t));
  size_t pos = 8 + sizeof(uint32_t);
  for (uint32_t i = 0; i < count; ++i) {
    SectionSpan s;
    std::memcpy(&s.id, bytes.data() + pos, sizeof(uint32_t));
    std::memcpy(&s.payload_bytes, bytes.data() + pos + sizeof(uint32_t),
                sizeof(uint64_t));
    s.payload_pos = pos + sizeof(uint32_t) + sizeof(uint64_t);
    table.push_back(s);
    pos = s.payload_pos + s.payload_bytes;
  }
  return table;
}

class QuantSnapshotTest : public SnapshotTest {};

TEST_F(QuantSnapshotTest, Fp32WriterKeepsSeedSectionLayout) {
  // Seed-era compatibility: a purely-fp32 snapshot still writes exactly
  // six sections in the original order — no quant or ivf ids leak in, so
  // old readers (and old files against this reader) keep working.
  const std::string path = TestPath("snap_seed_layout.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  const std::string bytes = ReadFileBytes(path);
  const std::vector<SectionSpan> table = SectionTable(bytes);
  ASSERT_EQ(table.size(), 6u);
  for (uint32_t i = 0; i < 6; ++i) EXPECT_EQ(table[i].id, i + 1);
  // And the writer is deterministic: same snapshot, same bytes.
  const std::string path2 = TestPath("snap_seed_layout2.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path2).ok());
  EXPECT_EQ(ReadFileBytes(path2), bytes);
}

TEST_F(QuantSnapshotTest, QuantizedRoundTrip) {
  for (quant::Codec codec : {quant::Codec::kInt8, quant::Codec::kFp16}) {
    Snapshot snap = snapshot_;
    ASSERT_TRUE(serve::QuantizeSnapshot(&snap, codec).ok());
    EXPECT_TRUE(snap.users.empty());
    EXPECT_TRUE(snap.items.empty());
    ASSERT_TRUE(snap.has_quant_users());
    ASSERT_TRUE(snap.has_quant_items());
    const std::string path =
        TestPath(std::string("snap_q_") + quant::CodecName(codec) + ".bin");
    ASSERT_TRUE(WriteSnapshot(snap, path).ok());
    auto loaded = ReadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const Snapshot& s = loaded.value();
    EXPECT_EQ(s.quant_users.codec, codec);
    EXPECT_EQ(s.quant_users.rows, snap.quant_users.rows);
    EXPECT_EQ(s.quant_users.q8, snap.quant_users.q8);
    EXPECT_EQ(s.quant_users.scales, snap.quant_users.scales);
    EXPECT_EQ(s.quant_users.f16, snap.quant_users.f16);
    EXPECT_EQ(s.quant_items.q8, snap.quant_items.q8);
    EXPECT_EQ(s.quant_items.f16, snap.quant_items.f16);
    EXPECT_EQ(s.seen, snapshot_.seen);
    EXPECT_EQ(s.item_counts, snapshot_.item_counts);
    // Quant sections replace the dense slots — still six sections.
    EXPECT_EQ(SectionTable(ReadFileBytes(path)).size(), 6u);
  }
}

TEST_F(QuantSnapshotTest, QuantizeTwiceFails) {
  Snapshot snap = snapshot_;
  ASSERT_TRUE(serve::QuantizeSnapshot(&snap, quant::Codec::kInt8).ok());
  EXPECT_FALSE(serve::QuantizeSnapshot(&snap, quant::Codec::kInt8).ok());
  // And the index must be built from fp32 rows, i.e. before quantizing.
  EXPECT_FALSE(serve::BuildSnapshotIndex(&snap, index::IvfConfig()).ok());
}

TEST_F(QuantSnapshotTest, IndexedQuantizedRoundTrip) {
  Snapshot snap = snapshot_;
  index::IvfConfig cfg;
  cfg.nlist = 8;
  ASSERT_TRUE(serve::BuildSnapshotIndex(&snap, cfg).ok());
  ASSERT_TRUE(serve::QuantizeSnapshot(&snap, quant::Codec::kInt8).ok());
  ASSERT_FALSE(snap.ivf.empty());
  const std::string path = TestPath("snap_q_ivf.bin");
  ASSERT_TRUE(WriteSnapshot(snap, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Snapshot& s = loaded.value();
  EXPECT_EQ(s.ivf.nlist, snap.ivf.nlist);
  EXPECT_EQ(s.ivf.centroids, snap.ivf.centroids);
  EXPECT_EQ(s.ivf.list_offsets, snap.ivf.list_offsets);
  EXPECT_EQ(s.ivf.list_items, snap.ivf.list_items);
  EXPECT_EQ(s.quant_items.q8, snap.quant_items.q8);
  // Seven sections: the six slots plus the appended ivf record.
  const std::vector<SectionSpan> table =
      SectionTable(ReadFileBytes(path));
  ASSERT_EQ(table.size(), 7u);
  EXPECT_EQ(table.back().id, 9u);  // kSectionIvf
}

TEST_F(QuantSnapshotTest, ResidentBytesShrinkUnderQuantization) {
  const int64_t fp32 = serve::SnapshotResidentBytes(snapshot_);
  Snapshot snap = snapshot_;
  ASSERT_TRUE(serve::QuantizeSnapshot(&snap, quant::Codec::kInt8).ok());
  const int64_t q8 = serve::SnapshotResidentBytes(snap);
  EXPECT_LT(q8, fp32);
  // Embedding payload shrinks ~4x; the rest of the snapshot (seen lists,
  // social, counts) is shared, so just require a strict drop plus the
  // exact embedding arithmetic.
  const int64_t dense_bytes =
      (snapshot_.users.size() + snapshot_.items.size()) *
      static_cast<int64_t>(sizeof(float));
  const int64_t quant_bytes =
      snap.quant_users.ResidentBytes() + snap.quant_items.ResidentBytes();
  EXPECT_EQ(fp32 - q8, dense_bytes - quant_bytes);
}

TEST_F(QuantSnapshotTest, RejectsBothDenseAndQuantUsers) {
  // Splice a quant_users section into an fp32 snapshot: structurally
  // valid (checksum re-stamped), semantically contradictory.
  Snapshot qsnap = snapshot_;
  ASSERT_TRUE(serve::QuantizeSnapshot(&qsnap, quant::Codec::kInt8).ok());
  const std::string qpath = TestPath("snap_conflict_src.bin");
  ASSERT_TRUE(WriteSnapshot(qsnap, qpath).ok());
  const std::string qbytes = ReadFileBytes(qpath);
  const std::vector<SectionSpan> qtable = SectionTable(qbytes);
  const SectionSpan* quant_users = nullptr;
  for (const SectionSpan& s : qtable) {
    if (s.id == 7) quant_users = &s;  // kSectionQuantUsers
  }
  ASSERT_NE(quant_users, nullptr);
  const std::string record = qbytes.substr(
      quant_users->payload_pos - sizeof(uint32_t) - sizeof(uint64_t),
      sizeof(uint32_t) + sizeof(uint64_t) + quant_users->payload_bytes);

  const std::string path = TestPath("snap_conflict.bin");
  ASSERT_TRUE(WriteSnapshot(snapshot_, path).ok());
  std::string bytes = ReadFileBytes(path);
  std::string merged = bytes.substr(0, bytes.size() - sizeof(uint64_t)) +
                       record +
                       bytes.substr(bytes.size() - sizeof(uint64_t));
  uint32_t count = 0;
  std::memcpy(&count, merged.data() + 8, sizeof(uint32_t));
  ++count;
  std::memcpy(merged.data() + 8, &count, sizeof(uint32_t));
  WriteFileBytes(path, WithFixedChecksum(merged));

  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("both"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(QuantSnapshotTest, QuantizedFileCorruptionMatrix) {
  Snapshot snap = snapshot_;
  index::IvfConfig cfg;
  cfg.nlist = 6;
  ASSERT_TRUE(serve::BuildSnapshotIndex(&snap, cfg).ok());
  ASSERT_TRUE(serve::QuantizeSnapshot(&snap, quant::Codec::kInt8).ok());
  const std::string path = TestPath("snap_q_corrupt_src.bin");
  ASSERT_TRUE(WriteSnapshot(snap, path).ok());
  const std::string bytes = ReadFileBytes(path);
  const std::vector<SectionSpan> table = SectionTable(bytes);
  const SectionSpan* quant_items = nullptr;
  const SectionSpan* ivf = nullptr;
  for (const SectionSpan& s : table) {
    if (s.id == 8) quant_items = &s;
    if (s.id == 9) ivf = &s;
  }
  ASSERT_NE(quant_items, nullptr);
  ASSERT_NE(ivf, nullptr);
  const std::string target = TestPath("snap_q_corrupt.bin");

  // Truncation inside the quant payload and inside the ivf payload.
  for (size_t cut : {quant_items->payload_pos + 3,
                     ivf->payload_pos + ivf->payload_bytes / 2}) {
    WriteFileBytes(target, bytes.substr(0, cut));
    EXPECT_FALSE(ReadSnapshot(target).ok()) << "cut=" << cut;
  }

  // Bit flip inside the quant payload -> checksum mismatch.
  {
    std::string bad = bytes;
    bad[quant_items->payload_pos + quant_items->payload_bytes / 2] ^= 1;
    WriteFileBytes(target, bad);
    auto loaded = ReadSnapshot(target);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("checksum"),
              std::string::npos);
  }

  // Invalid codec byte with a re-stamped checksum -> the structural
  // ParseQuant validation must fire, not the checksum.
  {
    std::string bad = bytes;
    bad[quant_items->payload_pos] = 0x7f;
    WriteFileBytes(target, WithFixedChecksum(bad));
    auto loaded = ReadSnapshot(target);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("codec"), std::string::npos)
        << loaded.status().ToString();
  }

  // Negative nlist in the ivf payload with a re-stamped checksum -> the
  // index's own parser rejects it.
  {
    std::string bad = bytes;
    const int32_t neg = -1;
    std::memcpy(bad.data() + ivf->payload_pos, &neg, sizeof(neg));
    WriteFileBytes(target, WithFixedChecksum(bad));
    EXPECT_FALSE(ReadSnapshot(target).ok());
  }

  // Duplicate ivf section with a bumped count and re-stamped checksum.
  {
    const std::string record = bytes.substr(
        ivf->payload_pos - sizeof(uint32_t) - sizeof(uint64_t),
        sizeof(uint32_t) + sizeof(uint64_t) + ivf->payload_bytes);
    std::string dup = bytes.substr(0, bytes.size() - sizeof(uint64_t)) +
                      record +
                      bytes.substr(bytes.size() - sizeof(uint64_t));
    uint32_t count = 0;
    std::memcpy(&count, dup.data() + 8, sizeof(uint32_t));
    ++count;
    std::memcpy(dup.data() + 8, &count, sizeof(uint32_t));
    WriteFileBytes(target, WithFixedChecksum(dup));
    auto loaded = ReadSnapshot(target);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("duplicate"),
              std::string::npos);
  }
}

TEST_F(QuantSnapshotTest, InspectReportsSectionsAndChecksum) {
  Snapshot snap = snapshot_;
  index::IvfConfig cfg;
  cfg.nlist = 5;
  ASSERT_TRUE(serve::BuildSnapshotIndex(&snap, cfg).ok());
  ASSERT_TRUE(serve::QuantizeSnapshot(&snap, quant::Codec::kFp16).ok());
  const std::string path = TestPath("snap_inspect.bin");
  ASSERT_TRUE(WriteSnapshot(snap, path).ok());

  auto info = serve::InspectSnapshotFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info.value().checksum_ok);
  EXPECT_EQ(info.value().stored_checksum, info.value().computed_checksum);
  ASSERT_EQ(info.value().sections.size(), 7u);
  std::vector<std::string> names;
  for (const auto& s : info.value().sections) names.push_back(s.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "meta", "quant_users", "quant_items", "seen",
                       "social", "item_counts", "ivf"}));
  EXPECT_NE(info.value().meta_json.find("num_users"), std::string::npos);

  // A bit flip keeps the table readable but flags the checksum.
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] ^= 1;
  WriteFileBytes(path, bytes);
  auto flipped = serve::InspectSnapshotFile(path);
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  EXPECT_FALSE(flipped.value().checksum_ok);
  EXPECT_EQ(flipped.value().sections.size(), 7u);

  // Structurally-not-a-snapshot files are an error, not a report.
  const std::string garbage = TestPath("snap_inspect_garbage.bin");
  WriteFileBytes(garbage, "not a snapshot at all");
  EXPECT_FALSE(serve::InspectSnapshotFile(garbage).ok());
}

}  // namespace
}  // namespace dgnn
