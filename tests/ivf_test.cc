// IVF retrieval index tests: deterministic builds, exactly-once list
// coverage, serialize/parse round trips with corruption rejection, and
// the end-to-end exactness guarantee — probing every list with a
// catalog-sized rerank must reproduce brute-force top-k bit-for-bit.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ag/tensor.h"
#include "index/ivf.h"
#include "kernels/kernels.h"
#include "quant/quant.h"
#include "serve/ranking.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dgnn {
namespace {

class IvfTest : public ::testing::Test {
 protected:
  IvfTest()
      : saved_threads_(util::NumThreads()),
        saved_det_(kernels::Deterministic()) {}
  ~IvfTest() override {
    util::SetNumThreads(saved_threads_);
    kernels::SetDeterministic(saved_det_);
    kernels::ResetIsaFromEnv();
  }

  const int saved_threads_;
  const bool saved_det_;
};

std::vector<float> RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (float& x : m) x = rng.UniformFloat(-1.0f, 1.0f);
  return m;
}

index::IvfConfig SmallConfig(int32_t nlist) {
  index::IvfConfig cfg;
  cfg.nlist = nlist;
  cfg.iterations = 4;
  cfg.seed = 42;
  return cfg;
}

TEST_F(IvfTest, CoversEveryRowExactlyOnce) {
  const int64_t rows = 500, cols = 12;
  const std::vector<float> data = RandomMatrix(rows, cols, 1);
  index::IvfIndex idx =
      index::BuildIvfIndex(data.data(), rows, cols, SmallConfig(8));
  ASSERT_EQ(idx.nlist, 8);
  ASSERT_EQ(idx.dim, cols);
  ASSERT_EQ(idx.list_offsets.size(), static_cast<size_t>(idx.nlist + 1));
  EXPECT_EQ(idx.list_offsets.front(), 0);
  EXPECT_EQ(idx.list_offsets.back(), rows);
  EXPECT_TRUE(std::is_sorted(idx.list_offsets.begin(),
                             idx.list_offsets.end()));
  std::set<int32_t> seen_ids(idx.list_items.begin(), idx.list_items.end());
  EXPECT_EQ(seen_ids.size(), static_cast<size_t>(rows));
  EXPECT_EQ(*seen_ids.begin(), 0);
  EXPECT_EQ(*seen_ids.rbegin(), static_cast<int32_t>(rows - 1));
  EXPECT_TRUE(index::ValidateIvfIndex(idx, rows, cols).ok());
}

TEST_F(IvfTest, BuildIsDeterministicAcrossThreadCounts) {
  const int64_t rows = 400, cols = 8;
  const std::vector<float> data = RandomMatrix(rows, cols, 2);
  util::SetNumThreads(1);
  index::IvfIndex a =
      index::BuildIvfIndex(data.data(), rows, cols, SmallConfig(7));
  util::SetNumThreads(7);
  index::IvfIndex b =
      index::BuildIvfIndex(data.data(), rows, cols, SmallConfig(7));
  std::string sa, sb;
  a.Serialize(&sa);
  b.Serialize(&sb);
  EXPECT_EQ(sa, sb);
}

TEST_F(IvfTest, DefaultNlistIsSqrtRows) {
  const int64_t rows = 256, cols = 4;
  const std::vector<float> data = RandomMatrix(rows, cols, 3);
  index::IvfConfig cfg;  // nlist <= 0 -> round(sqrt(rows))
  cfg.iterations = 2;
  index::IvfIndex idx = index::BuildIvfIndex(data.data(), rows, cols, cfg);
  EXPECT_EQ(idx.nlist, 16);
  // And never more clusters than rows.
  index::IvfConfig big = SmallConfig(64);
  index::IvfIndex tiny = index::BuildIvfIndex(data.data(), 10, cols, big);
  EXPECT_LE(tiny.nlist, 10);
  EXPECT_TRUE(index::ValidateIvfIndex(tiny, 10, cols).ok());
}

TEST_F(IvfTest, SerializeParseRoundTrip) {
  const int64_t rows = 300, cols = 16;
  const std::vector<float> data = RandomMatrix(rows, cols, 4);
  index::IvfIndex idx =
      index::BuildIvfIndex(data.data(), rows, cols, SmallConfig(6));
  std::string bytes;
  idx.Serialize(&bytes);
  auto parsed = index::ParseIvfIndex(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const index::IvfIndex& p = parsed.value();
  EXPECT_EQ(p.nlist, idx.nlist);
  EXPECT_EQ(p.dim, idx.dim);
  EXPECT_EQ(p.centroids, idx.centroids);
  EXPECT_EQ(p.half_sq_norms, idx.half_sq_norms);
  EXPECT_EQ(p.list_offsets, idx.list_offsets);
  EXPECT_EQ(p.list_items, idx.list_items);
  EXPECT_TRUE(index::ValidateIvfIndex(p, rows, cols).ok());
  // Re-serializing the parsed index reproduces the same bytes.
  std::string again;
  p.Serialize(&again);
  EXPECT_EQ(again, bytes);
}

TEST_F(IvfTest, ParseRejectsCorruption) {
  const int64_t rows = 200, cols = 8;
  const std::vector<float> data = RandomMatrix(rows, cols, 5);
  index::IvfIndex idx =
      index::BuildIvfIndex(data.data(), rows, cols, SmallConfig(5));
  std::string bytes;
  idx.Serialize(&bytes);

  // Truncation at several depths.
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(index::ParseIvfIndex(bytes.data(), cut).ok())
        << "cut=" << cut;
  }
  // Trailing garbage.
  {
    std::string longer = bytes + "xx";
    EXPECT_FALSE(index::ParseIvfIndex(longer.data(), longer.size()).ok());
  }
  // Negative nlist.
  {
    std::string bad = bytes;
    int32_t neg = -1;
    std::memcpy(bad.data(), &neg, sizeof(neg));
    EXPECT_FALSE(index::ParseIvfIndex(bad.data(), bad.size()).ok());
  }
  // Non-ascending offsets.
  {
    index::IvfIndex broken = idx;
    std::swap(broken.list_offsets[1], broken.list_offsets[2]);
    std::string bad;
    broken.Serialize(&bad);
    EXPECT_FALSE(index::ParseIvfIndex(bad.data(), bad.size()).ok());
  }
  // Validate catches out-of-range and duplicated item ids even when the
  // serialized structure is internally consistent.
  {
    index::IvfIndex broken = idx;
    broken.list_items[0] = static_cast<int32_t>(rows);  // out of range
    EXPECT_FALSE(index::ValidateIvfIndex(broken, rows, cols).ok());
    broken.list_items[0] = broken.list_items[1];  // duplicate
    EXPECT_FALSE(index::ValidateIvfIndex(broken, rows, cols).ok());
    EXPECT_FALSE(index::ValidateIvfIndex(idx, rows + 1, cols).ok());
    EXPECT_FALSE(index::ValidateIvfIndex(idx, rows, cols + 1).ok());
  }
}

TEST_F(IvfTest, RankListsClampsAndOrdersDeterministically) {
  const int64_t rows = 300, cols = 8;
  const std::vector<float> data = RandomMatrix(rows, cols, 6);
  index::IvfIndex idx =
      index::BuildIvfIndex(data.data(), rows, cols, SmallConfig(6));
  const std::vector<float> u = RandomMatrix(1, cols, 7);

  std::vector<int32_t> all;
  idx.RankLists(u.data(), 1000, &all);  // clamped to nlist
  ASSERT_EQ(all.size(), static_cast<size_t>(idx.nlist));
  std::set<int32_t> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size());

  std::vector<int32_t> one;
  idx.RankLists(u.data(), 0, &one);  // clamped up to 1
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], all[0]);

  // Prefix property: top-2 is a prefix of the full ranking.
  std::vector<int32_t> two;
  idx.RankLists(u.data(), 2, &two);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], all[0]);
  EXPECT_EQ(two[1], all[1]);

  // Best-first by the MIPS score dot(u, c) - |c_hat|^2/2.
  auto list_score = [&](int32_t l) {
    return kernels::Dot(u.data(), idx.centroids.data() + l * cols, cols) -
           idx.half_sq_norms[static_cast<size_t>(l)];
  };
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(list_score(all[i - 1]), list_score(all[i]));
  }
}

TEST_F(IvfTest, FullProbeWithFullRerankMatchesBruteForce) {
  // nprobe = nlist covers the whole catalog; with rerank >= catalog size
  // the quantized path rescores everything exactly, so the result must
  // equal brute-force fp32 top-k (ids and order; scores equal for the
  // dense view, near-equal after int8 rerank since rerank is exact over
  // the decoded rows).
  kernels::SetDeterministic(true);
  const int64_t rows = 400, cols = 16;
  const std::vector<float> data = RandomMatrix(rows, cols, 8);
  ag::Tensor items(static_cast<int32_t>(rows), static_cast<int32_t>(cols));
  std::copy(data.begin(), data.end(), items.data());
  index::IvfIndex idx =
      index::BuildIvfIndex(data.data(), rows, cols, SmallConfig(10));

  const std::vector<float> u = RandomMatrix(1, cols, 9);
  const std::vector<int32_t> seen = {3, 77, 200, 399};
  const int k = 10;

  const std::vector<serve::ScoredItem> brute =
      serve::TopKUnseenItems(u.data(), items, seen, k);

  // Gather candidates exactly the way the engine does.
  std::vector<int32_t> lists;
  idx.RankLists(u.data(), idx.nlist, &lists);
  std::vector<int32_t> candidates;
  for (int32_t l : lists) {
    const int64_t b = idx.list_offsets[static_cast<size_t>(l)];
    const int64_t e = idx.list_offsets[static_cast<size_t>(l) + 1];
    candidates.insert(candidates.end(), idx.list_items.begin() + b,
                      idx.list_items.begin() + e);
  }
  ASSERT_EQ(candidates.size(), static_cast<size_t>(rows));

  // Dense view over the candidate set: same ids, same scores.
  serve::EmbeddingView dense_view(&items);
  const std::vector<serve::ScoredItem> via_dense =
      serve::TopKUnseenFromView(u.data(), dense_view, &candidates, seen, k,
                                static_cast<int>(rows), nullptr, nullptr);
  ASSERT_EQ(via_dense.size(), brute.size());
  for (size_t i = 0; i < brute.size(); ++i) {
    EXPECT_EQ(via_dense[i].item, brute[i].item) << i;
    EXPECT_EQ(via_dense[i].score, brute[i].score) << i;
  }

  // Quantized view with catalog-wide rerank: rerank rescores every
  // candidate against exact decoded rows, so ids match brute force up to
  // ties introduced by decode error (fp16 decode error is ~5e-4
  // relative; distinct random scores don't collide at that scale).
  quant::QuantizedMatrix q =
      quant::Quantize(data.data(), rows, cols, quant::Codec::kFp16);
  serve::EmbeddingView quant_view(&q);
  const std::vector<serve::ScoredItem> via_quant =
      serve::TopKUnseenFromView(u.data(), quant_view, &candidates, seen, k,
                                static_cast<int>(rows), nullptr, nullptr);
  ASSERT_EQ(via_quant.size(), brute.size());
  for (size_t i = 0; i < brute.size(); ++i) {
    EXPECT_EQ(via_quant[i].item, brute[i].item) << i;
    EXPECT_NEAR(via_quant[i].score, brute[i].score, 5e-3f) << i;
  }
}

TEST_F(IvfTest, PartialProbeRecallIsHighOnClusteredData) {
  // Clustered data (what IVF is for): planted centers, small noise. A
  // modest nprobe must recover most of the exact top-k.
  kernels::SetDeterministic(true);
  const int64_t rows = 2000, cols = 16;
  const int32_t planted = 20;
  util::Rng rng(10);
  std::vector<float> centers(static_cast<size_t>(planted * cols));
  for (float& x : centers) x = rng.UniformFloat(-2.0f, 2.0f);
  std::vector<float> data(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t c = r % planted;
    for (int64_t j = 0; j < cols; ++j) {
      data[static_cast<size_t>(r * cols + j)] =
          centers[static_cast<size_t>(c * cols + j)] +
          rng.UniformFloat(-0.05f, 0.05f);
    }
  }
  ag::Tensor items(static_cast<int32_t>(rows), static_cast<int32_t>(cols));
  std::copy(data.begin(), data.end(), items.data());
  index::IvfConfig cfg = SmallConfig(32);
  cfg.iterations = 8;
  index::IvfIndex idx = index::BuildIvfIndex(data.data(), rows, cols, cfg);

  const std::vector<int32_t> seen;
  const int k = 20;
  int hits = 0, total = 0;
  for (uint64_t qseed = 100; qseed < 110; ++qseed) {
    const std::vector<float> u = RandomMatrix(1, cols, qseed);
    const std::vector<serve::ScoredItem> brute =
        serve::TopKUnseenItems(u.data(), items, seen, k);
    std::vector<int32_t> lists;
    idx.RankLists(u.data(), 8, &lists);
    std::vector<int32_t> candidates;
    for (int32_t l : lists) {
      const int64_t b = idx.list_offsets[static_cast<size_t>(l)];
      const int64_t e = idx.list_offsets[static_cast<size_t>(l) + 1];
      candidates.insert(candidates.end(), idx.list_items.begin() + b,
                        idx.list_items.begin() + e);
    }
    serve::EmbeddingView view(&items);
    const std::vector<serve::ScoredItem> approx =
        serve::TopKUnseenFromView(u.data(), view, &candidates, seen, k, k,
                                  nullptr, nullptr);
    std::vector<int32_t> brute_ids, approx_ids;
    for (const auto& s : brute) brute_ids.push_back(s.item);
    for (const auto& s : approx) approx_ids.push_back(s.item);
    std::sort(brute_ids.begin(), brute_ids.end());
    std::sort(approx_ids.begin(), approx_ids.end());
    for (int32_t id : approx_ids) {
      hits += std::binary_search(brute_ids.begin(), brute_ids.end(), id);
    }
    total += k;
  }
  const double recall = static_cast<double>(hits) / total;
  EXPECT_GE(recall, 0.9) << "recall@" << k << " = " << recall;
}

TEST_F(IvfTest, ResidentBytesMatchesVectors) {
  const int64_t rows = 128, cols = 8;
  const std::vector<float> data = RandomMatrix(rows, cols, 11);
  index::IvfIndex idx =
      index::BuildIvfIndex(data.data(), rows, cols, SmallConfig(4));
  const int64_t want =
      static_cast<int64_t>(idx.centroids.size() * sizeof(float)) +
      static_cast<int64_t>(idx.half_sq_norms.size() * sizeof(float)) +
      static_cast<int64_t>(idx.list_offsets.size() * sizeof(int64_t)) +
      static_cast<int64_t>(idx.list_items.size() * sizeof(int32_t));
  EXPECT_EQ(idx.ResidentBytes(), want);
}

}  // namespace
}  // namespace dgnn
