#include "graph/hetero_graph.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/csr.h"

namespace dgnn::graph {
namespace {

CooMatrix SmallCoo() {
  CooMatrix coo;
  coo.rows = 3;
  coo.cols = 4;
  coo.Add(0, 1, 2.0f);
  coo.Add(2, 0, 1.0f);
  coo.Add(0, 3, 1.0f);
  coo.Add(2, 2, 4.0f);
  return coo;
}

TEST(CsrTest, FromCooSortsColumnsWithinRows) {
  CsrMatrix m = CsrMatrix::FromCoo(SmallCoo());
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 4);
  ASSERT_EQ(m.RowDegree(0), 2);
  EXPECT_EQ(m.indices()[0], 1);
  EXPECT_EQ(m.indices()[1], 3);
  EXPECT_EQ(m.RowDegree(1), 0);
  EXPECT_EQ(m.RowDegree(2), 2);
}

TEST(CsrTest, FromCooMergesDuplicates) {
  CooMatrix coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.Add(0, 1, 1.0f);
  coo.Add(0, 1, 2.5f);
  CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.values()[0], 3.5f);
}

TEST(CsrTest, IdentityMultiplyIsNoOp) {
  CsrMatrix id = CsrMatrix::Identity(3);
  float x[6] = {1, 2, 3, 4, 5, 6};
  float y[6];
  id.Multiply(x, 2, y);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(CsrTest, TransposedSwapsDims) {
  CsrMatrix m = CsrMatrix::FromCoo(SmallCoo());
  CsrMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), m.nnz());
  // Spot check: (0,1)=2 becomes (1,0)=2.
  float x[3] = {1, 0, 0};
  float y[4];
  t.Multiply(x, 1, y);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 1.0f);
}

TEST(CsrTest, RowNormalizeMakesRowsSumToOne) {
  CsrMatrix m = CsrMatrix::FromCoo(SmallCoo());
  m.RowNormalize();
  for (int64_t r = 0; r < m.rows(); ++r) {
    float sum = 0.0f;
    for (int64_t i = m.indptr()[r]; i < m.indptr()[r + 1]; ++i) {
      sum += m.values()[i];
    }
    if (m.RowDegree(r) > 0) {
      EXPECT_NEAR(sum, 1.0f, 1e-6);
    }
  }
}

TEST(CsrTest, SymNormalizeSymmetricMatrixRowSumsBounded) {
  CooMatrix coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.Add(0, 1);
  coo.Add(1, 0);
  coo.Add(1, 2);
  coo.Add(2, 1);
  CsrMatrix m = CsrMatrix::FromCoo(coo);
  m.SymNormalize();
  // Node 1 has degree 2, nodes 0 and 2 degree 1: entry (0,1) should be
  // 1/sqrt(1*2).
  EXPECT_NEAR(m.values()[0], 1.0f / std::sqrt(2.0f), 1e-6);
}

TEST(CsrTest, MultiplyComposesAdjacency) {
  // A: 2x2 path 0->1; B: 2x2 path 1->0. A*B connects 0->0.
  CooMatrix a;
  a.rows = a.cols = 2;
  a.Add(0, 1, 2.0f);
  CooMatrix b;
  b.rows = b.cols = 2;
  b.Add(1, 0, 3.0f);
  CsrMatrix prod = CsrMatrix::FromCoo(a).Multiply(CsrMatrix::FromCoo(b));
  EXPECT_EQ(prod.nnz(), 1);
  EXPECT_FLOAT_EQ(prod.values()[0], 6.0f);
  EXPECT_EQ(prod.indices()[0], 0);
}

TEST(CsrTest, MultiplyCapKeepsStrongestEntries) {
  CooMatrix a;
  a.rows = 1;
  a.cols = 3;
  a.Add(0, 0, 1.0f);
  a.Add(0, 1, 1.0f);
  a.Add(0, 2, 1.0f);
  CooMatrix b;
  b.rows = 3;
  b.cols = 3;
  b.Add(0, 0, 1.0f);
  b.Add(1, 1, 5.0f);
  b.Add(2, 2, 3.0f);
  CsrMatrix prod =
      CsrMatrix::FromCoo(a).Multiply(CsrMatrix::FromCoo(b), /*cap=*/2);
  EXPECT_EQ(prod.nnz(), 2);
  // Kept: columns 1 (5.0) and 2 (3.0).
  EXPECT_EQ(prod.indices()[0], 1);
  EXPECT_EQ(prod.indices()[1], 2);
}

TEST(CsrTest, RemoveDiagonal) {
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.Add(0, 0);
  coo.Add(0, 1);
  coo.Add(1, 1);
  CsrMatrix m = CsrMatrix::FromCoo(coo);
  m.RemoveDiagonal();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.indices()[0], 1);
}

class HeteroGraphTest : public ::testing::Test {
 protected:
  HeteroGraphTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_) {}
  data::Dataset dataset_;
  HeteroGraph graph_;
};

TEST_F(HeteroGraphTest, DimensionsMatchDataset) {
  EXPECT_EQ(graph_.num_users(), dataset_.num_users);
  EXPECT_EQ(graph_.num_items(), dataset_.num_items);
  EXPECT_EQ(graph_.num_relations(), dataset_.num_relations);
  EXPECT_EQ(graph_.user_item().nnz(),
            static_cast<int64_t>(dataset_.train.size()));
  // Social matrix is symmetric: nnz = 2 * tie count.
  EXPECT_EQ(graph_.social().nnz(),
            2 * static_cast<int64_t>(dataset_.social.size()));
}

TEST_F(HeteroGraphTest, TestInteractionsExcluded) {
  // The held-out (user, item) pair must not be an edge.
  const auto& ui = graph_.user_item();
  for (const auto& t : dataset_.test) {
    bool found = false;
    for (int64_t i = ui.indptr()[t.user]; i < ui.indptr()[t.user + 1]; ++i) {
      if (ui.indices()[i] == t.item) found = true;
    }
    EXPECT_FALSE(found) << "test interaction leaked into the graph";
  }
}

TEST_F(HeteroGraphTest, JointRowNormalizeUsesCombinedDegree) {
  CsrMatrix s = graph_.social();
  CsrMatrix y = graph_.user_item();
  HeteroGraph::JointRowNormalize(s, y);
  for (int64_t u = 0; u < graph_.num_users(); ++u) {
    float sum = 0.0f;
    for (int64_t i = s.indptr()[u]; i < s.indptr()[u + 1]; ++i) {
      sum += s.values()[i];
    }
    for (int64_t i = y.indptr()[u]; i < y.indptr()[u + 1]; ++i) {
      sum += y.values()[i];
    }
    if (s.RowDegree(u) + y.RowDegree(u) > 0) {
      EXPECT_NEAR(sum, 1.0f, 1e-5) << "user " << u;
    }
  }
}

TEST_F(HeteroGraphTest, SocialRecalibrationRowsSumToOne) {
  CsrMatrix tau = graph_.SocialRecalibration();
  EXPECT_EQ(tau.rows(), graph_.num_users());
  for (int64_t u = 0; u < tau.rows(); ++u) {
    float sum = 0.0f;
    for (int64_t i = tau.indptr()[u]; i < tau.indptr()[u + 1]; ++i) {
      sum += tau.values()[i];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);  // self-loop guarantees non-empty rows
  }
}

TEST_F(HeteroGraphTest, UnifiedNormalizedCoversAllNodeTypes) {
  CsrMatrix a = graph_.UnifiedNormalized(true, true);
  const int64_t n = graph_.num_users() + graph_.num_items() +
                    graph_.num_relations();
  EXPECT_EQ(a.rows(), n);
  EXPECT_EQ(a.cols(), n);
  EXPECT_EQ(a.nnz(), graph_.user_item().nnz() * 2 + graph_.social().nnz() +
                         graph_.item_rel().nnz() * 2);
  CsrMatrix without = graph_.UnifiedNormalized(false, false);
  EXPECT_EQ(without.nnz(), graph_.user_item().nnz() * 2);
}

TEST_F(HeteroGraphTest, EdgeListsMatchAdjacency) {
  auto edges = graph_.ItemToUserEdges();
  EXPECT_EQ(edges.size(), graph_.user_item().nnz());
  for (int64_t e = 0; e < edges.size(); ++e) {
    EXPECT_GE(edges.src[e], 0);
    EXPECT_LT(edges.src[e], graph_.num_items());
    EXPECT_GE(edges.dst[e], 0);
    EXPECT_LT(edges.dst[e], graph_.num_users());
  }
}

TEST_F(HeteroGraphTest, MetaPathUIUHasNoDiagonalAndNormalizedRows) {
  CsrMatrix uiu = graph_.MetaPathUIU(8);
  EXPECT_EQ(uiu.rows(), graph_.num_users());
  for (int64_t r = 0; r < uiu.rows(); ++r) {
    EXPECT_LE(uiu.RowDegree(r), 8);
    float sum = 0.0f;
    for (int64_t i = uiu.indptr()[r]; i < uiu.indptr()[r + 1]; ++i) {
      EXPECT_NE(uiu.indices()[i], r);
      sum += uiu.values()[i];
    }
    if (uiu.RowDegree(r) > 0) {
      EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
  }
}

}  // namespace
}  // namespace dgnn::graph
