// Tests for the fault-injection registry (util/failpoint.h): activation
// parsing, each action's semantics, determinism of 1in<n> across thread
// counts, the disabled fast path, and RetryWithBackoff's retry policy.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.h"
#include "util/status.h"

namespace dgnn {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Clear(); }
  void TearDown() override { failpoint::Clear(); }
};

// ----- activation parsing --------------------------------------------------

TEST_F(FailpointTest, DisabledByDefault) {
  EXPECT_FALSE(failpoint::Enabled());
  EXPECT_TRUE(failpoint::Check("anything").ok());
  EXPECT_EQ(failpoint::HitCount("anything"), 0);
}

TEST_F(FailpointTest, ConfigureParsesMultipleClauses) {
  ASSERT_TRUE(
      failpoint::Configure("a=error,b=once,c=delay:5,d=1in3,e=abort").ok());
  EXPECT_TRUE(failpoint::Enabled());
  // Unconfigured sites stay no-ops even while enabled.
  EXPECT_TRUE(failpoint::Check("unconfigured").ok());
}

TEST_F(FailpointTest, EmptySpecClears) {
  ASSERT_TRUE(failpoint::Configure("a=error").ok());
  ASSERT_TRUE(failpoint::Configure("").ok());
  EXPECT_FALSE(failpoint::Enabled());
  EXPECT_TRUE(failpoint::Check("a").ok());
}

TEST_F(FailpointTest, BadSpecsRejectedAndPreviousConfigKept) {
  ASSERT_TRUE(failpoint::Configure("keep=error").ok());
  for (const char* bad :
       {"noequals", "site=", "=error", "site=bogus", "site=delay:",
        "site=delay:xyz", "site=1in0", "site=1in", "site=1inx",
        "site=delay:-4"}) {
    util::Status s = failpoint::Configure(bad);
    EXPECT_FALSE(s.ok()) << "spec accepted: " << bad;
    EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument) << bad;
  }
  // The failed Configure calls left the previous configuration active.
  EXPECT_TRUE(failpoint::Enabled());
  EXPECT_FALSE(failpoint::Check("keep").ok());
}

// ----- action semantics ----------------------------------------------------

TEST_F(FailpointTest, ErrorInjectsInternalEveryHit) {
  ASSERT_TRUE(failpoint::Configure("io=error").ok());
  for (int i = 0; i < 3; ++i) {
    util::Status s = failpoint::Check("io");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), util::StatusCode::kInternal);
    EXPECT_NE(s.message().find("io"), std::string::npos);
  }
  EXPECT_EQ(failpoint::HitCount("io"), 3);
  EXPECT_EQ(failpoint::TriggerCount("io"), 3);
}

TEST_F(FailpointTest, OnceInjectsOnlyFirstHit) {
  ASSERT_TRUE(failpoint::Configure("io=once").ok());
  EXPECT_FALSE(failpoint::Check("io").ok());
  EXPECT_TRUE(failpoint::Check("io").ok());
  EXPECT_TRUE(failpoint::Check("io").ok());
  EXPECT_EQ(failpoint::HitCount("io"), 3);
  EXPECT_EQ(failpoint::TriggerCount("io"), 1);
}

TEST_F(FailpointTest, DelaySleepsThenPasses) {
  ASSERT_TRUE(failpoint::Configure("slow=delay:20").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(failpoint::Check("slow").ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 15);  // allow scheduler slop below 20ms
  EXPECT_EQ(failpoint::TriggerCount("slow"), 1);
}

TEST_F(FailpointTest, AbortDies) {
  ASSERT_TRUE(failpoint::Configure("boom=abort").ok());
  EXPECT_DEATH(static_cast<void>(failpoint::Check("boom")), "");
}

// ----- 1in<n> determinism --------------------------------------------------

// The decision for hit i depends only on (seed, site, i) — so the same
// seed and hit count produce the same TOTAL trigger count no matter how
// the hits are spread over threads.
int64_t RunHits(uint64_t seed, int hits, int threads) {
  failpoint::Clear();
  EXPECT_TRUE(failpoint::Configure("flaky=1in4").ok());
  failpoint::SetSeed(seed);
  if (threads <= 1) {
    for (int i = 0; i < hits; ++i) {
      static_cast<void>(failpoint::Check("flaky"));
    }
  } else {
    std::vector<std::thread> pool;
    std::atomic<int> remaining{hits};
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&remaining] {
        while (remaining.fetch_sub(1) > 0) {
          static_cast<void>(failpoint::Check("flaky"));
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  EXPECT_EQ(failpoint::HitCount("flaky"), hits);
  return failpoint::TriggerCount("flaky");
}

TEST_F(FailpointTest, OneInNTriggersDeterministicallyAcrossThreadCounts) {
  const int64_t solo = RunHits(/*seed=*/123, /*hits=*/1000, /*threads=*/1);
  // Roughly 1/4 of hits trigger; "roughly" still means a healthy band.
  EXPECT_GT(solo, 150);
  EXPECT_LT(solo, 350);
  EXPECT_EQ(RunHits(123, 1000, 1), solo) << "same seed, different schedule";
  EXPECT_EQ(RunHits(123, 1000, 4), solo) << "thread count changed totals";
  EXPECT_EQ(RunHits(123, 1000, 8), solo) << "thread count changed totals";
}

TEST_F(FailpointTest, OneInOneAlwaysTriggers) {
  ASSERT_TRUE(failpoint::Configure("always=1in1").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(failpoint::Check("always").ok());
  }
  EXPECT_EQ(failpoint::TriggerCount("always"), 10);
}

// ----- the DGNN_FAILPOINT macro --------------------------------------------

util::Status GuardedOp(int* side_effect) {
  DGNN_FAILPOINT("op.guarded");
  ++*side_effect;
  return util::Status::Ok();
}

TEST_F(FailpointTest, MacroPropagatesInjectedError) {
  int ran = 0;
  EXPECT_TRUE(GuardedOp(&ran).ok());
  EXPECT_EQ(ran, 1);
  ASSERT_TRUE(failpoint::Configure("op.guarded=error").ok());
  EXPECT_FALSE(GuardedOp(&ran).ok());
  EXPECT_EQ(ran, 1) << "body ran despite injected error";
  failpoint::Clear();
  EXPECT_TRUE(GuardedOp(&ran).ok());
  EXPECT_EQ(ran, 2);
  // With the registry disabled, the site is never even counted.
  EXPECT_EQ(failpoint::HitCount("op.guarded"), 0);
}

// ----- RetryWithBackoff ----------------------------------------------------

TEST_F(FailpointTest, RetryRecoversFromTransientFailure) {
  ASSERT_TRUE(failpoint::Configure("io=once").ok());
  int attempts = 0;
  util::Status s = failpoint::RetryWithBackoff(
      "test op", failpoint::RetryOptions{}, [&attempts] {
        ++attempts;
        return failpoint::Check("io");
      });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(attempts, 2);  // first fails, retry succeeds
}

TEST_F(FailpointTest, RetryExhaustsOnPersistentFailure) {
  ASSERT_TRUE(failpoint::Configure("io=error").ok());
  failpoint::RetryOptions options;
  options.max_attempts = 3;
  int attempts = 0;
  util::Status s =
      failpoint::RetryWithBackoff("test op", options, [&attempts] {
        ++attempts;
        return failpoint::Check("io");
      });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  EXPECT_EQ(attempts, 3);
  EXPECT_NE(s.message().find("test op"), std::string::npos);
}

TEST_F(FailpointTest, RetryDoesNotRetryDeterministicFailures) {
  int attempts = 0;
  util::Status s = failpoint::RetryWithBackoff(
      "test op", failpoint::RetryOptions{}, [&attempts] {
        ++attempts;
        return util::Status::InvalidArgument("corrupt file");
      });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(attempts, 1) << "corruption must not be retried";
}

TEST_F(FailpointTest, RetryReturnsOkImmediatelyOnSuccess) {
  int attempts = 0;
  util::Status s = failpoint::RetryWithBackoff(
      "test op", failpoint::RetryOptions{}, [&attempts] {
        ++attempts;
        return util::Status::Ok();
      });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(attempts, 1);
}

}  // namespace
}  // namespace dgnn
