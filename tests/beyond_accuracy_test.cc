#include "train/beyond_accuracy.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "train/trainer.h"

namespace dgnn::train {
namespace {

class BeyondAccuracyTest : public ::testing::Test {
 protected:
  BeyondAccuracyTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_), model_(graph_, 8, 3) {}
  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  models::BprMf model_;
};

TEST_F(BeyondAccuracyTest, MetricsWithinBounds) {
  Recommender recommender(model_, dataset_);
  auto m = ComputeBeyondAccuracy(recommender, dataset_, 10);
  EXPECT_EQ(m.top_k, 10);
  EXPECT_GT(m.catalog_coverage, 0.0);
  EXPECT_LE(m.catalog_coverage, 1.0);
  EXPECT_GE(m.mean_popularity_percentile, 0.0);
  EXPECT_LE(m.mean_popularity_percentile, 1.0);
  EXPECT_GE(m.exposure_gini, 0.0);
  EXPECT_LE(m.exposure_gini, 1.0);
}

TEST_F(BeyondAccuracyTest, FullCatalogKCoversEverything) {
  Recommender recommender(model_, dataset_);
  auto m = ComputeBeyondAccuracy(recommender, dataset_,
                                 dataset_.num_items);
  // With k = catalog size, each user is recommended every unseen item, so
  // coverage must be 1 (every item is unseen for some user in this data).
  EXPECT_DOUBLE_EQ(m.catalog_coverage, 1.0);
}

TEST_F(BeyondAccuracyTest, TrainedModelPrefersPopularItems) {
  // Untrained embeddings recommend uniformly; after BPR training the mean
  // popularity percentile of recommendations must rise (the model learns
  // the Zipfian skew of the synthetic world).
  Recommender before(model_, dataset_);
  auto cold = ComputeBeyondAccuracy(before, dataset_, 10);
  TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 128;
  Trainer trainer(&model_, dataset_, tc);
  trainer.Fit();
  Recommender after(model_, dataset_);
  auto warm = ComputeBeyondAccuracy(after, dataset_, 10);
  EXPECT_GT(warm.mean_popularity_percentile,
            cold.mean_popularity_percentile);
  // Exposure concentrates once the model has opinions.
  EXPECT_GT(warm.exposure_gini, cold.exposure_gini);
}

}  // namespace
}  // namespace dgnn::train
