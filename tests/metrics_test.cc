#include "train/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "train/evaluator.h"

namespace dgnn::train {
namespace {

TEST(MetricsTest, RankOfPositiveCountsGreaterAndEqual) {
  EXPECT_EQ(RankOfPositive(5.0f, {1, 2, 3}), 1);
  EXPECT_EQ(RankOfPositive(2.5f, {1, 2, 3}), 2);
  EXPECT_EQ(RankOfPositive(0.0f, {1, 2, 3}), 4);
  // Ties count against the positive (pessimistic, deterministic).
  EXPECT_EQ(RankOfPositive(2.0f, {1, 2, 3}), 3);
  EXPECT_EQ(RankOfPositive(1.0f, {}), 1);
}

TEST(MetricsTest, HrIsFractionWithinCutoff) {
  Metrics m = MetricsFromRanks({1, 3, 11, 2}, {10});
  EXPECT_DOUBLE_EQ(m.hr[10], 3.0 / 4.0);
  EXPECT_EQ(m.num_users, 4);
}

TEST(MetricsTest, NdcgUsesLogDiscount) {
  Metrics m = MetricsFromRanks({1}, {10});
  EXPECT_DOUBLE_EQ(m.ndcg[10], 1.0);
  Metrics m2 = MetricsFromRanks({2}, {10});
  EXPECT_NEAR(m2.ndcg[10], 1.0 / std::log2(3.0), 1e-9);
  Metrics m3 = MetricsFromRanks({11}, {10});
  EXPECT_DOUBLE_EQ(m3.ndcg[10], 0.0);
}

TEST(MetricsTest, MultipleCutoffsAreMonotone) {
  Metrics m = MetricsFromRanks({1, 4, 7, 15, 30}, {5, 10, 20});
  EXPECT_LE(m.hr[5], m.hr[10]);
  EXPECT_LE(m.hr[10], m.hr[20]);
  EXPECT_LE(m.ndcg[5], m.ndcg[10]);
  EXPECT_LE(m.ndcg[10], m.ndcg[20]);
}

TEST(MetricsTest, EmptyRanksYieldZeroes) {
  Metrics m = MetricsFromRanks({}, {10});
  EXPECT_DOUBLE_EQ(m.hr[10], 0.0);
  EXPECT_EQ(m.num_users, 0);
}

TEST(MetricsTest, ToStringMentionsEachCutoff) {
  Metrics m = MetricsFromRanks({1, 2}, {5, 10});
  std::string s = m.ToString();
  EXPECT_NE(s.find("HR@5"), std::string::npos);
  EXPECT_NE(s.find("NDCG@10"), std::string::npos);
}

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        evaluator_(dataset_) {}
  data::Dataset dataset_;
  Evaluator evaluator_;
};

TEST_F(EvaluatorTest, PerfectEmbeddingsRankPositiveFirst) {
  // Hand-craft embeddings where each test user's positive item is its
  // nearest neighbor: user vector = positive item one-hot direction.
  const int64_t d = 8;
  ag::Tensor users(dataset_.num_users, d);
  ag::Tensor items(dataset_.num_items, d);
  util::Rng rng(3);
  for (int64_t i = 0; i < items.rows(); ++i) {
    double norm = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      items.at(i, c) = static_cast<float>(rng.Gaussian(0.0, 1.0));
      norm += items.at(i, c) * items.at(i, c);
    }
    // Unit-norm rows: the positive's self dot product strictly dominates
    // any cross dot product (Cauchy-Schwarz), so rank 1 is guaranteed.
    for (int64_t c = 0; c < d; ++c) {
      items.at(i, c) /= static_cast<float>(std::sqrt(norm));
    }
  }
  for (size_t t = 0; t < dataset_.test.size(); ++t) {
    const auto& pos = dataset_.test[t];
    for (int64_t c = 0; c < d; ++c) {
      users.at(pos.user, c) = items.at(pos.item, c);
    }
  }
  Metrics m = evaluator_.Evaluate(users, items, {1, 10});
  EXPECT_DOUBLE_EQ(m.hr[1], 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg[10], 1.0);
}

TEST_F(EvaluatorTest, RandomEmbeddingsNearChance) {
  util::Rng rng(4);
  ag::Tensor users = ag::Tensor::GaussianInit(dataset_.num_users, 8, 1.0f,
                                              rng);
  ag::Tensor items = ag::Tensor::GaussianInit(dataset_.num_items, 8, 1.0f,
                                              rng);
  Metrics m = evaluator_.Evaluate(users, items, {10});
  // 50 negatives + 1 positive -> chance HR@10 = 10/51 ~ 0.196.
  EXPECT_NEAR(m.hr[10], 10.0 / 51.0, 0.12);
}

TEST_F(EvaluatorTest, GroupEvaluationPartitionsUsers) {
  util::Rng rng(5);
  ag::Tensor users = ag::Tensor::GaussianInit(dataset_.num_users, 8, 1.0f,
                                              rng);
  ag::Tensor items = ag::Tensor::GaussianInit(dataset_.num_items, 8, 1.0f,
                                              rng);
  std::vector<int> group(dataset_.num_users);
  for (int32_t u = 0; u < dataset_.num_users; ++u) group[u] = u % 3;
  auto per_group = evaluator_.EvaluateGroups(users, items, group, 3, {10});
  ASSERT_EQ(per_group.size(), 3u);
  int64_t total = 0;
  for (const auto& m : per_group) total += m.num_users;
  EXPECT_EQ(total, static_cast<int64_t>(dataset_.test.size()));
}

TEST_F(EvaluatorTest, EvaluateModelRunsForward) {
  graph::HeteroGraph graph(dataset_);
  models::BprMf model(graph, 8, 11);
  Metrics m = evaluator_.EvaluateModel(model, {10});
  EXPECT_EQ(m.num_users, static_cast<int64_t>(dataset_.test.size()));
}

}  // namespace
}  // namespace dgnn::train
