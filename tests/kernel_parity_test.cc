// Kernel parity suite: every dispatched ISA variant must reproduce the
// scalar reference BIT FOR BIT in deterministic mode (memcmp on the raw
// float buffers — tolerance checks would hide accumulation-order drift),
// and stay within rounding tolerance of it in fast mode. Exercised for
// every GEMM transpose combination, ragged shapes that do not divide the
// vector width or the ParallelFor grain, and thread counts 1/2/7.
//
// Also holds the NaN-injection regression for the old GemmAcc sparse
// skip (`if (av == 0.0f) continue;`): 0 * NaN must stay NaN on every
// deterministic path, so --check-numerics sees anomalies no matter which
// GEMM path a gradient took. Only fast mode may skip zero multipliers.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dgnn {
namespace {

const int kThreadCounts[] = {1, 2, 7};

// (m, n, k) shapes: minimal, ragged vs the 8-lane vector width, ragged
// vs the 64-row ParallelFor grain, and one multi-chunk shape.
struct Shape {
  int64_t m, n, k;
};
const Shape kShapes[] = {
    {1, 1, 1},   {3, 5, 7},    {17, 33, 9},
    {64, 8, 32}, {65, 66, 67}, {130, 31, 48},
};

class KernelParityTest : public ::testing::Test {
 protected:
  KernelParityTest()
      : saved_threads_(util::NumThreads()),
        saved_det_(kernels::Deterministic()) {}
  ~KernelParityTest() override {
    util::SetNumThreads(saved_threads_);
    kernels::SetDeterministic(saved_det_);
    kernels::ResetIsaFromEnv();
  }

  const int saved_threads_;
  const bool saved_det_;
};

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.UniformFloat(-1.0f, 1.0f);
  return v;
}

testing::AssertionResult BitIdentical(const std::vector<float>& a,
                                      const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure() << "size mismatch";
  }
  if (std::memcmp(a.data(), b.data(), sizeof(float) * a.size()) != 0) {
    float max_diff = 0.0f;
    size_t where = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      const float d = std::fabs(a[i] - b[i]);
      if (d > max_diff) {
        max_diff = d;
        where = i;
      }
    }
    return testing::AssertionFailure()
           << "buffers differ bitwise (max abs diff " << max_diff
           << " at element " << where << ")";
  }
  return testing::AssertionSuccess();
}

testing::AssertionResult WithinTolerance(const std::vector<float>& a,
                                         const std::vector<float>& b,
                                         float tol) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure() << "size mismatch";
  }
  for (size_t i = 0; i < a.size(); ++i) {
    const float denom = std::max(1.0f, std::fabs(a[i]));
    if (std::fabs(a[i] - b[i]) / denom > tol) {
      return testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return testing::AssertionSuccess();
}

// Scalar-reference GEMM over the full row range in one chunk — the
// ground truth every dispatched configuration is compared against.
std::vector<float> ReferenceGemm(const Shape& s, bool ta, bool tb,
                                 const std::vector<float>& a,
                                 const std::vector<float>& b,
                                 const std::vector<float>& init) {
  std::vector<float> out = init;
  kernels::GemmView g;
  g.a = a.data();
  g.b = b.data();
  g.out = out.data();
  g.m = s.m;
  g.n = s.n;
  g.k = s.k;
  g.lda = ta ? s.m : s.k;
  g.ldb = tb ? s.k : s.n;
  g.ta = ta;
  g.tb = tb;
  kernels::ScalarGemmRows(g, 0, s.m, /*det=*/true);
  return out;
}

std::vector<float> DispatchedGemm(const Shape& s, bool ta, bool tb,
                                  const std::vector<float>& a,
                                  const std::vector<float>& b,
                                  const std::vector<float>& init) {
  std::vector<float> out = init;
  const int64_t a_rows = ta ? s.k : s.m;
  const int64_t a_cols = ta ? s.m : s.k;
  const int64_t b_rows = tb ? s.n : s.k;
  const int64_t b_cols = tb ? s.k : s.n;
  kernels::GemmAcc(a.data(), a_rows, a_cols, ta, b.data(), b_rows, b_cols,
                   tb, out.data());
  return out;
}

TEST_F(KernelParityTest, GemmDeterministicBitIdentical) {
  for (kernels::Isa isa : kernels::AvailableIsas()) {
    kernels::ForceIsa(isa);
    kernels::SetDeterministic(true);
    for (const Shape& s : kShapes) {
      const auto a = RandomVec(s.m * s.k, 1);
      const auto b = RandomVec(s.k * s.n, 2);
      const auto init = RandomVec(s.m * s.n, 3);
      for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
          const auto ref = ReferenceGemm(s, ta, tb, a, b, init);
          for (int threads : kThreadCounts) {
            util::SetNumThreads(threads);
            const auto got = DispatchedGemm(s, ta, tb, a, b, init);
            EXPECT_TRUE(BitIdentical(ref, got))
                << kernels::IsaName(isa) << " ta=" << ta << " tb=" << tb
                << " m=" << s.m << " n=" << s.n << " k=" << s.k
                << " threads=" << threads;
          }
        }
      }
    }
  }
}

TEST_F(KernelParityTest, GemmFastModeWithinTolerance) {
  for (kernels::Isa isa : kernels::AvailableIsas()) {
    kernels::ForceIsa(isa);
    for (const Shape& s : kShapes) {
      const auto a = RandomVec(s.m * s.k, 4);
      const auto b = RandomVec(s.k * s.n, 5);
      const auto init = RandomVec(s.m * s.n, 6);
      for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
          const auto ref = ReferenceGemm(s, ta, tb, a, b, init);
          for (int threads : kThreadCounts) {
            util::SetNumThreads(threads);
            kernels::SetDeterministic(false);
            const auto got = DispatchedGemm(s, ta, tb, a, b, init);
            kernels::SetDeterministic(true);
            EXPECT_TRUE(WithinTolerance(ref, got, 1e-4f))
                << kernels::IsaName(isa) << " ta=" << ta << " tb=" << tb
                << " m=" << s.m << " n=" << s.n << " k=" << s.k
                << " threads=" << threads;
          }
        }
      }
    }
  }
}

// Regression for the old sparse skip: a zero in A multiplying a NaN (or
// Inf) in B must poison the output in deterministic mode on EVERY path
// and every ISA — 0 * NaN is NaN, and --check-numerics depends on it.
TEST_F(KernelParityTest, GemmDeterministicPropagatesNanThroughZero) {
  const Shape s{5, 6, 4};
  for (kernels::Isa isa : kernels::AvailableIsas()) {
    kernels::ForceIsa(isa);
    kernels::SetDeterministic(true);
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        // A is all zeros; B carries one NaN and one Inf. Every output
        // element in the NaN/Inf columns must be NaN.
        std::vector<float> a(static_cast<size_t>(s.m * s.k), 0.0f);
        std::vector<float> b(static_cast<size_t>(s.k * s.n), 1.0f);
        const int64_t ldb = tb ? s.k : s.n;
        // Element (p=1, j=2) of op(B).
        b[static_cast<size_t>(tb ? 2 * ldb + 1 : 1 * ldb + 2)] =
            std::nanf("");
        // Element (p=3, j=0) of op(B).
        b[static_cast<size_t>(tb ? 0 * ldb + 3 : 3 * ldb + 0)] =
            std::numeric_limits<float>::infinity();
        std::vector<float> out(static_cast<size_t>(s.m * s.n), 0.0f);
        const auto got = DispatchedGemm(s, ta, tb, a, b, out);
        for (int64_t i = 0; i < s.m; ++i) {
          EXPECT_TRUE(std::isnan(got[static_cast<size_t>(i * s.n + 2)]))
              << kernels::IsaName(isa) << " ta=" << ta << " tb=" << tb
              << " row " << i << ": 0*NaN was dropped";
          EXPECT_TRUE(std::isnan(got[static_cast<size_t>(i * s.n + 0)]))
              << kernels::IsaName(isa) << " ta=" << ta << " tb=" << tb
              << " row " << i << ": 0*Inf was dropped";
        }
      }
    }
  }
}

struct Csr {
  std::vector<int64_t> indptr;
  std::vector<int32_t> indices;
  std::vector<float> values;
  int64_t rows = 0;
  int64_t cols = 0;
};

Csr RandomCsr(int64_t rows, int64_t cols, double density, uint64_t seed) {
  util::Rng rng(seed);
  Csr m;
  m.rows = rows;
  m.cols = cols;
  m.indptr.push_back(0);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng.UniformDouble() < density) {
        m.indices.push_back(static_cast<int32_t>(c));
        m.values.push_back(rng.UniformFloat(-1.0f, 1.0f));
      }
    }
    m.indptr.push_back(static_cast<int64_t>(m.indices.size()));
  }
  return m;
}

TEST_F(KernelParityTest, SpmmParityAcrossIsasAndThreads) {
  // Feature widths: scalar-only, ragged vs the vector width, exact
  // multiples, > one cache line.
  const int64_t kDims[] = {1, 3, 8, 19, 32, 64};
  const Csr m = RandomCsr(/*rows=*/150, /*cols=*/90, /*density=*/0.15, 7);
  for (int64_t d : kDims) {
    const auto x = RandomVec(m.cols * d, 8);
    // Ground truth: scalar reference, full range, deterministic.
    std::vector<float> ref(static_cast<size_t>(m.rows * d), -1.0f);
    kernels::SpmmView sv;
    sv.indptr = m.indptr.data();
    sv.indices = m.indices.data();
    sv.values = m.values.data();
    sv.x = x.data();
    sv.y = ref.data();
    sv.d = d;
    kernels::ScalarKernelTable()->spmm_rows(sv, 0, m.rows, /*det=*/true);
    for (kernels::Isa isa : kernels::AvailableIsas()) {
      kernels::ForceIsa(isa);
      for (int threads : kThreadCounts) {
        util::SetNumThreads(threads);
        std::vector<float> got(static_cast<size_t>(m.rows * d), -1.0f);
        kernels::SetDeterministic(true);
        kernels::Spmm(m.indptr.data(), m.indices.data(), m.values.data(),
                      m.rows, x.data(), d, got.data());
        EXPECT_TRUE(BitIdentical(ref, got))
            << kernels::IsaName(isa) << " d=" << d
            << " threads=" << threads;
        kernels::SetDeterministic(false);
        kernels::Spmm(m.indptr.data(), m.indices.data(), m.values.data(),
                      m.rows, x.data(), d, got.data());
        kernels::SetDeterministic(true);
        EXPECT_TRUE(WithinTolerance(ref, got, 1e-4f))
            << kernels::IsaName(isa) << " d=" << d
            << " threads=" << threads << " (fast)";
      }
    }
  }
}

// Elementwise kernels promise bit-identity across ISAs in BOTH modes
// (they never use FMA or reassociate).
TEST_F(KernelParityTest, ElementwiseBitIdenticalInBothModes) {
  const int64_t kSizes[] = {1, 7, 8, 33, 4096, 5000};
  for (int64_t n : kSizes) {
    const auto x = RandomVec(n, 9);
    const auto g = RandomVec(n, 10);
    const auto y0 = RandomVec(n, 11);
    for (bool det : {true, false}) {
      // References from the scalar table.
      kernels::ForceIsa(kernels::Isa::kScalar);
      kernels::SetDeterministic(det);
      auto ref_add = y0;
      kernels::AddInto(ref_add.data(), x.data(), n);
      auto ref_axpy = y0;
      kernels::AxpyInto(ref_axpy.data(), 0.37f, x.data(), n);
      auto ref_scale = y0;
      kernels::ScaleInto(ref_scale.data(), -1.21f, n);
      auto ref_mul = y0;
      kernels::MulInto(ref_mul.data(), x.data(), n);
      auto ref_muladd = y0;
      kernels::MulAddInto(ref_muladd.data(), g.data(), x.data(), n);
      auto ref_lrelu = y0;
      kernels::LeakyReluForward(ref_lrelu.data(), n, 0.2f);
      auto ref_lrelu_bwd = y0;
      kernels::LeakyReluBackward(ref_lrelu_bwd.data(), g.data(), x.data(),
                                 n, 0.2f);
      for (kernels::Isa isa : kernels::AvailableIsas()) {
        kernels::ForceIsa(isa);
        auto got = y0;
        kernels::AddInto(got.data(), x.data(), n);
        EXPECT_TRUE(BitIdentical(ref_add, got))
            << "AddInto " << kernels::IsaName(isa) << " n=" << n;
        got = y0;
        kernels::AxpyInto(got.data(), 0.37f, x.data(), n);
        EXPECT_TRUE(BitIdentical(ref_axpy, got))
            << "AxpyInto " << kernels::IsaName(isa) << " n=" << n;
        got = y0;
        kernels::ScaleInto(got.data(), -1.21f, n);
        EXPECT_TRUE(BitIdentical(ref_scale, got))
            << "ScaleInto " << kernels::IsaName(isa) << " n=" << n;
        got = y0;
        kernels::MulInto(got.data(), x.data(), n);
        EXPECT_TRUE(BitIdentical(ref_mul, got))
            << "MulInto " << kernels::IsaName(isa) << " n=" << n;
        got = y0;
        kernels::MulAddInto(got.data(), g.data(), x.data(), n);
        EXPECT_TRUE(BitIdentical(ref_muladd, got))
            << "MulAddInto " << kernels::IsaName(isa) << " n=" << n;
        got = y0;
        kernels::LeakyReluForward(got.data(), n, 0.2f);
        EXPECT_TRUE(BitIdentical(ref_lrelu, got))
            << "LeakyReluForward " << kernels::IsaName(isa) << " n=" << n;
        got = y0;
        kernels::LeakyReluBackward(got.data(), g.data(), x.data(), n, 0.2f);
        EXPECT_TRUE(BitIdentical(ref_lrelu_bwd, got))
            << "LeakyReluBackward " << kernels::IsaName(isa) << " n=" << n;
      }
      kernels::SetDeterministic(true);
    }
  }
}

// LeakyRelu lane-select must treat NaN like the scalar branch: NaN < 0
// is false, so NaN passes through unscaled on every ISA.
TEST_F(KernelParityTest, LeakyReluNanAndSignedZeroLanes) {
  std::vector<float> v = {std::nanf(""), -0.0f, 0.0f, -1.5f, 2.0f,
                          -std::numeric_limits<float>::infinity(),
                          std::numeric_limits<float>::infinity(), -3.0f};
  for (kernels::Isa isa : kernels::AvailableIsas()) {
    kernels::ForceIsa(isa);
    auto y = v;
    kernels::LeakyReluForward(y.data(), static_cast<int64_t>(y.size()),
                              0.25f);
    EXPECT_TRUE(std::isnan(y[0])) << kernels::IsaName(isa);
    EXPECT_EQ(0, std::memcmp(&y[1], &v[1], sizeof(float)))  // -0 kept
        << kernels::IsaName(isa);
    EXPECT_EQ(0.0f, y[2]) << kernels::IsaName(isa);
    EXPECT_EQ(-1.5f * 0.25f, y[3]) << kernels::IsaName(isa);
    EXPECT_EQ(2.0f, y[4]) << kernels::IsaName(isa);
    EXPECT_EQ(-std::numeric_limits<float>::infinity() * 0.25f, y[5])
        << kernels::IsaName(isa);
    EXPECT_EQ(std::numeric_limits<float>::infinity(), y[6])
        << kernels::IsaName(isa);
    EXPECT_EQ(-3.0f * 0.25f, y[7]) << kernels::IsaName(isa);
  }
}

TEST_F(KernelParityTest, DotDeterministicExactFastTolerant) {
  const int64_t kSizes[] = {1, 7, 8, 31, 64, 333};
  for (int64_t n : kSizes) {
    const auto a = RandomVec(n, 12);
    const auto b = RandomVec(n, 13);
    const float ref = kernels::ScalarDot(a.data(), b.data(), n,
                                         /*det=*/true);
    for (kernels::Isa isa : kernels::AvailableIsas()) {
      kernels::ForceIsa(isa);
      kernels::SetDeterministic(true);
      const float det_got = kernels::Dot(a.data(), b.data(), n);
      EXPECT_EQ(0, std::memcmp(&ref, &det_got, sizeof(float)))
          << kernels::IsaName(isa) << " n=" << n;
      kernels::SetDeterministic(false);
      const float fast_got = kernels::Dot(a.data(), b.data(), n);
      kernels::SetDeterministic(true);
      EXPECT_NEAR(ref, fast_got, 1e-4f * std::max(1.0f, std::fabs(ref)))
          << kernels::IsaName(isa) << " n=" << n;
    }
  }
}

TEST_F(KernelParityTest, ForceIsaAndAvailabilityReporting) {
  const auto have = kernels::AvailableIsas();
  ASSERT_FALSE(have.empty());
  EXPECT_EQ(kernels::Isa::kScalar, have.front());
  for (kernels::Isa isa : have) {
    kernels::ForceIsa(isa);
    EXPECT_EQ(isa, kernels::ActiveIsa());
    EXPECT_STRNE("unknown", kernels::IsaName(isa));
  }
}

}  // namespace
}  // namespace dgnn
