// Tests for the serving observability plane: windowed statistics
// (quantiles vs exact sorted-sample answers, ring eviction, SLO burn
// accounting), per-request stage tracing (trace-id uniqueness and stage
// monotonicity under concurrent clients — the TSan job runs this suite
// too), stage attribution under an injected serve.execute delay, and the
// stats exposition payloads (JSON validity through the real parser,
// Prometheus round-trip, corrupted-payload rejection).

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "serve/engine.h"
#include "serve/observe.h"
#include "serve/snapshot.h"
#include "train/recommender.h"
#include "util/failpoint.h"
#include "util/json.h"
#include "util/telemetry.h"
#include "util/windowed_stats.h"

namespace dgnn {
namespace {

using serve::Request;
using serve::RequestTrace;
using serve::Response;
using serve::ServingEngine;
using serve::Snapshot;
using telemetry::Histogram;
using telemetry::WindowedStats;

// Nearest-rank quantile over a sorted sample — the ground truth the
// bucketed window quantiles are checked against (same contract as
// telemetry_test.cc).
double ExactQuantile(const std::vector<double>& sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  const auto rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * n)));
  return sorted[static_cast<size_t>(rank - 1)];
}

// ----- WindowedStats --------------------------------------------------------

TEST(WindowedStatsTest, WindowQuantilesWithinBucketOfExact) {
  Histogram hist;
  std::vector<double> samples;
  double v = 3e-6;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(v);
    hist.Record(v);
    v *= 1.018;  // spans several powers-of-two buckets
  }
  std::sort(samples.begin(), samples.end());

  WindowedStats windows{WindowedStats::Config{}};
  WindowedStats::Sample tick;
  tick.requests = tick.ok = static_cast<int64_t>(samples.size());
  tick.latency = hist.SnapshotCounts();
  windows.Push(tick);

  const WindowedStats::WindowAggregate agg = windows.Aggregate(1);
  const struct { double q; double got_ms; } checks[] = {
      {0.50, agg.p50_ms}, {0.95, agg.p95_ms}, {0.99, agg.p99_ms}};
  for (const auto& c : checks) {
    const double exact_ms = ExactQuantile(samples, c.q) * 1e3;
    // The window answer is a bucket upper bound: >= the exact value and
    // < 2x it (power-of-two buckets).
    EXPECT_GE(c.got_ms, exact_ms * (1.0 - 1e-9) - 1e-9) << "q=" << c.q;
    EXPECT_LT(c.got_ms, 2.0 * exact_ms) << "q=" << c.q;
  }
  // Mean is exact up to the nanosecond storage granularity.
  double sum = 0;
  for (double s : samples) sum += s;
  EXPECT_NEAR(agg.mean_ms, sum / samples.size() * 1e3, 1e-3);
}

TEST(WindowedStatsTest, AggregateMergesNewestTicksAndRingEvicts) {
  WindowedStats::Config config;
  config.capacity = 4;
  WindowedStats windows{config};
  for (int i = 1; i <= 10; ++i) {
    WindowedStats::Sample tick;
    tick.requests = tick.ok = i;
    tick.queue_depth = i;
    windows.Push(tick);
  }
  EXPECT_EQ(windows.total_ticks(), 10);
  // Newest 2 ticks: requests 9 + 10.
  const auto two = windows.Aggregate(2);
  EXPECT_EQ(two.ticks, 2);
  EXPECT_EQ(two.requests, 19);
  EXPECT_EQ(two.queue_depth, 10);  // instantaneous gauge, newest wins
  // Everything retained is capacity-bounded: ticks 7..10.
  const auto all = windows.Aggregate(0);
  EXPECT_EQ(all.ticks, 4);
  EXPECT_EQ(all.requests, 7 + 8 + 9 + 10);
  // Asking for more than retained degrades to what the ring holds.
  EXPECT_EQ(windows.Aggregate(60).ticks, 4);
}

TEST(WindowedStatsTest, SloBurnCountersSurviveWraparound) {
  WindowedStats::Config config;
  config.capacity = 3;
  config.slo_p99_ms = 1.0;        // any tick with p99 >= 1 ms violates
  config.slo_availability = 0.9;  // any tick under 90% ok violates
  WindowedStats windows{config};
  Histogram slow;
  slow.Record(0.010);  // 10 ms — over the 1 ms SLO
  for (int i = 0; i < 8; ++i) {
    WindowedStats::Sample tick;
    tick.requests = 10;
    tick.ok = (i % 2 == 0) ? 10 : 5;  // odd ticks: 50% availability
    tick.latency = slow.SnapshotCounts();
    windows.Push(tick);
  }
  // Every tick violates p99; every odd tick violates availability. The
  // cumulative counters cover all 8 ticks even though only 3 are
  // retained in the ring.
  EXPECT_EQ(windows.total_ticks(), 8);
  EXPECT_EQ(windows.total_p99_violations(), 8);
  EXPECT_EQ(windows.total_availability_violations(), 4);
  const auto all = windows.Aggregate(0);
  EXPECT_EQ(all.ticks, 3);
  EXPECT_EQ(all.p99_violations, 3);
}

TEST(WindowedStatsTest, IdleWindowReportsFullAvailability) {
  WindowedStats windows{WindowedStats::Config{}};
  WindowedStats::Sample idle;
  idle.requests = 0;
  windows.Push(idle);
  const auto agg = windows.Aggregate(1);
  EXPECT_EQ(agg.requests, 0);
  EXPECT_DOUBLE_EQ(agg.availability, 1.0);
  EXPECT_DOUBLE_EQ(agg.qps, 0.0);
  EXPECT_DOUBLE_EQ(agg.p99_ms, 0.0);
}

// ----- engine tracing -------------------------------------------------------

class ObservabilityEngineTest : public ::testing::Test {
 protected:
  ObservabilityEngineTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_),
        model_(graph_, 8, 5),
        recommender_(model_, dataset_),
        snapshot_(std::make_shared<const Snapshot>(serve::BuildSnapshot(
            recommender_, dataset_, "BPR-MF", "observability-test"))) {}

  static Request TopKRequest(int32_t user, int k) {
    Request r;
    r.type = Request::Type::kTopK;
    r.user = user;
    r.k = k;
    return r;
  }

  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  models::BprMf model_;
  train::Recommender recommender_;
  std::shared_ptr<const Snapshot> snapshot_;
};

TEST_F(ObservabilityEngineTest,
       TraceIdsUniqueAndStagesMonotoneAcrossThreads) {
  for (int clients : {1, 2, 7}) {
    ServingEngine engine;
    engine.Swap(snapshot_);
    std::mutex mu;
    std::vector<RequestTrace> traces;
    engine.SetTraceSink([&](const RequestTrace& t) {
      std::lock_guard<std::mutex> lock(mu);
      traces.push_back(t);
    });
    constexpr int kPerClient = 40;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          const auto user = static_cast<int32_t>(
              (c * kPerClient + i) % dataset_.num_users);
          const Response resp = engine.Handle(TopKRequest(user, 5));
          ASSERT_TRUE(resp.ok);
          EXPECT_GT(resp.trace_id, 0);
        }
      });
    }
    for (auto& t : threads) t.join();

    ASSERT_EQ(traces.size(), static_cast<size_t>(clients * kPerClient))
        << "clients " << clients;
    std::vector<int64_t> ids;
    for (const RequestTrace& t : traces) {
      ids.push_back(t.trace_id);
      // Stages are non-negative and their sum never exceeds the
      // end-to-end latency (all stamped off one monotonic clock).
      EXPECT_GE(t.queue_seconds, 0.0);
      EXPECT_GE(t.recal_seconds, 0.0);
      EXPECT_GE(t.compute_seconds, 0.0);
      EXPECT_GE(t.rank_seconds, 0.0);
      EXPECT_GE(t.reply_seconds, 0.0);
      const double stage_sum = t.queue_seconds + t.recal_seconds +
                               t.compute_seconds + t.rank_seconds +
                               t.reply_seconds;
      EXPECT_LE(stage_sum, t.total_seconds * (1.0 + 1e-9) + 1e-9);
      EXPECT_GE(t.total_seconds, 0.0);
      EXPECT_GE(t.ts_us, 0);
      EXPECT_STREQ(t.outcome, "ok");
      EXPECT_GE(t.batch_size, 1);
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << "duplicate trace id with " << clients << " clients";
  }
}

TEST_F(ObservabilityEngineTest, InjectedExecuteDelayLandsInQueueStage) {
  ASSERT_TRUE(failpoint::Configure("serve.execute=delay:60").ok());
  ServingEngine engine;
  engine.Swap(snapshot_);
  std::mutex mu;
  std::vector<RequestTrace> traces;
  engine.SetTraceSink([&](const RequestTrace& t) {
    std::lock_guard<std::mutex> lock(mu);
    traces.push_back(t);
  });
  const Response resp = engine.Handle(TopKRequest(0, 5));
  failpoint::Clear();
  ASSERT_TRUE(resp.ok);
  ASSERT_EQ(traces.size(), 1u);
  const RequestTrace& t = traces[0];
  // The injected 60 ms sleep happens before execution starts, so it is
  // attributed to the queue stage — and the stage sum still reconciles
  // with the end-to-end latency.
  EXPECT_GE(t.queue_seconds, 0.050);
  EXPECT_GE(t.total_seconds, t.queue_seconds);
  const double stage_sum = t.queue_seconds + t.recal_seconds +
                           t.compute_seconds + t.rank_seconds +
                           t.reply_seconds;
  EXPECT_LE(stage_sum, t.total_seconds * (1.0 + 1e-9));
  EXPECT_GE(stage_sum, 0.8 * t.total_seconds);  // nothing unattributed
}

TEST_F(ObservabilityEngineTest, SampleOnceAccountsOutcomes) {
  ServingEngine engine;
  engine.Swap(snapshot_);
  engine.SetTraceSink([](const RequestTrace&) {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Handle(TopKRequest(i, 5)).ok);
  }
  ASSERT_TRUE(failpoint::Configure("serve.execute=error").ok());
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(engine.Handle(TopKRequest(i, 5)).ok);
  }
  failpoint::Clear();
  engine.SampleOnceForTest(1.0);
  const auto agg = engine.windows().Aggregate(1);
  EXPECT_EQ(agg.requests, 6);
  EXPECT_EQ(agg.ok, 4);
  EXPECT_EQ(agg.failed, 2);
  EXPECT_NEAR(agg.availability, 4.0 / 6.0, 1e-12);
  EXPECT_GT(agg.p99_ms, 0.0);  // ok requests recorded latency
  EXPECT_EQ(engine.stats().failed_requests, 2);
}

// ----- exposition -----------------------------------------------------------

TEST_F(ObservabilityEngineTest, StatsJsonValidatesAndPromRoundTrips) {
  ServingEngine engine;
  engine.Swap(snapshot_);
  engine.SetTraceSink([](const RequestTrace&) {});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.Handle(TopKRequest(i, 5)).ok);
  }
  engine.SampleOnceForTest(1.0);

  const std::string stats = serve::observe::StatsJson(engine);
  ASSERT_TRUE(serve::observe::ValidateStatsJson(stats).ok())
      << serve::observe::ValidateStatsJson(stats).ToString();
  // Through the real parser: the flat counters and windows must agree
  // with the engine.
  auto parsed = util::ParseJson(stats);
  ASSERT_TRUE(parsed.ok());
  const util::JsonValue& v = parsed.value();
  EXPECT_EQ(v.NumberOr("requests", -1), 5.0);
  const util::JsonValue* windows = v.Find("windows");
  ASSERT_NE(windows, nullptr);
  const util::JsonValue* w1s = windows->Find("1s");
  ASSERT_NE(w1s, nullptr);
  EXPECT_EQ(w1s->NumberOr("requests", -1), 5.0);
  EXPECT_EQ(w1s->NumberOr("availability", -1), 1.0);

  auto prom = serve::observe::PromTextFromStatsJson(stats);
  ASSERT_TRUE(prom.ok());
  const std::string& text = prom.value();
  EXPECT_NE(text.find("# TYPE dgnn_serve_requests_total counter\n"
                      "dgnn_serve_requests_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("dgnn_serve_window_qps{window=\"1s\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dgnn_serve_slo_ticks_total 1"), std::string::npos);
}

TEST(ObservabilityExpositionTest, CorruptedStatsPayloadsAreRejected) {
  const char* bad[] = {
      "",                        // empty
      "not json",                // unparseable
      "[1,2,3]",                 // not an object
      "{\"requests\": \"x\"}",   // wrong type
      "{\"requests\": 1}",       // missing the other counters
  };
  for (const char* payload : bad) {
    EXPECT_FALSE(serve::observe::ValidateStatsJson(payload).ok())
        << "payload: " << payload;
    EXPECT_FALSE(serve::observe::PromTextFromStatsJson(payload).ok())
        << "payload: " << payload;
  }
  // A valid payload with windows but a truncated window set also fails.
  EXPECT_FALSE(
      serve::observe::ValidateStatsJson(
          "{\"requests\":0,\"batches\":0,\"cache_hits\":0,"
          "\"cache_misses\":0,\"snapshot_swaps\":0,"
          "\"degraded_requests\":0,\"shed_requests\":0,"
          "\"expired_requests\":0,\"failed_requests\":0,"
          "\"windows\":{},\"slo\":{}}")
          .ok());
}

}  // namespace
}  // namespace dgnn
