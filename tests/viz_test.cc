#include <cmath>

#include <gtest/gtest.h>

#include "viz/cluster_metrics.h"
#include "viz/tsne.h"

namespace dgnn::viz {
namespace {

// Two well-separated Gaussian blobs in 8-D with labels.
struct Blobs {
  Blobs() : points(40, 8), labels(40) {
    util::Rng rng(11);
    for (int64_t i = 0; i < 40; ++i) {
      const int label = i < 20 ? 0 : 1;
      labels[static_cast<size_t>(i)] = label;
      for (int64_t c = 0; c < 8; ++c) {
        points.at(i, c) = static_cast<float>(
            rng.Gaussian(label == 0 ? -3.0 : 3.0, 0.5));
      }
    }
  }
  ag::Tensor points;
  std::vector<int32_t> labels;
};

TEST(TsneTest, OutputShape) {
  Blobs blobs;
  TsneConfig cfg;
  cfg.iterations = 100;
  ag::Tensor out = Tsne(blobs.points, cfg);
  EXPECT_EQ(out.rows(), 40);
  EXPECT_EQ(out.cols(), 2);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

TEST(TsneTest, SeparatesBlobs) {
  Blobs blobs;
  TsneConfig cfg;
  cfg.iterations = 250;
  ag::Tensor out = Tsne(blobs.points, cfg);
  // The embedding should keep the two blobs apart: intra distances much
  // smaller than inter distances, and near-perfect neighbor purity.
  EXPECT_LT(IntraInterDistanceRatio(out, blobs.labels), 0.5);
  EXPECT_GT(NeighborPurity(out, blobs.labels, 5), 0.9);
}

TEST(TsneTest, DeterministicGivenSeed) {
  Blobs blobs;
  TsneConfig cfg;
  cfg.iterations = 60;
  ag::Tensor a = Tsne(blobs.points, cfg);
  ag::Tensor b = Tsne(blobs.points, cfg);
  EXPECT_EQ(a.MaxAbsDiff(b), 0.0f);
}

TEST(ClusterMetricsTest, RatioOrdersSeparations) {
  Blobs blobs;
  // Raw high-dimensional blobs are already separated.
  const double separated = IntraInterDistanceRatio(blobs.points, blobs.labels);
  // Random labels should give ratio ~1.
  std::vector<int32_t> random_labels(40);
  util::Rng rng(3);
  for (auto& l : random_labels) l = static_cast<int32_t>(rng.UniformInt(2));
  const double shuffled =
      IntraInterDistanceRatio(blobs.points, random_labels);
  EXPECT_LT(separated, 0.4);
  EXPECT_GT(shuffled, 0.8);
}

TEST(ClusterMetricsTest, NeighborPurityBounds) {
  Blobs blobs;
  const double purity = NeighborPurity(blobs.points, blobs.labels, 3);
  EXPECT_GT(purity, 0.95);
  EXPECT_LE(purity, 1.0);
}

TEST(ClusterMetricsTest, MeanPairCosineIdenticalRows) {
  ag::Tensor v(4, 3);
  for (int64_t r = 0; r < 4; ++r) {
    v.at(r, 0) = 1.0f;
    v.at(r, 1) = 2.0f;
  }
  EXPECT_NEAR(MeanPairCosine(v, {{0, 1}, {2, 3}}), 1.0, 1e-6);
  EXPECT_EQ(MeanPairCosine(v, {}), 0.0);
}

TEST(ClusterMetricsTest, CenterColumnsZeroesMeans) {
  util::Rng rng(5);
  ag::Tensor v = ag::Tensor::GaussianInit(30, 4, 1.0f, rng);
  ag::Tensor centered = CenterColumns(v);
  for (int64_t c = 0; c < 4; ++c) {
    double mean = 0.0;
    for (int64_t r = 0; r < 30; ++r) mean += centered.at(r, c);
    EXPECT_NEAR(mean / 30.0, 0.0, 1e-5);
  }
}

TEST(ClusterMetricsTest, RandomPairCosineNearZeroForRandomVectors) {
  util::Rng rng(6);
  ag::Tensor v = ag::Tensor::GaussianInit(200, 16, 1.0f, rng);
  EXPECT_NEAR(MeanRandomPairCosine(v, 500, 1), 0.0, 0.1);
}

}  // namespace
}  // namespace dgnn::viz
