#include "data/dataset.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/io.h"
#include "data/sampler.h"
#include "data/synthetic.h"

namespace dgnn::data {
namespace {

TEST(SyntheticTest, PresetsResolve) {
  EXPECT_EQ(SyntheticConfig::Preset("ciao").name, "ciao");
  EXPECT_EQ(SyntheticConfig::Preset("epinions").name, "epinions");
  EXPECT_EQ(SyntheticConfig::Preset("yelp").name, "yelp");
  EXPECT_EQ(SyntheticConfig::Preset("tiny").name, "tiny");
}

TEST(SyntheticTest, GenerationIsDeterministic) {
  Dataset a = GenerateSynthetic(SyntheticConfig::Tiny());
  Dataset b = GenerateSynthetic(SyntheticConfig::Tiny());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].user, b.train[i].user);
    EXPECT_EQ(a.train[i].item, b.train[i].item);
  }
  ASSERT_EQ(a.social.size(), b.social.size());
  ASSERT_EQ(a.eval_negatives.size(), b.eval_negatives.size());
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticConfig c = SyntheticConfig::Tiny();
  Dataset a = GenerateSynthetic(c);
  c.seed += 1;
  Dataset b = GenerateSynthetic(c);
  bool any_diff = a.train.size() != b.train.size();
  for (size_t i = 0; !any_diff && i < a.train.size(); ++i) {
    any_diff = a.train[i].item != b.train[i].item;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, DensityOrderingMatchesTableI) {
  auto ciao = GenerateSynthetic(SyntheticConfig::CiaoSmall()).ComputeStats();
  auto epin =
      GenerateSynthetic(SyntheticConfig::EpinionsSmall()).ComputeStats();
  auto yelp = GenerateSynthetic(SyntheticConfig::YelpSmall()).ComputeStats();
  // Table I shape: ciao densest, yelp sparsest, in both relations.
  EXPECT_GT(ciao.interaction_density, epin.interaction_density);
  EXPECT_GT(epin.interaction_density, yelp.interaction_density);
  EXPECT_GT(ciao.social_density, epin.social_density);
  EXPECT_GT(epin.social_density, yelp.social_density);
}

TEST(SyntheticTest, InteractionsFollowCommunities) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  int64_t within = 0;
  int64_t total = 0;
  for (const auto& it : ds.train) {
    within += ds.user_community[it.user] == ds.item_community[it.item];
    ++total;
  }
  // preference_strength is 0.88; allow generous slack but require strong
  // community alignment (random would be 1/3 here).
  EXPECT_GT(static_cast<double>(within) / total, 0.6);
}

TEST(SyntheticTest, SocialTiesAreHomophilous) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  int64_t within = 0;
  for (const auto& [u, v] : ds.social) {
    within += ds.user_community[u] == ds.user_community[v];
  }
  EXPECT_GT(static_cast<double>(within) / ds.social.size(), 0.5);
}

TEST(SyntheticTest, EveryItemHasARelation) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  std::set<int32_t> covered;
  for (const auto& [i, r] : ds.item_relations) covered.insert(i);
  EXPECT_EQ(static_cast<int32_t>(covered.size()), ds.num_items);
}

TEST(SplitTest, LeaveOneOutHoldsOutLastInteraction) {
  Dataset ds;
  ds.num_users = 2;
  ds.num_items = 10;
  ds.train = {{0, 1, 0}, {0, 2, 1}, {0, 3, 2}, {1, 4, 0}};
  util::Rng rng(1);
  ds.SplitLeaveOneOut(/*min_train=*/2, /*num_negatives=*/5, rng);
  // User 0 had 3 interactions -> last (item 3) held out; user 1 had only
  // one -> keeps it in train.
  ASSERT_EQ(ds.test.size(), 1u);
  EXPECT_EQ(ds.test[0].user, 0);
  EXPECT_EQ(ds.test[0].item, 3);
  EXPECT_EQ(ds.train.size(), 3u);
  ASSERT_EQ(ds.eval_negatives.size(), 1u);
  EXPECT_EQ(ds.eval_negatives[0].size(), 5u);
  ds.Validate();
}

TEST(SplitTest, NegativesExcludeAllUserItems) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  auto items = ds.TrainItemsByUser();
  for (size_t t = 0; t < ds.test.size(); ++t) {
    const auto& seen = items[ds.test[t].user];
    for (int32_t neg : ds.eval_negatives[t]) {
      EXPECT_FALSE(std::binary_search(seen.begin(), seen.end(), neg));
      EXPECT_NE(neg, ds.test[t].item);
    }
    // Paper protocol: 100 sampled negatives (tiny preset uses 50).
    EXPECT_EQ(ds.eval_negatives[t].size(), 50u);
  }
}

TEST(SamplerTest, EpochCoversAllTrainInteractions) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  BprSampler sampler(ds, 7);
  auto batches = sampler.SampleEpoch(64);
  size_t total = 0;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 64u);
    total += b.size();
  }
  EXPECT_EQ(total, ds.train.size());
}

TEST(SamplerTest, NegativesAreNeverTrainPositives) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  auto items = ds.TrainItemsByUser();
  BprSampler sampler(ds, 7);
  for (const auto& b : sampler.SampleEpoch(128)) {
    for (size_t i = 0; i < b.size(); ++i) {
      const auto& seen = items[b.users[i]];
      EXPECT_TRUE(std::binary_search(seen.begin(), seen.end(),
                                     b.pos_items[i]));
      EXPECT_FALSE(std::binary_search(seen.begin(), seen.end(),
                                      b.neg_items[i]));
    }
  }
}

TEST(IoTest, SaveLoadRoundTrips) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  const std::string dir = ::testing::TempDir() + "/dgnn_io_test";
  auto saved = SaveDataset(ds, dir);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& l = loaded.value();
  EXPECT_EQ(l.name, ds.name);
  EXPECT_EQ(l.num_users, ds.num_users);
  EXPECT_EQ(l.num_items, ds.num_items);
  EXPECT_EQ(l.num_relations, ds.num_relations);
  ASSERT_EQ(l.train.size(), ds.train.size());
  for (size_t i = 0; i < ds.train.size(); ++i) {
    EXPECT_EQ(l.train[i].user, ds.train[i].user);
    EXPECT_EQ(l.train[i].item, ds.train[i].item);
    EXPECT_EQ(l.train[i].time, ds.train[i].time);
  }
  EXPECT_EQ(l.test.size(), ds.test.size());
  EXPECT_EQ(l.social, ds.social);
  EXPECT_EQ(l.item_relations, ds.item_relations);
  EXPECT_EQ(l.eval_negatives, ds.eval_negatives);
  l.Validate();
}

TEST(IoTest, LoadMissingDirectoryFails) {
  auto loaded = LoadDataset("/nonexistent/dgnn");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

// Ids exactly at the meta.tsv bounds minus one are valid — the range
// validation must reject num_users/num_items, not num_users - 1.
TEST(IoTest, BoundaryIdsAreAccepted) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  ds.train.push_back({ds.num_users - 1, ds.num_items - 1, 0});
  const std::string dir = ::testing::TempDir() + "/dgnn_io_boundary";
  ASSERT_TRUE(SaveDataset(ds, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Interaction& last = loaded.value().train.back();
  EXPECT_EQ(last.user, ds.num_users - 1);
  EXPECT_EQ(last.item, ds.num_items - 1);
}

TEST(DatasetTest, StatsCountInteractionsAcrossSplits) {
  Dataset ds = GenerateSynthetic(SyntheticConfig::Tiny());
  auto stats = ds.ComputeStats();
  EXPECT_EQ(stats.num_interactions,
            static_cast<int64_t>(ds.train.size() + ds.test.size()));
  EXPECT_GT(stats.interaction_density, 0.0);
  EXPECT_GT(stats.social_density, 0.0);
}

}  // namespace
}  // namespace dgnn::data
