#include "train/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ag/adam.h"
#include "data/synthetic.h"
#include "models/bpr_mf.h"

namespace dgnn::train {
namespace {

// ----- Adam ---------------------------------------------------------------

TEST(AdamTest, MinimizesQuadratic) {
  ag::ParamStore store;
  ag::Parameter* x = store.Create("x", ag::Tensor::FromVector(1, 2, {5, -3}));
  ag::AdamConfig cfg;
  cfg.learning_rate = 0.1f;
  ag::AdamOptimizer adam(&store, cfg);
  for (int step = 0; step < 300; ++step) {
    ag::Tape tape;
    ag::VarId v = tape.Param(x);
    // loss = |x - (1, 2)|^2
    ag::VarId target = tape.Constant(ag::Tensor::FromVector(1, 2, {1, 2}));
    ag::VarId diff = tape.Sub(v, target);
    tape.Backward(tape.L2(diff));
    adam.Step();
  }
  EXPECT_NEAR(x->value.at(0, 0), 1.0f, 1e-2);
  EXPECT_NEAR(x->value.at(0, 1), 2.0f, 1e-2);
}

TEST(AdamTest, WeightDecayShrinksUnusedParams) {
  ag::ParamStore store;
  ag::Parameter* used = store.Create("used", ag::Tensor::FromVector(1, 1, {1}));
  ag::Parameter* unused =
      store.Create("unused", ag::Tensor::FromVector(1, 1, {1}));
  ag::AdamConfig cfg;
  cfg.learning_rate = 0.05f;
  cfg.weight_decay = 0.5f;
  ag::AdamOptimizer adam(&store, cfg);
  for (int step = 0; step < 100; ++step) {
    ag::Tape tape;
    tape.Backward(tape.L2(tape.Param(used)));
    adam.Step();
  }
  EXPECT_LT(std::fabs(unused->value.at(0, 0)), 0.2f);
}

TEST(AdamTest, AnchoredDecayPullsTowardAnchor) {
  ag::ParamStore store;
  ag::Parameter* p = store.Create("p", ag::Tensor::FromVector(1, 1, {5}));
  p->anchor = ag::Tensor::FromVector(1, 1, {2});
  ag::AdamConfig cfg;
  cfg.learning_rate = 0.05f;
  cfg.weight_decay = 0.5f;
  ag::AdamOptimizer adam(&store, cfg);
  for (int step = 0; step < 300; ++step) {
    ag::Tape tape;
    tape.Param(p);  // no gradient: pure decay
    store.ZeroGrad();
    adam.Step();
  }
  EXPECT_NEAR(p->value.at(0, 0), 2.0f, 0.2f);
}

TEST(AdamTest, LrScaleSlowsParameter) {
  ag::ParamStore store;
  ag::Parameter* fast = store.Create("fast", ag::Tensor::FromVector(1, 1, {5}));
  ag::Parameter* slow = store.Create("slow", ag::Tensor::FromVector(1, 1, {5}));
  slow->lr_scale = 0.1f;
  ag::AdamConfig cfg;
  cfg.learning_rate = 0.05f;
  ag::AdamOptimizer adam(&store, cfg);
  for (int step = 0; step < 20; ++step) {
    ag::Tape tape;
    ag::VarId loss =
        tape.Add(tape.L2(tape.Param(fast)), tape.L2(tape.Param(slow)));
    tape.Backward(loss);
    adam.Step();
  }
  // The scaled parameter stays much closer to its starting point.
  EXPECT_LT(std::fabs(slow->value.at(0, 0) - 5.0f),
            0.5f * std::fabs(fast->value.at(0, 0) - 5.0f));
}

// ----- Trainer --------------------------------------------------------------

class TrainerTest : public ::testing::Test {
 protected:
  TrainerTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_) {}
  data::Dataset dataset_;
  graph::HeteroGraph graph_;
};

TEST_F(TrainerTest, FitProducesTracesAndMetrics) {
  models::BprMf model(graph_, 8, 3);
  TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 128;
  tc.eval_every = 2;
  tc.eval_cutoffs = {5, 10};
  Trainer trainer(&model, dataset_, tc);
  auto result = trainer.Fit();
  ASSERT_EQ(result.epochs.size(), 5u);
  EXPECT_TRUE(result.epochs[1].evaluated);   // epoch 2
  EXPECT_FALSE(result.epochs[0].evaluated);  // epoch 1
  EXPECT_GT(result.final_metrics.num_users, 0);
  EXPECT_GT(result.total_train_seconds, 0.0);
  EXPECT_NEAR(result.mean_epoch_train_seconds * 5.0,
              result.total_train_seconds, 1e-9);
  // Metrics exist for both cutoffs.
  EXPECT_TRUE(result.final_metrics.hr.count(5));
  EXPECT_TRUE(result.final_metrics.hr.count(10));
}

TEST_F(TrainerTest, LossDecreasesOverTraining) {
  models::BprMf model(graph_, 8, 3);
  TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 128;
  Trainer trainer(&model, dataset_, tc);
  auto result = trainer.Fit();
  EXPECT_LT(result.epochs.back().loss, result.epochs.front().loss);
  // BPR starts near log(2).
  EXPECT_NEAR(result.epochs.front().loss, std::log(2.0), 0.2);
}

TEST_F(TrainerTest, DeterministicGivenSeed) {
  auto run = [&]() {
    models::BprMf model(graph_, 8, 3);
    TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 128;
    tc.seed = 99;
    Trainer trainer(&model, dataset_, tc);
    return trainer.Fit().final_metrics.hr[10];
  };
  EXPECT_EQ(run(), run());
}

TEST_F(TrainerTest, L2RegularizationShrinksLossLess) {
  // With heavy L2 the effective ranking objective is dominated by the
  // penalty, so the BPR loss decreases less than without.
  auto final_loss = [&](float l2) {
    models::BprMf model(graph_, 8, 3);
    TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 128;
    tc.l2_reg = l2;
    Trainer trainer(&model, dataset_, tc);
    return trainer.Fit().epochs.back().loss;
  };
  EXPECT_LT(final_loss(0.0f), final_loss(10.0f));
}

}  // namespace
}  // namespace dgnn::train
