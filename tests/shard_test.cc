// Library-level tests for the sharded serving layer (src/shard/ minus
// sockets): partitioning invariants (ring determinism, covering item
// ranges, manifest round-trip and validation), the JSON wire's exact
// float round-trip, the per-shard health state machine, and — the
// contract everything else leans on — BIT-IDENTICAL scatter/gather:
// merging per-shard partial top-ks (with every query and score pushed
// through the JSON wire encoding) must reproduce the single-process
// engine's answer byte for byte, for 2, 3 and 5 shards, ties included.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "serve/engine.h"
#include "serve/ranking.h"
#include "serve/snapshot.h"
#include "shard/health.h"
#include "shard/partition.h"
#include "shard/wire.h"
#include "train/recommender.h"
#include "util/json.h"

namespace dgnn {
namespace {

using serve::Request;
using serve::Response;
using serve::ScoredItem;
using serve::ServingEngine;
using serve::Snapshot;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ----- consistent-hash ring -------------------------------------------------

TEST(ShardRingTest, DeterministicCoveringAndRoughlyBalanced) {
  const serve::ShardRing a(4, 42);
  const serve::ShardRing b(4, 42);
  std::vector<int64_t> per_shard(4, 0);
  for (int32_t u = 0; u < 20000; ++u) {
    const int32_t owner = a.Owner(u);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    EXPECT_EQ(owner, b.Owner(u));  // same (n, seed) -> same ring
    ++per_shard[static_cast<size_t>(owner)];
  }
  // 64 vnodes/shard keep the split within a few percent of even; assert
  // a loose 2x bound so the test pins sanity, not the exact constant.
  for (int64_t n : per_shard) {
    EXPECT_GT(n, 20000 / 8);
    EXPECT_LT(n, 20000 / 2);
  }
}

TEST(ShardRingTest, SeedChangesAssignment) {
  const serve::ShardRing a(4, 1);
  const serve::ShardRing b(4, 2);
  int differs = 0;
  for (int32_t u = 0; u < 1000; ++u) {
    if (a.Owner(u) != b.Owner(u)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(ShardRingTest, SingleShardOwnsEverything) {
  const serve::ShardRing ring(1, 7);
  for (int32_t u = 0; u < 100; ++u) EXPECT_EQ(ring.Owner(u), 0);
}

// ----- item ranges ----------------------------------------------------------

TEST(ShardItemRangeTest, BalancedBlocksCoverExactly) {
  for (int32_t n : {1, 2, 3, 5, 7}) {
    int64_t expect_begin = 0;
    for (int32_t s = 0; s < n; ++s) {
      int64_t begin = -1, end = -1;
      serve::ShardItemRange(150, n, s, &begin, &end);
      EXPECT_EQ(begin, expect_begin);  // contiguous, in order
      EXPECT_GE(end - begin, 150 / n);
      EXPECT_LE(end - begin, 150 / n + 1);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, 150);  // covers [0, num_items) exactly
  }
}

TEST(ShardSnapshotPathTest, NamingConvention) {
  EXPECT_EQ(serve::ShardSnapshotPath("/tmp/model.snap", 1, 3),
            "/tmp/model.snap.shard1of3");
}

// ----- wire encoding --------------------------------------------------------

TEST(ShardWireTest, FloatsRoundTripBitExactly) {
  // Values picked to stress the printer: subnormal, non-representable
  // decimals, big magnitudes, negative zero.
  const std::vector<float> v = {0.1f,      1.0f / 3.0f,    -0.0f,
                                1e-42f,    3.4028e38f,     -7.25f,
                                1.0e-8f,   2097151.875f,   0.0f};
  auto parsed = util::ParseJson(shard::FloatsJson(v));
  ASSERT_TRUE(parsed.ok());
  std::vector<float> back;
  ASSERT_TRUE(shard::ParseFloatArray(&parsed.value(), &back));
  ASSERT_EQ(back.size(), v.size());
  EXPECT_EQ(std::memcmp(back.data(), v.data(), v.size() * sizeof(float)),
            0);
}

TEST(ShardWireTest, ItemsRoundTripBitExactly) {
  const std::vector<ScoredItem> items = {
      {0, 0.1f}, {7, -1.0f / 3.0f}, {149, 1e-40f}};
  auto parsed = util::ParseJson(shard::ItemsJson(items));
  ASSERT_TRUE(parsed.ok());
  std::vector<ScoredItem> back;
  ASSERT_TRUE(shard::ParseItems(&parsed.value(), &back));
  ASSERT_EQ(back.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(back[i].item, items[i].item);
    EXPECT_EQ(std::memcmp(&back[i].score, &items[i].score, sizeof(float)),
              0);
  }
}

// ----- health state machine -------------------------------------------------

TEST(ShardHealthTest, ProbeFailuresTakeShardDownAndProbeRecovers) {
  shard::ShardHealth h;
  EXPECT_EQ(h.state(), shard::HealthState::kHealthy);
  h.RecordProbe(false);
  h.RecordProbe(false);
  EXPECT_NE(h.state(), shard::HealthState::kDown);  // 2 < down_after (3)
  h.RecordProbe(false);
  EXPECT_EQ(h.state(), shard::HealthState::kDown);
  // Recovery is re-admission as DEGRADED, never straight to healthy.
  h.RecordProbe(true);
  EXPECT_EQ(h.state(), shard::HealthState::kDegraded);
}

TEST(ShardHealthTest, OutcomeEwmaDegradesAndRecoversWithHysteresis) {
  shard::ShardHealth h;
  for (int i = 0; i < 10; ++i) h.RecordOutcome(false);
  EXPECT_EQ(h.state(), shard::HealthState::kDegraded);
  EXPECT_GT(h.failure_ewma(), 0.5);
  // Outcomes alone never take a shard down — only missed heartbeats.
  EXPECT_NE(h.state(), shard::HealthState::kDown);
  for (int i = 0; i < 30; ++i) h.RecordOutcome(true);
  EXPECT_EQ(h.state(), shard::HealthState::kHealthy);
  EXPECT_LT(h.failure_ewma(), 0.1);
}

TEST(ShardHealthTest, OutcomesCannotResurrectADownShard) {
  shard::ShardHealth h;
  for (int i = 0; i < 3; ++i) h.RecordProbe(false);
  ASSERT_EQ(h.state(), shard::HealthState::kDown);
  for (int i = 0; i < 50; ++i) h.RecordOutcome(true);
  EXPECT_EQ(h.state(), shard::HealthState::kDown);
}

// ----- partition + scatter/gather fixtures ----------------------------------

class ShardPartitionTest : public ::testing::Test {
 protected:
  ShardPartitionTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_),
        model_(graph_, 8, 5),
        recommender_(model_, dataset_),
        full_(serve::BuildSnapshot(recommender_, dataset_, "BPR-MF",
                                   "shard-test")) {}

  // Builds the N slices in-memory and loads each into its own engine.
  std::vector<std::unique_ptr<ServingEngine>> MakeShardEngines(
      int32_t num_shards, uint64_t seed = 42) {
    std::vector<std::unique_ptr<ServingEngine>> engines;
    for (int32_t s = 0; s < num_shards; ++s) {
      auto slice = shard::BuildShardSnapshot(full_, s, num_shards, seed);
      EXPECT_TRUE(slice.ok()) << slice.status().ToString();
      auto engine = std::make_unique<ServingEngine>();
      engine->Swap(std::make_shared<const Snapshot>(
          std::move(slice).value()));
      engines.push_back(std::move(engine));
    }
    return engines;
  }

  // The router's data path, in miniature and WITH the JSON wire in the
  // loop: fetch the user vector from the owning shard, round-trip it
  // through FloatsJson, topk_partial every shard with the re-parsed
  // query, round-trip each partial through ItemsJson, merge.
  Response ShardedTopK(std::vector<std::unique_ptr<ServingEngine>>& engines,
                       const serve::ShardRing& ring, int32_t user, int k) {
    Request uv;
    uv.type = Request::Type::kUserVector;
    uv.user = user;
    const Response owner_resp =
        engines[static_cast<size_t>(ring.Owner(user))]->Handle(uv);
    EXPECT_TRUE(owner_resp.ok);
    const bool popularity = owner_resp.degraded;  // unknown user

    std::vector<float> query;
    if (!popularity) {
      auto parsed = util::ParseJson(shard::FloatsJson(owner_resp.vector));
      EXPECT_TRUE(parsed.ok());
      EXPECT_TRUE(shard::ParseFloatArray(&parsed.value(), &query));
    }

    std::vector<ScoredItem> merged;
    bool degraded = popularity;
    for (auto& engine : engines) {
      Request part;
      part.type = Request::Type::kTopKPartial;
      part.user = user;
      part.k = k;
      part.popularity = popularity;
      part.query = query;
      const Response r = engine->Handle(part);
      EXPECT_TRUE(r.ok);
      degraded = degraded || r.degraded;
      auto parsed = util::ParseJson(shard::ItemsJson(r.items));
      EXPECT_TRUE(parsed.ok());
      std::vector<ScoredItem> items;
      EXPECT_TRUE(shard::ParseItems(&parsed.value(), &items));
      merged.insert(merged.end(), items.begin(), items.end());
    }
    serve::SelectTopK(merged, k);
    Response out;
    out.ok = true;
    out.degraded = degraded;
    out.items = std::move(merged);
    return out;
  }

  static void ExpectBitIdentical(const std::vector<ScoredItem>& a,
                                 const std::vector<ScoredItem>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].item, b[i].item) << "rank " << i;
      EXPECT_EQ(
          std::memcmp(&a[i].score, &b[i].score, sizeof(float)), 0)
          << "rank " << i << " score bits differ";
    }
  }

  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  models::BprMf model_;
  train::Recommender recommender_;
  Snapshot full_;
};

TEST_F(ShardPartitionTest, SlicesCarryValidManifests) {
  const int32_t n = 3;
  for (int32_t s = 0; s < n; ++s) {
    auto slice = shard::BuildShardSnapshot(full_, s, n, 42);
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    const Snapshot& snap = slice.value();
    EXPECT_EQ(snap.shard.num_shards, n);
    EXPECT_EQ(snap.shard.shard_index, s);
    EXPECT_EQ(snap.shard.hash_seed, 42u);
    // Meta keeps the GLOBAL catalog shape.
    EXPECT_EQ(snap.meta.num_users, full_.meta.num_users);
    EXPECT_EQ(snap.meta.num_items, full_.meta.num_items);
    // Tensors hold only the slice.
    EXPECT_EQ(snap.users.rows(), snap.shard.num_owned_users);
    EXPECT_EQ(snap.items.rows(),
              snap.shard.item_end - snap.shard.item_begin);
    // Social lists present (one per global user) but empty.
    EXPECT_EQ(snap.social.size(),
              static_cast<size_t>(full_.meta.num_users));
    for (const auto& nbrs : snap.social) EXPECT_TRUE(nbrs.empty());
  }
}

TEST_F(ShardPartitionTest, ShardsPartitionUsersAndItemsExactly) {
  const int32_t n = 3;
  int64_t total_users = 0, total_items = 0;
  for (int32_t s = 0; s < n; ++s) {
    auto slice = shard::BuildShardSnapshot(full_, s, n, 42);
    ASSERT_TRUE(slice.ok());
    total_users += slice.value().shard.num_owned_users;
    total_items +=
        slice.value().shard.item_end - slice.value().shard.item_begin;
  }
  EXPECT_EQ(total_users, full_.meta.num_users);
  EXPECT_EQ(total_items, full_.meta.num_items);
}

TEST_F(ShardPartitionTest, WriteShardSnapshotsRoundTripsThroughDisk) {
  const std::string base = TestPath("shard_rt.snap");
  ASSERT_TRUE(shard::WriteShardSnapshots(full_, base, 3, 42).ok());
  for (int32_t s = 0; s < 3; ++s) {
    auto read = serve::ReadSnapshot(serve::ShardSnapshotPath(base, s, 3));
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read.value().shard.shard_index, s);
    EXPECT_EQ(read.value().shard.num_shards, 3);
  }
}

TEST_F(ShardPartitionTest, CorruptShardSliceIsRejected) {
  const std::string base = TestPath("shard_corrupt.snap");
  ASSERT_TRUE(shard::WriteShardSnapshots(full_, base, 3, 42).ok());
  const std::string victim = serve::ShardSnapshotPath(base, 1, 3);
  // Flip one byte in the middle of the file; the full-file checksum
  // must catch it (the check_shard.sh gate leans on exactly this).
  std::fstream f(victim,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<int64_t>(f.tellg());
  ASSERT_GT(size, 200);
  f.seekg(size / 2);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(size / 2);
  f.write(&c, 1);
  f.close();
  EXPECT_FALSE(serve::ReadSnapshot(victim).ok());
}

TEST_F(ShardPartitionTest, RejectsQuantizedAndAlreadyShardedInputs) {
  Snapshot quantized = full_;
  ASSERT_TRUE(
      serve::QuantizeSnapshot(&quantized, quant::Codec::kInt8).ok());
  EXPECT_FALSE(shard::BuildShardSnapshot(quantized, 0, 2, 42).ok());

  auto slice = shard::BuildShardSnapshot(full_, 0, 2, 42);
  ASSERT_TRUE(slice.ok());
  EXPECT_FALSE(shard::BuildShardSnapshot(slice.value(), 0, 2, 42).ok());

  EXPECT_FALSE(shard::BuildShardSnapshot(full_, 2, 2, 42).ok());  // index
  EXPECT_FALSE(shard::BuildShardSnapshot(full_, 0, 0, 42).ok());  // count
}

// ----- bit-identical scatter/gather merge -----------------------------------

TEST_F(ShardPartitionTest, MergedTopKBitIdenticalAcrossShardCounts) {
  ServingEngine single;
  single.Swap(std::make_shared<const Snapshot>(full_));
  for (int32_t n : {2, 3, 5}) {
    auto engines = MakeShardEngines(n);
    const serve::ShardRing ring(n, 42);
    for (int32_t user = 0; user < full_.meta.num_users; ++user) {
      Request req;
      req.type = Request::Type::kTopK;
      req.user = user;
      req.k = 10;
      const Response want = single.Handle(req);
      ASSERT_TRUE(want.ok);
      const Response got = ShardedTopK(engines, ring, user, 10);
      ExpectBitIdentical(want.items, got.items);
    }
  }
}

TEST_F(ShardPartitionTest, MergeBreaksScoreTiesByItemIdAcrossShards) {
  // Synthetic partials with deliberate cross-shard score ties: the
  // merged order must be (score desc, id asc) regardless of which shard
  // contributed which item — the exact SelectTopK contract.
  std::vector<ScoredItem> merged = {
      {140, 1.0f}, {3, 1.0f}, {77, 2.0f},  // shard A
      {4, 1.0f}, {90, 2.0f}, {55, 0.5f},   // shard B
  };
  serve::SelectTopK(merged, 5);
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].item, 77);
  EXPECT_EQ(merged[1].item, 90);
  EXPECT_EQ(merged[2].item, 3);
  EXPECT_EQ(merged[3].item, 4);
  EXPECT_EQ(merged[4].item, 140);
}

TEST_F(ShardPartitionTest, UnknownUserPopularityFallbackMatchesSingle) {
  ServingEngine single;
  single.Swap(std::make_shared<const Snapshot>(full_));
  auto engines = MakeShardEngines(3);
  const serve::ShardRing ring(3, 42);
  const auto unknown = static_cast<int32_t>(full_.meta.num_users + 5);

  Request req;
  req.type = Request::Type::kTopK;
  req.user = unknown;
  req.k = 10;
  const Response want = single.Handle(req);
  ASSERT_TRUE(want.ok);
  ASSERT_TRUE(want.degraded);

  const Response got = ShardedTopK(engines, ring, unknown, 10);
  EXPECT_TRUE(got.degraded);
  ExpectBitIdentical(want.items, got.items);
}

TEST_F(ShardPartitionTest, ScoreItemMatchesSingleProcessScore) {
  ServingEngine single;
  single.Swap(std::make_shared<const Snapshot>(full_));
  auto engines = MakeShardEngines(3);
  const serve::ShardRing ring(3, 42);
  for (int32_t user = 0; user < 10; ++user) {
    for (int32_t item : {0, 74, 149}) {
      Request req;
      req.type = Request::Type::kScore;
      req.user = user;
      req.item = item;
      const Response want = single.Handle(req);
      ASSERT_TRUE(want.ok);

      Request uv;
      uv.type = Request::Type::kUserVector;
      uv.user = user;
      const Response owner =
          engines[static_cast<size_t>(ring.Owner(user))]->Handle(uv);
      ASSERT_TRUE(owner.ok);
      auto parsed = util::ParseJson(shard::FloatsJson(owner.vector));
      ASSERT_TRUE(parsed.ok());
      Request si;
      si.type = Request::Type::kScoreItem;
      si.user = user;
      si.item = item;
      ASSERT_TRUE(shard::ParseFloatArray(&parsed.value(), &si.query));
      // Route to the shard whose range holds the item.
      Response got;
      got.ok = false;
      for (auto& engine : engines) {
        const auto snap = engine->snapshot();
        if (item >= snap->shard.item_begin &&
            item < snap->shard.item_end) {
          got = engine->Handle(si);
        }
      }
      ASSERT_TRUE(got.ok);
      EXPECT_EQ(std::memcmp(&want.score, &got.score, sizeof(float)), 0)
          << "user " << user << " item " << item;
    }
  }
}

TEST_F(ShardPartitionTest, SimilarUsersMergeMatchesSingleProcess) {
  ServingEngine single;
  single.Swap(std::make_shared<const Snapshot>(full_));
  auto engines = MakeShardEngines(3);
  const serve::ShardRing ring(3, 42);
  for (int32_t user = 0; user < 10; ++user) {
    Request req;
    req.type = Request::Type::kSimilarUsers;
    req.user = user;
    req.k = 5;
    const Response want = single.Handle(req);
    ASSERT_TRUE(want.ok);

    Request uv;
    uv.type = Request::Type::kUserVector;
    uv.user = user;
    const Response owner =
        engines[static_cast<size_t>(ring.Owner(user))]->Handle(uv);
    ASSERT_TRUE(owner.ok);
    auto parsed = util::ParseJson(shard::FloatsJson(owner.vector));
    ASSERT_TRUE(parsed.ok());
    std::vector<float> query;
    ASSERT_TRUE(shard::ParseFloatArray(&parsed.value(), &query));

    std::vector<ScoredItem> merged;
    for (auto& engine : engines) {
      Request part;
      part.type = Request::Type::kSimilarPartial;
      part.user = user;
      part.k = 5;
      part.query = query;
      part.query_norm = owner.vector_norm;
      const Response r = engine->Handle(part);
      ASSERT_TRUE(r.ok);
      merged.insert(merged.end(), r.items.begin(), r.items.end());
    }
    serve::SelectTopK(merged, 5);
    ExpectBitIdentical(want.items, merged);
  }
}

}  // namespace
}  // namespace dgnn
