#include "core/dgnn_model.h"

#include <gtest/gtest.h>

#include "ag/grad_check.h"
#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "train/trainer.h"

namespace dgnn::core {
namespace {

data::SyntheticConfig MicroConfig() {
  data::SyntheticConfig c = data::SyntheticConfig::Tiny();
  c.num_users = 20;
  c.num_items = 40;
  c.num_relations = 4;
  c.num_communities = 2;
  c.num_eval_negatives = 20;
  return c;
}

DgnnConfig SmallModelConfig() {
  DgnnConfig c;
  c.embedding_dim = 8;
  c.num_layers = 2;
  c.num_memory_units = 4;
  return c;
}

class DgnnModelTest : public ::testing::Test {
 protected:
  DgnnModelTest()
      : dataset_(data::GenerateSynthetic(MicroConfig())), graph_(dataset_) {}
  data::Dataset dataset_;
  graph::HeteroGraph graph_;
};

TEST_F(DgnnModelTest, ForwardShapes) {
  DgnnModel model(graph_, SmallModelConfig());
  ag::Tape tape;
  auto fwd = model.Forward(tape, /*training=*/true);
  // Cross-layer sum pooling keeps width d (Eq. 8's H* in R^d).
  EXPECT_EQ(model.embedding_dim(), 8);
  EXPECT_EQ(tape.val(fwd.users).rows(), dataset_.num_users);
  EXPECT_EQ(tape.val(fwd.users).cols(), model.embedding_dim());
  EXPECT_EQ(tape.val(fwd.items).rows(), dataset_.num_items);
  EXPECT_EQ(tape.val(fwd.items).cols(), model.embedding_dim());
  EXPECT_EQ(fwd.aux_loss, -1);
}

TEST_F(DgnnModelTest, ForwardIsDeterministic) {
  DgnnModel model(graph_, SmallModelConfig());
  ag::Tape t1, t2;
  auto f1 = model.Forward(t1, false);
  auto f2 = model.Forward(t2, false);
  EXPECT_EQ(t1.val(f1.users).MaxAbsDiff(t2.val(f2.users)), 0.0f);
}

TEST_F(DgnnModelTest, ZeroLayersUsesInitialEmbeddings) {
  DgnnConfig c = SmallModelConfig();
  c.num_layers = 0;
  DgnnModel model(graph_, c);
  EXPECT_EQ(model.embedding_dim(), 8);
  ag::Tape tape;
  auto fwd = model.Forward(tape, false);
  EXPECT_EQ(tape.val(fwd.users).cols(), 8);
}

TEST_F(DgnnModelTest, VariantNamesReflectAblations) {
  ZooConfig zc;
  zc.embedding_dim = 8;
  zc.num_memory_units = 4;
  for (const char* name :
       {"DGNN", "DGNN-M", "DGNN-tau", "DGNN-LN", "DGNN-S", "DGNN-T",
        "DGNN-ST", "DGNN-srcgate"}) {
    auto model = CreateModelByName(name, dataset_, graph_, zc);
    EXPECT_EQ(model->name(), name);
    ag::Tape tape;
    auto fwd = model->Forward(tape, true);
    EXPECT_EQ(tape.val(fwd.users).rows(), dataset_.num_users);
    EXPECT_EQ(tape.val(fwd.items).rows(), dataset_.num_items);
  }
}

TEST_F(DgnnModelTest, SocialRecalibrationChangesUserEmbeddings) {
  DgnnConfig with = SmallModelConfig();
  DgnnConfig without = SmallModelConfig();
  without.use_social_recalibration = false;
  DgnnModel m1(graph_, with);
  DgnnModel m2(graph_, without);  // same seed -> identical parameters
  ag::Tape t1, t2;
  auto f1 = m1.Forward(t1, false);
  auto f2 = m2.Forward(t2, false);
  EXPECT_GT(t1.val(f1.users).MaxAbsDiff(t2.val(f2.users)), 1e-5f);
  // Items are untouched by tau.
  EXPECT_EQ(t1.val(f1.items).MaxAbsDiff(t2.val(f2.items)), 0.0f);
}

TEST_F(DgnnModelTest, RelationAblationDropsRelationParameters) {
  DgnnConfig c = SmallModelConfig();
  DgnnModel full(graph_, c);
  c.use_item_relations = false;
  DgnnModel ablated(graph_, c);
  EXPECT_GT(full.params().TotalParameterCount(),
            ablated.params().TotalParameterCount());
  EXPECT_EQ(ablated.params().Find("rel_emb"), nullptr);
}

TEST_F(DgnnModelTest, UserGateSnapshotShapes) {
  DgnnModel model(graph_, SmallModelConfig());
  auto snap = model.ComputeUserGates();
  EXPECT_EQ(snap.social_gates.rows(), dataset_.num_users);
  EXPECT_EQ(snap.social_gates.cols(), 4);
  EXPECT_EQ(snap.interaction_gates.rows(), dataset_.num_users);
  EXPECT_EQ(snap.interaction_gates.cols(), 4);
  // Social and interaction gates come from different encoders, so they
  // should not coincide.
  EXPECT_GT(snap.social_gates.MaxAbsDiff(snap.interaction_gates), 1e-5f);
}

TEST_F(DgnnModelTest, EndToEndGradientsMatchNumeric) {
  // A very small DGNN so central differences over every parameter stay
  // cheap; this exercises the full Eq. 3-10 pipeline including LayerNorm,
  // self-propagation, cross-layer aggregation and tau.
  data::SyntheticConfig dc = MicroConfig();
  dc.num_users = 8;
  dc.num_items = 12;
  dc.num_relations = 2;
  dc.num_eval_negatives = 5;
  data::Dataset tiny = data::GenerateSynthetic(dc);
  graph::HeteroGraph graph(tiny);
  DgnnConfig mc;
  mc.embedding_dim = 3;
  mc.num_layers = 1;
  mc.num_memory_units = 2;
  // Exercise the literal Eq. 7 paths: per-node LayerNorm (exact gradients,
  // unlike the default kRms whose scale is stop-gradient by design) and
  // the encoder self-loop.
  mc.norm_kind = DgnnConfig::NormKind::kLayer;
  mc.use_self_loop = true;
  mc.use_self_encoder = true;
  DgnnModel model(graph, mc);
  std::vector<ag::Parameter*> params;
  for (const auto& p : model.params().params()) params.push_back(p.get());
  auto result = ag::CheckGradients(
      params,
      [&](ag::Tape& tape) {
        auto fwd = model.Forward(tape, true);
        ag::VarId u = tape.GatherRows(fwd.users, {0, 1, 2});
        ag::VarId pos = tape.GatherRows(fwd.items, {1, 3, 5});
        ag::VarId neg = tape.GatherRows(fwd.items, {0, 2, 4});
        return tape.BprLoss(tape.RowDot(u, pos), tape.RowDot(u, neg));
      },
      // Looser tolerances than the per-op checks: the stacked LeakyReLU
      // kinks (gates + Eq. 7 activation) make central differences biased
      // wherever a perturbation crosses zero, and fp32 accumulates over
      // the deep graph. The per-op gradients are verified tightly in
      // grad_check_test.cc; this asserts end-to-end consistency.
      /*h=*/2e-3f, /*atol=*/2e-2f, /*rtol=*/1e-1f);
  EXPECT_TRUE(result.ok) << result.detail
                         << " max_abs=" << result.max_abs_error;
}

TEST_F(DgnnModelTest, TrainingImprovesOverInitialization) {
  DgnnModel model(graph_, SmallModelConfig());
  train::Evaluator evaluator(dataset_);
  auto before = evaluator.EvaluateModel(model, {10});
  train::TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 512;
  train::Trainer trainer(&model, dataset_, tc);
  auto result = trainer.Fit();
  EXPECT_GT(result.final_metrics.hr[10], before.hr[10]);
  // Loss should drop substantially from the first epoch.
  EXPECT_LT(result.epochs.back().loss, result.epochs.front().loss);
}

}  // namespace
}  // namespace dgnn::core
