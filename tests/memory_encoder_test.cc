// Tests for the paper's core building block (Eq. 3). The key property:
// the factorized O(|V| |M| d^2 + |M| |E| d) implementation must equal the
// literal per-edge sum of gated transforms.

#include "core/memory_encoder.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ag/grad_check.h"
#include "graph/coo.h"

namespace dgnn::core {
namespace {

constexpr float kSlope = 0.2f;

float LeakyReluF(float x) { return x >= 0.0f ? x : kSlope * x; }

struct EncoderFixture {
  EncoderFixture(int num_units, MemoryGateSide side, bool gated = true)
      : rng(42),
        encoder("enc", kDim, num_units, side, kSlope, &store, &rng, gated,
                DgnnConfig::TransformKind::kDense) {
    graph::CooMatrix coo;
    coo.rows = kTargets;
    coo.cols = kSources;
    coo.Add(0, 1, 0.5f);
    coo.Add(0, 3, 0.5f);
    coo.Add(1, 0, 1.0f);
    coo.Add(2, 2, 0.7f);
    coo.Add(2, 4, 0.3f);
    // Target 3 has no neighbors.
    adj = graph::CsrMatrix::FromCoo(coo);
    adj_t = adj.Transposed();
    h_src = store.Create("h_src",
                         ag::Tensor::GaussianInit(kSources, kDim, 0.5f, rng));
    h_tgt = store.Create("h_tgt",
                         ag::Tensor::GaussianInit(kTargets, kDim, 0.5f, rng));
  }

  static constexpr int64_t kDim = 5;
  static constexpr int64_t kSources = 5;
  static constexpr int64_t kTargets = 4;

  dgnn::util::Rng rng;
  ag::ParamStore store;
  MemoryEncoder encoder;
  graph::CsrMatrix adj, adj_t;
  ag::Parameter* h_src;
  ag::Parameter* h_tgt;
};

// Literal Eq. 3: per edge (s -> t) with weight w, message =
// w * sum_m eta(gate_node)_m * (h_s W1_m), summed into t.
ag::Tensor NaivePropagate(EncoderFixture& s, MemoryGateSide side, int num_units) {
  ag::Tensor out(EncoderFixture::kTargets, EncoderFixture::kDim);
  const ag::Tensor& src = s.h_src->value;
  const ag::Tensor& tgt = s.h_tgt->value;
  const ag::Tensor& w2 = s.store.Find("enc.w2")->value;
  const ag::Tensor& bias = s.store.Find("enc.b")->value;
  for (int64_t t = 0; t < s.adj.rows(); ++t) {
    for (int64_t i = s.adj.indptr()[t]; i < s.adj.indptr()[t + 1]; ++i) {
      const int32_t src_id = s.adj.indices()[i];
      const float w = s.adj.values()[i];
      const ag::Tensor& gate_node_emb = side == MemoryGateSide::kTarget
                                            ? tgt
                                            : src;
      const int64_t gate_row =
          side == MemoryGateSide::kTarget ? t : src_id;
      for (int m = 0; m < num_units; ++m) {
        // eta = LeakyReLU(h . w2[:, m] + b_m)
        float gate = bias.at(0, m);
        for (int64_t c = 0; c < EncoderFixture::kDim; ++c) {
          gate += gate_node_emb.at(gate_row, c) * w2.at(c, m);
        }
        gate = LeakyReluF(gate);
        const ag::Tensor& w1 =
            s.store.Find("enc.w1_" + std::to_string(m))->value;
        for (int64_t c = 0; c < EncoderFixture::kDim; ++c) {
          float transformed = 0.0f;
          for (int64_t k = 0; k < EncoderFixture::kDim; ++k) {
            transformed += src.at(src_id, k) * w1.at(k, c);
          }
          out.at(t, c) += w * gate * transformed;
        }
      }
    }
  }
  return out;
}

TEST(MemoryEncoderTest, FactorizedMatchesLiteralEq3TargetGate) {
  EncoderFixture s(3, MemoryGateSide::kTarget);
  ag::Tape tape;
  ag::VarId out =
      s.encoder.Propagate(tape, tape.Param(s.h_src), tape.Param(s.h_tgt),
                          &s.adj, &s.adj_t);
  ag::Tensor naive = NaivePropagate(s, MemoryGateSide::kTarget, 3);
  EXPECT_LT(tape.val(out).MaxAbsDiff(naive), 1e-4f);
}

TEST(MemoryEncoderTest, FactorizedMatchesLiteralEq3SourceGate) {
  EncoderFixture s(3, MemoryGateSide::kSource);
  ag::Tape tape;
  ag::VarId out =
      s.encoder.Propagate(tape, tape.Param(s.h_src), tape.Param(s.h_tgt),
                          &s.adj, &s.adj_t);
  ag::Tensor naive = NaivePropagate(s, MemoryGateSide::kSource, 3);
  EXPECT_LT(tape.val(out).MaxAbsDiff(naive), 1e-4f);
}

TEST(MemoryEncoderTest, GateSidesDiffer) {
  EncoderFixture target(3, MemoryGateSide::kTarget);
  EncoderFixture source(3, MemoryGateSide::kSource);  // same seed -> same params
  ag::Tape t1, t2;
  ag::VarId o1 = target.encoder.Propagate(
      t1, t1.Param(target.h_src), t1.Param(target.h_tgt), &target.adj,
      &target.adj_t);
  ag::VarId o2 = source.encoder.Propagate(
      t2, t2.Param(source.h_src), t2.Param(source.h_tgt), &source.adj,
      &source.adj_t);
  EXPECT_GT(t1.val(o1).MaxAbsDiff(t2.val(o2)), 1e-4f);
}

TEST(MemoryEncoderTest, IsolatedTargetsGetZeroMessages) {
  EncoderFixture s(3, MemoryGateSide::kTarget);
  ag::Tape tape;
  ag::VarId out =
      s.encoder.Propagate(tape, tape.Param(s.h_src), tape.Param(s.h_tgt),
                          &s.adj, &s.adj_t);
  // Target 3 has no incoming edges.
  for (int64_t c = 0; c < EncoderFixture::kDim; ++c) {
    EXPECT_EQ(tape.val(out).at(3, c), 0.0f);
  }
}

TEST(MemoryEncoderTest, UngatedModeIsSingleLinearTransform) {
  EncoderFixture s(4, MemoryGateSide::kTarget, /*gated=*/false);
  EXPECT_EQ(s.encoder.num_units(), 1);
  EXPECT_FALSE(s.encoder.gated());
  ag::Tape tape;
  ag::VarId out =
      s.encoder.Propagate(tape, tape.Param(s.h_src), tape.Param(s.h_tgt),
                          &s.adj, &s.adj_t);
  // out = A (h_src W1_0)
  const ag::Tensor& w1 = s.store.Find("enc.w1_0")->value;
  ag::Tensor transformed(EncoderFixture::kSources, EncoderFixture::kDim);
  for (int64_t r = 0; r < EncoderFixture::kSources; ++r) {
    for (int64_t c = 0; c < EncoderFixture::kDim; ++c) {
      for (int64_t k = 0; k < EncoderFixture::kDim; ++k) {
        transformed.at(r, c) += s.h_src->value.at(r, k) * w1.at(k, c);
      }
    }
  }
  ag::Tensor expected(EncoderFixture::kTargets, EncoderFixture::kDim);
  s.adj.Multiply(transformed.data(), EncoderFixture::kDim, expected.data());
  EXPECT_LT(tape.val(out).MaxAbsDiff(expected), 1e-4f);
}

TEST(MemoryEncoderTest, SelfPropagateUsesOwnEmbedding) {
  EncoderFixture s(2, MemoryGateSide::kTarget);
  ag::Tape tape;
  ag::VarId out = s.encoder.SelfPropagate(tape, tape.Param(s.h_tgt));
  // Equivalent to Propagate over an identity adjacency.
  graph::CsrMatrix id = graph::CsrMatrix::Identity(EncoderFixture::kTargets);
  ag::VarId via_identity = s.encoder.Propagate(
      tape, tape.Param(s.h_tgt), tape.Param(s.h_tgt), &id, &id);
  EXPECT_LT(tape.val(out).MaxAbsDiff(tape.val(via_identity)), 1e-4f);
}

TEST(MemoryEncoderTest, GatesShapeAndActivation) {
  EncoderFixture s(4, MemoryGateSide::kTarget);
  ag::Tape tape;
  ag::VarId gates = s.encoder.Gates(tape, tape.Param(s.h_tgt));
  EXPECT_EQ(tape.val(gates).rows(), EncoderFixture::kTargets);
  EXPECT_EQ(tape.val(gates).cols(), 4);
}

TEST(MemoryEncoderTest, GradientsMatchNumeric) {
  EncoderFixture s(2, MemoryGateSide::kTarget);
  std::vector<ag::Parameter*> params;
  for (const auto& p : s.store.params()) params.push_back(p.get());
  auto result = ag::CheckGradients(params, [&](ag::Tape& tape) {
    ag::VarId out =
        s.encoder.Propagate(tape, tape.Param(s.h_src), tape.Param(s.h_tgt),
                            &s.adj, &s.adj_t);
    return tape.MeanAll(tape.Mul(out, out));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(MemoryEncoderTest, SourceGateGradientsMatchNumeric) {
  EncoderFixture s(2, MemoryGateSide::kSource);
  std::vector<ag::Parameter*> params;
  for (const auto& p : s.store.params()) params.push_back(p.get());
  auto result = ag::CheckGradients(params, [&](ag::Tape& tape) {
    ag::VarId out =
        s.encoder.Propagate(tape, tape.Param(s.h_src), tape.Param(s.h_tgt),
                            &s.adj, &s.adj_t);
    return tape.MeanAll(tape.Mul(out, out));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
}  // namespace dgnn::core
