#include "core/pretrain.h"

#include <gtest/gtest.h>

#include "core/dgnn_model.h"
#include "data/synthetic.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace dgnn::core {
namespace {

class PretrainTest : public ::testing::Test {
 protected:
  PretrainTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_) {}
  data::Dataset dataset_;
  graph::HeteroGraph graph_;
};

TEST_F(PretrainTest, LinkPredictionLossDecreases) {
  DgnnConfig c;
  c.embedding_dim = 8;
  c.num_memory_units = 2;
  DgnnModel model(graph_, c);
  PretrainConfig pc;
  pc.epochs = 15;
  auto result = PretrainEmbeddings(model.params(), model.user_embedding(),
                                   model.item_embedding(),
                                   model.relation_embedding(), graph_, pc);
  EXPECT_LT(result.last_epoch_loss, result.first_epoch_loss);
}

TEST_F(PretrainTest, OnlyEmbeddingTablesChange) {
  DgnnConfig c;
  c.embedding_dim = 8;
  c.num_memory_units = 2;
  DgnnModel model(graph_, c);
  std::vector<ag::Tensor> before;
  for (const auto& p : model.params().params()) before.push_back(p->value);
  PretrainConfig pc;
  pc.epochs = 5;
  PretrainEmbeddings(model.params(), model.user_embedding(),
                     model.item_embedding(), model.relation_embedding(),
                     graph_, pc);
  size_t i = 0;
  for (const auto& p : model.params().params()) {
    const bool is_embedding = p->name == "user_emb" ||
                              p->name == "item_emb" || p->name == "rel_emb";
    if (is_embedding) {
      EXPECT_GT(p->value.MaxAbsDiff(before[i]), 0.0f) << p->name;
    } else {
      EXPECT_EQ(p->value.MaxAbsDiff(before[i]), 0.0f) << p->name;
    }
    ++i;
  }
}

TEST_F(PretrainTest, OptimizerStateResetAfterPretrain) {
  DgnnConfig c;
  c.embedding_dim = 8;
  c.num_memory_units = 2;
  DgnnModel model(graph_, c);
  PretrainConfig pc;
  pc.epochs = 3;
  PretrainEmbeddings(model.params(), model.user_embedding(),
                     model.item_embedding(), model.relation_embedding(),
                     graph_, pc);
  for (const auto& p : model.params().params()) {
    EXPECT_TRUE(p->adam_m.empty()) << p->name;
    EXPECT_TRUE(p->adam_v.empty()) << p->name;
    EXPECT_EQ(p->grad.SquaredL2(), 0.0f) << p->name;
  }
}

TEST_F(PretrainTest, ImprovesShortBudgetFineTuning) {
  auto run = [&](bool pretrain) {
    DgnnConfig c;
    c.embedding_dim = 8;
    c.num_memory_units = 2;
    DgnnModel model(graph_, c);
    if (pretrain) {
      PretrainConfig pc;
      PretrainEmbeddings(model.params(), model.user_embedding(),
                         model.item_embedding(),
                         model.relation_embedding(), graph_, pc);
    }
    train::TrainConfig tc;
    tc.epochs = 4;
    train::Trainer trainer(&model, dataset_, tc);
    return trainer.Fit().final_metrics.hr[10];
  };
  EXPECT_GT(run(true), run(false) - 1e-9);
}

TEST_F(PretrainTest, WorksWithoutRelationTable) {
  DgnnConfig c;
  c.embedding_dim = 8;
  c.num_memory_units = 2;
  c.use_item_relations = false;
  DgnnModel model(graph_, c);
  ASSERT_EQ(model.relation_embedding(), nullptr);
  PretrainConfig pc;
  pc.epochs = 3;
  auto result = PretrainEmbeddings(model.params(), model.user_embedding(),
                                   model.item_embedding(), nullptr, graph_,
                                   pc);
  EXPECT_LE(result.last_epoch_loss, result.first_epoch_loss + 1e-6);
}

}  // namespace
}  // namespace dgnn::core
