// Parameterized smoke + learning tests over the full model zoo: every
// Table II baseline must construct, produce well-shaped embeddings,
// train under the shared BPR protocol with decreasing loss, and end up
// meaningfully above chance on the tiny synthetic world.

#include <cmath>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "data/synthetic.h"
#include "train/trainer.h"

namespace dgnn::core {
namespace {

struct Shared {
  Shared() : dataset(data::GenerateSynthetic(MakeDataConfig())),
             graph(dataset) {}

  static data::SyntheticConfig MakeDataConfig() {
    data::SyntheticConfig c = data::SyntheticConfig::Tiny();
    return c;
  }

  data::Dataset dataset;
  graph::HeteroGraph graph;
};

Shared& GetShared() {
  static Shared* shared = new Shared();
  return *shared;
}

std::vector<std::string> AllModelNames() {
  std::vector<std::string> names = TableIIModelNames();
  names.push_back("BPR-MF");
  names.push_back("LightGCN");
  return names;
}

class ModelZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooTest, ForwardShapesAndDeterminism) {
  Shared& s = GetShared();
  ZooConfig zc;
  zc.embedding_dim = 8;
  zc.num_memory_units = 4;
  auto model = CreateModelByName(GetParam(), s.dataset, s.graph, zc);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());
  ag::Tape t1;
  auto f1 = model->Forward(t1, /*training=*/false);
  EXPECT_EQ(t1.val(f1.users).rows(), s.dataset.num_users);
  EXPECT_EQ(t1.val(f1.items).rows(), s.dataset.num_items);
  EXPECT_EQ(t1.val(f1.users).cols(), model->embedding_dim());
  EXPECT_EQ(t1.val(f1.items).cols(), model->embedding_dim());
  // Finite outputs.
  for (int64_t i = 0; i < t1.val(f1.users).size(); ++i) {
    ASSERT_TRUE(std::isfinite(t1.val(f1.users).data()[i]))
        << GetParam() << " produced non-finite user embedding";
  }
  // Inference must be deterministic.
  ag::Tape t2;
  auto f2 = model->Forward(t2, /*training=*/false);
  EXPECT_EQ(t1.val(f1.users).MaxAbsDiff(t2.val(f2.users)), 0.0f);
}

TEST_P(ModelZooTest, TrainingReducesLossAndBeatsChance) {
  Shared& s = GetShared();
  ZooConfig zc;
  zc.embedding_dim = 8;
  zc.num_memory_units = 4;
  auto model = CreateModelByName(GetParam(), s.dataset, s.graph, zc);
  train::TrainConfig tc;
  // The tiny dataset has ~440 training triples; small batches keep the
  // Adam step count meaningful for models dominated by free embeddings.
  tc.epochs = 30;
  tc.batch_size = 96;
  tc.l2_reg = 1e-4f;
  train::Trainer trainer(model.get(), s.dataset, tc);
  auto result = trainer.Fit();
  EXPECT_LT(result.epochs.back().loss, result.epochs.front().loss)
      << GetParam() << " loss did not decrease";
  // Chance HR@10 with 50 negatives is 10/51 ~ 0.196; require a clear
  // margin above it after training.
  EXPECT_GT(result.final_metrics.hr[10], 0.25)
      << GetParam() << " did not beat chance: "
      << result.final_metrics.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest, ::testing::ValuesIn(AllModelNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelZooDeathTest, UnknownNameChecks) {
  Shared& s = GetShared();
  ZooConfig zc;
  EXPECT_DEATH(CreateModelByName("NotAModel", s.dataset, s.graph, zc),
               "unknown model name");
}

TEST(ModelZooTest2, TableIINamesEndWithDgnn) {
  const auto& names = TableIIModelNames();
  EXPECT_EQ(names.size(), 15u);
  EXPECT_EQ(names.back(), "DGNN");
}

}  // namespace
}  // namespace dgnn::core
