// Telemetry registry semantics: counter/gauge/timer/histogram recording,
// the disabled-path no-op guarantee, JSON export validity (checked with a
// real JSON parser below, not substring matching), and thread-safety of
// concurrent recording (run under TSan by ci/run_tsan.sh).

#include "util/telemetry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dgnn::telemetry {
namespace {

// ----- minimal JSON syntax checker -----------------------------------------
// Recursive-descent validator for the JSON grammar (objects, arrays,
// strings, numbers, true/false/null). Returns true iff the whole input is
// one valid JSON value. Enough to certify that the exported metrics and
// trace payloads parse.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

// Telemetry state is process-global; each test starts from a clean,
// enabled slate and leaves telemetry disabled for the suites that follow.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Reset();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    Reset();
  }
};

TEST_F(TelemetryTest, CounterAccumulates) {
  Counter* c = GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0);
  c->Add(1);
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
}

TEST_F(TelemetryTest, RegistryReturnsStablePointers) {
  EXPECT_EQ(GetCounter("test.stable"), GetCounter("test.stable"));
  EXPECT_EQ(GetHistogram("test.stable_h"), GetHistogram("test.stable_h"));
  EXPECT_NE(static_cast<void*>(GetCounter("test.a")),
            static_cast<void*>(GetCounter("test.b")));
}

TEST_F(TelemetryTest, RegistryRejectsKindMismatch) {
  GetCounter("test.kind");
  EXPECT_DEATH(GetGauge("test.kind"), "registered as counter");
}

TEST_F(TelemetryTest, GaugeLastWriteWins) {
  Gauge* g = GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->value(), -2.25);
}

TEST_F(TelemetryTest, TimerRecordsCountAndTotal) {
  Timer* t = GetTimer("test.timer");
  t->RecordNanos(500'000'000);
  t->RecordNanos(250'000'000);
  EXPECT_EQ(t->count(), 2);
  EXPECT_NEAR(t->total_seconds(), 0.75, 1e-9);
}

TEST_F(TelemetryTest, ScopedTimerRecordsOnce) {
  Timer* t = GetTimer("test.scoped_timer");
  { ScopedTimer st(t); }
  EXPECT_EQ(t->count(), 1);
  EXPECT_GE(t->total_seconds(), 0.0);
}

// ----- histogram semantics --------------------------------------------------

TEST_F(TelemetryTest, HistogramBucketLayoutIsFixedExponential) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(10), 1024e-6);
  // Values at a bound land in that bucket; just above go one up.
  EXPECT_EQ(Histogram::BucketIndex(1e-6), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.5e-6), 1);
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  // Overflow clamps to the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e12), Histogram::kNumBuckets - 1);
}

TEST_F(TelemetryTest, HistogramRecordsCountSumMinMax) {
  Histogram* h = GetHistogram("test.hist");
  h->Record(0.001);
  h->Record(0.004);
  h->Record(0.016);
  EXPECT_EQ(h->count(), 3);
  EXPECT_NEAR(h->sum_seconds(), 0.021, 1e-6);
  EXPECT_NEAR(h->min_seconds(), 0.001, 1e-6);
  EXPECT_NEAR(h->max_seconds(), 0.016, 1e-6);
  // Each value lands in exactly one bucket; totals match the count.
  int64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, 3);
  EXPECT_EQ(h->bucket_count(Histogram::BucketIndex(0.001)), 1);
}

TEST_F(TelemetryTest, HistogramEmptyReportsZeros) {
  Histogram* h = GetHistogram("test.hist_empty");
  EXPECT_EQ(h->count(), 0);
  EXPECT_DOUBLE_EQ(h->min_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h->max_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h->ApproxQuantileSeconds(0.5), 0.0);
}

TEST_F(TelemetryTest, HistogramApproxQuantiles) {
  Histogram* h = GetHistogram("test.hist_quantiles");
  // 100 values in the 0.001-second bucket, 1 outlier at ~0.1 s: p50/p95
  // read the common bucket's upper bound, p99+ reaches the outlier's.
  for (int i = 0; i < 100; ++i) h->Record(0.0009);
  h->Record(0.09);
  const double common = Histogram::BucketUpperBound(Histogram::BucketIndex(0.0009));
  const double tail = Histogram::BucketUpperBound(Histogram::BucketIndex(0.09));
  EXPECT_DOUBLE_EQ(h->ApproxQuantileSeconds(0.50), common);
  EXPECT_DOUBLE_EQ(h->ApproxQuantileSeconds(0.95), common);
  EXPECT_DOUBLE_EQ(h->ApproxQuantileSeconds(1.0), h->max_seconds());
  EXPECT_GE(h->ApproxQuantileSeconds(0.999), common);
  EXPECT_LE(h->ApproxQuantileSeconds(0.999), tail);
  // Quantiles are monotone in q and clamped into [min, max].
  EXPECT_LE(h->ApproxQuantileSeconds(0.5), h->ApproxQuantileSeconds(0.999));
  EXPECT_GE(h->ApproxQuantileSeconds(0.0), h->min_seconds());
  // A single-value histogram reports that value's bucket, clamped to max.
  Histogram* one = GetHistogram("test.hist_one");
  one->Record(0.003);
  EXPECT_DOUBLE_EQ(one->ApproxQuantileSeconds(0.5), one->max_seconds());
}

// Exact nearest-rank quantile of a sorted sample: sorted[ceil(q*n)-1]
// with the same rank-1 floor the histogram uses.
double ExactQuantile(const std::vector<double>& sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  const auto rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * n)));
  return sorted[static_cast<size_t>(rank - 1)];
}

TEST_F(TelemetryTest, HistogramQuantileWithinBucketOfExact) {
  // Against the exact sorted-sample quantile, the histogram answer is
  // sandwiched by its own resolution guarantee: buckets double, so the
  // reported upper bound is >= the exact value and < 2x it (clamping
  // into [min, max] only ever moves it closer to the exact value).
  Histogram* h = GetHistogram("test.hist_vs_exact");
  std::vector<double> samples;
  uint64_t lcg = 12345;
  for (int i = 0; i < 2000; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    // Spread across ~4 decades: 1e-5 .. 1e-1 seconds.
    const double u = static_cast<double>(lcg >> 11) /
                     static_cast<double>(1ULL << 53);
    samples.push_back(1e-5 * std::pow(10.0, 4.0 * u));
  }
  for (double s : samples) h->Record(s);
  std::sort(samples.begin(), samples.end());

  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double exact = ExactQuantile(samples, q);
    const double approx = h->ApproxQuantileSeconds(q);
    // min/max are kept as integer nanoseconds, so the clamp can sit one
    // nanosecond below the exact double value.
    EXPECT_GE(approx, exact * (1.0 - 1e-9) - 1e-9) << "q=" << q;
    EXPECT_LT(approx, 2.0 * exact) << "q=" << q;
  }
}

TEST_F(TelemetryTest, HistogramQuantileEmptyAndSingleSample) {
  Histogram* empty = GetHistogram("test.hist_q_empty");
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(empty->ApproxQuantileSeconds(q), 0.0);
  }
  const auto batch = empty->ApproxQuantilesSeconds({0.5, 0.99});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0], 0.0);
  EXPECT_DOUBLE_EQ(batch[1], 0.0);

  // One sample: min == max == the value, so every quantile clamps to it
  // exactly — no bucket rounding visible.
  Histogram* single = GetHistogram("test.hist_q_single");
  single->Record(0.0042);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(single->ApproxQuantileSeconds(q), 0.0042) << "q=" << q;
  }
}

TEST_F(TelemetryTest, HistogramQuantileAllSamplesInOneBucket) {
  // Values 1.5ms..1.9ms all land in the (1.024ms, 2.048ms] bucket; the
  // bucket upper bound exceeds the observed max, so every quantile
  // clamps to max_seconds() — the tightest answer the data supports.
  Histogram* h = GetHistogram("test.hist_q_onebucket");
  ASSERT_EQ(Histogram::BucketIndex(0.0015), Histogram::BucketIndex(0.0019));
  for (int i = 0; i < 50; ++i) {
    h->Record(0.0015 + 1e-5 * static_cast<double>(i % 5));
  }
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h->ApproxQuantileSeconds(q), h->max_seconds())
        << "q=" << q;
  }
}

TEST_F(TelemetryTest, HistogramBatchQuantilesMatchSingleCalls) {
  // The batched walk must agree with per-quantile calls on a quiescent
  // histogram, for unsorted and duplicate q's alike.
  Histogram* h = GetHistogram("test.hist_q_batch");
  for (int i = 1; i <= 300; ++i) {
    h->Record(1e-5 * static_cast<double>(i * i % 971 + 1));
  }
  const std::vector<double> qs = {0.99, 0.5, 0.0, 1.0, 0.25, 0.5};
  const auto batch = h->ApproxQuantilesSeconds(qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], h->ApproxQuantileSeconds(qs[i]))
        << "q=" << qs[i];
  }
}

TEST_F(TelemetryTest, HistogramSnapshotDeltaPartitionsRecords) {
  Histogram* h = GetHistogram("test.hist_delta");
  Histogram::Counts cursor;
  // A fresh cursor yields everything recorded so far.
  h->Record(1e-5);
  h->Record(3e-5);
  Histogram::Counts first = h->SnapshotDelta(&cursor);
  EXPECT_EQ(first.count, 2);
  // Nothing new: the delta is empty.
  EXPECT_EQ(h->SnapshotDelta(&cursor).count, 0);
  // Later records land in the next delta exactly once.
  h->Record(2e-4);
  Histogram::Counts second = h->SnapshotDelta(&cursor);
  EXPECT_EQ(second.count, 1);
  EXPECT_EQ(second.sum_nanos, 200000);
  // Deltas partition the stream: merged, they equal the full snapshot.
  const Histogram::Counts all = h->SnapshotCounts();
  int64_t merged = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    merged += first.buckets[i] + second.buckets[i];
  }
  EXPECT_EQ(merged, all.count);
  EXPECT_EQ(first.count + second.count, all.count);
}

TEST_F(TelemetryTest, QuantileFromCountsMatchesBucketContract) {
  Histogram* h = GetHistogram("test.hist_counts_q");
  std::vector<double> samples;
  for (int i = 1; i <= 400; ++i) {
    const double v = 1e-5 * static_cast<double>(i * i % 971 + 1);
    samples.push_back(v);
    h->Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const Histogram::Counts counts = h->SnapshotCounts();
  EXPECT_EQ(counts.count, 400);
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = ExactQuantile(samples, q);
    const double approx = Histogram::QuantileFromCounts(counts, q);
    EXPECT_GE(approx, exact * (1.0 - 1e-9) - 1e-9) << "q=" << q;
    EXPECT_LT(approx, 2.0 * exact) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(
      Histogram::QuantileFromCounts(Histogram::Counts{}, 0.99), 0.0);
}

// ----- disabled path is a no-op ---------------------------------------------

TEST_F(TelemetryTest, DisabledScopedHelpersRecordNothing) {
  Timer* t = GetTimer("test.disabled_timer");
  Histogram* h = GetHistogram("test.disabled_hist");
  const int64_t spans_before = NumTraceEvents();
  SetEnabled(false);
  {
    ScopedTimer st(t);
    ScopedLatency sl(h);
    ScopedSpan span("noop", "test");
  }
  SetEnabled(true);
  EXPECT_EQ(t->count(), 0);
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(NumTraceEvents(), spans_before);
}

TEST_F(TelemetryTest, EnabledScopedSpanBuffersOneEvent) {
  const int64_t before = NumTraceEvents();
  { ScopedSpan span("work", "test"); }
  EXPECT_EQ(NumTraceEvents(), before + 1);
}

// ----- JSON export ----------------------------------------------------------

TEST_F(TelemetryTest, MetricsJsonIsValidAndComplete) {
  GetCounter("test.json_counter")->Add(7);
  GetGauge("test.json_gauge")->Set(0.5);
  GetTimer("test.json_timer")->RecordNanos(1000);
  GetHistogram("test.json_hist")->Record(0.002);
  const std::string json = MetricsJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.json_counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_timer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
}

TEST_F(TelemetryTest, TraceJsonIsValidChromeFormat) {
  { ScopedSpan a("alpha", "cat_a"); }
  { ScopedSpan b("beta", "cat_b"); }
  const std::string json = TraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TelemetryTest, MetricNamesAreEscapedInJson) {
  GetCounter("test.\"quoted\"\nname")->Add(1);
  const std::string json = MetricsJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST_F(TelemetryTest, ResetZeroesValuesButKeepsRegistrations) {
  Counter* c = GetCounter("test.reset");
  c->Add(5);
  { ScopedSpan span("gone", "test"); }
  // The span-overflow counter is registry-managed like any other metric;
  // Reset must zero it too (documented in telemetry.h), or a long-lived
  // process would report drops from runs before the Reset.
  Counter* dropped = GetCounter("telemetry.dropped_spans");
  dropped->Add(7);
  Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(GetCounter("test.reset"), c);
  EXPECT_EQ(NumTraceEvents(), 0);
  EXPECT_EQ(dropped->value(), 0);
  EXPECT_EQ(GetCounter("telemetry.dropped_spans"), dropped);
}

// ----- concurrency (TSan-covered via ci/run_tsan.sh) ------------------------

TEST_F(TelemetryTest, ConcurrentRecordingIsExactAndRaceFree) {
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  Counter* c = GetCounter("test.concurrent_counter");
  Histogram* h = GetHistogram("test.concurrent_hist");
  Timer* t = GetTimer("test.concurrent_timer");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < kIters; ++j) {
        c->Add(1);
        h->Record(1e-6 * (i + 1));
        t->RecordNanos(10);
      }
      ScopedSpan span("thread_done", "test");
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), kThreads * kIters);
  EXPECT_EQ(h->count(), kThreads * kIters);
  EXPECT_EQ(t->count(), kThreads * kIters);
  int64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kIters);
  const std::string json = MetricsJson();
  EXPECT_TRUE(JsonChecker(json).Valid());
}

}  // namespace
}  // namespace dgnn::telemetry
