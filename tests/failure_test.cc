// Failure-injection tests: malformed inputs and contract violations must
// fail loudly (Status for runtime data, CHECK death for API misuse) —
// never silently corrupt.

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "ag/serialize.h"
#include "ag/tape.h"
#include "data/io.h"
#include "data/sampler.h"
#include "data/synthetic.h"
#include "train/metrics.h"
#include "util/failpoint.h"

namespace dgnn {
namespace {

// ----- data loading: malformed files produce Status errors ----------------

class IoFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/dgnn_io_failure";
    data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
    ASSERT_TRUE(data::SaveDataset(ds, dir_).ok());
  }

  void Corrupt(const std::string& file, const std::string& content) {
    std::ofstream out(dir_ + "/" + file, std::ios::trunc);
    out << content;
  }

  std::string dir_;
};

TEST_F(IoFailureTest, BadMetaHeader) {
  Corrupt("meta.tsv", "only_two_fields\t3\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(IoFailureTest, NonNumericInteraction) {
  Corrupt("train.tsv", "1\tnotanumber\t0\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(IoFailureTest, ShortRow) {
  Corrupt("social.tsv", "5\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("short row"), std::string::npos);
}

TEST_F(IoFailureTest, NegativesCountMismatch) {
  Corrupt("eval_negatives.tsv", "1\t2\t3\n");  // one row, many test users
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("does not match"),
            std::string::npos);
}

TEST_F(IoFailureTest, MissingFile) {
  ASSERT_EQ(::remove((dir_ + "/item_relations.tsv").c_str()), 0);
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

// ----- id range validation: every id is checked against meta.tsv bounds ----
// Out-of-range ids in a hand-edited TSV used to flow straight into vector
// indexing / CSR construction; now they are rejected with an error naming
// the file and row.

TEST_F(IoFailureTest, OutOfRangeUserInTrain) {
  Corrupt("train.tsv", "0\t0\t0\n999999\t0\t1\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("train.tsv"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("row 2"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("user"), std::string::npos);
}

TEST_F(IoFailureTest, NegativeItemInTrain) {
  Corrupt("train.tsv", "0\t-3\t0\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("train.tsv row 1"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("out of range"),
            std::string::npos);
}

TEST_F(IoFailureTest, OutOfRangeItemInTest) {
  Corrupt("test.tsv", "0\t999999\t0\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("test.tsv row 1"),
            std::string::npos);
}

TEST_F(IoFailureTest, OutOfRangeSocialUser) {
  Corrupt("social.tsv", "0\t999999\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("social.tsv row 1"),
            std::string::npos);
}

TEST_F(IoFailureTest, OutOfRangeRelationId) {
  Corrupt("item_relations.tsv", "0\t999999\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("item_relations.tsv row 1"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("relation"), std::string::npos);
}

TEST_F(IoFailureTest, OutOfRangeEvalNegative) {
  // Keep the row count in sync with test.tsv but poison the first id.
  std::ifstream in(dir_ + "/eval_negatives.tsv");
  std::stringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  const size_t tab = content.find('\t');
  ASSERT_NE(tab, std::string::npos);
  Corrupt("eval_negatives.tsv", "999999" + content.substr(tab));
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("eval_negatives.tsv row 1"),
            std::string::npos);
}

TEST_F(IoFailureTest, NegativeMetaCountRejected) {
  Corrupt("meta.tsv", "bad\t-1\t10\t3\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("negative entity count"),
            std::string::npos);
}

// ----- BprSampler: saturated users must not hang ---------------------------

// Reproduces the release-mode infinite loop: a user who interacted with
// every item has no negative to sample. The guard is a hard CHECK now, so
// this dies loudly in every build type instead of spinning.
TEST(SamplerDeathTest, UserWithEveryItemDies) {
  data::Dataset ds;
  ds.name = "saturated";
  ds.num_users = 2;
  ds.num_items = 3;
  ds.num_relations = 1;
  for (int32_t i = 0; i < ds.num_items; ++i) {
    ds.train.push_back({0, i, i});
  }
  ds.train.push_back({1, 0, 0});
  data::BprSampler sampler(ds, /*seed=*/7);
  EXPECT_DEATH(sampler.SampleEpoch(2), "interacted with every item");
}

// A user with all items but one is fine — the bounded fallback must find
// that single unseen item instead of rejection-sampling forever.
TEST(SamplerTest, NearSaturatedUserGetsTheOnlyNegative) {
  data::Dataset ds;
  ds.name = "near_saturated";
  ds.num_users = 1;
  ds.num_items = 64;
  ds.num_relations = 1;
  const int32_t unseen = 37;
  for (int32_t i = 0; i < ds.num_items; ++i) {
    if (i != unseen) ds.train.push_back({0, i, i});
  }
  data::BprSampler sampler(ds, /*seed=*/11);
  for (const auto& batch : sampler.SampleEpoch(16)) {
    for (int32_t neg : batch.neg_items) {
      EXPECT_EQ(neg, unseen);
    }
  }
}

// ----- checkpoint durability ------------------------------------------------

class SerializeFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/dgnn_ckpt.bin";
    ::remove(path_.c_str());
    ::remove((path_ + ".tmp").c_str());
    a_ = store_.Create("a", ag::Tensor::Full(2, 3, 1.0f));
    b_ = store_.Create("b", ag::Tensor::Full(4, 1, 2.0f));
  }

  void TearDown() override {
    ::remove(path_.c_str());
    ::remove((path_ + ".tmp").c_str());
  }

  // Byte length of the file at `path_`.
  long FileSize() {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    return static_cast<long>(in.tellg());
  }

  void TruncateTo(long bytes) {
    std::ifstream in(path_, std::ios::binary);
    std::string content(static_cast<size_t>(bytes), '\0');
    in.read(content.data(), bytes);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }

  ag::ParamStore store_;
  ag::Parameter* a_ = nullptr;
  ag::Parameter* b_ = nullptr;
  std::string path_;
};

TEST_F(SerializeFailureTest, SaveLeavesNoTempFileBehind) {
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.is_open());
  std::ifstream final_file(path_);
  EXPECT_TRUE(final_file.is_open());
}

TEST_F(SerializeFailureTest, FailedSavePreservesExistingCheckpoint) {
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  const long good_size = FileSize();
  // Saving into a directory that does not exist fails before touching
  // `path_` — the temp file lives next to the target, never at it.
  util::Status s =
      ag::SaveParameters(store_, "/nonexistent_dir_zz/ckpt.bin");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(FileSize(), good_size);
  ASSERT_TRUE(ag::LoadParameters(store_, path_).ok());
}

TEST_F(SerializeFailureTest, TruncatedFileFailsAndStoreIsUntouched) {
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  const long full = FileSize();
  // Cut the file mid-way through the second parameter's values.
  TruncateTo(full - 2);
  // Scribble over the live store; a failed load must leave these values.
  a_->value.Fill(-7.0f);
  b_->value.Fill(-9.0f);
  util::Status s = ag::LoadParameters(store_, path_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  for (int64_t i = 0; i < a_->value.size(); ++i) {
    EXPECT_EQ(a_->value.data()[i], -7.0f) << "store mutated by failed load";
  }
  for (int64_t i = 0; i < b_->value.size(); ++i) {
    EXPECT_EQ(b_->value.data()[i], -9.0f) << "store mutated by failed load";
  }
}

TEST_F(SerializeFailureTest, TruncatedHeaderFails) {
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  TruncateTo(10);  // inside the count field
  util::Status s = ag::LoadParameters(store_, path_);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("truncated"), std::string::npos);
}

TEST_F(SerializeFailureTest, DuplicateParameterRecordRejected) {
  // Hand-build a file whose records list parameter "a" twice.
  ag::ParamStore dup_store;
  dup_store.Create("a", ag::Tensor::Full(2, 3, 1.0f));
  ASSERT_TRUE(ag::SaveParameters(dup_store, path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  // Layout: 8B magic, 8B count, then one record. Duplicate the record and
  // bump the count to 2.
  const std::string record = bytes.substr(16);
  bytes[8] = 2;
  bytes += record;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  util::Status s = ag::LoadParameters(store_, path_);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("duplicate parameter record"),
            std::string::npos);
}

TEST_F(SerializeFailureTest, TrailingGarbageRejected) {
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "extra bytes";
  }
  a_->value.Fill(-1.0f);
  util::Status s = ag::LoadParameters(store_, path_);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("trailing garbage"), std::string::npos);
  // And the failed load left the store untouched.
  EXPECT_EQ(a_->value.data()[0], -1.0f);
}

TEST_F(SerializeFailureTest, RoundTripStillWorks) {
  a_->value.Fill(3.5f);
  b_->value.Fill(-0.25f);
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  a_->value.Fill(0.0f);
  b_->value.Fill(0.0f);
  ASSERT_TRUE(ag::LoadParameters(store_, path_).ok());
  EXPECT_EQ(a_->value.data()[0], 3.5f);
  EXPECT_EQ(b_->value.data()[0], -0.25f);
}

// ----- failpoint-driven I/O faults -----------------------------------------
// The tests above corrupt bytes on disk; these inject faults at the I/O
// sites themselves (util/failpoint.h) and check that atomic writes and
// retries keep the same no-partial-state guarantees under env failures.

class FailpointIoTest : public SerializeFailureTest {
 protected:
  void SetUp() override {
    failpoint::Clear();
    SerializeFailureTest::SetUp();
  }
  void TearDown() override {
    failpoint::Clear();
    SerializeFailureTest::TearDown();
  }
};

TEST_F(FailpointIoTest, TransientWriteFaultAbsorbedByRetry) {
  ASSERT_TRUE(failpoint::Configure("fs.write=once").ok());
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  EXPECT_EQ(failpoint::TriggerCount("fs.write"), 1);
  failpoint::Clear();
  EXPECT_TRUE(ag::LoadParameters(store_, path_).ok());
}

TEST_F(FailpointIoTest, PersistentWriteFaultPreservesOldCheckpoint) {
  a_->value.Fill(1.5f);
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  ASSERT_TRUE(failpoint::Configure("fs.write=error").ok());
  a_->value.Fill(9.0f);
  util::Status s = ag::SaveParameters(store_, path_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  failpoint::Clear();
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.is_open()) << "failed save left its temp file behind";
  ASSERT_TRUE(ag::LoadParameters(store_, path_).ok());
  EXPECT_EQ(a_->value.data()[0], 1.5f) << "old checkpoint clobbered";
}

TEST_F(FailpointIoTest, RenameFaultPreservesOldCheckpoint) {
  a_->value.Fill(2.5f);
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  ASSERT_TRUE(failpoint::Configure("fs.rename=error").ok());
  a_->value.Fill(-4.0f);
  EXPECT_FALSE(ag::SaveParameters(store_, path_).ok());
  failpoint::Clear();
  ASSERT_TRUE(ag::LoadParameters(store_, path_).ok());
  EXPECT_EQ(a_->value.data()[0], 2.5f);
}

TEST_F(FailpointIoTest, TransientReadFaultAbsorbedByRetry) {
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  ASSERT_TRUE(failpoint::Configure("fs.read=once").ok());
  EXPECT_TRUE(ag::LoadParameters(store_, path_).ok());
  EXPECT_EQ(failpoint::TriggerCount("fs.read"), 1);
}

TEST_F(FailpointIoTest, SaveSiteInjectionFailsWholeSave) {
  ASSERT_TRUE(failpoint::Configure("params.save=error").ok());
  util::Status s = ag::SaveParameters(store_, path_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  failpoint::Clear();
  std::ifstream final_file(path_);
  EXPECT_FALSE(final_file.is_open()) << "save wrote despite injection";
}

TEST_F(FailpointIoTest, LoadSiteInjectionLeavesStoreUntouched) {
  ASSERT_TRUE(ag::SaveParameters(store_, path_).ok());
  a_->value.Fill(-7.0f);
  ASSERT_TRUE(failpoint::Configure("params.load=error").ok());
  util::Status s = ag::LoadParameters(store_, path_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  EXPECT_EQ(a_->value.data()[0], -7.0f) << "store mutated by failed load";
}

TEST_F(FailpointIoTest, DatasetLoadInjectionSurfacesAsInternal) {
  const std::string dir = ::testing::TempDir() + "/dgnn_fp_dataset";
  data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  ASSERT_TRUE(data::SaveDataset(ds, dir).ok());
  ASSERT_TRUE(failpoint::Configure("data.load_dataset=error").ok());
  auto loaded = data::LoadDataset(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInternal);
  failpoint::Clear();
  EXPECT_TRUE(data::LoadDataset(dir).ok());
}

TEST_F(FailpointIoTest, DatasetSaveInjectionSurfacesAsInternal) {
  const std::string dir = ::testing::TempDir() + "/dgnn_fp_dataset_save";
  data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  ASSERT_TRUE(failpoint::Configure("data.save_dataset=error").ok());
  util::Status s = data::SaveDataset(ds, dir);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
}

// ----- Validate() catches corrupted in-memory datasets --------------------

using DataValidateDeathTest = ::testing::Test;

TEST(DataValidateDeathTest, OutOfRangeUser) {
  data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  ds.train.push_back({ds.num_users + 5, 0, 0});
  EXPECT_DEATH(ds.Validate(), "CHECK FAILED");
}

TEST(DataValidateDeathTest, UnsortedSocialPair) {
  data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  ds.social.push_back({5, 2});  // violates u < v
  EXPECT_DEATH(ds.Validate(), "u < v");
}

TEST(DataValidateDeathTest, NegativeThatWasInteracted) {
  data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  ASSERT_FALSE(ds.test.empty());
  // Replace a negative with an item the user interacted with in training.
  const int32_t user = ds.test[0].user;
  int32_t seen_item = -1;
  for (const auto& it : ds.train) {
    if (it.user == user) {
      seen_item = it.item;
      break;
    }
  }
  ASSERT_GE(seen_item, 0);
  ds.eval_negatives[0][0] = seen_item;
  EXPECT_DEATH(ds.Validate(), "interacted");
}

// ----- Tape API misuse dies with CHECK -------------------------------------

using TapeDeathTest = ::testing::Test;

TEST(TapeDeathTest, BackwardRequiresScalarRoot) {
  ag::ParamStore store;
  auto* p = store.Create("p", ag::Tensor(2, 2));
  ag::Tape t;
  ag::VarId v = t.Param(p);
  EXPECT_DEATH(t.Backward(v), "scalar");
}

TEST(TapeDeathTest, BackwardRequiresGradPath) {
  ag::Tape t;
  ag::VarId c = t.Constant(ag::Tensor::Scalar(1.0f));
  EXPECT_DEATH(t.Backward(c), "depend");
}

TEST(TapeDeathTest, ShapeMismatchInAdd) {
  ag::Tape t;
  ag::VarId a = t.Constant(ag::Tensor(2, 3));
  ag::VarId b = t.Constant(ag::Tensor(3, 2));
  EXPECT_DEATH(t.Add(a, b), "CHECK FAILED");
}

TEST(TapeDeathTest, SpMMWithoutTransposeForGradient) {
  graph::CooMatrix coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.Add(0, 1);
  graph::CsrMatrix adj = graph::CsrMatrix::FromCoo(coo);
  ag::ParamStore store;
  auto* p = store.Create("p", ag::Tensor(2, 3));
  ag::Tape t;
  EXPECT_DEATH(t.SpMM(&adj, nullptr, t.Param(p)), "transposed");
}

TEST(TapeDeathTest, ColOutOfRange) {
  ag::Tape t;
  ag::VarId a = t.Constant(ag::Tensor(2, 3));
  EXPECT_DEATH(t.Col(a, 3), "CHECK FAILED");
}

// ----- metrics misuse -------------------------------------------------------

TEST(MetricsDeathTest, RanksMustBePositive) {
  EXPECT_DEATH(train::MetricsFromRanks({0}, {10}), "CHECK FAILED");
}

}  // namespace
}  // namespace dgnn
