// Failure-injection tests: malformed inputs and contract violations must
// fail loudly (Status for runtime data, CHECK death for API misuse) —
// never silently corrupt.

#include <fstream>

#include <gtest/gtest.h>

#include "ag/tape.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "train/metrics.h"

namespace dgnn {
namespace {

// ----- data loading: malformed files produce Status errors ----------------

class IoFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/dgnn_io_failure";
    data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
    ASSERT_TRUE(data::SaveDataset(ds, dir_).ok());
  }

  void Corrupt(const std::string& file, const std::string& content) {
    std::ofstream out(dir_ + "/" + file, std::ios::trunc);
    out << content;
  }

  std::string dir_;
};

TEST_F(IoFailureTest, BadMetaHeader) {
  Corrupt("meta.tsv", "only_two_fields\t3\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(IoFailureTest, NonNumericInteraction) {
  Corrupt("train.tsv", "1\tnotanumber\t0\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(IoFailureTest, ShortRow) {
  Corrupt("social.tsv", "5\n");
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("short row"), std::string::npos);
}

TEST_F(IoFailureTest, NegativesCountMismatch) {
  Corrupt("eval_negatives.tsv", "1\t2\t3\n");  // one row, many test users
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("does not match"),
            std::string::npos);
}

TEST_F(IoFailureTest, MissingFile) {
  ASSERT_EQ(::remove((dir_ + "/item_relations.tsv").c_str()), 0);
  auto loaded = data::LoadDataset(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

// ----- Validate() catches corrupted in-memory datasets --------------------

using DataValidateDeathTest = ::testing::Test;

TEST(DataValidateDeathTest, OutOfRangeUser) {
  data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  ds.train.push_back({ds.num_users + 5, 0, 0});
  EXPECT_DEATH(ds.Validate(), "CHECK FAILED");
}

TEST(DataValidateDeathTest, UnsortedSocialPair) {
  data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  ds.social.push_back({5, 2});  // violates u < v
  EXPECT_DEATH(ds.Validate(), "u < v");
}

TEST(DataValidateDeathTest, NegativeThatWasInteracted) {
  data::Dataset ds = data::GenerateSynthetic(data::SyntheticConfig::Tiny());
  ASSERT_FALSE(ds.test.empty());
  // Replace a negative with an item the user interacted with in training.
  const int32_t user = ds.test[0].user;
  int32_t seen_item = -1;
  for (const auto& it : ds.train) {
    if (it.user == user) {
      seen_item = it.item;
      break;
    }
  }
  ASSERT_GE(seen_item, 0);
  ds.eval_negatives[0][0] = seen_item;
  EXPECT_DEATH(ds.Validate(), "interacted");
}

// ----- Tape API misuse dies with CHECK -------------------------------------

using TapeDeathTest = ::testing::Test;

TEST(TapeDeathTest, BackwardRequiresScalarRoot) {
  ag::ParamStore store;
  auto* p = store.Create("p", ag::Tensor(2, 2));
  ag::Tape t;
  ag::VarId v = t.Param(p);
  EXPECT_DEATH(t.Backward(v), "scalar");
}

TEST(TapeDeathTest, BackwardRequiresGradPath) {
  ag::Tape t;
  ag::VarId c = t.Constant(ag::Tensor::Scalar(1.0f));
  EXPECT_DEATH(t.Backward(c), "depend");
}

TEST(TapeDeathTest, ShapeMismatchInAdd) {
  ag::Tape t;
  ag::VarId a = t.Constant(ag::Tensor(2, 3));
  ag::VarId b = t.Constant(ag::Tensor(3, 2));
  EXPECT_DEATH(t.Add(a, b), "CHECK FAILED");
}

TEST(TapeDeathTest, SpMMWithoutTransposeForGradient) {
  graph::CooMatrix coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.Add(0, 1);
  graph::CsrMatrix adj = graph::CsrMatrix::FromCoo(coo);
  ag::ParamStore store;
  auto* p = store.Create("p", ag::Tensor(2, 3));
  ag::Tape t;
  EXPECT_DEATH(t.SpMM(&adj, nullptr, t.Param(p)), "transposed");
}

TEST(TapeDeathTest, ColOutOfRange) {
  ag::Tape t;
  ag::VarId a = t.Constant(ag::Tensor(2, 3));
  EXPECT_DEATH(t.Col(a, 3), "CHECK FAILED");
}

// ----- metrics misuse -------------------------------------------------------

TEST(MetricsDeathTest, RanksMustBePositive) {
  EXPECT_DEATH(train::MetricsFromRanks({0}, {10}), "CHECK FAILED");
}

}  // namespace
}  // namespace dgnn
