// End-to-end tests for the fault-tolerant router: real ShardService
// workers behind real Unix-socket SocketServers, a real Router
// scatter/gathering across them. Covers full-fleet bit-parity with the
// single-process engine, the kill-one-shard matrix (degraded:true with
// correct missing-shard attribution, popularity failover for a down
// user shard, hard failure only when every shard is gone, probe-driven
// recovery after restart), retry/hedging behavior under failpoints, the
// two-phase coordinated swap (commit everywhere / abort everywhere),
// and the drain barrier.

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "shard/partition.h"
#include "shard/router.h"
#include "shard/shard_service.h"
#include "shard/transport.h"
#include "train/recommender.h"
#include "util/failpoint.h"

namespace dgnn {
namespace {

using serve::Request;
using serve::Response;
using serve::ServingEngine;
using serve::Snapshot;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

constexpr int kNumShards = 3;

// One in-process shard worker: engine + service + socket server, the
// exact wiring dgnn_serve --listen uses.
struct Worker {
  std::unique_ptr<ServingEngine> engine;
  std::unique_ptr<shard::ShardService> service;
  std::unique_ptr<shard::SocketServer> server;
  std::string snapshot_path;
  std::string socket_path;

  void Serve() {
    server = std::make_unique<shard::SocketServer>();
    ASSERT_TRUE(server
                    ->Start(socket_path,
                            [this](const std::string& line) {
                              return service->HandleLine(line);
                            })
                    .ok());
  }
  void Kill() { server->Stop(); }
};

class ShardRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::Clear();
    dataset_ = std::make_unique<data::Dataset>(
        data::GenerateSynthetic(data::SyntheticConfig::Tiny()));
    graph_ = std::make_unique<graph::HeteroGraph>(*dataset_);
    model_ = std::make_unique<models::BprMf>(*graph_, 8, 5);
    recommender_ =
        std::make_unique<train::Recommender>(*model_, *dataset_);
    full_ = serve::BuildSnapshot(*recommender_, *dataset_, "BPR-MF",
                                 "router-test");
    single_ = std::make_unique<ServingEngine>();
    single_->Swap(std::make_shared<const Snapshot>(full_));

    base_path_ = TestPath("router_fleet.snap");
    ASSERT_TRUE(serve::WriteSnapshot(full_, base_path_).ok());
    ASSERT_TRUE(
        shard::WriteShardSnapshots(full_, base_path_, kNumShards, 42)
            .ok());
    for (int s = 0; s < kNumShards; ++s) {
      auto w = std::make_unique<Worker>();
      w->snapshot_path =
          serve::ShardSnapshotPath(base_path_, s, kNumShards);
      w->socket_path =
          TestPath("router_s" + std::to_string(s) + ".sock");
      w->engine = std::make_unique<ServingEngine>();
      ASSERT_TRUE(w->engine->Load(w->snapshot_path).ok());
      w->service = std::make_unique<shard::ShardService>(
          *w->engine, w->snapshot_path);
      w->Serve();
      workers_.push_back(std::move(w));
    }
  }

  void TearDown() override {
    failpoint::Clear();
    router_.reset();
    for (auto& w : workers_) w->Kill();
  }

  shard::RouterConfig FastConfig() {
    shard::RouterConfig c;
    for (const auto& w : workers_) {
      c.shard_paths.push_back(w->socket_path);
    }
    c.connect_timeout_ms = 250;
    c.shard_timeout_ms = 2000;
    c.probe_timeout_ms = 250;
    c.probe_interval_ms = 20;
    c.default_deadline_ms = 5000;
    c.retries = 2;
    return c;
  }

  void StartRouter(shard::RouterConfig config) {
    router_ = std::make_unique<shard::Router>(std::move(config));
    util::Status s = router_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // First user the ring assigns to `shard` — every kill test needs a
  // victim whose owner is (or is not) the dead worker.
  int32_t UserOwnedBy(int shard) {
    for (int32_t u = 0; u < full_.meta.num_users; ++u) {
      if (router_->OwnerShard(u) == shard) return u;
    }
    ADD_FAILURE() << "no user owned by shard " << shard;
    return 0;
  }

  void WaitForState(int shard, shard::HealthState want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (router_->ShardStatuses()[static_cast<size_t>(shard)].state ==
          want) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "shard " << shard << " never reached state "
           << shard::HealthStateName(want);
  }

  static void ExpectBitIdentical(const Response& want,
                                 const Response& got) {
    ASSERT_TRUE(want.ok);
    ASSERT_TRUE(got.ok);
    ASSERT_EQ(want.items.size(), got.items.size());
    for (size_t i = 0; i < want.items.size(); ++i) {
      EXPECT_EQ(want.items[i].item, got.items[i].item) << "rank " << i;
      EXPECT_EQ(std::memcmp(&want.items[i].score, &got.items[i].score,
                            sizeof(float)),
                0)
          << "rank " << i;
    }
  }

  Response SingleTopK(int32_t user, int k) {
    Request r;
    r.type = Request::Type::kTopK;
    r.user = user;
    r.k = k;
    return single_->Handle(r);
  }

  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<graph::HeteroGraph> graph_;
  std::unique_ptr<models::BprMf> model_;
  std::unique_ptr<train::Recommender> recommender_;
  Snapshot full_;
  std::unique_ptr<ServingEngine> single_;
  std::string base_path_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<shard::Router> router_;
};

// ----- fleet admission ------------------------------------------------------

TEST_F(ShardRouterTest, StartRefusesSocketsOutOfShardOrder) {
  shard::RouterConfig c = FastConfig();
  std::swap(c.shard_paths[0], c.shard_paths[2]);
  shard::Router router(std::move(c));
  util::Status s = router.Start();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("shard-index order"), std::string::npos)
      << s.ToString();
}

TEST_F(ShardRouterTest, StartRefusesMissingWorker) {
  shard::RouterConfig c = FastConfig();
  c.shard_paths[1] = TestPath("router_nobody_home.sock");
  c.connect_timeout_ms = 100;
  shard::Router router(std::move(c));
  EXPECT_FALSE(router.Start().ok());
}

// ----- full-fleet parity ----------------------------------------------------

TEST_F(ShardRouterTest, TopKBitIdenticalToSingleProcess) {
  StartRouter(FastConfig());
  for (int32_t user = 0; user < full_.meta.num_users; ++user) {
    const Response got = router_->TopK(user, 10);
    EXPECT_TRUE(got.missing_shards.empty());
    EXPECT_FALSE(got.degraded);
    ExpectBitIdentical(SingleTopK(user, 10), got);
  }
}

TEST_F(ShardRouterTest, ScoreAndSimilarUsersMatchSingleProcess) {
  StartRouter(FastConfig());
  for (int32_t user = 0; user < 8; ++user) {
    Request sr;
    sr.type = Request::Type::kScore;
    sr.user = user;
    sr.item = 42;
    const Response want = single_->Handle(sr);
    const Response got = router_->Score(user, 42);
    ASSERT_TRUE(want.ok);
    ASSERT_TRUE(got.ok);
    EXPECT_EQ(std::memcmp(&want.score, &got.score, sizeof(float)), 0);

    Request su;
    su.type = Request::Type::kSimilarUsers;
    su.user = user;
    su.k = 5;
    ExpectBitIdentical(single_->Handle(su),
                       router_->SimilarUsers(user, 5));
  }
}

TEST_F(ShardRouterTest, UnknownUserDegradesToPopularityEverywhere) {
  StartRouter(FastConfig());
  const auto unknown = static_cast<int32_t>(full_.meta.num_users + 3);
  const Response want = SingleTopK(unknown, 10);
  ASSERT_TRUE(want.degraded);
  const Response got = router_->TopK(unknown, 10);
  EXPECT_TRUE(got.degraded);
  // A cold user is a degradation but NOT a shard failure: full fleet,
  // nothing missing, and the exact popularity order of the single
  // process.
  EXPECT_TRUE(got.missing_shards.empty());
  ExpectBitIdentical(want, got);
}

// ----- kill-one-shard matrix ------------------------------------------------

TEST_F(ShardRouterTest, DeadItemShardYieldsDegradedWithAttribution) {
  StartRouter(FastConfig());
  // Victim shard 2 is an item shard for this user but not their owner.
  const int32_t user = UserOwnedBy(0);
  workers_[2]->Kill();

  const auto t0 = std::chrono::steady_clock::now();
  const Response got = router_->TopK(user, 10);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 8.0) << "kill must degrade, not hang";

  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_TRUE(got.degraded);
  ASSERT_EQ(got.missing_shards.size(), 1u);
  EXPECT_EQ(got.missing_shards[0], 2);
  // Every returned item lives OUTSIDE the dead shard's range, and the
  // surviving slices still rank bit-identically to the single process
  // with shard 2's items deleted.
  Response want = SingleTopK(user, 10);
  const auto dead = workers_[2]->engine->snapshot()->shard;
  std::vector<serve::ScoredItem> filtered;
  Request full_req;
  full_req.type = Request::Type::kTopK;
  full_req.user = user;
  full_req.k = 10 + static_cast<int>(dead.item_end - dead.item_begin);
  const Response wide = single_->Handle(full_req);
  for (const auto& it : wide.items) {
    if (it.item < dead.item_begin || it.item >= dead.item_end) {
      filtered.push_back(it);
    }
    if (filtered.size() == 10u) break;
  }
  ASSERT_EQ(got.items.size(), filtered.size());
  for (size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(got.items[i].item, filtered[i].item);
    EXPECT_EQ(std::memcmp(&got.items[i].score, &filtered[i].score,
                          sizeof(float)),
              0);
  }
  EXPECT_GE(router_->counters().degraded_responses, 1);
}

TEST_F(ShardRouterTest, DeadUserShardFailsOverToPopularity) {
  StartRouter(FastConfig());
  const int32_t user = UserOwnedBy(1);
  workers_[1]->Kill();

  const Response got = router_->TopK(user, 10);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_TRUE(got.degraded);
  // The owner is named missing even though the answer substitutes
  // popularity rather than dropping items.
  ASSERT_FALSE(got.missing_shards.empty());
  EXPECT_EQ(got.missing_shards[0], 1);
  EXPECT_FALSE(got.items.empty());
  EXPECT_GE(router_->counters().failovers, 1);
}

TEST_F(ShardRouterTest, DeadShardScoreDegradesToNeutral) {
  StartRouter(FastConfig());
  const int32_t user = UserOwnedBy(2);
  workers_[2]->Kill();
  const Response got = router_->Score(user, 3);
  ASSERT_TRUE(got.ok);
  EXPECT_TRUE(got.degraded);
  EXPECT_EQ(got.score, 0.0f);
  ASSERT_FALSE(got.missing_shards.empty());
  EXPECT_EQ(got.missing_shards[0], 2);
}

TEST_F(ShardRouterTest, AllShardsDownFailsInsteadOfDegrading) {
  shard::RouterConfig c = FastConfig();
  c.default_deadline_ms = 1500;
  StartRouter(std::move(c));
  for (auto& w : workers_) w->Kill();
  const Response got = router_->TopK(3, 10);
  EXPECT_FALSE(got.ok);
  EXPECT_FALSE(got.error.empty());
}

TEST_F(ShardRouterTest, ProbesTakeDeadShardDownAndRecoverAfterRestart) {
  StartRouter(FastConfig());
  workers_[2]->Kill();
  WaitForState(2, shard::HealthState::kDown);

  // While down, dispatches short-circuit: still degraded, still fast.
  const Response during = router_->TopK(UserOwnedBy(0), 10);
  ASSERT_TRUE(during.ok);
  EXPECT_TRUE(during.degraded);

  // Restart the worker on the same socket; the probe loop must re-admit
  // it (down -> degraded on first good probe, never straight healthy)
  // and full-fleet answers must be bit-identical again.
  workers_[2]->Serve();
  WaitForState(2, shard::HealthState::kDegraded);
  const int32_t user = UserOwnedBy(0);
  const Response after = router_->TopK(user, 10);
  ASSERT_TRUE(after.ok);
  EXPECT_TRUE(after.missing_shards.empty());
  ExpectBitIdentical(SingleTopK(user, 10), after);
}

// ----- retries / hedging ----------------------------------------------------

TEST_F(ShardRouterTest, TransientDispatchErrorIsRetried) {
  StartRouter(FastConfig());
  ASSERT_TRUE(failpoint::Configure("shard.dispatch=once").ok());
  const int32_t user = UserOwnedBy(0);
  const Response got = router_->TopK(user, 10);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_TRUE(got.missing_shards.empty());
  ExpectBitIdentical(SingleTopK(user, 10), got);
  EXPECT_GE(router_->counters().retries, 1);
}

TEST_F(ShardRouterTest, HedgedFleetStillBitIdentical) {
  shard::RouterConfig c = FastConfig();
  c.hedge_ms = 1;  // hedge aggressively; results must not change
  StartRouter(std::move(c));
  for (int32_t user = 0; user < 10; ++user) {
    ExpectBitIdentical(SingleTopK(user, 10), router_->TopK(user, 10));
  }
}

TEST_F(ShardRouterTest, MaxInflightShedsInsteadOfQueueing) {
  shard::RouterConfig c = FastConfig();
  c.max_inflight = 1;
  StartRouter(std::move(c));
  // Saturate the single slot from many threads; at least one op must be
  // shed with the PR-5 "overloaded" contract (and none may hang).
  std::vector<Response> responses(16);
  std::vector<std::thread> threads;
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([this, &responses, i] {
      responses[static_cast<size_t>(i)] = router_->TopK(i % 8, 10);
    });
  }
  for (auto& t : threads) t.join();
  int64_t shed = 0;
  for (const auto& r : responses) {
    if (!r.ok && r.error == "overloaded") ++shed;
  }
  EXPECT_EQ(shed, router_->counters().shed);
}

// ----- two-phase coordinated swap -------------------------------------------

TEST_F(ShardRouterTest, CoordinatedSwapCommitsOnEveryShard) {
  StartRouter(FastConfig());
  // Second export under a different prefix (same content is fine — the
  // point is the fleet-wide version bump).
  const std::string next = TestPath("router_fleet_v2.snap");
  ASSERT_TRUE(
      shard::WriteShardSnapshots(full_, next, kNumShards, 42).ok());
  auto version = router_->CoordinatedSwap(next);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  for (const auto& w : workers_) {
    EXPECT_EQ(w->engine->swap_count(), 2);  // initial load + commit
    EXPECT_FALSE(w->service->has_staged());
  }
  // The fleet still answers bit-identically on the new snapshot.
  const int32_t user = UserOwnedBy(0);
  ExpectBitIdentical(SingleTopK(user, 10), router_->TopK(user, 10));
}

TEST_F(ShardRouterTest, PrepareFailureAbortsOnEveryShard) {
  StartRouter(FastConfig());
  const std::string next = TestPath("router_fleet_v3.snap");
  ASSERT_TRUE(
      shard::WriteShardSnapshots(full_, next, kNumShards, 42).ok());
  // One prepare RPC fails -> the whole swap must abort everywhere: no
  // staged snapshots anywhere, no engine swaps anywhere.
  ASSERT_TRUE(failpoint::Configure("shard.swap=once").ok());
  auto version = router_->CoordinatedSwap(next);
  EXPECT_FALSE(version.ok());
  EXPECT_NE(version.status().ToString().find("aborted"),
            std::string::npos)
      << version.status().ToString();
  for (const auto& w : workers_) {
    EXPECT_FALSE(w->service->has_staged());
    EXPECT_EQ(w->engine->swap_count(), 1);
  }
}

TEST_F(ShardRouterTest, PrepareRejectsCorruptSliceAndAbortsFleet) {
  StartRouter(FastConfig());
  const std::string next = TestPath("router_fleet_v4.snap");
  ASSERT_TRUE(
      shard::WriteShardSnapshots(full_, next, kNumShards, 42).ok());
  // Truncate shard 1's slice: its prepare must fail validation, and the
  // router must abort the stage on shards 0 and 2.
  const std::string victim =
      serve::ShardSnapshotPath(next, 1, kNumShards);
  {
    std::ofstream f(victim, std::ios::trunc | std::ios::binary);
    f << "DGNNSNP1 but not really";
  }
  auto version = router_->CoordinatedSwap(next);
  EXPECT_FALSE(version.ok());
  for (const auto& w : workers_) {
    EXPECT_FALSE(w->service->has_staged());
    EXPECT_EQ(w->engine->swap_count(), 1);
  }
}

// ----- drain ----------------------------------------------------------------

TEST_F(ShardRouterTest, DrainWaitsOutInflightOpsThenStops) {
  StartRouter(FastConfig());
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([this, &done, i] {
      const Response r = router_->TopK(i, 10);
      if (r.ok) done.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  router_->BeginDrain();
  EXPECT_EQ(done.load(), 8);
  router_->Stop();  // idempotent after drain
}

TEST_F(ShardRouterTest, WorkerDrainAbortsStagedSwap) {
  StartRouter(FastConfig());
  // Stage (prepare) directly on worker 0 without committing, then run
  // the worker's drain path: the staged snapshot must be dropped — a
  // SIGTERM mid-two-phase-swap leaves the fleet on the old version.
  const std::string next = TestPath("router_fleet_v5.snap");
  ASSERT_TRUE(
      shard::WriteShardSnapshots(full_, next, kNumShards, 42).ok());
  const std::string line =
      "{\"op\":\"swap_prepare\",\"prefix\":\"" + next +
      "\",\"token\":\"t1\"}";
  const std::string resp = workers_[0]->service->HandleLine(line);
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  ASSERT_TRUE(workers_[0]->service->has_staged());
  EXPECT_TRUE(workers_[0]->service->AbortStagedSwap());
  EXPECT_FALSE(workers_[0]->service->has_staged());
  EXPECT_EQ(workers_[0]->engine->swap_count(), 1);
}

// ----- stats ----------------------------------------------------------------

TEST_F(ShardRouterTest, StatsJsonCarriesPerShardHealth) {
  StartRouter(FastConfig());
  (void)router_->TopK(0, 5);
  const std::string stats = router_->StatsJson();
  EXPECT_NE(stats.find("\"op\":\"stats\""), std::string::npos);
  EXPECT_NE(stats.find("\"bench\":\"dgnn_router\""), std::string::npos);
  EXPECT_NE(stats.find("serve.shard.retries"), std::string::npos);
  EXPECT_NE(stats.find("serve.shard.failovers"), std::string::npos);
  EXPECT_NE(stats.find("serve.shard.degraded_responses"),
            std::string::npos);
  for (int s = 0; s < kNumShards; ++s) {
    EXPECT_NE(stats.find(workers_[static_cast<size_t>(s)]->socket_path),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dgnn
