// Crash-safe resume tests: a training run cut at ANY batch boundary and
// resumed from its checkpoint must finish with parameters bit-identical
// to the uninterrupted run — at any thread count, including for models
// that hold their own training-time RNG (NGCF node dropout).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ag/serialize.h"
#include "data/synthetic.h"
#include "graph/hetero_graph.h"
#include "models/bpr_mf.h"
#include "models/ngcf.h"
#include "train/trainer.h"
#include "util/thread_pool.h"

namespace dgnn::train {
namespace {

// Every parameter value concatenated as raw bytes — bitwise comparable.
std::string ParamBytes(ag::ParamStore& store) {
  std::string out;
  for (const auto& p : store.params()) {
    out.append(reinterpret_cast<const char*>(p->value.data()),
               static_cast<size_t>(p->value.size()) * sizeof(float));
  }
  return out;
}

class ResumeTest : public ::testing::Test {
 protected:
  ResumeTest()
      : dataset_(data::GenerateSynthetic(data::SyntheticConfig::Tiny())),
        graph_(dataset_) {
    ckpt_ = ::testing::TempDir() + "/dgnn_resume.ckpt";
    ::remove(ckpt_.c_str());
  }
  void TearDown() override {
    ClearInterrupt();
    ::remove(ckpt_.c_str());
  }

  TrainConfig BaseConfig() const {
    TrainConfig tc;
    tc.epochs = 3;
    tc.batch_size = 64;
    tc.seed = 7;
    return tc;
  }

  std::unique_ptr<models::RecModel> MakeModel(bool stochastic) const {
    if (stochastic) {
      models::NgcfConfig cfg;
      cfg.embedding_dim = 8;
      cfg.num_layers = 1;
      cfg.node_dropout = 0.3f;  // exercises the model-owned dropout RNG
      cfg.seed = 5;
      return std::make_unique<models::Ngcf>(graph_, cfg);
    }
    return std::make_unique<models::BprMf>(graph_, 8, 5);
  }

  int64_t BatchesPerEpoch(const TrainConfig& tc) const {
    return (static_cast<int64_t>(dataset_.train.size()) + tc.batch_size - 1) /
           tc.batch_size;
  }

  // The ground truth: one uninterrupted run.
  std::string UninterruptedRun(bool stochastic) {
    auto model = MakeModel(stochastic);
    Trainer trainer(model.get(), dataset_, BaseConfig());
    auto result = trainer.Fit();
    EXPECT_FALSE(result.interrupted);
    return ParamBytes(model->params());
  }

  // Cut the run after `kill_after` batches (checkpointing on interrupt),
  // then resume from the checkpoint and run to completion.
  std::string KilledAndResumedRun(bool stochastic, int64_t kill_after) {
    {
      auto victim = MakeModel(stochastic);
      TrainConfig tc = BaseConfig();
      tc.checkpoint_path = ckpt_;
      tc.max_batches = kill_after;
      Trainer trainer(victim.get(), dataset_, tc);
      auto result = trainer.Fit();
      EXPECT_TRUE(result.interrupted) << "kill point " << kill_after;
    }
    auto survivor = MakeModel(stochastic);
    TrainConfig tc = BaseConfig();
    tc.checkpoint_path = ckpt_;
    Trainer trainer(survivor.get(), dataset_, tc);
    util::Status resumed = trainer.Resume(ckpt_);
    EXPECT_TRUE(resumed.ok()) << resumed.ToString();
    auto result = trainer.Fit();
    EXPECT_FALSE(result.interrupted);
    EXPECT_TRUE(result.resumed);
    EXPECT_EQ(result.resumed_from, ckpt_);
    return ParamBytes(survivor->params());
  }

  data::Dataset dataset_;
  graph::HeteroGraph graph_;
  std::string ckpt_;
};

TEST_F(ResumeTest, KillPointSweepBitIdentical) {
  const int64_t per_epoch = BatchesPerEpoch(BaseConfig());
  const int64_t total = per_epoch * BaseConfig().epochs;
  ASSERT_GE(total, 3);
  const std::string baseline = UninterruptedRun(/*stochastic=*/false);
  // Every batch boundary: first/last batch of an epoch, mid-epoch, and
  // the epoch boundaries themselves (cursor == batches per epoch).
  for (int64_t kill = 1; kill < total; ++kill) {
    const std::string resumed =
        KilledAndResumedRun(/*stochastic=*/false, kill);
    ASSERT_EQ(resumed.size(), baseline.size());
    EXPECT_EQ(std::memcmp(resumed.data(), baseline.data(), baseline.size()),
              0)
        << "resume after batch " << kill << " diverged";
  }
}

TEST_F(ResumeTest, KillPointSweepBitIdenticalAcrossThreadCounts) {
  const int64_t per_epoch = BatchesPerEpoch(BaseConfig());
  const int64_t total = per_epoch * BaseConfig().epochs;
  const int saved_threads = util::NumThreads();
  util::SetNumThreads(1);
  const std::string baseline = UninterruptedRun(/*stochastic=*/false);
  const std::vector<int64_t> kills = {1, per_epoch, total - 1};
  for (int threads : {1, 4}) {
    util::SetNumThreads(threads);
    for (int64_t kill : kills) {
      const std::string resumed =
          KilledAndResumedRun(/*stochastic=*/false, kill);
      EXPECT_EQ(resumed, baseline)
          << "threads=" << threads << " kill=" << kill;
    }
  }
  util::SetNumThreads(saved_threads);
}

TEST_F(ResumeTest, StochasticModelResumesBitIdentical) {
  // NGCF holds a persistent dropout RNG; resume must restore it, not just
  // the parameters, or the post-resume batches draw different masks.
  const int64_t per_epoch = BatchesPerEpoch(BaseConfig());
  const std::string baseline = UninterruptedRun(/*stochastic=*/true);
  for (int64_t kill : {int64_t{1}, per_epoch + 1}) {
    EXPECT_EQ(KilledAndResumedRun(/*stochastic=*/true, kill), baseline)
        << "kill=" << kill;
  }
}

TEST_F(ResumeTest, PeriodicCheckpointsAreResumable) {
  // Checkpoint on a cadence (not just on interrupt), kill WITHOUT a final
  // save by pointing the interrupt save at the same path — the last
  // periodic checkpoint plus the interrupt one must both be resumable;
  // here we resume from whatever the cadence left behind.
  const std::string baseline = UninterruptedRun(/*stochastic=*/false);
  {
    auto victim = MakeModel(/*stochastic=*/false);
    TrainConfig tc = BaseConfig();
    tc.checkpoint_path = ckpt_;
    tc.checkpoint_every = 2;
    tc.max_batches = 5;
    Trainer trainer(victim.get(), dataset_, tc);
    EXPECT_TRUE(trainer.Fit().interrupted);
  }
  auto survivor = MakeModel(/*stochastic=*/false);
  TrainConfig tc = BaseConfig();
  tc.checkpoint_path = ckpt_;
  tc.checkpoint_every = 2;
  Trainer trainer(survivor.get(), dataset_, tc);
  ASSERT_TRUE(trainer.Resume(ckpt_).ok());
  trainer.Fit();
  EXPECT_EQ(ParamBytes(survivor->params()), baseline);
}

TEST_F(ResumeTest, InterruptRequestStopsAndCheckpoints) {
  auto model = MakeModel(/*stochastic=*/false);
  TrainConfig tc = BaseConfig();
  tc.checkpoint_path = ckpt_;
  Trainer trainer(model.get(), dataset_, tc);
  RequestInterrupt();
  auto result = trainer.Fit();
  EXPECT_TRUE(result.interrupted);
  EXPECT_TRUE(result.final_metrics.hr.empty());  // no final eval
  // The interrupt left a resumable checkpoint behind.
  auto survivor = MakeModel(/*stochastic=*/false);
  Trainer resumer(survivor.get(), dataset_, BaseConfig());
  EXPECT_TRUE(resumer.Resume(ckpt_).ok());
}

TEST_F(ResumeTest, ConfigMismatchRejected) {
  {
    auto victim = MakeModel(/*stochastic=*/false);
    TrainConfig tc = BaseConfig();
    tc.checkpoint_path = ckpt_;
    tc.max_batches = 2;
    Trainer trainer(victim.get(), dataset_, tc);
    EXPECT_TRUE(trainer.Fit().interrupted);
  }
  TrainConfig changed = BaseConfig();
  changed.batch_size = 32;  // not the run this checkpoint belongs to
  auto model = MakeModel(/*stochastic=*/false);
  Trainer trainer(model.get(), dataset_, changed);
  util::Status s = trainer.Resume(ckpt_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ResumeTest, V1ParameterFileRejected) {
  auto model = MakeModel(/*stochastic=*/false);
  ASSERT_TRUE(ag::SaveParameters(model->params(), ckpt_).ok());
  Trainer trainer(model.get(), dataset_, BaseConfig());
  util::Status s = trainer.Resume(ckpt_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(s.ToString().find("v1"), std::string::npos);
}

TEST_F(ResumeTest, V2CheckpointLoadsAsPlainParameters) {
  // LoadParameters accepts a v2 checkpoint (ignoring optimizer state), so
  // a crash-era checkpoint still works for --mode=evaluate / export.
  auto model = MakeModel(/*stochastic=*/false);
  {
    TrainConfig tc = BaseConfig();
    tc.checkpoint_path = ckpt_;
    tc.max_batches = 2;
    Trainer trainer(model.get(), dataset_, tc);
    EXPECT_TRUE(trainer.Fit().interrupted);
  }
  const std::string at_checkpoint = ParamBytes(model->params());
  auto other = MakeModel(/*stochastic=*/false);
  ASSERT_TRUE(ag::LoadParameters(other->params(), ckpt_).ok());
  EXPECT_EQ(ParamBytes(other->params()), at_checkpoint);
}

}  // namespace
}  // namespace dgnn::train
