// Property-style numerical gradient verification: every differentiable op
// is exercised inside a small scalar-loss graph and its reverse-mode
// gradients are compared against central finite differences.

#include "ag/grad_check.h"

#include <gtest/gtest.h>

#include "ag/tape.h"
#include "graph/coo.h"

namespace dgnn::ag {
namespace {

// A named graph builder over two generic parameter matrices.
struct OpCase {
  const char* name;
  // Shapes of the two parameters.
  int64_t a_rows, a_cols, b_rows, b_cols;
  VarId (*build)(Tape&, Parameter*, Parameter*);
};

VarId LossOf(Tape& t, VarId x) {
  // A non-symmetric scalar loss so gradient errors cannot cancel: weight
  // each entry differently via an elementwise product with a ramp.
  const Tensor& v = t.val(x);
  Tensor ramp(v.rows(), v.cols());
  for (int64_t i = 0; i < ramp.size(); ++i) {
    ramp.data()[i] = 0.1f * static_cast<float>(i % 7) + 0.05f;
  }
  return t.SumAll(t.Mul(x, t.Constant(ramp)));
}

const OpCase kCases[] = {
    {"matmul", 3, 4, 4, 2,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.MatMul(t.Param(a), t.Param(b)));
     }},
    {"matmul_ta", 4, 3, 4, 2,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.MatMul(t.Param(a), t.Param(b), true, false));
     }},
    {"matmul_tb", 3, 4, 2, 4,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.MatMul(t.Param(a), t.Param(b), false, true));
     }},
    {"matmul_ta_tb", 4, 3, 2, 4,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.MatMul(t.Param(a), t.Param(b), true, true));
     }},
    {"add", 3, 3, 3, 3,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.Add(t.Param(a), t.Param(b)));
     }},
    {"sub", 3, 3, 3, 3,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.Sub(t.Param(a), t.Param(b)));
     }},
    {"addn_shared", 3, 3, 3, 3,
     [](Tape& t, Parameter* a, Parameter* b) {
       VarId va = t.Param(a);
       return LossOf(t, t.AddN({va, t.Param(b), va}));
     }},
    {"add_row_broadcast", 3, 4, 1, 4,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.AddRowBroadcast(t.Param(a), t.Param(b)));
     }},
    {"mul", 3, 3, 3, 3,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.Mul(t.Param(a), t.Param(b)));
     }},
    {"mul_scalar_var", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.MulScalarVar(t.Param(a), t.Param(b)));
     }},
    {"mul_row_broadcast", 3, 4, 1, 4,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.MulRowBroadcast(t.Param(a), t.Param(b)));
     }},
    {"row_scale", 3, 4, 3, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.RowScale(t.Param(a), t.Param(b)));
     }},
    {"scalar_mul", 3, 3, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.ScalarMul(t.Param(a), -1.7f));
     }},
    {"leaky_relu", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.LeakyRelu(t.Param(a), 0.2f));
     }},
    {"sigmoid", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.Sigmoid(t.Param(a)));
     }},
    {"tanh", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.Tanh(t.Param(a)));
     }},
    {"exp", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.Exp(t.Param(a)));
     }},
    {"log_of_sigmoid", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.Log(t.Sigmoid(t.Param(a)), 1e-3f));
     }},
    {"gather_rows", 5, 3, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.GatherRows(t.Param(a), {4, 0, 0, 2}));
     }},
    {"segment_sum", 5, 3, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.SegmentSum(t.Param(a), {2, 0, 2, 1, 0}, 3));
     }},
    {"segment_softmax", 6, 1, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.SegmentSoftmax(t.Param(a), {0, 1, 0, 1, 2, 2}, 3));
     }},
    {"concat_cols", 3, 2, 3, 4,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.ConcatCols({t.Param(a), t.Param(b)}));
     }},
    {"concat_rows", 2, 3, 4, 3,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.ConcatRows({t.Param(a), t.Param(b)}));
     }},
    {"slice_rows", 5, 3, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.SliceRows(t.Param(a), 1, 3));
     }},
    {"col", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.Col(t.Param(a), 2));
     }},
    {"layer_norm", 4, 6, 1, 6,
     [](Tape& t, Parameter* a, Parameter* b) {
       VarId gamma = t.Param(b);
       VarId beta = t.ScalarMul(gamma, 0.3f);
       return LossOf(t, t.LayerNorm(t.Param(a), gamma, beta));
     }},
    {"feature_norm", 4, 6, 1, 6,
     [](Tape& t, Parameter* a, Parameter* b) {
       VarId gamma = t.Param(b);
       VarId beta = t.ScalarMul(gamma, -0.4f);
       return LossOf(t, t.FeatureNorm(t.Param(a), gamma, beta));
     }},
    {"row_l2_normalize", 4, 5, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.RowL2Normalize(t.Param(a)));
     }},
    {"row_dot", 4, 3, 4, 3,
     [](Tape& t, Parameter* a, Parameter* b) {
       return LossOf(t, t.RowDot(t.Param(a), t.Param(b)));
     }},
    {"row_softmax", 3, 5, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.RowSoftmax(t.Param(a)));
     }},
    {"mean_all", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return t.MeanAll(t.Param(a));
     }},
    {"mean_rows", 4, 3, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return LossOf(t, t.MeanRows(t.Param(a)));
     }},
    {"l2", 3, 4, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       return t.L2(t.Param(a));
     }},
    {"bpr_loss", 5, 1, 5, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       return t.BprLoss(t.Param(a), t.Param(b));
     }},
    {"spmm", 4, 3, 1, 1,
     [](Tape& t, Parameter* a, Parameter* b) {
       (void)b;
       static graph::CsrMatrix adj = [] {
         graph::CooMatrix coo;
         coo.rows = 3;
         coo.cols = 4;
         coo.Add(0, 0, 0.5f);
         coo.Add(0, 3, 1.5f);
         coo.Add(1, 1, -1.0f);
         coo.Add(2, 2, 2.0f);
         coo.Add(2, 0, 1.0f);
         return graph::CsrMatrix::FromCoo(coo);
       }();
       static graph::CsrMatrix adj_t = adj.Transposed();
       return LossOf(t, t.SpMM(&adj, &adj_t, t.Param(a)));
     }},
    {"composite_mlp", 4, 4, 4, 4,
     [](Tape& t, Parameter* a, Parameter* b) {
       VarId h = t.Tanh(t.MatMul(t.Param(a), t.Param(b)));
       VarId g = t.Sigmoid(t.MatMul(h, t.Param(b), false, true));
       return LossOf(t, t.Mul(h, g));
     }},
};

class GradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const OpCase& oc = GetParam();
  util::Rng rng(99);
  ParamStore store;
  Parameter* a = store.Create(
      "a", Tensor::GaussianInit(oc.a_rows, oc.a_cols, 0.6f, rng));
  Parameter* b = store.Create(
      "b", Tensor::GaussianInit(oc.b_rows, oc.b_cols, 0.6f, rng));
  auto result = CheckGradients(
      {a, b}, [&](Tape& t) { return oc.build(t, a, b); });
  EXPECT_TRUE(result.ok) << oc.name << ": " << result.detail
                         << " (max abs " << result.max_abs_error << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace dgnn::ag
