// Tests for the fixed-size worker pool behind ParallelFor: lifecycle,
// chunk decomposition, exception propagation, the nested-call guard, and
// a stress run with many small regions.

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace dgnn::util {
namespace {

// Restores the process-wide thread count after each test so suites do not
// leak a knob setting into one another.
class ThreadPoolTest : public ::testing::Test {
 protected:
  ThreadPoolTest() : saved_threads_(NumThreads()) {}
  ~ThreadPoolTest() override { SetNumThreads(saved_threads_); }
  const int saved_threads_;
};

TEST_F(ThreadPoolTest, ConstructionAndTeardown) {
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
    // Destruction with no region ever submitted must not hang.
  }
  // Teardown immediately after a region drains must not hang either.
  for (int n : {2, 4}) {
    ThreadPool pool(n);
    std::atomic<int64_t> sum{0};
    auto fn = +[](void* ctx, int64_t b, int64_t e) {
      static_cast<std::atomic<int64_t>*>(ctx)->fetch_add(e - b);
    };
    pool.ParallelFor(0, 1000, 7, fn, &sum);
    EXPECT_EQ(sum.load(), 1000);
  }
}

TEST_F(ThreadPoolTest, NumChunksHelper) {
  EXPECT_EQ(NumChunks(0, 0, 4), 0);
  EXPECT_EQ(NumChunks(5, 3, 4), 0);
  EXPECT_EQ(NumChunks(0, 1, 4), 1);
  EXPECT_EQ(NumChunks(0, 4, 4), 1);
  EXPECT_EQ(NumChunks(0, 5, 4), 2);
  EXPECT_EQ(NumChunks(10, 30, 7), 3);
}

TEST_F(ThreadPoolTest, EmptyRangeNeverInvokes) {
  for (int n : {1, 4}) {
    SetNumThreads(n);
    std::atomic<int> calls{0};
    ParallelFor(0, 0, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
    ParallelFor(9, 3, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST_F(ThreadPoolTest, SingleElementRange) {
  for (int n : {1, 4}) {
    SetNumThreads(n);
    std::vector<std::pair<int64_t, int64_t>> chunks;
    std::mutex mu;
    ParallelFor(41, 42, 8, [&](int64_t b, int64_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(b, e);
    });
    ASSERT_EQ(chunks.size(), 1u);
    const std::pair<int64_t, int64_t> expected(41, 42);
    EXPECT_EQ(chunks[0], expected);
  }
}

TEST_F(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  auto chunk_set = [&](int num_threads) {
    SetNumThreads(num_threads);
    std::set<std::pair<int64_t, int64_t>> chunks;
    std::mutex mu;
    ParallelFor(3, 1000, 17, [&](int64_t b, int64_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(b, e);
    });
    return chunks;
  };
  const auto serial = chunk_set(1);
  EXPECT_EQ(serial.size(),
            static_cast<size_t>(NumChunks(3, 1000, 17)));
  EXPECT_EQ(chunk_set(2), serial);
  EXPECT_EQ(chunk_set(7), serial);
}

TEST_F(ThreadPoolTest, ThreadsOneRunsOnCallerInOrder) {
  SetNumThreads(1);
  const auto caller = std::this_thread::get_id();
  std::vector<int64_t> begins;
  ParallelFor(0, 100, 16, [&](int64_t b, int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    begins.push_back(b);  // safe: serial execution
  });
  const std::vector<int64_t> expected = {0, 16, 32, 48, 64, 80, 96};
  EXPECT_EQ(begins, expected);
}

TEST_F(ThreadPoolTest, ExceptionPropagatesFromAnyThreadCount) {
  for (int n : {1, 2, 4}) {
    SetNumThreads(n);
    EXPECT_THROW(
        ParallelFor(0, 200, 8,
                    [&](int64_t b, int64_t) {
                      if (b == 96) throw std::runtime_error("chunk failed");
                    }),
        std::runtime_error);
    // The pool must stay usable after an exceptional region.
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 100, 8, [&](int64_t b, int64_t e) {
      sum.fetch_add(e - b);
    });
    EXPECT_EQ(sum.load(), 100);
  }
}

TEST_F(ThreadPoolTest, NestedCallsRunSeriallyWithoutDeadlock) {
  SetNumThreads(4);
  std::vector<int64_t> totals(8, 0);
  ParallelFor(0, 8, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t i = ob; i < oe; ++i) {
      int64_t local = 0;
      // Inner region must degrade to serial execution on this thread.
      ParallelFor(0, 1000, 32, [&](int64_t b, int64_t e) {
        for (int64_t j = b; j < e; ++j) local += j;
      });
      totals[static_cast<size_t>(i)] = local;
    }
  });
  for (int64_t t : totals) EXPECT_EQ(t, 1000 * 999 / 2);
}

TEST_F(ThreadPoolTest, ConcurrentExternalCallersFallBackSafely) {
  SetNumThreads(4);
  // Several unrelated threads hammer the shared pool at once; regions that
  // find it busy must run serially on their caller and still be correct.
  std::vector<std::thread> threads;
  std::atomic<int64_t> grand_total{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 50; ++iter) {
        std::atomic<int64_t> local{0};
        ParallelFor(0, 512, 16, [&](int64_t b, int64_t e) {
          local.fetch_add(e - b);
        });
        grand_total.fetch_add(local.load());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(grand_total.load(), 4 * 50 * 512);
}

TEST_F(ThreadPoolTest, StressManySmallRegions) {
  SetNumThreads(4);
  std::vector<int64_t> out(257);
  for (int iter = 0; iter < 2000; ++iter) {
    ParallelFor(0, static_cast<int64_t>(out.size()), 3,
                [&](int64_t b, int64_t e) {
                  for (int64_t i = b; i < e; ++i) out[static_cast<size_t>(i)] = i + iter;
                });
  }
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(i) + 1999);
  }
}

TEST_F(ThreadPoolTest, SetNumThreadsTakesEffect) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
}

}  // namespace
}  // namespace dgnn::util
