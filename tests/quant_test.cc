// Quantization subsystem tests: the fp16 software converters (RNE,
// subnormals, infinities, NaN), the int8 per-row codec's error bound,
// and the DotQ8 / DotF16 dispatch contract — deterministic mode must be
// bit-identical to the scalar reference on every available ISA, fast
// mode within accumulation tolerance.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/kernels.h"
#include "quant/quant.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dgnn {
namespace {

class QuantTest : public ::testing::Test {
 protected:
  QuantTest()
      : saved_threads_(util::NumThreads()),
        saved_det_(kernels::Deterministic()) {}
  ~QuantTest() override {
    util::SetNumThreads(saved_threads_);
    kernels::SetDeterministic(saved_det_);
    kernels::ResetIsaFromEnv();
  }

  const int saved_threads_;
  const bool saved_det_;
};

std::vector<float> RandomVec(int64_t n, uint64_t seed, float lo = -1.0f,
                             float hi = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.UniformFloat(lo, hi);
  return v;
}

// ---- fp16 converters ----------------------------------------------------

TEST_F(QuantTest, Fp16ExactValuesRoundTrip) {
  // Values exactly representable in binary16 must survive unchanged.
  const float exact[] = {0.0f,   1.0f,    -1.0f,   0.5f,  -0.25f, 2.0f,
                         1024.0f, 65504.0f, -65504.0f, 0.125f, 6.0f, -3.5f};
  for (float v : exact) {
    EXPECT_EQ(v, kernels::Fp16ToFp32(kernels::Fp32ToFp16(v))) << v;
  }
}

TEST_F(QuantTest, Fp16SignedZero) {
  EXPECT_EQ(kernels::Fp32ToFp16(0.0f), 0x0000);
  EXPECT_EQ(kernels::Fp32ToFp16(-0.0f), 0x8000);
}

TEST_F(QuantTest, Fp16RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 +
  // 2^-10); RNE keeps the even significand, i.e. 1.0 (0x3C00).
  EXPECT_EQ(kernels::Fp32ToFp16(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
  // 1 + 3 * 2^-11 is halfway between 1 + 2^-10 and 1 + 2^-9; RNE rounds
  // up to the even significand 1 + 2^-9 (0x3C02).
  EXPECT_EQ(kernels::Fp32ToFp16(1.0f + 3.0f * std::ldexp(1.0f, -11)),
            0x3C02);
  // Just above halfway rounds up.
  EXPECT_EQ(kernels::Fp32ToFp16(1.0f + std::ldexp(1.0f, -11) * 1.5f),
            0x3C01);
}

TEST_F(QuantTest, Fp16OverflowAndSpecials) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(kernels::Fp32ToFp16(inf), 0x7C00);
  EXPECT_EQ(kernels::Fp32ToFp16(-inf), 0xFC00);
  // Anything beyond the max finite half overflows to infinity.
  EXPECT_EQ(kernels::Fp32ToFp16(70000.0f), 0x7C00);
  EXPECT_EQ(kernels::Fp16ToFp32(0x7C00), inf);
  EXPECT_EQ(kernels::Fp16ToFp32(0xFC00), -inf);
  // NaN stays NaN in both directions.
  EXPECT_TRUE(std::isnan(kernels::Fp16ToFp32(
      kernels::Fp32ToFp16(std::numeric_limits<float>::quiet_NaN()))));
}

TEST_F(QuantTest, Fp16Subnormals) {
  // Smallest positive subnormal half is 2^-24; it must round-trip.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(kernels::Fp32ToFp16(tiny), 0x0001);
  EXPECT_EQ(kernels::Fp16ToFp32(0x0001), tiny);
  // Largest subnormal (2^-14 - 2^-24) and smallest normal (2^-14).
  EXPECT_EQ(kernels::Fp16ToFp32(0x03FF),
            std::ldexp(1.0f, -14) - std::ldexp(1.0f, -24));
  EXPECT_EQ(kernels::Fp16ToFp32(0x0400), std::ldexp(1.0f, -14));
  // Below half the smallest subnormal flushes to zero under RNE.
  EXPECT_EQ(kernels::Fp32ToFp16(std::ldexp(1.0f, -26)), 0x0000);
}

TEST_F(QuantTest, Fp16RoundTripErrorBound) {
  // Relative error of one fp16 rounding is at most 2^-11 for normals.
  const std::vector<float> v = RandomVec(4096, 99, -100.0f, 100.0f);
  for (float x : v) {
    const float back = kernels::Fp16ToFp32(kernels::Fp32ToFp16(x));
    EXPECT_NEAR(back, x, std::fabs(x) * 4.9e-4f + 1e-7f);
  }
}

// ---- int8 codec ---------------------------------------------------------

TEST_F(QuantTest, Int8RoundTripWithinHalfScale) {
  const int64_t rows = 37, cols = 29;
  const std::vector<float> data =
      RandomVec(rows * cols, 7, -3.0f, 3.0f);
  quant::QuantizedMatrix q =
      quant::Quantize(data.data(), rows, cols, quant::Codec::kInt8);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  ASSERT_EQ(q.scales.size(), static_cast<size_t>(rows));
  std::vector<float> back(static_cast<size_t>(rows * cols));
  quant::Dequantize(q, back.data());
  for (int64_t r = 0; r < rows; ++r) {
    const float scale = q.scales[static_cast<size_t>(r)];
    EXPECT_GT(scale, 0.0f);
    for (int64_t c = 0; c < cols; ++c) {
      const size_t i = static_cast<size_t>(r * cols + c);
      // Worst-case rounding error of the codec is half a quantization
      // step per element.
      EXPECT_NEAR(back[i], data[i], scale * 0.5f + 1e-7f);
    }
  }
}

TEST_F(QuantTest, Int8PerRowScalesAreIndependent) {
  // A huge row must not degrade a small row's precision: per-row scales,
  // not a global one.
  const int64_t cols = 16;
  std::vector<float> data(2 * cols);
  for (int64_t c = 0; c < cols; ++c) {
    data[static_cast<size_t>(c)] = 1000.0f;  // row 0: large magnitude
    data[static_cast<size_t>(cols + c)] = 0.001f;  // row 1: tiny
  }
  quant::QuantizedMatrix q =
      quant::Quantize(data.data(), 2, cols, quant::Codec::kInt8);
  std::vector<float> back(2 * static_cast<size_t>(cols));
  quant::Dequantize(q, back.data());
  EXPECT_NEAR(back[0], 1000.0f, 1000.0f / 127.0f);
  EXPECT_NEAR(back[static_cast<size_t>(cols)], 0.001f, 0.001f / 127.0f);
}

TEST_F(QuantTest, Int8ZeroRowHasZeroScale) {
  const int64_t cols = 8;
  std::vector<float> data(cols, 0.0f);
  quant::QuantizedMatrix q =
      quant::Quantize(data.data(), 1, cols, quant::Codec::kInt8);
  EXPECT_EQ(q.scales[0], 0.0f);
  std::vector<float> back(static_cast<size_t>(cols), 1.0f);
  quant::Dequantize(q, back.data());
  for (float v : back) EXPECT_EQ(v, 0.0f);
  const std::vector<float> x = RandomVec(cols, 3);
  EXPECT_EQ(q.Dot(x.data(), 0), 0.0f);
}

TEST_F(QuantTest, QuantizeDeterministicAcrossThreadCounts) {
  const int64_t rows = 300, cols = 24;
  const std::vector<float> data = RandomVec(rows * cols, 21);
  util::SetNumThreads(1);
  quant::QuantizedMatrix a =
      quant::Quantize(data.data(), rows, cols, quant::Codec::kInt8);
  util::SetNumThreads(7);
  quant::QuantizedMatrix b =
      quant::Quantize(data.data(), rows, cols, quant::Codec::kInt8);
  EXPECT_EQ(a.q8, b.q8);
  EXPECT_EQ(a.scales, b.scales);
  quant::QuantizedMatrix fa =
      quant::Quantize(data.data(), rows, cols, quant::Codec::kFp16);
  util::SetNumThreads(1);
  quant::QuantizedMatrix fb =
      quant::Quantize(data.data(), rows, cols, quant::Codec::kFp16);
  EXPECT_EQ(fa.f16, fb.f16);
}

// ---- quantized dot kernels across ISAs ----------------------------------

// Ragged lengths: below one vector, non-multiples of the 8/32-wide
// strides, and a multi-chunk size.
const int64_t kDotLengths[] = {1, 7, 8, 9, 31, 32, 33, 100, 257};

TEST_F(QuantTest, DotQ8DeterministicBitIdenticalAcrossIsas) {
  for (int64_t n : kDotLengths) {
    const std::vector<float> a = RandomVec(n, 1000 + n);
    std::vector<int8_t> q(static_cast<size_t>(n));
    util::Rng rng(n);
    for (int8_t& v : q) {
      v = static_cast<int8_t>(rng.UniformInt(255) - 127);
    }
    kernels::SetDeterministic(true);
    const float ref = kernels::ScalarDotQ8(a.data(), q.data(), n, true);
    for (kernels::Isa isa : kernels::AvailableIsas()) {
      kernels::ForceIsa(isa);
      const float got = kernels::DotQ8(a.data(), q.data(), n);
      EXPECT_EQ(ref, got) << "isa " << kernels::IsaName(isa) << " n=" << n;
    }
    kernels::ResetIsaFromEnv();
  }
}

TEST_F(QuantTest, DotF16DeterministicBitIdenticalAcrossIsas) {
  for (int64_t n : kDotLengths) {
    const std::vector<float> a = RandomVec(n, 2000 + n);
    const std::vector<float> bf = RandomVec(n, 3000 + n);
    std::vector<uint16_t> h(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      h[static_cast<size_t>(i)] =
          kernels::Fp32ToFp16(bf[static_cast<size_t>(i)]);
    }
    kernels::SetDeterministic(true);
    const float ref = kernels::ScalarDotF16(a.data(), h.data(), n, true);
    for (kernels::Isa isa : kernels::AvailableIsas()) {
      kernels::ForceIsa(isa);
      const float got = kernels::DotF16(a.data(), h.data(), n);
      EXPECT_EQ(ref, got) << "isa " << kernels::IsaName(isa) << " n=" << n;
    }
    kernels::ResetIsaFromEnv();
  }
}

TEST_F(QuantTest, FastModeWithinAccumulationTolerance) {
  const int64_t n = 257;
  const std::vector<float> a = RandomVec(n, 5);
  std::vector<int8_t> q(static_cast<size_t>(n));
  std::vector<uint16_t> h(static_cast<size_t>(n));
  util::Rng rng(6);
  for (int64_t i = 0; i < n; ++i) {
    q[static_cast<size_t>(i)] =
        static_cast<int8_t>(rng.UniformInt(255) - 127);
    h[static_cast<size_t>(i)] =
        kernels::Fp32ToFp16(rng.UniformFloat(-1.0f, 1.0f));
  }
  kernels::SetDeterministic(true);
  const float q8_ref = kernels::DotQ8(a.data(), q.data(), n);
  const float f16_ref = kernels::DotF16(a.data(), h.data(), n);
  kernels::SetDeterministic(false);
  for (kernels::Isa isa : kernels::AvailableIsas()) {
    kernels::ForceIsa(isa);
    EXPECT_NEAR(kernels::DotQ8(a.data(), q.data(), n), q8_ref,
                1e-2f * static_cast<float>(n))
        << kernels::IsaName(isa);
    EXPECT_NEAR(kernels::DotF16(a.data(), h.data(), n), f16_ref,
                1e-3f * static_cast<float>(n))
        << kernels::IsaName(isa);
  }
  kernels::ResetIsaFromEnv();
}

TEST_F(QuantTest, QuantizedMatrixDotMatchesDequantizedScan) {
  // QuantizedMatrix::Dot (scale * DotQ8 / DotF16) must equal the dot of
  // the query with the dequantized row, in deterministic mode, for both
  // codecs.
  kernels::SetDeterministic(true);
  const int64_t rows = 23, cols = 33;
  const std::vector<float> data = RandomVec(rows * cols, 11);
  const std::vector<float> x = RandomVec(cols, 12);
  for (quant::Codec codec : {quant::Codec::kInt8, quant::Codec::kFp16}) {
    quant::QuantizedMatrix q =
        quant::Quantize(data.data(), rows, cols, codec);
    std::vector<float> row(static_cast<size_t>(cols));
    for (int64_t r = 0; r < rows; ++r) {
      q.DequantizeRow(r, row.data());
      const float expect = [&] {
        if (codec == quant::Codec::kFp16) {
          return kernels::Dot(x.data(), row.data(), cols);
        }
        // int8 applies the scale once outside the accumulation, so
        // compare against scale * sum(x * q) accumulated the same way.
        float acc = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
          acc += x[static_cast<size_t>(c)] *
                 static_cast<float>(
                     q.q8[static_cast<size_t>(r * cols + c)]);
        }
        return q.scales[static_cast<size_t>(r)] * acc;
      }();
      EXPECT_EQ(expect, q.Dot(x.data(), r)) << "codec "
                                            << quant::CodecName(codec)
                                            << " row " << r;
    }
  }
}

TEST_F(QuantTest, ParseCodecNames) {
  EXPECT_EQ(quant::ParseCodec("int8").value(), quant::Codec::kInt8);
  EXPECT_EQ(quant::ParseCodec("fp16").value(), quant::Codec::kFp16);
  EXPECT_FALSE(quant::ParseCodec("fp8").ok());
  EXPECT_FALSE(quant::ParseCodec("").ok());
}

TEST_F(QuantTest, ResidentBytesAccounting) {
  const int64_t rows = 10, cols = 16;
  const std::vector<float> data = RandomVec(rows * cols, 1);
  quant::QuantizedMatrix q8 =
      quant::Quantize(data.data(), rows, cols, quant::Codec::kInt8);
  EXPECT_EQ(q8.ResidentBytes(),
            rows * cols + rows * static_cast<int64_t>(sizeof(float)));
  quant::QuantizedMatrix f16 =
      quant::Quantize(data.data(), rows, cols, quant::Codec::kFp16);
  EXPECT_EQ(f16.ResidentBytes(),
            rows * cols * static_cast<int64_t>(sizeof(uint16_t)));
}

}  // namespace
}  // namespace dgnn
