// IVF-style coarse retrieval index over item embeddings — the sublinear
// candidate-generation half of serving's top-k path. Built once at
// export time (dgnn_cli --mode=export --index), shipped inside the
// snapshot as a checksummed section, and probed per request by the
// ServingEngine: rank the k-means cluster lists against the user vector,
// scan only the top `nprobe` lists, exact-rerank the shortlist.
//
// Inner-product search is not nearest-neighbor search, so clustering runs
// in the MIPS-reduced space (Bachrach et al.'s "XBOX" trick): every item
// x is augmented to x_hat = [x, sqrt(M^2 - |x|^2)] with M the max row
// norm, which makes every |x_hat| = M and turns argmax dot(u, x) into
// argmin L2(u_hat, x_hat) for u_hat = [u, 0]. k-means runs on x_hat;
// at query time lists are ranked by dot(u, c[0:d]) - |c_hat|^2 / 2,
// which is the (negated, affine-shifted) augmented L2 distance.
//
// Determinism: seeded sample + seeded init, serial centroid updates, and
// assignment scans that only write disjoint slots — the same index bytes
// for any thread count.

#ifndef DGNN_INDEX_IVF_H_
#define DGNN_INDEX_IVF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dgnn::index {

struct IvfConfig {
  // Number of coarse clusters; <= 0 picks round(sqrt(rows)) clamped to
  // [1, 65536] (and never more than rows).
  int32_t nlist = 0;
  // Rows sampled (without replacement) for Lloyd iterations; the full
  // matrix is assigned once at the end. <= 0 uses every row.
  int64_t train_sample = 131072;
  // Lloyd iterations over the sample.
  int32_t iterations = 8;
  uint64_t seed = 42;
};

struct IvfIndex {
  int32_t nlist = 0;
  int64_t dim = 0;  // embedding dim (centroids store the first `dim`
                    // coords; the augmented coordinate only survives
                    // inside half_sq_norms)
  std::vector<float> centroids;      // nlist x dim, row-major
  std::vector<float> half_sq_norms;  // nlist: |c_hat|^2 / 2
  std::vector<int64_t> list_offsets; // nlist + 1, ascending
  std::vector<int32_t> list_items;   // concatenated lists; every row of
                                     // the indexed matrix exactly once
  bool empty() const { return nlist == 0; }
  int64_t ResidentBytes() const;

  // The `nprobe` list ids ranked best-first by dot(u, c) - |c_hat|^2/2
  // (ties broken by lower list id). nprobe is clamped to [1, nlist].
  void RankLists(const float* u, int nprobe,
                 std::vector<int32_t>* lists) const;

  // Appends the serialized index to `out` (the snapshot section payload).
  void Serialize(std::string* out) const;
};

// Builds the index over a row-major rows x cols matrix.
IvfIndex BuildIvfIndex(const float* data, int64_t rows, int64_t cols,
                       const IvfConfig& config);

// Parses a serialized index, validating structure (shapes, offsets
// ascending and spanning list_items, finite centroids). Item-id range /
// exactly-once coverage needs the indexed row count — see Validate.
util::StatusOr<IvfIndex> ParseIvfIndex(const char* data, size_t size);

// Cross-checks the index against the matrix it claims to cover: dim
// match, every id in [0, rows), every row in exactly one list.
util::Status ValidateIvfIndex(const IvfIndex& index, int64_t rows,
                              int64_t dim);

}  // namespace dgnn::index

#endif  // DGNN_INDEX_IVF_H_
