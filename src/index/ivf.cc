#include "index/ivf.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "kernels/kernels.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dgnn::index {
namespace {

using util::Status;
using util::StatusOr;

// Fixed assignment grain (matches the serving catalog scans): each row's
// assignment is computed independently into its own slot, so results are
// bit-identical for any thread count.
constexpr int64_t kRowGrain = 256;

template <typename T>
void AppendPod(std::string& out, T value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;
  bool Read(void* out, size_t n) {
    if (size - pos < n) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  template <typename T>
  bool ReadPod(T* out) {
    return Read(out, sizeof(T));
  }
};

// argmin over centroids of |x_hat - c_hat|^2, expanded to
// half|c_hat|^2 - dot(x_hat, c_hat) (the |x_hat|^2 term is constant per
// point). Ties break toward the lower centroid id.
int32_t AssignOne(const float* x_aug, const float* centroids_aug,
                  const float* half_norms, int32_t nlist, int64_t adim) {
  int32_t best = 0;
  float best_cost = 0.0f;
  for (int32_t l = 0; l < nlist; ++l) {
    const float cost =
        half_norms[l] - kernels::Dot(x_aug, centroids_aug + l * adim, adim);
    if (l == 0 || cost < best_cost) {
      best = l;
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace

int64_t IvfIndex::ResidentBytes() const {
  return static_cast<int64_t>(centroids.size()) * sizeof(float) +
         static_cast<int64_t>(half_sq_norms.size()) * sizeof(float) +
         static_cast<int64_t>(list_offsets.size()) * sizeof(int64_t) +
         static_cast<int64_t>(list_items.size()) * sizeof(int32_t);
}

void IvfIndex::RankLists(const float* u, int nprobe,
                         std::vector<int32_t>* lists) const {
  const int probe =
      std::max(1, std::min(nprobe, static_cast<int>(nlist)));
  struct ScoredList {
    float score;
    int32_t list;
  };
  std::vector<ScoredList> scored(static_cast<size_t>(nlist));
  for (int32_t l = 0; l < nlist; ++l) {
    scored[static_cast<size_t>(l)] = {
        kernels::Dot(u, centroids.data() + l * dim, dim) -
            half_sq_norms[static_cast<size_t>(l)],
        l};
  }
  std::partial_sort(scored.begin(), scored.begin() + probe, scored.end(),
                    [](const ScoredList& a, const ScoredList& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.list < b.list;
                    });
  lists->clear();
  lists->reserve(static_cast<size_t>(probe));
  for (int i = 0; i < probe; ++i) lists->push_back(scored[i].list);
}

IvfIndex BuildIvfIndex(const float* data, int64_t rows, int64_t cols,
                       const IvfConfig& config) {
  DGNN_CHECK_GT(rows, 0);
  DGNN_CHECK_GT(cols, 0);
  int64_t nlist = config.nlist > 0
                      ? config.nlist
                      : static_cast<int64_t>(
                            std::lround(std::sqrt(static_cast<double>(rows))));
  nlist = std::max<int64_t>(1, std::min<int64_t>({nlist, rows, 65536}));
  const int64_t adim = cols + 1;

  // MIPS reduction: per-row squared norms, the shared radius M^2, and the
  // augmented coordinate sqrt(M^2 - |x|^2) that equalizes all norms.
  std::vector<float> sq_norms(static_cast<size_t>(rows));
  util::ParallelFor(0, rows, kRowGrain, [&](int64_t b, int64_t e) {
    for (int64_t r = b; r < e; ++r) {
      const float* row = data + r * cols;
      sq_norms[static_cast<size_t>(r)] = kernels::Dot(row, row, cols);
    }
  });
  float max_sq = 0.0f;
  for (float s : sq_norms) max_sq = std::max(max_sq, s);
  auto aug_coord = [&](int64_t r) {
    const float rem = max_sq - sq_norms[static_cast<size_t>(r)];
    return rem > 0.0f ? std::sqrt(rem) : 0.0f;
  };

  // Training sample (augmented, contiguous).
  util::Rng rng(config.seed);
  std::vector<int64_t> sample_ids;
  if (config.train_sample > 0 && config.train_sample < rows) {
    sample_ids = rng.SampleWithoutReplacement(rows, config.train_sample);
  } else {
    sample_ids.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) sample_ids[static_cast<size_t>(r)] = r;
  }
  const int64_t sn = static_cast<int64_t>(sample_ids.size());
  nlist = std::min(nlist, sn);
  std::vector<float> sample(static_cast<size_t>(sn * adim));
  for (int64_t i = 0; i < sn; ++i) {
    const int64_t r = sample_ids[static_cast<size_t>(i)];
    std::memcpy(sample.data() + i * adim, data + r * cols,
                static_cast<size_t>(cols) * sizeof(float));
    sample[static_cast<size_t>(i * adim + cols)] = aug_coord(r);
  }

  // Init: the first nlist sampled points (the sample order is already a
  // seeded uniform draw).
  std::vector<float> cent(static_cast<size_t>(nlist * adim));
  for (int64_t l = 0; l < nlist; ++l) {
    std::memcpy(cent.data() + l * adim, sample.data() + l * adim,
                static_cast<size_t>(adim) * sizeof(float));
  }

  std::vector<float> half_norms(static_cast<size_t>(nlist));
  auto refresh_half_norms = [&] {
    for (int64_t l = 0; l < nlist; ++l) {
      const float* c = cent.data() + l * adim;
      half_norms[static_cast<size_t>(l)] =
          0.5f * kernels::Dot(c, c, adim);
    }
  };

  // Lloyd on the sample: parallel assignment into disjoint slots, then a
  // serial mean update (deterministic accumulation order).
  std::vector<int32_t> assign(static_cast<size_t>(sn));
  std::vector<double> sums;
  std::vector<int64_t> counts;
  for (int32_t iter = 0; iter < std::max(1, config.iterations); ++iter) {
    refresh_half_norms();
    util::ParallelFor(0, sn, kRowGrain, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        assign[static_cast<size_t>(i)] =
            AssignOne(sample.data() + i * adim, cent.data(),
                      half_norms.data(), static_cast<int32_t>(nlist), adim);
      }
    });
    sums.assign(static_cast<size_t>(nlist * adim), 0.0);
    counts.assign(static_cast<size_t>(nlist), 0);
    for (int64_t i = 0; i < sn; ++i) {
      const int32_t l = assign[static_cast<size_t>(i)];
      double* dst = sums.data() + static_cast<int64_t>(l) * adim;
      const float* src = sample.data() + i * adim;
      for (int64_t c = 0; c < adim; ++c) dst[c] += src[c];
      ++counts[static_cast<size_t>(l)];
    }
    for (int64_t l = 0; l < nlist; ++l) {
      if (counts[static_cast<size_t>(l)] == 0) continue;  // keep old
      const double inv = 1.0 / static_cast<double>(counts[static_cast<size_t>(l)]);
      float* dst = cent.data() + l * adim;
      const double* src = sums.data() + l * adim;
      for (int64_t c = 0; c < adim; ++c) {
        dst[c] = static_cast<float>(src[c] * inv);
      }
    }
  }

  // Final full assignment over every row (augmenting on the fly).
  refresh_half_norms();
  std::vector<int32_t> row_list(static_cast<size_t>(rows));
  util::ParallelFor(0, rows, kRowGrain, [&](int64_t b, int64_t e) {
    std::vector<float> x_aug(static_cast<size_t>(adim));
    for (int64_t r = b; r < e; ++r) {
      std::memcpy(x_aug.data(), data + r * cols,
                  static_cast<size_t>(cols) * sizeof(float));
      x_aug[static_cast<size_t>(cols)] = aug_coord(r);
      row_list[static_cast<size_t>(r)] =
          AssignOne(x_aug.data(), cent.data(), half_norms.data(),
                    static_cast<int32_t>(nlist), adim);
    }
  });

  IvfIndex out;
  out.nlist = static_cast<int32_t>(nlist);
  out.dim = cols;
  out.centroids.resize(static_cast<size_t>(nlist * cols));
  for (int64_t l = 0; l < nlist; ++l) {
    std::memcpy(out.centroids.data() + l * cols, cent.data() + l * adim,
                static_cast<size_t>(cols) * sizeof(float));
  }
  out.half_sq_norms = half_norms;
  out.list_offsets.assign(static_cast<size_t>(nlist) + 1, 0);
  for (int64_t r = 0; r < rows; ++r) {
    ++out.list_offsets[static_cast<size_t>(row_list[static_cast<size_t>(r)]) + 1];
  }
  for (int64_t l = 0; l < nlist; ++l) {
    out.list_offsets[static_cast<size_t>(l) + 1] +=
        out.list_offsets[static_cast<size_t>(l)];
  }
  out.list_items.resize(static_cast<size_t>(rows));
  std::vector<int64_t> fill(out.list_offsets.begin(),
                            out.list_offsets.end() - 1);
  // Row-order fill keeps each list's items ascending — binary-search
  // friendly and a cheap structural invariant for validation.
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t l = row_list[static_cast<size_t>(r)];
    out.list_items[static_cast<size_t>(fill[static_cast<size_t>(l)]++)] =
        static_cast<int32_t>(r);
  }
  return out;
}

void IvfIndex::Serialize(std::string* out) const {
  AppendPod<int32_t>(*out, nlist);
  AppendPod<int64_t>(*out, dim);
  AppendPod<int64_t>(*out, static_cast<int64_t>(list_items.size()));
  out->append(reinterpret_cast<const char*>(centroids.data()),
              centroids.size() * sizeof(float));
  out->append(reinterpret_cast<const char*>(half_sq_norms.data()),
              half_sq_norms.size() * sizeof(float));
  out->append(reinterpret_cast<const char*>(list_offsets.data()),
              list_offsets.size() * sizeof(int64_t));
  out->append(reinterpret_cast<const char*>(list_items.data()),
              list_items.size() * sizeof(int32_t));
}

StatusOr<IvfIndex> ParseIvfIndex(const char* data, size_t size) {
  Cursor c{data, size};
  IvfIndex out;
  int64_t items_total = 0;
  if (!c.ReadPod(&out.nlist) || !c.ReadPod(&out.dim) ||
      !c.ReadPod(&items_total)) {
    return Status::InvalidArgument("truncated ivf index header");
  }
  if (out.nlist <= 0 || out.nlist > 65536 || out.dim <= 0 ||
      out.dim > (1LL << 20) || items_total < 0 ||
      items_total > (1LL << 32)) {
    return Status::InvalidArgument("implausible ivf index header");
  }
  const int64_t nlist = out.nlist;
  out.centroids.resize(static_cast<size_t>(nlist * out.dim));
  out.half_sq_norms.resize(static_cast<size_t>(nlist));
  out.list_offsets.resize(static_cast<size_t>(nlist) + 1);
  out.list_items.resize(static_cast<size_t>(items_total));
  if (!c.Read(out.centroids.data(), out.centroids.size() * sizeof(float)) ||
      !c.Read(out.half_sq_norms.data(),
              out.half_sq_norms.size() * sizeof(float)) ||
      !c.Read(out.list_offsets.data(),
              out.list_offsets.size() * sizeof(int64_t)) ||
      !c.Read(out.list_items.data(),
              out.list_items.size() * sizeof(int32_t))) {
    return Status::InvalidArgument("truncated ivf index payload");
  }
  if (c.pos != c.size) {
    return Status::InvalidArgument("ivf index has trailing bytes");
  }
  for (float v : out.centroids) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("ivf centroid is not finite");
    }
  }
  for (float v : out.half_sq_norms) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("ivf centroid norm is not finite");
    }
  }
  if (out.list_offsets.front() != 0 ||
      out.list_offsets.back() != items_total) {
    return Status::InvalidArgument("ivf list offsets do not span items");
  }
  for (size_t l = 1; l < out.list_offsets.size(); ++l) {
    if (out.list_offsets[l] < out.list_offsets[l - 1]) {
      return Status::InvalidArgument("ivf list offsets not ascending");
    }
  }
  return out;
}

Status ValidateIvfIndex(const IvfIndex& index, int64_t rows, int64_t dim) {
  if (index.dim != dim) {
    return Status::InvalidArgument(
        "ivf index dim disagrees with embeddings");
  }
  if (static_cast<int64_t>(index.list_items.size()) != rows) {
    return Status::InvalidArgument(
        "ivf index does not cover the item catalog");
  }
  std::vector<bool> covered(static_cast<size_t>(rows), false);
  for (int32_t item : index.list_items) {
    if (item < 0 || static_cast<int64_t>(item) >= rows) {
      return Status::InvalidArgument("ivf list references item " +
                                     std::to_string(item) +
                                     " beyond catalog");
    }
    if (covered[static_cast<size_t>(item)]) {
      return Status::InvalidArgument("ivf lists repeat item " +
                                     std::to_string(item));
    }
    covered[static_cast<size_t>(item)] = true;
  }
  return Status::Ok();
}

}  // namespace dgnn::index
