// Ranking metrics of Eq. 12: Hit Rate (HR@N) and Normalized Discounted
// Cumulative Gain (NDCG@N) under the paper's protocol — for each test user
// the positive item is ranked against 100 sampled negatives.

#ifndef DGNN_TRAIN_METRICS_H_
#define DGNN_TRAIN_METRICS_H_

#include <map>
#include <string>
#include <vector>

namespace dgnn::train {

struct Metrics {
  // Keyed by cutoff N.
  std::map<int, double> hr;
  std::map<int, double> ndcg;
  int64_t num_users = 0;

  std::string ToString() const;
};

// Rank of the positive among {positive} + negatives, 1-based. Ties are
// broken pessimistically (equal scores count as ranked above the
// positive), making the metric deterministic and slightly conservative.
int RankOfPositive(float pos_score, const std::vector<float>& neg_scores);

// Accumulates per-user ranks into HR/NDCG at the given cutoffs. With one
// positive per user, DCG = 1/log2(rank+1) and IDCG = 1, matching Eq. 12.
Metrics MetricsFromRanks(const std::vector<int>& ranks,
                         const std::vector<int>& cutoffs);

}  // namespace dgnn::train

#endif  // DGNN_TRAIN_METRICS_H_
