// Beyond-accuracy evaluation: the qualities of a top-K recommender that
// HR/NDCG cannot see. Production teams track these alongside ranking
// accuracy — a model can win HR@10 by recommending the same popular
// hundred items to everyone.

#ifndef DGNN_TRAIN_BEYOND_ACCURACY_H_
#define DGNN_TRAIN_BEYOND_ACCURACY_H_

#include "data/dataset.h"
#include "train/recommender.h"

namespace dgnn::train {

struct BeyondAccuracy {
  // Fraction of the catalog that appears in at least one user's top-K.
  double catalog_coverage = 0.0;
  // Mean training-popularity percentile of recommended items (0 = only
  // the long tail, 1 = only the most popular items). Lower = more novel.
  double mean_popularity_percentile = 0.0;
  // Gini coefficient of per-item recommendation counts (0 = perfectly
  // even exposure, 1 = all exposure on one item).
  double exposure_gini = 0.0;
  int top_k = 0;
};

// Computes the metrics over every user's top-K list.
BeyondAccuracy ComputeBeyondAccuracy(const Recommender& recommender,
                                     const data::Dataset& dataset, int k);

}  // namespace dgnn::train

#endif  // DGNN_TRAIN_BEYOND_ACCURACY_H_
