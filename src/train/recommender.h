// Recommender — the serving-side API: computes final embeddings once and
// answers top-K queries, excluding items the user already interacted with.
// This is what a downstream application uses after Trainer::Fit().

#ifndef DGNN_TRAIN_RECOMMENDER_H_
#define DGNN_TRAIN_RECOMMENDER_H_

#include <vector>

#include "ag/tensor.h"
#include "data/dataset.h"
#include "models/rec_model.h"

namespace dgnn::train {

struct ScoredItem {
  int32_t item = 0;
  float score = 0.0f;
};

class Recommender {
 public:
  // Runs one inference forward pass and snapshots the final embeddings.
  // `dataset` supplies the seen-item exclusion lists; it must outlive the
  // recommender. Re-construct after further training to refresh.
  Recommender(models::RecModel& model, const data::Dataset& dataset);

  // Top-k unseen items for a user, scores descending (deterministic ties:
  // lower item id first).
  std::vector<ScoredItem> TopK(int32_t user, int k) const;

  // Score of a single (user, item) pair.
  float Score(int32_t user, int32_t item) const;

  // Users most similar to `user` by cosine of final embeddings (excluding
  // the user itself) — handy for "people like you" surfaces and for
  // debugging social effects.
  std::vector<ScoredItem> SimilarUsers(int32_t user, int k) const;

  const ag::Tensor& user_embeddings() const { return users_; }
  const ag::Tensor& item_embeddings() const { return items_; }

 private:
  const data::Dataset* dataset_;
  ag::Tensor users_;
  ag::Tensor items_;
  std::vector<std::vector<int32_t>> seen_;  // sorted per user
};

}  // namespace dgnn::train

#endif  // DGNN_TRAIN_RECOMMENDER_H_
