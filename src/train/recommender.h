// Recommender — the in-process serving API: computes final embeddings once
// and answers top-K queries, excluding items the user already interacted
// with. This is what a downstream application uses after Trainer::Fit().
// For the out-of-process path (snapshot export, batched online serving),
// see src/serve/.

#ifndef DGNN_TRAIN_RECOMMENDER_H_
#define DGNN_TRAIN_RECOMMENDER_H_

#include <vector>

#include "ag/tensor.h"
#include "data/dataset.h"
#include "models/rec_model.h"
#include "serve/ranking.h"

namespace dgnn::train {

// Ranking types are shared with the serving engine (serve/ranking.h) so
// both surfaces order candidates identically by construction.
using serve::ScoredItem;

class Recommender {
 public:
  // Runs one inference forward pass and snapshots the final embeddings.
  // `dataset` supplies the seen-item exclusion lists; it must outlive the
  // recommender. Re-construct after further training to refresh.
  Recommender(models::RecModel& model, const data::Dataset& dataset);

  // Top-k unseen items for a user, scores descending (deterministic ties:
  // lower item id first).
  std::vector<ScoredItem> TopK(int32_t user, int k) const;

  // Score of a single (user, item) pair.
  float Score(int32_t user, int32_t item) const;

  // Users most similar to `user` by cosine of final embeddings (excluding
  // the user itself) — handy for "people like you" surfaces and for
  // debugging social effects. Uses per-user L2 norms precomputed at
  // construction, so each call is a single pass over the user table.
  std::vector<ScoredItem> SimilarUsers(int32_t user, int k) const;

  const ag::Tensor& user_embeddings() const { return users_; }
  const ag::Tensor& item_embeddings() const { return items_; }

 private:
  const data::Dataset* dataset_;
  ag::Tensor users_;
  ag::Tensor items_;
  std::vector<std::vector<int32_t>> seen_;  // sorted per user
  std::vector<float> user_norms_;           // L2 norm of each user row
};

}  // namespace dgnn::train

#endif  // DGNN_TRAIN_RECOMMENDER_H_
