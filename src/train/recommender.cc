#include "train/recommender.h"

#include "ag/tape.h"
#include "serve/ranking.h"
#include "util/check.h"
#include "util/telemetry.h"

namespace dgnn::train {

Recommender::Recommender(models::RecModel& model,
                         const data::Dataset& dataset)
    : dataset_(&dataset) {
  ag::Tape tape;
  models::ForwardResult fwd = model.Forward(tape, /*training=*/false);
  users_ = tape.val(fwd.users);
  items_ = tape.val(fwd.items);
  DGNN_CHECK_EQ(users_.rows(), dataset.num_users);
  DGNN_CHECK_EQ(items_.rows(), dataset.num_items);
  seen_ = dataset.TrainItemsByUser();
  // Precomputed once so SimilarUsers never re-derives norms per call.
  user_norms_ = serve::ComputeRowNorms(users_);
}

float Recommender::Score(int32_t user, int32_t item) const {
  DGNN_CHECK_GE(user, 0);
  DGNN_CHECK_LT(user, users_.rows());
  DGNN_CHECK_GE(item, 0);
  DGNN_CHECK_LT(item, items_.rows());
  return serve::Dot(users_.row(user), items_.row(item), users_.cols());
}

std::vector<ScoredItem> Recommender::TopK(int32_t user, int k) const {
  DGNN_CHECK_GE(user, 0);
  DGNN_CHECK_LT(user, users_.rows());
  DGNN_CHECK_GT(k, 0);
  static telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.topk_seconds");
  telemetry::ScopedLatency record_latency(latency);
  telemetry::ScopedSpan span("topk", "serve");
  return serve::TopKUnseenItems(users_.row(user), items_,
                                seen_[static_cast<size_t>(user)], k);
}

std::vector<ScoredItem> Recommender::SimilarUsers(int32_t user,
                                                  int k) const {
  DGNN_CHECK_GE(user, 0);
  DGNN_CHECK_LT(user, users_.rows());
  static telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.similar_users_seconds");
  telemetry::ScopedLatency record_latency(latency);
  telemetry::ScopedSpan span("similar_users", "serve");
  return serve::SimilarUsersByCosine(user, users_, user_norms_, k);
}

}  // namespace dgnn::train
