#include "train/recommender.h"

#include <algorithm>
#include <cmath>

#include "ag/tape.h"
#include "util/check.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::train {
namespace {

// Candidate rows scored per ParallelFor chunk in the TopK/SimilarUsers
// scans; fixed so scores are computed identically for any thread count.
constexpr int64_t kScanGrain = 256;

float Dot(const float* a, const float* b, int64_t d) {
  float acc = 0.0f;
  for (int64_t c = 0; c < d; ++c) acc += a[c] * b[c];
  return acc;
}

bool ScoreGreater(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

}  // namespace

Recommender::Recommender(models::RecModel& model,
                         const data::Dataset& dataset)
    : dataset_(&dataset) {
  ag::Tape tape;
  models::ForwardResult fwd = model.Forward(tape, /*training=*/false);
  users_ = tape.val(fwd.users);
  items_ = tape.val(fwd.items);
  DGNN_CHECK_EQ(users_.rows(), dataset.num_users);
  DGNN_CHECK_EQ(items_.rows(), dataset.num_items);
  seen_ = dataset.TrainItemsByUser();
}

float Recommender::Score(int32_t user, int32_t item) const {
  DGNN_CHECK_GE(user, 0);
  DGNN_CHECK_LT(user, users_.rows());
  DGNN_CHECK_GE(item, 0);
  DGNN_CHECK_LT(item, items_.rows());
  return Dot(users_.row(user), items_.row(item), users_.cols());
}

std::vector<ScoredItem> Recommender::TopK(int32_t user, int k) const {
  DGNN_CHECK_GE(user, 0);
  DGNN_CHECK_LT(user, users_.rows());
  DGNN_CHECK_GT(k, 0);
  static telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.topk_seconds");
  telemetry::ScopedLatency record_latency(latency);
  telemetry::ScopedSpan span("topk", "serve");
  const auto& seen = seen_[static_cast<size_t>(user)];
  const float* u = users_.row(user);
  // Score the whole catalog in parallel (disjoint slots), then filter and
  // select serially — same scores and ordering as the serial scan.
  std::vector<float> scores(static_cast<size_t>(items_.rows()));
  util::ParallelFor(0, items_.rows(), kScanGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      scores[static_cast<size_t>(i)] = Dot(u, items_.row(i), users_.cols());
    }
  });
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(items_.rows()));
  for (int32_t i = 0; i < items_.rows(); ++i) {
    if (std::binary_search(seen.begin(), seen.end(), i)) continue;
    scored.push_back({i, scores[static_cast<size_t>(i)]});
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(k),
                                       scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<int64_t>(keep),
                    scored.end(), ScoreGreater);
  scored.resize(keep);
  return scored;
}

std::vector<ScoredItem> Recommender::SimilarUsers(int32_t user,
                                                  int k) const {
  DGNN_CHECK_GE(user, 0);
  DGNN_CHECK_LT(user, users_.rows());
  static telemetry::Histogram* latency =
      telemetry::GetHistogram("serve.similar_users_seconds");
  telemetry::ScopedLatency record_latency(latency);
  telemetry::ScopedSpan span("similar_users", "serve");
  const float* u = users_.row(user);
  const float u_norm = std::sqrt(Dot(u, u, users_.cols()));
  std::vector<float> scores(static_cast<size_t>(users_.rows()));
  util::ParallelFor(0, users_.rows(), kScanGrain, [&](int64_t b, int64_t e) {
    for (int64_t v = b; v < e; ++v) {
      const float* w = users_.row(v);
      const float w_norm = std::sqrt(Dot(w, w, users_.cols()));
      const float denom = u_norm * w_norm;
      scores[static_cast<size_t>(v)] =
          denom > 1e-12f ? Dot(u, w, users_.cols()) / denom : 0.0f;
    }
  });
  std::vector<ScoredItem> scored;
  scored.reserve(static_cast<size_t>(users_.rows()) - 1);
  for (int32_t v = 0; v < users_.rows(); ++v) {
    if (v == user) continue;
    scored.push_back({v, scores[static_cast<size_t>(v)]});
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(k),
                                       scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<int64_t>(keep),
                    scored.end(), ScoreGreater);
  scored.resize(keep);
  return scored;
}

}  // namespace dgnn::train
