#include "train/evaluator.h"

#include "train/train_log.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::train {
namespace {

float Dot(const float* a, const float* b, int64_t d) {
  float acc = 0.0f;
  for (int64_t c = 0; c < d; ++c) acc += a[c] * b[c];
  return acc;
}

}  // namespace

Evaluator::Evaluator(const data::Dataset& dataset) : dataset_(&dataset) {}

std::vector<int> Evaluator::Ranks(const ag::Tensor& user_emb,
                                  const ag::Tensor& item_emb) const {
  DGNN_CHECK_EQ(user_emb.rows(), dataset_->num_users);
  DGNN_CHECK_EQ(item_emb.rows(), dataset_->num_items);
  DGNN_CHECK_EQ(user_emb.cols(), item_emb.cols());
  static telemetry::Timer* rank_timer = telemetry::GetTimer("eval.rank_scan");
  telemetry::ScopedSpan span("rank_scan", "eval", rank_timer);
  if (telemetry::Enabled()) {
    telemetry::GetCounter("eval.users_evaluated")
        ->Add(static_cast<int64_t>(dataset_->test.size()));
  }
  const int64_t d = user_emb.cols();
  // One independent ranking task per test instance; every ranks[t] slot is
  // written by exactly one chunk, so output is thread-count independent.
  std::vector<int> ranks(dataset_->test.size());
  util::ParallelFor(
      0, static_cast<int64_t>(dataset_->test.size()), 16,
      [&](int64_t tb, int64_t te) {
        std::vector<float> neg_scores;
        for (int64_t t = tb; t < te; ++t) {
          const auto& pos = dataset_->test[static_cast<size_t>(t)];
          const float* u = user_emb.row(pos.user);
          const float pos_score = Dot(u, item_emb.row(pos.item), d);
          const auto& negs = dataset_->eval_negatives[static_cast<size_t>(t)];
          neg_scores.clear();
          neg_scores.reserve(negs.size());
          for (int32_t item : negs) {
            neg_scores.push_back(Dot(u, item_emb.row(item), d));
          }
          ranks[static_cast<size_t>(t)] = RankOfPositive(pos_score, neg_scores);
        }
      });
  return ranks;
}

Metrics Evaluator::Evaluate(const ag::Tensor& user_emb,
                            const ag::Tensor& item_emb,
                            const std::vector<int>& cutoffs) const {
  return MetricsFromRanks(Ranks(user_emb, item_emb), cutoffs);
}

Metrics Evaluator::EvaluateModel(models::RecModel& model,
                                 const std::vector<int>& cutoffs) const {
  util::Stopwatch sw;
  ag::Tape tape;
  models::ForwardResult fwd = model.Forward(tape, /*training=*/false);
  Metrics m = Evaluate(tape.val(fwd.users), tape.val(fwd.items), cutoffs);
  // Emitted here rather than by the trainer so standalone evaluation
  // (dgnn_cli --mode=evaluate) produces `eval` events too.
  LogEvalEvent(m, sw.ElapsedSeconds());
  return m;
}

std::vector<Metrics> Evaluator::EvaluateGroups(
    const ag::Tensor& user_emb, const ag::Tensor& item_emb,
    const std::vector<int>& user_group, int num_groups,
    const std::vector<int>& cutoffs) const {
  DGNN_CHECK_EQ(static_cast<int64_t>(user_group.size()),
                dataset_->num_users);
  std::vector<int> all_ranks = Ranks(user_emb, item_emb);
  std::vector<std::vector<int>> by_group(static_cast<size_t>(num_groups));
  for (size_t t = 0; t < dataset_->test.size(); ++t) {
    const int g = user_group[static_cast<size_t>(dataset_->test[t].user)];
    if (g < 0) continue;
    DGNN_CHECK_LT(g, num_groups);
    by_group[static_cast<size_t>(g)].push_back(all_ranks[t]);
  }
  std::vector<Metrics> out;
  out.reserve(static_cast<size_t>(num_groups));
  for (const auto& ranks : by_group) {
    out.push_back(MetricsFromRanks(ranks, cutoffs));
  }
  return out;
}

}  // namespace dgnn::train
