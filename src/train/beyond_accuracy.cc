#include "train/beyond_accuracy.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/thread_pool.h"

namespace dgnn::train {

BeyondAccuracy ComputeBeyondAccuracy(const Recommender& recommender,
                                     const data::Dataset& dataset, int k) {
  DGNN_CHECK_GT(k, 0);
  BeyondAccuracy out;
  out.top_k = k;
  const int64_t num_items = dataset.num_items;
  DGNN_CHECK_GT(num_items, 0);

  // Popularity percentile of each item from training interaction counts:
  // percentile 1.0 = most interacted.
  std::vector<int64_t> train_count(static_cast<size_t>(num_items), 0);
  for (const auto& it : dataset.train) {
    ++train_count[static_cast<size_t>(it.item)];
  }
  std::vector<int32_t> by_popularity(static_cast<size_t>(num_items));
  std::iota(by_popularity.begin(), by_popularity.end(), 0);
  std::stable_sort(by_popularity.begin(), by_popularity.end(),
                   [&](int32_t a, int32_t b) {
                     return train_count[static_cast<size_t>(a)] <
                            train_count[static_cast<size_t>(b)];
                   });
  std::vector<double> percentile(static_cast<size_t>(num_items), 0.0);
  for (size_t rank = 0; rank < by_popularity.size(); ++rank) {
    percentile[static_cast<size_t>(by_popularity[rank])] =
        num_items > 1 ? static_cast<double>(rank) /
                            static_cast<double>(num_items - 1)
                      : 1.0;
  }

  // Per-user top-K lists computed in parallel into disjoint slots; the
  // exposure / percentile accumulation stays serial in user order so the
  // double-precision sums match the single-threaded pass exactly.
  std::vector<std::vector<ScoredItem>> top_lists(
      static_cast<size_t>(dataset.num_users));
  util::ParallelFor(0, dataset.num_users, 16, [&](int64_t ub, int64_t ue) {
    for (int64_t u = ub; u < ue; ++u) {
      top_lists[static_cast<size_t>(u)] =
          recommender.TopK(static_cast<int32_t>(u), k);
    }
  });
  std::vector<int64_t> exposure(static_cast<size_t>(num_items), 0);
  double percentile_sum = 0.0;
  int64_t recommended_total = 0;
  for (int32_t u = 0; u < dataset.num_users; ++u) {
    for (const auto& scored : top_lists[static_cast<size_t>(u)]) {
      ++exposure[static_cast<size_t>(scored.item)];
      percentile_sum += percentile[static_cast<size_t>(scored.item)];
      ++recommended_total;
    }
  }

  int64_t covered = 0;
  for (int64_t count : exposure) covered += count > 0;
  out.catalog_coverage =
      static_cast<double>(covered) / static_cast<double>(num_items);
  out.mean_popularity_percentile =
      recommended_total > 0
          ? percentile_sum / static_cast<double>(recommended_total)
          : 0.0;

  // Gini over exposure counts (sorted-weights formula).
  std::vector<int64_t> sorted = exposure;
  std::sort(sorted.begin(), sorted.end());
  const double total =
      static_cast<double>(std::accumulate(sorted.begin(), sorted.end(),
                                          int64_t{0}));
  if (total > 0.0) {
    double weighted = 0.0;
    const double n = static_cast<double>(sorted.size());
    for (size_t i = 0; i < sorted.size(); ++i) {
      weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) *
                  static_cast<double>(sorted[i]);
    }
    out.exposure_gini =
        weighted / (n * total);
  }
  return out;
}

}  // namespace dgnn::train
