#include "train/trainer.h"

#include <atomic>
#include <cstring>
#include <utility>
#include <vector>

#include "ag/diagnostics.h"
#include "ag/serialize.h"
#include "train/train_log.h"
#include "util/json.h"
#include "util/run_log.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::train {
namespace {

// Trainer-state blob layout version (inside the v2 checkpoint's opaque
// trainer_state field). Bump on any layout change.
constexpr uint32_t kTrainerStateVersion = 1;

std::atomic<bool> g_interrupt{false};

ag::AdamConfig MakeAdamConfig(const TrainConfig& c) {
  ag::AdamConfig a;
  a.learning_rate = c.learning_rate;
  a.weight_decay = c.weight_decay;
  return a;
}

template <typename T>
void AppendPod(std::string& out, T value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Bounds-checked sequential reader for the trainer-state blob.
struct BlobCursor {
  const std::string& bytes;
  size_t pos = 0;

  template <typename T>
  bool ReadPod(T* value) {
    if (bytes.size() - pos < sizeof(T)) return false;
    std::memcpy(value, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
};

// `run_start` event: everything needed to reproduce or interpret the run
// — config, model, seed, parallelism, and the dataset's shape/density.
// Resumed runs additionally record their lineage (the checkpoint file
// and the epoch they rejoined at) so dgnn_inspect can stitch the split
// run back together.
void LogRunStart(const models::RecModel& model, const data::Dataset& dataset,
                 const TrainConfig& c, int num_threads, bool resumed,
                 const std::string& resumed_from, int start_epoch) {
  if (!runlog::Active()) return;
  util::JsonObject cfg;
  cfg.Set("epochs", c.epochs)
      .Set("batch_size", c.batch_size)
      .Set("learning_rate", static_cast<double>(c.learning_rate))
      .Set("l2_reg", static_cast<double>(c.l2_reg))
      .Set("weight_decay", static_cast<double>(c.weight_decay))
      .Set("eval_every", c.eval_every)
      .Set("early_stop_patience", c.early_stop_patience)
      .Set("grad_stats_every", c.grad_stats_every)
      .Set("check_numerics", c.check_numerics);
  if (c.checkpoint_every > 0) cfg.Set("checkpoint_every", c.checkpoint_every);
  const data::DatasetStats ds = dataset.ComputeStats();
  util::JsonObject stats;
  stats.Set("num_users", ds.num_users)
      .Set("num_items", ds.num_items)
      .Set("num_interactions", ds.num_interactions)
      .Set("num_social_ties", ds.num_social_ties)
      .Set("num_item_relation_links", ds.num_item_relation_links)
      .Set("interaction_density", ds.interaction_density)
      .Set("social_density", ds.social_density);
  util::JsonObject o;
  o.Set("model", model.name())
      .Set("dataset", dataset.name)
      .Set("seed", static_cast<int64_t>(c.seed))
      .Set("num_threads", num_threads)
      .SetRaw("config", cfg.Build())
      .SetRaw("dataset_stats", stats.Build());
  if (resumed) {
    o.Set("resumed_from", resumed_from).Set("start_epoch", start_epoch);
  }
  runlog::Emit("run_start", o);
}

void LogRunEnd(const TrainResult& r) {
  if (!runlog::Active()) return;
  util::JsonObject o;
  o.Set("status", r.interrupted ? "interrupted" : "completed")
      .Set("epochs_run", static_cast<int64_t>(r.epochs.size()))
      .Set("stopped_early", r.stopped_early)
      .Set("best_epoch", r.best_epoch)
      .Set("best_metric", r.best_metric)
      .Set("total_train_seconds", r.total_train_seconds)
      .Set("mean_epoch_train_seconds", r.mean_epoch_train_seconds)
      .Set("final_eval_seconds", r.final_eval_seconds)
      .SetRaw("final_metrics", MetricsJson(r.final_metrics).Build());
  if (r.resumed) o.Set("resumed_from", r.resumed_from);
  runlog::Emit("run_end", o);
}

}  // namespace

void RequestInterrupt() {
  g_interrupt.store(true, std::memory_order_relaxed);
}

bool InterruptRequested() {
  return g_interrupt.load(std::memory_order_relaxed);
}

void ClearInterrupt() { g_interrupt.store(false, std::memory_order_relaxed); }

Trainer::Trainer(models::RecModel* model, const data::Dataset& dataset,
                 TrainConfig config)
    : model_(model),
      dataset_(&dataset),
      config_(config),
      sampler_(dataset, config.seed),
      optimizer_(&model->params(), MakeAdamConfig(config)),
      evaluator_(dataset) {
  DGNN_CHECK(model != nullptr);
}

double Trainer::TrainBatch(const data::BprBatch& batch) {
  ag::Tape tape;
  models::ForwardResult fwd = model_->Forward(tape, /*training=*/true);

  std::vector<int32_t> users(batch.users.begin(), batch.users.end());
  std::vector<int32_t> pos(batch.pos_items.begin(), batch.pos_items.end());
  std::vector<int32_t> neg(batch.neg_items.begin(), batch.neg_items.end());

  ag::VarId u_rows = tape.GatherRows(fwd.users, std::move(users));
  ag::VarId p_rows = tape.GatherRows(fwd.items, std::move(pos));
  ag::VarId n_rows = tape.GatherRows(fwd.items, std::move(neg));

  ag::VarId pos_scores = tape.RowDot(u_rows, p_rows);
  ag::VarId neg_scores = tape.RowDot(u_rows, n_rows);
  ag::VarId loss = tape.BprLoss(pos_scores, neg_scores);

  if (config_.l2_reg > 0.0f) {
    ag::VarId reg = tape.AddN(
        {tape.L2(u_rows), tape.L2(p_rows), tape.L2(n_rows)});
    loss = tape.Add(
        loss, tape.ScalarMul(
                  reg, config_.l2_reg / static_cast<float>(batch.size())));
  }
  if (fwd.aux_loss >= 0) {
    loss = tape.Add(loss, fwd.aux_loss);
  }

  const double loss_value = tape.val(loss).scalar();
  tape.Backward(loss);
  ++batch_counter_;
  const bool sample_stats = config_.grad_stats_every > 0 &&
                            batch_counter_ % config_.grad_stats_every == 0;
  if (sample_stats) {
    // Gradients must be read here: Step zeroes them. Update ratios come
    // from the instrumented (bit-identical) optimizer pass.
    last_grad_stats_ = ag::CollectGradStats(model_->params());
    std::vector<ag::ParamUpdateStats> updates;
    optimizer_.Step(&updates);
    ag::AttachUpdateRatios(&last_grad_stats_, updates);
    if (runlog::Active()) {
      util::JsonObject o;
      o.Set("batch", batch_counter_).Set("loss", loss_value);
      o.SetRaw("params", ag::GradStatsJsonArray(last_grad_stats_));
      runlog::Emit("grad_stats", o);
    }
  } else {
    optimizer_.Step();
  }
  return loss_value;
}

std::string Trainer::SerializeTrainerState(int epoch,
                                           int64_t batch_cursor) const {
  std::string out;
  AppendPod<uint32_t>(out, kTrainerStateVersion);
  // Config fingerprint: resuming under a different schedule, rate, or
  // seed would silently train a different run, so Resume refuses it.
  AppendPod<int32_t>(out, config_.epochs);
  AppendPod<int32_t>(out, config_.batch_size);
  AppendPod<float>(out, config_.learning_rate);
  AppendPod<float>(out, config_.l2_reg);
  AppendPod<float>(out, config_.weight_decay);
  AppendPod<uint64_t>(out, config_.seed);
  // Cursor + lifetime counters.
  AppendPod<int32_t>(out, epoch);
  AppendPod<int64_t>(out, batch_cursor);
  AppendPod<int64_t>(out, batch_counter_);
  // Best-metric bookkeeping (drives run_end and early stopping).
  AppendPod<int32_t>(out, best_epoch_);
  AppendPod<double>(out, best_metric_);
  AppendPod<int32_t>(out, evals_without_improvement_);
  AppendPod<uint8_t>(out, any_eval_ ? 1 : 0);
  // Epoch-start sampler state; replaying SampleEpoch from it regenerates
  // the batch stream the cursor indexes into.
  util::AppendRngState(epoch_start_sampler_.rng, &out);
  AppendPod<uint64_t>(out, epoch_start_sampler_.order.size());
  out.append(
      reinterpret_cast<const char*>(epoch_start_sampler_.order.data()),
      epoch_start_sampler_.order.size() * sizeof(int32_t));
  // Model-owned stochastic state (dropout/shuffle/negative RNGs), as of
  // the checkpointed batch.
  const std::string model_state = model_->SaveStochasticState();
  AppendPod<uint64_t>(out, model_state.size());
  out.append(model_state);
  return out;
}

util::Status Trainer::SaveTrainingCheckpoint(int epoch,
                                             int64_t batch_cursor) {
  ag::CheckpointState cs;
  cs.has_optimizer = true;
  cs.adam_step = optimizer_.step_count();
  cs.trainer_state = SerializeTrainerState(epoch, batch_cursor);
  return ag::SaveCheckpoint(model_->params(), cs, config_.checkpoint_path);
}

util::Status Trainer::Resume(const std::string& path) {
  using util::Status;
  ag::CheckpointState cs;
  DGNN_RETURN_IF_ERROR(ag::LoadCheckpoint(model_->params(), &cs, path));
  if (!cs.has_optimizer) {
    return Status::FailedPrecondition(
        path + " carries no optimizer state; cannot resume training");
  }
  BlobCursor cur{cs.trainer_state};
  uint32_t version = 0;
  if (!cur.ReadPod(&version) || version != kTrainerStateVersion) {
    return Status::InvalidArgument("unsupported trainer state version in " +
                                   path);
  }
  int32_t epochs = 0;
  int32_t batch_size = 0;
  float lr = 0.0f;
  float l2 = 0.0f;
  float wd = 0.0f;
  uint64_t seed = 0;
  int32_t epoch = 0;
  int64_t cursor = 0;
  int64_t batch_counter = 0;
  int32_t best_epoch = 0;
  double best_metric = 0.0;
  int32_t evals_without_improvement = 0;
  uint8_t any_eval = 0;
  if (!cur.ReadPod(&epochs) || !cur.ReadPod(&batch_size) ||
      !cur.ReadPod(&lr) || !cur.ReadPod(&l2) || !cur.ReadPod(&wd) ||
      !cur.ReadPod(&seed) || !cur.ReadPod(&epoch) || !cur.ReadPod(&cursor) ||
      !cur.ReadPod(&batch_counter) || !cur.ReadPod(&best_epoch) ||
      !cur.ReadPod(&best_metric) || !cur.ReadPod(&evals_without_improvement) ||
      !cur.ReadPod(&any_eval)) {
    return Status::InvalidArgument("truncated trainer state in " + path);
  }
  if (epochs != config_.epochs || batch_size != config_.batch_size ||
      lr != config_.learning_rate || l2 != config_.l2_reg ||
      wd != config_.weight_decay || seed != config_.seed) {
    return Status::FailedPrecondition(
        "checkpoint " + path +
        " was written under a different training config (epochs/batch/"
        "rates/seed); resuming it would not reproduce the original run");
  }
  util::RngState rng_state;
  DGNN_RETURN_IF_ERROR(
      util::ParseRngState(cs.trainer_state, &cur.pos, &rng_state));
  uint64_t order_len = 0;
  if (!cur.ReadPod(&order_len) ||
      order_len * sizeof(int32_t) > cs.trainer_state.size() - cur.pos) {
    return Status::InvalidArgument("truncated sampler state in " + path);
  }
  if (order_len != static_cast<uint64_t>(sampler_.num_train())) {
    return Status::FailedPrecondition(
        "checkpoint " + path + " sampler state covers " +
        std::to_string(order_len) + " interactions, dataset has " +
        std::to_string(sampler_.num_train()));
  }
  data::SamplerState sampler_state;
  sampler_state.rng = rng_state;
  sampler_state.order.resize(order_len);
  std::memcpy(sampler_state.order.data(),
              cs.trainer_state.data() + cur.pos,
              order_len * sizeof(int32_t));
  cur.pos += order_len * sizeof(int32_t);
  uint64_t model_state_len = 0;
  if (!cur.ReadPod(&model_state_len) ||
      model_state_len > cs.trainer_state.size() - cur.pos) {
    return Status::InvalidArgument("truncated model state in " + path);
  }
  const std::string model_state(cs.trainer_state.data() + cur.pos,
                                model_state_len);
  cur.pos += model_state_len;
  if (cur.pos != cs.trainer_state.size()) {
    return Status::InvalidArgument("trailing bytes in trainer state in " +
                                   path);
  }
  // Cursor sanity against THIS dataset's epoch geometry.
  const int64_t num_batches =
      (sampler_.num_train() + config_.batch_size - 1) / config_.batch_size;
  if (epoch < 1 || epoch > config_.epochs || cursor < 0 ||
      cursor > num_batches) {
    return Status::InvalidArgument("implausible resume cursor in " + path);
  }
  DGNN_RETURN_IF_ERROR(model_->RestoreStochasticState(model_state));

  // Everything validated — commit.
  optimizer_.set_step_count(cs.adam_step);
  sampler_.set_state(sampler_state);
  epoch_start_sampler_ = sampler_state;
  batch_counter_ = batch_counter;
  best_epoch_ = best_epoch;
  best_metric_ = best_metric;
  evals_without_improvement_ = evals_without_improvement;
  any_eval_ = any_eval != 0;
  start_epoch_ = epoch;
  start_batch_cursor_ = cursor;
  resumed_ = true;
  resumed_from_ = path;
  return Status::Ok();
}

double Trainer::TrainEpochImpl(int epoch, int64_t skip_batches,
                               bool* interrupted) {
  static telemetry::Timer* epoch_timer = telemetry::GetTimer("train.epoch");
  static telemetry::Timer* sampler_timer =
      telemetry::GetTimer("train.sampler");
  static telemetry::Timer* batch_timer = telemetry::GetTimer("train.batch");
  telemetry::ScopedSpan epoch_span("epoch", "train", epoch_timer);
  // Capture BEFORE SampleEpoch: a checkpoint taken anywhere inside this
  // epoch stores this state, and replaying SampleEpoch from it on resume
  // regenerates the identical batch stream.
  epoch_start_sampler_ = sampler_.state();
  double loss_sum = 0.0;
  int batches = 0;
  std::vector<data::BprBatch> epoch_batches;
  {
    telemetry::ScopedSpan span("sample_epoch", "train", sampler_timer);
    epoch_batches = sampler_.SampleEpoch(config_.batch_size);
  }
  const bool can_checkpoint = epoch > 0 && !config_.checkpoint_path.empty();
  const int64_t n = static_cast<int64_t>(epoch_batches.size());
  for (int64_t i = 0; i < n; ++i) {
    // Batches before the resume cursor were already applied by the run
    // that wrote the checkpoint; their randomness was consumed by
    // SampleEpoch above, so skipping them rejoins the stream exactly.
    if (i < skip_batches) continue;
    {
      telemetry::ScopedTimer timer(batch_timer);
      loss_sum += TrainBatch(epoch_batches[static_cast<size_t>(i)]);
    }
    ++batches;
    ++fit_batches_;
    const int64_t cursor = i + 1;
    bool saved_here = false;
    if (can_checkpoint && config_.checkpoint_every > 0 &&
        batch_counter_ % config_.checkpoint_every == 0) {
      // Periodic checkpoint; a failed save is logged (checkpoint event,
      // ok=false) but does not stop training — the previous checkpoint
      // is still intact thanks to the atomic writer.
      saved_here = SaveTrainingCheckpoint(epoch, cursor).ok();
    }
    const bool stop =
        InterruptRequested() ||
        (config_.max_batches > 0 && fit_batches_ >= config_.max_batches);
    if (stop) {
      if (can_checkpoint && !saved_here) {
        (void)SaveTrainingCheckpoint(epoch, cursor);
      }
      *interrupted = true;
      break;
    }
  }
  const double mean_loss = batches > 0 ? loss_sum / batches : 0.0;
  if (telemetry::Enabled()) {
    telemetry::GetCounter("train.epochs")->Add(1);
    telemetry::GetCounter("train.batches")->Add(batches);
    telemetry::GetGauge("train.last_loss")->Set(mean_loss);
  }
  return mean_loss;
}

double Trainer::TrainEpoch() {
  bool interrupted = false;
  return TrainEpochImpl(/*epoch=*/0, /*skip_batches=*/0, &interrupted);
}

TrainResult Trainer::Fit() {
  TrainResult result;
  result.num_threads = util::NumThreads();
  result.resumed = resumed_;
  result.resumed_from = resumed_from_;
  if (config_.check_numerics) ag::SetCheckNumerics(true);
  LogRunStart(*model_, *dataset_, config_, result.num_threads, resumed_,
              resumed_from_, start_epoch_);
  fit_batches_ = 0;
  if (!resumed_) {
    best_epoch_ = 0;
    best_metric_ = 0.0;
    evals_without_improvement_ = 0;
    any_eval_ = false;
  }
  const int primary_cutoff =
      config_.eval_cutoffs.empty() ? 10 : config_.eval_cutoffs.front();
  bool interrupted = false;
  int64_t skip = start_batch_cursor_;
  for (int epoch = start_epoch_; epoch <= config_.epochs; ++epoch) {
    EpochTrace trace;
    trace.epoch = epoch;
    util::Stopwatch sw;
    trace.loss = TrainEpochImpl(epoch, skip, &interrupted);
    skip = 0;
    trace.train_seconds = sw.ElapsedSeconds();
    result.total_train_seconds += trace.train_seconds;
    if (interrupted) {
      result.epochs.push_back(std::move(trace));
      result.interrupted = true;
      break;
    }

    const bool eval_now =
        config_.eval_every > 0 && epoch % config_.eval_every == 0;
    if (eval_now) {
      util::Stopwatch esw;
      telemetry::ScopedSpan span("evaluate", "eval");
      trace.metrics = evaluator_.EvaluateModel(*model_, config_.eval_cutoffs);
      trace.eval_seconds = esw.ElapsedSeconds();
      trace.evaluated = true;
    }
    LogEpochProgress(model_->name(), trace, config_.verbose);
    const bool evaluated = trace.evaluated;
    const double metric =
        evaluated ? trace.metrics.hr[primary_cutoff] : 0.0;
    result.epochs.push_back(std::move(trace));
    if (evaluated) {
      // Track the best evaluated epoch for run_end / TrainResult; the
      // same comparison drives early stopping (strict improvement, same
      // semantics as before: ties count as no improvement).
      if (!any_eval_ || metric > best_metric_) {
        best_metric_ = metric;
        best_epoch_ = epoch;
        evals_without_improvement_ = 0;
      } else {
        ++evals_without_improvement_;
      }
      any_eval_ = true;
      if (config_.early_stop_patience > 0 &&
          evals_without_improvement_ >= config_.early_stop_patience) {
        result.stopped_early = true;
        break;
      }
    }
  }
  // The resume cursor is one-shot: a second Fit on the same trainer
  // starts from scratch positions (its parameters carry on regardless).
  start_epoch_ = 1;
  start_batch_cursor_ = 0;
  if (!result.interrupted) {
    util::Stopwatch esw;
    {
      telemetry::ScopedSpan span("final_evaluate", "eval");
      result.final_metrics =
          evaluator_.EvaluateModel(*model_, config_.eval_cutoffs);
    }
    result.final_eval_seconds = esw.ElapsedSeconds();
    // The final evaluation competes for best too — it reflects the last
    // trained epoch, which periodic evaluation may not have covered.
    const double final_metric = result.final_metrics.hr[primary_cutoff];
    const int final_epoch =
        result.epochs.empty() ? 0 : result.epochs.back().epoch;
    if (!any_eval_ || final_metric > best_metric_) {
      best_metric_ = final_metric;
      best_epoch_ = final_epoch;
    }
  }
  result.best_epoch = best_epoch_;
  result.best_metric = best_metric_;
  if (!result.epochs.empty()) {
    result.mean_epoch_train_seconds =
        result.total_train_seconds /
        static_cast<double>(result.epochs.size());
  }
  LogRunEnd(result);
  return result;
}

}  // namespace dgnn::train
