#include "train/trainer.h"

#include <utility>
#include <vector>

#include "ag/diagnostics.h"
#include "train/train_log.h"
#include "util/json.h"
#include "util/run_log.h"
#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::train {
namespace {

ag::AdamConfig MakeAdamConfig(const TrainConfig& c) {
  ag::AdamConfig a;
  a.learning_rate = c.learning_rate;
  a.weight_decay = c.weight_decay;
  return a;
}

// `run_start` event: everything needed to reproduce or interpret the run
// — config, model, seed, parallelism, and the dataset's shape/density.
void LogRunStart(const models::RecModel& model, const data::Dataset& dataset,
                 const TrainConfig& c, int num_threads) {
  if (!runlog::Active()) return;
  util::JsonObject cfg;
  cfg.Set("epochs", c.epochs)
      .Set("batch_size", c.batch_size)
      .Set("learning_rate", static_cast<double>(c.learning_rate))
      .Set("l2_reg", static_cast<double>(c.l2_reg))
      .Set("weight_decay", static_cast<double>(c.weight_decay))
      .Set("eval_every", c.eval_every)
      .Set("early_stop_patience", c.early_stop_patience)
      .Set("grad_stats_every", c.grad_stats_every)
      .Set("check_numerics", c.check_numerics);
  const data::DatasetStats ds = dataset.ComputeStats();
  util::JsonObject stats;
  stats.Set("num_users", ds.num_users)
      .Set("num_items", ds.num_items)
      .Set("num_interactions", ds.num_interactions)
      .Set("num_social_ties", ds.num_social_ties)
      .Set("num_item_relation_links", ds.num_item_relation_links)
      .Set("interaction_density", ds.interaction_density)
      .Set("social_density", ds.social_density);
  util::JsonObject o;
  o.Set("model", model.name())
      .Set("dataset", dataset.name)
      .Set("seed", static_cast<int64_t>(c.seed))
      .Set("num_threads", num_threads)
      .SetRaw("config", cfg.Build())
      .SetRaw("dataset_stats", stats.Build());
  runlog::Emit("run_start", o);
}

void LogRunEnd(const TrainResult& r) {
  if (!runlog::Active()) return;
  util::JsonObject o;
  o.Set("epochs_run", static_cast<int64_t>(r.epochs.size()))
      .Set("stopped_early", r.stopped_early)
      .Set("best_epoch", r.best_epoch)
      .Set("best_metric", r.best_metric)
      .Set("total_train_seconds", r.total_train_seconds)
      .Set("mean_epoch_train_seconds", r.mean_epoch_train_seconds)
      .Set("final_eval_seconds", r.final_eval_seconds)
      .SetRaw("final_metrics", MetricsJson(r.final_metrics).Build());
  runlog::Emit("run_end", o);
}

}  // namespace

Trainer::Trainer(models::RecModel* model, const data::Dataset& dataset,
                 TrainConfig config)
    : model_(model),
      dataset_(&dataset),
      config_(config),
      sampler_(dataset, config.seed),
      optimizer_(&model->params(), MakeAdamConfig(config)),
      evaluator_(dataset) {
  DGNN_CHECK(model != nullptr);
}

double Trainer::TrainBatch(const data::BprBatch& batch) {
  ag::Tape tape;
  models::ForwardResult fwd = model_->Forward(tape, /*training=*/true);

  std::vector<int32_t> users(batch.users.begin(), batch.users.end());
  std::vector<int32_t> pos(batch.pos_items.begin(), batch.pos_items.end());
  std::vector<int32_t> neg(batch.neg_items.begin(), batch.neg_items.end());

  ag::VarId u_rows = tape.GatherRows(fwd.users, std::move(users));
  ag::VarId p_rows = tape.GatherRows(fwd.items, std::move(pos));
  ag::VarId n_rows = tape.GatherRows(fwd.items, std::move(neg));

  ag::VarId pos_scores = tape.RowDot(u_rows, p_rows);
  ag::VarId neg_scores = tape.RowDot(u_rows, n_rows);
  ag::VarId loss = tape.BprLoss(pos_scores, neg_scores);

  if (config_.l2_reg > 0.0f) {
    ag::VarId reg = tape.AddN(
        {tape.L2(u_rows), tape.L2(p_rows), tape.L2(n_rows)});
    loss = tape.Add(
        loss, tape.ScalarMul(
                  reg, config_.l2_reg / static_cast<float>(batch.size())));
  }
  if (fwd.aux_loss >= 0) {
    loss = tape.Add(loss, fwd.aux_loss);
  }

  const double loss_value = tape.val(loss).scalar();
  tape.Backward(loss);
  ++batch_counter_;
  const bool sample_stats = config_.grad_stats_every > 0 &&
                            batch_counter_ % config_.grad_stats_every == 0;
  if (sample_stats) {
    // Gradients must be read here: Step zeroes them. Update ratios come
    // from the instrumented (bit-identical) optimizer pass.
    last_grad_stats_ = ag::CollectGradStats(model_->params());
    std::vector<ag::ParamUpdateStats> updates;
    optimizer_.Step(&updates);
    ag::AttachUpdateRatios(&last_grad_stats_, updates);
    if (runlog::Active()) {
      util::JsonObject o;
      o.Set("batch", batch_counter_).Set("loss", loss_value);
      o.SetRaw("params", ag::GradStatsJsonArray(last_grad_stats_));
      runlog::Emit("grad_stats", o);
    }
  } else {
    optimizer_.Step();
  }
  return loss_value;
}

double Trainer::TrainEpoch() {
  static telemetry::Timer* epoch_timer = telemetry::GetTimer("train.epoch");
  static telemetry::Timer* sampler_timer =
      telemetry::GetTimer("train.sampler");
  static telemetry::Timer* batch_timer = telemetry::GetTimer("train.batch");
  telemetry::ScopedSpan epoch_span("epoch", "train", epoch_timer);
  double loss_sum = 0.0;
  int batches = 0;
  std::vector<data::BprBatch> epoch_batches;
  {
    telemetry::ScopedSpan span("sample_epoch", "train", sampler_timer);
    epoch_batches = sampler_.SampleEpoch(config_.batch_size);
  }
  for (const auto& batch : epoch_batches) {
    telemetry::ScopedTimer timer(batch_timer);
    loss_sum += TrainBatch(batch);
    ++batches;
  }
  const double mean_loss = batches > 0 ? loss_sum / batches : 0.0;
  if (telemetry::Enabled()) {
    telemetry::GetCounter("train.epochs")->Add(1);
    telemetry::GetCounter("train.batches")->Add(batches);
    telemetry::GetGauge("train.last_loss")->Set(mean_loss);
  }
  return mean_loss;
}

TrainResult Trainer::Fit() {
  TrainResult result;
  result.num_threads = util::NumThreads();
  if (config_.check_numerics) ag::SetCheckNumerics(true);
  LogRunStart(*model_, *dataset_, config_, result.num_threads);
  util::Stopwatch total;
  int evals_without_improvement = 0;
  const int primary_cutoff =
      config_.eval_cutoffs.empty() ? 10 : config_.eval_cutoffs.front();
  bool any_eval = false;
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    EpochTrace trace;
    trace.epoch = epoch;
    util::Stopwatch sw;
    trace.loss = TrainEpoch();
    trace.train_seconds = sw.ElapsedSeconds();
    result.total_train_seconds += trace.train_seconds;

    const bool eval_now =
        config_.eval_every > 0 && epoch % config_.eval_every == 0;
    if (eval_now) {
      util::Stopwatch esw;
      telemetry::ScopedSpan span("evaluate", "eval");
      trace.metrics = evaluator_.EvaluateModel(*model_, config_.eval_cutoffs);
      trace.eval_seconds = esw.ElapsedSeconds();
      trace.evaluated = true;
    }
    LogEpochProgress(model_->name(), trace, config_.verbose);
    const bool evaluated = trace.evaluated;
    const double metric =
        evaluated ? trace.metrics.hr[primary_cutoff] : 0.0;
    result.epochs.push_back(std::move(trace));
    if (evaluated) {
      // Track the best evaluated epoch for run_end / TrainResult; the
      // same comparison drives early stopping (strict improvement, same
      // semantics as before: ties count as no improvement).
      if (!any_eval || metric > result.best_metric) {
        result.best_metric = metric;
        result.best_epoch = epoch;
        evals_without_improvement = 0;
      } else {
        ++evals_without_improvement;
      }
      any_eval = true;
      if (config_.early_stop_patience > 0 &&
          evals_without_improvement >= config_.early_stop_patience) {
        result.stopped_early = true;
        break;
      }
    }
  }
  util::Stopwatch esw;
  {
    telemetry::ScopedSpan span("final_evaluate", "eval");
    result.final_metrics =
        evaluator_.EvaluateModel(*model_, config_.eval_cutoffs);
  }
  result.final_eval_seconds = esw.ElapsedSeconds();
  // The final evaluation competes for best too — it reflects the last
  // trained epoch, which periodic evaluation may not have covered.
  const double final_metric = result.final_metrics.hr[primary_cutoff];
  const int final_epoch =
      result.epochs.empty() ? 0 : result.epochs.back().epoch;
  if (!any_eval || final_metric > result.best_metric) {
    result.best_metric = final_metric;
    result.best_epoch = final_epoch;
  }
  if (!result.epochs.empty()) {
    result.mean_epoch_train_seconds =
        result.total_train_seconds /
        static_cast<double>(result.epochs.size());
  }
  LogRunEnd(result);
  return result;
}

}  // namespace dgnn::train
