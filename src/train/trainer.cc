#include "train/trainer.h"

#include <cstdio>

#include "util/stopwatch.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::train {
namespace {

ag::AdamConfig MakeAdamConfig(const TrainConfig& c) {
  ag::AdamConfig a;
  a.learning_rate = c.learning_rate;
  a.weight_decay = c.weight_decay;
  return a;
}

}  // namespace

Trainer::Trainer(models::RecModel* model, const data::Dataset& dataset,
                 TrainConfig config)
    : model_(model),
      dataset_(&dataset),
      config_(config),
      sampler_(dataset, config.seed),
      optimizer_(&model->params(), MakeAdamConfig(config)),
      evaluator_(dataset) {
  DGNN_CHECK(model != nullptr);
}

double Trainer::TrainBatch(const data::BprBatch& batch) {
  ag::Tape tape;
  models::ForwardResult fwd = model_->Forward(tape, /*training=*/true);

  std::vector<int32_t> users(batch.users.begin(), batch.users.end());
  std::vector<int32_t> pos(batch.pos_items.begin(), batch.pos_items.end());
  std::vector<int32_t> neg(batch.neg_items.begin(), batch.neg_items.end());

  ag::VarId u_rows = tape.GatherRows(fwd.users, std::move(users));
  ag::VarId p_rows = tape.GatherRows(fwd.items, std::move(pos));
  ag::VarId n_rows = tape.GatherRows(fwd.items, std::move(neg));

  ag::VarId pos_scores = tape.RowDot(u_rows, p_rows);
  ag::VarId neg_scores = tape.RowDot(u_rows, n_rows);
  ag::VarId loss = tape.BprLoss(pos_scores, neg_scores);

  if (config_.l2_reg > 0.0f) {
    ag::VarId reg = tape.AddN(
        {tape.L2(u_rows), tape.L2(p_rows), tape.L2(n_rows)});
    loss = tape.Add(
        loss, tape.ScalarMul(
                  reg, config_.l2_reg / static_cast<float>(batch.size())));
  }
  if (fwd.aux_loss >= 0) {
    loss = tape.Add(loss, fwd.aux_loss);
  }

  const double loss_value = tape.val(loss).scalar();
  tape.Backward(loss);
  optimizer_.Step();
  return loss_value;
}

double Trainer::TrainEpoch() {
  static telemetry::Timer* epoch_timer = telemetry::GetTimer("train.epoch");
  static telemetry::Timer* sampler_timer =
      telemetry::GetTimer("train.sampler");
  static telemetry::Timer* batch_timer = telemetry::GetTimer("train.batch");
  telemetry::ScopedSpan epoch_span("epoch", "train", epoch_timer);
  double loss_sum = 0.0;
  int batches = 0;
  std::vector<data::BprBatch> epoch_batches;
  {
    telemetry::ScopedSpan span("sample_epoch", "train", sampler_timer);
    epoch_batches = sampler_.SampleEpoch(config_.batch_size);
  }
  for (const auto& batch : epoch_batches) {
    telemetry::ScopedTimer timer(batch_timer);
    loss_sum += TrainBatch(batch);
    ++batches;
  }
  const double mean_loss = batches > 0 ? loss_sum / batches : 0.0;
  if (telemetry::Enabled()) {
    telemetry::GetCounter("train.epochs")->Add(1);
    telemetry::GetCounter("train.batches")->Add(batches);
    telemetry::GetGauge("train.last_loss")->Set(mean_loss);
  }
  return mean_loss;
}

TrainResult Trainer::Fit() {
  TrainResult result;
  result.num_threads = util::NumThreads();
  util::Stopwatch total;
  double best_metric = -1.0;
  int evals_without_improvement = 0;
  const int primary_cutoff =
      config_.eval_cutoffs.empty() ? 10 : config_.eval_cutoffs.front();
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    EpochTrace trace;
    trace.epoch = epoch;
    util::Stopwatch sw;
    trace.loss = TrainEpoch();
    trace.train_seconds = sw.ElapsedSeconds();
    result.total_train_seconds += trace.train_seconds;

    const bool eval_now =
        config_.eval_every > 0 && epoch % config_.eval_every == 0;
    if (eval_now) {
      util::Stopwatch esw;
      telemetry::ScopedSpan span("evaluate", "eval");
      trace.metrics = evaluator_.EvaluateModel(*model_, config_.eval_cutoffs);
      trace.eval_seconds = esw.ElapsedSeconds();
      trace.evaluated = true;
    }
    if (config_.verbose) {
      std::printf("[%s] epoch %3d loss %.4f (%.2fs)%s%s\n",
                  model_->name().c_str(), epoch, trace.loss,
                  trace.train_seconds, trace.evaluated ? " " : "",
                  trace.evaluated ? trace.metrics.ToString().c_str() : "");
      std::fflush(stdout);
    }
    const bool evaluated = trace.evaluated;
    const double metric =
        evaluated ? trace.metrics.hr[primary_cutoff] : 0.0;
    result.epochs.push_back(std::move(trace));
    if (evaluated && config_.early_stop_patience > 0) {
      if (metric > best_metric) {
        best_metric = metric;
        evals_without_improvement = 0;
      } else if (++evals_without_improvement >=
                 config_.early_stop_patience) {
        result.stopped_early = true;
        break;
      }
    }
  }
  util::Stopwatch esw;
  {
    telemetry::ScopedSpan span("final_evaluate", "eval");
    result.final_metrics =
        evaluator_.EvaluateModel(*model_, config_.eval_cutoffs);
  }
  result.final_eval_seconds = esw.ElapsedSeconds();
  if (!result.epochs.empty()) {
    result.mean_epoch_train_seconds =
        result.total_train_seconds /
        static_cast<double>(result.epochs.size());
  }
  return result;
}

}  // namespace dgnn::train
