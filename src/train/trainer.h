// BPR trainer (Eq. 11): mini-batch pairwise ranking loss over sampled
// (user, pos, neg) triples, L2 regularization on the embeddings touched by
// the batch, Adam updates. Model-agnostic — anything implementing
// models::RecModel trains here, which is how the paper's Table II compares
// fifteen models under one protocol.

#ifndef DGNN_TRAIN_TRAINER_H_
#define DGNN_TRAIN_TRAINER_H_

#include <vector>

#include "ag/adam.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "models/rec_model.h"
#include "train/evaluator.h"

namespace dgnn::train {

struct TrainConfig {
  int epochs = 20;
  int batch_size = 2048;
  float learning_rate = 0.01f;  // paper setting
  float l2_reg = 1e-4f;         // lambda, tuned in {1e-3, 1e-4, 1e-5}
  // Decoupled (AdamW-style) weight decay on ALL parameters — the knob
  // that regularizes transformation weights, which the per-batch BPR L2
  // term (embedding rows only) cannot reach.
  float weight_decay = 0.0f;
  uint64_t seed = 42;
  // Evaluate every k epochs (0 = only at the end).
  int eval_every = 0;
  std::vector<int> eval_cutoffs = {10};
  // Stop when HR at the first cutoff has not improved for this many
  // consecutive evaluations (0 = train the full schedule). Requires
  // eval_every > 0.
  int early_stop_patience = 0;
  bool verbose = false;
};

struct EpochTrace {
  int epoch = 0;
  double loss = 0.0;
  double train_seconds = 0.0;
  // Populated when this epoch was evaluated.
  bool evaluated = false;
  Metrics metrics;
  double eval_seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochTrace> epochs;
  Metrics final_metrics;
  // True when early stopping ended training before the full schedule.
  bool stopped_early = false;
  double total_train_seconds = 0.0;
  double final_eval_seconds = 0.0;
  // Mean wall-clock per epoch — the quantity Table IV reports.
  double mean_epoch_train_seconds = 0.0;
  // Thread-pool width the run executed with (util::NumThreads()); recorded
  // so runtime tables can report timings alongside their parallelism.
  int num_threads = 1;
};

class Trainer {
 public:
  // Keeps references; model and dataset must outlive the trainer.
  Trainer(models::RecModel* model, const data::Dataset& dataset,
          TrainConfig config);

  // Runs the full schedule and a final evaluation.
  TrainResult Fit();

  // One epoch over the training triples; returns the mean batch loss.
  double TrainEpoch();

  const TrainConfig& config() const { return config_; }

 private:
  double TrainBatch(const data::BprBatch& batch);

  models::RecModel* model_;
  const data::Dataset* dataset_;
  TrainConfig config_;
  data::BprSampler sampler_;
  ag::AdamOptimizer optimizer_;
  Evaluator evaluator_;
};

}  // namespace dgnn::train

#endif  // DGNN_TRAIN_TRAINER_H_
