// BPR trainer (Eq. 11): mini-batch pairwise ranking loss over sampled
// (user, pos, neg) triples, L2 regularization on the embeddings touched by
// the batch, Adam updates. Model-agnostic — anything implementing
// models::RecModel trains here, which is how the paper's Table II compares
// fifteen models under one protocol.

#ifndef DGNN_TRAIN_TRAINER_H_
#define DGNN_TRAIN_TRAINER_H_

#include <vector>

#include "ag/adam.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "models/rec_model.h"
#include "train/evaluator.h"

namespace dgnn::train {

struct TrainConfig {
  int epochs = 20;
  int batch_size = 2048;
  float learning_rate = 0.01f;  // paper setting
  float l2_reg = 1e-4f;         // lambda, tuned in {1e-3, 1e-4, 1e-5}
  // Decoupled (AdamW-style) weight decay on ALL parameters — the knob
  // that regularizes transformation weights, which the per-batch BPR L2
  // term (embedding rows only) cannot reach.
  float weight_decay = 0.0f;
  uint64_t seed = 42;
  // Evaluate every k epochs (0 = only at the end).
  int eval_every = 0;
  std::vector<int> eval_cutoffs = {10};
  // Stop when HR at the first cutoff has not improved for this many
  // consecutive evaluations (0 = train the full schedule). Requires
  // eval_every > 0.
  int early_stop_patience = 0;
  bool verbose = false;
  // Collect per-named-parameter gradient diagnostics every k batches
  // (0 = never) and emit them as `grad_stats` run-log events; the sampled
  // batch also records Adam update/param ratios. See ag/diagnostics.h.
  int grad_stats_every = 0;
  // Fail fast on the first non-finite value or gradient any tape op
  // produces, naming the op (ag::SetCheckNumerics). Global and sticky:
  // Fit turns it on when set but never turns it off for other trainers.
  bool check_numerics = false;
  // Crash-safe checkpointing: when checkpoint_path is non-empty and
  // checkpoint_every > 0, an atomic v2 checkpoint (parameters, Adam
  // moments, sampler state, epoch/batch cursor, best-metric bookkeeping)
  // is written every checkpoint_every trained batches, and once more on
  // interrupt. Resume(checkpoint_path) then continues the run with
  // bit-identical final parameters.
  std::string checkpoint_path;
  int64_t checkpoint_every = 0;
  // Stop after this many batches trained IN THIS Fit CALL, as if
  // interrupted (0 = no limit). Lets tests and controlled shutdowns cut
  // training at an exact batch boundary; a checkpoint is written when
  // checkpoint_path is set.
  int64_t max_batches = 0;
};

struct EpochTrace {
  int epoch = 0;
  double loss = 0.0;
  double train_seconds = 0.0;
  // Populated when this epoch was evaluated.
  bool evaluated = false;
  Metrics metrics;
  double eval_seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochTrace> epochs;
  Metrics final_metrics;
  // True when early stopping ended training before the full schedule.
  bool stopped_early = false;
  // True when an interrupt request or max_batches cut training short;
  // final_metrics is left empty (no final evaluation runs — the run is
  // expected to be resumed, not reported).
  bool interrupted = false;
  // Set when this run continued from a checkpoint (see Resume).
  bool resumed = false;
  std::string resumed_from;
  double total_train_seconds = 0.0;
  double final_eval_seconds = 0.0;
  // Mean wall-clock per epoch — the quantity Table IV reports.
  double mean_epoch_train_seconds = 0.0;
  // Thread-pool width the run executed with (util::NumThreads()); recorded
  // so runtime tables can report timings alongside their parallelism.
  int num_threads = 1;
  // Best evaluation seen across the run, by HR at the first cutoff; the
  // final evaluation participates, attributed to the last trained epoch.
  // best_epoch is 1-based; 0 means the best score came from the final
  // evaluation of a run that trained zero epochs.
  int best_epoch = 0;
  double best_metric = 0.0;
};

// Cooperative interrupt flag for graceful shutdown: a signal handler (or
// any thread) calls RequestInterrupt(); the trainer polls it between
// batches, writes a final checkpoint when configured, and returns with
// TrainResult::interrupted set. Process-global because POSIX signal
// handlers cannot carry a Trainer*.
void RequestInterrupt();
bool InterruptRequested();
void ClearInterrupt();

class Trainer {
 public:
  // Keeps references; model and dataset must outlive the trainer.
  Trainer(models::RecModel* model, const data::Dataset& dataset,
          TrainConfig config);

  // Runs the full schedule and a final evaluation.
  TrainResult Fit();

  // One epoch over the training triples; returns the mean batch loss.
  double TrainEpoch();

  // Restores a v2 checkpoint written by a previous run of the SAME model
  // and config (epochs / batch size / rates / seed are fingerprinted in
  // the checkpoint and must match — resuming under a different config
  // would silently train a different run). After a successful Resume,
  // Fit() continues from the recorded epoch/batch cursor and finishes
  // with parameters bit-identical to the uninterrupted run. Call before
  // Fit, at most once, on a freshly constructed trainer.
  util::Status Resume(const std::string& path);

  const TrainConfig& config() const { return config_; }

  // Most recent grad_stats sample; empty until the first sampled batch
  // (config().grad_stats_every > 0). Exposed for tests and tools that
  // want the diagnostics without parsing the run log.
  const std::vector<ag::GradStats>& last_grad_stats() const {
    return last_grad_stats_;
  }

 private:
  double TrainBatch(const data::BprBatch& batch);
  // One epoch with checkpointing: skips the first `skip_batches` batches
  // (already applied before a resume), checkpoints on the configured
  // cadence, and stops early on interrupt/max_batches (`*interrupted`).
  double TrainEpochImpl(int epoch, int64_t skip_batches, bool* interrupted);
  // Serializes/parses the opaque trainer blob inside v2 checkpoints:
  // config fingerprint, epoch/batch cursor, best-metric bookkeeping,
  // epoch-start sampler state, model stochastic state.
  std::string SerializeTrainerState(int epoch, int64_t batch_cursor) const;
  util::Status SaveTrainingCheckpoint(int epoch, int64_t batch_cursor);

  models::RecModel* model_;
  const data::Dataset* dataset_;
  TrainConfig config_;
  data::BprSampler sampler_;
  ag::AdamOptimizer optimizer_;
  Evaluator evaluator_;
  // Batches trained over the trainer's lifetime; drives grad_stats_every.
  int64_t batch_counter_ = 0;
  std::vector<ag::GradStats> last_grad_stats_;
  // Best-metric bookkeeping (members, not Fit locals, so checkpoints can
  // carry them across a crash).
  int best_epoch_ = 0;
  double best_metric_ = 0.0;
  int evals_without_improvement_ = 0;
  bool any_eval_ = false;
  // Resume cursor: Fit starts at start_epoch_, skipping the first
  // start_batch_cursor_ batches of that epoch.
  int start_epoch_ = 1;
  int64_t start_batch_cursor_ = 0;
  bool resumed_ = false;
  std::string resumed_from_;
  // Sampler state captured at the top of the epoch in progress. Because
  // SampleEpoch draws ALL of an epoch's randomness up front, restoring
  // this and replaying SampleEpoch reproduces the epoch's batch stream
  // exactly; the cursor then tells the resumed run where to rejoin it.
  data::SamplerState epoch_start_sampler_;
  // Batches trained in the current Fit call; drives max_batches.
  int64_t fit_batches_ = 0;
};

}  // namespace dgnn::train

#endif  // DGNN_TRAIN_TRAINER_H_
