#include "train/metrics.h"

#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace dgnn::train {

std::string Metrics::ToString() const {
  std::string out;
  for (const auto& [n, v] : hr) {
    out += util::StrFormat("HR@%d=%.4f ", n, v);
  }
  for (const auto& [n, v] : ndcg) {
    out += util::StrFormat("NDCG@%d=%.4f ", n, v);
  }
  if (!out.empty()) out.pop_back();
  return out;
}

int RankOfPositive(float pos_score, const std::vector<float>& neg_scores) {
  int rank = 1;
  for (float s : neg_scores) {
    if (s >= pos_score) ++rank;
  }
  return rank;
}

Metrics MetricsFromRanks(const std::vector<int>& ranks,
                         const std::vector<int>& cutoffs) {
  Metrics m;
  m.num_users = static_cast<int64_t>(ranks.size());
  for (int n : cutoffs) {
    m.hr[n] = 0.0;
    m.ndcg[n] = 0.0;
  }
  if (ranks.empty()) return m;
  for (int rank : ranks) {
    DGNN_CHECK_GE(rank, 1);
    for (int n : cutoffs) {
      if (rank <= n) {
        m.hr[n] += 1.0;
        m.ndcg[n] += 1.0 / std::log2(static_cast<double>(rank) + 1.0);
      }
    }
  }
  for (int n : cutoffs) {
    m.hr[n] /= static_cast<double>(ranks.size());
    m.ndcg[n] /= static_cast<double>(ranks.size());
  }
  return m;
}

}  // namespace dgnn::train
