// Shared reporting for the training loop. Every progress signal is
// rendered from one source struct and fanned out to both channels — the
// verbose console line and the structured run log — so the two can never
// drift apart (the console line is a projection of exactly the fields
// the `epoch` event carries).

#ifndef DGNN_TRAIN_TRAIN_LOG_H_
#define DGNN_TRAIN_TRAIN_LOG_H_

#include <string>

#include "train/trainer.h"
#include "util/json.h"

namespace dgnn::train {

// Metrics as a JSON object: {"hr":{"10":0.41,...},"ndcg":{...},
// "num_users":N}. Cutoffs become object keys (stringified ints).
util::JsonObject MetricsJson(const Metrics& metrics);

// Reports one finished epoch through both channels: a `[model] epoch ...`
// console line when `verbose`, and an `epoch` run-log event when a log is
// open. Either channel may independently be off. The console line carries
// eval wall time whenever the epoch was evaluated, same as the event.
void LogEpochProgress(const std::string& model_name, const EpochTrace& trace,
                      bool verbose);

// `eval` run-log event for one evaluation pass (no-op when no log is
// open). Emitted by the evaluator itself so standalone evaluation runs
// are logged, not just trainer-driven ones.
void LogEvalEvent(const Metrics& metrics, double seconds);

}  // namespace dgnn::train

#endif  // DGNN_TRAIN_TRAIN_LOG_H_
