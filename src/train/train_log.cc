#include "train/train_log.h"

#include <cstdio>
#include <string>

#include "util/run_log.h"
#include "util/strings.h"

namespace dgnn::train {
namespace {

std::string CutoffMapJson(const std::map<int, double>& by_cutoff) {
  util::JsonObject o;
  for (const auto& [n, v] : by_cutoff) o.Set(std::to_string(n), v);
  return o.Build();
}

}  // namespace

util::JsonObject MetricsJson(const Metrics& metrics) {
  util::JsonObject o;
  o.SetRaw("hr", CutoffMapJson(metrics.hr))
      .SetRaw("ndcg", CutoffMapJson(metrics.ndcg))
      .Set("num_users", metrics.num_users);
  return o;
}

void LogEpochProgress(const std::string& model_name, const EpochTrace& trace,
                      bool verbose) {
  if (verbose) {
    std::string eval_part;
    if (trace.evaluated) {
      eval_part = util::StrFormat(" %s (eval %.2fs)",
                                  trace.metrics.ToString().c_str(),
                                  trace.eval_seconds);
    }
    std::printf("[%s] epoch %3d loss %.4f (%.2fs)%s\n", model_name.c_str(),
                trace.epoch, trace.loss, trace.train_seconds,
                eval_part.c_str());
    std::fflush(stdout);
  }
  if (runlog::Active()) {
    util::JsonObject o;
    o.Set("epoch", trace.epoch)
        .Set("loss", trace.loss)
        .Set("train_seconds", trace.train_seconds)
        .Set("evaluated", trace.evaluated);
    if (trace.evaluated) {
      o.SetRaw("metrics", MetricsJson(trace.metrics).Build())
          .Set("eval_seconds", trace.eval_seconds);
    }
    runlog::Emit("epoch", o);
  }
}

void LogEvalEvent(const Metrics& metrics, double seconds) {
  if (!runlog::Active()) return;
  util::JsonObject o;
  o.Set("seconds", seconds)
      .SetRaw("metrics", MetricsJson(metrics).Build());
  runlog::Emit("eval", o);
}

}  // namespace dgnn::train
