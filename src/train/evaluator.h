// Evaluation under the paper's ranking protocol: for each test user, score
// the held-out positive against its pre-sampled negatives using the
// model's final embeddings and accumulate HR@N / NDCG@N.

#ifndef DGNN_TRAIN_EVALUATOR_H_
#define DGNN_TRAIN_EVALUATOR_H_

#include <vector>

#include "ag/tensor.h"
#include "data/dataset.h"
#include "models/rec_model.h"
#include "train/metrics.h"

namespace dgnn::train {

class Evaluator {
 public:
  // Keeps a reference; the dataset must outlive the evaluator.
  explicit Evaluator(const data::Dataset& dataset);

  // Per-test-user rank of the positive, given final scoring embeddings.
  std::vector<int> Ranks(const ag::Tensor& user_emb,
                         const ag::Tensor& item_emb) const;

  Metrics Evaluate(const ag::Tensor& user_emb, const ag::Tensor& item_emb,
                   const std::vector<int>& cutoffs) const;

  // Runs the model's forward pass (training=false) and evaluates.
  Metrics EvaluateModel(models::RecModel& model,
                        const std::vector<int>& cutoffs) const;

  // Group-wise evaluation (Fig. 6): `user_group[u]` in [0, num_groups) or
  // -1 to skip; returns one Metrics per group over that group's test users.
  std::vector<Metrics> EvaluateGroups(const ag::Tensor& user_emb,
                                      const ag::Tensor& item_emb,
                                      const std::vector<int>& user_group,
                                      int num_groups,
                                      const std::vector<int>& cutoffs) const;

 private:
  const data::Dataset* dataset_;
};

}  // namespace dgnn::train

#endif  // DGNN_TRAIN_EVALUATOR_H_
