#include "graph/csr.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "kernels/kernels.h"
#include "util/check.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::graph {

CsrMatrix CsrMatrix::FromCoo(const CooMatrix& coo) {
  CsrMatrix m;
  m.rows_ = coo.rows;
  m.cols_ = coo.cols;
  const int64_t nnz = coo.nnz();
  m.indptr_.assign(static_cast<size_t>(coo.rows) + 1, 0);

  // Count per-row entries.
  for (int64_t i = 0; i < nnz; ++i) {
    int32_t r = coo.row_indices[static_cast<size_t>(i)];
    DGNN_DCHECK_GE(r, 0);
    DGNN_DCHECK_LT(r, coo.rows);
    ++m.indptr_[static_cast<size_t>(r) + 1];
  }
  for (size_t r = 0; r < static_cast<size_t>(coo.rows); ++r) {
    m.indptr_[r + 1] += m.indptr_[r];
  }

  std::vector<int32_t> cols(static_cast<size_t>(nnz));
  std::vector<float> vals(static_cast<size_t>(nnz));
  std::vector<int64_t> cursor(m.indptr_.begin(), m.indptr_.end() - 1);
  for (int64_t i = 0; i < nnz; ++i) {
    int32_t r = coo.row_indices[static_cast<size_t>(i)];
    int32_t c = coo.col_indices[static_cast<size_t>(i)];
    DGNN_DCHECK_GE(c, 0);
    DGNN_DCHECK_LT(c, coo.cols);
    float v = coo.values.empty() ? 1.0f : coo.values[static_cast<size_t>(i)];
    int64_t pos = cursor[static_cast<size_t>(r)]++;
    cols[static_cast<size_t>(pos)] = c;
    vals[static_cast<size_t>(pos)] = v;
  }

  // Sort within rows and merge duplicates.
  m.indices_.reserve(static_cast<size_t>(nnz));
  m.values_.reserve(static_cast<size_t>(nnz));
  std::vector<int64_t> new_indptr(m.indptr_.size(), 0);
  std::vector<std::pair<int32_t, float>> row_buf;
  for (int64_t r = 0; r < coo.rows; ++r) {
    row_buf.clear();
    for (int64_t i = m.indptr_[static_cast<size_t>(r)];
         i < m.indptr_[static_cast<size_t>(r) + 1]; ++i) {
      row_buf.emplace_back(cols[static_cast<size_t>(i)],
                           vals[static_cast<size_t>(i)]);
    }
    std::sort(row_buf.begin(), row_buf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < row_buf.size(); ++i) {
      if (!m.indices_.empty() &&
          static_cast<int64_t>(m.indices_.size()) >
              new_indptr[static_cast<size_t>(r)] &&
          m.indices_.back() == row_buf[i].first) {
        m.values_.back() += row_buf[i].second;
      } else {
        m.indices_.push_back(row_buf[i].first);
        m.values_.push_back(row_buf[i].second);
      }
    }
    new_indptr[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(m.indices_.size());
  }
  m.indptr_ = std::move(new_indptr);
  return m;
}

CsrMatrix CsrMatrix::Identity(int64_t n) {
  CsrMatrix m;
  m.rows_ = n;
  m.cols_ = n;
  m.indptr_.resize(static_cast<size_t>(n) + 1);
  std::iota(m.indptr_.begin(), m.indptr_.end(), int64_t{0});
  m.indices_.resize(static_cast<size_t>(n));
  std::iota(m.indices_.begin(), m.indices_.end(), int32_t{0});
  m.values_.assign(static_cast<size_t>(n), 1.0f);
  return m;
}

CsrMatrix CsrMatrix::Transposed() const {
  CooMatrix coo;
  coo.rows = cols_;
  coo.cols = rows_;
  coo.row_indices.reserve(indices_.size());
  coo.col_indices.reserve(indices_.size());
  coo.values.reserve(indices_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = indptr_[static_cast<size_t>(r)];
         i < indptr_[static_cast<size_t>(r) + 1]; ++i) {
      coo.row_indices.push_back(indices_[static_cast<size_t>(i)]);
      coo.col_indices.push_back(static_cast<int32_t>(r));
      coo.values.push_back(values_[static_cast<size_t>(i)]);
    }
  }
  return FromCoo(coo);
}

void CsrMatrix::RowNormalize() {
  for (int64_t r = 0; r < rows_; ++r) {
    float sum = 0.0f;
    for (int64_t i = indptr_[static_cast<size_t>(r)];
         i < indptr_[static_cast<size_t>(r) + 1]; ++i) {
      sum += values_[static_cast<size_t>(i)];
    }
    if (sum == 0.0f) continue;
    for (int64_t i = indptr_[static_cast<size_t>(r)];
         i < indptr_[static_cast<size_t>(r) + 1]; ++i) {
      values_[static_cast<size_t>(i)] /= sum;
    }
  }
}

void CsrMatrix::SymNormalize() {
  std::vector<float> row_sum(static_cast<size_t>(rows_), 0.0f);
  std::vector<float> col_sum(static_cast<size_t>(cols_), 0.0f);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = indptr_[static_cast<size_t>(r)];
         i < indptr_[static_cast<size_t>(r) + 1]; ++i) {
      float v = std::fabs(values_[static_cast<size_t>(i)]);
      row_sum[static_cast<size_t>(r)] += v;
      col_sum[static_cast<size_t>(indices_[static_cast<size_t>(i)])] += v;
    }
  }
  for (int64_t r = 0; r < rows_; ++r) {
    float rs = row_sum[static_cast<size_t>(r)];
    float rinv = rs > 0.0f ? 1.0f / std::sqrt(rs) : 0.0f;
    for (int64_t i = indptr_[static_cast<size_t>(r)];
         i < indptr_[static_cast<size_t>(r) + 1]; ++i) {
      float cs = col_sum[static_cast<size_t>(indices_[static_cast<size_t>(i)])];
      float cinv = cs > 0.0f ? 1.0f / std::sqrt(cs) : 0.0f;
      values_[static_cast<size_t>(i)] *= rinv * cinv;
    }
  }
}

CsrMatrix CsrMatrix::Multiply(const CsrMatrix& other,
                              int64_t max_nnz_per_row) const {
  DGNN_CHECK_EQ(cols_, other.rows_);
  CooMatrix out;
  out.rows = rows_;
  out.cols = other.cols_;
  // Gustavson's algorithm with a dense accumulator per row.
  std::vector<float> acc(static_cast<size_t>(other.cols_), 0.0f);
  std::vector<int32_t> touched;
  for (int64_t r = 0; r < rows_; ++r) {
    touched.clear();
    for (int64_t i = indptr_[static_cast<size_t>(r)];
         i < indptr_[static_cast<size_t>(r) + 1]; ++i) {
      int32_t k = indices_[static_cast<size_t>(i)];
      float va = values_[static_cast<size_t>(i)];
      for (int64_t j = other.indptr_[static_cast<size_t>(k)];
           j < other.indptr_[static_cast<size_t>(k) + 1]; ++j) {
        int32_t c = other.indices_[static_cast<size_t>(j)];
        if (acc[static_cast<size_t>(c)] == 0.0f) touched.push_back(c);
        acc[static_cast<size_t>(c)] += va * other.values_[static_cast<size_t>(j)];
      }
    }
    if (max_nnz_per_row > 0 &&
        static_cast<int64_t>(touched.size()) > max_nnz_per_row) {
      std::partial_sort(
          touched.begin(), touched.begin() + max_nnz_per_row, touched.end(),
          [&](int32_t a, int32_t b) {
            return acc[static_cast<size_t>(a)] > acc[static_cast<size_t>(b)];
          });
      for (size_t i = static_cast<size_t>(max_nnz_per_row); i < touched.size();
           ++i) {
        acc[static_cast<size_t>(touched[i])] = 0.0f;
      }
      touched.resize(static_cast<size_t>(max_nnz_per_row));
    }
    for (int32_t c : touched) {
      float v = acc[static_cast<size_t>(c)];
      if (v != 0.0f) out.Add(static_cast<int32_t>(r), c, v);
      acc[static_cast<size_t>(c)] = 0.0f;
    }
  }
  return FromCoo(out);
}

void CsrMatrix::RemoveDiagonal() {
  std::vector<int64_t> new_indptr(indptr_.size(), 0);
  std::vector<int32_t> new_indices;
  std::vector<float> new_values;
  new_indices.reserve(indices_.size());
  new_values.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = indptr_[static_cast<size_t>(r)];
         i < indptr_[static_cast<size_t>(r) + 1]; ++i) {
      if (indices_[static_cast<size_t>(i)] == r) continue;
      new_indices.push_back(indices_[static_cast<size_t>(i)]);
      new_values.push_back(values_[static_cast<size_t>(i)]);
    }
    new_indptr[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(new_indices.size());
  }
  indptr_ = std::move(new_indptr);
  indices_ = std::move(new_indices);
  values_ = std::move(new_values);
}

void CsrMatrix::Multiply(const float* x, int64_t d, float* y) const {
  // Edge-level work counter for the telemetry payloads: ag.spmm times the
  // calls, this counts the multiply-adds actually performed.
  if (telemetry::Enabled()) {
    static telemetry::Counter* edges =
        telemetry::GetCounter("graph.spmm_edges_processed");
    edges->Add(nnz());
  }
  // Dispatched row-blocked kernel (src/kernels/): each fixed-grain chunk
  // owns a contiguous row range of y, and every output row is accumulated
  // by exactly one thread in CSR edge order, so deterministic-mode results
  // are bit-identical to the serial scalar kernel on every ISA.
  kernels::Spmm(indptr_.data(), indices_.data(), values_.data(), rows_, x, d,
                y);
}

}  // namespace dgnn::graph
