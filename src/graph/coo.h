// Coordinate-format sparse matrix: an edge list with optional values.
// Used as the construction format; convert to CsrMatrix for compute.

#ifndef DGNN_GRAPH_COO_H_
#define DGNN_GRAPH_COO_H_

#include <cstdint>
#include <vector>

namespace dgnn::graph {

struct CooMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int32_t> row_indices;
  std::vector<int32_t> col_indices;
  // Empty means "all ones".
  std::vector<float> values;

  int64_t nnz() const { return static_cast<int64_t>(row_indices.size()); }

  void Add(int32_t r, int32_t c, float v = 1.0f) {
    row_indices.push_back(r);
    col_indices.push_back(c);
    if (!values.empty() || v != 1.0f) {
      if (values.empty()) values.assign(row_indices.size() - 1, 1.0f);
      values.push_back(v);
    }
  }
};

}  // namespace dgnn::graph

#endif  // DGNN_GRAPH_COO_H_
