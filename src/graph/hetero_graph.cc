#include "graph/hetero_graph.h"

#include "util/check.h"

namespace dgnn::graph {

HeteroGraph::HeteroGraph(const data::Dataset& dataset)
    : num_users_(dataset.num_users),
      num_items_(dataset.num_items),
      num_relations_(dataset.num_relations) {
  CooMatrix ui;
  ui.rows = num_users_;
  ui.cols = num_items_;
  for (const auto& it : dataset.train) ui.Add(it.user, it.item);
  user_item_ = CsrMatrix::FromCoo(ui);
  item_user_ = user_item_.Transposed();

  CooMatrix s;
  s.rows = num_users_;
  s.cols = num_users_;
  for (const auto& [u, v] : dataset.social) {
    s.Add(u, v);
    s.Add(v, u);
  }
  social_ = CsrMatrix::FromCoo(s);

  CooMatrix t;
  t.rows = num_items_;
  t.cols = num_relations_;
  for (const auto& [i, r] : dataset.item_relations) t.Add(i, r);
  item_rel_ = CsrMatrix::FromCoo(t);
  rel_item_ = item_rel_.Transposed();
}

CsrMatrix HeteroGraph::RowNormalized(const CsrMatrix& a) {
  CsrMatrix out = a;
  out.RowNormalize();
  return out;
}

void HeteroGraph::JointRowNormalize(CsrMatrix& a, CsrMatrix& b) {
  DGNN_CHECK_EQ(a.rows(), b.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float deg = static_cast<float>(a.RowDegree(r) + b.RowDegree(r));
    if (deg == 0.0f) continue;
    const float inv = 1.0f / deg;
    for (int64_t i = a.indptr()[static_cast<size_t>(r)];
         i < a.indptr()[static_cast<size_t>(r) + 1]; ++i) {
      a.mutable_values()[static_cast<size_t>(i)] *= inv;
    }
    for (int64_t i = b.indptr()[static_cast<size_t>(r)];
         i < b.indptr()[static_cast<size_t>(r) + 1]; ++i) {
      b.mutable_values()[static_cast<size_t>(i)] *= inv;
    }
  }
}

CsrMatrix HeteroGraph::SocialRecalibration() const {
  CooMatrix coo;
  coo.rows = num_users_;
  coo.cols = num_users_;
  for (int64_t u = 0; u < num_users_; ++u) {
    coo.Add(static_cast<int32_t>(u), static_cast<int32_t>(u));
    for (int64_t i = social_.indptr()[static_cast<size_t>(u)];
         i < social_.indptr()[static_cast<size_t>(u) + 1]; ++i) {
      coo.Add(static_cast<int32_t>(u),
              social_.indices()[static_cast<size_t>(i)]);
    }
  }
  CsrMatrix out = CsrMatrix::FromCoo(coo);
  out.RowNormalize();
  return out;
}

CsrMatrix HeteroGraph::BipartiteNormalized() const {
  CooMatrix coo;
  coo.rows = num_users_ + num_items_;
  coo.cols = num_users_ + num_items_;
  for (int64_t u = 0; u < num_users_; ++u) {
    for (int64_t i = user_item_.indptr()[static_cast<size_t>(u)];
         i < user_item_.indptr()[static_cast<size_t>(u) + 1]; ++i) {
      const int32_t item = user_item_.indices()[static_cast<size_t>(i)];
      coo.Add(static_cast<int32_t>(u), num_users_ + item);
      coo.Add(num_users_ + item, static_cast<int32_t>(u));
    }
  }
  CsrMatrix out = CsrMatrix::FromCoo(coo);
  out.SymNormalize();
  return out;
}

CsrMatrix HeteroGraph::UnifiedNormalized(bool include_social,
                                         bool include_relations) const {
  CooMatrix coo;
  const int32_t n = num_users_ + num_items_ + num_relations_;
  coo.rows = n;
  coo.cols = n;
  auto add_sym = [&](int32_t a, int32_t b) {
    coo.Add(a, b);
    coo.Add(b, a);
  };
  for (int64_t u = 0; u < num_users_; ++u) {
    for (int64_t i = user_item_.indptr()[static_cast<size_t>(u)];
         i < user_item_.indptr()[static_cast<size_t>(u) + 1]; ++i) {
      add_sym(static_cast<int32_t>(u),
              num_users_ + user_item_.indices()[static_cast<size_t>(i)]);
    }
  }
  if (include_social) {
    for (int64_t u = 0; u < num_users_; ++u) {
      for (int64_t i = social_.indptr()[static_cast<size_t>(u)];
           i < social_.indptr()[static_cast<size_t>(u) + 1]; ++i) {
        // social_ is already symmetric; add each stored arc once.
        coo.Add(static_cast<int32_t>(u),
                social_.indices()[static_cast<size_t>(i)]);
      }
    }
  }
  if (include_relations) {
    for (int64_t it = 0; it < num_items_; ++it) {
      for (int64_t i = item_rel_.indptr()[static_cast<size_t>(it)];
           i < item_rel_.indptr()[static_cast<size_t>(it) + 1]; ++i) {
        add_sym(num_users_ + static_cast<int32_t>(it),
                num_users_ + num_items_ +
                    item_rel_.indices()[static_cast<size_t>(i)]);
      }
    }
  }
  CsrMatrix out = CsrMatrix::FromCoo(coo);
  out.SymNormalize();
  return out;
}

CsrMatrix HeteroGraph::MetaPathUIU(int64_t cap) const {
  CsrMatrix m = user_item_.Multiply(item_user_, cap);
  m.RemoveDiagonal();
  m.RowNormalize();
  return m;
}

CsrMatrix HeteroGraph::MetaPathIUI(int64_t cap) const {
  CsrMatrix m = item_user_.Multiply(user_item_, cap);
  m.RemoveDiagonal();
  m.RowNormalize();
  return m;
}

CsrMatrix HeteroGraph::MetaPathIRI(int64_t cap) const {
  CsrMatrix m = item_rel_.Multiply(rel_item_, cap);
  m.RemoveDiagonal();
  m.RowNormalize();
  return m;
}

EdgeList HeteroGraph::CsrToEdges(const CsrMatrix& a) {
  // Row r of the CSR is the *destination*; columns are sources.
  EdgeList edges;
  edges.src.reserve(static_cast<size_t>(a.nnz()));
  edges.dst.reserve(static_cast<size_t>(a.nnz()));
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t i = a.indptr()[static_cast<size_t>(r)];
         i < a.indptr()[static_cast<size_t>(r) + 1]; ++i) {
      edges.dst.push_back(static_cast<int32_t>(r));
      edges.src.push_back(a.indices()[static_cast<size_t>(i)]);
    }
  }
  return edges;
}

EdgeList HeteroGraph::ItemToUserEdges() const { return CsrToEdges(user_item_); }
EdgeList HeteroGraph::UserToItemEdges() const { return CsrToEdges(item_user_); }
EdgeList HeteroGraph::UserToUserEdges() const { return CsrToEdges(social_); }
EdgeList HeteroGraph::ItemToRelEdges() const { return CsrToEdges(rel_item_); }
EdgeList HeteroGraph::RelToItemEdges() const { return CsrToEdges(item_rel_); }

}  // namespace dgnn::graph
