// The collaborative heterogeneous graph G = (D, E) of Section IV-A:
// vertices are users, items and relation nodes; edges are the training
// interactions Y, social ties S and item-relation links T. Built once from
// a Dataset (training interactions only — the test set never enters the
// graph) and shared, by const reference, by every model.
//
// Models that need differentiable propagation own transposed/normalized
// CSR copies built from these views so the pointers handed to Tape::SpMM
// stay valid for the model's lifetime.

#ifndef DGNN_GRAPH_HETERO_GRAPH_H_
#define DGNN_GRAPH_HETERO_GRAPH_H_

#include <vector>

#include "data/dataset.h"
#include "graph/csr.h"

namespace dgnn::graph {

// Directed typed edges as parallel arrays; the format attention-based
// models (GraphRec, HGT, HAN, KGAT, DisenHAN) consume.
struct EdgeList {
  std::vector<int32_t> src;
  std::vector<int32_t> dst;

  int64_t size() const { return static_cast<int64_t>(src.size()); }
};

class HeteroGraph {
 public:
  explicit HeteroGraph(const data::Dataset& dataset);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int32_t num_relations() const { return num_relations_; }

  // Raw binary adjacency (values all 1).
  const CsrMatrix& user_item() const { return user_item_; }      // U x I
  const CsrMatrix& item_user() const { return item_user_; }      // I x U
  const CsrMatrix& social() const { return social_; }            // U x U, sym
  const CsrMatrix& item_rel() const { return item_rel_; }        // I x R
  const CsrMatrix& rel_item() const { return rel_item_; }        // R x I

  // --- derived views ------------------------------------------------------

  // Row-normalized copy of any CSR.
  static CsrMatrix RowNormalized(const CsrMatrix& a);

  // Scales rows of `a` and `b` (same row count) by 1 / (deg_a + deg_b):
  // the joint normalizer of Eqs. 4-5, where a node averages over the union
  // of its typed neighbor sets.
  static void JointRowNormalize(CsrMatrix& a, CsrMatrix& b);

  // (S + I) row-normalized — the social recalibration operator tau of
  // Eq. 9 (mean over the user's social neighbors and itself).
  CsrMatrix SocialRecalibration() const;

  // Symmetrically normalized bipartite propagation matrix over the stacked
  // [users; items] index space — the standard LightGCN/NGCF operator.
  CsrMatrix BipartiteNormalized() const;

  // Symmetrically normalized adjacency over the stacked [users; items;
  // relation nodes] index space, optionally including the social and
  // item-relation edge sets. This is the "enhanced" interaction graph the
  // paper gives the graph-CF baselines (NGCF, GCCF) for fair comparison.
  CsrMatrix UnifiedNormalized(bool include_social,
                              bool include_relations) const;

  // Meta-path adjacencies (HAN / HERec). Row-normalized, diagonal removed,
  // capped at `cap` strongest entries per row to bound density.
  CsrMatrix MetaPathUIU(int64_t cap = 32) const;  // U-I-U co-interaction
  CsrMatrix MetaPathIUI(int64_t cap = 32) const;  // I-U-I co-consumption
  CsrMatrix MetaPathIRI(int64_t cap = 32) const;  // I-R-I shared category

  // Directed edge lists per type. Naming: <SrcType>To<DstType>; messages
  // flow src -> dst.
  EdgeList ItemToUserEdges() const;  // interaction, item side -> user
  EdgeList UserToItemEdges() const;
  EdgeList UserToUserEdges() const;  // social, both directions
  EdgeList ItemToRelEdges() const;
  EdgeList RelToItemEdges() const;

  // Edge list of any CSR (rows are destinations, columns sources) — used
  // to turn meta-path adjacency into attention edges (HAN).
  static EdgeList CsrToEdges(const CsrMatrix& a);

 private:
  int32_t num_users_;
  int32_t num_items_;
  int32_t num_relations_;
  CsrMatrix user_item_;
  CsrMatrix item_user_;
  CsrMatrix social_;
  CsrMatrix item_rel_;
  CsrMatrix rel_item_;
};

}  // namespace dgnn::graph

#endif  // DGNN_GRAPH_HETERO_GRAPH_H_
