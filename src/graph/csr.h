// Compressed sparse row matrix — the compute format for all graph
// propagation in the library. Values are fixed at construction time (edge
// weights / normalization coefficients); gradients never flow into them.

#ifndef DGNN_GRAPH_CSR_H_
#define DGNN_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/coo.h"

namespace dgnn::graph {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds from COO; duplicate (r, c) entries have their values summed.
  static CsrMatrix FromCoo(const CooMatrix& coo);

  // Identity of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(indices_.size()); }

  const std::vector<int64_t>& indptr() const { return indptr_; }
  const std::vector<int32_t>& indices() const { return indices_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  int64_t RowDegree(int64_t r) const { return indptr_[r + 1] - indptr_[r]; }

  CsrMatrix Transposed() const;

  // Scales every stored value so each row sums to 1 (empty rows stay zero).
  void RowNormalize();

  // Symmetric normalization D^-1/2 A D^-1/2 computed from row/col sums of
  // absolute values; standard GCN normalizer.
  void SymNormalize();

  // C = this * other, both sparse. Used to precompute meta-path adjacency
  // (e.g. U-I-U) for HAN/HERec. `max_nnz_per_row`, if > 0, keeps only the
  // largest entries per row to bound density.
  CsrMatrix Multiply(const CsrMatrix& other, int64_t max_nnz_per_row = 0) const;

  // Drops diagonal entries (self-loops).
  void RemoveDiagonal();

  // y = A * x for dense row-major x (n_cols x d), writing into y
  // (n_rows x d). Caller guarantees sizes. The kernel the autograd SpMM op
  // calls; also used directly by non-differentiable propagation.
  void Multiply(const float* x, int64_t d, float* y) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> indptr_;    // size rows_ + 1
  std::vector<int32_t> indices_;   // column ids
  std::vector<float> values_;
};

}  // namespace dgnn::graph

#endif  // DGNN_GRAPH_CSR_H_
