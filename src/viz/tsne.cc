#include "viz/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace dgnn::viz {
namespace {

// Binary-searches the Gaussian bandwidth of row i so the conditional
// distribution's perplexity matches the target; writes p_{j|i}.
void ComputeRowAffinities(const std::vector<double>& sq_dist_row, size_t i,
                          double perplexity, std::vector<double>& p_row) {
  const size_t n = sq_dist_row.size();
  const double target_entropy = std::log(perplexity);
  double beta = 1.0;
  double beta_lo = 0.0;
  double beta_hi = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 60; ++iter) {
    double sum = 0.0;
    double dot = 0.0;  // sum p * d^2 (unnormalized)
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        p_row[j] = 0.0;
        continue;
      }
      const double p = std::exp(-beta * sq_dist_row[j]);
      p_row[j] = p;
      sum += p;
      dot += p * sq_dist_row[j];
    }
    if (sum <= 1e-300) {
      beta /= 2.0;
      continue;
    }
    // Entropy of the normalized distribution.
    const double entropy = std::log(sum) + beta * dot / sum;
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_lo = beta;
      beta = std::isinf(beta_hi) ? beta * 2.0 : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = beta_lo > 0.0 ? (beta + beta_lo) / 2.0 : beta / 2.0;
    }
  }
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) sum += p_row[j];
  if (sum > 0) {
    for (size_t j = 0; j < n; ++j) p_row[j] /= sum;
  }
}

}  // namespace

ag::Tensor Tsne(const ag::Tensor& points, const TsneConfig& config) {
  const int64_t n = points.rows();
  const int64_t d = points.cols();
  const int64_t out_d = config.output_dim;
  DGNN_CHECK_GT(n, 1);
  DGNN_CHECK_GT(out_d, 0);

  const size_t un = static_cast<size_t>(n);
  // Pairwise squared distances in the input space.
  std::vector<std::vector<double>> sq_dist(un, std::vector<double>(un, 0.0));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      const float* a = points.row(i);
      const float* b = points.row(j);
      for (int64_t c = 0; c < d; ++c) {
        const double diff = static_cast<double>(a[c]) - b[c];
        s += diff * diff;
      }
      sq_dist[static_cast<size_t>(i)][static_cast<size_t>(j)] = s;
      sq_dist[static_cast<size_t>(j)][static_cast<size_t>(i)] = s;
    }
  }

  // Symmetrized joint affinities P.
  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);
  std::vector<std::vector<double>> p(un, std::vector<double>(un, 0.0));
  {
    std::vector<double> row(un);
    for (size_t i = 0; i < un; ++i) {
      ComputeRowAffinities(sq_dist[i], i, perplexity, row);
      for (size_t j = 0; j < un; ++j) p[i][j] = row[j];
    }
  }
  for (size_t i = 0; i < un; ++i) {
    for (size_t j = i + 1; j < un; ++j) {
      const double v =
          std::max((p[i][j] + p[j][i]) / (2.0 * static_cast<double>(n)),
                   1e-12);
      p[i][j] = v;
      p[j][i] = v;
    }
    p[i][i] = 1e-12;
  }

  // Gradient descent on the output layout.
  util::Rng rng(config.seed);
  std::vector<std::vector<double>> y(un, std::vector<double>(
                                            static_cast<size_t>(out_d)));
  for (auto& row : y) {
    for (auto& v : row) v = rng.Gaussian(0.0, 1e-2);
  }
  std::vector<std::vector<double>> velocity(
      un, std::vector<double>(static_cast<size_t>(out_d), 0.0));
  std::vector<std::vector<double>> q(un, std::vector<double>(un, 0.0));

  const int exaggeration_end = config.iterations / 4;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_end ? config.exaggeration : 1.0;
    // Student-t affinities Q (unnormalized), then normalizer.
    double q_sum = 0.0;
    for (size_t i = 0; i < un; ++i) {
      for (size_t j = i + 1; j < un; ++j) {
        double s = 0.0;
        for (size_t c = 0; c < static_cast<size_t>(out_d); ++c) {
          const double diff = y[i][c] - y[j][c];
          s += diff * diff;
        }
        const double v = 1.0 / (1.0 + s);
        q[i][j] = v;
        q[j][i] = v;
        q_sum += 2.0 * v;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    for (size_t i = 0; i < un; ++i) {
      std::vector<double> grad(static_cast<size_t>(out_d), 0.0);
      for (size_t j = 0; j < un; ++j) {
        if (j == i) continue;
        const double coeff =
            4.0 * (exaggeration * p[i][j] - q[i][j] / q_sum) * q[i][j];
        for (size_t c = 0; c < static_cast<size_t>(out_d); ++c) {
          grad[c] += coeff * (y[i][c] - y[j][c]);
        }
      }
      for (size_t c = 0; c < static_cast<size_t>(out_d); ++c) {
        velocity[i][c] = config.momentum * velocity[i][c] -
                         config.learning_rate * grad[c];
        y[i][c] += velocity[i][c];
      }
    }
  }

  ag::Tensor out(n, out_d);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < out_d; ++c) {
      out.at(i, c) = static_cast<float>(y[static_cast<size_t>(i)]
                                         [static_cast<size_t>(c)]);
    }
  }
  return out;
}

}  // namespace dgnn::viz
