// Quantitative stand-ins for "better node separation" in the Fig. 9/10
// case studies: instead of eyeballing scatter plots, the benches report
// these scores for each model's embedding.

#ifndef DGNN_VIZ_CLUSTER_METRICS_H_
#define DGNN_VIZ_CLUSTER_METRICS_H_

#include <vector>

#include "ag/tensor.h"

namespace dgnn::viz {

// Mean intra-label distance divided by mean inter-label distance over all
// point pairs; lower is better separation. Labels partition the rows of
// `points`.
double IntraInterDistanceRatio(const ag::Tensor& points,
                               const std::vector<int32_t>& labels);

// Fraction of each point's k nearest neighbors (Euclidean) sharing its
// label, averaged over points; higher is better separation.
double NeighborPurity(const ag::Tensor& points,
                      const std::vector<int32_t>& labels, int k);

// Mean cosine similarity between the rows of `vectors` over the given
// pairs. Used by the Fig. 10 study: socially-tied user pairs should have
// similar user-user memory-gate vectors.
double MeanPairCosine(const ag::Tensor& vectors,
                      const std::vector<std::pair<int32_t, int32_t>>& pairs);

// Subtracts each column's mean. Applied to gate matrices before cosine
// comparison (a Pearson-style centering): raw memory gates share a large
// bias component that makes every pair look similar; similarities of the
// centered vectors reflect relative gate *patterns*.
ag::Tensor CenterColumns(const ag::Tensor& m);

// Mean cosine similarity over `num_samples` random row pairs — the
// baseline MeanPairCosine is compared against.
double MeanRandomPairCosine(const ag::Tensor& vectors, int num_samples,
                            uint64_t seed);

}  // namespace dgnn::viz

#endif  // DGNN_VIZ_CLUSTER_METRICS_H_
