#include "viz/cluster_metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace dgnn::viz {
namespace {

double SquaredDistance(const ag::Tensor& points, int64_t i, int64_t j) {
  const float* a = points.row(i);
  const float* b = points.row(j);
  double s = 0.0;
  for (int64_t c = 0; c < points.cols(); ++c) {
    const double diff = static_cast<double>(a[c]) - b[c];
    s += diff * diff;
  }
  return s;
}

double Cosine(const float* a, const float* b, int64_t d) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (int64_t c = 0; c < d; ++c) {
    dot += static_cast<double>(a[c]) * b[c];
    na += static_cast<double>(a[c]) * a[c];
    nb += static_cast<double>(b[c]) * b[c];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 1e-12 ? dot / denom : 0.0;
}

}  // namespace

double IntraInterDistanceRatio(const ag::Tensor& points,
                               const std::vector<int32_t>& labels) {
  DGNN_CHECK_EQ(static_cast<int64_t>(labels.size()), points.rows());
  double intra_sum = 0.0;
  int64_t intra_n = 0;
  double inter_sum = 0.0;
  int64_t inter_n = 0;
  for (int64_t i = 0; i < points.rows(); ++i) {
    for (int64_t j = i + 1; j < points.rows(); ++j) {
      const double dist = std::sqrt(SquaredDistance(points, i, j));
      if (labels[static_cast<size_t>(i)] == labels[static_cast<size_t>(j)]) {
        intra_sum += dist;
        ++intra_n;
      } else {
        inter_sum += dist;
        ++inter_n;
      }
    }
  }
  if (intra_n == 0 || inter_n == 0) return 1.0;
  const double intra = intra_sum / static_cast<double>(intra_n);
  const double inter = inter_sum / static_cast<double>(inter_n);
  return inter > 1e-12 ? intra / inter : 1.0;
}

double NeighborPurity(const ag::Tensor& points,
                      const std::vector<int32_t>& labels, int k) {
  DGNN_CHECK_EQ(static_cast<int64_t>(labels.size()), points.rows());
  const int64_t n = points.rows();
  DGNN_CHECK_GT(n, k);
  double purity_sum = 0.0;
  std::vector<std::pair<double, int64_t>> dists;
  for (int64_t i = 0; i < n; ++i) {
    dists.clear();
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.emplace_back(SquaredDistance(points, i, j), j);
    }
    std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
    int same = 0;
    for (int t = 0; t < k; ++t) {
      if (labels[static_cast<size_t>(dists[static_cast<size_t>(t)].second)] ==
          labels[static_cast<size_t>(i)]) {
        ++same;
      }
    }
    purity_sum += static_cast<double>(same) / k;
  }
  return purity_sum / static_cast<double>(n);
}

double MeanPairCosine(const ag::Tensor& vectors,
                      const std::vector<std::pair<int32_t, int32_t>>& pairs) {
  if (pairs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [a, b] : pairs) {
    sum += Cosine(vectors.row(a), vectors.row(b), vectors.cols());
  }
  return sum / static_cast<double>(pairs.size());
}

ag::Tensor CenterColumns(const ag::Tensor& m) {
  ag::Tensor out = m;
  for (int64_t c = 0; c < m.cols(); ++c) {
    double mean = 0.0;
    for (int64_t r = 0; r < m.rows(); ++r) mean += m.at(r, c);
    mean /= static_cast<double>(m.rows() > 0 ? m.rows() : 1);
    for (int64_t r = 0; r < m.rows(); ++r) {
      out.at(r, c) = static_cast<float>(m.at(r, c) - mean);
    }
  }
  return out;
}

double MeanRandomPairCosine(const ag::Tensor& vectors, int num_samples,
                            uint64_t seed) {
  DGNN_CHECK_GT(vectors.rows(), 1);
  util::Rng rng(seed);
  double sum = 0.0;
  for (int s = 0; s < num_samples; ++s) {
    const int64_t a = rng.UniformInt(vectors.rows());
    int64_t b = rng.UniformInt(vectors.rows());
    while (b == a) b = rng.UniformInt(vectors.rows());
    sum += Cosine(vectors.row(a), vectors.row(b), vectors.cols());
  }
  return num_samples > 0 ? sum / num_samples : 0.0;
}

}  // namespace dgnn::viz
