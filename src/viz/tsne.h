// Exact (O(n^2)) t-SNE for the Fig. 9 embedding visualization. The case
// study projects a few hundred sampled users/items, where the exact
// gradient is fast and avoids Barnes-Hut approximation error.

#ifndef DGNN_VIZ_TSNE_H_
#define DGNN_VIZ_TSNE_H_

#include "ag/tensor.h"
#include "util/rng.h"

namespace dgnn::viz {

struct TsneConfig {
  int output_dim = 2;
  double perplexity = 20.0;
  int iterations = 350;
  double learning_rate = 10.0;
  double momentum = 0.5;
  // Early exaggeration factor applied for the first quarter of the run.
  // With this implementation's plain momentum descent (no per-parameter
  // gains), exaggeration > ~2 combined with large learning rates diverges;
  // the default disables it.
  double exaggeration = 1.0;
  uint64_t seed = 1;
};

// Embeds the rows of `points` (n x d) into `config.output_dim` dimensions.
ag::Tensor Tsne(const ag::Tensor& points, const TsneConfig& config);

}  // namespace dgnn::viz

#endif  // DGNN_VIZ_TSNE_H_
