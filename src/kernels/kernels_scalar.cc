// Scalar reference kernels — the semantics every SIMD variant is tested
// against. Deterministic mode IS this code; the parity suite asserts
// the SIMD tables reproduce it bit for bit.

#include <cstring>

#include "kernels/kernels.h"

namespace dgnn::kernels {
namespace {

// out += op(A) @ op(B) over output rows [rb, re).
//
// Accumulation-order contract (what "bit-identical" means everywhere
// else in this library):
//  * nn/tn (B-rows streamed): out[i][j] accumulates one rounded
//    av * b[p][j] product per p, in ascending p order, directly into
//    the existing out value.
//  * nt/tt (inner-product shaped): a fresh acc starts at 0, sums the
//    rounded products in ascending p order, and is added to out[i][j]
//    with a single final add.
//
// The deterministic path never skips zero multipliers: 0 * NaN and
// 0 * Inf must produce NaN so --check-numerics sees anomalies no matter
// which GEMM path a gradient took. Fast mode restores the sparse skip
// (dropout-style zeros in A) as an explicit accuracy/throughput trade.
void GemmRows(const GemmView& g, int64_t rb, int64_t re, bool det) {
  if (!g.ta && !g.tb) {
    for (int64_t i = rb; i < re; ++i) {
      const float* arow = g.a + i * g.lda;
      float* orow = g.out + i * g.n;
      for (int64_t p = 0; p < g.k; ++p) {
        const float av = arow[p];
        if (!det && av == 0.0f) continue;
        const float* brow = g.b + p * g.ldb;
        for (int64_t j = 0; j < g.n; ++j) orow[j] += av * brow[j];
      }
    }
    return;
  }
  if (g.ta && !g.tb) {
    for (int64_t i = rb; i < re; ++i) {
      float* orow = g.out + i * g.n;
      for (int64_t j = 0; j < g.n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < g.k; ++p) {
          acc += g.a[p * g.lda + i] * g.b[p * g.ldb + j];
        }
        orow[j] += acc;
      }
    }
    return;
  }
  if (!g.ta && g.tb) {
    for (int64_t i = rb; i < re; ++i) {
      const float* arow = g.a + i * g.lda;
      float* orow = g.out + i * g.n;
      for (int64_t j = 0; j < g.n; ++j) {
        const float* brow = g.b + j * g.ldb;
        float acc = 0.0f;
        for (int64_t p = 0; p < g.k; ++p) acc += arow[p] * brow[p];
        orow[j] += acc;
      }
    }
    return;
  }
  // ta && tb
  for (int64_t i = rb; i < re; ++i) {
    float* orow = g.out + i * g.n;
    for (int64_t j = 0; j < g.n; ++j) {
      const float* brow = g.b + j * g.ldb;
      float acc = 0.0f;
      for (int64_t p = 0; p < g.k; ++p) acc += g.a[p * g.lda + i] * brow[p];
      orow[j] += acc;
    }
  }
}

void SpmmRows(const SpmmView& s, int64_t rb, int64_t re, bool /*det*/) {
  std::memset(s.y + rb * s.d, 0,
              sizeof(float) * static_cast<size_t>((re - rb) * s.d));
  for (int64_t r = rb; r < re; ++r) {
    float* yr = s.y + r * s.d;
    for (int64_t i = s.indptr[r]; i < s.indptr[r + 1]; ++i) {
      const float v = s.values[i];
      const float* xr = s.x + static_cast<int64_t>(s.indices[i]) * s.d;
      for (int64_t c = 0; c < s.d; ++c) yr[c] += v * xr[c];
    }
  }
}

void AddIntoImpl(float* y, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

void AxpyIntoImpl(float* y, float a, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void ScaleIntoImpl(float* y, float a, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= a;
}

void MulIntoImpl(float* y, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= x[i];
}

void MulAddIntoImpl(float* y, const float* g, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += g[i] * x[i];
}

void LeakyReluFwdImpl(float* y, int64_t n, float slope) {
  for (int64_t i = 0; i < n; ++i) {
    if (y[i] < 0.0f) y[i] *= slope;
  }
}

void LeakyReluBwdImpl(float* gx, const float* g, const float* x, int64_t n,
                      float slope) {
  for (int64_t i = 0; i < n; ++i) {
    gx[i] += g[i] * (x[i] >= 0.0f ? 1.0f : slope);
  }
}

float DotImpl(const float* a, const float* b, int64_t n, bool /*det*/) {
  // The serial index-order sum is the reference in both modes; only
  // SIMD tables relax it under fast mode.
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float DotQ8Impl(const float* a, const int8_t* q, int64_t n, bool /*det*/) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * static_cast<float>(q[i]);
  return acc;
}

float DotF16Impl(const float* a, const uint16_t* h, int64_t n,
                 bool /*det*/) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * Fp16ToFp32(h[i]);
  return acc;
}

}  // namespace

void ScalarGemmRows(const GemmView& g, int64_t rb, int64_t re, bool det) {
  GemmRows(g, rb, re, det);
}

float ScalarDot(const float* a, const float* b, int64_t n, bool det) {
  return DotImpl(a, b, n, det);
}

float ScalarDotQ8(const float* a, const int8_t* q, int64_t n, bool det) {
  return DotQ8Impl(a, q, n, det);
}

float ScalarDotF16(const float* a, const uint16_t* h, int64_t n, bool det) {
  return DotF16Impl(a, h, n, det);
}

const KernelTable* ScalarKernelTable() {
  static const KernelTable table = {
      /*name=*/"scalar",
      /*isa=*/Isa::kScalar,
      /*gemm_rows=*/&GemmRows,
      /*spmm_rows=*/&SpmmRows,
      /*add_into=*/&AddIntoImpl,
      /*axpy_into=*/&AxpyIntoImpl,
      /*scale_into=*/&ScaleIntoImpl,
      /*mul_into=*/&MulIntoImpl,
      /*mul_add_into=*/&MulAddIntoImpl,
      /*leaky_relu_fwd=*/&LeakyReluFwdImpl,
      /*leaky_relu_bwd=*/&LeakyReluBwdImpl,
      /*dot=*/&DotImpl,
      /*dot_q8=*/&DotQ8Impl,
      /*dot_f16=*/&DotF16Impl,
  };
  return &table;
}

}  // namespace dgnn::kernels
