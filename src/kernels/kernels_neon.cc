// NEON kernel variant (aarch64). Compiled with -ffp-contract=off so the
// deterministic paths' explicit mul-then-add sequences stay two rounded
// operations; only the fast paths use vfmaq_f32 fused multiply-add.
//
// Mirrors kernels_avx2.cc: deterministic mode vectorizes only across
// independent output elements (nn/tn GEMM over j, SpMM over the feature
// dim, all elementwise ops) so results are bit-identical to the scalar
// reference; the inner-product GEMM paths (nt/tt) fall back to the
// scalar reference in deterministic mode and get FMA dots in fast mode.

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

#include <cstring>
#include <vector>

#include "kernels/kernels.h"

namespace dgnn::kernels {
namespace {

inline float Hsum(float32x4_t v) { return vaddvq_f32(v); }

// FMA dot with 4 independent accumulators — fast mode only.
inline float DotFma(const float* a, const float* b, int64_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f);
  float32x4_t acc3 = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float r = Hsum(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

// FMA int8 dot, fast mode only: widen 4 lanes per step via
// int8 -> int16 -> int32 -> fp32 (exact), 2 independent chains.
inline float DotQ8Fma(const float* a, const int8_t* q, int64_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t w = vmovl_s8(vld1_s8(q + i));
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i),
                     vcvtq_f32_s32(vmovl_s16(vget_low_s16(w))));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4),
                     vcvtq_f32_s32(vmovl_s16(vget_high_s16(w))));
  }
  float r = Hsum(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) r += a[i] * static_cast<float>(q[i]);
  return r;
}

// FMA fp16 dot, fast mode only. aarch64 guarantees the fp16 conversion
// instructions (vcvt_f32_f16), so no runtime gate is needed.
inline float DotF16Fma(const float* a, const uint16_t* h, int64_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float16x8_t w =
        vreinterpretq_f16_u16(vld1q_u16(h + i));
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i),
                     vcvt_f32_f16(vget_low_f16(w)));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4),
                     vcvt_f32_f16(vget_high_f16(w)));
  }
  float r = Hsum(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) r += a[i] * Fp16ToFp32(h[i]);
  return r;
}

template <bool kDet, bool kDirect>
inline void GemmRowsStreamB(const GemmView& g, int64_t rb, int64_t re) {
  for (int64_t i = rb; i < re; ++i) {
    float* orow = g.out + i * g.n;
    int64_t j = 0;
    for (; j + 4 <= g.n; j += 4) {
      float32x4_t acc = kDirect ? vld1q_f32(orow + j) : vdupq_n_f32(0.0f);
      for (int64_t p = 0; p < g.k; ++p) {
        const float av = g.ta ? g.a[p * g.lda + i] : g.a[i * g.lda + p];
        if (!kDet && av == 0.0f) continue;
        const float32x4_t bv = vld1q_f32(g.b + p * g.ldb + j);
        if (kDet) {
          acc = vaddq_f32(acc, vmulq_n_f32(bv, av));
        } else {
          acc = vfmaq_n_f32(acc, bv, av);
        }
      }
      if (kDirect) {
        vst1q_f32(orow + j, acc);
      } else {
        vst1q_f32(orow + j, vaddq_f32(vld1q_f32(orow + j), acc));
      }
    }
    for (; j < g.n; ++j) {
      float acc = kDirect ? orow[j] : 0.0f;
      for (int64_t p = 0; p < g.k; ++p) {
        const float av = g.ta ? g.a[p * g.lda + i] : g.a[i * g.lda + p];
        if (!kDet && av == 0.0f) continue;
        acc += av * g.b[p * g.ldb + j];
      }
      if (kDirect) {
        orow[j] = acc;
      } else {
        orow[j] += acc;
      }
    }
  }
}

void GemmRowsInnerFast(const GemmView& g, int64_t rb, int64_t re) {
  const float* a_panel = nullptr;
  int64_t a_stride = 0;
  std::vector<float> packed;
  if (!g.ta) {
    a_panel = g.a + rb * g.lda;
    a_stride = g.lda;
  } else {
    packed.resize(static_cast<size_t>((re - rb) * g.k));
    for (int64_t i = rb; i < re; ++i) {
      float* dst = packed.data() + (i - rb) * g.k;
      for (int64_t p = 0; p < g.k; ++p) dst[p] = g.a[p * g.lda + i];
    }
    a_panel = packed.data();
    a_stride = g.k;
  }
  constexpr int64_t kJTile = 64;
  for (int64_t jb = 0; jb < g.n; jb += kJTile) {
    const int64_t je = jb + kJTile < g.n ? jb + kJTile : g.n;
    for (int64_t i = rb; i < re; ++i) {
      const float* arow = a_panel + (i - rb) * a_stride;
      float* orow = g.out + i * g.n;
      for (int64_t j = jb; j < je; ++j) {
        orow[j] += DotFma(arow, g.b + j * g.ldb, g.k);
      }
    }
  }
}

void GemmRows(const GemmView& g, int64_t rb, int64_t re, bool det) {
  if (!g.tb) {
    if (det) {
      if (g.ta) {
        GemmRowsStreamB<true, false>(g, rb, re);
      } else {
        GemmRowsStreamB<true, true>(g, rb, re);
      }
    } else {
      if (g.ta) {
        GemmRowsStreamB<false, false>(g, rb, re);
      } else {
        GemmRowsStreamB<false, true>(g, rb, re);
      }
    }
    return;
  }
  if (det) {
    ScalarGemmRows(g, rb, re, det);
  } else {
    GemmRowsInnerFast(g, rb, re);
  }
}

void SpmmRows(const SpmmView& s, int64_t rb, int64_t re, bool det) {
  std::memset(s.y + rb * s.d, 0,
              sizeof(float) * static_cast<size_t>((re - rb) * s.d));
  const int64_t dv = s.d & ~int64_t{3};
  for (int64_t r = rb; r < re; ++r) {
    float* yr = s.y + r * s.d;
    for (int64_t i = s.indptr[r]; i < s.indptr[r + 1]; ++i) {
      const float v = s.values[i];
      const float* xr = s.x + static_cast<int64_t>(s.indices[i]) * s.d;
      int64_t c = 0;
      for (; c < dv; c += 4) {
        const float32x4_t y4 = vld1q_f32(yr + c);
        const float32x4_t x4 = vld1q_f32(xr + c);
        vst1q_f32(yr + c, det ? vaddq_f32(y4, vmulq_n_f32(x4, v))
                              : vfmaq_n_f32(y4, x4, v));
      }
      for (; c < s.d; ++c) yr[c] += v * xr[c];
    }
  }
}

void AddIntoImpl(float* y, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void AxpyIntoImpl(float* y, float a, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i),
                               vmulq_n_f32(vld1q_f32(x + i), a)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaleIntoImpl(float* y, float a, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmulq_n_f32(vld1q_f32(y + i), a));
  }
  for (; i < n; ++i) y[i] *= a;
}

void MulIntoImpl(float* y, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void MulAddIntoImpl(float* y, const float* g, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i,
              vaddq_f32(vld1q_f32(y + i),
                        vmulq_f32(vld1q_f32(g + i), vld1q_f32(x + i))));
  }
  for (; i < n; ++i) y[i] += g[i] * x[i];
}

void LeakyReluFwdImpl(float* y, int64_t n, float slope) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(y + i);
    // NaN compares false against 0, so NaN lanes keep their value —
    // same as the scalar `if (v < 0)` branch.
    const uint32x4_t neg = vcltq_f32(v, zero);
    vst1q_f32(y + i, vbslq_f32(neg, vmulq_n_f32(v, slope), v));
  }
  for (; i < n; ++i) {
    if (y[i] < 0.0f) y[i] *= slope;
  }
}

void LeakyReluBwdImpl(float* gx, const float* g, const float* x, int64_t n,
                      float slope) {
  const float32x4_t s4 = vdupq_n_f32(slope);
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t ge = vcgeq_f32(vld1q_f32(x + i), zero);
    const float32x4_t factor = vbslq_f32(ge, one, s4);
    vst1q_f32(gx + i, vaddq_f32(vld1q_f32(gx + i),
                                vmulq_f32(vld1q_f32(g + i), factor)));
  }
  for (; i < n; ++i) {
    gx[i] += g[i] * (x[i] >= 0.0f ? 1.0f : slope);
  }
}

float DotImpl(const float* a, const float* b, int64_t n, bool det) {
  if (det) return ScalarDot(a, b, n, det);
  return DotFma(a, b, n);
}

float DotQ8Impl(const float* a, const int8_t* q, int64_t n, bool det) {
  if (det) return ScalarDotQ8(a, q, n, det);
  return DotQ8Fma(a, q, n);
}

float DotF16Impl(const float* a, const uint16_t* h, int64_t n, bool det) {
  if (det) return ScalarDotF16(a, h, n, det);
  return DotF16Fma(a, h, n);
}

}  // namespace

const KernelTable* NeonKernelTable() {
  static const KernelTable table = {
      /*name=*/"neon",
      /*isa=*/Isa::kNeon,
      /*gemm_rows=*/&GemmRows,
      /*spmm_rows=*/&SpmmRows,
      /*add_into=*/&AddIntoImpl,
      /*axpy_into=*/&AxpyIntoImpl,
      /*scale_into=*/&ScaleIntoImpl,
      /*mul_into=*/&MulIntoImpl,
      /*mul_add_into=*/&MulAddIntoImpl,
      /*leaky_relu_fwd=*/&LeakyReluFwdImpl,
      /*leaky_relu_bwd=*/&LeakyReluBwdImpl,
      /*dot=*/&DotImpl,
      /*dot_q8=*/&DotQ8Impl,
      /*dot_f16=*/&DotF16Impl,
  };
  return &table;
}

}  // namespace dgnn::kernels

#endif  // __ARM_NEON
