// AVX2 + FMA kernel variant. Compiled with -mavx2 -mfma
// -ffp-contract=off (see src/kernels/CMakeLists.txt): contraction is
// disabled so the deterministic paths' explicit mul-then-add sequences
// are never silently fused into FMAs behind our back — only the fast
// paths use _mm256_fmadd_ps, on purpose.
//
// Determinism: the vector paths below only ever vectorize ACROSS output
// elements, never across a single element's accumulation chain, and use
// separately rounded multiply/add. Each lane therefore performs exactly
// the scalar reference's operation sequence, making deterministic-mode
// results bit-identical to kernels_scalar.cc. The inner-product GEMM
// paths (nt/tt) cannot be vectorized that way, so deterministic mode
// routes them to the scalar reference and fast mode gets cache-blocked
// FMA panels instead.

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstring>
#include <new>
#include <vector>

#include "kernels/kernels.h"

namespace dgnn::kernels {
namespace {

// Cache geometry for the blocked fast paths (ggml-cpu idiom: tile so a
// B panel stays L1-resident while it is reused across output rows).
#if defined(__cpp_lib_hardware_interference_size)
constexpr size_t kCacheLine = std::hardware_destructive_interference_size;
#else
constexpr size_t kCacheLine = 64;
#endif
constexpr int64_t kCacheLineF32 = static_cast<int64_t>(kCacheLine / 4);
// Rows of B per fast-path panel: kJTile * k floats <= ~16 KB for the
// k <= 64 shapes this library runs, i.e. comfortably L1-resident.
constexpr int64_t kJTile = 4 * kCacheLineF32;

inline float Hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

// FMA dot with 4 independent accumulators — fast mode only (the
// accumulation order is nothing like the serial sum).
inline float DotFma(const float* a, const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
  }
  float r = Hsum(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                               _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) r += a[i] * b[i];
  return r;
}

// 8 int8 values widened to an fp32 vector (sign-extend + convert).
inline __m256 LoadQ8AsF32(const int8_t* q) {
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
}

// FMA int8 dot, fast mode only: widen 8 lanes per step, 4 independent
// accumulator chains. The widening conversion is exact (int8 fits fp32),
// so fast/deterministic differ only by accumulation order — the same
// contract as the float Dot.
inline float DotQ8Fma(const float* a, const int8_t* q, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), LoadQ8AsF32(q + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           LoadQ8AsF32(q + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           LoadQ8AsF32(q + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           LoadQ8AsF32(q + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), LoadQ8AsF32(q + i),
                           acc0);
  }
  float r = Hsum(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                               _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) r += a[i] * static_cast<float>(q[i]);
  return r;
}

#if defined(__F16C__)
// FMA fp16 dot via the hardware converter. Only reached behind a runtime
// f16c check (the AVX2 table itself stays gated on avx2+fma alone).
inline float DotF16Fma(const float* a, const uint16_t* h, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i h0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i));
    const __m128i h1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i + 8));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_cvtph_ps(h0),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_cvtph_ps(h1),
                           acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m128i h0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_cvtph_ps(h0),
                           acc0);
  }
  float r = Hsum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) r += a[i] * Fp16ToFp32(h[i]);
  return r;
}
#endif  // __F16C__

// One register-blocked output-row tile of the B-rows-streamed GEMM:
// kVecs accumulator vectors (8 floats each) live in ymm registers
// across the entire p reduction, so the loop never round-trips the
// output row through memory (the store-to-load chain is what limits
// the naive form, especially with FMA's longer latency). Per output
// element the operation sequence is exactly the naive/scalar order —
// register residency does not reorder anything — so kDet stays
// bit-identical to the scalar reference.
template <bool kDet, bool kDirect, int kVecs>
inline void GemmRowTile(const GemmView& g, int64_t i, int64_t j0,
                        float* orow) {
  __m256 acc[kVecs];
  for (int t = 0; t < kVecs; ++t) {
    acc[t] = kDirect ? _mm256_loadu_ps(orow + j0 + 8 * t)
                     : _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < g.k; ++p) {
    const float av = g.ta ? g.a[p * g.lda + i] : g.a[i * g.lda + p];
    if (!kDet && av == 0.0f) continue;
    const __m256 av8 = _mm256_set1_ps(av);
    const float* brow = g.b + p * g.ldb + j0;
    for (int t = 0; t < kVecs; ++t) {
      const __m256 bv = _mm256_loadu_ps(brow + 8 * t);
      acc[t] = kDet ? _mm256_add_ps(acc[t], _mm256_mul_ps(av8, bv))
                    : _mm256_fmadd_ps(av8, bv, acc[t]);
    }
  }
  for (int t = 0; t < kVecs; ++t) {
    if (kDirect) {
      _mm256_storeu_ps(orow + j0 + 8 * t, acc[t]);
    } else {
      _mm256_storeu_ps(
          orow + j0 + 8 * t,
          _mm256_add_ps(_mm256_loadu_ps(orow + j0 + 8 * t), acc[t]));
    }
  }
}

// nn/tn: B-rows-streamed GEMM. kDirect distinguishes the nn ordering
// (accumulate straight into out) from the tn ordering (fresh acc, one
// final add). Output rows are processed in 32-float register tiles.
template <bool kDet, bool kDirect>
inline void GemmRowsStreamB(const GemmView& g, int64_t rb, int64_t re) {
  for (int64_t i = rb; i < re; ++i) {
    float* orow = g.out + i * g.n;
    int64_t j = 0;
    for (; j + 32 <= g.n; j += 32) {
      GemmRowTile<kDet, kDirect, 4>(g, i, j, orow);
    }
    for (; j + 8 <= g.n; j += 8) {
      GemmRowTile<kDet, kDirect, 1>(g, i, j, orow);
    }
    for (; j < g.n; ++j) {
      float acc = kDirect ? orow[j] : 0.0f;
      for (int64_t p = 0; p < g.k; ++p) {
        const float av = g.ta ? g.a[p * g.lda + i] : g.a[i * g.lda + p];
        if (!kDet && av == 0.0f) continue;
        acc += av * g.b[p * g.ldb + j];
      }
      if (kDirect) {
        orow[j] = acc;
      } else {
        orow[j] += acc;
      }
    }
  }
}

// nt/tt fast path: inner-product GEMM, cache-blocked so each B panel of
// kJTile rows is reused across every output row of the chunk while it
// is still L1-resident. For tt the strided A columns are packed once
// per chunk into a contiguous panel.
void GemmRowsInnerFast(const GemmView& g, int64_t rb, int64_t re) {
  const float* a_panel = nullptr;
  int64_t a_stride = 0;
  std::vector<float> packed;
  if (!g.ta) {
    a_panel = g.a + rb * g.lda;
    a_stride = g.lda;
  } else {
    packed.resize(static_cast<size_t>((re - rb) * g.k));
    for (int64_t i = rb; i < re; ++i) {
      float* dst = packed.data() + (i - rb) * g.k;
      for (int64_t p = 0; p < g.k; ++p) dst[p] = g.a[p * g.lda + i];
    }
    a_panel = packed.data();
    a_stride = g.k;
  }
  for (int64_t jb = 0; jb < g.n; jb += kJTile) {
    const int64_t je = jb + kJTile < g.n ? jb + kJTile : g.n;
    for (int64_t i = rb; i < re; ++i) {
      const float* arow = a_panel + (i - rb) * a_stride;
      float* orow = g.out + i * g.n;
      for (int64_t j = jb; j < je; ++j) {
        orow[j] += DotFma(arow, g.b + j * g.ldb, g.k);
      }
    }
  }
}

void GemmRows(const GemmView& g, int64_t rb, int64_t re, bool det) {
  if (!g.tb) {
    if (det) {
      if (g.ta) {
        GemmRowsStreamB<true, false>(g, rb, re);
      } else {
        GemmRowsStreamB<true, true>(g, rb, re);
      }
    } else {
      if (g.ta) {
        GemmRowsStreamB<false, false>(g, rb, re);
      } else {
        GemmRowsStreamB<false, true>(g, rb, re);
      }
    }
    return;
  }
  // Inner-product paths: vector lanes would have to span a single
  // element's accumulation chain, so deterministic mode keeps the
  // scalar reference order.
  if (det) {
    ScalarGemmRows(g, rb, re, det);
  } else {
    GemmRowsInnerFast(g, rb, re);
  }
}

// One register-blocked y-row tile of SpMM: kVecs accumulator vectors
// stay in registers across the whole edge scan, so per edge the work is
// one broadcast + kVecs load/fmadd pairs with no y round-trip. The
// per-element accumulation order is still exactly CSR edge order, so
// the deterministic flavor is bit-identical to the scalar reference
// (which also starts each element at 0 and adds edges in order).
template <bool kDet, int kVecs>
inline void SpmmRowTile(const SpmmView& s, int64_t ib, int64_t ie,
                        int64_t c0, float* yr) {
  __m256 acc[kVecs];
  for (int t = 0; t < kVecs; ++t) acc[t] = _mm256_setzero_ps();
  for (int64_t i = ib; i < ie; ++i) {
    const __m256 v8 = _mm256_set1_ps(s.values[i]);
    const float* xr =
        s.x + static_cast<int64_t>(s.indices[i]) * s.d + c0;
    for (int t = 0; t < kVecs; ++t) {
      const __m256 x8 = _mm256_loadu_ps(xr + 8 * t);
      acc[t] = kDet ? _mm256_add_ps(acc[t], _mm256_mul_ps(v8, x8))
                    : _mm256_fmadd_ps(v8, x8, acc[t]);
    }
  }
  for (int t = 0; t < kVecs; ++t) _mm256_storeu_ps(yr + c0 + 8 * t, acc[t]);
}

// Fast-mode small-width tile: with one or two accumulator vectors the
// edge loop is latency-bound on a single FMA chain, so split the edges
// across four independent chains and combine at the end. Reorders the
// accumulation (fast mode only).
template <int kVecs>
inline void SpmmRowTileFast4(const SpmmView& s, int64_t ib, int64_t ie,
                             int64_t c0, float* yr) {
  __m256 acc[kVecs][4];
  for (int t = 0; t < kVecs; ++t) {
    for (int e = 0; e < 4; ++e) acc[t][e] = _mm256_setzero_ps();
  }
  int64_t i = ib;
  for (; i + 4 <= ie; i += 4) {
    for (int e = 0; e < 4; ++e) {
      const __m256 v8 = _mm256_set1_ps(s.values[i + e]);
      const float* xr =
          s.x + static_cast<int64_t>(s.indices[i + e]) * s.d + c0;
      for (int t = 0; t < kVecs; ++t) {
        acc[t][e] =
            _mm256_fmadd_ps(v8, _mm256_loadu_ps(xr + 8 * t), acc[t][e]);
      }
    }
  }
  for (; i < ie; ++i) {
    const __m256 v8 = _mm256_set1_ps(s.values[i]);
    const float* xr =
        s.x + static_cast<int64_t>(s.indices[i]) * s.d + c0;
    for (int t = 0; t < kVecs; ++t) {
      acc[t][0] =
          _mm256_fmadd_ps(v8, _mm256_loadu_ps(xr + 8 * t), acc[t][0]);
    }
  }
  for (int t = 0; t < kVecs; ++t) {
    _mm256_storeu_ps(
        yr + c0 + 8 * t,
        _mm256_add_ps(_mm256_add_ps(acc[t][0], acc[t][1]),
                      _mm256_add_ps(acc[t][2], acc[t][3])));
  }
}

void SpmmRows(const SpmmView& s, int64_t rb, int64_t re, bool det) {
  for (int64_t r = rb; r < re; ++r) {
    float* yr = s.y + r * s.d;
    const int64_t ib = s.indptr[r];
    const int64_t ie = s.indptr[r + 1];
    // 32-float register tiles over the feature dimension; wide rows
    // re-scan the (L1-resident) edge slice once per tile.
    int64_t c = 0;
    while (c + 8 <= s.d) {
      const int64_t rem = (s.d - c) / 8;
      const int vecs = rem < 4 ? static_cast<int>(rem) : 4;
      switch (vecs) {
        case 4:
          det ? SpmmRowTile<true, 4>(s, ib, ie, c, yr)
              : SpmmRowTile<false, 4>(s, ib, ie, c, yr);
          break;
        case 3:
          det ? SpmmRowTile<true, 3>(s, ib, ie, c, yr)
              : SpmmRowTileFast4<3>(s, ib, ie, c, yr);
          break;
        case 2:
          det ? SpmmRowTile<true, 2>(s, ib, ie, c, yr)
              : SpmmRowTileFast4<2>(s, ib, ie, c, yr);
          break;
        default:
          det ? SpmmRowTile<true, 1>(s, ib, ie, c, yr)
              : SpmmRowTileFast4<1>(s, ib, ie, c, yr);
          break;
      }
      c += vecs * 8;
    }
    // Scalar tail lanes, still per-element edge order.
    for (; c < s.d; ++c) {
      float acc = 0.0f;
      for (int64_t i = ib; i < ie; ++i) {
        acc += s.values[i] * s.x[static_cast<int64_t>(s.indices[i]) * s.d + c];
      }
      yr[c] = acc;
    }
  }
}

void AddIntoImpl(float* y, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                                          _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void AxpyIntoImpl(float* y, float a, const float* x, int64_t n) {
  const __m256 a8 = _mm256_set1_ps(a);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                             _mm256_mul_ps(a8, _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaleIntoImpl(float* y, float a, int64_t n) {
  const __m256 a8 = _mm256_set1_ps(a);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), a8));
  }
  for (; i < n; ++i) y[i] *= a;
}

void MulIntoImpl(float* y, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i),
                                          _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void MulAddIntoImpl(float* y, const float* g, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i,
        _mm256_add_ps(_mm256_loadu_ps(y + i),
                      _mm256_mul_ps(_mm256_loadu_ps(g + i),
                                    _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += g[i] * x[i];
}

void LeakyReluFwdImpl(float* y, int64_t n, float slope) {
  const __m256 s8 = _mm256_set1_ps(slope);
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(y + i);
    // NaN compares false against 0, so NaN lanes keep their value —
    // same as the scalar `if (v < 0)` branch.
    const __m256 neg = _mm256_cmp_ps(v, zero, _CMP_LT_OQ);
    _mm256_storeu_ps(y + i,
                     _mm256_blendv_ps(v, _mm256_mul_ps(v, s8), neg));
  }
  for (; i < n; ++i) {
    if (y[i] < 0.0f) y[i] *= slope;
  }
}

void LeakyReluBwdImpl(float* gx, const float* g, const float* x, int64_t n,
                      float slope) {
  const __m256 s8 = _mm256_set1_ps(slope);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 ge = _mm256_cmp_ps(xv, zero, _CMP_GE_OQ);
    const __m256 factor = _mm256_blendv_ps(s8, one, ge);
    _mm256_storeu_ps(
        gx + i,
        _mm256_add_ps(_mm256_loadu_ps(gx + i),
                      _mm256_mul_ps(_mm256_loadu_ps(g + i), factor)));
  }
  for (; i < n; ++i) {
    gx[i] += g[i] * (x[i] >= 0.0f ? 1.0f : slope);
  }
}

float DotImpl(const float* a, const float* b, int64_t n, bool det) {
  if (det) return ScalarDot(a, b, n, det);
  return DotFma(a, b, n);
}

float DotQ8Impl(const float* a, const int8_t* q, int64_t n, bool det) {
  if (det) return ScalarDotQ8(a, q, n, det);
  return DotQ8Fma(a, q, n);
}

float DotF16Impl(const float* a, const uint16_t* h, int64_t n, bool det) {
  if (det) return ScalarDotF16(a, h, n, det);
#if defined(__F16C__)
  // F16C shipped before AVX2 on every x86 line, but the table is gated
  // on avx2+fma only — check at runtime rather than widening the gate.
  static const bool have_f16c = __builtin_cpu_supports("f16c");
  if (have_f16c) return DotF16Fma(a, h, n);
#endif
  return ScalarDotF16(a, h, n, /*det=*/false);
}

}  // namespace

const KernelTable* Avx2KernelTable() {
  static const KernelTable table = {
      /*name=*/"avx2",
      /*isa=*/Isa::kAvx2,
      /*gemm_rows=*/&GemmRows,
      /*spmm_rows=*/&SpmmRows,
      /*add_into=*/&AddIntoImpl,
      /*axpy_into=*/&AxpyIntoImpl,
      /*scale_into=*/&ScaleIntoImpl,
      /*mul_into=*/&MulIntoImpl,
      /*mul_add_into=*/&MulAddIntoImpl,
      /*leaky_relu_fwd=*/&LeakyReluFwdImpl,
      /*leaky_relu_bwd=*/&LeakyReluBwdImpl,
      /*dot=*/&DotImpl,
      /*dot_q8=*/&DotQ8Impl,
      /*dot_f16=*/&DotF16Impl,
  };
  return &table;
}

}  // namespace dgnn::kernels

#endif  // __AVX2__ && __FMA__
