// Runtime kernel dispatch: CPU detection, the DGNN_SIMD override, the
// process-wide deterministic/fast mode switch, and the parallel entry
// points that split GEMM/SpMM row ranges on the thread pool's fixed
// grain (same grain as the pre-dispatch serial kernels, so chunk
// boundaries — and therefore deterministic-mode bits — are unchanged).

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernels/kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dgnn::kernels {
namespace {

// Same fixed grain the tape GEMM and CSR SpMM used before dispatch
// existed: one chunk covers 64 output rows, each row written by exactly
// one chunk.
constexpr int64_t kRowGrain = 64;

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return ScalarKernelTable();
    case Isa::kAvx2:
#if defined(DGNN_KERNELS_HAVE_AVX2)
      return Avx2KernelTable();
#else
      break;
#endif
    case Isa::kNeon:
#if defined(DGNN_KERNELS_HAVE_NEON)
      return NeonKernelTable();
#else
      break;
#endif
  }
  DGNN_CHECK(false) << "kernel variant " << IsaName(isa)
                    << " not compiled into this build";
  return nullptr;
}

bool IsaIsAvailable(Isa isa) {
  for (Isa have : AvailableIsas()) {
    if (have == isa) return true;
  }
  return false;
}

const KernelTable* ResolveFromEnv() {
  const char* env = std::getenv("DGNN_SIMD");
  std::string want = env ? env : "";
  for (char& c : want) c = static_cast<char>(std::tolower(c));
  if (want.empty() || want == "auto") {
    const std::vector<Isa> have = AvailableIsas();
    return TableFor(have.back());  // sorted ascending; best is last
  }
  if (want == "off" || want == "scalar") return ScalarKernelTable();
  Isa isa = Isa::kScalar;
  if (want == "avx2") {
    isa = Isa::kAvx2;
  } else if (want == "neon") {
    isa = Isa::kNeon;
  } else {
    DGNN_CHECK(false) << "DGNN_SIMD=" << want
                      << " (expected auto|off|scalar|avx2|neon)";
  }
  // Asking for an unavailable level aborts: a CI job that requests AVX2
  // on a machine without it must fail loudly, not measure scalar code.
  DGNN_CHECK(IsaIsAvailable(isa))
      << "DGNN_SIMD=" << want << " but this build/CPU cannot run it";
  return TableFor(isa);
}

std::atomic<const KernelTable*>& ActiveTableSlot() {
  static std::atomic<const KernelTable*> slot{ResolveFromEnv()};
  return slot;
}

const KernelTable* ActiveTable() {
  return ActiveTableSlot().load(std::memory_order_relaxed);
}

std::atomic<bool>& DeterministicFlag() {
  static std::atomic<bool> flag{true};
  return flag;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa ActiveIsa() { return ActiveTable()->isa; }

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> have{Isa::kScalar};
#if defined(DGNN_KERNELS_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    have.push_back(Isa::kAvx2);
  }
#endif
#if defined(DGNN_KERNELS_HAVE_NEON)
  // NEON is architecturally guaranteed on aarch64.
  have.push_back(Isa::kNeon);
#endif
  return have;
}

void ForceIsa(Isa isa) {
  DGNN_CHECK(IsaIsAvailable(isa))
      << "ForceIsa(" << IsaName(isa)
      << "): variant not available in this build / on this CPU";
  ActiveTableSlot().store(TableFor(isa), std::memory_order_relaxed);
}

void ResetIsaFromEnv() {
  ActiveTableSlot().store(ResolveFromEnv(), std::memory_order_relaxed);
}

bool Deterministic() {
  return DeterministicFlag().load(std::memory_order_relaxed);
}

void SetDeterministic(bool deterministic) {
  DeterministicFlag().store(deterministic, std::memory_order_relaxed);
}

void GemmAcc(const float* a, int64_t a_rows, int64_t a_cols, bool ta,
             const float* b, int64_t b_rows, int64_t b_cols, bool tb,
             float* out) {
  const int64_t m = ta ? a_cols : a_rows;
  const int64_t k = ta ? a_rows : a_cols;
  const int64_t k_b = tb ? b_cols : b_rows;
  const int64_t n = tb ? b_rows : b_cols;
  DGNN_CHECK_EQ(k, k_b) << "GemmAcc inner dimensions";
  GemmView g;
  g.a = a;
  g.b = b;
  g.out = out;
  g.m = m;
  g.n = n;
  g.k = k;
  g.lda = a_cols;
  g.ldb = b_cols;
  g.ta = ta;
  g.tb = tb;
  const KernelTable* table = ActiveTable();
  const bool det = Deterministic();
  util::ParallelFor(0, m, kRowGrain, [&](int64_t rb, int64_t re) {
    table->gemm_rows(g, rb, re, det);
  });
}

void Spmm(const int64_t* indptr, const int32_t* indices,
          const float* values, int64_t rows, const float* x, int64_t d,
          float* y) {
  SpmmView s;
  s.indptr = indptr;
  s.indices = indices;
  s.values = values;
  s.x = x;
  s.y = y;
  s.d = d;
  const KernelTable* table = ActiveTable();
  const bool det = Deterministic();
  util::ParallelFor(0, rows, kRowGrain, [&](int64_t rb, int64_t re) {
    table->spmm_rows(s, rb, re, det);
  });
}

void AddInto(float* y, const float* x, int64_t n) {
  ActiveTable()->add_into(y, x, n);
}

void AxpyInto(float* y, float a, const float* x, int64_t n) {
  ActiveTable()->axpy_into(y, a, x, n);
}

void ScaleInto(float* y, float a, int64_t n) {
  ActiveTable()->scale_into(y, a, n);
}

void MulInto(float* y, const float* x, int64_t n) {
  ActiveTable()->mul_into(y, x, n);
}

void MulAddInto(float* y, const float* g, const float* x, int64_t n) {
  ActiveTable()->mul_add_into(y, g, x, n);
}

void LeakyReluForward(float* y, int64_t n, float slope) {
  ActiveTable()->leaky_relu_fwd(y, n, slope);
}

void LeakyReluBackward(float* gx, const float* g, const float* x,
                       int64_t n, float slope) {
  ActiveTable()->leaky_relu_bwd(gx, g, x, n, slope);
}

float Dot(const float* a, const float* b, int64_t n) {
  const KernelTable* table = ActiveTable();
  return table->dot(a, b, n, Deterministic());
}

float DotQ8(const float* a, const int8_t* q, int64_t n) {
  const KernelTable* table = ActiveTable();
  return table->dot_q8(a, q, n, Deterministic());
}

float DotF16(const float* a, const uint16_t* h, int64_t n) {
  const KernelTable* table = ActiveTable();
  return table->dot_f16(a, h, n, Deterministic());
}

}  // namespace dgnn::kernels
