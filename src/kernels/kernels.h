// Kernel-dispatch layer: every dense/sparse hot loop in the library —
// the tape GEMM behind the disentangled transforms, CSR SpMM message
// passing, the memory-encoder gate elementwise math, and the serving
// dot-product scans — funnels through the entry points declared here.
// At first use the dispatcher picks the best instruction-set variant the
// CPU supports (AVX2+FMA on x86-64, NEON on aarch64, scalar reference
// everywhere); the DGNN_SIMD environment variable overrides the choice.
//
// Two numeric modes, switched process-wide:
//
//  * DETERMINISTIC (default): every output element is accumulated in
//    exactly the serial reference order with separately rounded
//    multiply and add (no FMA contraction). SIMD variants vectorize
//    only across independent output elements, so results are
//    bit-identical to the scalar kernels — and, combined with the
//    thread pool's fixed-grain chunking (src/util/thread_pool.h), to
//    any thread count. The row-parallel GEMM/SpMM entry points below
//    split work on the same fixed grain as the serial kernels.
//
//  * FAST (SetDeterministic(false), CLI --deterministic=0): relaxes the
//    accumulation order — FMA, multi-lane partial sums, cache-blocked
//    panels for the transposed GEMM paths, and the sparse zero-skip in
//    the A-stationary paths. Results agree with deterministic mode only
//    to rounding tolerance.
//
// Non-finite contract: deterministic mode never skips zero operands, so
// 0 * NaN / 0 * Inf propagate NaN through every path exactly as IEEE
// arithmetic demands (this is what --check-numerics relies on). Only
// fast mode may skip zero multiplier rows as a sparsity shortcut.

#ifndef DGNN_KERNELS_KERNELS_H_
#define DGNN_KERNELS_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dgnn::kernels {

// Instruction-set variants a build can carry. kScalar is always
// compiled; the SIMD variants exist only on their architectures (and
// only when the compiler supports the flags), and are picked at runtime
// only when the CPU reports the feature.
enum class Isa {
  kScalar = 0,
  kAvx2 = 1,  // AVX2 + FMA, x86-64
  kNeon = 2,  // NEON, aarch64
};

const char* IsaName(Isa isa);

// The variant requests currently dispatch to.
Isa ActiveIsa();

// Variants this binary can run on this machine (always includes
// kScalar; sorted ascending).
std::vector<Isa> AvailableIsas();

// Forces dispatch to `isa` (parity tests, CI). Aborts with a CHECK
// failure if the variant is not available in this build / on this CPU.
void ForceIsa(Isa isa);

// Re-evaluates DGNN_SIMD and CPU detection, discarding any ForceIsa.
// DGNN_SIMD accepts: "auto"/"" (best available), "off"/"scalar",
// "avx2", "neon". Naming an unavailable level aborts — a CI job that
// asks for AVX2 on a machine without it should fail loudly, not
// silently measure scalar code.
void ResetIsaFromEnv();

// Process-wide numeric mode (see file comment). Default: deterministic.
bool Deterministic();
void SetDeterministic(bool deterministic);

// ---------------------------------------------------------------------------
// Kernel entry points
// ---------------------------------------------------------------------------

// out(m x n) += op(A) @ op(B), all row-major contiguous. A is stored
// a_rows x a_cols (op(A) = A^T when ta), B likewise. Parallelized over
// output rows on a fixed grain; each output row is produced by exactly
// one chunk, preserving the thread pool's determinism contract.
void GemmAcc(const float* a, int64_t a_rows, int64_t a_cols, bool ta,
             const float* b, int64_t b_rows, int64_t b_cols, bool tb,
             float* out);

// y = A * x for CSR A (rows x anything) and dense row-major x
// (A.cols x d); y (rows x d) is overwritten. Row-blocked and
// parallelized on a fixed grain; per output row, edges accumulate in
// CSR order (deterministic mode) so results match the serial kernel
// bit for bit.
void Spmm(const int64_t* indptr, const int32_t* indices,
          const float* values, int64_t rows, const float* x, int64_t d,
          float* y);

// Elementwise kernels (serial over [0, n); callers parallelize by
// chunking). All variants use separately rounded multiply and add, so
// every ISA produces bit-identical results in BOTH modes.
void AddInto(float* y, const float* x, int64_t n);            // y += x
void AxpyInto(float* y, float a, const float* x, int64_t n);  // y += a*x
void ScaleInto(float* y, float a, int64_t n);                 // y *= a
void MulInto(float* y, const float* x, int64_t n);            // y *= x
void MulAddInto(float* y, const float* g, const float* x,
                int64_t n);                                   // y += g.*x
void LeakyReluForward(float* y, int64_t n, float slope);
// gx += g .* (x >= 0 ? 1 : slope)
void LeakyReluBackward(float* gx, const float* g, const float* x,
                       int64_t n, float slope);

// sum_i a[i]*b[i]. Deterministic mode accumulates serially in index
// order (bit-identical to the scalar loop); fast mode uses multi-lane
// FMA partial sums.
float Dot(const float* a, const float* b, int64_t n);

// Quantized dots for the serving snapshot's int8 / fp16 embedding
// sections (ggml-style storage: per-row scale outside the kernel).
//
//  * DotQ8 returns sum_i a[i] * float(q[i]) — the caller multiplies by
//    the row's scale, so the kernel itself is codec-agnostic integer
//    widening + the usual float accumulation.
//  * DotF16 returns sum_i a[i] * Fp16ToFp32(h[i]).
//
// Deterministic mode is the serial scalar reference on every ISA (same
// contract as Dot); fast mode may widen 8/16-bit lanes in SIMD and use
// multi-lane FMA partial sums.
float DotQ8(const float* a, const int8_t* q, int64_t n);
float DotF16(const float* a, const uint16_t* h, int64_t n);

// ---------------------------------------------------------------------------
// IEEE binary16 conversion (software reference)
// ---------------------------------------------------------------------------

// Round-to-nearest-even float32 -> float16, handling subnormals,
// overflow-to-inf and NaN payload truncation. Pure bit manipulation:
// bit-identical on every ISA and compiler, which is what makes fp16
// snapshot sections deterministic artifacts. Hardware converters (F16C)
// are used only as a runtime-gated fast path inside the SIMD dots.
inline uint16_t Fp32ToFp16(float v) {
  uint32_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t exp = (bits >> 23) & 0xffu;
  uint32_t mant = bits & 0x7fffffu;
  if (exp == 0xffu) {  // inf / NaN (keep the top mantissa bits, force
                       // quiet so a payload of all-truncated-zeros
                       // cannot turn a NaN into an inf)
    return static_cast<uint16_t>(
        sign | 0x7c00u | (mant != 0 ? (0x200u | (mant >> 13)) : 0u));
  }
  const int32_t e = static_cast<int32_t>(exp) - 127 + 15;
  if (e >= 0x1f) return static_cast<uint16_t>(sign | 0x7c00u);  // -> inf
  if (e <= 0) {
    if (e < -10) return static_cast<uint16_t>(sign);  // underflow -> 0
    mant |= 0x800000u;  // implicit bit
    const uint32_t shift = static_cast<uint32_t>(14 - e);  // 14..24
    uint32_t half = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1u);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  uint32_t half = (static_cast<uint32_t>(e) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1fffu;
  // Rounding may carry into the exponent; that correctly lands on the
  // next binade (and on inf when the max normal rounds up).
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<uint16_t>(sign | half);
}

inline float Fp16ToFp32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t bits;
  if (exp == 0x1fu) {  // inf / NaN
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Normalize the subnormal: shift until the implicit bit appears.
      // value = mant * 2^-24 = 1.frac * 2^(-14 - shift), so the fp32
      // biased exponent is 127 - 14 - shift (NOT -15: the subnormal
      // scale is 2^-14, one binade above the half exponent bias).
      int shift = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3ffu;
      bits = sign |
             (static_cast<uint32_t>(127 - 14 - shift) << 23) | (mant << 13);
    }
  } else {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float f;
  __builtin_memcpy(&f, &bits, sizeof(f));
  return f;
}

// ---------------------------------------------------------------------------
// Internals shared by the per-ISA translation units
// ---------------------------------------------------------------------------

// Row-major GEMM operand view. Stored a: (ta ? k x m : m x k) with row
// stride lda; stored b: (tb ? n x k : k x n) with row stride ldb; out:
// m x n contiguous.
struct GemmView {
  const float* a = nullptr;
  const float* b = nullptr;
  float* out = nullptr;
  int64_t m = 0, n = 0, k = 0;
  int64_t lda = 0, ldb = 0;
  bool ta = false, tb = false;
};

struct SpmmView {
  const int64_t* indptr = nullptr;
  const int32_t* indices = nullptr;
  const float* values = nullptr;
  const float* x = nullptr;
  float* y = nullptr;
  int64_t d = 0;
};

// One dispatchable variant: row-range workers for the parallel kernels
// plus the full elementwise set. `det` selects the deterministic or
// relaxed accumulation path.
struct KernelTable {
  const char* name = "";
  Isa isa = Isa::kScalar;
  void (*gemm_rows)(const GemmView&, int64_t rb, int64_t re, bool det) =
      nullptr;
  void (*spmm_rows)(const SpmmView&, int64_t rb, int64_t re, bool det) =
      nullptr;
  void (*add_into)(float*, const float*, int64_t) = nullptr;
  void (*axpy_into)(float*, float, const float*, int64_t) = nullptr;
  void (*scale_into)(float*, float, int64_t) = nullptr;
  void (*mul_into)(float*, const float*, int64_t) = nullptr;
  void (*mul_add_into)(float*, const float*, const float*, int64_t) =
      nullptr;
  void (*leaky_relu_fwd)(float*, int64_t, float) = nullptr;
  void (*leaky_relu_bwd)(float*, const float*, const float*, int64_t,
                         float) = nullptr;
  float (*dot)(const float*, const float*, int64_t, bool det) = nullptr;
  float (*dot_q8)(const float*, const int8_t*, int64_t, bool det) = nullptr;
  float (*dot_f16)(const float*, const uint16_t*, int64_t, bool det) =
      nullptr;
};

// Per-ISA tables. The scalar table is the reference implementation and
// always exists; SIMD tables are defined only in builds that compile
// their translation unit (see src/kernels/CMakeLists.txt) and reuse the
// scalar workers for paths where vectorization cannot preserve the
// deterministic accumulation order.
const KernelTable* ScalarKernelTable();
const KernelTable* Avx2KernelTable();  // defined iff DGNN_KERNELS_HAVE_AVX2
const KernelTable* NeonKernelTable();  // defined iff DGNN_KERNELS_HAVE_NEON

// Scalar reference row workers, callable from SIMD tables as the
// deterministic fallback for the inner-product GEMM paths.
void ScalarGemmRows(const GemmView& g, int64_t rb, int64_t re, bool det);
float ScalarDot(const float* a, const float* b, int64_t n, bool det);
float ScalarDotQ8(const float* a, const int8_t* q, int64_t n, bool det);
float ScalarDotF16(const float* a, const uint16_t* h, int64_t n, bool det);

}  // namespace dgnn::kernels

#endif  // DGNN_KERNELS_KERNELS_H_
