#include "ag/tensor.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"
#include "util/strings.h"

namespace dgnn::ag {

Tensor Tensor::FromVector(int64_t rows, int64_t cols,
                          std::vector<float> values) {
  DGNN_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::Scalar(float v) { return FromVector(1, 1, {v}); }

Tensor Tensor::Full(int64_t rows, int64_t cols, float v) {
  Tensor t(rows, cols);
  t.Fill(v);
  return t;
}

Tensor Tensor::XavierUniform(int64_t rows, int64_t cols, util::Rng& rng) {
  Tensor t(rows, cols);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data_[static_cast<size_t>(i)] = rng.UniformFloat(-bound, bound);
  }
  return t;
}

Tensor Tensor::GaussianInit(int64_t rows, int64_t cols, float stddev,
                            util::Rng& rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data_[static_cast<size_t>(i)] =
        static_cast<float>(rng.Gaussian(0.0, stddev));
  }
  return t;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::Add(const Tensor& other) {
  DGNN_CHECK(SameShape(other)) << ShapeString() << " vs "
                               << other.ShapeString();
  kernels::AddInto(data_.data(), other.data_.data(), size());
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  DGNN_CHECK(SameShape(other));
  kernels::AxpyInto(data_.data(), alpha, other.data_.data(), size());
}

void Tensor::Scale(float alpha) {
  kernels::ScaleInto(data_.data(), alpha, size());
}

float Tensor::SquaredL2() const {
  float s = 0.0f;
  for (float v : data_) s += v * v;
  return s;
}

float Tensor::MaxAbsDiff(const Tensor& other) const {
  DGNN_CHECK(SameShape(other));
  float m = 0.0f;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

std::string Tensor::ShapeString() const {
  return util::StrFormat("[%lld x %lld]", static_cast<long long>(rows_),
                         static_cast<long long>(cols_));
}

}  // namespace dgnn::ag
