#include "ag/tape.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ag/diagnostics.h"
#include "kernels/kernels.h"
#include "util/json.h"
#include "util/run_log.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace dgnn::ag {
namespace {

// ParallelFor grains for the tape kernels. Fixed constants (independent
// of the thread count) keep the chunk decomposition — and therefore the
// float accumulation order of every output element — identical for any
// DGNN_NUM_THREADS, which is what the parallel-vs-serial equivalence
// suite asserts bit-exactly.
constexpr int64_t kRowGrain = 64;     // chunks of matrix rows
constexpr int64_t kEltGrain = 4096;   // chunks of flat elements

// out += op(A) @ op(B) where op optionally transposes. Dispatches to the
// kernel layer (src/kernels/): the active ISA variant parallelizes over
// output rows on the same fixed grain this file used before dispatch
// existed, so deterministic-mode results stay bit-identical to the old
// serial kernels for any thread count. Fast mode (--deterministic=0)
// relaxes the accumulation order for FMA and cache-blocked panels.
void GemmAcc(const Tensor& a, bool ta, const Tensor& b, bool tb,
             Tensor& out) {
  static telemetry::Timer* gemm_timer = telemetry::GetTimer("ag.gemm");
  telemetry::ScopedTimer timer(gemm_timer);
  const int64_t m = ta ? a.cols() : a.rows();
  const int64_t n = tb ? b.rows() : b.cols();
  DGNN_CHECK_EQ(out.rows(), m);
  DGNN_CHECK_EQ(out.cols(), n);
  kernels::GemmAcc(a.data(), a.rows(), a.cols(), ta, b.data(), b.rows(),
                   b.cols(), tb, out.data());
}

float StableSoftplus(float z) {
  // log(1 + exp(z)) without overflow.
  if (z > 0.0f) return z + std::log1p(std::exp(-z));
  return std::log1p(std::exp(z));
}

float SigmoidF(float z) {
  if (z >= 0.0f) {
    const float e = std::exp(-z);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(z);
  return e / (1.0f + e);
}

}  // namespace

// ---------------------------------------------------------------------------
// ParamStore
// ---------------------------------------------------------------------------

Parameter* ParamStore::Create(const std::string& name, Tensor init) {
  auto p = std::make_unique<Parameter>();
  p->name = name;
  p->grad = Tensor(init.rows(), init.cols());
  p->value = std::move(init);
  params_.push_back(std::move(p));
  return params_.back().get();
}

Parameter* ParamStore::CreateXavier(const std::string& name, int64_t rows,
                                    int64_t cols, util::Rng& rng) {
  return Create(name, Tensor::XavierUniform(rows, cols, rng));
}

Parameter* ParamStore::CreateZero(const std::string& name, int64_t rows,
                                  int64_t cols) {
  return Create(name, Tensor(rows, cols));
}

Parameter* ParamStore::CreateFull(const std::string& name, int64_t rows,
                                  int64_t cols, float value) {
  return Create(name, Tensor::Full(rows, cols, value));
}

void ParamStore::ZeroGrad() {
  for (auto& p : params_) p->grad.Zero();
}

int64_t ParamStore::TotalParameterCount() const {
  int64_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

Parameter* ParamStore::Find(const std::string& name) {
  for (auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Tape plumbing
// ---------------------------------------------------------------------------

VarId Tape::Emit(Tensor value, bool requires_grad,
                 std::function<void()> backward, const char* op) {
  auto n = std::make_unique<Node>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  n->backward = std::move(backward);
  n->op = op;
  nodes_.push_back(std::move(n));
  const VarId id = static_cast<VarId>(nodes_.size() - 1);
  if (CheckNumericsEnabled()) CheckFinite(id, /*gradient=*/false);
  return id;
}

void Tape::CheckFinite(VarId id, bool gradient) const {
  const Node& n = node(id);
  const Tensor& t = gradient ? n.grad : n.value;
  const int64_t bad = FirstNonFinite(t);
  if (bad < 0) return;
  std::string where = n.op;
  if (n.param != nullptr) where += " ('" + n.param->name + "')";
  const char* what = gradient ? "gradient" : "value";
  if (runlog::Active()) {
    util::JsonObject o;
    o.Set("kind", gradient ? "nonfinite_gradient" : "nonfinite_value")
        .Set("op", n.op)
        .Set("param", n.param != nullptr ? n.param->name : std::string())
        .Set("node", static_cast<int64_t>(id))
        .Set("index", bad);
    runlog::Emit("anomaly", o);
  }
  DGNN_CHECK(false) << "check-numerics: non-finite " << what
                    << " produced by tape op " << where << " (node " << id
                    << ", element " << bad << ")";
}

Tape::Node& Tape::node(VarId id) {
  DGNN_DCHECK_GE(id, 0);
  DGNN_DCHECK_LT(id, static_cast<VarId>(nodes_.size()));
  return *nodes_[static_cast<size_t>(id)];
}

const Tape::Node& Tape::node(VarId id) const {
  return const_cast<Tape*>(this)->node(id);
}

Tensor& Tape::grad_buf(VarId id) {
  Node& n = node(id);
  if (n.grad.empty() && n.value.size() > 0) {
    n.grad = Tensor(n.value.rows(), n.value.cols());
  }
  return n.grad;
}

const Tensor& Tape::val(VarId id) const { return node(id).value; }

const Tensor& Tape::grad(VarId id) const {
  // Lazily materialize zeros so callers can read grads of unused vars.
  return const_cast<Tape*>(this)->grad_buf(id);
}

bool Tape::requires_grad(VarId id) const { return node(id).requires_grad; }

const char* Tape::op_name(VarId id) const { return node(id).op; }

VarId Tape::Constant(Tensor value) {
  return Emit(std::move(value), /*requires_grad=*/false, nullptr, "Constant");
}

VarId Tape::Param(Parameter* p) {
  DGNN_CHECK(p != nullptr);
  if (CheckNumericsEnabled()) {
    // Pre-check the live parameter so a value corrupted by a previous
    // optimizer step is attributed to the parameter, not to the first op
    // that consumes it.
    const int64_t bad = FirstNonFinite(p->value);
    if (bad >= 0) {
      if (runlog::Active()) {
        util::JsonObject o;
        o.Set("kind", "nonfinite_param")
            .Set("op", "Param")
            .Set("param", p->name)
            .Set("index", bad);
        runlog::Emit("anomaly", o);
      }
      DGNN_CHECK(false) << "check-numerics: non-finite value in parameter '"
                        << p->name << "' (element " << bad << ")";
    }
  }
  Tensor copy = p->value;
  VarId id = Emit(std::move(copy), /*requires_grad=*/true, nullptr, "Param");
  node(id).param = p;
  node(id).backward = [this, id, p]() {
    DGNN_CHECK(p->grad.SameShape(node(id).grad));
    p->grad.Add(node(id).grad);
  };
  return id;
}

void Tape::Backward(VarId root) {
  Node& r = node(root);
  DGNN_CHECK_EQ(r.value.size(), 1) << "Backward root must be scalar";
  DGNN_CHECK(r.requires_grad) << "Backward root does not depend on params";
  grad_buf(root).Fill(1.0f);
  const bool check = CheckNumericsEnabled();
  for (VarId id = root; id >= 0; --id) {
    Node& n = node(id);
    if (!n.requires_grad || n.grad.empty() || !n.backward) continue;
    // By the time a node's backward runs, its own gradient is fully
    // accumulated — the first non-finite entry names the op whose
    // cotangent corrupted the chain.
    if (check) CheckFinite(id, /*gradient=*/true);
    n.backward();
  }
}

void Tape::Reset() { nodes_.clear(); }

// ---------------------------------------------------------------------------
// Elementwise & linear algebra
// ---------------------------------------------------------------------------

VarId Tape::MatMul(VarId a, VarId b, bool trans_a, bool trans_b) {
  const Tensor& av = val(a);
  const Tensor& bv = val(b);
  const int64_t m = trans_a ? av.cols() : av.rows();
  const int64_t n = trans_b ? bv.rows() : bv.cols();
  Tensor out(m, n);
  GemmAcc(av, trans_a, bv, trans_b, out);
  bool rg = requires_grad(a) || requires_grad(b);
  VarId id = Emit(std::move(out), rg, nullptr, "MatMul");
  if (rg) {
    node(id).backward = [this, id, a, b, trans_a, trans_b]() {
      const Tensor& g = node(id).grad;
      if (requires_grad(a)) {
        if (!trans_a) {
          GemmAcc(g, false, val(b), !trans_b, grad_buf(a));
        } else {
          GemmAcc(val(b), trans_b, g, true, grad_buf(a));
        }
      }
      if (requires_grad(b)) {
        if (!trans_b) {
          GemmAcc(val(a), !trans_a, g, false, grad_buf(b));
        } else {
          GemmAcc(g, true, val(a), trans_a, grad_buf(b));
        }
      }
    };
  }
  return id;
}

VarId Tape::Add(VarId a, VarId b) { return AddN({a, b}); }

VarId Tape::Sub(VarId a, VarId b) {
  const Tensor& av = val(a);
  const Tensor& bv = val(b);
  DGNN_CHECK(av.SameShape(bv));
  Tensor out = av;
  out.Axpy(-1.0f, bv);
  bool rg = requires_grad(a) || requires_grad(b);
  VarId id = Emit(std::move(out), rg, nullptr, "Sub");
  if (rg) {
    node(id).backward = [this, id, a, b]() {
      const Tensor& g = node(id).grad;
      if (requires_grad(a)) grad_buf(a).Add(g);
      if (requires_grad(b)) grad_buf(b).Axpy(-1.0f, g);
    };
  }
  return id;
}

VarId Tape::AddN(const std::vector<VarId>& xs) {
  DGNN_CHECK(!xs.empty());
  Tensor out = val(xs[0]);
  bool rg = requires_grad(xs[0]);
  for (size_t i = 1; i < xs.size(); ++i) {
    DGNN_CHECK(out.SameShape(val(xs[i])));
    rg = rg || requires_grad(xs[i]);
  }
  if (xs.size() > 1) {
    util::ParallelFor(0, out.size(), kEltGrain, [&](int64_t b, int64_t e) {
      float* o = out.data();
      for (size_t i = 1; i < xs.size(); ++i) {
        kernels::AddInto(o + b, val(xs[i]).data() + b, e - b);
      }
    });
  }
  VarId id = Emit(std::move(out), rg, nullptr, "AddN");
  if (rg) {
    std::vector<VarId> inputs = xs;
    node(id).backward = [this, id, inputs]() {
      const Tensor& g = node(id).grad;
      for (VarId x : inputs) {
        if (!requires_grad(x)) continue;
        Tensor& gx = grad_buf(x);
        util::ParallelFor(0, g.size(), kEltGrain, [&](int64_t b, int64_t e) {
          kernels::AddInto(gx.data() + b, g.data() + b, e - b);
        });
      }
    };
  }
  return id;
}

VarId Tape::AddRowBroadcast(VarId a, VarId b) {
  const Tensor& av = val(a);
  const Tensor& bv = val(b);
  DGNN_CHECK_EQ(bv.rows(), 1);
  DGNN_CHECK_EQ(bv.cols(), av.cols());
  Tensor out = av;
  for (int64_t r = 0; r < out.rows(); ++r) {
    kernels::AddInto(out.row(r), bv.row(0), out.cols());
  }
  bool rg = requires_grad(a) || requires_grad(b);
  VarId id = Emit(std::move(out), rg, nullptr, "AddRowBroadcast");
  if (rg) {
    node(id).backward = [this, id, a, b]() {
      const Tensor& g = node(id).grad;
      if (requires_grad(a)) grad_buf(a).Add(g);
      if (requires_grad(b)) {
        Tensor& gb = grad_buf(b);
        for (int64_t r = 0; r < g.rows(); ++r) {
          kernels::AddInto(gb.row(0), g.row(r), g.cols());
        }
      }
    };
  }
  return id;
}

VarId Tape::Mul(VarId a, VarId b) {
  const Tensor& av = val(a);
  const Tensor& bv = val(b);
  DGNN_CHECK(av.SameShape(bv));
  Tensor out = av;
  kernels::MulInto(out.data(), bv.data(), out.size());
  bool rg = requires_grad(a) || requires_grad(b);
  VarId id = Emit(std::move(out), rg, nullptr, "Mul");
  if (rg) {
    node(id).backward = [this, id, a, b]() {
      const Tensor& g = node(id).grad;
      if (requires_grad(a)) {
        kernels::MulAddInto(grad_buf(a).data(), g.data(), val(b).data(),
                            g.size());
      }
      if (requires_grad(b)) {
        kernels::MulAddInto(grad_buf(b).data(), g.data(), val(a).data(),
                            g.size());
      }
    };
  }
  return id;
}

VarId Tape::MulRowBroadcast(VarId a, VarId b) {
  const Tensor& av = val(a);
  const Tensor& bv = val(b);
  DGNN_CHECK_EQ(bv.rows(), 1);
  DGNN_CHECK_EQ(bv.cols(), av.cols());
  Tensor out = av;
  for (int64_t r = 0; r < out.rows(); ++r) {
    kernels::MulInto(out.row(r), bv.row(0), out.cols());
  }
  bool rg = requires_grad(a) || requires_grad(b);
  VarId id = Emit(std::move(out), rg, nullptr, "MulRowBroadcast");
  if (rg) {
    node(id).backward = [this, id, a, b]() {
      const Tensor& g = node(id).grad;
      const Tensor& av2 = val(a);
      const Tensor& bv2 = val(b);
      if (requires_grad(a)) {
        Tensor& ga = grad_buf(a);
        for (int64_t r = 0; r < g.rows(); ++r) {
          kernels::MulAddInto(ga.row(r), g.row(r), bv2.row(0), g.cols());
        }
      }
      if (requires_grad(b)) {
        Tensor& gb = grad_buf(b);
        for (int64_t r = 0; r < g.rows(); ++r) {
          kernels::MulAddInto(gb.row(0), g.row(r), av2.row(r), g.cols());
        }
      }
    };
  }
  return id;
}

VarId Tape::RowScale(VarId a, VarId s) {
  const Tensor& av = val(a);
  const Tensor& sv = val(s);
  DGNN_CHECK_EQ(sv.rows(), av.rows());
  DGNN_CHECK_EQ(sv.cols(), 1);
  Tensor out = av;
  for (int64_t r = 0; r < out.rows(); ++r) {
    kernels::ScaleInto(out.row(r), sv.at(r, 0), out.cols());
  }
  bool rg = requires_grad(a) || requires_grad(s);
  VarId id = Emit(std::move(out), rg, nullptr, "RowScale");
  if (rg) {
    node(id).backward = [this, id, a, s]() {
      const Tensor& g = node(id).grad;
      if (requires_grad(a)) {
        Tensor& ga = grad_buf(a);
        const Tensor& sv2 = val(s);
        for (int64_t r = 0; r < g.rows(); ++r) {
          kernels::AxpyInto(ga.row(r), sv2.at(r, 0), g.row(r), g.cols());
        }
      }
      if (requires_grad(s)) {
        Tensor& gs = grad_buf(s);
        const Tensor& av2 = val(a);
        for (int64_t r = 0; r < g.rows(); ++r) {
          gs.at(r, 0) += kernels::Dot(g.row(r), av2.row(r), g.cols());
        }
      }
    };
  }
  return id;
}

VarId Tape::ScalarMul(VarId a, float c) {
  Tensor out = val(a);
  out.Scale(c);
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "ScalarMul");
  if (rg) {
    node(id).backward = [this, id, a, c]() {
      grad_buf(a).Axpy(c, node(id).grad);
    };
  }
  return id;
}

VarId Tape::MulScalarVar(VarId a, VarId s) {
  const Tensor& av = val(a);
  const Tensor& sv = val(s);
  DGNN_CHECK_EQ(sv.size(), 1);
  Tensor out = av;
  out.Scale(sv.scalar());
  bool rg = requires_grad(a) || requires_grad(s);
  VarId id = Emit(std::move(out), rg, nullptr, "MulScalarVar");
  if (rg) {
    node(id).backward = [this, id, a, s]() {
      const Tensor& g = node(id).grad;
      if (requires_grad(a)) grad_buf(a).Axpy(val(s).scalar(), g);
      if (requires_grad(s)) {
        grad_buf(s).at(0, 0) += kernels::Dot(g.data(), val(a).data(),
                                             g.size());
      }
    };
  }
  return id;
}

VarId Tape::LeakyRelu(VarId a, float negative_slope) {
  const Tensor& av = val(a);
  Tensor out = av;
  util::ParallelFor(0, out.size(), kEltGrain, [&](int64_t b, int64_t e) {
    kernels::LeakyReluForward(out.data() + b, e - b, negative_slope);
  });
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "LeakyRelu");
  if (rg) {
    node(id).backward = [this, id, a, negative_slope]() {
      const Tensor& g = node(id).grad;
      const Tensor& x = val(a);
      Tensor& ga = grad_buf(a);
      util::ParallelFor(0, g.size(), kEltGrain, [&](int64_t b, int64_t e) {
        kernels::LeakyReluBackward(ga.data() + b, g.data() + b, x.data() + b,
                                   e - b, negative_slope);
      });
    };
  }
  return id;
}

VarId Tape::Relu(VarId a) { return LeakyRelu(a, 0.0f); }

VarId Tape::Sigmoid(VarId a) {
  const Tensor& av = val(a);
  Tensor out(av.rows(), av.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = SigmoidF(av.data()[i]);
  }
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "Sigmoid");
  if (rg) {
    node(id).backward = [this, id, a]() {
      const Tensor& g = node(id).grad;
      const Tensor& y = node(id).value;
      Tensor& ga = grad_buf(a);
      for (int64_t i = 0; i < g.size(); ++i) {
        const float yi = y.data()[i];
        ga.data()[i] += g.data()[i] * yi * (1.0f - yi);
      }
    };
  }
  return id;
}

VarId Tape::Tanh(VarId a) {
  const Tensor& av = val(a);
  Tensor out(av.rows(), av.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(av.data()[i]);
  }
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "Tanh");
  if (rg) {
    node(id).backward = [this, id, a]() {
      const Tensor& g = node(id).grad;
      const Tensor& y = node(id).value;
      Tensor& ga = grad_buf(a);
      for (int64_t i = 0; i < g.size(); ++i) {
        const float yi = y.data()[i];
        ga.data()[i] += g.data()[i] * (1.0f - yi * yi);
      }
    };
  }
  return id;
}

VarId Tape::Exp(VarId a) {
  const Tensor& av = val(a);
  Tensor out(av.rows(), av.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::exp(av.data()[i]);
  }
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "Exp");
  if (rg) {
    node(id).backward = [this, id, a]() {
      const Tensor& g = node(id).grad;
      const Tensor& y = node(id).value;
      Tensor& ga = grad_buf(a);
      for (int64_t i = 0; i < g.size(); ++i) {
        ga.data()[i] += g.data()[i] * y.data()[i];
      }
    };
  }
  return id;
}

VarId Tape::Log(VarId a, float eps) {
  const Tensor& av = val(a);
  Tensor out(av.rows(), av.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::log(av.data()[i] + eps);
  }
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "Log");
  if (rg) {
    node(id).backward = [this, id, a, eps]() {
      const Tensor& g = node(id).grad;
      const Tensor& x = val(a);
      Tensor& ga = grad_buf(a);
      for (int64_t i = 0; i < g.size(); ++i) {
        ga.data()[i] += g.data()[i] / (x.data()[i] + eps);
      }
    };
  }
  return id;
}

VarId Tape::Dropout(VarId a, float rate, util::Rng& rng, bool training) {
  if (!training || rate <= 0.0f) return a;
  DGNN_CHECK_LT(rate, 1.0f);
  const Tensor& av = val(a);
  const float scale = 1.0f / (1.0f - rate);
  auto mask = std::make_shared<std::vector<float>>(
      static_cast<size_t>(av.size()));
  Tensor out = av;
  for (int64_t i = 0; i < out.size(); ++i) {
    const float keep = rng.Bernoulli(rate) ? 0.0f : scale;
    (*mask)[static_cast<size_t>(i)] = keep;
    out.data()[i] *= keep;
  }
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "Dropout");
  if (rg) {
    node(id).backward = [this, id, a, mask]() {
      const Tensor& g = node(id).grad;
      Tensor& ga = grad_buf(a);
      for (int64_t i = 0; i < g.size(); ++i) {
        ga.data()[i] += g.data()[i] * (*mask)[static_cast<size_t>(i)];
      }
    };
  }
  return id;
}

// ---------------------------------------------------------------------------
// Graph / sparse ops
// ---------------------------------------------------------------------------

VarId Tape::SpMM(const graph::CsrMatrix* adj, const graph::CsrMatrix* adj_t,
                 VarId b) {
  DGNN_CHECK(adj != nullptr);
  static telemetry::Timer* spmm_timer = telemetry::GetTimer("ag.spmm");
  const Tensor& bv = val(b);
  DGNN_CHECK_EQ(adj->cols(), bv.rows());
  Tensor out(adj->rows(), bv.cols());
  {
    telemetry::ScopedTimer timer(spmm_timer);
    adj->Multiply(bv.data(), bv.cols(), out.data());
  }
  bool rg = requires_grad(b);
  VarId id = Emit(std::move(out), rg, nullptr, "SpMM");
  if (rg) {
    DGNN_CHECK(adj_t != nullptr)
        << "SpMM over a differentiable input needs the transposed CSR";
    DGNN_CHECK_EQ(adj_t->rows(), adj->cols());
    DGNN_CHECK_EQ(adj_t->cols(), adj->rows());
    node(id).backward = [this, id, adj_t, b]() {
      const Tensor& g = node(id).grad;
      Tensor tmp(adj_t->rows(), g.cols());
      {
        telemetry::ScopedTimer timer(spmm_timer);
        adj_t->Multiply(g.data(), g.cols(), tmp.data());
      }
      grad_buf(b).Add(tmp);
    };
  }
  return id;
}

VarId Tape::GatherRows(VarId a, std::vector<int32_t> index) {
  const Tensor& av = val(a);
  Tensor out(static_cast<int64_t>(index.size()), av.cols());
  util::ParallelFor(
      0, static_cast<int64_t>(index.size()), kRowGrain,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          const int32_t r = index[static_cast<size_t>(i)];
          DGNN_DCHECK_GE(r, 0);
          DGNN_DCHECK_LT(r, av.rows());
          std::copy(av.row(r), av.row(r) + av.cols(), out.row(i));
        }
      });
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "GatherRows");
  if (rg) {
    auto idx = std::make_shared<std::vector<int32_t>>(std::move(index));
    node(id).backward = [this, id, a, idx]() {
      const Tensor& g = node(id).grad;
      Tensor& ga = grad_buf(a);
      // Scatter-add with the destination rows partitioned across chunks:
      // gather positions are visited sorted by (destination row, position),
      // so each destination row accumulates its contributions in ascending
      // position order — exactly the serial loop's order — while chunks
      // write disjoint row ranges of ga.
      std::vector<int32_t> order(idx->size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](int32_t x, int32_t y) {
                         return (*idx)[static_cast<size_t>(x)] <
                                (*idx)[static_cast<size_t>(y)];
                       });
      util::ParallelFor(0, ga.rows(), kRowGrain, [&](int64_t rb, int64_t re) {
        auto lo = std::lower_bound(
            order.begin(), order.end(), rb, [&](int32_t pos, int64_t row) {
              return (*idx)[static_cast<size_t>(pos)] < row;
            });
        for (auto it = lo; it != order.end() &&
                           (*idx)[static_cast<size_t>(*it)] < re;
             ++it) {
          const int64_t i = static_cast<int64_t>(*it);
          kernels::AddInto(ga.row((*idx)[static_cast<size_t>(i)]), g.row(i),
                           g.cols());
        }
      });
    };
  }
  return id;
}

VarId Tape::SegmentSum(VarId a, std::vector<int32_t> segment_ids,
                       int64_t num_segments) {
  const Tensor& av = val(a);
  DGNN_CHECK_EQ(static_cast<int64_t>(segment_ids.size()), av.rows());
  Tensor out(num_segments, av.cols());
  for (size_t e = 0; e < segment_ids.size(); ++e) {
    const int32_t s = segment_ids[e];
    DGNN_DCHECK_GE(s, 0);
    DGNN_DCHECK_LT(s, num_segments);
    kernels::AddInto(out.row(s), av.row(static_cast<int64_t>(e)), av.cols());
  }
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "SegmentSum");
  if (rg) {
    auto seg = std::make_shared<std::vector<int32_t>>(std::move(segment_ids));
    node(id).backward = [this, id, a, seg]() {
      const Tensor& g = node(id).grad;
      Tensor& ga = grad_buf(a);
      for (size_t e = 0; e < seg->size(); ++e) {
        kernels::AddInto(ga.row(static_cast<int64_t>(e)), g.row((*seg)[e]),
                         g.cols());
      }
    };
  }
  return id;
}

VarId Tape::SegmentSoftmax(VarId scores, std::vector<int32_t> segment_ids,
                           int64_t num_segments) {
  const Tensor& sv = val(scores);
  DGNN_CHECK_EQ(sv.cols(), 1);
  DGNN_CHECK_EQ(static_cast<int64_t>(segment_ids.size()), sv.rows());
  // Per-segment max for numerical stability.
  std::vector<float> seg_max(static_cast<size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (size_t e = 0; e < segment_ids.size(); ++e) {
    const int32_t s = segment_ids[e];
    DGNN_DCHECK_GE(s, 0);
    DGNN_DCHECK_LT(s, num_segments);
    seg_max[static_cast<size_t>(s)] =
        std::max(seg_max[static_cast<size_t>(s)], sv.at(static_cast<int64_t>(e), 0));
  }
  std::vector<float> seg_sum(static_cast<size_t>(num_segments), 0.0f);
  Tensor out(sv.rows(), 1);
  for (size_t e = 0; e < segment_ids.size(); ++e) {
    const int32_t s = segment_ids[e];
    const float ex =
        std::exp(sv.at(static_cast<int64_t>(e), 0) - seg_max[static_cast<size_t>(s)]);
    out.at(static_cast<int64_t>(e), 0) = ex;
    seg_sum[static_cast<size_t>(s)] += ex;
  }
  for (size_t e = 0; e < segment_ids.size(); ++e) {
    const int32_t s = segment_ids[e];
    out.at(static_cast<int64_t>(e), 0) /= seg_sum[static_cast<size_t>(s)];
  }
  bool rg = requires_grad(scores);
  VarId id = Emit(std::move(out), rg, nullptr, "SegmentSoftmax");
  if (rg) {
    auto seg = std::make_shared<std::vector<int32_t>>(std::move(segment_ids));
    node(id).backward = [this, id, scores, seg, num_segments]() {
      const Tensor& g = node(id).grad;
      const Tensor& y = node(id).value;
      Tensor& gs = grad_buf(scores);
      std::vector<float> seg_dot(static_cast<size_t>(num_segments), 0.0f);
      for (size_t e = 0; e < seg->size(); ++e) {
        seg_dot[static_cast<size_t>((*seg)[e])] +=
            g.at(static_cast<int64_t>(e), 0) * y.at(static_cast<int64_t>(e), 0);
      }
      for (size_t e = 0; e < seg->size(); ++e) {
        const float ye = y.at(static_cast<int64_t>(e), 0);
        gs.at(static_cast<int64_t>(e), 0) +=
            ye * (g.at(static_cast<int64_t>(e), 0) -
                  seg_dot[static_cast<size_t>((*seg)[e])]);
      }
    };
  }
  return id;
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

VarId Tape::ConcatCols(const std::vector<VarId>& xs) {
  DGNN_CHECK(!xs.empty());
  const int64_t rows = val(xs[0]).rows();
  int64_t total_cols = 0;
  bool rg = false;
  for (VarId x : xs) {
    DGNN_CHECK_EQ(val(x).rows(), rows);
    total_cols += val(x).cols();
    rg = rg || requires_grad(x);
  }
  Tensor out(rows, total_cols);
  int64_t offset = 0;
  for (VarId x : xs) {
    const Tensor& xv = val(x);
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(xv.row(r), xv.row(r) + xv.cols(), out.row(r) + offset);
    }
    offset += xv.cols();
  }
  VarId id = Emit(std::move(out), rg, nullptr, "ConcatCols");
  if (rg) {
    std::vector<VarId> inputs = xs;
    node(id).backward = [this, id, inputs]() {
      const Tensor& g = node(id).grad;
      int64_t off = 0;
      for (VarId x : inputs) {
        const int64_t c = val(x).cols();
        if (requires_grad(x)) {
          Tensor& gx = grad_buf(x);
          for (int64_t r = 0; r < g.rows(); ++r) {
            kernels::AddInto(gx.row(r), g.row(r) + off, c);
          }
        }
        off += c;
      }
    };
  }
  return id;
}

VarId Tape::ConcatRows(const std::vector<VarId>& xs) {
  DGNN_CHECK(!xs.empty());
  const int64_t cols = val(xs[0]).cols();
  int64_t total_rows = 0;
  bool rg = false;
  for (VarId x : xs) {
    DGNN_CHECK_EQ(val(x).cols(), cols);
    total_rows += val(x).rows();
    rg = rg || requires_grad(x);
  }
  Tensor out(total_rows, cols);
  int64_t offset = 0;
  for (VarId x : xs) {
    const Tensor& xv = val(x);
    std::copy(xv.data(), xv.data() + xv.size(), out.row(offset));
    offset += xv.rows();
  }
  VarId id = Emit(std::move(out), rg, nullptr, "ConcatRows");
  if (rg) {
    std::vector<VarId> inputs = xs;
    node(id).backward = [this, id, inputs]() {
      const Tensor& g = node(id).grad;
      int64_t off = 0;
      for (VarId x : inputs) {
        const int64_t r = val(x).rows();
        if (requires_grad(x)) {
          kernels::AddInto(grad_buf(x).data(), g.row(off), r * g.cols());
        }
        off += r;
      }
    };
  }
  return id;
}

VarId Tape::Col(VarId a, int64_t c) {
  const Tensor& av = val(a);
  DGNN_CHECK_GE(c, 0);
  DGNN_CHECK_LT(c, av.cols());
  Tensor out(av.rows(), 1);
  for (int64_t r = 0; r < av.rows(); ++r) out.at(r, 0) = av.at(r, c);
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "Col");
  if (rg) {
    node(id).backward = [this, id, a, c]() {
      const Tensor& g = node(id).grad;
      Tensor& ga = grad_buf(a);
      for (int64_t r = 0; r < g.rows(); ++r) ga.at(r, c) += g.at(r, 0);
    };
  }
  return id;
}

VarId Tape::SliceRows(VarId a, int64_t begin, int64_t count) {
  const Tensor& av = val(a);
  DGNN_CHECK_GE(begin, 0);
  DGNN_CHECK_LE(begin + count, av.rows());
  Tensor out(count, av.cols());
  std::copy(av.row(begin), av.row(begin) + count * av.cols(), out.data());
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "SliceRows");
  if (rg) {
    node(id).backward = [this, id, a, begin]() {
      const Tensor& g = node(id).grad;
      kernels::AddInto(grad_buf(a).row(begin), g.data(), g.size());
    };
  }
  return id;
}

// ---------------------------------------------------------------------------
// Reductions, norms, losses
// ---------------------------------------------------------------------------

VarId Tape::LayerNorm(VarId a, VarId gamma, VarId beta, float eps) {
  const Tensor& x = val(a);
  const Tensor& gm = val(gamma);
  const Tensor& bt = val(beta);
  DGNN_CHECK_EQ(gm.rows(), 1);
  DGNN_CHECK_EQ(gm.cols(), x.cols());
  DGNN_CHECK_EQ(bt.rows(), 1);
  DGNN_CHECK_EQ(bt.cols(), x.cols());
  const int64_t n = x.rows();
  const int64_t d = x.cols();

  auto xhat = std::make_shared<Tensor>(n, d);
  auto inv_std = std::make_shared<std::vector<float>>(static_cast<size_t>(n));
  Tensor out(n, d);
  util::ParallelFor(0, n, kRowGrain, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      const float* xr = x.row(r);
      float mean = 0.0f;
      for (int64_t c = 0; c < d; ++c) mean += xr[c];
      mean /= static_cast<float>(d);
      float var = 0.0f;
      for (int64_t c = 0; c < d; ++c) {
        const float dv = xr[c] - mean;
        var += dv * dv;
      }
      var /= static_cast<float>(d);
      const float istd = 1.0f / std::sqrt(var + eps);
      (*inv_std)[static_cast<size_t>(r)] = istd;
      float* hr = xhat->row(r);
      float* orow = out.row(r);
      for (int64_t c = 0; c < d; ++c) {
        hr[c] = (xr[c] - mean) * istd;
        orow[c] = gm.at(0, c) * hr[c] + bt.at(0, c);
      }
    }
  });
  bool rg = requires_grad(a) || requires_grad(gamma) || requires_grad(beta);
  VarId id = Emit(std::move(out), rg, nullptr, "LayerNorm");
  if (rg) {
    node(id).backward = [this, id, a, gamma, beta, xhat, inv_std]() {
      const Tensor& g = node(id).grad;
      const Tensor& gm2 = val(gamma);
      const int64_t n2 = g.rows();
      const int64_t d2 = g.cols();
      if (requires_grad(gamma)) {
        Tensor& gg = grad_buf(gamma);
        for (int64_t r = 0; r < n2; ++r) {
          const float* grow = g.row(r);
          const float* hrow = xhat->row(r);
          for (int64_t c = 0; c < d2; ++c) gg.at(0, c) += grow[c] * hrow[c];
        }
      }
      if (requires_grad(beta)) {
        Tensor& gb = grad_buf(beta);
        for (int64_t r = 0; r < n2; ++r) {
          const float* grow = g.row(r);
          for (int64_t c = 0; c < d2; ++c) gb.at(0, c) += grow[c];
        }
      }
      if (requires_grad(a)) {
        Tensor& ga = grad_buf(a);
        for (int64_t r = 0; r < n2; ++r) {
          const float* grow = g.row(r);
          const float* hrow = xhat->row(r);
          // dxhat = dy * gamma
          float mean_dxhat = 0.0f;
          float mean_dxhat_h = 0.0f;
          for (int64_t c = 0; c < d2; ++c) {
            const float dxh = grow[c] * gm2.at(0, c);
            mean_dxhat += dxh;
            mean_dxhat_h += dxh * hrow[c];
          }
          mean_dxhat /= static_cast<float>(d2);
          mean_dxhat_h /= static_cast<float>(d2);
          const float istd = (*inv_std)[static_cast<size_t>(r)];
          float* garow = ga.row(r);
          for (int64_t c = 0; c < d2; ++c) {
            const float dxh = grow[c] * gm2.at(0, c);
            garow[c] += istd * (dxh - mean_dxhat - hrow[c] * mean_dxhat_h);
          }
        }
      }
    };
  }
  return id;
}

VarId Tape::FeatureNorm(VarId a, VarId gamma, VarId beta, float eps) {
  const Tensor& x = val(a);
  const Tensor& gm = val(gamma);
  const Tensor& bt = val(beta);
  DGNN_CHECK_EQ(gm.rows(), 1);
  DGNN_CHECK_EQ(gm.cols(), x.cols());
  DGNN_CHECK_EQ(bt.rows(), 1);
  DGNN_CHECK_EQ(bt.cols(), x.cols());
  const int64_t n = x.rows();
  const int64_t d = x.cols();
  DGNN_CHECK_GT(n, 0);

  auto xhat = std::make_shared<Tensor>(n, d);
  auto inv_std = std::make_shared<std::vector<float>>(static_cast<size_t>(d));
  Tensor out(n, d);
  for (int64_t c = 0; c < d; ++c) {
    float mean = 0.0f;
    for (int64_t r = 0; r < n; ++r) mean += x.at(r, c);
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (int64_t r = 0; r < n; ++r) {
      const float dv = x.at(r, c) - mean;
      var += dv * dv;
    }
    var /= static_cast<float>(n);
    const float istd = 1.0f / std::sqrt(var + eps);
    (*inv_std)[static_cast<size_t>(c)] = istd;
    for (int64_t r = 0; r < n; ++r) {
      const float h = (x.at(r, c) - mean) * istd;
      xhat->at(r, c) = h;
      out.at(r, c) = gm.at(0, c) * h + bt.at(0, c);
    }
  }
  bool rg = requires_grad(a) || requires_grad(gamma) || requires_grad(beta);
  VarId id = Emit(std::move(out), rg, nullptr, "FeatureNorm");
  if (rg) {
    node(id).backward = [this, id, a, gamma, beta, xhat, inv_std]() {
      const Tensor& g = node(id).grad;
      const Tensor& gm2 = val(gamma);
      const int64_t n2 = g.rows();
      const int64_t d2 = g.cols();
      for (int64_t c = 0; c < d2; ++c) {
        float sum_g = 0.0f;
        float sum_gh = 0.0f;
        for (int64_t r = 0; r < n2; ++r) {
          sum_g += g.at(r, c);
          sum_gh += g.at(r, c) * xhat->at(r, c);
        }
        if (requires_grad(gamma)) grad_buf(gamma).at(0, c) += sum_gh;
        if (requires_grad(beta)) grad_buf(beta).at(0, c) += sum_g;
        if (requires_grad(a)) {
          Tensor& ga = grad_buf(a);
          const float istd = (*inv_std)[static_cast<size_t>(c)];
          const float gc = gm2.at(0, c);
          const float mean_g = sum_g / static_cast<float>(n2);
          const float mean_gh = sum_gh / static_cast<float>(n2);
          for (int64_t r = 0; r < n2; ++r) {
            ga.at(r, c) += gc * istd *
                           (g.at(r, c) - mean_g -
                            xhat->at(r, c) * mean_gh);
          }
        }
      }
    };
  }
  return id;
}

VarId Tape::RowL2Normalize(VarId a, float eps) {
  const Tensor& x = val(a);
  const int64_t n = x.rows();
  const int64_t d = x.cols();
  auto inv_norm = std::make_shared<std::vector<float>>(static_cast<size_t>(n));
  Tensor out(n, d);
  for (int64_t r = 0; r < n; ++r) {
    const float* xr = x.row(r);
    float sq = 0.0f;
    for (int64_t c = 0; c < d; ++c) sq += xr[c] * xr[c];
    const float inv = 1.0f / std::sqrt(sq + eps);
    (*inv_norm)[static_cast<size_t>(r)] = inv;
    float* orow = out.row(r);
    for (int64_t c = 0; c < d; ++c) orow[c] = xr[c] * inv;
  }
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "RowL2Normalize");
  if (rg) {
    node(id).backward = [this, id, a, inv_norm]() {
      const Tensor& g = node(id).grad;
      const Tensor& y = node(id).value;
      Tensor& ga = grad_buf(a);
      for (int64_t r = 0; r < g.rows(); ++r) {
        const float* grow = g.row(r);
        const float* yrow = y.row(r);
        float dot = 0.0f;
        for (int64_t c = 0; c < g.cols(); ++c) dot += grow[c] * yrow[c];
        const float inv = (*inv_norm)[static_cast<size_t>(r)];
        float* garow = ga.row(r);
        for (int64_t c = 0; c < g.cols(); ++c) {
          garow[c] += inv * (grow[c] - yrow[c] * dot);
        }
      }
    };
  }
  return id;
}

VarId Tape::RowDot(VarId a, VarId b) {
  const Tensor& av = val(a);
  const Tensor& bv = val(b);
  DGNN_CHECK(av.SameShape(bv));
  Tensor out(av.rows(), 1);
  util::ParallelFor(0, av.rows(), kRowGrain, [&](int64_t rb, int64_t re) {
    for (int64_t r = rb; r < re; ++r) {
      out.at(r, 0) = kernels::Dot(av.row(r), bv.row(r), av.cols());
    }
  });
  bool rg = requires_grad(a) || requires_grad(b);
  VarId id = Emit(std::move(out), rg, nullptr, "RowDot");
  if (rg) {
    node(id).backward = [this, id, a, b]() {
      const Tensor& g = node(id).grad;
      // grad_buf materializes lazily — resolve outside the parallel region.
      Tensor* ga = requires_grad(a) ? &grad_buf(a) : nullptr;
      Tensor* gb = requires_grad(b) ? &grad_buf(b) : nullptr;
      util::ParallelFor(0, g.rows(), kRowGrain, [&](int64_t rb, int64_t re) {
        if (ga != nullptr) {
          const Tensor& bv2 = val(b);
          for (int64_t r = rb; r < re; ++r) {
            kernels::AxpyInto(ga->row(r), g.at(r, 0), bv2.row(r),
                              ga->cols());
          }
        }
        if (gb != nullptr) {
          const Tensor& av2 = val(a);
          for (int64_t r = rb; r < re; ++r) {
            kernels::AxpyInto(gb->row(r), g.at(r, 0), av2.row(r),
                              gb->cols());
          }
        }
      });
    };
  }
  return id;
}

VarId Tape::RowSoftmax(VarId a) {
  const Tensor& x = val(a);
  Tensor out(x.rows(), x.cols());
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.row(r);
    float mx = xr[0];
    for (int64_t c = 1; c < x.cols(); ++c) mx = std::max(mx, xr[c]);
    float sum = 0.0f;
    float* orow = out.row(r);
    for (int64_t c = 0; c < x.cols(); ++c) {
      orow[c] = std::exp(xr[c] - mx);
      sum += orow[c];
    }
    for (int64_t c = 0; c < x.cols(); ++c) orow[c] /= sum;
  }
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "RowSoftmax");
  if (rg) {
    node(id).backward = [this, id, a]() {
      const Tensor& g = node(id).grad;
      const Tensor& y = node(id).value;
      Tensor& ga = grad_buf(a);
      for (int64_t r = 0; r < g.rows(); ++r) {
        const float* grow = g.row(r);
        const float* yrow = y.row(r);
        float dot = 0.0f;
        for (int64_t c = 0; c < g.cols(); ++c) dot += grow[c] * yrow[c];
        float* garow = ga.row(r);
        for (int64_t c = 0; c < g.cols(); ++c) {
          garow[c] += yrow[c] * (grow[c] - dot);
        }
      }
    };
  }
  return id;
}

VarId Tape::SumAll(VarId a) {
  const Tensor& av = val(a);
  float s = 0.0f;
  for (int64_t i = 0; i < av.size(); ++i) s += av.data()[i];
  bool rg = requires_grad(a);
  VarId id = Emit(Tensor::Scalar(s), rg, nullptr, "SumAll");
  if (rg) {
    node(id).backward = [this, id, a]() {
      const float g = node(id).grad.scalar();
      Tensor& ga = grad_buf(a);
      for (int64_t i = 0; i < ga.size(); ++i) ga.data()[i] += g;
    };
  }
  return id;
}

VarId Tape::MeanAll(VarId a) {
  const int64_t n = val(a).size();
  DGNN_CHECK_GT(n, 0);
  return ScalarMul(SumAll(a), 1.0f / static_cast<float>(n));
}

VarId Tape::MeanRows(VarId a) {
  const Tensor& av = val(a);
  DGNN_CHECK_GT(av.rows(), 0);
  Tensor out(1, av.cols());
  for (int64_t r = 0; r < av.rows(); ++r) {
    const float* ar = av.row(r);
    for (int64_t c = 0; c < av.cols(); ++c) out.at(0, c) += ar[c];
  }
  const float inv = 1.0f / static_cast<float>(av.rows());
  out.Scale(inv);
  bool rg = requires_grad(a);
  VarId id = Emit(std::move(out), rg, nullptr, "MeanRows");
  if (rg) {
    node(id).backward = [this, id, a, inv]() {
      const Tensor& g = node(id).grad;
      Tensor& ga = grad_buf(a);
      for (int64_t r = 0; r < ga.rows(); ++r) {
        float* garow = ga.row(r);
        for (int64_t c = 0; c < ga.cols(); ++c) {
          garow[c] += g.at(0, c) * inv;
        }
      }
    };
  }
  return id;
}

VarId Tape::L2(VarId a) {
  const Tensor& av = val(a);
  bool rg = requires_grad(a);
  VarId id = Emit(Tensor::Scalar(av.SquaredL2()), rg, nullptr, "L2");
  if (rg) {
    node(id).backward = [this, id, a]() {
      const float g = node(id).grad.scalar();
      const Tensor& x = val(a);
      Tensor& ga = grad_buf(a);
      for (int64_t i = 0; i < ga.size(); ++i) {
        ga.data()[i] += 2.0f * g * x.data()[i];
      }
    };
  }
  return id;
}

VarId Tape::BprLoss(VarId pos, VarId neg) {
  const Tensor& pv = val(pos);
  const Tensor& nv = val(neg);
  DGNN_CHECK(pv.SameShape(nv));
  DGNN_CHECK_EQ(pv.cols(), 1);
  const int64_t n = pv.rows();
  DGNN_CHECK_GT(n, 0);
  float loss = 0.0f;
  for (int64_t r = 0; r < n; ++r) {
    loss += StableSoftplus(nv.at(r, 0) - pv.at(r, 0));
  }
  loss /= static_cast<float>(n);
  bool rg = requires_grad(pos) || requires_grad(neg);
  VarId id = Emit(Tensor::Scalar(loss), rg, nullptr, "BprLoss");
  if (rg) {
    node(id).backward = [this, id, pos, neg, n]() {
      const float g = node(id).grad.scalar() / static_cast<float>(n);
      const Tensor& pv2 = val(pos);
      const Tensor& nv2 = val(neg);
      Tensor* gp = requires_grad(pos) ? &grad_buf(pos) : nullptr;
      Tensor* gn = requires_grad(neg) ? &grad_buf(neg) : nullptr;
      util::ParallelFor(0, n, kRowGrain, [&](int64_t rb, int64_t re) {
        for (int64_t r = rb; r < re; ++r) {
          const float s = SigmoidF(nv2.at(r, 0) - pv2.at(r, 0));
          if (gp != nullptr) gp->at(r, 0) -= g * s;
          if (gn != nullptr) gn->at(r, 0) += g * s;
        }
      });
    };
  }
  return id;
}

}  // namespace dgnn::ag
