#include "ag/grad_check.h"

#include <cmath>

#include "util/strings.h"

namespace dgnn::ag {

GradCheckResult CheckGradients(const std::vector<Parameter*>& params,
                               const std::function<VarId(Tape&)>& build,
                               float h, float atol, float rtol) {
  GradCheckResult result;
  result.ok = true;

  // Analytic gradients.
  for (Parameter* p : params) p->grad.Zero();
  {
    Tape tape;
    VarId loss = build(tape);
    tape.Backward(loss);
  }
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (Parameter* p : params) analytic.push_back(p->grad);

  auto eval = [&]() -> float {
    Tape tape;
    VarId loss = build(tape);
    return tape.val(loss).scalar();
  };

  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + h;
      const float f_plus = eval();
      p->value.data()[i] = orig - h;
      const float f_minus = eval();
      p->value.data()[i] = orig;
      const float numeric = (f_plus - f_minus) / (2.0f * h);
      const float a = analytic[pi].data()[i];
      const float abs_err = std::fabs(a - numeric);
      const float rel_err = abs_err / (std::fabs(numeric) + 1e-8f);
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > atol + rtol * std::fabs(numeric)) {
        result.ok = false;
        if (result.detail.empty()) {
          result.detail = util::StrFormat(
              "param '%s' entry %lld: analytic=%g numeric=%g",
              p->name.c_str(), static_cast<long long>(i),
              static_cast<double>(a), static_cast<double>(numeric));
        }
      }
    }
  }
  // Leave analytic gradients cleared for subsequent use.
  for (Parameter* p : params) p->grad.Zero();
  return result;
}

}  // namespace dgnn::ag
