// Reverse-mode automatic differentiation over dense float32 matrices,
// plus the sparse/graph ops (SpMM, gather/scatter, segment softmax) that
// GNN message passing needs and that off-the-shelf C++ tensor libraries
// lack.
//
// Usage pattern (one Tape per forward/backward pass):
//
//   ag::Tape t;
//   ag::VarId e = t.Param(&embeddings);         // leaf bound to a Parameter
//   ag::VarId h = t.LeakyRelu(t.SpMM(&adj, &adj_t, e), 0.2f);
//   ag::VarId loss = t.BprLoss(pos_scores, neg_scores);
//   t.Backward(loss);                           // grads land in Parameters
//
// All ops allocate a new node; values are computed eagerly so intermediate
// results can be inspected. Gradients never flow into CSR values or index
// vectors. CSR pointers passed to SpMM must outlive the Tape.

#ifndef DGNN_AG_TAPE_H_
#define DGNN_AG_TAPE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ag/tensor.h"
#include "graph/csr.h"
#include "util/rng.h"

namespace dgnn::ag {

using VarId = int32_t;

// A trainable tensor with its gradient accumulator and optimizer slots.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  // Adam moment estimates, sized lazily by the optimizer.
  Tensor adam_m;
  Tensor adam_v;
  // Optional L2-SP anchor: when non-empty, decoupled weight decay pulls
  // the value toward this tensor instead of toward zero. Used by modules
  // whose initialization encodes a meaningful prior (e.g. the memory
  // encoder's near-identity transforms).
  Tensor anchor;
  // Per-parameter learning-rate multiplier. Adam's normalized steps move
  // every parameter ~lr per iteration regardless of its natural scale;
  // small structural parameters (gates, factor masks) live on scales of
  // 1/|M| and need proportionally smaller steps than embeddings.
  float lr_scale = 1.0f;
};

// Owns and creates Parameters; one store per model.
class ParamStore {
 public:
  ParamStore() = default;
  ParamStore(const ParamStore&) = delete;
  ParamStore& operator=(const ParamStore&) = delete;

  Parameter* Create(const std::string& name, Tensor init);
  Parameter* CreateXavier(const std::string& name, int64_t rows,
                          int64_t cols, util::Rng& rng);
  Parameter* CreateZero(const std::string& name, int64_t rows, int64_t cols);
  Parameter* CreateFull(const std::string& name, int64_t rows, int64_t cols,
                        float value);

  void ZeroGrad();
  int64_t TotalParameterCount() const;
  // nullptr when absent.
  Parameter* Find(const std::string& name);

  const std::vector<std::unique_ptr<Parameter>>& params() const {
    return params_;
  }

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // ----- graph construction ---------------------------------------------

  // Leaf holding a constant (no gradient).
  VarId Constant(Tensor value);
  // Leaf bound to a Parameter; Backward accumulates into p->grad.
  VarId Param(Parameter* p);

  const Tensor& val(VarId id) const;
  // Gradient of a node (zeros until Backward has run through it).
  const Tensor& grad(VarId id) const;
  bool requires_grad(VarId id) const;
  // Name of the op that produced the node ("MatMul", "SpMM", ...); used
  // by the non-finite fail-fast diagnostics (ag/diagnostics.h) to
  // pinpoint the first op that emitted a NaN/Inf.
  const char* op_name(VarId id) const;
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

  // Runs reverse-mode accumulation from a 1x1 root.
  void Backward(VarId root);

  // Drops all nodes; Parameters keep their values and grads.
  void Reset();

  // ----- elementwise & linear algebra ------------------------------------

  // a @ b with optional transposes.
  VarId MatMul(VarId a, VarId b, bool trans_a = false, bool trans_b = false);
  VarId Add(VarId a, VarId b);
  VarId Sub(VarId a, VarId b);
  // Sum of same-shaped vars.
  VarId AddN(const std::vector<VarId>& xs);
  // a (n x d) + row vector b (1 x d) broadcast over rows.
  VarId AddRowBroadcast(VarId a, VarId b);
  VarId Mul(VarId a, VarId b);
  // a (n x d) * row vector b (1 x d), broadcast over rows.
  VarId MulRowBroadcast(VarId a, VarId b);
  // a (n x d) scaled per-row by s (n x 1).
  VarId RowScale(VarId a, VarId s);
  VarId ScalarMul(VarId a, float c);
  // a scaled by a differentiable 1 x 1 scalar variable s.
  VarId MulScalarVar(VarId a, VarId s);
  VarId LeakyRelu(VarId a, float negative_slope);
  VarId Relu(VarId a);
  VarId Sigmoid(VarId a);
  VarId Tanh(VarId a);
  VarId Exp(VarId a);
  // Natural log of (a + eps); inputs must keep a + eps > 0.
  VarId Log(VarId a, float eps = 0.0f);
  VarId Dropout(VarId a, float rate, util::Rng& rng, bool training);

  // ----- graph / sparse ops ----------------------------------------------

  // adj (n x m CSR) times b (m x d). adj_t must be adj.Transposed() — the
  // backward pass needs it; pass nullptr only if no gradient will flow.
  VarId SpMM(const graph::CsrMatrix* adj, const graph::CsrMatrix* adj_t,
             VarId b);
  // out[i] = a[index[i]]; backward scatter-adds.
  VarId GatherRows(VarId a, std::vector<int32_t> index);
  // Sums edge rows into segment rows: out[seg[e]] += a[e].
  VarId SegmentSum(VarId a, std::vector<int32_t> segment_ids,
                   int64_t num_segments);
  // Softmax of scores (E x 1) within each segment. Empty segments are fine.
  VarId SegmentSoftmax(VarId scores, std::vector<int32_t> segment_ids,
                       int64_t num_segments);

  // ----- shape ops --------------------------------------------------------

  VarId ConcatCols(const std::vector<VarId>& xs);
  VarId ConcatRows(const std::vector<VarId>& xs);
  // Column c of a as an (n x 1) var.
  VarId Col(VarId a, int64_t c);
  // Contiguous row range [begin, begin + count) of a.
  VarId SliceRows(VarId a, int64_t begin, int64_t count);

  // ----- reductions, norms, losses ----------------------------------------

  // Per-row layer normalization with learned affine (gamma, beta are 1 x d).
  VarId LayerNorm(VarId a, VarId gamma, VarId beta, float eps = 1e-5f);
  // Per-feature (column) standardization across rows with learned affine —
  // full-batch BatchNorm. Unlike LayerNorm it preserves the relative
  // magnitudes of different rows within each feature, so degree/popularity
  // signals survive into dot-product scores.
  VarId FeatureNorm(VarId a, VarId gamma, VarId beta, float eps = 1e-5f);
  // Rows scaled to unit L2 norm (rows with tiny norm pass through scaled by
  // 1/eps-capped factor).
  VarId RowL2Normalize(VarId a, float eps = 1e-12f);
  // Per-row dot product of same-shaped a, b -> (n x 1).
  VarId RowDot(VarId a, VarId b);
  // Softmax along each row.
  VarId RowSoftmax(VarId a);
  VarId SumAll(VarId a);
  VarId MeanAll(VarId a);
  // Column-wise mean -> (1 x d).
  VarId MeanRows(VarId a);
  // Sum of squares -> scalar. The L2 regularizer.
  VarId L2(VarId a);
  // mean(softplus(neg - pos)): the BPR pairwise ranking loss (Eq. 11),
  // numerically stable.
  VarId BprLoss(VarId pos, VarId neg);

 private:
  struct Node {
    Tensor value;
    Tensor grad;  // allocated lazily
    bool requires_grad = false;
    Parameter* param = nullptr;
    std::function<void()> backward;  // may be empty for leaves
    // Producing op; string literals only (never freed).
    const char* op = "leaf";
  };

  VarId Emit(Tensor value, bool requires_grad, std::function<void()> backward,
             const char* op);
  Node& node(VarId id);
  const Node& node(VarId id) const;
  // Gradient accumulator of `id`, allocated on first use.
  Tensor& grad_buf(VarId id);
  // Fail-fast numerics check (ag::CheckNumericsEnabled): scans the
  // node's value (gradient=false) or accumulated gradient
  // (gradient=true); on the first NaN/Inf, emits a run-log `anomaly`
  // event naming the producing op and CHECK-fails with the same message.
  void CheckFinite(VarId id, bool gradient) const;

  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace dgnn::ag

#endif  // DGNN_AG_TAPE_H_
