#include "ag/serialize.h"

#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "util/failpoint.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/run_log.h"

namespace dgnn::ag {
namespace {

constexpr char kMagicV1[8] = {'D', 'G', 'N', 'N', 'P', 'A', 'R', '1'};
constexpr char kMagicV2[8] = {'D', 'G', 'N', 'N', 'P', 'A', 'R', '2'};
constexpr uint32_t kFlagHasOptimizer = 1u;

using util::Status;

// `checkpoint` run-log event: one per save/load attempt, success or not,
// so a run's log records exactly which parameter files it produced and
// consumed (and how a restore failed, if it did).
void LogCheckpointEvent(const char* action, const std::string& path,
                        const ParamStore& store, const Status& status) {
  if (!runlog::Active()) return;
  util::JsonObject o;
  o.Set("action", action)
      .Set("path", path)
      .Set("num_params", static_cast<int64_t>(store.params().size()))
      .Set("total_values", store.TotalParameterCount())
      .Set("ok", status.ok());
  if (!status.ok()) o.Set("error", status.ToString());
  runlog::Emit("checkpoint", o);
}

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void AppendPod(std::string& out, T value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendFloats(std::string& out, const float* data, int64_t n) {
  out.append(reinterpret_cast<const char*>(data),
             static_cast<size_t>(n) * sizeof(float));
}

// Sequential reader over the in-memory file image; every Read is
// bounds-checked so a truncated file fails cleanly instead of reading
// past the buffer.
struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool Read(void* out, size_t n) {
    if (n > size - pos) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }

  template <typename T>
  bool ReadPod(T* value) {
    return Read(value, sizeof(T));
  }
};

void AppendParamRecords(std::string& out, const ParamStore& store,
                        bool with_moments) {
  AppendPod<uint64_t>(out, store.params().size());
  for (const auto& p : store.params()) {
    AppendPod<uint32_t>(out, static_cast<uint32_t>(p->name.size()));
    out.append(p->name);
    AppendPod<int64_t>(out, p->value.rows());
    AppendPod<int64_t>(out, p->value.cols());
    AppendFloats(out, p->value.data(), p->value.size());
    if (with_moments) {
      AppendFloats(out, p->adam_m.data(), p->adam_m.size());
      AppendFloats(out, p->adam_v.data(), p->adam_v.size());
    }
  }
}

// One fully-validated parameter record waiting for commit.
struct StagedRecord {
  Parameter* param;
  std::vector<float> values;
  std::vector<float> adam_m;  // only when the file carries moments
  std::vector<float> adam_v;
};

// Parses `count` records from the cursor, validating names and shapes
// against `store`. Nothing in `store` is touched; the caller commits the
// staged records only after the whole file checks out.
Status ParseRecords(Cursor& cur, ParamStore& store, bool with_moments,
                    const std::string& path,
                    std::vector<StagedRecord>* staged) {
  uint64_t count = 0;
  if (!cur.ReadPod(&count)) {
    return Status::InvalidArgument("truncated header in " + path);
  }
  staged->reserve(count);
  std::set<std::string> seen_names;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!cur.ReadPod(&name_len) || name_len > 4096) {
      return Status::InvalidArgument("bad parameter name length");
    }
    std::string name(name_len, '\0');
    if (!cur.Read(name.data(), name_len)) {
      return Status::InvalidArgument("truncated parameter record");
    }
    int64_t rows = 0;
    int64_t cols = 0;
    if (!cur.ReadPod(&rows) || !cur.ReadPod(&cols) || rows < 0 || cols < 0) {
      return Status::InvalidArgument("truncated parameter record for '" +
                                     name + "'");
    }
    if (!seen_names.insert(name).second) {
      return Status::InvalidArgument("duplicate parameter record for '" +
                                     name + "' in " + path);
    }
    Parameter* p = store.Find(name);
    if (p == nullptr) {
      return Status::InvalidArgument("unknown parameter in file: '" + name +
                                     "'");
    }
    if (p->value.rows() != rows || p->value.cols() != cols) {
      return Status::FailedPrecondition(
          "shape mismatch for '" + name + "': file has " +
          std::to_string(rows) + "x" + std::to_string(cols) +
          ", model has " + p->value.ShapeString());
    }
    StagedRecord rec;
    rec.param = p;
    const size_t n = static_cast<size_t>(p->value.size());
    rec.values.resize(n);
    if (!cur.Read(rec.values.data(), n * sizeof(float))) {
      return Status::InvalidArgument("truncated values for '" + name + "'");
    }
    if (with_moments) {
      rec.adam_m.resize(n);
      rec.adam_v.resize(n);
      if (!cur.Read(rec.adam_m.data(), n * sizeof(float)) ||
          !cur.Read(rec.adam_v.data(), n * sizeof(float))) {
        return Status::InvalidArgument("truncated optimizer moments for '" +
                                       name + "'");
      }
    }
    staged->push_back(std::move(rec));
  }
  return Status::Ok();
}

void CommitRecords(std::vector<StagedRecord>& staged, bool restore_moments) {
  for (StagedRecord& rec : staged) {
    std::memcpy(rec.param->value.data(), rec.values.data(),
                rec.values.size() * sizeof(float));
    if (restore_moments && !rec.adam_m.empty()) {
      Parameter* p = rec.param;
      if (p->adam_m.empty()) {
        p->adam_m = Tensor(p->value.rows(), p->value.cols());
        p->adam_v = Tensor(p->value.rows(), p->value.cols());
      }
      std::memcpy(p->adam_m.data(), rec.adam_m.data(),
                  rec.adam_m.size() * sizeof(float));
      std::memcpy(p->adam_v.data(), rec.adam_v.data(),
                  rec.adam_v.size() * sizeof(float));
    }
  }
}

Status SaveParametersImpl(const ParamStore& store, const std::string& path) {
  DGNN_FAILPOINT("params.save");
  std::string buf;
  buf.append(kMagicV1, sizeof(kMagicV1));
  AppendParamRecords(buf, store, /*with_moments=*/false);
  return fs::AtomicWriteFile(path, buf);
}

Status LoadParametersImpl(ParamStore& store, const std::string& path) {
  DGNN_FAILPOINT("params.load");
  auto contents = fs::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& buf = contents.value();
  Cursor cur{buf.data(), buf.size()};
  char magic[8];
  if (!cur.Read(magic, sizeof(magic))) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  bool with_moments = false;
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    // v2: verify the trailing checksum, then skip the optimizer/trainer
    // header — evaluate/serve only need the values.
    if (buf.size() < sizeof(magic) + sizeof(uint64_t)) {
      return Status::InvalidArgument("truncated header in " + path);
    }
    uint64_t stored = 0;
    std::memcpy(&stored, buf.data() + buf.size() - sizeof(uint64_t),
                sizeof(uint64_t));
    if (Fnv1a(buf.data(), buf.size() - sizeof(uint64_t)) != stored) {
      return Status::InvalidArgument("checksum mismatch in " + path);
    }
    cur.size = buf.size() - sizeof(uint64_t);
    uint32_t flags = 0;
    int64_t adam_step = 0;
    uint64_t blob_len = 0;
    if (!cur.ReadPod(&flags) || !cur.ReadPod(&adam_step) ||
        !cur.ReadPod(&blob_len) || blob_len > cur.size - cur.pos) {
      return Status::InvalidArgument("truncated header in " + path);
    }
    cur.pos += blob_len;
    with_moments = (flags & kFlagHasOptimizer) != 0;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  std::vector<StagedRecord> staged;
  DGNN_RETURN_IF_ERROR(
      ParseRecords(cur, store, with_moments, path, &staged));
  if (cur.pos != cur.size) {
    return Status::InvalidArgument(
        "trailing garbage after " + std::to_string(staged.size()) +
        " parameter records in " + path);
  }
  CommitRecords(staged, /*restore_moments=*/false);
  return Status::Ok();
}

Status SaveCheckpointImpl(const ParamStore& store,
                          const CheckpointState& state,
                          const std::string& path) {
  DGNN_FAILPOINT("checkpoint.save");
  // The moments flag requires every parameter to actually HAVE moments
  // (they are lazily created by the first optimizer step); a checkpoint
  // taken before any step saves values only.
  bool moments_ready = state.has_optimizer;
  for (const auto& p : store.params()) {
    if (p->adam_m.empty()) moments_ready = false;
  }
  std::string buf;
  buf.append(kMagicV2, sizeof(kMagicV2));
  AppendPod<uint32_t>(buf, moments_ready ? kFlagHasOptimizer : 0u);
  AppendPod<int64_t>(buf, state.adam_step);
  AppendPod<uint64_t>(buf, state.trainer_state.size());
  buf.append(state.trainer_state);
  AppendParamRecords(buf, store, moments_ready);
  AppendPod<uint64_t>(buf, Fnv1a(buf.data(), buf.size()));
  return fs::AtomicWriteFile(path, buf);
}

Status LoadCheckpointImpl(ParamStore& store, CheckpointState* state,
                          const std::string& path) {
  DGNN_FAILPOINT("checkpoint.load");
  auto contents = fs::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& buf = contents.value();
  Cursor cur{buf.data(), buf.size()};
  char magic[8];
  if (!cur.Read(magic, sizeof(magic))) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    return Status::FailedPrecondition(
        path + " is a v1 parameter file (no optimizer/trainer state); "
               "cannot resume from it");
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (buf.size() < sizeof(magic) + sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated header in " + path);
  }
  uint64_t stored = 0;
  std::memcpy(&stored, buf.data() + buf.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (Fnv1a(buf.data(), buf.size() - sizeof(uint64_t)) != stored) {
    return Status::InvalidArgument("checksum mismatch in " + path);
  }
  cur.size = buf.size() - sizeof(uint64_t);
  uint32_t flags = 0;
  int64_t adam_step = 0;
  uint64_t blob_len = 0;
  if (!cur.ReadPod(&flags) || !cur.ReadPod(&adam_step) ||
      !cur.ReadPod(&blob_len) || blob_len > cur.size - cur.pos) {
    return Status::InvalidArgument("truncated header in " + path);
  }
  std::string trainer_state(buf.data() + cur.pos, blob_len);
  cur.pos += blob_len;
  const bool with_moments = (flags & kFlagHasOptimizer) != 0;
  std::vector<StagedRecord> staged;
  DGNN_RETURN_IF_ERROR(
      ParseRecords(cur, store, with_moments, path, &staged));
  if (cur.pos != cur.size) {
    return Status::InvalidArgument(
        "trailing garbage after " + std::to_string(staged.size()) +
        " parameter records in " + path);
  }
  // Commit: file fully validated.
  CommitRecords(staged, /*restore_moments=*/with_moments);
  state->has_optimizer = with_moments;
  state->adam_step = adam_step;
  state->trainer_state = std::move(trainer_state);
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const ParamStore& store, const std::string& path) {
  Status status = SaveParametersImpl(store, path);
  LogCheckpointEvent("save", path, store, status);
  return status;
}

Status LoadParameters(ParamStore& store, const std::string& path) {
  Status status = LoadParametersImpl(store, path);
  LogCheckpointEvent("load", path, store, status);
  return status;
}

Status SaveCheckpoint(const ParamStore& store, const CheckpointState& state,
                      const std::string& path) {
  Status status = SaveCheckpointImpl(store, state, path);
  LogCheckpointEvent("save_checkpoint", path, store, status);
  return status;
}

Status LoadCheckpoint(ParamStore& store, CheckpointState* state,
                      const std::string& path) {
  Status status = LoadCheckpointImpl(store, state, path);
  LogCheckpointEvent("load_checkpoint", path, store, status);
  return status;
}

}  // namespace dgnn::ag
