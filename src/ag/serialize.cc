#include "ag/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/run_log.h"

namespace dgnn::ag {
namespace {

constexpr char kMagic[8] = {'D', 'G', 'N', 'N', 'P', 'A', 'R', '1'};

using util::Status;

// `checkpoint` run-log event: one per save/load attempt, success or not,
// so a run's log records exactly which parameter files it produced and
// consumed (and how a restore failed, if it did).
void LogCheckpointEvent(const char* action, const std::string& path,
                        const ParamStore& store, const Status& status) {
  if (!runlog::Active()) return;
  util::JsonObject o;
  o.Set("action", action)
      .Set("path", path)
      .Set("num_params", static_cast<int64_t>(store.params().size()))
      .Set("total_values", store.TotalParameterCount())
      .Set("ok", status.ok());
  if (!status.ok()) o.Set("error", status.ToString());
  runlog::Emit("checkpoint", o);
}

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

Status SaveParametersImpl(const ParamStore& store, const std::string& path) {
  // Write-to-temp + atomic rename: a crash mid-save leaves the previous
  // checkpoint at `path` intact; the half-written temp file is inert and
  // overwritten by the next save.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::NotFound("cannot open for writing: " + tmp_path);
    }
    out.write(kMagic, sizeof(kMagic));
    WritePod<uint64_t>(out, store.params().size());
    for (const auto& p : store.params()) {
      WritePod<uint32_t>(out, static_cast<uint32_t>(p->name.size()));
      out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
      WritePod<int64_t>(out, p->value.rows());
      WritePod<int64_t>(out, p->value.cols());
      out.write(reinterpret_cast<const char*>(p->value.data()),
                static_cast<std::streamsize>(p->value.size() *
                                             sizeof(float)));
    }
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp_path.c_str());
      return Status::Internal("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot rename " + tmp_path + " to " + path);
  }
  return Status::Ok();
}

Status LoadParametersImpl(ParamStore& store, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::InvalidArgument("truncated header in " + path);
  }
  // Stage every record into scratch buffers first; `store` is only
  // touched after the whole file validated, so a truncated or corrupt
  // checkpoint never leaves a half-loaded model behind.
  struct StagedRecord {
    Parameter* param;
    std::vector<float> values;
  };
  std::vector<StagedRecord> staged;
  staged.reserve(count);
  std::set<std::string> seen_names;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Status::InvalidArgument("bad parameter name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    int64_t rows = 0;
    int64_t cols = 0;
    if (!in.good() || !ReadPod(in, &rows) || !ReadPod(in, &cols) ||
        rows < 0 || cols < 0) {
      return Status::InvalidArgument("truncated parameter record for '" +
                                     name + "'");
    }
    if (!seen_names.insert(name).second) {
      return Status::InvalidArgument("duplicate parameter record for '" +
                                     name + "' in " + path);
    }
    Parameter* p = store.Find(name);
    if (p == nullptr) {
      return Status::InvalidArgument("unknown parameter in file: '" + name +
                                     "'");
    }
    if (p->value.rows() != rows || p->value.cols() != cols) {
      return Status::FailedPrecondition(
          "shape mismatch for '" + name + "': file has " +
          std::to_string(rows) + "x" + std::to_string(cols) +
          ", model has " + p->value.ShapeString());
    }
    StagedRecord rec;
    rec.param = p;
    rec.values.resize(static_cast<size_t>(p->value.size()));
    in.read(reinterpret_cast<char*>(rec.values.data()),
            static_cast<std::streamsize>(rec.values.size() * sizeof(float)));
    if (!in.good()) {
      return Status::InvalidArgument("truncated values for '" + name + "'");
    }
    staged.push_back(std::move(rec));
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument(
        "trailing garbage after " + std::to_string(count) +
        " parameter records in " + path);
  }
  // Commit: the file is fully validated, now mutate the live store.
  for (StagedRecord& rec : staged) {
    std::memcpy(rec.param->value.data(), rec.values.data(),
                rec.values.size() * sizeof(float));
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const ParamStore& store, const std::string& path) {
  Status status = SaveParametersImpl(store, path);
  LogCheckpointEvent("save", path, store, status);
  return status;
}

Status LoadParameters(ParamStore& store, const std::string& path) {
  Status status = LoadParametersImpl(store, path);
  LogCheckpointEvent("load", path, store, status);
  return status;
}

}  // namespace dgnn::ag
