#include "ag/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace dgnn::ag {
namespace {

constexpr char kMagic[8] = {'D', 'G', 'N', 'N', 'P', 'A', 'R', '1'};

using util::Status;

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveParameters(const ParamStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint64_t>(out, store.params().size());
  for (const auto& p : store.params()) {
    WritePod<uint32_t>(out, static_cast<uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WritePod<int64_t>(out, p->value.rows());
    WritePod<int64_t>(out, p->value.cols());
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() *
                                           sizeof(float)));
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Status LoadParameters(ParamStore& store, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::InvalidArgument("truncated header in " + path);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Status::InvalidArgument("bad parameter name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    int64_t rows = 0;
    int64_t cols = 0;
    if (!in.good() || !ReadPod(in, &rows) || !ReadPod(in, &cols) ||
        rows < 0 || cols < 0) {
      return Status::InvalidArgument("truncated parameter record for '" +
                                     name + "'");
    }
    Parameter* p = store.Find(name);
    if (p == nullptr) {
      return Status::InvalidArgument("unknown parameter in file: '" + name +
                                     "'");
    }
    if (p->value.rows() != rows || p->value.cols() != cols) {
      return Status::FailedPrecondition(
          "shape mismatch for '" + name + "': file has " +
          std::to_string(rows) + "x" + std::to_string(cols) +
          ", model has " + p->value.ShapeString());
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!in.good()) {
      return Status::InvalidArgument("truncated values for '" + name + "'");
    }
  }
  return Status::Ok();
}

}  // namespace dgnn::ag
