// Dense row-major float32 matrix — the only tensor shape the library needs.
// Vectors are 1 x d or n x 1 matrices; scalars are 1 x 1.

#ifndef DGNN_AG_TENSOR_H_
#define DGNN_AG_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace dgnn::ag {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0f) {
    DGNN_CHECK_GE(rows, 0);
    DGNN_CHECK_GE(cols, 0);
  }

  static Tensor FromVector(int64_t rows, int64_t cols,
                           std::vector<float> values);
  static Tensor Scalar(float v);
  static Tensor Full(int64_t rows, int64_t cols, float v);

  // Xavier/Glorot uniform initialization, the default for embeddings and
  // weight matrices across the library.
  static Tensor XavierUniform(int64_t rows, int64_t cols, util::Rng& rng);
  static Tensor GaussianInit(int64_t rows, int64_t cols, float stddev,
                             util::Rng& rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    DGNN_DCHECK_GE(r, 0);
    DGNN_DCHECK_LT(r, rows_);
    DGNN_DCHECK_GE(c, 0);
    DGNN_DCHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    return const_cast<Tensor*>(this)->at(r, c);
  }

  float* row(int64_t r) { return data_.data() + r * cols_; }
  const float* row(int64_t r) const { return data_.data() + r * cols_; }

  // The value of a 1 x 1 tensor.
  float scalar() const {
    DGNN_CHECK_EQ(size(), 1);
    return data_[0];
  }

  void Fill(float v);
  void Zero() { Fill(0.0f); }

  // this += other (same shape).
  void Add(const Tensor& other);
  // this += alpha * other.
  void Axpy(float alpha, const Tensor& other);
  void Scale(float alpha);

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Sum of squares of all entries.
  float SquaredL2() const;
  // Largest |a - b| entry; both tensors must share a shape.
  float MaxAbsDiff(const Tensor& other) const;

  std::string ShapeString() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace dgnn::ag

#endif  // DGNN_AG_TENSOR_H_
