// Parameter persistence: save/load a ParamStore to a single binary file so
// trained models survive process restarts (examples train once, serve
// many times).
//
// Two on-disk formats, distinguished by magic:
//
//   v1 "DGNNPAR1" — parameters only (SaveParameters writes this):
//     magic "DGNNPAR1"
//     uint64 param_count
//     per parameter:
//       uint32 name_len, name bytes
//       int64 rows, int64 cols
//       float32 values (row-major)
//
//   v2 "DGNNPAR2" — full training checkpoint (SaveCheckpoint writes this):
//     magic "DGNNPAR2"
//     uint32 flags                  (bit 0: per-parameter Adam moments)
//     int64  adam_step              (optimizer bias-correction clock)
//     uint64 trainer_state_len, trainer_state bytes
//       — an opaque blob owned by the trainer (sampler RNG state, epoch /
//         batch cursor, best-metric bookkeeping); serialize.cc does not
//         interpret it, so the trainer can evolve it independently
//     uint64 param_count
//     per parameter:
//       uint32 name_len, name bytes
//       int64 rows, int64 cols
//       float32 values
//       [flags bit 0] float32 adam_m values, float32 adam_v values
//     uint64 fnv1a checksum over every preceding byte
//       — a torn or bit-flipped checkpoint is rejected up front instead
//         of resuming training from silently wrong moments
//
// Back compatibility: LoadParameters accepts BOTH formats (a v2 file's
// moments and trainer blob are simply ignored), so `dgnn_cli evaluate` /
// `serve` work directly on checkpoints. LoadCheckpoint requires v2.
//
// Durability guarantees (both formats, via fs::AtomicWriteFile):
//  - writes go to "<path>.tmp", are fsync'd, rename(2)'d over `path`, and
//    the parent directory is fsync'd — a crash at any instant leaves
//    `path` holding either the complete old file or the complete new one.
//  - loads validate the ENTIRE file (magic, checksum for v2, every
//    record's name/shape/values, no duplicate parameter names, no
//    trailing bytes) into scratch buffers before mutating the store; a
//    failed load leaves the model exactly as it was.
//
// Failpoint sites: params.save, params.load, checkpoint.save,
// checkpoint.load (evaluated before any I/O).

#ifndef DGNN_AG_SERIALIZE_H_
#define DGNN_AG_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "ag/tape.h"
#include "util/status.h"

namespace dgnn::ag {

util::Status SaveParameters(const ParamStore& store,
                            const std::string& path);

// Loads values into an ALREADY-CONSTRUCTED store: every parameter in the
// file must exist in `store` with a matching shape (construct the model
// with the same config first). Parameters missing from the file are left
// untouched; unknown names in the file are an error. Accepts v1 and v2
// files; v2 optimizer state is ignored.
util::Status LoadParameters(ParamStore& store, const std::string& path);

// Everything a v2 checkpoint carries beyond raw parameter values.
struct CheckpointState {
  // When true, per-parameter Adam moments are saved/restored and
  // adam_step is meaningful.
  bool has_optimizer = false;
  int64_t adam_step = 0;
  // Opaque trainer-owned blob (see trainer.cc for its layout).
  std::string trainer_state;
};

// Writes a v2 checkpoint: parameters, Adam moments (when
// state.has_optimizer and the moments exist), and the trainer blob.
util::Status SaveCheckpoint(const ParamStore& store,
                            const CheckpointState& state,
                            const std::string& path);

// Restores a v2 checkpoint into `store` (values + moments, fully
// validated before commit) and fills `*state`. v1 files are rejected
// with FailedPrecondition — they cannot resume training.
util::Status LoadCheckpoint(ParamStore& store, CheckpointState* state,
                            const std::string& path);

}  // namespace dgnn::ag

#endif  // DGNN_AG_SERIALIZE_H_
