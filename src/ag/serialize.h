// Parameter persistence: save/load a ParamStore to a single binary file so
// trained models survive process restarts (examples train once, serve
// many times). Format (little-endian):
//
//   magic "DGNNPAR1"
//   uint64 param_count
//   per parameter:
//     uint32 name_len, name bytes
//     int64 rows, int64 cols
//     float32 values (row-major)
//
// Optimizer state (Adam moments) is not persisted — loading yields a
// model ready for inference or fresh fine-tuning.
//
// Durability guarantees:
//  - SaveParameters writes to "<path>.tmp" and atomically rename(2)s it
//    over `path`, so a crash mid-save never destroys the previous good
//    checkpoint — `path` always holds either the old or the new file,
//    never a torn mix.
//  - LoadParameters validates the ENTIRE file (magic, every record's
//    name/shape/values, no duplicate parameter names, no trailing bytes
//    after the declared record count) into scratch buffers before
//    mutating the store; a failed load leaves the model exactly as it
//    was.

#ifndef DGNN_AG_SERIALIZE_H_
#define DGNN_AG_SERIALIZE_H_

#include <string>

#include "ag/tape.h"
#include "util/status.h"

namespace dgnn::ag {

util::Status SaveParameters(const ParamStore& store,
                            const std::string& path);

// Loads values into an ALREADY-CONSTRUCTED store: every parameter in the
// file must exist in `store` with a matching shape (construct the model
// with the same config first). Parameters missing from the file are left
// untouched; unknown names in the file are an error.
util::Status LoadParameters(ParamStore& store, const std::string& path);

}  // namespace dgnn::ag

#endif  // DGNN_AG_SERIALIZE_H_
