#include "ag/diagnostics.h"

#include <atomic>
#include <cmath>

#include "util/json.h"

namespace dgnn::ag {
namespace {

std::atomic<bool> g_check_numerics{false};

}  // namespace

bool CheckNumericsEnabled() {
  return g_check_numerics.load(std::memory_order_relaxed);
}

void SetCheckNumerics(bool on) {
  g_check_numerics.store(on, std::memory_order_relaxed);
}

int64_t FirstNonFinite(const Tensor& t) {
  const float* data = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(data[i])) return i;
  }
  return -1;
}

std::vector<GradStats> CollectGradStats(const ParamStore& store) {
  std::vector<GradStats> out;
  out.reserve(store.params().size());
  for (const auto& p : store.params()) {
    GradStats s;
    s.name = p->name;
    s.size = p->grad.size();
    double sum_sq = 0.0;
    double max_abs = 0.0;
    int64_t zeros = 0;
    bool finite = true;
    const float* g = p->grad.data();
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      const double gi = static_cast<double>(g[i]);
      if (!std::isfinite(gi)) finite = false;
      sum_sq += gi * gi;
      const double a = std::fabs(gi);
      if (a > max_abs) max_abs = a;
      if (g[i] == 0.0f) ++zeros;
    }
    s.grad_l2 = std::sqrt(sum_sq);
    s.grad_max_abs = max_abs;
    s.grad_zero_frac =
        s.size > 0 ? static_cast<double>(zeros) / static_cast<double>(s.size)
                   : 0.0;
    s.finite = finite && std::isfinite(s.grad_l2);
    out.push_back(std::move(s));
  }
  return out;
}

void AttachUpdateRatios(std::vector<GradStats>* stats,
                        const std::vector<ParamUpdateStats>& updates) {
  if (stats == nullptr || stats->size() != updates.size()) return;
  constexpr double kEps = 1e-12;
  for (size_t i = 0; i < updates.size(); ++i) {
    (*stats)[i].update_ratio =
        updates[i].update_l2 / (updates[i].value_l2 + kEps);
  }
}

std::string GradStatsJsonArray(const std::vector<GradStats>& stats) {
  std::string out = "[";
  for (const GradStats& s : stats) {
    if (out.size() > 1) out += ',';
    util::JsonObject o;
    o.Set("name", s.name)
        .Set("size", s.size)
        .Set("grad_l2", s.grad_l2)
        .Set("grad_max_abs", s.grad_max_abs)
        .Set("grad_zero_frac", s.grad_zero_frac)
        .Set("update_ratio", s.update_ratio)
        .Set("finite", s.finite);
    out += o.Build();
  }
  out += ']';
  return out;
}

}  // namespace dgnn::ag
