// Adam optimizer over a ParamStore (the paper trains every model with Adam).

#ifndef DGNN_AG_ADAM_H_
#define DGNN_AG_ADAM_H_

#include <vector>

#include "ag/diagnostics.h"
#include "ag/tape.h"

namespace dgnn::ag {

struct AdamConfig {
  float learning_rate = 0.01f;  // the paper's setting
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  // Decoupled weight decay (AdamW style); the BPR trainer usually applies
  // L2 on the touched embedding rows instead and leaves this at 0.
  float weight_decay = 0.0f;
};

class AdamOptimizer {
 public:
  AdamOptimizer(ParamStore* store, AdamConfig config);

  // Applies one update from the accumulated gradients, then zeroes them.
  // When `stats` is non-null it receives, per parameter in store order,
  // the L2 norm of the applied update and of the value before the update
  // (the run log's update/param ratio diagnostic). The instrumented pass
  // runs serially but computes bit-identical values to the parallel one,
  // so sampling it every grad_stats_every batches never perturbs
  // training.
  void Step(std::vector<ParamUpdateStats>* stats = nullptr);

  int64_t step_count() const { return step_; }
  // Restores the bias-correction clock when resuming from a checkpoint;
  // must match the step at which the saved moments were captured.
  void set_step_count(int64_t step) { step_ = step; }
  AdamConfig& config() { return config_; }

 private:
  ParamStore* store_;
  AdamConfig config_;
  int64_t step_ = 0;
};

}  // namespace dgnn::ag

#endif  // DGNN_AG_ADAM_H_
