// Numerics diagnostics for the autodiff layer: per-named-parameter
// gradient statistics (the payload of the run log's `grad_stats` event)
// and the opt-in non-finite fail-fast mode the tape consults.
//
// Both features follow the telemetry cost discipline: disabled by
// default, and the only cost a disabled run pays is one relaxed atomic
// load per tape op (check-numerics) or nothing at all (grad stats are
// collected only when the trainer's grad_stats_every fires).
//
// Check-numerics semantics: with SetCheckNumerics(true), every tape op
// scans its freshly computed value, and Backward scans each node's
// accumulated gradient before propagating through it. The first NaN/Inf
// found emits a run-log `anomaly` event naming the producing op (and the
// parameter, for leaves) and then CHECK-fails with the same message —
// the run dies at the op that corrupted it instead of diverging epochs
// later.

#ifndef DGNN_AG_DIAGNOSTICS_H_
#define DGNN_AG_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "ag/tape.h"

namespace dgnn::ag {

// Global fail-fast switch; reads are a single relaxed atomic load.
bool CheckNumericsEnabled();
void SetCheckNumerics(bool on);

// Index of the first non-finite element of `t`, or -1 when all elements
// are finite (or the tensor is empty).
int64_t FirstNonFinite(const Tensor& t);

// Per-parameter gradient health, computed from the accumulated grads
// after Backward and BEFORE the optimizer step zeroes them.
struct GradStats {
  std::string name;
  int64_t size = 0;          // element count
  double grad_l2 = 0.0;      // ||g||_2
  double grad_max_abs = 0.0; // max_i |g_i|
  double grad_zero_frac = 0.0;  // fraction of exactly-zero entries
  // ||Adam update|| / (||param|| + eps): the classic "are my steps a
  // sane fraction of the weights" signal (~1e-3 is healthy; ~1 means
  // the parameter is being rewritten every step). Filled in by
  // AttachUpdateRatios after the optimizer step; 0 until then.
  double update_ratio = 0.0;
  // False when the gradient contains NaN/Inf.
  bool finite = true;
};

// One entry per parameter, in store order.
std::vector<GradStats> CollectGradStats(const ParamStore& store);

// Result of one optimizer step, parallel to the store's parameter order:
// L2 norms of the applied update and of the parameter value before it.
struct ParamUpdateStats {
  double update_l2 = 0.0;
  double value_l2 = 0.0;
};

// Fills stats[i].update_ratio from updates[i]; the two vectors must both
// be in store order (CollectGradStats + AdamOptimizer::Step(&updates)).
void AttachUpdateRatios(std::vector<GradStats>* stats,
                        const std::vector<ParamUpdateStats>& updates);

// Serializes stats as a JSON array of objects (the `params` field of the
// `grad_stats` run-log event).
std::string GradStatsJsonArray(const std::vector<GradStats>& stats);

}  // namespace dgnn::ag

#endif  // DGNN_AG_DIAGNOSTICS_H_
