#include "ag/adam.h"

#include <cmath>

#include "util/thread_pool.h"

namespace dgnn::ag {
namespace {

// Elements per ParallelFor chunk; fixed so the update (elementwise, no
// cross-element reductions) is bit-identical for any thread count.
constexpr int64_t kAdamGrain = 4096;

}  // namespace

AdamOptimizer::AdamOptimizer(ParamStore* store, AdamConfig config)
    : store_(store), config_(config) {
  DGNN_CHECK(store != nullptr);
}

void AdamOptimizer::Step(std::vector<ParamUpdateStats>* stats) {
  ++step_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  if (stats != nullptr) {
    stats->clear();
    stats->reserve(store_->params().size());
  }
  for (auto& p : store_->params()) {
    if (p->adam_m.empty()) {
      p->adam_m = Tensor(p->value.rows(), p->value.cols());
      p->adam_v = Tensor(p->value.rows(), p->value.cols());
    }
    float* val = p->value.data();
    float* grad = p->grad.data();
    float* m = p->adam_m.data();
    float* v = p->adam_v.data();
    const float* anchor = p->anchor.empty() ? nullptr : p->anchor.data();
    const float lr = config_.learning_rate * p->lr_scale;
    const int64_t n = p->value.size();
    if (stats == nullptr) {
      util::ParallelFor(0, n, kAdamGrain, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          const float g = grad[i];
          m[i] = b1 * m[i] + (1.0f - b1) * g;
          v[i] = b2 * v[i] + (1.0f - b2) * g * g;
          const float mhat = m[i] / bias1;
          const float vhat = v[i] / bias2;
          // Decoupled weight decay, toward the L2-SP anchor when present.
          const float decay_target = anchor != nullptr ? anchor[i] : 0.0f;
          val[i] -= lr * (mhat / (std::sqrt(vhat) + config_.epsilon) +
                          config_.weight_decay * (val[i] - decay_target));
        }
      });
    } else {
      // Instrumented pass: same elementwise formula (the applied delta is
      // bit-identical to the parallel path), plus double-precision norm
      // accumulation of the update and the pre-update value.
      double upd_sq = 0.0;
      double val_sq = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float g = grad[i];
        m[i] = b1 * m[i] + (1.0f - b1) * g;
        v[i] = b2 * v[i] + (1.0f - b2) * g * g;
        const float mhat = m[i] / bias1;
        const float vhat = v[i] / bias2;
        const float decay_target = anchor != nullptr ? anchor[i] : 0.0f;
        const float delta =
            lr * (mhat / (std::sqrt(vhat) + config_.epsilon) +
                  config_.weight_decay * (val[i] - decay_target));
        val_sq += static_cast<double>(val[i]) * static_cast<double>(val[i]);
        upd_sq += static_cast<double>(delta) * static_cast<double>(delta);
        val[i] -= delta;
      }
      stats->push_back({std::sqrt(upd_sq), std::sqrt(val_sq)});
    }
  }
  store_->ZeroGrad();
}

}  // namespace dgnn::ag
