// Numerical gradient checking: compares reverse-mode gradients against
// central finite differences. Used by the op tests and available to model
// tests to validate whole forward graphs.

#ifndef DGNN_AG_GRAD_CHECK_H_
#define DGNN_AG_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "ag/tape.h"

namespace dgnn::ag {

struct GradCheckResult {
  bool ok = false;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  std::string detail;  // first offending entry, when !ok
};

// `build` must construct a fresh forward graph on the given tape, using the
// current values of `params`, and return the scalar loss VarId. The checker
// perturbs every entry of every parameter (central differences, step `h`)
// and compares the numerical derivative against the analytic gradient.
// An entry passes if |analytic - numeric| <= atol + rtol * |numeric|.
GradCheckResult CheckGradients(
    const std::vector<Parameter*>& params,
    const std::function<VarId(Tape&)>& build, float h = 1e-3f,
    float atol = 2e-3f, float rtol = 2e-2f);

}  // namespace dgnn::ag

#endif  // DGNN_AG_GRAD_CHECK_H_
