// DgnnModel — the full Disentangled Graph Neural Network of Section IV:
// memory-augmented heterogeneous message passing (Eqs. 3-6), layer
// normalization with self-propagation (Eq. 7), cross-layer aggregation
// (Eq. 8) and social recalibration at scoring time (Eqs. 9-10). Trains
// under the shared BPR trainer (Eq. 11) like every baseline.

#ifndef DGNN_CORE_DGNN_MODEL_H_
#define DGNN_CORE_DGNN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/dgnn_config.h"
#include "core/memory_encoder.h"
#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::core {

class DgnnModel : public models::RecModel {
 public:
  // Keeps a reference to `graph`; it must outlive the model.
  DgnnModel(const graph::HeteroGraph& graph, DgnnConfig config);

  const std::string& name() const override { return name_; }
  models::ForwardResult Forward(ag::Tape& tape, bool training) override;
  ag::ParamStore& params() override { return params_; }
  // Final embedding width after the Eq. 8 cross-layer aggregation.
  int64_t embedding_dim() const override {
    return config_.cross_layer == DgnnConfig::CrossLayer::kConcat
               ? config_.embedding_dim * (config_.num_layers + 1)
               : config_.embedding_dim;
  }

  const DgnnConfig& config() const { return config_; }

  // Embedding-table handles for the relational pre-training stage
  // (core/pretrain.h). relation_embedding() is null when the model runs
  // without item relations.
  ag::Parameter* user_embedding() { return user_emb_; }
  ag::Parameter* item_embedding() { return item_emb_; }
  ag::Parameter* relation_embedding() { return rel_emb_; }

  // --- Fig. 10 case-study hooks -------------------------------------------

  // The learned memory attention vectors [eta(H^(L)[u], m)]_m of every
  // user, for the social (user<-user) and the interaction (user<-item)
  // encoders of the last layer. Rows are users, columns memory units.
  struct UserGateSnapshot {
    ag::Tensor social_gates;       // empty when the model runs without S
    ag::Tensor interaction_gates;
  };
  UserGateSnapshot ComputeUserGates();

 private:
  struct LayerModules {
    std::unique_ptr<MemoryEncoder> user_from_user;
    std::unique_ptr<MemoryEncoder> user_from_item;
    std::unique_ptr<MemoryEncoder> item_from_user;
    std::unique_ptr<MemoryEncoder> item_from_rel;
    std::unique_ptr<MemoryEncoder> rel_from_item;
    std::unique_ptr<MemoryEncoder> self_user;
    std::unique_ptr<MemoryEncoder> self_item;
    std::unique_ptr<MemoryEncoder> self_rel;
    // Eq. 7 affine layer-norm parameters per node type.
    ag::Parameter* ln_gamma_user = nullptr;
    ag::Parameter* ln_beta_user = nullptr;
    ag::Parameter* ln_gamma_item = nullptr;
    ag::Parameter* ln_beta_item = nullptr;
    ag::Parameter* ln_gamma_rel = nullptr;
    ag::Parameter* ln_beta_rel = nullptr;
  };

  // Applies Eq. 7 to one node type's aggregated messages.
  ag::VarId NormalizeAndSelfPropagate(ag::Tape& tape, ag::VarId aggregated,
                                      ag::VarId h_prev,
                                      const MemoryEncoder& self_encoder,
                                      ag::Parameter* gamma,
                                      ag::Parameter* beta) const;

  const graph::HeteroGraph* graph_;
  DgnnConfig config_;
  std::string name_;
  ag::ParamStore params_;
  bool has_relations_;  // T present and enabled

  // Initial embeddings H^(0).
  ag::Parameter* user_emb_;
  ag::Parameter* item_emb_;
  ag::Parameter* rel_emb_;

  std::vector<LayerModules> layers_;

  // Eq. 8 cross-layer layer-norm parameters.
  ag::Parameter* final_ln_gamma_user_;
  ag::Parameter* final_ln_beta_user_;
  ag::Parameter* final_ln_gamma_item_;
  ag::Parameter* final_ln_beta_item_;

  // Normalized adjacency views (Eqs. 4-6) and their transposes, owned so
  // SpMM pointers stay valid.
  graph::CsrMatrix user_social_adj_, user_social_adj_t_;
  graph::CsrMatrix user_item_adj_, user_item_adj_t_;
  graph::CsrMatrix item_user_adj_, item_user_adj_t_;
  graph::CsrMatrix item_rel_adj_, item_rel_adj_t_;
  graph::CsrMatrix rel_item_adj_, rel_item_adj_t_;
  graph::CsrMatrix tau_adj_, tau_adj_t_;  // Eq. 9 recalibration operator

  // Set by Forward for ComputeUserGates: the user embedding var feeding the
  // last layer on the tape most recently used.
  ag::VarId last_layer_user_input_ = -1;
};

}  // namespace dgnn::core

#endif  // DGNN_CORE_DGNN_MODEL_H_
