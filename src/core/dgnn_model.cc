#include "core/dgnn_model.h"

#include <cmath>

#include "util/strings.h"
#include "util/thread_pool.h"

namespace dgnn::core {
namespace {

ag::Parameter* MakeBeta(ag::ParamStore* store, const std::string& name,
                        int64_t dim) {
  return store->CreateZero(name, 1, dim);
}

}  // namespace

DgnnModel::DgnnModel(const graph::HeteroGraph& graph, DgnnConfig config)
    : graph_(&graph), config_(config) {
  name_ = "DGNN" + config_.VariantSuffix();
  has_relations_ =
      config_.use_item_relations && graph.num_relations() > 0;
  const int64_t d = config_.embedding_dim;
  util::Rng rng(config_.seed);

  const float emb_std = config_.embedding_init_stddev;
  user_emb_ = params_.Create(
      "user_emb", ag::Tensor::GaussianInit(graph.num_users(), d, emb_std, rng));
  item_emb_ = params_.Create(
      "item_emb", ag::Tensor::GaussianInit(graph.num_items(), d, emb_std, rng));
  rel_emb_ = has_relations_
                 ? params_.Create("rel_emb",
                                  ag::Tensor::GaussianInit(
                                      graph.num_relations(), d, emb_std, rng))
                 : nullptr;

  // --- normalized adjacency views (Eqs. 4-6) -----------------------------
  user_item_adj_ = graph.user_item();
  item_user_adj_ = graph.item_user();
  if (config_.use_sym_norm) {
    user_item_adj_.SymNormalize();
    item_user_adj_.SymNormalize();
    if (config_.use_social) {
      user_social_adj_ = graph.social();
      user_social_adj_.SymNormalize();
      user_social_adj_t_ = user_social_adj_.Transposed();
    }
    if (has_relations_) {
      item_rel_adj_ = graph.item_rel();
      item_rel_adj_.SymNormalize();
      item_rel_adj_t_ = item_rel_adj_.Transposed();
      rel_item_adj_ = graph.rel_item();
      rel_item_adj_.SymNormalize();
      rel_item_adj_t_ = rel_item_adj_.Transposed();
    }
  } else {
    if (config_.use_social) {
      user_social_adj_ = graph.social();
      // Joint 1/(|N_S| + |N_Y|) normalization over both user-side edge
      // sets.
      graph::HeteroGraph::JointRowNormalize(user_social_adj_,
                                            user_item_adj_);
      user_social_adj_t_ = user_social_adj_.Transposed();
    } else {
      user_item_adj_.RowNormalize();
    }
    if (has_relations_) {
      item_rel_adj_ = graph.item_rel();
      graph::HeteroGraph::JointRowNormalize(item_user_adj_, item_rel_adj_);
      item_rel_adj_t_ = item_rel_adj_.Transposed();
      rel_item_adj_ = graph.rel_item();
      rel_item_adj_.RowNormalize();
      rel_item_adj_t_ = rel_item_adj_.Transposed();
    } else {
      item_user_adj_.RowNormalize();
    }
  }
  user_item_adj_t_ = user_item_adj_.Transposed();
  item_user_adj_t_ = item_user_adj_.Transposed();

  if (config_.use_social && config_.use_social_recalibration) {
    tau_adj_ = graph.SocialRecalibration();
    tau_adj_t_ = tau_adj_.Transposed();
  }

  // --- per-layer modules ---------------------------------------------------
  auto make_encoder = [&](const std::string& name) {
    return std::make_unique<MemoryEncoder>(
        name, d, config_.num_memory_units, config_.gate_side,
        config_.leaky_slope, &params_, &rng, config_.use_memory_encoder,
        config_.transform_kind, config_.encoder_lr_scale,
        config_.gate_lr_scale);
  };
  layers_.resize(static_cast<size_t>(config_.num_layers));
  for (int l = 0; l < config_.num_layers; ++l) {
    LayerModules& mods = layers_[static_cast<size_t>(l)];
    const std::string p = util::StrFormat("l%d.", l);
    if (config_.use_social) mods.user_from_user = make_encoder(p + "u_from_u");
    mods.user_from_item = make_encoder(p + "u_from_i");
    mods.item_from_user = make_encoder(p + "i_from_u");
    if (has_relations_) {
      mods.item_from_rel = make_encoder(p + "i_from_r");
      mods.rel_from_item = make_encoder(p + "r_from_i");
      mods.self_rel = make_encoder(p + "self_r");
    }
    mods.self_user = make_encoder(p + "self_u");
    mods.self_item = make_encoder(p + "self_i");
    if (config_.use_layer_norm) {
      mods.ln_gamma_user = params_.CreateFull(p + "ln_g_u", 1, d,
                                              config_.layer_norm_gain_init);
      mods.ln_beta_user = MakeBeta(&params_, p + "ln_b_u", d);
      mods.ln_gamma_item = params_.CreateFull(p + "ln_g_i", 1, d,
                                              config_.layer_norm_gain_init);
      mods.ln_beta_item = MakeBeta(&params_, p + "ln_b_i", d);
      if (has_relations_) {
        mods.ln_gamma_rel = params_.CreateFull(p + "ln_g_r", 1, d,
                                               config_.layer_norm_gain_init);
        mods.ln_beta_rel = MakeBeta(&params_, p + "ln_b_r", d);
      }
    }
  }

  const int64_t final_dim = embedding_dim();
  if (config_.use_layer_norm && config_.use_final_layer_norm) {
    final_ln_gamma_user_ =
        params_.CreateFull("final_ln_g_u", 1, final_dim, 1.0f);
    final_ln_beta_user_ = MakeBeta(&params_, "final_ln_b_u", final_dim);
    final_ln_gamma_item_ =
        params_.CreateFull("final_ln_g_i", 1, final_dim, 1.0f);
    final_ln_beta_item_ = MakeBeta(&params_, "final_ln_b_i", final_dim);
  } else {
    final_ln_gamma_user_ = nullptr;
    final_ln_beta_user_ = nullptr;
    final_ln_gamma_item_ = nullptr;
    final_ln_beta_item_ = nullptr;
  }
}

ag::VarId DgnnModel::NormalizeAndSelfPropagate(
    ag::Tape& tape, ag::VarId aggregated, ag::VarId h_prev,
    const MemoryEncoder& self_encoder, ag::Parameter* gamma,
    ag::Parameter* beta) const {
  ag::VarId normalized = aggregated;
  if (config_.use_layer_norm) {
    switch (config_.norm_kind) {
      case DgnnConfig::NormKind::kFeature:
        normalized = tape.FeatureNorm(aggregated, tape.Param(gamma),
                                      tape.Param(beta));
        break;
      case DgnnConfig::NormKind::kLayer:
        normalized = tape.LayerNorm(aggregated, tape.Param(gamma),
                                    tape.Param(beta));
        break;
      case DgnnConfig::NormKind::kRms: {
        // Per-feature RMS rescale with the statistic treated as constant
        // (stop-gradient): y = x .* (gamma / rms(x_col)) + beta.
        const ag::Tensor& v = tape.val(aggregated);
        ag::Tensor inv_rms(1, v.cols());
        // Per-column statistic: each column is reduced serially by one
        // chunk (fixed grain), so the result is thread-count independent.
        util::ParallelFor(0, v.cols(), 8, [&](int64_t cb, int64_t ce) {
          for (int64_t c = cb; c < ce; ++c) {
            float sq = 0.0f;
            for (int64_t r = 0; r < v.rows(); ++r) {
              sq += v.at(r, c) * v.at(r, c);
            }
            inv_rms.at(0, c) =
                1.0f / std::sqrt(sq / static_cast<float>(v.rows()) + 1e-8f);
          }
        });
        ag::VarId scale = tape.Mul(tape.Param(gamma),
                                   tape.Constant(std::move(inv_rms)));
        normalized = tape.AddRowBroadcast(
            tape.MulRowBroadcast(aggregated, scale), tape.Param(beta));
        break;
      }
    }
  }
  ag::VarId activated =
      config_.use_eq7_activation
          ? tape.LeakyRelu(normalized, config_.leaky_slope)
          : normalized;
  if (!config_.use_self_loop) return activated;
  ag::VarId self = config_.use_self_encoder
                       ? self_encoder.SelfPropagate(tape, h_prev)
                       : h_prev;
  return tape.Add(activated, self);
}

models::ForwardResult DgnnModel::Forward(ag::Tape& tape, bool /*training*/) {
  ag::VarId h_user = tape.Param(user_emb_);
  ag::VarId h_item = tape.Param(item_emb_);
  ag::VarId h_rel = has_relations_ ? tape.Param(rel_emb_) : -1;

  std::vector<ag::VarId> user_layers = {h_user};
  std::vector<ag::VarId> item_layers = {h_item};
  last_layer_user_input_ = h_user;

  // Message propagation for one typed edge set; with use_transforms off,
  // falls back to the raw (normalized) neighborhood aggregation.
  auto propagate = [&](const MemoryEncoder& enc, ag::VarId h_src,
                       ag::VarId h_tgt, const graph::CsrMatrix* adj,
                       const graph::CsrMatrix* adj_t) {
    if (!config_.use_transforms) return tape.SpMM(adj, adj_t, h_src);
    return enc.Propagate(tape, h_src, h_tgt, adj, adj_t);
  };

  for (int l = 0; l < config_.num_layers; ++l) {
    const LayerModules& mods = layers_[static_cast<size_t>(l)];
    last_layer_user_input_ = h_user;

    // Eq. 4: user aggregation over social + interaction neighborhoods
    // (adjacency values already carry the joint 1/(|N_S|+|N_Y|) factor).
    ag::VarId user_agg =
        propagate(*mods.user_from_item, h_item, h_user, &user_item_adj_,
                  &user_item_adj_t_);
    if (config_.use_social) {
      user_agg = tape.Add(
          user_agg, propagate(*mods.user_from_user, h_user, h_user,
                              &user_social_adj_, &user_social_adj_t_));
    }

    // Eq. 5: item aggregation over interaction + item-relation edges.
    ag::VarId item_agg =
        propagate(*mods.item_from_user, h_user, h_item, &item_user_adj_,
                  &item_user_adj_t_);
    if (has_relations_) {
      item_agg = tape.Add(
          item_agg, propagate(*mods.item_from_rel, h_rel, h_item,
                              &item_rel_adj_, &item_rel_adj_t_));
    }

    // Eq. 6: relation-node aggregation from linked items.
    ag::VarId rel_agg = -1;
    if (has_relations_) {
      rel_agg = propagate(*mods.rel_from_item, h_item, h_rel,
                          &rel_item_adj_, &rel_item_adj_t_);
    }

    // Eq. 7 per node type.
    h_user = NormalizeAndSelfPropagate(tape, user_agg, h_user,
                                       *mods.self_user, mods.ln_gamma_user,
                                       mods.ln_beta_user);
    h_item = NormalizeAndSelfPropagate(tape, item_agg, h_item,
                                       *mods.self_item, mods.ln_gamma_item,
                                       mods.ln_beta_item);
    if (has_relations_) {
      h_rel = NormalizeAndSelfPropagate(tape, rel_agg, h_rel,
                                        *mods.self_rel, mods.ln_gamma_rel,
                                        mods.ln_beta_rel);
    }

    user_layers.push_back(h_user);
    item_layers.push_back(h_item);
  }

  // Eq. 8: cross-layer aggregation.
  ag::VarId user_final;
  ag::VarId item_final;
  if (config_.cross_layer == DgnnConfig::CrossLayer::kConcat) {
    user_final = tape.ConcatCols(user_layers);
    item_final = tape.ConcatCols(item_layers);
  } else {
    user_final = tape.AddN(user_layers);
    item_final = tape.AddN(item_layers);
  }
  if (config_.use_layer_norm && config_.use_final_layer_norm) {
    user_final = tape.LayerNorm(user_final, tape.Param(final_ln_gamma_user_),
                                tape.Param(final_ln_beta_user_));
    item_final = tape.LayerNorm(item_final, tape.Param(final_ln_gamma_item_),
                                tape.Param(final_ln_beta_item_));
  }

  // Eqs. 9-10: fold the social recalibration tau into the scoring-side
  // user embedding: H*[u] + mean over {u} ∪ N_S(u) of H*.
  models::ForwardResult out;
  if (config_.use_social && config_.use_social_recalibration) {
    out.users = tape.Add(
        user_final,
        tape.ScalarMul(tape.SpMM(&tau_adj_, &tau_adj_t_, user_final),
                       config_.tau_scale));
  } else {
    out.users = user_final;
  }
  out.items = item_final;
  return out;
}

DgnnModel::UserGateSnapshot DgnnModel::ComputeUserGates() {
  UserGateSnapshot snap;
  DGNN_CHECK(config_.use_memory_encoder)
      << "memory gates require the memory encoder";
  DGNN_CHECK(!layers_.empty());
  ag::Tape tape;
  Forward(tape, /*training=*/false);
  const LayerModules& last = layers_.back();
  if (config_.use_social) {
    snap.social_gates =
        tape.val(last.user_from_user->Gates(tape, last_layer_user_input_));
  }
  snap.interaction_gates =
      tape.val(last.user_from_item->Gates(tape, last_layer_user_input_));
  return snap;
}

}  // namespace dgnn::core
