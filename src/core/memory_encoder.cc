#include "core/memory_encoder.h"

#include "util/strings.h"

namespace dgnn::core {

MemoryEncoder::MemoryEncoder(const std::string& name, int64_t dim,
                             int num_units, MemoryGateSide gate_side,
                             float leaky_slope, ag::ParamStore* store,
                             util::Rng* rng, bool gated,
                             DgnnConfig::TransformKind transform_kind,
                             float mask_lr_scale, float gate_lr_scale)
    : dim_(dim),
      num_units_(gated ? num_units : 1),
      gated_(gated),
      gate_side_(gate_side),
      leaky_slope_(leaky_slope),
      transform_kind_(transform_kind) {
  DGNN_CHECK_GT(num_units_, 0);
  // Initialization matters here: with generic random transforms and zero
  // gate biases, the layer's aggregated message is near-zero noise at
  // initialization and propagation *hurts* until the transforms align,
  // which small-step training never fully recovers from. Instead, each
  // W1_m starts at I/|M| plus small noise and gate biases start at 1, so
  // sum_m eta_m W1_m ~ I: the layer begins as mean neighborhood
  // aggregation. All encoder parameters are L2-SP anchored to this prior
  // (weight decay pulls toward it, not toward zero).
  w1_.reserve(static_cast<size_t>(num_units_));
  const float identity_scale = 1.0f / static_cast<float>(num_units_);
  const float noise_scale = 0.2f * identity_scale;
  for (int m = 0; m < num_units_; ++m) {
    ag::Tensor init;
    if (transform_kind_ == DgnnConfig::TransformKind::kDense) {
      init = ag::Tensor::XavierUniform(dim, dim, *rng);
      init.Scale(noise_scale);
      for (int64_t i = 0; i < dim; ++i) init.at(i, i) += identity_scale;
    } else {
      init = ag::Tensor(1, dim);
      for (int64_t i = 0; i < dim; ++i) {
        init.at(0, i) =
            identity_scale + rng->UniformFloat(-noise_scale, noise_scale);
      }
    }
    ag::Parameter* p = store->Create(
        util::StrFormat("%s.w1_%d", name.c_str(), m), std::move(init));
    p->anchor = p->value;
    p->lr_scale = mask_lr_scale;
    w1_.push_back(p);
  }
  if (gated_) {
    w2_ = store->CreateXavier(name + ".w2", dim, num_units_, *rng);
    w2_->anchor = w2_->value;
    w2_->lr_scale = gate_lr_scale;
    bias_ = store->CreateFull(name + ".b", 1, num_units_, 1.0f);
    bias_->anchor = bias_->value;
    bias_->lr_scale = gate_lr_scale;
  } else {
    w2_ = nullptr;
    bias_ = nullptr;
  }
}

ag::VarId MemoryEncoder::Transform(ag::Tape& tape, ag::VarId h_src,
                                   size_t m) const {
  if (transform_kind_ == DgnnConfig::TransformKind::kDense) {
    return tape.MatMul(h_src, tape.Param(w1_[m]));
  }
  return tape.MulRowBroadcast(h_src, tape.Param(w1_[m]));
}

ag::VarId MemoryEncoder::Gates(ag::Tape& tape, ag::VarId h) const {
  DGNN_CHECK(gated_) << "ungated encoder has no memory gates";
  ag::VarId proj = tape.MatMul(h, tape.Param(w2_));
  proj = tape.AddRowBroadcast(proj, tape.Param(bias_));
  return tape.LeakyRelu(proj, leaky_slope_);
}

ag::VarId MemoryEncoder::Propagate(ag::Tape& tape, ag::VarId h_src,
                                   ag::VarId h_tgt,
                                   const graph::CsrMatrix* adj,
                                   const graph::CsrMatrix* adj_t) const {
  if (!gated_) {
    return tape.SpMM(adj, adj_t, Transform(tape, h_src, 0));
  }
  ag::VarId gates =
      Gates(tape, gate_side_ == MemoryGateSide::kTarget ? h_tgt : h_src);
  std::vector<ag::VarId> terms;
  terms.reserve(w1_.size());
  for (size_t m = 0; m < w1_.size(); ++m) {
    ag::VarId transformed = Transform(tape, h_src, m);
    ag::VarId gate_col = tape.Col(gates, static_cast<int64_t>(m));
    if (gate_side_ == MemoryGateSide::kTarget) {
      // diag(eta_tgt) * (A * (H_src W1_m))
      terms.push_back(
          tape.RowScale(tape.SpMM(adj, adj_t, transformed), gate_col));
    } else {
      // A * (diag(eta_src) * (H_src W1_m))
      terms.push_back(
          tape.SpMM(adj, adj_t, tape.RowScale(transformed, gate_col)));
    }
  }
  return tape.AddN(terms);
}

ag::VarId MemoryEncoder::SelfPropagate(ag::Tape& tape, ag::VarId h) const {
  if (!gated_) {
    return Transform(tape, h, 0);
  }
  ag::VarId gates = Gates(tape, h);
  std::vector<ag::VarId> terms;
  terms.reserve(w1_.size());
  for (size_t m = 0; m < w1_.size(); ++m) {
    terms.push_back(tape.RowScale(Transform(tape, h, m),
                                  tape.Col(gates, static_cast<int64_t>(m))));
  }
  return tape.AddN(terms);
}

}  // namespace dgnn::core
