#include "core/pretrain.h"

#include <algorithm>

#include "ag/adam.h"
#include "util/check.h"

namespace dgnn::core {
namespace {

// One relation's link-prediction loss: observed (src, dst) pairs must
// outscore (src, random-dst) corruptions under dot-product scoring.
ag::VarId RelationLoss(ag::Tape& tape, ag::Parameter* src_emb,
                       ag::Parameter* dst_emb,
                       const graph::EdgeList& edges, int64_t max_edges,
                       util::Rng& rng) {
  const int64_t total = edges.size();
  const int64_t take = std::min(total, max_edges);
  std::vector<int32_t> src, dst, neg;
  src.reserve(static_cast<size_t>(take));
  dst.reserve(static_cast<size_t>(take));
  neg.reserve(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    const int64_t e = take == total ? i : rng.UniformInt(total);
    src.push_back(edges.src[static_cast<size_t>(e)]);
    dst.push_back(edges.dst[static_cast<size_t>(e)]);
    neg.push_back(static_cast<int32_t>(
        rng.UniformInt(dst_emb->value.rows())));
  }
  ag::VarId src_rows = tape.GatherRows(tape.Param(src_emb), std::move(src));
  ag::VarId dst_var = tape.Param(dst_emb);
  ag::VarId pos_rows = tape.GatherRows(dst_var, std::move(dst));
  ag::VarId neg_rows = tape.GatherRows(dst_var, std::move(neg));
  return tape.BprLoss(tape.RowDot(src_rows, pos_rows),
                      tape.RowDot(src_rows, neg_rows));
}

}  // namespace

PretrainResult PretrainEmbeddings(ag::ParamStore& params,
                                  ag::Parameter* user_emb,
                                  ag::Parameter* item_emb,
                                  ag::Parameter* rel_emb,
                                  const graph::HeteroGraph& graph,
                                  const PretrainConfig& config) {
  DGNN_CHECK(user_emb != nullptr);
  DGNN_CHECK(item_emb != nullptr);
  util::Rng rng(config.seed);
  ag::AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  ag::AdamOptimizer optimizer(&params, adam_config);

  const graph::EdgeList interactions = graph.ItemToUserEdges();
  const graph::EdgeList social = graph.UserToUserEdges();
  const graph::EdgeList item_rel = graph.RelToItemEdges();

  PretrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    ag::Tape tape;
    std::vector<ag::VarId> losses;
    if (interactions.size() > 0) {
      // user <-> item (scored as user . item, matching the recommender).
      losses.push_back(RelationLoss(tape, user_emb, item_emb,
                                    graph.UserToItemEdges(),
                                    config.max_edges_per_relation, rng));
    }
    if (social.size() > 0) {
      losses.push_back(RelationLoss(tape, user_emb, user_emb, social,
                                    config.max_edges_per_relation, rng));
    }
    if (rel_emb != nullptr && item_rel.size() > 0) {
      losses.push_back(RelationLoss(tape, item_emb, rel_emb,
                                    graph.ItemToRelEdges(),
                                    config.max_edges_per_relation, rng));
    }
    if (losses.empty()) break;
    ag::VarId loss = tape.ScalarMul(
        tape.AddN(losses), 1.0f / static_cast<float>(losses.size()));
    const double loss_value = tape.val(loss).scalar();
    if (epoch == 0) result.first_epoch_loss = loss_value;
    result.last_epoch_loss = loss_value;
    tape.Backward(loss);
    optimizer.Step();
  }

  // Leave fine-tuning with clean optimizer state: the trainer's Adam must
  // not inherit the pre-text task's moment estimates.
  for (auto& p : params.params()) {
    p->adam_m = ag::Tensor();
    p->adam_v = ag::Tensor();
    p->grad.Zero();
  }
  return result;
}

}  // namespace dgnn::core
