// The memory-augmented relation heterogeneity encoder of Eq. 3 — the
// paper's central building block. One encoder instance holds the
// non-shared parameter space of a single (edge type, layer) pair:
//
//   phi(H[t], H[s]) = ( sum_m eta(H[t], m) * W1_m ) H[s]
//   eta(H[t], m)    = LeakyReLU( H[t] . W2_m + b_m )
//
// Implementation notes:
//  * Applying a gated sum of M transforms per *edge* would cost
//    O(|E| M d^2). Because the gates depend on only one endpoint, the
//    aggregation over a normalized adjacency A factorizes:
//      target-gated:  out = sum_m diag(eta[:, m]) (A (H_src W1_m))
//      source-gated:  out = sum_m A ( diag(eta_src[:, m]) (H_src W1_m) )
//    which costs O(|V| M d^2 + |M| |E| d) — the complexity Section IV-D
//    claims. A unit test checks this factorized form against the literal
//    per-edge Eq. 3.
//  * W1_m is either the paper's dense d x d matrix or (default) a
//    diagonal per-dimension factor mask — see DgnnConfig::TransformKind
//    for the tradeoff. Both start at (1/|M|) * I with small noise and are
//    L2-SP anchored to that prior, so an untrained encoder behaves as
//    mean aggregation.

#ifndef DGNN_CORE_MEMORY_ENCODER_H_
#define DGNN_CORE_MEMORY_ENCODER_H_

#include <string>
#include <vector>

#include "ag/tape.h"
#include "core/dgnn_config.h"
#include "graph/csr.h"

namespace dgnn::core {

class MemoryEncoder {
 public:
  // Creates the encoder's parameters in `store` under names prefixed with
  // `name` (e.g. "l0.user_from_item"). `dim` is d, `num_units` is |M|.
  // With gated=false the encoder degenerates to a single ungated linear
  // transform per edge type — the "-M" ablation of Fig. 4.
  MemoryEncoder(const std::string& name, int64_t dim, int num_units,
                MemoryGateSide gate_side, float leaky_slope,
                ag::ParamStore* store, util::Rng* rng, bool gated = true,
                DgnnConfig::TransformKind transform_kind =
                    DgnnConfig::TransformKind::kDiagonal,
                float mask_lr_scale = 1.0f, float gate_lr_scale = 1.0f);

  // Messages aggregated into each target: adj is (num_targets x
  // num_sources), already normalized; adj_t its transpose. h_src / h_tgt
  // are the current-layer embeddings of the two endpoint types.
  ag::VarId Propagate(ag::Tape& tape, ag::VarId h_src, ag::VarId h_tgt,
                      const graph::CsrMatrix* adj,
                      const graph::CsrMatrix* adj_t) const;

  // Self-propagation (Eq. 7's phi(H[v]) term): the adjacency is the
  // identity, so gates and transforms both read the node's own embedding.
  ag::VarId SelfPropagate(ag::Tape& tape, ag::VarId h) const;

  // The gate matrix eta(h, .) of shape (n x num_units); exposed for the
  // Fig. 10 memory-attention case study. Requires gated().
  ag::VarId Gates(ag::Tape& tape, ag::VarId h) const;

  int num_units() const { return num_units_; }
  bool gated() const { return gated_; }

 private:
  // h_src transformed by unit m's W1.
  ag::VarId Transform(ag::Tape& tape, ag::VarId h_src, size_t m) const;

  int64_t dim_;
  int num_units_;
  bool gated_;
  MemoryGateSide gate_side_;
  float leaky_slope_;
  DgnnConfig::TransformKind transform_kind_;
  std::vector<ag::Parameter*> w1_;  // M transforms: d x d dense or 1 x d
                                    // diagonal masks
  ag::Parameter* w2_;               // d x M gate projection
  ag::Parameter* bias_;             // 1 x M gate bias
};

}  // namespace dgnn::core

#endif  // DGNN_CORE_MEMORY_ENCODER_H_
