// Configuration of the DGNN model, covering every ablation the paper
// evaluates (Figs. 4, 5, 7) plus the Eq. 3 / Eq. 4 gate-side discrepancy
// discussed in DESIGN.md.

#ifndef DGNN_CORE_DGNN_CONFIG_H_
#define DGNN_CORE_DGNN_CONFIG_H_

#include <cstdint>
#include <string>

namespace dgnn::core {

// Which endpoint's embedding computes the memory-unit gates eta(., m).
// kTarget is the self-consistent reading of Eq. 3 (gates from the node
// being updated); kSource is the literal reading of Eq. 4's second term.
enum class MemoryGateSide {
  kTarget,
  kSource,
};

struct DgnnConfig {
  // Hidden state dimensionality d, searched in {4, 8, 16, 32} (Fig. 7).
  int64_t embedding_dim = 16;
  // Graph propagation depth L, searched in {0..3} (Fig. 7).
  int num_layers = 2;
  // Latent memory units |M|, searched in {2, 4, 8, 16} (Fig. 7);
  // the paper settles on 8.
  int num_memory_units = 8;

  // Ablation switches (Fig. 4): "-M", "-tau", "-LN".
  bool use_memory_encoder = true;
  bool use_social_recalibration = true;
  bool use_layer_norm = true;

  // Flavor of the Eq. 7 normalization. kFeature standardizes each feature
  // across nodes (full-batch BatchNorm): it stabilizes message scales but
  // preserves the relative magnitude of different nodes within a feature,
  // so degree/popularity signals survive into the dot-product scores.
  // kLayer is the literal per-node LayerNorm of Eq. 7, which erases node
  // magnitudes and measurably hurts ranking on this protocol (kept for
  // the ablation bench; see DESIGN.md).
  // kRms rescales each feature by its root-mean-square across nodes
  // (no centering; the scale is treated as a constant in the backward
  // pass) — the gentlest stabilizer, preserving both node magnitudes and
  // the global sign structure of aggregated messages.
  enum class NormKind { kRms, kFeature, kLayer };
  NormKind norm_kind = NormKind::kRms;

  // Relation ablations (Fig. 5): "-S" drops the social matrix, "-T" drops
  // the item-relation matrix, both off is "-ST".
  bool use_social = true;
  bool use_item_relations = true;

  MemoryGateSide gate_side = MemoryGateSide::kTarget;

  // Eq. 8 reads "H* = LayerNorm(H~(0) || ... || H~(L))" but also claims
  // H* in R^d, so the cross-layer step is ambiguous. When true, the final
  // LayerNorm is applied to the concatenation; when false, the raw
  // concatenation is used directly (magnitude information — e.g. item
  // popularity — survives into the dot-product scores). Empirically the
  // raw concatenation is required for the paper's Table II ordering to
  // hold on our substrate; see DESIGN.md.
  bool use_final_layer_norm = false;

  // LeakyReLU negative slope alpha (paper: 0.2).
  float leaky_slope = 0.2f;

  // Initial scale of the Eq. 7 LayerNorm gain. LayerNorm rescales each
  // node's aggregated message to unit per-dimension variance, which at
  // gamma = 1 makes the propagated layer blocks dominate the (small-init)
  // base embeddings in the cross-layer concatenation by two orders of
  // magnitude, starving the base embeddings of gradient. Starting gamma
  // small keeps all blocks commensurate; training grows it where the
  // propagated context earns its weight.
  float layer_norm_gain_init = 0.05f;
  // Initial scale of the node embedding tables (Gaussian).
  float embedding_init_stddev = 0.1f;

  // Cross-layer aggregation (Eq. 8): "sum" pools layer outputs
  // element-wise (H* in R^d, the literal reading of Eq. 8's output shape,
  // and the variant whose dot products contain cross-order terms like
  // u^(0) . i^(1)); "concat" stacks them (H* in R^{d(L+1)}, the literal
  // reading of the || operator). Sum reproduces the paper's orderings on
  // our substrate; see DESIGN.md.
  enum class CrossLayer { kSum, kConcat };
  CrossLayer cross_layer = CrossLayer::kSum;

  // Shape of the per-memory-unit transforms W1_m in Eq. 3. The paper
  // writes dense d x d matrices; on small datasets the 2 |E_types| L |M|
  // free matrices overfit badly (they chase batch noise faster than the
  // embeddings converge — see DESIGN.md), so the default is kDiagonal:
  // each memory unit owns a learned per-dimension factor mask, which
  // keeps the disentangling semantics (units specialize to embedding
  // subspaces) at 1/d the parameters. kDense is the literal Eq. 3 and is
  // exercised by the ablation bench.
  enum class TransformKind { kDiagonal, kDense };
  TransformKind transform_kind = TransformKind::kDiagonal;

  // Diagnostic: bypass the per-edge-type transforms entirely (messages are
  // raw neighbor means, LightGCN-style). Used by the ablation study.
  bool use_transforms = true;
  // Learning-rate multipliers for the memory encoder's structural
  // parameters (see ag::Parameter::lr_scale). The factor masks W1_m keep
  // a small step size (they encode the near-identity aggregation prior);
  // the gates may adapt faster — they carry the per-node relation
  // weighting that disentangles heterogeneous factors.
  float encoder_lr_scale = 0.1f;
  float gate_lr_scale = 1.0f;
  // Symmetric (D^-1/2 A D^-1/2) normalization of the typed adjacencies
  // instead of the joint row-mean of Eqs. 4-6; preserves degree/popularity
  // magnitudes in the aggregated messages.
  bool use_sym_norm = true;

  // Weight of the tau(.) social recalibration term in Eq. 10's score
  // (1.0 = the paper's plain sum).
  float tau_scale = 1.0f;

  // Eq. 7's self-loop term phi(H[v]): when true, route the self loop
  // through the memory encoder (the paper's description); when false, use
  // a plain identity residual. Diagnostic switch for the ablation bench.
  bool use_self_encoder = true;
  // Keep the Eq. 7 self-loop at all; disabling it (the default) makes
  // layer l+1 purely the aggregated neighborhood of layer l — the
  // cross-layer aggregation of Eq. 8 already supplies every lower-order
  // term, and a per-layer self-loop compounds low-order signal so the
  // informative high-order terms get down-weighted in the sum (see
  // DESIGN.md). The paper's literal Eq. 7 form is exercised by the
  // ablation bench.
  bool use_self_loop = false;
  // Apply the LeakyReLU activation to the normalized aggregation in Eq. 7.
  bool use_eq7_activation = true;

  uint64_t seed = 42;

  // Short suffix describing active ablations, e.g. "-M" / "-ST"; empty for
  // the full model.
  std::string VariantSuffix() const {
    std::string s;
    if (!use_memory_encoder) s += "-M";
    if (!use_social_recalibration) s += "-tau";
    if (!use_layer_norm) s += "-LN";
    std::string rel;
    if (!use_social) rel += "S";
    if (!use_item_relations) rel += "T";
    if (!rel.empty()) s += "-" + rel;
    if (gate_side == MemoryGateSide::kSource) s += "-srcgate";
    return s;
  }
};

}  // namespace dgnn::core

#endif  // DGNN_CORE_DGNN_CONFIG_H_
