#include "core/model_zoo.h"

#include "core/dgnn_model.h"
#include "models/bpr_mf.h"
#include "models/dgcf.h"
#include "models/dgrec.h"
#include "models/diffnet.h"
#include "models/disenhan.h"
#include "models/eatnn.h"
#include "models/gccf.h"
#include "models/graphrec.h"
#include "models/han.h"
#include "models/herec.h"
#include "models/hgt.h"
#include "models/kgat.h"
#include "models/lightgcn.h"
#include "models/mhcn.h"
#include "models/ngcf.h"
#include "models/samn.h"
#include "util/check.h"

namespace dgnn::core {

const std::vector<std::string>& TableIIModelNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{
          "SAMN", "EATNN", "DiffNet", "GraphRec", "NGCF", "GCCF", "DGRec",
          "KGAT", "DGCF", "DisenHAN", "HAN", "HGT", "HERec", "MHCN",
          "DGNN"};
  return *names;
}

DgnnConfig DgnnVariantConfig(const std::string& name,
                             const ZooConfig& config) {
  DgnnConfig c;
  c.embedding_dim = config.embedding_dim;
  c.num_layers = config.num_layers;
  c.num_memory_units = config.num_memory_units;
  c.seed = config.seed;
  if (name == "DGNN") return c;
  if (name == "DGNN-M") {
    c.use_memory_encoder = false;
  } else if (name == "DGNN-tau") {
    c.use_social_recalibration = false;
  } else if (name == "DGNN-LN") {
    c.use_layer_norm = false;
  } else if (name == "DGNN-S") {
    c.use_social = false;
  } else if (name == "DGNN-T") {
    c.use_item_relations = false;
  } else if (name == "DGNN-ST") {
    c.use_social = false;
    c.use_item_relations = false;
  } else if (name == "DGNN-srcgate") {
    c.gate_side = MemoryGateSide::kSource;
  } else {
    DGNN_CHECK(false) << "unknown DGNN variant: " << name;
  }
  return c;
}

std::unique_ptr<models::RecModel> CreateModelByName(
    const std::string& name, const data::Dataset& dataset,
    const graph::HeteroGraph& graph, const ZooConfig& config) {
  const int64_t d = config.embedding_dim;
  const uint64_t seed = config.seed;
  if (name == "BPR-MF") {
    return std::make_unique<models::BprMf>(graph, d, seed);
  }
  if (name == "LightGCN") {
    models::LightGcnConfig c;
    c.embedding_dim = d;
    c.num_layers = config.num_layers;
    c.seed = seed;
    return std::make_unique<models::LightGcn>(graph, c);
  }
  if (name == "SAMN") {
    models::SamnConfig c;
    c.embedding_dim = d;
    c.num_memory_slices = config.num_memory_units;
    c.seed = seed;
    return std::make_unique<models::Samn>(graph, c);
  }
  if (name == "EATNN") {
    models::EatnnConfig c;
    c.embedding_dim = d;
    c.seed = seed;
    return std::make_unique<models::Eatnn>(graph, c);
  }
  if (name == "DiffNet") {
    models::DiffNetConfig c;
    c.embedding_dim = d;
    c.num_layers = config.num_layers;
    c.seed = seed;
    return std::make_unique<models::DiffNet>(graph, c);
  }
  if (name == "GraphRec") {
    models::GraphRecConfig c;
    c.embedding_dim = d;
    c.seed = seed;
    return std::make_unique<models::GraphRec>(graph, c);
  }
  if (name == "NGCF") {
    models::NgcfConfig c;
    c.embedding_dim = d;
    c.num_layers = config.num_layers;
    c.seed = seed;
    return std::make_unique<models::Ngcf>(graph, c);
  }
  if (name == "GCCF") {
    models::GccfConfig c;
    c.embedding_dim = d;
    c.num_layers = config.num_layers;
    c.seed = seed;
    return std::make_unique<models::Gccf>(graph, c);
  }
  if (name == "DGRec") {
    models::DgRecConfig c;
    c.embedding_dim = d;
    c.seed = seed;
    return std::make_unique<models::DgRec>(dataset, graph, c);
  }
  if (name == "KGAT") {
    models::KgatConfig c;
    c.embedding_dim = d;
    c.num_layers = config.num_layers;
    c.seed = seed;
    return std::make_unique<models::Kgat>(graph, c);
  }
  if (name == "DGCF") {
    models::DgcfConfig c;
    c.embedding_dim = d;
    c.seed = seed;
    return std::make_unique<models::Dgcf>(graph, c);
  }
  if (name == "DisenHAN") {
    models::DisenHanConfig c;
    c.embedding_dim = d;
    c.seed = seed;
    return std::make_unique<models::DisenHan>(graph, c);
  }
  if (name == "HAN") {
    models::HanConfig c;
    c.embedding_dim = d;
    c.seed = seed;
    return std::make_unique<models::Han>(graph, c);
  }
  if (name == "HGT") {
    models::HgtConfig c;
    c.embedding_dim = d;
    c.num_layers = config.num_layers;
    c.seed = seed;
    return std::make_unique<models::Hgt>(graph, c);
  }
  if (name == "HERec") {
    models::HerecConfig c;
    c.embedding_dim = d;
    c.seed = seed;
    return std::make_unique<models::Herec>(graph, c);
  }
  if (name == "MHCN") {
    models::MhcnConfig c;
    c.embedding_dim = d;
    c.seed = seed;
    return std::make_unique<models::Mhcn>(graph, c);
  }
  if (name.rfind("DGNN", 0) == 0) {
    return std::make_unique<DgnnModel>(graph,
                                       DgnnVariantConfig(name, config));
  }
  DGNN_CHECK(false) << "unknown model name: " << name;
  return nullptr;
}

}  // namespace dgnn::core
