// Model zoo: constructs any of the paper's Table II models by name, under
// shared hyperparameters, so the bench harnesses can sweep the whole
// model roster uniformly.

#ifndef DGNN_CORE_MODEL_ZOO_H_
#define DGNN_CORE_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/dgnn_config.h"
#include "data/dataset.h"
#include "graph/hetero_graph.h"
#include "models/rec_model.h"

namespace dgnn::core {

struct ZooConfig {
  int64_t embedding_dim = 16;
  int num_layers = 2;
  int num_memory_units = 8;
  uint64_t seed = 42;
};

// Names in the paper's Table II column order (DGNN last).
const std::vector<std::string>& TableIIModelNames();

// Builds a model by Table II name ("SAMN", "EATNN", "DiffNet", "GraphRec",
// "NGCF", "GCCF", "DGRec", "KGAT", "DGCF", "DisenHAN", "HAN", "HGT",
// "HERec", "MHCN", "DGNN"), plus the extra references "BPR-MF" and
// "LightGCN". The DGNN ablation variants ("DGNN-M", "DGNN-tau", "DGNN-LN",
// "DGNN-S", "DGNN-T", "DGNN-ST", "DGNN-srcgate") are also accepted.
// CHECK-fails on unknown names. `dataset` and `graph` must outlive the
// returned model.
std::unique_ptr<models::RecModel> CreateModelByName(
    const std::string& name, const data::Dataset& dataset,
    const graph::HeteroGraph& graph, const ZooConfig& config);

// DgnnConfig for a named variant ("DGNN", "DGNN-M", ...), used by the
// ablation benches.
DgnnConfig DgnnVariantConfig(const std::string& name,
                             const ZooConfig& config);

}  // namespace dgnn::core

#endif  // DGNN_CORE_MODEL_ZOO_H_
