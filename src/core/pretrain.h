// Heterogeneous relational pre-training — the paper's stated future-work
// direction ("explore the heterogeneous relational data under a
// pre-trained framework"). Before BPR fine-tuning, the embedding tables
// are warm-started with a link-prediction objective on each relation of
// the collaborative heterogeneous graph: observed edges (user-item,
// user-user, item-relation) must outscore random corruptions. No
// propagation parameters are touched — the pre-text task aligns the raw
// embedding geometry with all three relational structures, which the
// downstream GNN then refines.

#ifndef DGNN_CORE_PRETRAIN_H_
#define DGNN_CORE_PRETRAIN_H_

#include "ag/tape.h"
#include "graph/hetero_graph.h"

namespace dgnn::core {

struct PretrainConfig {
  int epochs = 20;
  float learning_rate = 0.01f;
  // Per relation per epoch, at most this many edges are sampled.
  int64_t max_edges_per_relation = 8192;
  uint64_t seed = 99;
};

struct PretrainResult {
  // Mean link-prediction loss of the first and last epoch, per the
  // caller's curiosity; pretraining succeeded when last < first.
  double first_epoch_loss = 0.0;
  double last_epoch_loss = 0.0;
};

// Warm-starts the three embedding tables in-place. `rel_emb` may be null
// (no item-relation data). Tables must live in `params` (their gradients
// and Adam state are managed through it); all other parameters in the
// store are left untouched.
PretrainResult PretrainEmbeddings(ag::ParamStore& params,
                                  ag::Parameter* user_emb,
                                  ag::Parameter* item_emb,
                                  ag::Parameter* rel_emb,
                                  const graph::HeteroGraph& graph,
                                  const PretrainConfig& config);

}  // namespace dgnn::core

#endif  // DGNN_CORE_PRETRAIN_H_
