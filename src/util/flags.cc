#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"
#include "util/strings.h"

namespace dgnn::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  auto parsed = ParseInt(it->second);
  DGNN_CHECK(parsed.ok()) << "flag --" << key << ": "
                          << parsed.status().ToString();
  return parsed.value();
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  auto parsed = ParseDouble(it->second);
  DGNN_CHECK(parsed.ok()) << "flag --" << key << ": "
                          << parsed.status().ToString();
  return parsed.value();
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1";
}

}  // namespace dgnn::util
