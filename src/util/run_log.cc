#include "util/run_log.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>

#include "util/failpoint.h"

namespace dgnn::runlog {
namespace {

std::atomic<bool> g_active{false};

struct State {
  std::mutex mu;
  std::ofstream out;
  std::string path;
  int64_t num_events = 0;
  int64_t num_dropped = 0;
  std::chrono::steady_clock::time_point start;
};

State& GetState() {
  static State* state = new State();  // never destroyed (atexit-safe)
  return *state;
}

}  // namespace

bool Active() { return g_active.load(std::memory_order_relaxed); }

util::Status Open(const std::string& path) {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.out.is_open()) s.out.close();
  s.out.open(path, std::ios::trunc);
  if (!s.out.is_open()) {
    g_active.store(false, std::memory_order_relaxed);
    return util::Status::NotFound("cannot open run log for writing: " + path);
  }
  s.path = path;
  s.num_events = 0;
  s.num_dropped = 0;
  s.start = std::chrono::steady_clock::now();
  g_active.store(true, std::memory_order_relaxed);
  return util::Status::Ok();
}

void Close() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  g_active.store(false, std::memory_order_relaxed);
  if (s.out.is_open()) {
    s.out.flush();
    s.out.close();
  }
  s.path.clear();
}

std::string CurrentPath() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

void Emit(std::string_view event, const util::JsonObject& fields) {
  if (!Active()) return;
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.out.is_open()) return;  // closed between the Active() check and here
  // Failpoint: a failed append DROPS the line (counted) instead of
  // aborting the run — logging is best-effort by design, and the failure
  // tests assert the log still parses as a valid prefix afterwards.
  if (failpoint::Enabled() && !failpoint::Check("runlog.append").ok()) {
    ++s.num_dropped;
    return;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    s.start)
          .count();
  // The envelope fields lead every line so stream consumers can dispatch
  // on a prefix; the event's own fields follow verbatim.
  util::JsonObject envelope;
  envelope.Set("event", event)
      .Set("v", kSchemaVersion)
      .Set("elapsed_s", elapsed);
  std::string line = envelope.Build();
  const std::string body = fields.Build();
  if (body.size() > 2) {  // not "{}"
    line.pop_back();  // '}'
    line += ',';
    line.append(body, 1, body.size() - 1);  // skip '{'
  }
  s.out << line << '\n';
  s.out.flush();
  ++s.num_events;
}

int64_t NumEvents() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.num_events;
}

int64_t NumDropped() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.num_dropped;
}

}  // namespace dgnn::runlog
