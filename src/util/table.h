// Console table printer used by the bench harnesses to emit rows shaped
// like the paper's tables.

#ifndef DGNN_UTIL_TABLE_H_
#define DGNN_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dgnn::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with per-column widths, a header separator, and right-aligned
  // numeric-looking cells.
  std::string ToString() const;

  // Convenience: ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dgnn::util

#endif  // DGNN_UTIL_TABLE_H_
