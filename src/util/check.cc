#include "util/check.h"

namespace dgnn::util::internal_check {

void CheckFailure(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::fprintf(stderr, "[CHECK FAILED] %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dgnn::util::internal_check
