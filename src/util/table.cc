#include "util/table.h"

#include <cctype>
#include <cstdio>

#include "util/check.h"

namespace dgnn::util {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  DGNN_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  auto append_cell = [&](std::string& out, const std::string& cell,
                         size_t c) {
    size_t pad = width[c] - cell.size();
    if (LooksNumeric(cell)) {
      out.append(pad, ' ');
      out += cell;
    } else {
      out += cell;
      out.append(pad, ' ');
    }
  };

  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out += " | ";
    append_cell(out, header_[c], c);
  }
  out += '\n';
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out += "-+-";
    out.append(width[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      append_cell(out, row[c], c);
    }
    out += '\n';
  }
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dgnn::util
