// Rolling time-windowed serving statistics: a fixed-capacity ring of
// per-tick (nominally 1 s) samples, each holding the DELTA of the
// serving counters over that tick plus a latency Histogram::Counts
// delta, so "the last 1 s / 10 s / 60 s" can be answered at any moment
// of a long-running process without restarting metrics or waiting for
// an atexit flush.
//
// The producer (the engine's sampler thread, or a test calling
// SampleOnceForTest) pushes one Sample per tick; readers aggregate the
// newest N samples into a WindowAggregate. Everything is guarded by one
// mutex — pushes and reads happen a few times per second, never on the
// request hot path.
//
// SLO accounting: when Config sets slo_p99_ms / slo_availability, each
// pushed sample is stamped with per-tick violation flags and cumulative
// burn counters advance, so a "bad minutes since start" burn rate
// survives ring wraparound.

#ifndef DGNN_UTIL_WINDOWED_STATS_H_
#define DGNN_UTIL_WINDOWED_STATS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/telemetry.h"

namespace dgnn::telemetry {

class WindowedStats {
 public:
  struct Config {
    // Ring capacity in ticks; 120 one-second ticks comfortably covers
    // the largest (60 s) reporting window plus slack for late readers.
    int capacity = 120;
    // SLO thresholds; <= 0 disables the corresponding accounting.
    double slo_p99_ms = 0.0;       // per-tick p99 must stay below this
    double slo_availability = 0.0; // per-tick ok/requests must stay above
  };

  // One tick's worth of serving activity (counter DELTAS over the tick,
  // except queue_depth which is an instantaneous gauge read).
  struct Sample {
    double seconds = 1.0;  // tick duration
    int64_t requests = 0;
    int64_t ok = 0;
    int64_t shed = 0;
    int64_t expired = 0;
    int64_t failed = 0;
    int64_t degraded = 0;
    int64_t swaps = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t queue_depth = 0;
    Histogram::Counts latency;
    // Stamped by Push() from Config; callers leave these false.
    bool p99_violation = false;
    bool availability_violation = false;
  };

  // Aggregate over the newest N ticks.
  struct WindowAggregate {
    int ticks = 0;          // samples actually aggregated (<= requested)
    double seconds = 0.0;   // wall time the window covers
    int64_t requests = 0;
    int64_t ok = 0;
    int64_t shed = 0;
    int64_t expired = 0;
    int64_t failed = 0;
    int64_t degraded = 0;
    int64_t swaps = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t queue_depth = 0;  // newest sample's gauge
    double qps = 0.0;
    double availability = 1.0;    // ok / requests; 1 when idle
    double cache_hit_rate = 0.0;  // hits / (hits + misses); 0 when idle
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double mean_ms = 0.0;
    int p99_violations = 0;           // ticks in window over the SLO
    int availability_violations = 0;  // ticks in window under the SLO
  };

  explicit WindowedStats(const Config& config);

  // Appends one tick, stamping SLO violation flags and advancing the
  // cumulative burn counters. Oldest sample is evicted at capacity.
  void Push(Sample sample);

  // Aggregates the newest `ticks` samples (fewer if the ring holds
  // fewer). ticks <= 0 aggregates everything retained.
  WindowAggregate Aggregate(int ticks) const;

  // Total ticks ever pushed (not capped by ring capacity).
  int64_t total_ticks() const;
  // Cumulative SLO burn counters since construction.
  int64_t total_p99_violations() const;
  int64_t total_availability_violations() const;

  const Config& config() const { return config_; }

 private:
  const Config config_;
  mutable std::mutex mu_;
  std::vector<Sample> ring_;  // ring_[(head_ + i) % capacity], oldest first
  int head_ = 0;
  int size_ = 0;
  int64_t total_ticks_ = 0;
  int64_t total_p99_violations_ = 0;
  int64_t total_availability_violations_ = 0;
};

}  // namespace dgnn::telemetry

#endif  // DGNN_UTIL_WINDOWED_STATS_H_
