// Durable, interruption-tolerant file primitives shared by every binary
// artifact writer/reader in the library (parameter checkpoints, serving
// snapshots, dataset TSVs).
//
// Why not iostreams: the previous writers used std::ofstream, which
// cannot fsync and hides EINTR/short-write behavior. These helpers use
// POSIX fds directly and give the durability story the checkpoints and
// snapshots advertise:
//
//  - ReadFileToString: full-file read that retries EINTR and short reads
//    until EOF; transient (kInternal) failures are retried with capped
//    exponential backoff.
//  - AtomicWriteFile: write "<path>.tmp", fsync the FILE, rename(2) over
//    `path`, then fsync the PARENT DIRECTORY — without the directory
//    fsync a crash after rename can lose the rename itself, leaving the
//    old file, which is safe, but also possibly neither file on some
//    filesystems. EINTR and short writes are retried at every step. On
//    any failure the temp file is removed and `path` is untouched, so
//    callers keep the previous artifact. Transient failures retry with
//    backoff like reads.
//
// Both carry failpoint sites (fs.read / fs.open / fs.write / fs.fsync /
// fs.rename) so failure tests inject faults at the real I/O boundary
// instead of hand-corrupting files; the `once` action recovers through
// the built-in retry, `error` exhausts it.

#ifndef DGNN_UTIL_FS_H_
#define DGNN_UTIL_FS_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace dgnn::fs {

// Reads the entire file. EINTR-safe, short-read-safe, retries transient
// failures (capped exponential backoff, 3 attempts).
util::StatusOr<std::string> ReadFileToString(const std::string& path);

// Atomically replaces `path` with `bytes` (temp + fsync + rename +
// parent-dir fsync). A crash at any point leaves either the complete old
// file or the complete new file at `path`, and the rename is durable
// once this returns OK. Retries transient failures.
util::Status AtomicWriteFile(const std::string& path,
                             std::string_view bytes);

// Streaming counterpart of AtomicWriteFile for artifacts too large to
// build in memory (million-user dataset TSVs): Open() creates
// "<path>.tmp", Append() buffers and writes through the same
// EINTR/short-write-safe loop, and Close() flushes, fsyncs the file,
// rename(2)s it over `path`, and fsyncs the parent directory — so the
// final name only ever points at a complete file. Destruction without a
// successful Close() (or an explicit Abandon()) removes the temp file
// and leaves `path` untouched.
//
// Unlike AtomicWriteFile there is no retry-with-backoff: a stream cannot
// be replayed from its start, so any failure is surfaced immediately and
// the writer becomes unusable (every later call returns the same error).
class AppendWriter {
 public:
  AppendWriter() = default;
  ~AppendWriter() { Abandon(); }
  AppendWriter(const AppendWriter&) = delete;
  AppendWriter& operator=(const AppendWriter&) = delete;

  util::Status Open(const std::string& path);
  util::Status Append(std::string_view bytes);
  util::Status Close();
  // Removes the temp file (if any) without touching `path`. Idempotent.
  void Abandon();

  bool is_open() const { return fd_ >= 0; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  util::Status FlushBuffer();
  util::Status Fail(util::Status status);

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  std::string buffer_;
  int64_t bytes_written_ = 0;
  // First error, replayed by every subsequent call.
  util::Status error_;
};

}  // namespace dgnn::fs

#endif  // DGNN_UTIL_FS_H_
