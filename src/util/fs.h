// Durable, interruption-tolerant file primitives shared by every binary
// artifact writer/reader in the library (parameter checkpoints, serving
// snapshots, dataset TSVs).
//
// Why not iostreams: the previous writers used std::ofstream, which
// cannot fsync and hides EINTR/short-write behavior. These helpers use
// POSIX fds directly and give the durability story the checkpoints and
// snapshots advertise:
//
//  - ReadFileToString: full-file read that retries EINTR and short reads
//    until EOF; transient (kInternal) failures are retried with capped
//    exponential backoff.
//  - AtomicWriteFile: write "<path>.tmp", fsync the FILE, rename(2) over
//    `path`, then fsync the PARENT DIRECTORY — without the directory
//    fsync a crash after rename can lose the rename itself, leaving the
//    old file, which is safe, but also possibly neither file on some
//    filesystems. EINTR and short writes are retried at every step. On
//    any failure the temp file is removed and `path` is untouched, so
//    callers keep the previous artifact. Transient failures retry with
//    backoff like reads.
//
// Both carry failpoint sites (fs.read / fs.open / fs.write / fs.fsync /
// fs.rename) so failure tests inject faults at the real I/O boundary
// instead of hand-corrupting files; the `once` action recovers through
// the built-in retry, `error` exhausts it.

#ifndef DGNN_UTIL_FS_H_
#define DGNN_UTIL_FS_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace dgnn::fs {

// Reads the entire file. EINTR-safe, short-read-safe, retries transient
// failures (capped exponential backoff, 3 attempts).
util::StatusOr<std::string> ReadFileToString(const std::string& path);

// Atomically replaces `path` with `bytes` (temp + fsync + rename +
// parent-dir fsync). A crash at any point leaves either the complete old
// file or the complete new file at `path`, and the rename is durable
// once this returns OK. Retries transient failures.
util::Status AtomicWriteFile(const std::string& path,
                             std::string_view bytes);

}  // namespace dgnn::fs

#endif  // DGNN_UTIL_FS_H_
